// Ablation A1 (DESIGN.md): the row-packing design choices the paper
// discusses in §III-B and §VI, quantified.
//
//  * shuffle vs ascending-popcount row order (the paper's rejected
//    "compromise"),
//  * basis update (lines 9-16 of Alg. 2) on vs off (the other rejected
//    compromise),
//  * greedy first-fit packing vs exact-cover (DLX) packing (the paper's
//    future-work upgrade).
//
// Reported per variant: % of cases matching the certified optimum, and
// total heuristic time.

#include <cstdio>
#include <vector>

#include "benchgen/suites.h"
#include "common.h"
#include "core/trivial.h"
#include "engine/engine.h"
#include "support/stopwatch.h"

namespace {

using ebmf::benchgen::Instance;
using ebmf::engine::SolveRequest;

struct Variant {
  std::string name;
  ebmf::RowOrder order = ebmf::RowOrder::Shuffle;
  bool basis_update = true;
  std::string strategy = "heuristic";  // heuristic | dlx | greedy
  std::size_t trials = 1;
};

struct Tally {
  std::size_t hits = 0;
  double seconds = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const auto opt = ebmf::bench::parse_options(argc, argv);
  using namespace ebmf::benchgen;

  // Instance pool: the families where heuristic quality actually varies.
  std::vector<Instance> pool;
  for (std::size_t k : {2u, 3u, 4u, 5u})
    for (auto& inst : gap_suite(10, 10, {k}, opt.count(40, 8), opt.seed + k))
      pool.push_back(std::move(inst));
  for (auto& inst : random_suite(10, 10, {0.3, 0.5, 0.7}, opt.count(10, 5),
                                 opt.seed + 50))
    pool.push_back(std::move(inst));

  // Certified optima (engine "sap" backend).
  const ebmf::engine::Engine engine;
  std::vector<std::size_t> optimum(pool.size(), 0);
  std::size_t proven = 0;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    auto request = SolveRequest::dense(pool[i].matrix, "sap");
    request.trials = 200;
    request.budget = opt.budget();
    const auto r = engine.solve(request);
    ebmf::bench::emit_json(opt, pool[i].family, pool[i].config, r);
    if (r.proven_optimal()) {
      optimum[i] = r.depth();
      ++proven;
    }
  }

  const std::vector<Variant> variants = {
      {"shuffle+update      x1", ebmf::RowOrder::Shuffle, true, "heuristic", 1},
      {"shuffle+update     x10", ebmf::RowOrder::Shuffle, true, "heuristic", 10},
      {"shuffle+update    x100", ebmf::RowOrder::Shuffle, true, "heuristic", 100},
      {"sorted+update       x1", ebmf::RowOrder::SortedByOnes, true, "heuristic", 1},
      {"shuffle, no update  x1", ebmf::RowOrder::Shuffle, false, "heuristic", 1},
      {"shuffle, no update x10", ebmf::RowOrder::Shuffle, false, "heuristic", 10},
      {"shuffle, no upd   x100", ebmf::RowOrder::Shuffle, false, "heuristic", 100},
      {"DLX+update          x1", ebmf::RowOrder::Shuffle, true, "dlx", 1},
      {"DLX+update         x10", ebmf::RowOrder::Shuffle, true, "dlx", 10},
      {"DLX+update        x100", ebmf::RowOrder::Shuffle, true, "dlx", 100},
      {"greedy-extract      x1", ebmf::RowOrder::Shuffle, true, "greedy", 1},
      {"greedy-extract     x10", ebmf::RowOrder::Shuffle, true, "greedy", 10},
      {"greedy-extract    x100", ebmf::RowOrder::Shuffle, true, "greedy", 100},
  };

  std::printf("=== Ablation: row packing variants (paper §III-B, §VI) ===\n");
  std::printf("(%zu instances, %zu with certified optimum)\n\n", pool.size(),
              proven);
  std::printf("%-24s %10s %12s\n", "variant", "optimal", "time[ms]");
  std::printf("%s\n", std::string(48, '-').c_str());

  // Baseline: the trivial heuristic.
  {
    Tally tally;
    ebmf::Stopwatch watch;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (optimum[i] == 0) continue;
      if (ebmf::trivial_ebmf(pool[i].matrix).size() == optimum[i])
        ++tally.hits;
    }
    std::printf("%-24s %9.0f%% %12.3f\n", "trivial",
                100.0 * static_cast<double>(tally.hits) /
                    static_cast<double>(proven),
                watch.seconds() * 1e3);
  }

  for (const auto& variant : variants) {
    Tally tally;
    ebmf::Stopwatch watch;
    std::uint64_t seed = opt.seed;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (optimum[i] == 0) continue;
      auto request = SolveRequest::dense(pool[i].matrix, variant.strategy);
      request.order = variant.order;
      request.basis_update = variant.basis_update;
      request.trials = variant.trials;
      request.seed = ++seed;
      request.stop_at = optimum[i];
      if (engine.solve(request).depth() == optimum[i]) ++tally.hits;
    }
    tally.seconds = watch.seconds();
    std::printf("%-24s %9.0f%% %12.3f\n", variant.name.c_str(),
                100.0 * static_cast<double>(tally.hits) /
                    static_cast<double>(proven),
                tally.seconds * 1e3);
  }

  std::printf("\nShape checks: sorted and no-update variants should lose "
              "quality vs the default\n(the paper rejected both); DLX should "
              "match or beat greedy at equal trials.\n");
  return 0;
}
