// Ablation A2 (DESIGN.md): CNF lowering of the paper's SMT formulation.
//
// The paper uses Z3 with bit-vector labels; our solver exposes both that
// lowering ('Binary') and the direct one-hot encoding, each with label
// symmetry breaking on/off. The gap family is used because it is the one
// that forces real UNSAT proofs (paper Observation 5 — the expensive part).
//
// Reported per configuration: proven-optimal rate, total/max SMT time,
// conflicts, and formula size.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "benchgen/suites.h"
#include "common.h"
#include "engine/engine.h"

namespace {

struct Config {
  std::string name;
  ebmf::smt::LabelEncoding encoding;
  bool symmetry;
};

}  // namespace

int main(int argc, char** argv) {
  const auto opt = ebmf::bench::parse_options(argc, argv);
  using namespace ebmf::benchgen;

  std::vector<Instance> pool;
  for (std::size_t k : {2u, 3u, 4u, 5u})
    for (auto& inst : gap_suite(10, 10, {k}, opt.count(25, 6), opt.seed + k))
      pool.push_back(std::move(inst));

  const std::vector<Config> configs = {
      {"one-hot + symmetry ", ebmf::smt::LabelEncoding::OneHot, true},
      {"one-hot, no symmetry", ebmf::smt::LabelEncoding::OneHot, false},
      {"binary  + symmetry ", ebmf::smt::LabelEncoding::Binary, true},
      {"binary, no symmetry", ebmf::smt::LabelEncoding::Binary, false},
  };

  std::printf("=== Ablation: SMT-to-CNF encodings on the gap family ===\n");
  std::printf("(%zu instances; per-instance budget %.1fs)\n\n", pool.size(),
              opt.budget_seconds);
  std::printf("%-22s %7s %10s %10s %12s %10s\n", "encoding", "proven",
              "SMT[s]", "max[s]", "conflicts", "calls");
  std::printf("%s\n", std::string(76, '-').c_str());

  const ebmf::engine::Engine engine;
  for (const auto& config : configs) {
    std::size_t proven = 0;
    double total_smt = 0;
    double max_smt = 0;
    std::uint64_t conflicts = 0;
    std::size_t calls = 0;
    for (const auto& inst : pool) {
      auto request = ebmf::engine::SolveRequest::dense(inst.matrix, "sap");
      request.encoding = config.encoding;
      request.symmetry_breaking = config.symmetry;
      request.trials = 5;  // weak heuristic: force SMT to work
      request.seed = opt.seed;
      request.budget = opt.budget();
      const auto r = engine.solve(request);
      ebmf::bench::emit_json(opt, inst.family, inst.config, r);
      if (r.proven_optimal()) ++proven;
      const double inst_smt = r.timing("smt");
      total_smt += inst_smt;
      conflicts += r.telemetry_count("sat.conflicts");
      calls += r.telemetry_count("smt.calls");
      max_smt = std::max(max_smt, inst_smt);
    }
    std::printf("%-22s %6.0f%% %10.3f %10.3f %12llu %10zu\n",
                config.name.c_str(),
                100.0 * static_cast<double>(proven) /
                    static_cast<double>(pool.size()),
                total_smt, max_smt,
                static_cast<unsigned long long>(conflicts), calls);
  }

  std::printf("\nShape checks: one-hot + symmetry should prove the most and "
              "be fastest on UNSAT;\nthe bit-vector ('binary') lowering — the "
              "paper's Z3 formulation — pays for reified\nequalities; "
              "symmetry breaking matters most for UNSAT proving.\n");
  return 0;
}
