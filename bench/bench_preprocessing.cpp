// Extension study (beyond the paper): exactness-preserving preprocessing.
//
// The paper reports the 100x100 random benchmarks are "too large for SMT";
// optimality there rests on the rank certificate alone. But duplicate
// collapse plus connected-component splitting is exact (DESIGN.md §6), and
// at low occupancy a 100x100 pattern shatters into components small enough
// for the exact solver. This harness measures how far that pushes the
// provable frontier, and what preprocessing does across the families.

#include <cstdio>
#include <vector>

#include "benchgen/suites.h"
#include "common.h"
#include "core/preprocess.h"
#include "engine/engine.h"
#include "support/rng.h"

namespace {

/// Hard large instances: several gap blocks (r_B > rank each) scattered
/// block-diagonally and hidden under random row/column permutations. The
/// monolithic formula sees one big matrix; the component split recovers
/// the blocks.
std::vector<ebmf::benchgen::Instance> scattered_gap_suite(
    std::size_t blocks, std::size_t count, std::uint64_t seed) {
  ebmf::Rng rng(seed);
  std::vector<ebmf::benchgen::Instance> out;
  for (std::size_t c = 0; c < count; ++c) {
    const std::size_t n = blocks * 10;
    ebmf::BinaryMatrix big(n, n);
    for (std::size_t b = 0; b < blocks; ++b) {
      const auto gap = ebmf::benchgen::gap_matrix(10, 10, 3, rng);
      for (const auto& [i, j] : gap.matrix.ones())
        big.set(b * 10 + i, b * 10 + j);
    }
    auto shuffled = big.permuted_rows(rng.permutation(n));
    shuffled = shuffled.transposed()
                   .permuted_rows(rng.permutation(n))
                   .transposed();
    ebmf::benchgen::Instance inst;
    inst.family = "scattered-gap";
    inst.config = std::to_string(blocks) + " blocks";
    inst.matrix = std::move(shuffled);
    out.push_back(std::move(inst));
  }
  return out;
}

struct FamilyReport {
  std::size_t cases = 0;
  std::size_t proven_plain = 0;
  std::size_t proven_preprocessed = 0;
  std::size_t proven_split = 0;
  double time_plain = 0;
  double time_preprocessed = 0;
  double time_split = 0;
  double avg_components = 0;
  double avg_largest_cells = 0;
};

FamilyReport study(const std::vector<ebmf::benchgen::Instance>& instances,
                   const ebmf::bench::Options& opt) {
  const ebmf::engine::Engine engine;
  FamilyReport report;
  for (const auto& inst : instances) {
    ++report.cases;
    const auto reduction = ebmf::reduce_duplicates(inst.matrix);
    const auto comps = ebmf::split_components(reduction.reduced);
    report.avg_components += static_cast<double>(comps.size());
    std::size_t largest = 0;
    for (const auto& c : comps)
      largest = std::max(largest, c.matrix.ones_count());
    report.avg_largest_cells += static_cast<double>(largest);

    auto plain = ebmf::engine::SolveRequest::dense(inst.matrix, "sap");
    plain.preprocess = false;
    plain.trials = 100;
    plain.budget = opt.budget();
    // Guard the monolithic SMT as the paper effectively did: past ~120
    // cells construction+solve of the whole formula is hopeless within the
    // budget and only burns time.
    plain.smt_cell_limit = 120;
    const auto rp = engine.solve(plain);
    ebmf::bench::emit_json(opt, inst.family, inst.config + " plain", rp);
    report.time_plain += rp.total_seconds;
    if (rp.proven_optimal()) ++report.proven_plain;

    auto pre = plain;
    pre.preprocess = true;
    pre.budget = opt.budget();
    const auto rq = engine.solve(pre);
    ebmf::bench::emit_json(opt, inst.family, inst.config + " prep", rq);
    report.time_preprocessed += rq.total_seconds;
    if (rq.proven_optimal()) ++report.proven_preprocessed;

    // Component-parallel: the engine splits once and fans the components
    // out across the thread pool.
    auto par = plain;
    par.budget = opt.budget();
    const auto rs = engine.solve_split(par);
    ebmf::bench::emit_json(opt, inst.family, inst.config + " split", rs);
    report.time_split += rs.total_seconds;
    if (rs.proven_optimal()) ++report.proven_split;
  }
  if (report.cases != 0) {
    report.avg_components /= static_cast<double>(report.cases);
    report.avg_largest_cells /= static_cast<double>(report.cases);
  }
  return report;
}

void print_row(const char* label, const FamilyReport& r) {
  std::printf(
      "%-20s %5zu | %6.1f %9.0f | %6zu %8.2fs | %6zu %8.2fs | %6zu %8.2fs\n",
      label, r.cases, r.avg_components, r.avg_largest_cells, r.proven_plain,
      r.time_plain, r.proven_preprocessed, r.time_preprocessed,
      r.proven_split, r.time_split);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = ebmf::bench::parse_options(argc, argv);
  using namespace ebmf::benchgen;

  std::printf("=== Extension: exact preprocessing (dedup + components) ===\n");
  std::printf("('proven' = certified optimal within %.0fs budget)\n\n",
              opt.budget_seconds);
  std::printf("%-20s %5s | %6s %9s | %15s | %15s | %15s\n", "family", "cases",
              "comps", "max cells", "plain: opt/time", "prep: opt/time",
              "split: opt/time");
  std::printf("%s\n", std::string(104, '-').c_str());

  print_row("100x100 @ 1%",
            study(random_suite(100, 100, {0.01}, opt.count(10, 4), opt.seed),
                  opt));
  print_row("100x100 @ 2%",
            study(random_suite(100, 100, {0.02}, opt.count(10, 3),
                               opt.seed + 1),
                  opt));
  print_row("100x100 @ 5%",
            study(random_suite(100, 100, {0.05}, opt.count(10, 2),
                               opt.seed + 2),
                  opt));
  print_row("10x10 gap k=3",
            study(gap_suite(10, 10, {3}, opt.count(40, 8), opt.seed + 3),
                  opt));
  print_row("10x10 rand @ 30%",
            study(random_suite(10, 10, {0.3}, opt.count(10, 6), opt.seed + 4),
                  opt));
  print_row("scattered gap x4",
            study(scattered_gap_suite(4, opt.count(8, 3), opt.seed + 5),
                  opt));
  print_row("scattered gap x8",
            study(scattered_gap_suite(8, opt.count(6, 2), opt.seed + 6),
                  opt));

  std::printf("\nShape checks: sparse 100x100 shatters into many small "
              "components -> the\npreprocessed solver proves optimality where "
              "the monolithic one cannot;\ndense small instances are one "
              "component, so both columns agree there.\n");
  return 0;
}
