// Service-path benchmark: cold vs warm (cache-hit) solve latency on
// repeated FTQC per-patch patterns — the workload the ebmf::service result
// cache exists for. Every repeat is a fresh row/column permutation of the
// family's base pattern, so a hit must go through canonicalization and the
// partition lift, exactly like a live server request (minus the TCP hop).
//
// With --connect=HOST:PORT the same workload is sent over the wire to a
// running `ebmf serve` or `ebmf route` instead of the in-process engine:
// per-request wall-clock is then the full round trip, so the cold/warm
// split measures what a client of the (routed) fleet actually sees —
// backend cache hits and router L1 hits both count as warm.
//
// With --json, each solved instance emits one line in the common bench
// format ({"family":...,"config":...,"report":<SolveReport>}), cache
// telemetry included, so BENCH_*.json trajectories capture the hit rate and
// the warm/cold split.

// With --connections=N the family sweep is replaced by the connection-scale
// suite: an N-connection mixed-protocol storm (half line, half binary
// frames) that pipelines requests per connection and verifies zero lost and
// zero reordered replies, plus — when run in-process — a router→backend
// JSON-vs-binary A/B on a repeat-heavy family, measuring the throughput the
// negotiated binary fast path buys over the legacy JSON line hop.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "benchgen/generators.h"
#include "common.h"
#include "engine/engine.h"
#include "ftqc/patterns.h"
#include "io/request_io.h"
#include "net/frame_client.h"
#include "obs/metrics.h"
#include "router/router.h"
#include "service/cache.h"
#include "service/net.h"
#include "service/service.h"
#include "support/rng.h"
#include "support/stopwatch.h"

namespace {

using ebmf::BinaryMatrix;
using ebmf::Rng;

/// A fresh row/column permutation of `m` (the per-patch repeat shape:
/// same pattern, different patch position / orientation).
BinaryMatrix permuted_copy(const BinaryMatrix& m, Rng& rng) {
  const auto row_perm = rng.permutation(m.rows());
  const auto col_perm = rng.permutation(m.cols());
  BinaryMatrix out(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      if (m.test(row_perm[i], col_perm[j])) out.set(i, j);
  return out;
}

struct FamilyResult {
  std::string name;
  std::size_t instances = 0;
  std::size_t cold = 0;
  std::size_t warm = 0;
  double cold_seconds = 0.0;  // summed
  double warm_seconds = 0.0;  // summed
  /// Client-observed per-instance latency in micros (cold + warm mixed) —
  /// the quantile estimator the service tier itself uses, so the p50/p99
  /// printed here are comparable to the server's own exposition.
  std::shared_ptr<ebmf::obs::Histogram> latency =
      std::make_shared<ebmf::obs::Histogram>();
};

/// Solve one instance remotely (ebmf serve / ebmf route): wire round trip,
/// report parsed back, total_seconds overwritten with the client-observed
/// wall-clock — the number a fleet client actually experiences.
ebmf::engine::SolveReport wire_solve(ebmf::service::Client& client,
                                     const ebmf::engine::SolveRequest& request,
                                     double budget_seconds) {
  ebmf::io::WireRequest wire;
  wire.request = request;
  wire.budget_seconds = budget_seconds;
  ebmf::Stopwatch round_trip;
  const std::string reply =
      client.round_trip(ebmf::io::wire_request_json(wire));
  const double seconds = round_trip.seconds();
  auto report = ebmf::io::parse_wire_response(reply);  // throws on error
  report.total_seconds = seconds;
  // Who actually answered — under failover the serving endpoint changes
  // mid-run, and the --json lines are where a drill reads that from.
  report.add_telemetry("endpoint", client.endpoint());
  return report;
}

FamilyResult run_family(const ebmf::bench::Options& opt,
                        const ebmf::engine::Engine& engine,
                        ebmf::service::Client* client,
                        const std::string& name,
                        const std::vector<BinaryMatrix>& variants) {
  FamilyResult result;
  result.name = name;
  for (std::size_t k = 0; k < variants.size(); ++k) {
    auto request = ebmf::engine::SolveRequest::dense(variants[k], "auto");
    request.budget = opt.budget();
    request.trials = 40;
    request.label = name + "#" + std::to_string(k);
    const auto report =
        client != nullptr ? wire_solve(*client, request, opt.budget_seconds)
                          : engine.solve(request);
    const std::string* hit = report.find_telemetry("cache_hit");
    const std::string* l1 = report.find_telemetry("routed.l1");
    const bool warm = (hit != nullptr && *hit == "true") ||
                      (l1 != nullptr && *l1 == "hit");
    if (warm) {
      ++result.warm;
      result.warm_seconds += report.total_seconds;
    } else {
      ++result.cold;
      result.cold_seconds += report.total_seconds;
    }
    result.latency->record(
        static_cast<std::uint64_t>(report.total_seconds * 1e6));
    ++result.instances;
    ebmf::bench::emit_json(opt, "service_repeat", request.label, report);
  }
  return result;
}

void print_result(const FamilyResult& r) {
  const double cold_mean =
      r.cold == 0 ? 0.0 : r.cold_seconds / static_cast<double>(r.cold);
  const double warm_mean =
      r.warm == 0 ? 0.0 : r.warm_seconds / static_cast<double>(r.warm);
  const double speedup = warm_mean > 0 ? cold_mean / warm_mean : 0.0;
  std::printf("%-26s %5zu %6zu %7zu | %11.6f %11.6f | %8.1fx | %9.3f %9.3f\n",
              r.name.c_str(), r.instances, r.cold, r.warm, cold_mean * 1e3,
              warm_mean * 1e3, speedup,
              static_cast<double>(r.latency->quantile(0.5)) / 1e3,
              static_cast<double>(r.latency->quantile(0.99)) / 1e3);
}

// ---- the --connections suite -----------------------------------------------

struct StormTally {
  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> received{0};
  std::atomic<std::uint64_t> reordered{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> failed_connections{0};
};

/// The id a normalized reply leads with ({"id":N,...), -1 when absent.
std::int64_t reply_id(const std::string& reply) {
  if (reply.rfind("{\"id\":", 0) != 0) return -1;
  return std::atoll(reply.c_str() + 6);
}

/// One storm connection: pipeline `per_conn` id-tagged requests, then read
/// every reply back and verify the ids arrive in send order. Odd-indexed
/// connections negotiate the binary frame protocol so the storm exercises
/// both wires (and the upgrade path) at once.
void storm_connection(const std::string& host, std::uint16_t port,
                      std::size_t index, std::size_t per_conn,
                      StormTally& tally) {
  try {
    std::unique_ptr<ebmf::net::FrameClient> client;
    for (int attempt = 0;; ++attempt) {
      try {
        client =
            std::make_unique<ebmf::net::FrameClient>(host, port);
        break;
      } catch (const std::exception&) {
        // A full accept backlog under the storm ramp is not a failure;
        // back off briefly and retry.
        if (attempt >= 20) throw;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    if (index % 2 == 1 && !client->upgrade()) return;
    for (std::size_t i = 0; i < per_conn; ++i) {
      const char* pattern = (i % 2 == 0) ? "110;011;111" : "10;01";
      client->send_request(ebmf::io::parse_wire_request(
          "{\"id\":" + std::to_string(i) + ",\"pattern\":\"" + pattern +
          "\",\"label\":\"storm\"}"));
      tally.sent.fetch_add(1, std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < per_conn; ++i) {
      const std::string reply = client->read_reply();
      tally.received.fetch_add(1, std::memory_order_relaxed);
      if (reply_id(reply) != static_cast<std::int64_t>(i))
        tally.reordered.fetch_add(1, std::memory_order_relaxed);
      if (reply.find("\"error\"") != std::string::npos)
        tally.errors.fetch_add(1, std::memory_order_relaxed);
    }
  } catch (const std::exception&) {
    tally.failed_connections.fetch_add(1, std::memory_order_relaxed);
  }
}

/// Drive `lines` through one pipelined line-protocol connection (window of
/// 32 in flight) and return the wall-clock seconds for the whole run.
double drive_pipelined(ebmf::service::Client& client,
                       const std::vector<std::string>& lines,
                       std::uint64_t* errors) {
  const std::size_t window = 32;
  std::size_t next_send = 0;
  std::size_t next_read = 0;
  ebmf::Stopwatch clock;
  while (next_read < lines.size()) {
    while (next_send < lines.size() && next_send - next_read < window)
      client.send_line(lines[next_send++]);
    const std::string reply = client.read_line();
    ++next_read;
    if (reply.find("\"error\"") != std::string::npos) ++*errors;
  }
  return clock.seconds();
}

int run_connections_suite(const ebmf::bench::Options& opt,
                          const std::string& connect,
                          std::size_t connections, std::size_t per_conn,
                          std::size_t ab_requests) {
  // Resolve the storm target: an external tier (--connect) or an
  // in-process backend + router pair, storming the router so both tiers
  // run under the load.
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::unique_ptr<ebmf::service::Server> backend;
  std::unique_ptr<ebmf::router::Router> router;
  if (connect.empty()) {
    ebmf::service::ServerOptions so;
    so.port = 0;
    so.cache_mb = 64;
    so.budget_ceiling_seconds = 5.0;
    backend = std::make_unique<ebmf::service::Server>(so);
    backend->start();
    ebmf::router::RouterOptions ro;
    ro.port = 0;
    ro.l1_mb = 0;  // every request crosses the backend hop
    ro.max_inflight = connections * per_conn + 64;
    ro.reply_timeout_seconds = 30.0;
    ro.backends.push_back("127.0.0.1:" + std::to_string(backend->port()));
    router = std::make_unique<ebmf::router::Router>(ro);
    router->start();
    port = router->port();
  } else if (!ebmf::service::net::parse_endpoint(
                 connect.substr(0, connect.find(',')), host, port)) {
    std::fprintf(stderr, "bad --connect endpoint '%s'\n", connect.c_str());
    return 2;
  }

  std::printf("--- Connection-scale suite: %zu connections x %zu pipelined "
              "requests ---\n",
              connections, per_conn);
  std::printf("(half the connections upgrade to the binary frame protocol; "
              "target %s)\n\n",
              connect.empty() ? "in-process router+backend"
                              : connect.c_str());

  StormTally tally;
  ebmf::Stopwatch storm_clock;
  {
    std::vector<std::thread> threads;
    threads.reserve(connections);
    for (std::size_t c = 0; c < connections; ++c)
      threads.emplace_back(storm_connection, host, port, c, per_conn,
                           std::ref(tally));
    for (auto& t : threads) t.join();
  }
  const double storm_seconds = storm_clock.seconds();
  const std::uint64_t sent = tally.sent.load();
  const std::uint64_t received = tally.received.load();
  const std::uint64_t lost = sent - received;
  const double storm_rps =
      storm_seconds > 0 ? static_cast<double>(received) / storm_seconds : 0;
  std::printf("storm: %llu sent, %llu received, %llu lost, %llu reordered, "
              "%llu errors, %llu failed connections\n",
              static_cast<unsigned long long>(sent),
              static_cast<unsigned long long>(received),
              static_cast<unsigned long long>(lost),
              static_cast<unsigned long long>(tally.reordered.load()),
              static_cast<unsigned long long>(tally.errors.load()),
              static_cast<unsigned long long>(tally.failed_connections.load()));
  std::printf("storm: %.3fs wall, %.0f replies/s\n\n", storm_seconds,
              storm_rps);

  // The JSON-vs-binary A/B needs to flip the router's backend wire, so it
  // only runs against the in-process fleet.
  double json_rps = 0.0;
  double binary_rps = 0.0;
  std::uint64_t ab_errors = 0;
  if (connect.empty() && ab_requests > 0) {
    // A repeat-heavy family: every request is a fresh row/col permutation
    // of one base pattern, so after one cold solve the backend answers
    // from its cache and the hop cost — JSON render/parse + canonicalize
    // + lift versus the binary canonical-key fast path — dominates.
    Rng rng(opt.seed);
    const BinaryMatrix base =
        ebmf::ftqc::logical_pattern(40, 40, 0.06, rng);
    std::vector<std::string> lines;
    lines.reserve(ab_requests);
    for (std::size_t i = 0; i < ab_requests; ++i) {
      ebmf::io::WireRequest wire;
      wire.request = ebmf::engine::SolveRequest::dense(
          i == 0 ? base : permuted_copy(base, rng), "auto");
      wire.request.label = "ab#" + std::to_string(i);
      wire.id = static_cast<std::int64_t>(i);
      lines.push_back(ebmf::io::wire_request_json(wire));
    }
    const auto measure = [&](bool binary_backend) {
      ebmf::router::RouterOptions ro;
      ro.port = 0;
      ro.l1_mb = 0;
      ro.max_inflight = 4096;
      ro.reply_timeout_seconds = 30.0;
      ro.binary_backend = binary_backend;
      ro.backends.push_back("127.0.0.1:" +
                            std::to_string(backend->port()));
      ebmf::router::Router ab_router(ro);
      ab_router.start();
      ebmf::service::Client client("127.0.0.1", ab_router.port());
      // One untimed request pays the cold solve (and, on the binary
      // side, the pool's upgrade negotiation) outside the clock.
      (void)client.round_trip(lines[0]);
      const double seconds = drive_pipelined(client, lines, &ab_errors);
      ab_router.stop();
      return seconds > 0 ? static_cast<double>(lines.size()) / seconds : 0;
    };
    json_rps = measure(false);
    binary_rps = measure(true);
    const double speedup = json_rps > 0 ? binary_rps / json_rps : 0.0;
    std::printf("A/B over %zu permuted repeats of logical 40x40 occ=0.06 "
                "(router->backend hop):\n",
                ab_requests);
    std::printf("  JSON line backend wire:    %10.0f req/s\n", json_rps);
    std::printf("  binary frame backend wire: %10.0f req/s\n", binary_rps);
    std::printf("  binary speedup: %.2fx (%llu errors)\n", speedup,
                static_cast<unsigned long long>(ab_errors));
  } else if (!connect.empty()) {
    std::printf("(A/B skipped: --connect targets an external fleet whose "
                "backend wire is fixed)\n");
  }

  if (opt.json) {
    std::printf("{\"summary\":true,\"bench\":\"service_connections\","
                "\"connections\":%zu,\"per_conn\":%zu,\"sent\":%llu,"
                "\"received\":%llu,\"lost\":%llu,\"reordered\":%llu,"
                "\"errors\":%llu,\"failed_connections\":%llu,"
                "\"storm_seconds\":%.3f,\"storm_rps\":%.0f",
                connections, per_conn,
                static_cast<unsigned long long>(sent),
                static_cast<unsigned long long>(received),
                static_cast<unsigned long long>(lost),
                static_cast<unsigned long long>(tally.reordered.load()),
                static_cast<unsigned long long>(tally.errors.load()),
                static_cast<unsigned long long>(
                    tally.failed_connections.load()),
                storm_seconds, storm_rps);
    if (json_rps > 0 || binary_rps > 0)
      std::printf(",\"ab\":{\"requests\":%zu,\"json_rps\":%.0f,"
                  "\"binary_rps\":%.0f,\"binary_speedup\":%.3f,"
                  "\"errors\":%llu}",
                  ab_requests, json_rps, binary_rps,
                  json_rps > 0 ? binary_rps / json_rps : 0.0,
                  static_cast<unsigned long long>(ab_errors));
    std::printf("}\n");
  }

  if (router) router->stop();
  if (backend) backend->stop();
  // Lost or reordered replies are a hard failure regardless of gating.
  return (lost == 0 && tally.reordered.load() == 0 &&
          tally.failed_connections.load() == 0)
             ? 0
             : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // --connect=HOST:PORT, --hot=N, and the --connections suite flags are
  // bench_service-specific; strip them before the shared option parser
  // (which rejects unknown flags).
  std::string connect;
  std::size_t hot_repeats = 0;
  std::size_t connections = 0;
  std::size_t per_conn = 24;
  std::size_t ab_requests = 1500;
  std::vector<char*> filtered;
  filtered.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--connect=", 10) == 0)
      connect = argv[i] + 10;
    else if (std::strncmp(argv[i], "--hot=", 6) == 0)
      hot_repeats = static_cast<std::size_t>(std::atol(argv[i] + 6));
    else if (std::strncmp(argv[i], "--connections=", 14) == 0)
      connections = static_cast<std::size_t>(std::atol(argv[i] + 14));
    else if (std::strncmp(argv[i], "--per-conn=", 11) == 0)
      per_conn = static_cast<std::size_t>(std::atol(argv[i] + 11));
    else if (std::strncmp(argv[i], "--ab-requests=", 14) == 0)
      ab_requests = static_cast<std::size_t>(std::atol(argv[i] + 14));
    else
      filtered.push_back(argv[i]);
  }
  const auto opt = ebmf::bench::parse_options(
      static_cast<int>(filtered.size()), filtered.data());
  if (connections > 0)
    return run_connections_suite(opt, connect, connections, per_conn,
                                 ab_requests);
  Rng rng(opt.seed);

  ebmf::engine::Engine engine;
  engine.set_cache(ebmf::cache::ResultCache::with_capacity_mb(64));

  std::unique_ptr<ebmf::service::Client> client;
  if (!connect.empty()) {
    // --connect takes a comma-separated address list (routers and/or
    // backends); the Client fails over across it.
    std::vector<std::string> endpoints;
    std::size_t start = 0;
    while (start <= connect.size()) {
      std::size_t comma = connect.find(',', start);
      if (comma == std::string::npos) comma = connect.size();
      const std::string entry = connect.substr(start, comma - start);
      std::string host;
      std::uint16_t port = 0;
      if (!entry.empty()) {
        if (!ebmf::service::net::parse_endpoint(entry, host, port)) {
          std::fprintf(stderr,
                       "bad --connect endpoint '%s' (want host:port"
                       "[,host:port...])\n",
                       entry.c_str());
          return 2;
        }
        endpoints.push_back(entry);
      }
      start = comma + 1;
    }
    try {
      client = std::make_unique<ebmf::service::Client>(endpoints);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "connect failed: %s\n", e.what());
      return 1;
    }
  }

  std::printf(
      "--- Service result cache: cold vs warm latency on FTQC repeats ---\n");
  if (client != nullptr)
    std::printf("(driving %s over the wire; latencies are full round "
                "trips)\n", connect.c_str());
  std::printf("(every repeat is a fresh row/col permutation of the base "
              "pattern)\n\n");
  std::printf("%-26s %5s %6s %7s | %11s %11s | %9s | %9s %9s\n", "family",
              "insts", "cold", "warm", "cold ms", "warm ms", "speedup",
              "p50 ms", "p99 ms");
  std::printf("%s\n", std::string(110, '-').c_str());

  std::vector<FamilyResult> results;

  {
    // Surface-code boundary rows: all d offsets of a d x d patch are row
    // permutations of one pattern (one cold solve, d-1 hits).
    const std::size_t d = 13;
    std::vector<BinaryMatrix> variants;
    for (std::size_t repeat = 0; repeat < opt.count(4, 2); ++repeat)
      for (std::size_t row = 0; row < d; ++row)
        variants.push_back(ebmf::ftqc::boundary_row_patch(d, row));
    results.push_back(
        run_family(opt, engine, client.get(), "patch-boundary d=13", variants));
  }
  {
    // Checkerboard sublattice, both parities, repeated.
    std::vector<BinaryMatrix> variants;
    for (std::size_t repeat = 0; repeat < opt.count(20, 8); ++repeat) {
      variants.push_back(ebmf::ftqc::checkerboard_patch(12, repeat % 2));
    }
    results.push_back(
        run_family(opt, engine, client.get(), "patch-checker d=12", variants));
  }
  {
    // Logical-level sparse addressing pattern (shatters into components;
    // the exact sparse path makes the cold solve substantial).
    const BinaryMatrix base =
        ebmf::ftqc::logical_pattern(48, 48, 0.04, rng);
    std::vector<BinaryMatrix> variants{base};
    for (std::size_t repeat = 1; repeat < opt.count(24, 10); ++repeat)
      variants.push_back(permuted_copy(base, rng));
    results.push_back(
        run_family(opt, engine, client.get(), "logical 48x48 occ=0.04", variants));
  }
  {
    // qLDPC 1D memory blocks.
    const BinaryMatrix base =
        ebmf::ftqc::qldpc_block_pattern(12, 18, 0.3, rng);
    std::vector<BinaryMatrix> variants{base};
    for (std::size_t repeat = 1; repeat < opt.count(24, 10); ++repeat)
      variants.push_back(permuted_copy(base, rng));
    results.push_back(
        run_family(opt, engine, client.get(), "qldpc 12x18 occ=0.3", variants));
  }
  {
    // Two-level structure: logical pattern tensored with a physical patch.
    const BinaryMatrix base = BinaryMatrix::kron(
        ebmf::ftqc::logical_pattern(4, 4, 0.5, rng),
        ebmf::ftqc::checkerboard_patch(3, 0));
    std::vector<BinaryMatrix> variants{base};
    for (std::size_t repeat = 1; repeat < opt.count(16, 8); ++repeat)
      variants.push_back(permuted_copy(base, rng));
    results.push_back(
        run_family(opt, engine, client.get(), "kron(4x4, checker3)", variants));
  }
  {
    // A deliberately SMT-hard per-patch pattern (gap family, slack rank
    // bound): the cold solve pays real bound-search time — typically the
    // whole budget — and the warm hits replay its result for the cost of
    // canonicalization + lift.
    const auto gap = ebmf::benchgen::gap_matrix(20, 20, 6, rng);
    std::vector<BinaryMatrix> variants{gap.matrix};
    for (std::size_t repeat = 1; repeat < opt.count(12, 6); ++repeat)
      variants.push_back(permuted_copy(gap.matrix, rng));
    results.push_back(run_family(opt, engine, client.get(), "gap 20x20 k=6", variants));
  }
  if (hot_repeats > 0) {
    // --hot=N: the skewed repeat distribution of lattice-surgery traffic —
    // one pattern carries N permuted repeats. Against a dynamic router
    // (--connect) this is the workload that crosses --promote-after and
    // exercises hot-key replication (`cluster.promote` telemetry on the
    // promoting reply, `ebmf client --stats --json` for the counters).
    const BinaryMatrix base = ebmf::ftqc::logical_pattern(16, 16, 0.25, rng);
    std::vector<BinaryMatrix> variants{base};
    for (std::size_t repeat = 1; repeat < hot_repeats; ++repeat)
      variants.push_back(permuted_copy(base, rng));
    results.push_back(run_family(opt, engine, client.get(),
                                 "hot logical 16x16 (skewed)", variants));
  }

  double cold_mean_total = 0.0;
  double warm_mean_total = 0.0;
  std::size_t families_with_warm = 0;
  for (const auto& r : results) {
    print_result(r);
    if (r.warm > 0 && r.cold > 0) {
      cold_mean_total += r.cold_seconds / static_cast<double>(r.cold);
      warm_mean_total += r.warm_seconds / static_cast<double>(r.warm);
      ++families_with_warm;
    }
  }

  if (client == nullptr) {
    const auto stats = engine.cache()->stats();
    std::printf("\ncache: %llu hits, %llu misses, %llu evictions, %zu "
                "entries (%zu bytes)\n",
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses),
                static_cast<unsigned long long>(stats.evictions),
                stats.entries, stats.bytes);
  } else {
    std::printf("\n(remote run: cache counters live on the fleet — ask "
                "with `ebmf client --stats`)\n");
  }
  if (families_with_warm > 0 && warm_mean_total > 0)
    std::printf("aggregate warm speedup over cold (mean of family means): "
                "%.1fx\n",
                cold_mean_total / warm_mean_total);

  if (opt.json) {
    // The machine-readable summary line tools/bench_compare.py gates tail
    // latency on: client-observed p50/p99 micros per family, measured by
    // the same histogram estimator the service tier exposes.
    std::printf("{\"summary\":true,\"bench\":\"service\",\"families\":[");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const FamilyResult& r = results[i];
      std::printf("%s{\"name\":\"%s\",\"count\":%llu,\"p50_us\":%llu,"
                  "\"p90_us\":%llu,\"p99_us\":%llu,\"max_us\":%llu}",
                  i == 0 ? "" : ",", r.name.c_str(),
                  static_cast<unsigned long long>(r.latency->count()),
                  static_cast<unsigned long long>(r.latency->quantile(0.5)),
                  static_cast<unsigned long long>(r.latency->quantile(0.9)),
                  static_cast<unsigned long long>(r.latency->quantile(0.99)),
                  static_cast<unsigned long long>(r.latency->max()));
    }
    std::printf("]}\n");
  }
  return 0;
}
