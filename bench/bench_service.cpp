// Service-path benchmark: cold vs warm (cache-hit) solve latency on
// repeated FTQC per-patch patterns — the workload the ebmf::service result
// cache exists for. Every repeat is a fresh row/column permutation of the
// family's base pattern, so a hit must go through canonicalization and the
// partition lift, exactly like a live server request (minus the TCP hop).
//
// With --connect=HOST:PORT the same workload is sent over the wire to a
// running `ebmf serve` or `ebmf route` instead of the in-process engine:
// per-request wall-clock is then the full round trip, so the cold/warm
// split measures what a client of the (routed) fleet actually sees —
// backend cache hits and router L1 hits both count as warm.
//
// With --json, each solved instance emits one line in the common bench
// format ({"family":...,"config":...,"report":<SolveReport>}), cache
// telemetry included, so BENCH_*.json trajectories capture the hit rate and
// the warm/cold split.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "benchgen/generators.h"
#include "common.h"
#include "engine/engine.h"
#include "ftqc/patterns.h"
#include "io/request_io.h"
#include "obs/metrics.h"
#include "service/cache.h"
#include "service/net.h"
#include "service/service.h"
#include "support/rng.h"
#include "support/stopwatch.h"

namespace {

using ebmf::BinaryMatrix;
using ebmf::Rng;

/// A fresh row/column permutation of `m` (the per-patch repeat shape:
/// same pattern, different patch position / orientation).
BinaryMatrix permuted_copy(const BinaryMatrix& m, Rng& rng) {
  const auto row_perm = rng.permutation(m.rows());
  const auto col_perm = rng.permutation(m.cols());
  BinaryMatrix out(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      if (m.test(row_perm[i], col_perm[j])) out.set(i, j);
  return out;
}

struct FamilyResult {
  std::string name;
  std::size_t instances = 0;
  std::size_t cold = 0;
  std::size_t warm = 0;
  double cold_seconds = 0.0;  // summed
  double warm_seconds = 0.0;  // summed
  /// Client-observed per-instance latency in micros (cold + warm mixed) —
  /// the quantile estimator the service tier itself uses, so the p50/p99
  /// printed here are comparable to the server's own exposition.
  std::shared_ptr<ebmf::obs::Histogram> latency =
      std::make_shared<ebmf::obs::Histogram>();
};

/// Solve one instance remotely (ebmf serve / ebmf route): wire round trip,
/// report parsed back, total_seconds overwritten with the client-observed
/// wall-clock — the number a fleet client actually experiences.
ebmf::engine::SolveReport wire_solve(ebmf::service::Client& client,
                                     const ebmf::engine::SolveRequest& request,
                                     double budget_seconds) {
  ebmf::io::WireRequest wire;
  wire.request = request;
  wire.budget_seconds = budget_seconds;
  ebmf::Stopwatch round_trip;
  const std::string reply =
      client.round_trip(ebmf::io::wire_request_json(wire));
  const double seconds = round_trip.seconds();
  auto report = ebmf::io::parse_wire_response(reply);  // throws on error
  report.total_seconds = seconds;
  // Who actually answered — under failover the serving endpoint changes
  // mid-run, and the --json lines are where a drill reads that from.
  report.add_telemetry("endpoint", client.endpoint());
  return report;
}

FamilyResult run_family(const ebmf::bench::Options& opt,
                        const ebmf::engine::Engine& engine,
                        ebmf::service::Client* client,
                        const std::string& name,
                        const std::vector<BinaryMatrix>& variants) {
  FamilyResult result;
  result.name = name;
  for (std::size_t k = 0; k < variants.size(); ++k) {
    auto request = ebmf::engine::SolveRequest::dense(variants[k], "auto");
    request.budget = opt.budget();
    request.trials = 40;
    request.label = name + "#" + std::to_string(k);
    const auto report =
        client != nullptr ? wire_solve(*client, request, opt.budget_seconds)
                          : engine.solve(request);
    const std::string* hit = report.find_telemetry("cache_hit");
    const std::string* l1 = report.find_telemetry("routed.l1");
    const bool warm = (hit != nullptr && *hit == "true") ||
                      (l1 != nullptr && *l1 == "hit");
    if (warm) {
      ++result.warm;
      result.warm_seconds += report.total_seconds;
    } else {
      ++result.cold;
      result.cold_seconds += report.total_seconds;
    }
    result.latency->record(
        static_cast<std::uint64_t>(report.total_seconds * 1e6));
    ++result.instances;
    ebmf::bench::emit_json(opt, "service_repeat", request.label, report);
  }
  return result;
}

void print_result(const FamilyResult& r) {
  const double cold_mean =
      r.cold == 0 ? 0.0 : r.cold_seconds / static_cast<double>(r.cold);
  const double warm_mean =
      r.warm == 0 ? 0.0 : r.warm_seconds / static_cast<double>(r.warm);
  const double speedup = warm_mean > 0 ? cold_mean / warm_mean : 0.0;
  std::printf("%-26s %5zu %6zu %7zu | %11.6f %11.6f | %8.1fx | %9.3f %9.3f\n",
              r.name.c_str(), r.instances, r.cold, r.warm, cold_mean * 1e3,
              warm_mean * 1e3, speedup,
              static_cast<double>(r.latency->quantile(0.5)) / 1e3,
              static_cast<double>(r.latency->quantile(0.99)) / 1e3);
}

}  // namespace

int main(int argc, char** argv) {
  // --connect=HOST:PORT and --hot=N are bench_service-specific; strip them
  // before the shared option parser (which rejects unknown flags).
  std::string connect;
  std::size_t hot_repeats = 0;
  std::vector<char*> filtered;
  filtered.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--connect=", 10) == 0)
      connect = argv[i] + 10;
    else if (std::strncmp(argv[i], "--hot=", 6) == 0)
      hot_repeats = static_cast<std::size_t>(std::atol(argv[i] + 6));
    else
      filtered.push_back(argv[i]);
  }
  const auto opt = ebmf::bench::parse_options(
      static_cast<int>(filtered.size()), filtered.data());
  Rng rng(opt.seed);

  ebmf::engine::Engine engine;
  engine.set_cache(ebmf::cache::ResultCache::with_capacity_mb(64));

  std::unique_ptr<ebmf::service::Client> client;
  if (!connect.empty()) {
    // --connect takes a comma-separated address list (routers and/or
    // backends); the Client fails over across it.
    std::vector<std::string> endpoints;
    std::size_t start = 0;
    while (start <= connect.size()) {
      std::size_t comma = connect.find(',', start);
      if (comma == std::string::npos) comma = connect.size();
      const std::string entry = connect.substr(start, comma - start);
      std::string host;
      std::uint16_t port = 0;
      if (!entry.empty()) {
        if (!ebmf::service::net::parse_endpoint(entry, host, port)) {
          std::fprintf(stderr,
                       "bad --connect endpoint '%s' (want host:port"
                       "[,host:port...])\n",
                       entry.c_str());
          return 2;
        }
        endpoints.push_back(entry);
      }
      start = comma + 1;
    }
    try {
      client = std::make_unique<ebmf::service::Client>(endpoints);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "connect failed: %s\n", e.what());
      return 1;
    }
  }

  std::printf(
      "--- Service result cache: cold vs warm latency on FTQC repeats ---\n");
  if (client != nullptr)
    std::printf("(driving %s over the wire; latencies are full round "
                "trips)\n", connect.c_str());
  std::printf("(every repeat is a fresh row/col permutation of the base "
              "pattern)\n\n");
  std::printf("%-26s %5s %6s %7s | %11s %11s | %9s | %9s %9s\n", "family",
              "insts", "cold", "warm", "cold ms", "warm ms", "speedup",
              "p50 ms", "p99 ms");
  std::printf("%s\n", std::string(110, '-').c_str());

  std::vector<FamilyResult> results;

  {
    // Surface-code boundary rows: all d offsets of a d x d patch are row
    // permutations of one pattern (one cold solve, d-1 hits).
    const std::size_t d = 13;
    std::vector<BinaryMatrix> variants;
    for (std::size_t repeat = 0; repeat < opt.count(4, 2); ++repeat)
      for (std::size_t row = 0; row < d; ++row)
        variants.push_back(ebmf::ftqc::boundary_row_patch(d, row));
    results.push_back(
        run_family(opt, engine, client.get(), "patch-boundary d=13", variants));
  }
  {
    // Checkerboard sublattice, both parities, repeated.
    std::vector<BinaryMatrix> variants;
    for (std::size_t repeat = 0; repeat < opt.count(20, 8); ++repeat) {
      variants.push_back(ebmf::ftqc::checkerboard_patch(12, repeat % 2));
    }
    results.push_back(
        run_family(opt, engine, client.get(), "patch-checker d=12", variants));
  }
  {
    // Logical-level sparse addressing pattern (shatters into components;
    // the exact sparse path makes the cold solve substantial).
    const BinaryMatrix base =
        ebmf::ftqc::logical_pattern(48, 48, 0.04, rng);
    std::vector<BinaryMatrix> variants{base};
    for (std::size_t repeat = 1; repeat < opt.count(24, 10); ++repeat)
      variants.push_back(permuted_copy(base, rng));
    results.push_back(
        run_family(opt, engine, client.get(), "logical 48x48 occ=0.04", variants));
  }
  {
    // qLDPC 1D memory blocks.
    const BinaryMatrix base =
        ebmf::ftqc::qldpc_block_pattern(12, 18, 0.3, rng);
    std::vector<BinaryMatrix> variants{base};
    for (std::size_t repeat = 1; repeat < opt.count(24, 10); ++repeat)
      variants.push_back(permuted_copy(base, rng));
    results.push_back(
        run_family(opt, engine, client.get(), "qldpc 12x18 occ=0.3", variants));
  }
  {
    // Two-level structure: logical pattern tensored with a physical patch.
    const BinaryMatrix base = BinaryMatrix::kron(
        ebmf::ftqc::logical_pattern(4, 4, 0.5, rng),
        ebmf::ftqc::checkerboard_patch(3, 0));
    std::vector<BinaryMatrix> variants{base};
    for (std::size_t repeat = 1; repeat < opt.count(16, 8); ++repeat)
      variants.push_back(permuted_copy(base, rng));
    results.push_back(
        run_family(opt, engine, client.get(), "kron(4x4, checker3)", variants));
  }
  {
    // A deliberately SMT-hard per-patch pattern (gap family, slack rank
    // bound): the cold solve pays real bound-search time — typically the
    // whole budget — and the warm hits replay its result for the cost of
    // canonicalization + lift.
    const auto gap = ebmf::benchgen::gap_matrix(20, 20, 6, rng);
    std::vector<BinaryMatrix> variants{gap.matrix};
    for (std::size_t repeat = 1; repeat < opt.count(12, 6); ++repeat)
      variants.push_back(permuted_copy(gap.matrix, rng));
    results.push_back(run_family(opt, engine, client.get(), "gap 20x20 k=6", variants));
  }
  if (hot_repeats > 0) {
    // --hot=N: the skewed repeat distribution of lattice-surgery traffic —
    // one pattern carries N permuted repeats. Against a dynamic router
    // (--connect) this is the workload that crosses --promote-after and
    // exercises hot-key replication (`cluster.promote` telemetry on the
    // promoting reply, `ebmf client --stats --json` for the counters).
    const BinaryMatrix base = ebmf::ftqc::logical_pattern(16, 16, 0.25, rng);
    std::vector<BinaryMatrix> variants{base};
    for (std::size_t repeat = 1; repeat < hot_repeats; ++repeat)
      variants.push_back(permuted_copy(base, rng));
    results.push_back(run_family(opt, engine, client.get(),
                                 "hot logical 16x16 (skewed)", variants));
  }

  double cold_mean_total = 0.0;
  double warm_mean_total = 0.0;
  std::size_t families_with_warm = 0;
  for (const auto& r : results) {
    print_result(r);
    if (r.warm > 0 && r.cold > 0) {
      cold_mean_total += r.cold_seconds / static_cast<double>(r.cold);
      warm_mean_total += r.warm_seconds / static_cast<double>(r.warm);
      ++families_with_warm;
    }
  }

  if (client == nullptr) {
    const auto stats = engine.cache()->stats();
    std::printf("\ncache: %llu hits, %llu misses, %llu evictions, %zu "
                "entries (%zu bytes)\n",
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses),
                static_cast<unsigned long long>(stats.evictions),
                stats.entries, stats.bytes);
  } else {
    std::printf("\n(remote run: cache counters live on the fleet — ask "
                "with `ebmf client --stats`)\n");
  }
  if (families_with_warm > 0 && warm_mean_total > 0)
    std::printf("aggregate warm speedup over cold (mean of family means): "
                "%.1fx\n",
                cold_mean_total / warm_mean_total);

  if (opt.json) {
    // The machine-readable summary line tools/bench_compare.py gates tail
    // latency on: client-observed p50/p99 micros per family, measured by
    // the same histogram estimator the service tier exposes.
    std::printf("{\"summary\":true,\"bench\":\"service\",\"families\":[");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const FamilyResult& r = results[i];
      std::printf("%s{\"name\":\"%s\",\"count\":%llu,\"p50_us\":%llu,"
                  "\"p90_us\":%llu,\"p99_us\":%llu,\"max_us\":%llu}",
                  i == 0 ? "" : ",", r.name.c_str(),
                  static_cast<unsigned long long>(r.latency->count()),
                  static_cast<unsigned long long>(r.latency->quantile(0.5)),
                  static_cast<unsigned long long>(r.latency->quantile(0.9)),
                  static_cast<unsigned long long>(r.latency->quantile(0.99)),
                  static_cast<unsigned long long>(r.latency->max()));
    }
    std::printf("]}\n");
  }
  return 0;
}
