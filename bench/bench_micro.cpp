// Component microbenchmarks (google-benchmark): the building blocks whose
// throughput determines how far the heuristics scale (the paper's 100x100
// "current limit of atom array technology" and beyond).

#include <benchmark/benchmark.h>

#include "benchgen/generators.h"
#include "core/bounds.h"
#include "core/row_packing.h"
#include "core/trivial.h"
#include "dlx/packing_dlx.h"
#include "linalg/rank.h"
#include "sat/cardinality.h"
#include "sat/solver.h"
#include "smt/label_formula.h"
#include "support/bitvec.h"
#include "support/rng.h"

namespace {

ebmf::BinaryMatrix random_matrix(std::size_t n, double occ,
                                 std::uint64_t seed) {
  ebmf::Rng rng(seed);
  return ebmf::BinaryMatrix::random(n, n, occ, rng);
}

// ---- BitVec -------------------------------------------------------------

void BM_BitVecSubset(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ebmf::Rng rng(1);
  ebmf::BitVec a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.chance(0.3)) a.set(i);
    if (rng.chance(0.6)) b.set(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.subset_of(b));
  }
}
BENCHMARK(BM_BitVecSubset)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_BitVecAndNot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ebmf::Rng rng(2);
  ebmf::BitVec a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.chance(0.5)) a.set(i);
    if (rng.chance(0.5)) b.set(i);
  }
  for (auto _ : state) {
    auto c = a;
    c -= b;
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_BitVecAndNot)->Arg(64)->Arg(1024)->Arg(4096);

// ---- rank ---------------------------------------------------------------

void BM_RealRank(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = random_matrix(n, 0.5, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ebmf::real_rank(m));
  }
}
BENCHMARK(BM_RealRank)->Arg(10)->Arg(30)->Arg(100);

void BM_RankSparseBareissPath(benchmark::State& state) {
  // Rank-deficient sparse matrices force the exact Bareiss fallback.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = random_matrix(n, 0.03, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ebmf::real_rank(m));
  }
}
BENCHMARK(BM_RankSparseBareissPath)->Arg(30)->Arg(60)->Arg(100);

// ---- heuristics ----------------------------------------------------------

void BM_RowPackingPass(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = random_matrix(n, 0.5, 5);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ebmf::row_packing_pass(m, order));
  }
}
BENCHMARK(BM_RowPackingPass)->Arg(10)->Arg(30)->Arg(100)->Arg(200);

void BM_RowPackingHundredTrials(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = random_matrix(n, 0.5, 6);
  for (auto _ : state) {
    ebmf::RowPackingOptions opt;
    opt.trials = 100;
    benchmark::DoNotOptimize(ebmf::row_packing_ebmf(m, opt));
  }
}
BENCHMARK(BM_RowPackingHundredTrials)->Arg(10)->Arg(50)->Arg(100);

void BM_DlxPackingPass(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = random_matrix(n, 0.5, 7);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ebmf::dlx::row_packing_dlx_pass(m, order));
  }
}
BENCHMARK(BM_DlxPackingPass)->Arg(10)->Arg(30)->Arg(100);

void BM_TrivialHeuristic(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = random_matrix(n, 0.5, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ebmf::trivial_ebmf(m));
  }
}
BENCHMARK(BM_TrivialHeuristic)->Arg(10)->Arg(100);

// ---- SMT / SAT -----------------------------------------------------------

void BM_FormulaConstructionOneHot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = random_matrix(n, 0.5, 9);
  for (auto _ : state) {
    ebmf::smt::EncoderOptions opt;
    opt.encoding = ebmf::smt::LabelEncoding::OneHot;
    ebmf::smt::LabelFormula f(m, n, opt);
    benchmark::DoNotOptimize(f.stats().clauses);
  }
}
BENCHMARK(BM_FormulaConstructionOneHot)->Arg(6)->Arg(8)->Arg(10);

void BM_SmtDecideSat(benchmark::State& state) {
  // Decision at the optimum (SAT side) for an 8x8 random matrix.
  const auto m = random_matrix(8, 0.5, 10);
  const auto rank = ebmf::real_rank(m);
  for (auto _ : state) {
    ebmf::smt::LabelFormula f(m, std::max<std::size_t>(rank, 1));
    benchmark::DoNotOptimize(f.solve());
  }
}
BENCHMARK(BM_SmtDecideSat);

void BM_SatPigeonholeUnsat(benchmark::State& state) {
  const auto holes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ebmf::sat::Solver s;
    std::vector<std::vector<ebmf::sat::Lit>> x(
        static_cast<std::size_t>(holes) + 1);
    for (auto& row : x)
      for (int h = 0; h < holes; ++h)
        row.push_back(ebmf::sat::pos(s.new_var()));
    for (auto& row : x) s.add_clause(ebmf::sat::Clause(row));
    for (int h = 0; h < holes; ++h)
      for (std::size_t p1 = 0; p1 < x.size(); ++p1)
        for (std::size_t p2 = p1 + 1; p2 < x.size(); ++p2)
          s.add_clause(x[p1][static_cast<std::size_t>(h)].neg(),
                       x[p2][static_cast<std::size_t>(h)].neg());
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_SatPigeonholeUnsat)->Arg(6)->Arg(8);

// ---- generators ----------------------------------------------------------

void BM_GapGenerator(benchmark::State& state) {
  ebmf::Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ebmf::benchgen::gap_matrix(10, 10, 4, rng));
  }
}
BENCHMARK(BM_GapGenerator);

void BM_KnownOptimalGenerator(benchmark::State& state) {
  ebmf::Rng rng(12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ebmf::benchgen::known_optimal_matrix(10, 10, 5, rng));
  }
}
BENCHMARK(BM_KnownOptimalGenerator);

}  // namespace
