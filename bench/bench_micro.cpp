// Component microbenchmarks (google-benchmark): the building blocks whose
// throughput determines how far the heuristics scale (the paper's 100x100
// "current limit of atom array technology" and beyond).
//
// `bench_micro --json` skips google-benchmark and instead emits one JSON
// line of SAT propagation-throughput numbers (the solver's hot-path
// metric): a pigeonhole UNSAT proof and a large conflict-capped SMT
// decision formula. tools/bench_compare.py diffs these lines against the
// committed BENCH_sap.json baseline.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <thread>

#include "benchgen/generators.h"
#include "core/bounds.h"
#include "core/row_packing.h"
#include "core/trivial.h"
#include "dlx/packing_dlx.h"
#include "linalg/rank.h"
#include "sat/cardinality.h"
#include "sat/solver.h"
#include "smt/label_formula.h"
#include "support/bitvec.h"
#include "support/rng.h"
#include "support/stopwatch.h"

namespace {

ebmf::BinaryMatrix random_matrix(std::size_t n, double occ,
                                 std::uint64_t seed) {
  ebmf::Rng rng(seed);
  return ebmf::BinaryMatrix::random(n, n, occ, rng);
}

// ---- BitVec -------------------------------------------------------------

void BM_BitVecSubset(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ebmf::Rng rng(1);
  ebmf::BitVec a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.chance(0.3)) a.set(i);
    if (rng.chance(0.6)) b.set(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.subset_of(b));
  }
}
BENCHMARK(BM_BitVecSubset)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_BitVecAndNot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ebmf::Rng rng(2);
  ebmf::BitVec a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.chance(0.5)) a.set(i);
    if (rng.chance(0.5)) b.set(i);
  }
  for (auto _ : state) {
    auto c = a;
    c -= b;
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_BitVecAndNot)->Arg(64)->Arg(1024)->Arg(4096);

// ---- rank ---------------------------------------------------------------

void BM_RealRank(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = random_matrix(n, 0.5, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ebmf::real_rank(m));
  }
}
BENCHMARK(BM_RealRank)->Arg(10)->Arg(30)->Arg(100);

void BM_RankSparseBareissPath(benchmark::State& state) {
  // Rank-deficient sparse matrices force the exact Bareiss fallback.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = random_matrix(n, 0.03, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ebmf::real_rank(m));
  }
}
BENCHMARK(BM_RankSparseBareissPath)->Arg(30)->Arg(60)->Arg(100);

// ---- heuristics ----------------------------------------------------------

void BM_RowPackingPass(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = random_matrix(n, 0.5, 5);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ebmf::row_packing_pass(m, order));
  }
}
BENCHMARK(BM_RowPackingPass)->Arg(10)->Arg(30)->Arg(100)->Arg(200);

void BM_RowPackingHundredTrials(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = random_matrix(n, 0.5, 6);
  for (auto _ : state) {
    ebmf::RowPackingOptions opt;
    opt.trials = 100;
    benchmark::DoNotOptimize(ebmf::row_packing_ebmf(m, opt));
  }
}
BENCHMARK(BM_RowPackingHundredTrials)->Arg(10)->Arg(50)->Arg(100);

void BM_DlxPackingPass(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = random_matrix(n, 0.5, 7);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ebmf::dlx::row_packing_dlx_pass(m, order));
  }
}
BENCHMARK(BM_DlxPackingPass)->Arg(10)->Arg(30)->Arg(100);

void BM_TrivialHeuristic(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = random_matrix(n, 0.5, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ebmf::trivial_ebmf(m));
  }
}
BENCHMARK(BM_TrivialHeuristic)->Arg(10)->Arg(100);

// ---- SMT / SAT -----------------------------------------------------------

void BM_FormulaConstructionOneHot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = random_matrix(n, 0.5, 9);
  for (auto _ : state) {
    ebmf::smt::EncoderOptions opt;
    opt.encoding = ebmf::smt::LabelEncoding::OneHot;
    ebmf::smt::LabelFormula f(m, n, opt);
    benchmark::DoNotOptimize(f.stats().clauses);
  }
}
BENCHMARK(BM_FormulaConstructionOneHot)->Arg(6)->Arg(8)->Arg(10);

void BM_SmtDecideSat(benchmark::State& state) {
  // Decision at the optimum (SAT side) for an 8x8 random matrix.
  const auto m = random_matrix(8, 0.5, 10);
  const auto rank = ebmf::real_rank(m);
  for (auto _ : state) {
    ebmf::smt::LabelFormula f(m, std::max<std::size_t>(rank, 1));
    benchmark::DoNotOptimize(f.solve());
  }
}
BENCHMARK(BM_SmtDecideSat);

void BM_SatPigeonholeUnsat(benchmark::State& state) {
  const auto holes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ebmf::sat::Solver s;
    std::vector<std::vector<ebmf::sat::Lit>> x(
        static_cast<std::size_t>(holes) + 1);
    for (auto& row : x)
      for (int h = 0; h < holes; ++h)
        row.push_back(ebmf::sat::pos(s.new_var()));
    for (auto& row : x) s.add_clause(ebmf::sat::Clause(row));
    for (int h = 0; h < holes; ++h)
      for (std::size_t p1 = 0; p1 < x.size(); ++p1)
        for (std::size_t p2 = p1 + 1; p2 < x.size(); ++p2)
          s.add_clause(x[p1][static_cast<std::size_t>(h)].neg(),
                       x[p2][static_cast<std::size_t>(h)].neg());
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_SatPigeonholeUnsat)->Arg(6)->Arg(8);

// ---- generators ----------------------------------------------------------

void BM_GapGenerator(benchmark::State& state) {
  ebmf::Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ebmf::benchgen::gap_matrix(10, 10, 4, rng));
  }
}
BENCHMARK(BM_GapGenerator);

void BM_KnownOptimalGenerator(benchmark::State& state) {
  ebmf::Rng rng(12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ebmf::benchgen::known_optimal_matrix(10, 10, 5, rng));
  }
}
BENCHMARK(BM_KnownOptimalGenerator);

// ---- --json propagation-throughput summary ------------------------------

struct SatRun {
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  double seconds = 0.0;
  [[nodiscard]] double propagations_per_sec() const {
    return seconds > 0 ? static_cast<double>(propagations) / seconds : 0.0;
  }
};

/// Pigeonhole UNSAT proof (9 pigeons, 8 holes): small formula, deep search.
SatRun run_pigeonhole() {
  ebmf::sat::Solver s;
  constexpr int kHoles = 8;
  std::vector<std::vector<ebmf::sat::Lit>> x(kHoles + 1);
  for (auto& row : x)
    for (int h = 0; h < kHoles; ++h) row.push_back(ebmf::sat::pos(s.new_var()));
  for (auto& row : x) s.add_clause(ebmf::sat::Clause(row));
  for (int h = 0; h < kHoles; ++h)
    for (std::size_t p1 = 0; p1 < x.size(); ++p1)
      for (std::size_t p2 = p1 + 1; p2 < x.size(); ++p2)
        s.add_clause(x[p1][static_cast<std::size_t>(h)].neg(),
                     x[p2][static_cast<std::size_t>(h)].neg());
  ebmf::Stopwatch sw;
  (void)s.solve();
  SatRun run;
  run.seconds = sw.seconds();
  run.propagations = s.stats().propagations;
  run.conflicts = s.stats().conflicts;
  return run;
}

/// Large conflict-capped SMT decision formula (~330k clauses): the
/// cache-busting regime where clause-storage layout dominates.
SatRun run_large_smt() {
  ebmf::Rng rng(5);
  const auto gap = ebmf::benchgen::gap_matrix(24, 24, 8, rng);
  ebmf::smt::LabelFormula f(gap.matrix, ebmf::real_rank(gap.matrix));
  ebmf::Budget budget;
  budget.max_conflicts = 60000;
  ebmf::Stopwatch sw;
  (void)f.solve(budget);
  SatRun run;
  run.seconds = sw.seconds();
  run.propagations = f.solver().stats().propagations;
  run.conflicts = f.solver().stats().conflicts;
  return run;
}

/// Best-of-N to damp scheduler noise on shared machines.
template <typename Fn>
SatRun best_of(Fn fn, int reps) {
  SatRun best = fn();
  for (int r = 1; r < reps; ++r) {
    const SatRun run = fn();
    if (run.propagations_per_sec() > best.propagations_per_sec()) best = run;
  }
  return best;
}

int json_summary() {
  const SatRun sat = best_of(run_pigeonhole, 3);
  const SatRun smt = best_of(run_large_smt, 3);
  std::printf(
      "{\"bench\":\"micro\",\"summary\":true,\"hardware_threads\":%u,"
      "\"sat\":{\"propagations\":%llu,\"conflicts\":%llu,\"seconds\":%.4f,"
      "\"propagations_per_sec\":%.0f},"
      "\"smt_large\":{\"propagations\":%llu,\"conflicts\":%llu,"
      "\"seconds\":%.4f,\"propagations_per_sec\":%.0f}}\n",
      std::thread::hardware_concurrency(),
      static_cast<unsigned long long>(sat.propagations),
      static_cast<unsigned long long>(sat.conflicts), sat.seconds,
      sat.propagations_per_sec(),
      static_cast<unsigned long long>(smt.propagations),
      static_cast<unsigned long long>(smt.conflicts), smt.seconds,
      smt.propagations_per_sec());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0) return json_summary();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
