// Section V study (DESIGN.md experiment S5): the FTQC two-level structure.
//
// Part A — tensor bound quality: for logical patterns M-hat and per-patch
// physical patterns M, compare
//   * the product-partition upper bound r_B(M-hat) * r_B(M),
//   * Watson's Eq. 5 lower bound max(r_B * phi, r_B * phi),
//   * the true r_B(M-hat (x) M) where a direct SAP solve is feasible.
//
// Part B — the qLDPC conjecture backdrop: P(full rank) and P(row addressing
// optimal) for block matrices of increasing width (the paper's observation
// that 10x20 / 10x30 are much easier to be full rank than 10x10).

#include <cstdio>
#include <string>
#include <vector>

#include "benchgen/suites.h"
#include "common.h"
#include "core/bounds.h"
#include "core/fooling.h"
#include "engine/engine.h"
#include "ftqc/patterns.h"
#include "ftqc/two_level.h"

namespace {

void part_a(const ebmf::bench::Options& opt) {
  const ebmf::engine::Engine engine;
  std::printf("--- Part A: tensor product bounds (Eq. 5 bracket) ---\n\n");
  std::printf("%-12s %-12s | %6s %6s | %8s %8s %8s %9s\n", "logical",
              "physical", "rB(A)", "rB(B)", "lower", "direct", "product",
              "tight?");
  std::printf("%s\n", std::string(82, '-').c_str());

  ebmf::Rng rng(opt.seed);
  struct Physical {
    std::string name;
    ebmf::BinaryMatrix m;
  };
  const std::vector<Physical> physicals = {
      {"all-ones 3x3", ebmf::ftqc::transversal_patch(3)},
      {"checker 3x3", ebmf::ftqc::checkerboard_patch(3)},
      {"bndry-row 3", ebmf::ftqc::boundary_row_patch(3, 0)},
      {"rand 2x2", ebmf::BinaryMatrix::random(2, 2, 0.7, rng)},
      {"rand 3x3", ebmf::BinaryMatrix::random(3, 3, 0.6, rng)},
      // The paper's Eq. 2 matrix: phi = 2 < r_B = 3, so Eq. 5 cannot close
      // the bracket — exactly the open-question regime of §V.
      {"eq2 (phi<rB)", ebmf::BinaryMatrix::parse("110;011;111")},
  };
  const std::size_t logical_cases = opt.count(12, 4);
  for (std::size_t c = 0; c < logical_cases; ++c) {
    const auto logical = ebmf::ftqc::logical_pattern(3, 3, 0.55, rng);
    if (logical.is_zero()) continue;
    for (const auto& phys : physicals) {
      if (phys.m.is_zero()) continue;
      const auto two = ebmf::ftqc::solve_two_level(logical, phys.m);
      const auto big = ebmf::BinaryMatrix::kron(logical, phys.m);
      auto request = ebmf::engine::SolveRequest::dense(big, "sap");
      request.trials = 100;
      request.budget = opt.budget();
      const auto direct = engine.solve(request);
      ebmf::bench::emit_json(opt, "ftqc-tensor", phys.name, direct);
      std::printf("%-12s %-12s | %6zu %6zu | %8zu %7zu%s %8zu %9s\n",
                  ("rand#" + std::to_string(c)).c_str(), phys.name.c_str(),
                  two.logical.depth(), two.physical.depth(), two.lower_bound,
                  direct.depth(), direct.proven_optimal() ? "*" : "?",
                  two.upper_bound,
                  two.lower_bound == two.upper_bound ? "certified" : "");
    }
  }
  std::printf("\n(* = direct solve proven optimal; 'certified' = Eq. 5 "
              "closes the bracket.)\n"
              "Shape: all-ones physical rows are always certified (phi = rB "
              "= 1, paper §V);\ndirect never exceeds the product bound and "
              "never undercuts the lower bound.\n\n");

  // The open-question regime (§V, §VI): is r_B multiplicative under tensor
  // products? Eq. 5 cannot decide factors with phi < r_B on BOTH sides, so
  // solve eq2 (x) eq2 (phi = 2 < 3 = r_B each) directly — the kind of
  // instance the paper suggests the SMT tool could investigate.
  {
    const auto eq2 = ebmf::BinaryMatrix::parse("110;011;111");
    const auto big = ebmf::BinaryMatrix::kron(eq2, eq2);
    auto request = ebmf::engine::SolveRequest::dense(big, "sap");
    request.trials = 200;
    request.budget = ebmf::Budget::after(4 * opt.budget_seconds);
    const auto direct = engine.solve(request);
    ebmf::bench::emit_json(opt, "ftqc-tensor", "eq2 (x) eq2", direct);
    std::printf("Open question probe: eq2 (x) eq2 (9x9): Eq.5 bracket "
                "[6, 9], direct r_B = %zu%s\n",
                direct.depth(), direct.proven_optimal() ? " (proven)" : "+");
    std::printf("  -> binary rank %s multiplicative on this witness.\n\n",
                direct.depth() == 9 ? "IS" : "is NOT");
  }
}

void part_b(const ebmf::bench::Options& opt) {
  std::printf("--- Part B: qLDPC 1D blocks, row addressing (Fig. 5b) ---\n\n");
  std::printf("%7s %7s | %12s %18s\n", "shape", "occ", "P(full rank)",
              "P(rows optimal)");
  std::printf("%s\n", std::string(52, '-').c_str());
  ebmf::Rng rng(opt.seed + 1);
  const int trials = static_cast<int>(opt.count(100, 30));
  for (const std::size_t width : {10u, 20u, 30u}) {
    for (const double occ : {0.2, 0.5, 0.8}) {
      int full = 0;
      int rows_opt = 0;
      for (int t = 0; t < trials; ++t) {
        const auto m = ebmf::ftqc::qldpc_block_pattern(10, width, occ, rng);
        const auto rank = ebmf::real_rank(m);
        if (rank == 10) ++full;
        if (rank == ebmf::distinct_nonzero_rows(m)) ++rows_opt;
      }
      std::printf("10x%-4zu %6.0f%% | %11.0f%% %17.0f%%\n", width, occ * 100,
                  100.0 * full / trials, 100.0 * rows_opt / trials);
    }
  }
  std::printf("\nShape: width 20/30 nearly always full rank (row addressing "
              "certified optimal);\nwidth 10 dips at low/high occupancy — the "
              "paper's conjecture backdrop.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = ebmf::bench::parse_options(argc, argv);
  std::printf("=== Section V: fault-tolerant two-level addressing ===\n\n");
  part_a(opt);
  part_b(opt);
  return 0;
}
