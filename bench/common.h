#pragma once
/// \file common.h
/// \brief Shared command-line handling for the table/figure harnesses.
///
/// Every harness accepts:
///   --scale=<float>   multiply instance counts (default 1.0; the paper's
///                     full populations are --full)
///   --full            paper-scale instance counts (equivalent to the
///                     counts in §IV-A)
///   --seed=<uint>     master seed (default 2024)
///   --budget=<sec>    per-instance solve budget (default 5 s)
///   --json            additionally emit one line of JSON per solved
///                     instance (engine SolveReport + provenance) on
///                     stdout, so BENCH_*.json trajectories can be scripted
///
/// Solving goes through the ebmf::engine facade; emit_json renders the
/// facade's SolveReport (status, bounds, per-phase timings, telemetry).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "engine/engine.h"

namespace ebmf::bench {

/// Parsed harness options.
struct Options {
  double scale = 1.0;
  bool full = false;
  std::uint64_t seed = 2024;
  double budget_seconds = 5.0;
  bool json = false;

  /// Scale an instance count (at least 1).
  [[nodiscard]] std::size_t count(std::size_t paper_count,
                                  std::size_t reduced_count) const {
    const auto base = full ? paper_count : reduced_count;
    const auto scaled = static_cast<std::size_t>(
        static_cast<double>(base) * scale + 0.5);
    return scaled == 0 ? 1 : scaled;
  }

  /// The per-instance budget as the engine's shared type.
  [[nodiscard]] Budget budget() const {
    return Budget::after(budget_seconds);
  }
};

/// Parse argv; unknown arguments abort with a usage message.
inline Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--full") {
      opt.full = true;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg.rfind("--scale=", 0) == 0) {
      opt.scale = std::strtod(arg.c_str() + 8, nullptr);
    } else if (arg.rfind("--seed=", 0) == 0) {
      opt.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--budget=", 0) == 0) {
      opt.budget_seconds = std::strtod(arg.c_str() + 9, nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--full] [--scale=F] [--seed=N] [--budget=S] "
                   "[--json]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return opt;
}

/// When --json was given, print one line of JSON for a solved instance.
/// `family`/`config` identify the instance (benchgen provenance); pass the
/// pattern to also record its shape and 1-count — tools/fit_portfolio.py
/// needs them to fit the "auto" cutoffs from these lines.
inline void emit_json(const Options& opt, const std::string& family,
                      const std::string& config,
                      const engine::SolveReport& report,
                      const BinaryMatrix* pattern = nullptr) {
  if (!opt.json) return;
  if (pattern != nullptr) {
    std::printf("{\"family\":\"%s\",\"config\":\"%s\",\"rows\":%zu,"
                "\"cols\":%zu,\"ones\":%zu,\"report\":%s}\n",
                family.c_str(), config.c_str(), pattern->rows(),
                pattern->cols(), pattern->ones_count(),
                engine::to_json(report).c_str());
    return;
  }
  std::printf("{\"family\":\"%s\",\"config\":\"%s\",\"report\":%s}\n",
              family.c_str(), config.c_str(),
              engine::to_json(report).c_str());
}

}  // namespace ebmf::bench
