// Reproduces Figure 4 of the paper: the most time-consuming cases, with
// per-case runtime split into the packing heuristic vs the SMT phase, and
// the instance's real rank on a secondary axis.
//
// The paper's observations to verify:
//  * the top cases are dominated by SMT time, specifically the final UNSAT
//    proof (Observation 5);
//  * gap-family instances ('g2'..'g5') dominate the ranking, with some
//    random ('r') cases mixed in.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "benchgen/suites.h"
#include "common.h"
#include "engine/engine.h"

namespace {

struct CaseTiming {
  std::string tag;       // 'r' / 'g2'..'g5' as in the figure
  double packing_s = 0;
  double smt_s = 0;
  std::size_t rank = 0;
  bool last_unsat = false;  // final call proved UNSAT
  bool proven = false;

  [[nodiscard]] double total() const { return packing_s + smt_s; }
};

CaseTiming run_case(const ebmf::engine::Engine& engine,
                    const std::string& tag,
                    const ebmf::benchgen::Instance& inst,
                    const ebmf::bench::Options& opt) {
  auto request = ebmf::engine::SolveRequest::dense(inst.matrix, "sap");
  request.trials = 1000;  // paper's most thorough setting
  request.budget = opt.budget();
  request.label = tag;
  const auto r = engine.solve(request);
  ebmf::bench::emit_json(opt, inst.family, inst.config, r);
  CaseTiming timing;
  timing.tag = tag;
  timing.packing_s = r.timing("heuristic");
  timing.smt_s = r.timing("smt");
  timing.rank = r.lower_bound;
  timing.proven = r.proven_optimal();
  const std::string* last = r.find_telemetry("smt.last_result");
  timing.last_unsat = last != nullptr && *last == "unsat";
  return timing;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = ebmf::bench::parse_options(argc, argv);
  using namespace ebmf::benchgen;

  const ebmf::engine::Engine engine;
  std::vector<CaseTiming> cases;
  // The figure draws from the full benchmark pool; gap + small random are
  // the families that ever reach the SMT phase.
  for (std::size_t k : {2u, 3u, 4u, 5u}) {
    const auto suite =
        gap_suite(10, 10, {k}, opt.count(100, 12), opt.seed + k);
    for (const auto& inst : suite)
      cases.push_back(run_case(engine, "g" + std::to_string(k), inst, opt));
  }
  for (const auto& inst : random_suite(10, 10, paper_occupancies_small(),
                                       opt.count(10, 2), opt.seed + 99))
    cases.push_back(run_case(engine, "r", inst, opt));

  std::sort(cases.begin(), cases.end(),
            [](const CaseTiming& a, const CaseTiming& b) {
              return a.total() > b.total();
            });

  std::printf("=== Figure 4: most time-consuming cases ===\n");
  std::printf("(%zu cases total; top 10 shown, sorted by runtime)\n\n",
              cases.size());
  std::printf("%-4s %12s %12s %10s %6s %12s\n", "case", "packing[s]",
              "SMT[s]", "total[s]", "rank", "last=UNSAT");
  std::printf("%s\n", std::string(62, '-').c_str());
  const std::size_t top = std::min<std::size_t>(cases.size(), 10);
  for (std::size_t i = 0; i < top; ++i) {
    const auto& c = cases[i];
    std::printf("%-4s %12.4f %12.4f %10.4f %6zu %12s\n", c.tag.c_str(),
                c.packing_s, c.smt_s, c.total(), c.rank,
                c.last_unsat ? "yes" : (c.proven ? "rank-cert" : "budget"));
  }

  double smt_dominated = 0;
  std::size_t gap_in_top = 0;
  for (std::size_t i = 0; i < top; ++i) {
    if (cases[i].smt_s > cases[i].packing_s) smt_dominated += 1;
    if (cases[i].tag[0] == 'g') ++gap_in_top;
  }
  std::printf("\nShape checks (paper Observation 5):\n");
  std::printf("  SMT-dominated among top %zu: %.0f  (expect: most)\n", top,
              smt_dominated);
  std::printf("  gap-family among top %zu:   %zu  (expect: most)\n", top,
              gap_in_top);
  return 0;
}
