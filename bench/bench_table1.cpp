// Reproduces Table I of the paper: "percentage of cases finding an optimal
// solution" for the trivial heuristic and row packing at 1/10/100/1000
// trials, plus the 'rank' column (% of cases where real rank == binary
// rank), across all three benchmark families.
//
// Default counts are reduced for a quick run; pass --full for the paper's
// populations (10 instances per random config, 10 per known-optimal rank,
// 100 per gap parameter).
//
// Reference optima: SMT-proven via SAP for the small sets; for 100x100 the
// formula is out of reach (as in the paper), so optimality is certified by
// the rank lower bound when a heuristic attains it.

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "benchgen/suites.h"
#include "common.h"
#include "core/bounds.h"
#include "core/trivial.h"
#include "engine/engine.h"
#include "support/rng.h"
#include "support/stopwatch.h"

namespace {

using ebmf::benchgen::Instance;
using ebmf::engine::SolveRequest;

struct RowResult {
  std::string label;
  std::size_t cases = 0;
  std::size_t proven = 0;      // cases with a certified optimum
  std::size_t rank_match = 0;  // optimum == real rank
  std::size_t trivial_hits = 0;
  std::size_t packing_hits[4] = {0, 0, 0, 0};  // 1, 10, 100, 1000 trials
  double seconds = 0.0;        // wall-clock of the whole suite row
};

constexpr std::size_t kTrialCounts[4] = {1, 10, 100, 1000};

/// Certified optimum of an instance, or 0 when the budget ran out. Exact
/// instances run the engine's "sap" backend; the ones too large for SMT use
/// "heuristic" and count only when the rank certificate closes the bracket.
std::size_t certified_optimum(const ebmf::engine::Engine& engine,
                              const Instance& inst, bool smt_feasible,
                              const ebmf::bench::Options& opt) {
  if (inst.known_optimal != 0) return inst.known_optimal;
  auto request = SolveRequest::dense(inst.matrix, "sap");
  // "Too large for SMT" (the paper's 100x100 set): keep SAP's preprocessing
  // and rank certificate but guard out the formula entirely.
  if (!smt_feasible) request.smt_cell_limit = 1;
  request.trials = 200;
  request.seed = 1;
  request.budget = opt.budget();
  request.label = inst.family + "/" + inst.config;
  const auto report = engine.solve(request);
  ebmf::bench::emit_json(opt, inst.family, inst.config, report, &inst.matrix);
  return report.proven_optimal() ? report.depth() : 0;
}

RowResult evaluate(const std::string& label,
                   const std::vector<Instance>& instances, bool smt_feasible,
                   const ebmf::bench::Options& opt) {
  const ebmf::engine::Engine engine;
  ebmf::Stopwatch suite_clock;
  RowResult row;
  row.label = label;
  std::uint64_t seed = opt.seed;
  for (const auto& inst : instances) {
    ++row.cases;
    const std::size_t optimum =
        certified_optimum(engine, inst, smt_feasible, opt);
    if (optimum == 0) continue;  // unproven: excluded from hit counting
    ++row.proven;
    const auto rank = ebmf::real_rank(inst.matrix);
    if (rank == optimum) ++row.rank_match;
    if (ebmf::trivial_ebmf(inst.matrix).size() == optimum)
      ++row.trivial_hits;
    for (int t = 0; t < 4; ++t) {
      auto request = SolveRequest::dense(inst.matrix, "heuristic");
      request.trials = kTrialCounts[t];
      request.seed = ++seed;
      request.stop_at = optimum;  // saturation: stop once optimal is found
      const auto result = engine.solve(request);
      if (result.depth() == optimum) ++row.packing_hits[t];
    }
  }
  row.seconds = suite_clock.seconds();
  return row;
}

/// Cold (sequential) vs probe-raced SMT wall-clock on the weak-heuristic
/// gap instances where the bound race engages (heuristic overshoot >= 2).
/// Depths and statuses must agree; the two timings land in the --json
/// summary so the BENCH_sap.json trajectory tracks the race.
struct RaceComparison {
  double seq_seconds = 0.0;
  double race_seconds = 0.0;
  std::size_t probes = 4;
  bool depth_match = true;
  /// True when every run certified optimality. Depth equality is only
  /// guaranteed when both sides converge; a budget-cut run may
  /// legitimately stop at different anytime depths.
  bool converged = true;
};

RaceComparison compare_bound_race(const ebmf::bench::Options& opt) {
  const struct {
    std::size_t n, k;
    std::uint64_t seed;
  } kCases[] = {{10, 3, 3}, {12, 4, 1}};
  const ebmf::engine::Engine engine;
  RaceComparison cmp;
  for (const auto& c : kCases) {
    ebmf::Rng rng(c.seed);
    const auto m = ebmf::benchgen::gap_matrix(c.n, c.n, c.k, rng).matrix;
    std::size_t depths[2] = {0, 0};
    for (int r = 0; r < 2; ++r) {
      auto request = SolveRequest::dense(m, "sap");
      request.trials = 1;  // weak heuristic: leaves bounds for the race
      request.seed = 7;
      request.probes = r == 0 ? 1 : cmp.probes;
      request.budget = opt.budget();
      ebmf::Stopwatch sw;
      const auto report = engine.solve(request);
      (r == 0 ? cmp.seq_seconds : cmp.race_seconds) += sw.seconds();
      depths[r] = report.depth();
      if (!report.proven_optimal()) cmp.converged = false;
    }
    if (depths[0] != depths[1]) cmp.depth_match = false;
  }
  return cmp;
}

/// One anytime-tier suite row: the `local` strategy on the large qldpc /
/// neutral-atom instances, reported as gap/incumbent metrics (every
/// partition the engine returns is validated, so `valid` counts them all).
/// Each instance also gets a budget-matched "sap" attempt so the --json
/// trajectory carries both tiers for tools/fit_portfolio.py.
struct AnytimeRow {
  std::string label;
  std::size_t cases = 0;
  std::size_t valid = 0;    // validated incumbents returned (should = cases)
  std::size_t optimal = 0;  // incumbents with gap == 0 (certified)
  std::size_t max_gap = 0;
  double mean_gap = 0.0;
  double seconds = 0.0;
};

AnytimeRow evaluate_anytime(const std::string& label,
                            const std::vector<Instance>& instances,
                            const ebmf::bench::Options& opt) {
  const ebmf::engine::Engine engine;
  ebmf::Stopwatch suite_clock;
  AnytimeRow row;
  row.label = label;
  // The anytime tier demonstrates bounded-time answers; cap each solve at
  // 2 s even when the harness budget is larger.
  const double budget_seconds = std::min(opt.budget_seconds, 2.0);
  double gap_sum = 0.0;
  for (const auto& inst : instances) {
    ++row.cases;
    auto request = SolveRequest::dense(inst.matrix, "local");
    request.trials = 4;
    request.seed = opt.seed;
    request.budget = ebmf::Budget::after(budget_seconds);
    request.label = inst.family + "/" + inst.config;
    const auto report = engine.solve(request);
    ebmf::bench::emit_json(opt, inst.family, inst.config, report,
                           &inst.matrix);
    if (!report.partition.empty()) ++row.valid;
    if (report.proven_optimal()) ++row.optimal;
    gap_sum += static_cast<double>(report.gap);
    row.max_gap = std::max(row.max_gap, report.gap);

    // The exact tier on the same instance and budget — the reference point
    // the fitter compares against (typically budget-exhausted up here).
    auto exact = SolveRequest::dense(inst.matrix, "sap");
    exact.trials = 8;
    exact.seed = opt.seed;
    exact.smt_cell_limit = 200;
    exact.budget = ebmf::Budget::after(budget_seconds);
    exact.label = request.label + "/sap";
    const auto exact_report = engine.solve(exact);
    ebmf::bench::emit_json(opt, inst.family, inst.config, exact_report,
                           &inst.matrix);
  }
  row.mean_gap = row.cases == 0
                     ? 0.0
                     : gap_sum / static_cast<double>(row.cases);
  row.seconds = suite_clock.seconds();
  return row;
}

void print_row(const RowResult& r) {
  const auto pct = [&](std::size_t hits) {
    return r.proven == 0 ? 0.0 : 100.0 * static_cast<double>(hits) /
                                      static_cast<double>(r.proven);
  };
  std::printf("%-18s %5zu %5zu | %5.0f%% %7.0f%% ", r.label.c_str(), r.cases,
              r.proven, pct(r.rank_match), pct(r.trivial_hits));
  for (int t = 0; t < 4; ++t) std::printf(" %5.0f%%", pct(r.packing_hits[t]));
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = ebmf::bench::parse_options(argc, argv);
  using namespace ebmf::benchgen;

  std::printf("=== Table I: percentage of cases finding an optimal solution "
              "===\n");
  std::printf("(seed=%llu, %s run; 'proven' = cases with certified optimum; "
              "percentages over proven cases)\n\n",
              static_cast<unsigned long long>(opt.seed),
              opt.full ? "paper-scale" : "reduced");
  std::printf("%-18s %5s %5s | %5s %8s  %s\n", "benchmark", "cases", "prov",
              "rank", "trivial", "packing x1   x10  x100 x1000");
  std::printf("%s\n", std::string(86, '-').c_str());

  std::vector<RowResult> rows;

  // Random family, small sizes (SMT-provable).
  const auto small_occ = paper_occupancies_small();
  rows.push_back(evaluate(
      "10x10, rand",
      random_suite(10, 10, small_occ, opt.count(10, 4), opt.seed), true,
      opt));
  rows.push_back(evaluate(
      "10x20, rand",
      random_suite(10, 20, small_occ, opt.count(10, 3), opt.seed + 1), true,
      opt));
  rows.push_back(evaluate(
      "10x30, rand",
      random_suite(10, 30, small_occ, opt.count(10, 3), opt.seed + 2), true,
      opt));

  // Random family, 100x100 (heuristics + rank certificate only).
  rows.push_back(evaluate(
      "100x100, rand",
      random_suite(100, 100, paper_occupancies_large(), opt.count(10, 2),
                   opt.seed + 3),
      false, opt));

  // Known-optimal family.
  rows.push_back(evaluate(
      "10x10, opt",
      known_optimal_suite(10, 10, 10, opt.count(10, 3), opt.seed + 4), true,
      opt));

  // Gap family.
  for (std::size_t k : {2u, 3u, 4u, 5u}) {
    rows.push_back(evaluate(
        "10x10, gap, " + std::to_string(k),
        gap_suite(10, 10, {k}, opt.count(100, 10), opt.seed + 5 + k), true,
        opt));
  }

  for (const auto& r : rows) print_row(r);

  // Anytime tier: the large qldpc-block / neutral-atom regime.
  std::vector<AnytimeRow> anytime;
  anytime.push_back(evaluate_anytime(
      "200x200, qldpc",
      qldpc_suite(200, 200, {0.3}, opt.count(6, 2), opt.seed + 20), opt));
  anytime.push_back(evaluate_anytime(
      "1000x1000, qldpc",
      qldpc_suite(1000, 1000, {0.3}, opt.count(2, 1), opt.seed + 21), opt));
  anytime.push_back(evaluate_anytime(
      "300x300, atom",
      neutral_atom_suite(300, 300, {0.05}, opt.count(6, 2), opt.seed + 22),
      opt));
  anytime.push_back(evaluate_anytime(
      "1000x1000, atom",
      neutral_atom_suite(1000, 1000, {0.02}, opt.count(2, 1), opt.seed + 23),
      opt));

  std::printf("\n=== Anytime tier (local search, gap metrics; lower gap is "
              "better) ===\n");
  std::printf("%-18s %5s %5s %7s %9s %8s %9s\n", "benchmark", "cases",
              "valid", "optimal", "mean_gap", "max_gap", "seconds");
  for (const auto& a : anytime)
    std::printf("%-18s %5zu %5zu %7zu %9.2f %8zu %8.2fs\n", a.label.c_str(),
                a.cases, a.valid, a.optimal, a.mean_gap, a.max_gap,
                a.seconds);

  const RaceComparison race = compare_bound_race(opt);
  std::printf("\nSMT bound race (weak-heuristic gap set): sequential %.2fs, "
              "%zu probes %.2fs, depths %s\n",
              race.seq_seconds, race.probes, race.race_seconds,
              race.depth_match ? "match" : "DIFFER");

  if (opt.json) {
    // One machine-readable summary line (suite wall-clocks + race timings)
    // for the BENCH_sap.json trajectory; tools/bench_compare.py diffs it.
    double total = 0.0;
    for (const auto& r : rows) total += r.seconds;
    std::printf("{\"bench\":\"table1\",\"summary\":true,"
                "\"hardware_threads\":%u,\"total_seconds\":%.3f,\"suites\":[",
                std::thread::hardware_concurrency(), total);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (i != 0) std::printf(",");
      std::printf("{\"label\":\"%s\",\"cases\":%zu,\"proven\":%zu,"
                  "\"seconds\":%.3f}",
                  rows[i].label.c_str(), rows[i].cases, rows[i].proven,
                  rows[i].seconds);
    }
    std::printf("],\"anytime\":[");
    for (std::size_t i = 0; i < anytime.size(); ++i) {
      if (i != 0) std::printf(",");
      std::printf("{\"label\":\"%s\",\"cases\":%zu,\"valid\":%zu,"
                  "\"optimal\":%zu,\"mean_gap\":%.3f,\"max_gap\":%zu,"
                  "\"seconds\":%.3f}",
                  anytime[i].label.c_str(), anytime[i].cases,
                  anytime[i].valid, anytime[i].optimal, anytime[i].mean_gap,
                  anytime[i].max_gap, anytime[i].seconds);
    }
    // "threads" records what width this host could actually race on —
    // 1-thread baselines and CI multicore numbers sit side by side in
    // BENCH_sap.json.
    std::printf("],\"race\":{\"probes\":%zu,\"threads\":%u,"
                "\"seq_seconds\":%.3f,"
                "\"race_seconds\":%.3f,\"depth_match\":%s,"
                "\"converged\":%s}}\n",
                race.probes, std::thread::hardware_concurrency(),
                race.seq_seconds, race.race_seconds,
                race.depth_match ? "true" : "false",
                race.converged ? "true" : "false");
  }

  std::printf("\nPaper's shape to verify: rank column high for random "
              "(~98-100%%), 100%% for opt;\n"
              "trivial lags badly on gap (16-84%%); row packing improves "
              "monotonically with trials\nand saturates near 100%% by 100 "
              "trials; opt family is 100%% everywhere.\n");
  return 0;
}
