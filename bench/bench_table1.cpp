// Reproduces Table I of the paper: "percentage of cases finding an optimal
// solution" for the trivial heuristic and row packing at 1/10/100/1000
// trials, plus the 'rank' column (% of cases where real rank == binary
// rank), across all three benchmark families.
//
// Default counts are reduced for a quick run; pass --full for the paper's
// populations (10 instances per random config, 10 per known-optimal rank,
// 100 per gap parameter).
//
// Reference optima: SMT-proven via SAP for the small sets; for 100x100 the
// formula is out of reach (as in the paper), so optimality is certified by
// the rank lower bound when a heuristic attains it.

#include <cstdio>
#include <vector>

#include "benchgen/suites.h"
#include "common.h"
#include "core/bounds.h"
#include "core/trivial.h"
#include "engine/engine.h"

namespace {

using ebmf::benchgen::Instance;
using ebmf::engine::SolveRequest;

struct RowResult {
  std::string label;
  std::size_t cases = 0;
  std::size_t proven = 0;      // cases with a certified optimum
  std::size_t rank_match = 0;  // optimum == real rank
  std::size_t trivial_hits = 0;
  std::size_t packing_hits[4] = {0, 0, 0, 0};  // 1, 10, 100, 1000 trials
};

constexpr std::size_t kTrialCounts[4] = {1, 10, 100, 1000};

/// Certified optimum of an instance, or 0 when the budget ran out. Exact
/// instances run the engine's "sap" backend; the ones too large for SMT use
/// "heuristic" and count only when the rank certificate closes the bracket.
std::size_t certified_optimum(const ebmf::engine::Engine& engine,
                              const Instance& inst, bool smt_feasible,
                              const ebmf::bench::Options& opt) {
  if (inst.known_optimal != 0) return inst.known_optimal;
  auto request = SolveRequest::dense(inst.matrix, "sap");
  // "Too large for SMT" (the paper's 100x100 set): keep SAP's preprocessing
  // and rank certificate but guard out the formula entirely.
  if (!smt_feasible) request.smt_cell_limit = 1;
  request.trials = 200;
  request.seed = 1;
  request.budget = opt.budget();
  request.label = inst.family + "/" + inst.config;
  const auto report = engine.solve(request);
  ebmf::bench::emit_json(opt, inst.family, inst.config, report);
  return report.proven_optimal() ? report.depth() : 0;
}

RowResult evaluate(const std::string& label,
                   const std::vector<Instance>& instances, bool smt_feasible,
                   const ebmf::bench::Options& opt) {
  const ebmf::engine::Engine engine;
  RowResult row;
  row.label = label;
  std::uint64_t seed = opt.seed;
  for (const auto& inst : instances) {
    ++row.cases;
    const std::size_t optimum =
        certified_optimum(engine, inst, smt_feasible, opt);
    if (optimum == 0) continue;  // unproven: excluded from hit counting
    ++row.proven;
    const auto rank = ebmf::real_rank(inst.matrix);
    if (rank == optimum) ++row.rank_match;
    if (ebmf::trivial_ebmf(inst.matrix).size() == optimum)
      ++row.trivial_hits;
    for (int t = 0; t < 4; ++t) {
      auto request = SolveRequest::dense(inst.matrix, "heuristic");
      request.trials = kTrialCounts[t];
      request.seed = ++seed;
      request.stop_at = optimum;  // saturation: stop once optimal is found
      const auto result = engine.solve(request);
      if (result.depth() == optimum) ++row.packing_hits[t];
    }
  }
  return row;
}

void print_row(const RowResult& r) {
  const auto pct = [&](std::size_t hits) {
    return r.proven == 0 ? 0.0 : 100.0 * static_cast<double>(hits) /
                                      static_cast<double>(r.proven);
  };
  std::printf("%-18s %5zu %5zu | %5.0f%% %7.0f%% ", r.label.c_str(), r.cases,
              r.proven, pct(r.rank_match), pct(r.trivial_hits));
  for (int t = 0; t < 4; ++t) std::printf(" %5.0f%%", pct(r.packing_hits[t]));
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = ebmf::bench::parse_options(argc, argv);
  using namespace ebmf::benchgen;

  std::printf("=== Table I: percentage of cases finding an optimal solution "
              "===\n");
  std::printf("(seed=%llu, %s run; 'proven' = cases with certified optimum; "
              "percentages over proven cases)\n\n",
              static_cast<unsigned long long>(opt.seed),
              opt.full ? "paper-scale" : "reduced");
  std::printf("%-18s %5s %5s | %5s %8s  %s\n", "benchmark", "cases", "prov",
              "rank", "trivial", "packing x1   x10  x100 x1000");
  std::printf("%s\n", std::string(86, '-').c_str());

  std::vector<RowResult> rows;

  // Random family, small sizes (SMT-provable).
  const auto small_occ = paper_occupancies_small();
  rows.push_back(evaluate(
      "10x10, rand",
      random_suite(10, 10, small_occ, opt.count(10, 4), opt.seed), true,
      opt));
  rows.push_back(evaluate(
      "10x20, rand",
      random_suite(10, 20, small_occ, opt.count(10, 3), opt.seed + 1), true,
      opt));
  rows.push_back(evaluate(
      "10x30, rand",
      random_suite(10, 30, small_occ, opt.count(10, 3), opt.seed + 2), true,
      opt));

  // Random family, 100x100 (heuristics + rank certificate only).
  rows.push_back(evaluate(
      "100x100, rand",
      random_suite(100, 100, paper_occupancies_large(), opt.count(10, 2),
                   opt.seed + 3),
      false, opt));

  // Known-optimal family.
  rows.push_back(evaluate(
      "10x10, opt",
      known_optimal_suite(10, 10, 10, opt.count(10, 3), opt.seed + 4), true,
      opt));

  // Gap family.
  for (std::size_t k : {2u, 3u, 4u, 5u}) {
    rows.push_back(evaluate(
        "10x10, gap, " + std::to_string(k),
        gap_suite(10, 10, {k}, opt.count(100, 10), opt.seed + 5 + k), true,
        opt));
  }

  for (const auto& r : rows) print_row(r);

  std::printf("\nPaper's shape to verify: rank column high for random "
              "(~98-100%%), 100%% for opt;\n"
              "trivial lags badly on gap (16-84%%); row packing improves "
              "monotonically with trials\nand saturates near 100%% by 100 "
              "trials; opt family is 100%% everywhere.\n");
  return 0;
}
