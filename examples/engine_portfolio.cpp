// The engine facade end to end: strategy registry, the "auto" portfolio,
// deterministic batch solving over a thread pool, component-parallel
// splitting, and one-line JSON reports.
//
// This is the API every new backend, server frontend, or sharding layer
// builds on — see src/engine/engine.h for the request/report schema and
// how to register a custom strategy.

#include <cstdio>

#include "benchgen/generators.h"
#include "engine/engine.h"
#include "support/rng.h"

int main() {
  using namespace ebmf::engine;
  const Engine engine;

  std::printf("=== Registered strategies ===\n");
  for (const auto& name : engine.registry().names())
    std::printf("  %-11s %s\n", name.c_str(),
                engine.registry().find(name)->description.c_str());

  // One request, portfolio dispatch: "auto" picks the backend by size.
  std::printf("\n=== Auto portfolio ===\n");
  ebmf::Rng rng(2024);
  for (const std::size_t n : {4u, 10u, 40u}) {
    auto request =
        SolveRequest::dense(ebmf::BinaryMatrix::random(n, n, 0.4, rng));
    request.trials = 30;
    request.budget = ebmf::Budget::after(5.0);
    const auto report = engine.solve(request);
    std::printf("  %3zux%-3zu -> %-9s depth %zu (%s, %.3f s)\n", n, n,
                report.find_telemetry("auto.selected")->c_str(),
                report.depth(), to_string(report.status),
                report.total_seconds);
  }

  // A batch across the thread pool: results come back in request order.
  std::printf("\n=== Batch (deterministic order) ===\n");
  std::vector<SolveRequest> batch;
  for (int i = 0; i < 4; ++i) {
    auto request = SolveRequest::dense(
        ebmf::benchgen::gap_matrix(8, 8, 2, rng).matrix, "sap");
    request.label = "gap-" + std::to_string(i);
    request.trials = 50;
    batch.push_back(std::move(request));
  }
  for (const auto& report : engine.solve_batch(batch)) {
    std::printf("  %s\n", to_json(report).c_str());
  }

  // Component-parallel: block-diagonal structure solved piecewise.
  std::printf("\n=== Component-parallel split ===\n");
  ebmf::BinaryMatrix blocks(12, 12);
  for (std::size_t b = 0; b < 3; ++b) {
    const auto gap = ebmf::benchgen::gap_matrix(4, 4, 1, rng);
    for (const auto& [i, j] : gap.matrix.ones())
      blocks.set(b * 4 + i, b * 4 + j);
  }
  const auto split =
      engine.solve_split(SolveRequest::dense(blocks, "sap"));
  std::printf("  %zu components, merged depth %zu (%s)\n",
              static_cast<std::size_t>(
                  split.telemetry_count("split.components")),
              split.depth(), to_string(split.status));
  return 0;
}
