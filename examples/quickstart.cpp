// Quickstart: minimize the addressing depth of a qubit pattern.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// A pattern of qubits to address is given as a 0/1 matrix. One AOD
// configuration can address any rectangle (set of rows x set of columns);
// the engine facade finds a depth-optimal sequence of rectangles covering
// every 1 exactly once and no 0 (the "auto" strategy picks the right
// backend for the instance size).

#include <cstdio>

#include "addressing/schedule.h"
#include "core/partition.h"
#include "engine/engine.h"

int main() {
  // The matrix from Fig. 1b of the paper.
  const auto pattern = ebmf::BinaryMatrix::parse(
      "101100"
      ";010011"
      ";101010"
      ";010101"
      ";111000"
      ";000111");

  std::printf("Pattern (%zux%zu, %zu qubits to address):\n%s\n\n",
              pattern.rows(), pattern.cols(), pattern.ones_count(),
              pattern.to_string().c_str());

  const ebmf::engine::Engine engine;
  const ebmf::engine::SolveReport result =
      engine.solve(ebmf::engine::SolveRequest::dense(pattern));

  std::printf("Depth-optimal addressing: %zu rectangles (%s; strategy %s; "
              "lower bound %zu)\n\n",
              result.depth(),
              result.proven_optimal() ? "proven optimal" : "best found",
              result.strategy.c_str(), result.lower_bound);
  std::printf("Partition (cells labeled by rectangle):\n%s\n\n",
              ebmf::render_partition(pattern, result.partition).c_str());

  const ebmf::addressing::Schedule schedule(pattern, result.partition);
  std::printf("%s", schedule.render().c_str());
  return 0;
}
