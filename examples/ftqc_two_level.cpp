// Fault-tolerant two-level addressing (paper §V, Fig. 5a).
//
// With surface-code patches, a logical operation U on a 2D pattern of
// logical qubits expands to the tensor product M-hat (x) M of the logical
// pattern and the per-patch physical pattern. Partitions compose under the
// tensor product, so the two levels can be solved independently and
// combined — and when the physical pattern is transversal (all-ones,
// r_B = phi = 1), the combination is provably optimal.

#include <cstdio>

#include "addressing/schedule.h"
#include "ftqc/patterns.h"
#include "ftqc/two_level.h"
#include "support/rng.h"

namespace {

void run_case(const char* name, const ebmf::BinaryMatrix& logical,
              const ebmf::BinaryMatrix& physical) {
  const auto r = ebmf::ftqc::solve_two_level(logical, physical);
  const auto big = ebmf::BinaryMatrix::kron(logical, physical);
  std::printf("%-28s logical %zux%zu r_B<=%zu | physical %zux%zu r_B<=%zu "
              "phi=%zu | product depth %zu, Eq.5 lower %zu%s\n",
              name, logical.rows(), logical.cols(), r.logical.depth(),
              physical.rows(), physical.cols(), r.physical.depth(),
              r.phi_physical, r.upper_bound, r.lower_bound,
              r.certified_optimal() ? "  [certified optimal]" : "");
  const auto valid = ebmf::validate_partition(big, r.product_partition);
  if (!valid.ok) std::printf("  INVALID PRODUCT PARTITION: %s\n",
                             valid.reason.c_str());
}

}  // namespace

int main() {
  ebmf::Rng rng(2024);

  std::printf("=== FTQC two-level rectangular addressing ===\n\n");

  // A random 4x4 pattern of logical patches receiving the operation.
  const auto logical = ebmf::ftqc::logical_pattern(4, 4, 0.5, rng);
  std::printf("Logical pattern:\n%s\n\n", logical.to_string().c_str());

  // Physical patterns per patch (distance-5 patches).
  run_case("transversal X/Z/H (all 1s)", logical,
           ebmf::ftqc::transversal_patch(5));
  run_case("checkerboard sublattice", logical,
           ebmf::ftqc::checkerboard_patch(5));
  run_case("boundary row (surgery)", logical,
           ebmf::ftqc::boundary_row_patch(5, 0));

  // Depth economics: the two-level product vs addressing each qubit alone.
  const auto physical = ebmf::ftqc::transversal_patch(5);
  const auto two = ebmf::ftqc::solve_two_level(logical, physical);
  const auto big = ebmf::BinaryMatrix::kron(logical, physical);
  std::printf("\nFull physical array: %zux%zu, %zu qubits addressed\n",
              big.rows(), big.cols(), big.ones_count());
  std::printf("Two-level schedule depth: %zu (vs %zu with per-qubit "
              "pulses)\n",
              two.upper_bound, big.ones_count());

  const ebmf::addressing::Schedule schedule(big, two.product_partition);
  std::printf("Schedule duration: %.1f us across %zu control channels\n",
              schedule.duration_us(), schedule.control_channels());
  return 0;
}
