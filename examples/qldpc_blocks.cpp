// qLDPC memory blocks in a 1D layout (paper §V, Fig. 5b).
//
// With quantum LDPC codes, several logical qubits share one block and
// blocks are parked in a row as memory. Single-qubit-gate patterns differ
// per block (logical-qubit offsets), giving a (#blocks x block-width)
// addressing matrix. The paper conjectures that row-by-row addressing is
// usually already optimal there, because wide random matrices are almost
// surely full-rank. This example measures that directly.

#include <cstdio>

#include "core/bounds.h"
#include "core/row_packing.h"
#include "ftqc/patterns.h"
#include "support/rng.h"

int main() {
  ebmf::Rng rng(7);
  const int trials = 40;

  std::printf("=== qLDPC 1D blocks: is row addressing optimal? ===\n\n");
  std::printf("%8s %6s | %-10s %-12s %-14s\n", "blocks", "width", "occupancy",
              "P(full rank)", "P(rows optimal)");

  for (const std::size_t width : {10u, 20u, 30u}) {
    for (const double occ : {0.3, 0.5, 0.7}) {
      int full_rank = 0;
      int rows_optimal = 0;
      for (int t = 0; t < trials; ++t) {
        const auto m = ebmf::ftqc::qldpc_block_pattern(10, width, occ, rng);
        const auto rank = ebmf::real_rank(m);
        const auto distinct = ebmf::distinct_nonzero_rows(m);
        if (rank == 10) ++full_rank;
        // Row addressing uses one rectangle per distinct nonzero block
        // pattern; it is optimal when that matches the rank lower bound.
        if (distinct == rank) ++rows_optimal;
      }
      std::printf("%8d %6zu | %8.0f%% %11.0f%% %13.0f%%\n", 10, width,
                  occ * 100, 100.0 * full_rank / trials,
                  100.0 * rows_optimal / trials);
    }
  }

  std::printf("\nSquare vs wide (paper's observation: 10x20 and 10x30 are "
              "much easier to be full rank than 10x10):\n");
  std::printf("The wide rows above should show ~100%% while width=10 dips.\n");

  // One concrete schedule: confirm a wide block pattern needs exactly one
  // rectangle per distinct block pattern.
  const auto m = ebmf::ftqc::qldpc_block_pattern(10, 30, 0.5, rng);
  ebmf::RowPackingOptions opt;
  opt.trials = 50;
  const auto packed = ebmf::row_packing_ebmf(m, opt);
  std::printf("\nSample 10x30 block pattern: rank=%zu, row packing depth=%zu "
              "(distinct rows=%zu)\n",
              ebmf::real_rank(m), packed.partition.size(),
              ebmf::distinct_nonzero_rows(m));
  return 0;
}
