// Neutral-atom Rz addressing, end to end (the paper's Fig. 1 scenario).
//
// A 2D acousto-optic deflector illuminates the product of a set of row
// tones and a set of column tones; qubits at the crossings receive the Rz
// pulse. This example walks the full workflow on the paper's own pattern:
//
//   1. bounds (rank lower bound, trivial upper bound),
//   2. heuristics (trivial, row packing with increasing trials),
//   3. exact solve (SAP) with optimality certificate,
//   4. an independent fooling-set certificate,
//   5. the executable AOD pulse schedule with a timing estimate.

#include <cstdio>

#include "addressing/schedule.h"
#include "core/bounds.h"
#include "core/fooling.h"
#include "core/row_packing.h"
#include "core/trivial.h"
#include "engine/engine.h"

int main() {
  const auto pattern = ebmf::BinaryMatrix::parse(
      "101100"
      ";010011"
      ";101010"
      ";010101"
      ";111000"
      ";000111");

  std::printf("=== Neutral-atom rectangular addressing (paper Fig. 1) ===\n");
  std::printf("Pattern:\n%s\n", pattern.to_string().c_str());
  std::printf("Sites: %zu, qubits to address: %zu\n",
              pattern.rows() * pattern.cols(), pattern.ones_count());
  std::printf("Control channels: %zu (rows+cols) instead of %zu (per site)\n\n",
              pattern.rows() + pattern.cols(),
              pattern.rows() * pattern.cols());

  // Bounds.
  const auto rank = ebmf::real_rank(pattern);
  const auto trivial_bound = ebmf::trivial_upper_bound(pattern);
  std::printf("Bounds: rank_R = %zu <= r_B <= %zu = trivial\n", rank,
              trivial_bound);

  // Heuristics.
  const auto trivial = ebmf::trivial_ebmf(pattern);
  std::printf("Trivial heuristic: %zu rectangles\n", trivial.size());
  for (std::size_t trials : {1u, 10u, 100u}) {
    ebmf::RowPackingOptions opt;
    opt.trials = trials;
    opt.seed = 7;
    const auto packed = ebmf::row_packing_ebmf(pattern, opt);
    std::printf("Row packing, %4zu trials: %zu rectangles\n", trials,
                packed.partition.size());
  }

  // Exact: SAP (Algorithm 1) through the engine facade.
  const ebmf::engine::Engine engine;
  const auto result =
      engine.solve(ebmf::engine::SolveRequest::dense(pattern, "sap"));
  std::printf("\nSAP: %zu rectangles (%s), heuristic gave %llu, "
              "%llu SMT call(s)\n",
              result.depth(),
              result.proven_optimal() ? "PROVEN OPTIMAL" : "not proven",
              static_cast<unsigned long long>(
                  result.telemetry_count("heuristic.size")),
              static_cast<unsigned long long>(
                  result.telemetry_count("smt.calls")));
  std::printf("Partition:\n%s\n\n",
              ebmf::render_partition(pattern, result.partition).c_str());

  // Fooling-set certificate (the filled markers of Fig. 1b).
  const auto fooling = ebmf::max_fooling_set(pattern);
  std::printf("Maximum fooling set: %zu cells — certifies r_B >= %zu:\n",
              fooling.size(), fooling.size());
  for (const auto& [i, j] : fooling) std::printf("  (%zu,%zu)", i, j);
  std::printf("\n\n");

  // Hardware schedule.
  ebmf::addressing::TimingModel timing;
  timing.reconfigure_us = 10.0;
  timing.pulse_us = 0.5;
  const ebmf::addressing::Schedule schedule(pattern, result.partition,
                                            timing);
  std::printf("%s", schedule.render().c_str());
  return 0;
}
