// Vacancies as don't-cares (paper §VI future work).
//
// Neutral-atom arrays have empty traps. A pulse landing on a vacancy does
// nothing, so those sites are don't-cares: rectangles may cover them
// freely. Exploiting vacancies can push the depth *below* what the 0/1
// pattern alone would need — this example shows a bridge pattern where two
// separate rectangles fuse into one across a vacancy, and compares the
// Free / AtMostOnce semantics on a larger pattern.

#include <cstdio>

#include "engine/engine.h"

namespace {

void solve_and_report(const char* name, const ebmf::completion::MaskedMatrix& m) {
  using namespace ebmf::engine;
  const Engine engine;
  auto free_req = SolveRequest::with_mask(m);
  auto strict_req = SolveRequest::with_mask(m);
  strict_req.semantics = ebmf::completion::DontCareSemantics::AtMostOnce;
  const auto free_r = engine.solve(free_req);
  const auto strict_r = engine.solve(strict_req);
  std::printf("%-24s ones=%2zu vacancies=%2zu | ignore-DC depth %llu -> "
              "free %zu%s / at-most-once %zu%s\n",
              name, m.pattern().ones_count(), m.dont_care_count(),
              static_cast<unsigned long long>(
                  free_r.telemetry_count("completion.heuristic_size")),
              free_r.depth(), free_r.proven_optimal() ? "*" : "",
              strict_r.depth(), strict_r.proven_optimal() ? "*" : "");
}

}  // namespace

int main() {
  using ebmf::completion::MaskedMatrix;

  std::printf("=== Addressing with vacancies (don't-cares) ===\n");
  std::printf("('*' marks vacancies; trailing * = proven optimal)\n\n");

  // Two diagonal qubits bridged by vacancies: 2 rectangles without the
  // don't-cares, 1 with them.
  solve_and_report("diagonal bridge", MaskedMatrix::parse("1*;*1"));

  // A ring of qubits around a vacant center.
  solve_and_report("ring, vacant center", MaskedMatrix::parse(
                                              "111"
                                              ";1*1"
                                              ";111"));

  // A sparse 5x5 pattern with scattered vacancies.
  solve_and_report("scattered 5x5", MaskedMatrix::parse(
                                        "1*010"
                                        ";0*101"
                                        ";1x0*0"
                                        ";01*01"
                                        ";10x10"));

  // The same pattern with vacancies read as 0 for contrast.
  const auto strict = MaskedMatrix::parse(
      "10010"
      ";00101"
      ";10000"
      ";01001"
      ";10010");
  solve_and_report("same, no vacancies", strict);

  std::printf("\nFree semantics may overlap rectangles on vacancies "
              "(physically exact);\nAtMostOnce solves binary matrix "
              "completion (each vacancy 0 or 1).\n");
  return 0;
}
