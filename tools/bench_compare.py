#!/usr/bin/env python3
"""Compare bench JSON summaries against the committed BENCH_sap.json baseline.

The benches emit one machine-readable summary line each:

    ./build/bench_micro --json                      > bench.jsonl
    ./build/bench_table1 --json --budget=3 --scale=0.5 \
        | grep '"summary":true'                     >> bench.jsonl

Check the run against the baseline (exit 1 on a >20% regression):

    python3 tools/bench_compare.py --baseline BENCH_sap.json bench.jsonl

Regenerate the baseline after an intentional perf change:

    python3 tools/bench_compare.py --baseline BENCH_sap.json \
        --write-baseline bench.jsonl

Checked metrics:
  * micro: sat / smt_large propagations per second (lower = regression)
  * table1: total wall-clock and per-suite wall-clock (higher = regression;
    suites faster than --floor seconds are skipped as noise)
  * table1: anytime suites are gated on solution quality, not throughput —
    every case must return a validated incumbent, and the mean/max
    certified gap must not grow past the baseline (lower gap is better;
    gaps are depths, so the slack is `base * (1 + tolerance) + 1` to keep
    one unit of integer headroom on near-zero baselines)
  * table1: the bound race must reproduce the sequential depths
  * service: per-family client-observed p50/p99 latency (micros) must not
    grow past baseline (bench_service --json emits the summary line;
    sub-millisecond quantiles are skipped as scheduling noise)
  * service_connections (bench_service --connections=N --json): lost,
    reordered, and failed-connection counts must be exactly zero — these
    are correctness contracts of the reactor, not perf numbers, so no
    tolerance applies — and the router->backend binary-wire A/B must keep
    its speedup at or above the 1.5x floor (storm throughput is also
    compared against the baseline when one exists)

CI runs on different hardware than the machine that wrote the baseline, so
pass a wider --tolerance there (wall-clock scales with the machine; the
regression signal is the ratio drifting, not the absolute number).
"""

import argparse
import json
import sys


def load_summaries(path):
    """The bench summary lines keyed by bench name."""
    summaries = {}
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line.startswith("{"):
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if record.get("summary") is True and "bench" in record:
                summaries[record["bench"]] = record
    return summaries


def check_throughput(failures, label, base, current, tolerance):
    """Propagations/sec must not drop below baseline / (1 + tolerance).

    Ratio semantics keep the gate meaningful for tolerances >= 1 (used by
    CI across heterogeneous hardware): tolerance 2.0 still fails a >3x
    throughput drop, whereas `base * (1 - tolerance)` would go negative
    and never fail.
    """
    floor = base / (1.0 + tolerance)
    status = "ok" if current >= floor else "REGRESSION"
    print(f"  {label}: {current:,.0f} props/s vs baseline {base:,.0f} "
          f"({current / base:.2f}x) [{status}]")
    if current < floor:
        failures.append(f"{label} dropped to {current / base:.2f}x of baseline")


def check_seconds(failures, label, base, current, tolerance, floor_seconds):
    """Wall-clock must not rise more than `tolerance` above baseline."""
    if base < floor_seconds and current < floor_seconds:
        return  # too fast to measure meaningfully
    ceiling = base * (1.0 + tolerance)
    status = "ok" if current <= ceiling else "REGRESSION"
    print(f"  {label}: {current:.3f}s vs baseline {base:.3f}s "
          f"({current / base if base > 0 else 0:.2f}x) [{status}]")
    if current > ceiling:
        failures.append(f"{label} slowed to {current:.3f}s "
                        f"(baseline {base:.3f}s)")


def check_gap(failures, label, base, current, tolerance):
    """Certified gap must not grow past baseline (lower is better).

    Gaps are integer depths, so a `+1` absolute slack keeps the gate from
    tripping on a baseline of 0.0 where any nonzero gap would otherwise be
    an infinite ratio.
    """
    ceiling = base * (1.0 + tolerance) + 1.0
    status = "ok" if current <= ceiling else "REGRESSION"
    print(f"  {label}: gap {current:.2f} vs baseline {base:.2f} "
          f"(lower is better) [{status}]")
    if current > ceiling:
        failures.append(f"{label} gap grew to {current:.2f} "
                        f"(baseline {base:.2f})")


def check_latency_us(failures, label, base, current, tolerance,
                     floor_us=1000.0):
    """Tail latency (micros) must not rise past baseline by more than the
    tolerance. An absolute `floor_us` of slack rides on top of the ratio —
    sub-millisecond quantiles jitter with scheduling noise, and both-fast
    pairs are skipped entirely.
    """
    if base < floor_us and current < floor_us:
        return
    ceiling = base * (1.0 + tolerance) + floor_us
    status = "ok" if current <= ceiling else "REGRESSION"
    print(f"  {label}: {current / 1000.0:.3f}ms vs baseline "
          f"{base / 1000.0:.3f}ms "
          f"({current / base if base > 0 else 0:.2f}x) [{status}]")
    if current > ceiling:
        failures.append(f"{label} grew to {current / 1000.0:.3f}ms "
                        f"(baseline {base / 1000.0:.3f}ms)")


def check_anytime(failures, base_rows, cur_rows, tolerance, floor_seconds):
    """Gate the anytime suites on incumbent validity and gap quality."""
    base_by_label = {row["label"]: row for row in base_rows}
    for row in cur_rows:
        label = f"table1.anytime[{row['label']}]"
        # Validity is a hard contract, baseline or not: the local strategy
        # must hand back a validated incumbent for every case.
        if row["valid"] != row["cases"]:
            print(f"  {label}: {row['valid']}/{row['cases']} valid "
                  "incumbents [REGRESSION]")
            failures.append(f"{label} returned only {row['valid']} valid "
                            f"incumbents for {row['cases']} cases")
            continue
        base = base_by_label.get(row["label"])
        if base is None:
            print(f"  {label}: no baseline row; skipping gap gate "
                  f"(mean_gap {row['mean_gap']:.2f}, "
                  f"max_gap {row['max_gap']})")
            continue
        check_gap(failures, f"{label}.mean", base["mean_gap"],
                  row["mean_gap"], tolerance)
        check_gap(failures, f"{label}.max", float(base["max_gap"]),
                  float(row["max_gap"]), tolerance)
        check_seconds(failures, f"{label}.seconds", base["seconds"],
                      row["seconds"], tolerance, floor_seconds)


def check_overhead(path, tolerance, floor_seconds):
    """Gate the observability instrumentation overhead.

    `path` holds `{"baseline_seconds": B, "instrumented_seconds": I}` — the
    same workload timed with the flight recorder disabled (EBMF_EVENTS=0)
    and enabled. The instrumented run may cost at most `tolerance` more
    wall-clock, plus an absolute `floor_seconds` of slack so sub-100ms
    workloads don't gate on scheduler noise.
    """
    with open(path, encoding="utf-8") as handle:
        record = json.load(handle)
    base = float(record["baseline_seconds"])
    instrumented = float(record["instrumented_seconds"])
    ceiling = base * (1.0 + tolerance) + floor_seconds
    ratio = instrumented / base if base > 0 else 0.0
    status = "ok" if instrumented <= ceiling else "REGRESSION"
    print(f"instrumentation overhead: {instrumented:.3f}s instrumented vs "
          f"{base:.3f}s baseline ({ratio:.3f}x, ceiling {ceiling:.3f}s) "
          f"[{status}]")
    if instrumented > ceiling:
        print(f"\nFAIL:\n  - instrumentation overhead {ratio:.3f}x exceeds "
              f"{1.0 + tolerance:.2f}x (+{floor_seconds:.2f}s floor)")
        return 1
    print(f"\nOK: overhead within {tolerance:.0%} (+{floor_seconds:.2f}s "
          "floor)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", nargs="?",
                        help="file of bench --json summary lines")
    parser.add_argument("--baseline",
                        help="committed baseline (BENCH_sap.json)")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional regression (default 0.20)")
    parser.add_argument("--floor", type=float, default=0.5,
                        help="ignore suites faster than this many seconds (default 0.5)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline from the current run")
    parser.add_argument("--overhead", metavar="FILE",
                        help="instead of the baseline gate: check the "
                             "instrumentation-overhead record in FILE "
                             '({"baseline_seconds": B, '
                             '"instrumented_seconds": I})')
    parser.add_argument("--overhead-tolerance", type=float, default=0.03,
                        help="allowed fractional instrumentation overhead "
                             "(default 0.03)")
    parser.add_argument("--overhead-floor", type=float, default=0.05,
                        help="absolute overhead slack in seconds for "
                             "fast workloads (default 0.05)")
    args = parser.parse_args()

    if args.overhead:
        return check_overhead(args.overhead, args.overhead_tolerance,
                              args.overhead_floor)
    if not args.current or not args.baseline:
        parser.error("current and --baseline are required "
                     "(or use --overhead FILE)")

    current = load_summaries(args.current)
    if args.write_baseline:
        # Start from the existing baseline (when present) so a partial run
        # — say, regenerating only the service suites — does not drop the
        # entries for benches that were not re-run.
        baseline = {}
        try:
            with open(args.baseline, encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, json.JSONDecodeError):
            pass
        baseline["comment"] = (
            "bench baseline; regenerate via tools/bench_compare.py "
            "--write-baseline (see file docstring for commands)")
        # Persist *every* bench summary, not just the known ones, so a new
        # suite starts being gated the first time the baseline is rewritten.
        for name, record in sorted(current.items()):
            baseline[name] = record
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(baseline, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.baseline}")
        return 0

    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)

    failures = []

    # A suite present in the candidate but absent from the baseline is NOT
    # a regression — it is a new suite with nothing to compare against. Say
    # so clearly and keep the gate green; --write-baseline adopts it.
    for name in sorted(current):
        if baseline.get(name) is None:
            print(f"note: no baseline for bench '{name}' in {args.baseline}; "
                  "skipping (rewrite the baseline with --write-baseline to "
                  "start gating it)")

    base_micro, cur_micro = baseline.get("micro"), current.get("micro")
    if base_micro and cur_micro:
        print("micro (propagation throughput):")
        for key in ("sat", "smt_large"):
            check_throughput(failures, f"micro.{key}",
                             base_micro[key]["propagations_per_sec"],
                             cur_micro[key]["propagations_per_sec"],
                             args.tolerance)
    elif base_micro:
        failures.append("no micro summary in the current run")

    base_t1, cur_t1 = baseline.get("table1"), current.get("table1")
    if base_t1 and cur_t1:
        print("table1 (suite wall-clock):")
        check_seconds(failures, "table1.total", base_t1["total_seconds"],
                      cur_t1["total_seconds"], args.tolerance, args.floor)
        base_suites = {s["label"]: s for s in base_t1.get("suites", [])}
        for suite in cur_t1.get("suites", []):
            base_suite = base_suites.get(suite["label"])
            if base_suite is None:
                print(f"  table1[{suite['label']}]: no baseline suite; "
                      "skipping")
                continue
            check_seconds(failures, f"table1[{suite['label']}]",
                          base_suite["seconds"], suite["seconds"],
                          args.tolerance, args.floor)
        cur_any = cur_t1.get("anytime", [])
        if cur_any:
            print("table1 (anytime tier, gap metrics):")
            check_anytime(failures, base_t1.get("anytime", []), cur_any,
                          args.tolerance, args.floor)
        race = cur_t1.get("race", {})
        print(f"  race: sequential {race.get('seq_seconds', 0):.3f}s vs "
              f"{race.get('probes', 0)} probes "
              f"{race.get('race_seconds', 0):.3f}s, depth_match="
              f"{race.get('depth_match')}, converged="
              f"{race.get('converged')}")
        # Depth equality is only guaranteed when both sides certified
        # optimality; a budget-cut run may stop at different anytime depths
        # on a slow runner, which is not a correctness regression.
        if race.get("converged") is True and race.get("depth_match") is not True:
            failures.append("bound race depths diverged from sequential "
                            "despite both sides converging")
    elif base_t1:
        failures.append("no table1 summary in the current run")

    base_svc, cur_svc = baseline.get("service"), current.get("service")
    if base_svc and cur_svc:
        print("service (client-observed tail latency):")
        base_fams = {f["name"]: f for f in base_svc.get("families", [])}
        for fam in cur_svc.get("families", []):
            base_fam = base_fams.get(fam["name"])
            if base_fam is None:
                print(f"  service[{fam['name']}]: no baseline family; "
                      "skipping")
                continue
            check_latency_us(failures, f"service[{fam['name']}].p50",
                             base_fam["p50_us"], fam["p50_us"],
                             args.tolerance)
            check_latency_us(failures, f"service[{fam['name']}].p99",
                             base_fam["p99_us"], fam["p99_us"],
                             args.tolerance)

    base_conn = baseline.get("service_connections")
    cur_conn = current.get("service_connections")
    if cur_conn:
        print("service_connections (reactor storm + backend-wire A/B):")
        # Zero lost / reordered / failed connections is a correctness
        # contract of the reactor, gated with no tolerance at all.
        for key in ("lost", "reordered", "failed_connections"):
            count = cur_conn.get(key, 0)
            status = "ok" if count == 0 else "REGRESSION"
            print(f"  service_connections.{key}: {count} [{status}]")
            if count != 0:
                failures.append(
                    f"service_connections reported {count} {key} "
                    f"({cur_conn.get('received', 0)} replies received)")
        ab = cur_conn.get("ab")
        if ab:
            speedup = float(ab.get("binary_speedup", 0.0))
            floor = 1.5
            status = "ok" if speedup >= floor else "REGRESSION"
            print(f"  service_connections.binary_speedup: {speedup:.2f}x "
                  f"(floor {floor:.1f}x; JSON {ab.get('json_rps', 0):,.0f} "
                  f"-> binary {ab.get('binary_rps', 0):,.0f} req/s) "
                  f"[{status}]")
            if speedup < floor:
                failures.append(
                    f"binary backend wire speedup fell to {speedup:.2f}x "
                    f"(floor {floor:.1f}x)")
        if base_conn and base_conn.get("storm_rps"):
            check_throughput(failures, "service_connections.storm_rps",
                             float(base_conn["storm_rps"]),
                             float(cur_conn.get("storm_rps", 0.0)),
                             args.tolerance)
    elif base_conn:
        failures.append("no service_connections summary in the current run")

    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nOK: no regression beyond tolerance "
          f"{args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
