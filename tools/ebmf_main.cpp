// The `ebmf` command-line tool. All logic lives in src/cli (testable);
// this file only forwards to it.

#include <iostream>

#include "cli/cli.h"

int main(int argc, char** argv) {
  return ebmf::cli::run(argc, argv, std::cout, std::cerr);
}
