// Tests for the parallel SMT bound race: identical answers (depth, status,
// certificate bounds) for sap.probes=1 vs sap.probes=4 across the benchgen
// suites, race telemetry when the race engages, caller-cancellation
// chaining through the secondary budget flag, and the wire-schema "probes"
// field round trip.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "benchgen/suites.h"
#include "engine/engine.h"
#include "io/request_io.h"
#include "smt/sap.h"
#include "support/rng.h"
#include "support/stopwatch.h"

namespace ebmf {
namespace {

engine::SolveReport solve_with_probes(const engine::Engine& eng,
                                      const BinaryMatrix& m,
                                      std::size_t probes,
                                      std::size_t trials) {
  auto request = engine::SolveRequest::dense(m, "sap");
  request.probes = probes;
  request.trials = trials;
  request.seed = 7;
  return eng.solve(request);
}

void expect_identical_reports(const std::vector<benchgen::Instance>& suite,
                              std::size_t trials) {
  const engine::Engine eng;
  for (const auto& inst : suite) {
    const auto sequential = solve_with_probes(eng, inst.matrix, 1, trials);
    const auto raced = solve_with_probes(eng, inst.matrix, 4, trials);
    EXPECT_EQ(sequential.depth(), raced.depth())
        << inst.family << " " << inst.config;
    EXPECT_EQ(sequential.status, raced.status)
        << inst.family << " " << inst.config;
    EXPECT_EQ(sequential.lower_bound, raced.lower_bound)
        << inst.family << " " << inst.config;
    EXPECT_EQ(sequential.upper_bound, raced.upper_bound)
        << inst.family << " " << inst.config;
    if (inst.known_optimal != 0) {
      EXPECT_EQ(raced.depth(), inst.known_optimal);
      EXPECT_TRUE(raced.proven_optimal());
    }
  }
}

TEST(SapRace, RandomSuiteMatchesSequential) {
  expect_identical_reports(
      benchgen::random_suite(8, 8, {0.3, 0.5, 0.7}, 2, 11), 20);
}

TEST(SapRace, KnownOptimalSuiteMatchesSequential) {
  expect_identical_reports(benchgen::known_optimal_suite(9, 9, 5, 2, 12), 20);
}

TEST(SapRace, GapSuiteMatchesSequential) {
  expect_identical_reports(benchgen::gap_suite(9, 9, {2, 3}, 3, 13), 20);
}

TEST(SapRace, WeakHeuristicGapInstancesMatchSequentialAndEngageRace) {
  // With a single packing trial the heuristic overshoots by two or more on
  // these instances, leaving several unresolved bounds — the configuration
  // where the race actually engages (verified: both race with waves >= 1).
  const struct {
    std::size_t n, k;
    std::uint64_t seed;
  } kCases[] = {{10, 3, 3}, {12, 4, 1}};
  const engine::Engine eng;
  bool engaged = false;
  for (const auto& c : kCases) {
    Rng gen(c.seed);
    const BinaryMatrix m = benchgen::gap_matrix(c.n, c.n, c.k, gen).matrix;
    const auto sequential = solve_with_probes(eng, m, 1, 1);
    const auto raced = solve_with_probes(eng, m, 4, 1);
    EXPECT_EQ(sequential.depth(), raced.depth()) << "seed " << c.seed;
    EXPECT_EQ(sequential.status, raced.status) << "seed " << c.seed;
    EXPECT_EQ(sequential.lower_bound, raced.lower_bound) << "seed " << c.seed;
    if (raced.telemetry_count("sap.probe.waves") > 0) {
      engaged = true;
      EXPECT_GE(raced.telemetry_count("sap.probe.calls"),
                raced.telemetry_count("sap.probe.waves"));
      EXPECT_EQ(raced.telemetry_count("sap.probes"), 4u);
    }
  }
  EXPECT_TRUE(engaged) << "no instance engaged the race; suite too easy";
}

TEST(SapRace, SequentialPathReportsNoProbeTelemetry) {
  Rng rng(3);
  const BinaryMatrix m = benchgen::gap_matrix(10, 10, 3, rng).matrix;
  const engine::Engine eng;
  const auto report = solve_with_probes(eng, m, 1, 20);
  EXPECT_EQ(report.find_telemetry("sap.probes"), nullptr);
}

TEST(SapRace, CallerCancellationStopsTheRacePromptly) {
  // The race rewires per-probe cancel flags; the caller's own flag must
  // still stop every probe (chained through Budget::also_cancel).
  Rng rng(1);
  const BinaryMatrix m = benchgen::gap_matrix(14, 14, 5, rng).matrix;
  SapOptions options;
  options.packing.trials = 1;
  options.probes = 4;
  options.budget.cancellable();
  Budget caller = options.budget;
  std::thread canceller([&caller]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    caller.request_cancel();
  });
  Stopwatch sw;
  const SapResult result = sap_solve(m, options);
  const double seconds = sw.seconds();
  canceller.join();
  // Anytime contract: a valid partition regardless of the cancellation.
  EXPECT_TRUE(static_cast<bool>(validate_partition(m, result.partition)));
  EXPECT_LT(seconds, 3.0);  // full solve runs tens of seconds
}

TEST(SapRace, ProbesFieldRoundTripsThroughWireSchema) {
  const auto wire =
      io::parse_wire_request("{\"pattern\":\"110;011\",\"probes\":4}");
  EXPECT_EQ(wire.request.probes, 4u);
  const std::string rendered = io::wire_request_json(wire);
  EXPECT_NE(rendered.find("\"probes\":4"), std::string::npos);

  const auto defaulted = io::parse_wire_request("{\"pattern\":\"110;011\"}");
  EXPECT_EQ(defaulted.request.probes, 1u);
  EXPECT_EQ(io::wire_request_json(defaulted).find("\"probes\""),
            std::string::npos);
}

}  // namespace
}  // namespace ebmf
