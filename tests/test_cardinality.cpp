// Tests for cardinality encodings: every encoding must admit exactly the
// assignments with the right number of true literals (checked by model
// enumeration with blocking clauses).

#include "sat/cardinality.h"

#include <gtest/gtest.h>

#include <set>

#include "sat/solver.h"

namespace ebmf::sat {
namespace {

/// Enumerate all models projected onto `lits`, returning the set of true
/// subsets (as bitmasks). Uses blocking clauses; fine for <= 12 literals.
std::set<std::uint32_t> project_models(Solver& s, const std::vector<Lit>& lits) {
  std::set<std::uint32_t> seen;
  while (s.solve() == SolveResult::Sat) {
    std::uint32_t mask = 0;
    Clause block;
    for (std::size_t i = 0; i < lits.size(); ++i) {
      if (s.model_true(lits[i])) {
        mask |= 1u << i;
        block.push_back(lits[i].neg());
      } else {
        block.push_back(lits[i]);
      }
    }
    seen.insert(mask);
    if (!s.add_clause(block)) break;
  }
  return seen;
}

std::size_t popcount32(std::uint32_t x) {
  std::size_t c = 0;
  while (x != 0) {
    c += x & 1;
    x >>= 1;
  }
  return c;
}

std::vector<Lit> fresh_lits(Solver& s, std::size_t n) {
  std::vector<Lit> lits;
  for (std::size_t i = 0; i < n; ++i) lits.push_back(pos(s.new_var()));
  return lits;
}

class AmoTest : public ::testing::TestWithParam<
                    std::tuple<std::size_t, AmoEncoding>> {};

TEST_P(AmoTest, ExactlyTheAmoModels) {
  const auto [n, enc] = GetParam();
  Solver s;
  const auto lits = fresh_lits(s, n);
  add_at_most_one(s, lits, enc);
  const auto models = project_models(s, lits);
  std::size_t expected = n + 1;  // empty + singletons
  EXPECT_EQ(models.size(), expected);
  for (auto m : models) EXPECT_LE(popcount32(m), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, AmoTest,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{4}, std::size_t{7},
                                         std::size_t{9}, std::size_t{12}),
                       ::testing::Values(AmoEncoding::Pairwise,
                                         AmoEncoding::Commander)));

class ExactlyOneTest : public ::testing::TestWithParam<
                           std::tuple<std::size_t, AmoEncoding>> {};

TEST_P(ExactlyOneTest, ExactlyTheSingletons) {
  const auto [n, enc] = GetParam();
  Solver s;
  const auto lits = fresh_lits(s, n);
  add_exactly_one(s, lits, enc);
  const auto models = project_models(s, lits);
  EXPECT_EQ(models.size(), n);
  for (auto m : models) EXPECT_EQ(popcount32(m), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ExactlyOneTest,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{3},
                                         std::size_t{8}, std::size_t{11}),
                       ::testing::Values(AmoEncoding::Pairwise,
                                         AmoEncoding::Commander)));

std::size_t binom(std::size_t n, std::size_t k) {
  if (k > n) return 0;
  std::size_t r = 1;
  for (std::size_t i = 0; i < k; ++i) r = r * (n - i) / (i + 1);
  return r;
}

enum class AmkKind { Sequential, Totalizer };

class AtMostKTest
    : public ::testing::TestWithParam<
          std::tuple<std::pair<std::size_t, std::size_t>, AmkKind>> {};

TEST_P(AtMostKTest, AdmitsExactlyTheSmallSubsets) {
  const auto [nk, kind] = GetParam();
  const auto [n, k] = nk;
  Solver s;
  const auto lits = fresh_lits(s, n);
  if (kind == AmkKind::Sequential)
    add_at_most_k(s, lits, k);
  else
    add_at_most_k_totalizer(s, lits, k);
  const auto models = project_models(s, lits);
  std::size_t expected = 0;
  for (std::size_t j = 0; j <= k && j <= n; ++j) expected += binom(n, j);
  EXPECT_EQ(models.size(), expected);
  for (auto m : models) EXPECT_LE(popcount32(m), k);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AtMostKTest,
    ::testing::Combine(
        ::testing::Values(std::make_pair(std::size_t{4}, std::size_t{0}),
                          std::make_pair(std::size_t{4}, std::size_t{2}),
                          std::make_pair(std::size_t{5}, std::size_t{1}),
                          std::make_pair(std::size_t{5}, std::size_t{3}),
                          std::make_pair(std::size_t{6}, std::size_t{2}),
                          std::make_pair(std::size_t{6}, std::size_t{5}),
                          std::make_pair(std::size_t{7}, std::size_t{4})),
        ::testing::Values(AmkKind::Sequential, AmkKind::Totalizer)));

class AtLeastKTest : public ::testing::TestWithParam<
                         std::pair<std::size_t, std::size_t>> {};

TEST_P(AtLeastKTest, AdmitsExactlyTheLargeSubsets) {
  const auto [n, k] = GetParam();
  Solver s;
  const auto lits = fresh_lits(s, n);
  add_at_least_k(s, lits, k);
  const auto models = project_models(s, lits);
  std::size_t expected = 0;
  for (std::size_t j = k; j <= n; ++j) expected += binom(n, j);
  EXPECT_EQ(models.size(), expected);
  for (auto m : models) EXPECT_GE(popcount32(m), k);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AtLeastKTest,
    ::testing::Values(std::make_pair(std::size_t{4}, std::size_t{1}),
                      std::make_pair(std::size_t{5}, std::size_t{5}),
                      std::make_pair(std::size_t{5}, std::size_t{2}),
                      std::make_pair(std::size_t{6}, std::size_t{3}),
                      std::make_pair(std::size_t{7}, std::size_t{6})));

TEST(Cardinality, AtMostKTrivialWhenKGeqN) {
  Solver s;
  const auto lits = fresh_lits(s, 4);
  add_at_most_k(s, lits, 4);
  EXPECT_EQ(s.num_clauses(), 0u);
  EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(Cardinality, AtLeastZeroIsNoop) {
  Solver s;
  const auto lits = fresh_lits(s, 3);
  add_at_least_k(s, lits, 0);
  EXPECT_EQ(s.num_clauses(), 0u);
}

TEST(Cardinality, CombinedWindowExactlyK) {
  // at_least_2 && at_most_2 over 5 literals = C(5,2)=10 models.
  Solver s;
  const auto lits = fresh_lits(s, 5);
  add_at_most_k(s, lits, 2);
  add_at_least_k(s, lits, 2);
  const auto models = project_models(s, lits);
  EXPECT_EQ(models.size(), 10u);
  for (auto m : models) EXPECT_EQ(popcount32(m), 2u);
}

}  // namespace
}  // namespace ebmf::sat
