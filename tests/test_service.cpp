// Tests for ebmf::service: in-process server round-trips, per-connection
// ordering under pipelining, 64-way concurrency, protocol errors, admission
// control, and the cache behaviour across connections.

#include "service/service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "benchgen/generators.h"
#include "io/json.h"
#include "io/request_io.h"
#include "support/rng.h"

namespace ebmf::service {
namespace {

ServerOptions test_options() {
  ServerOptions options;
  options.port = 0;  // ephemeral
  options.cache_mb = 8;
  options.budget_ceiling_seconds = 5.0;
  return options;
}

/// Parsed response convenience: depth + cache_hit + error presence.
struct Reply {
  io::json::Value document;

  explicit Reply(const std::string& line)
      : document(io::json::Value::parse(line)) {}

  [[nodiscard]] bool is_error() const {
    return document.find("error") != nullptr;
  }
  [[nodiscard]] double depth() const {
    return document.find("depth")->as_number();
  }
  [[nodiscard]] std::string label() const {
    const io::json::Value* value = document.find("label");
    return value == nullptr ? "" : value->as_string();
  }
  [[nodiscard]] std::string telemetry(const std::string& key) const {
    const io::json::Value* t = document.find("telemetry");
    if (t == nullptr) return "";
    const io::json::Value* value = t->find(key);
    return value == nullptr ? "" : value->as_string();
  }
};

TEST(Service, RoundTripSolvesAndReportsJson) {
  Server server(test_options());
  server.start();
  Client client("127.0.0.1", server.port());
  const Reply reply(client.round_trip(
      R"({"pattern": "110;011;111", "label": "eq2"})"));
  EXPECT_FALSE(reply.is_error());
  EXPECT_EQ(reply.depth(), 3.0);
  EXPECT_EQ(reply.label(), "eq2");
  EXPECT_EQ(reply.document.find("status")->as_string(), "optimal");
  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.stats().requests, 1u);
}

TEST(Service, IncludePartitionAttachesCertificate) {
  Server server(test_options());
  server.start();
  Client client("127.0.0.1", server.port());
  const Reply reply(client.round_trip(
      R"({"pattern": "10;01", "include_partition": true})"));
  ASSERT_FALSE(reply.is_error());
  const io::json::Value* partition = reply.document.find("partition");
  ASSERT_NE(partition, nullptr);
  EXPECT_EQ(partition->size(), 2u);
  server.stop();
}

TEST(Service, PipelinedRequestsAnswerInOrder) {
  Server server(test_options());
  server.start();
  Client client("127.0.0.1", server.port());
  const int n = 20;
  for (int i = 0; i < n; ++i) {
    // Alternate instance sizes so completion order would differ from
    // request order without the server's per-connection sequencing.
    const std::string pattern =
        (i % 2 == 0) ? "110;011;111" : "10;01";
    client.send_line("{\"pattern\": \"" + pattern + "\", \"label\": \"r" +
                     std::to_string(i) + "\"}");
  }
  for (int i = 0; i < n; ++i) {
    const Reply reply(client.read_line());
    ASSERT_FALSE(reply.is_error()) << i;
    EXPECT_EQ(reply.label(), "r" + std::to_string(i));
    EXPECT_EQ(reply.depth(), (i % 2 == 0) ? 3.0 : 2.0);
  }
  server.stop();
}

TEST(Service, Sustains64ConcurrentInFlightRequests) {
  ServerOptions options = test_options();
  options.threads = 4;  // solver pool much smaller than the request count
  Server server(options);
  server.start();
  const int connections = 64;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  clients.reserve(connections);
  for (int c = 0; c < connections; ++c) {
    clients.emplace_back([&, c]() {
      try {
        Client client("127.0.0.1", server.port());
        const Reply reply(client.round_trip(
            "{\"pattern\": \"110;011;111\", \"label\": \"c" +
            std::to_string(c) + "\"}"));
        if (!reply.is_error() && reply.depth() == 3.0 &&
            reply.label() == "c" + std::to_string(c))
          ok.fetch_add(1);
      } catch (const std::exception&) {
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), connections);
  EXPECT_GE(server.stats().connections, 64u);
  server.stop();
}

TEST(Service, RepeatedPatternHitsCacheAcrossConnections) {
  Server server(test_options());
  server.start();
  {
    Client first("127.0.0.1", server.port());
    const Reply cold(first.round_trip(R"({"pattern": "1110;0111;1111"})"));
    EXPECT_EQ(cold.telemetry("cache_hit"), "false");
  }
  {
    Client second("127.0.0.1", server.port());
    // A column-permuted duplicate from a brand-new connection.
    const Reply warm(second.round_trip(R"({"pattern": "1101;1011;1111"})"));
    EXPECT_EQ(warm.telemetry("cache_hit"), "true");
  }
  ASSERT_NE(server.engine().cache(), nullptr);
  EXPECT_GE(server.engine().cache()->stats().hits, 1u);
  server.stop();
}

TEST(Service, MalformedLinesYieldErrorsAndKeepTheConnection) {
  Server server(test_options());
  server.start();
  Client client("127.0.0.1", server.port());
  const Reply bad(client.round_trip("this is not json"));
  EXPECT_TRUE(bad.is_error());
  const Reply missing(client.round_trip(R"({"strategy": "sap"})"));
  EXPECT_TRUE(missing.is_error());
  const Reply unknown(
      client.round_trip(R"({"pattern": "10;01", "strategy": "nope"})"));
  EXPECT_TRUE(unknown.is_error());
  EXPECT_NE(unknown.document.find("error")->as_string().find("nope"),
            std::string::npos);
  // The connection still works after three protocol errors.
  const Reply good(client.round_trip(R"({"pattern": "10;01"})"));
  EXPECT_FALSE(good.is_error());
  EXPECT_EQ(good.depth(), 2.0);
  EXPECT_EQ(server.stats().errors, 3u);
  server.stop();
}

TEST(Service, SplitRequestsRouteThroughSolveSplit) {
  Server server(test_options());
  server.start();
  Client client("127.0.0.1", server.port());
  // Two diagonal blocks: the split path decomposes, the giant-component
  // fallback telemetry appears for a single-component pattern.
  const Reply split(client.round_trip(
      R"({"pattern": "1100;1100;0011;0011", "split": true})"));
  ASSERT_FALSE(split.is_error());
  EXPECT_EQ(split.depth(), 2.0);
  const Reply single(client.round_trip(
      R"({"pattern": "11;11", "split": true})"));
  ASSERT_FALSE(single.is_error());
  EXPECT_EQ(single.telemetry("split.fallback"), "single-component");
  server.stop();
}

TEST(Service, AdmissionControlShedsLoadWithAnError) {
  ServerOptions options = test_options();
  options.max_inflight = 1;
  options.max_batch = 8;
  Server server(options);
  server.start();
  Client client("127.0.0.1", server.port());
  // A pipelined burst on one connection is parsed as one batch; with one
  // admission slot the surplus is rejected, in order.
  for (int i = 0; i < 4; ++i)
    client.send_line(R"({"pattern": "110;011;111"})");
  int errors = 0;
  int served = 0;
  for (int i = 0; i < 4; ++i) {
    const Reply reply(client.read_line());
    if (reply.is_error())
      ++errors;
    else
      ++served;
  }
  EXPECT_GE(served, 1);
  EXPECT_EQ(served + errors, 4);
  if (errors > 0) EXPECT_GE(server.stats().rejected, 1u);
  server.stop();
}

TEST(Service, StopDrainsCleanlyUnderLoad) {
  ServerOptions options = test_options();
  options.budget_ceiling_seconds = 30.0;  // long budgets; drain must cancel
  Server server(options);
  server.start();
  std::vector<std::thread> clients;
  std::atomic<int> answered{0};
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&]() {
      try {
        Client client("127.0.0.1", server.port());
        const Reply reply(client.round_trip(
            R"({"pattern": "111000;000111;110011"})"));
        (void)reply;
        answered.fetch_add(1);
      } catch (const std::exception&) {
        // Server closed first: acceptable during drain.
      }
    });
  }
  // Give the clients a moment to get in flight, then drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.stop();
  for (auto& t : clients) t.join();
  EXPECT_FALSE(server.running());
}

TEST(Service, StatsVerbReportsCountersAndCache) {
  Server server(test_options());
  server.start();
  Client client("127.0.0.1", server.port());
  const Reply solve(client.round_trip(R"({"pattern": "110;011;111"})"));
  ASSERT_FALSE(solve.is_error());
  const Reply stats(client.round_trip(R"({"op": "stats", "id": 5})"));
  ASSERT_FALSE(stats.is_error());
  EXPECT_EQ(stats.document.find("id")->as_number(), 5.0);
  EXPECT_EQ(stats.document.find("role")->as_string(), "server");
  const io::json::Value* server_block = stats.document.find("server");
  ASSERT_NE(server_block, nullptr);
  EXPECT_EQ(server_block->find("requests")->as_number(), 1.0);
  const io::json::Value* cache_block = stats.document.find("cache");
  ASSERT_NE(cache_block, nullptr);
  ASSERT_TRUE(cache_block->is_object());
  EXPECT_GE(cache_block->find("misses")->as_number(), 1.0);
  // The stats line is not a solve: the request counter did not move.
  EXPECT_EQ(server.stats().requests, 1u);
  server.stop();
}

TEST(Service, RequestIdIsEchoedFirstInTheResponse) {
  Server server(test_options());
  server.start();
  Client client("127.0.0.1", server.port());
  const std::string raw =
      client.round_trip(R"({"pattern": "10;01", "id": 11})");
  EXPECT_EQ(raw.rfind("{\"id\":11,", 0), 0u);
  const Reply reply(raw);
  ASSERT_FALSE(reply.is_error());
  EXPECT_EQ(reply.document.find("id")->as_number(), 11.0);
  // Errors echo the id too (the router matches error replies by id).
  const std::string bad = client.round_trip(R"({"id": 12, "nope": 1})");
  EXPECT_EQ(bad.rfind("{\"id\":12,", 0), 0u);
  EXPECT_TRUE(Reply(bad).is_error());
  server.stop();
}

TEST(Service, ClientReconnectsOnceAcrossAServerRestart) {
  ServerOptions options = test_options();
  Server first(options);
  first.start();
  const std::uint16_t port = first.port();
  Client client("127.0.0.1", port);
  const Reply before(client.round_trip(R"({"pattern": "10;01"})"));
  ASSERT_FALSE(before.is_error());

  // Restart the server on the same port while the client holds its (now
  // dead) connection. The next round_trip must succeed transparently via
  // the single reconnect + re-send.
  first.stop();
  options.port = port;
  Server second(options);
  second.start();
  const Reply after(client.round_trip(R"({"pattern": "110;011;111"})"));
  ASSERT_FALSE(after.is_error());
  EXPECT_EQ(after.depth(), 3.0);
  EXPECT_GE(second.stats().requests, 1u);
  second.stop();
}

TEST(Service, EphemeralPortIsReportedAndReusable) {
  Server first(test_options());
  first.start();
  const std::uint16_t port = first.port();
  EXPECT_NE(port, 0);
  first.stop();
  // The port is released after stop(); a new server can bind it again.
  ServerOptions options = test_options();
  options.port = port;
  Server second(options);
  second.start();
  EXPECT_EQ(second.port(), port);
  second.stop();
}

// ---- live progress streaming and the flight recorder -----------------------

/// A structured qldpc-block pattern whose rank certificate goes slack —
/// a budgeted `local` solve on it runs anytime until the deadline,
/// publishing progress frames the whole way instead of certifying early.
std::string hard_pattern(std::size_t blocks = 96, std::size_t width = 64) {
  Rng rng(7);
  const BinaryMatrix m =
      benchgen::qldpc_block_matrix(blocks, width, 0.3, rng);
  std::string out;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    if (r != 0) out += ';';
    for (std::size_t c = 0; c < m.cols(); ++c)
      out += m.test(r, c) ? '1' : '0';
  }
  return out;
}

/// Subscribe `watcher` to in-flight id 0, retrying while the solve line is
/// still in flight to the server. Returns the first stream line ("" when
/// the subscription never took).
std::string subscribe_watch(Client& watcher) {
  for (int attempt = 0; attempt < 100; ++attempt) {
    watcher.send_line(R"({"op":"watch","id":0})");
    const std::string line = watcher.read_line();
    if (line.find("no in-flight request") == std::string::npos) return line;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return "";
}

TEST(Watch, UnknownIdIsAnErrorAndKeepsTheConnection) {
  Server server(test_options());
  server.start();
  Client client("127.0.0.1", server.port());
  const Reply miss(client.round_trip(R"({"op":"watch","id":777})"));
  ASSERT_TRUE(miss.is_error());
  EXPECT_NE(miss.document.find("error")->as_string().find(
                "no in-flight request with id 777"),
            std::string::npos);
  EXPECT_EQ(miss.document.find("id")->as_number(), 777.0);
  // The connection still serves solves afterwards.
  const Reply good(client.round_trip(R"({"pattern": "10;01"})"));
  EXPECT_FALSE(good.is_error());
  server.stop();
}

TEST(Watch, StreamsFramesWithNonIncreasingGapThenDone) {
  Server server(test_options());
  server.start();
  Client solver("127.0.0.1", server.port());
  solver.send_line("{\"id\":0,\"pattern\":\"" + hard_pattern() +
                   "\",\"strategy\":\"local\",\"budget\":1.5}");

  Client watcher("127.0.0.1", server.port());
  std::string line = subscribe_watch(watcher);
  ASSERT_FALSE(line.empty()) << "watch never attached";

  std::size_t frames = 0;
  std::uint64_t prev_seq = 0;
  std::uint64_t prev_gap = 0;
  bool have_gap = false;
  bool done = false;
  while (!done) {
    const io::json::Value frame = io::json::Value::parse(line);
    ASSERT_EQ(frame.find("error"), nullptr) << line;
    EXPECT_EQ(frame.find("id")->as_number(), 0.0);
    if (frame.find("done") != nullptr) {
      EXPECT_NE(frame.find("watch"), nullptr);
      EXPECT_GE(frame.find("frames")->as_number(),
                static_cast<double>(frames));
      done = true;
      break;
    }
    ASSERT_NE(frame.find("progress"), nullptr) << line;
    const auto seq =
        static_cast<std::uint64_t>(frame.find("seq")->as_number());
    if (frames != 0) EXPECT_GT(seq, prev_seq) << "seq not increasing";
    prev_seq = seq;
    // The anytime trajectory only improves: once the search phase starts
    // reporting a gap, it never widens.
    if (frame.find("phase") != nullptr &&
        frame.find("phase")->as_string() == "search") {
      const auto gap =
          static_cast<std::uint64_t>(frame.find("gap")->as_number());
      if (have_gap) EXPECT_LE(gap, prev_gap) << "gap widened";
      prev_gap = gap;
      have_gap = true;
    }
    ++frames;
    line = watcher.read_line();
  }
  EXPECT_TRUE(done);
  EXPECT_GE(frames, 3u) << "budgeted local solve streamed too few frames";

  // The solve reply itself still arrives on the solving connection, and —
  // being budget-cut — carries the flight recorder's tail.
  const Reply reply(solver.read_line());
  ASSERT_FALSE(reply.is_error());
  if (reply.document.find("status")->as_string() != "optimal")
    EXPECT_NE(reply.document.find("events"), nullptr);
  server.stop();
}

TEST(Watch, SubscriberDisconnectMidSolveDoesNotStallTheSolver) {
  Server server(test_options());
  server.start();
  Client solver("127.0.0.1", server.port());
  solver.send_line("{\"id\":0,\"pattern\":\"" + hard_pattern() +
                   "\",\"strategy\":\"local\",\"budget\":1.0}");
  {
    Client watcher("127.0.0.1", server.port());
    const std::string first = subscribe_watch(watcher);
    ASSERT_FALSE(first.empty());
    // Hang up mid-stream: the destructor closes the socket while the
    // solve is still publishing.
  }
  const Reply reply(solver.read_line());
  ASSERT_FALSE(reply.is_error());
  EXPECT_GE(reply.document.find("depth")->as_number(), 1.0);
  server.stop();
}

TEST(Events, BudgetCutReplyCarriesFlightRecorderSnapshot) {
  Server server(test_options());
  server.start();
  Client client("127.0.0.1", server.port());
  const Reply reply(client.round_trip(
      "{\"pattern\":\"" + hard_pattern() +
      "\",\"strategy\":\"local\",\"budget\":0.3}"));
  ASSERT_FALSE(reply.is_error());
  ASSERT_NE(reply.document.find("status")->as_string(), "optimal");
  const io::json::Value* events = reply.document.find("events");
  ASSERT_NE(events, nullptr) << "budget-cut reply lost its events";
  ASSERT_TRUE(events->is_array());
  ASSERT_GE(events->size(), 1u);
  // Records carry the documented shape: tick + named event.
  const io::json::Value& record = events->at(0);
  EXPECT_NE(record.find("tick"), nullptr);
  EXPECT_NE(record.find("event"), nullptr);
  server.stop();
}

TEST(Events, VerbSnapshotsTheRecorderOnDemand) {
  Server server(test_options());
  server.start();
  Client client("127.0.0.1", server.port());
  // A solve first, so the rings hold something attributable.
  const Reply solve(client.round_trip(
      "{\"pattern\":\"" + hard_pattern(48, 48) +
      "\",\"strategy\":\"local\",\"budget\":0.2}"));
  ASSERT_FALSE(solve.is_error());
  const std::string raw = client.round_trip(R"({"op":"events","id":3})");
  EXPECT_EQ(raw.rfind("{\"id\":3,", 0), 0u);
  const Reply reply(raw);
  ASSERT_FALSE(reply.is_error());
  const io::json::Value* events = reply.document.find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_GE(events->size(), 1u);
  server.stop();
}

TEST(Metrics, MalformedScopeIsRejectedFleetNeedsARouter) {
  Server server(test_options());
  server.start();
  Client client("127.0.0.1", server.port());
  const Reply bogus(
      client.round_trip(R"({"op":"metrics","scope":"bogus"})"));
  ASSERT_TRUE(bogus.is_error());
  EXPECT_NE(bogus.document.find("error")->as_string().find(
                "must be self|local"),
            std::string::npos);
  // A backend has no fleet: the error names the router capability.
  const Reply fleet(
      client.round_trip(R"({"op":"metrics","scope":"fleet"})"));
  ASSERT_TRUE(fleet.is_error());
  EXPECT_NE(fleet.document.find("error")->as_string().find("needs a router"),
            std::string::npos);
  // Explicit self/local scopes answer exactly like the default.
  for (const char* scope : {"self", "local"}) {
    const Reply ok(client.round_trip(
        std::string(R"({"op":"metrics","scope":")") + scope + "\"}"));
    ASSERT_FALSE(ok.is_error()) << scope;
    EXPECT_NE(ok.document.find("body"), nullptr);
  }
  server.stop();
}

}  // namespace
}  // namespace ebmf::service
