// Tests for the exactness-preserving reductions: duplicate collapse and
// connected-component split, plus their interaction with SAP.

#include "core/preprocess.h"

#include <gtest/gtest.h>

#include "core/bounds.h"
#include "core/brute_force.h"
#include "smt/sap.h"
#include "support/rng.h"

namespace ebmf {
namespace {

TEST(Dedup, CollapsesDuplicatesAndZeros) {
  const auto m = BinaryMatrix::parse(
      "1100"
      ";1100"
      ";0000"
      ";0011"
      ";1100");
  const auto r = reduce_duplicates(m);
  EXPECT_EQ(r.reduced.rows(), 2u);  // {1100}, {0011}
  EXPECT_EQ(r.reduced.cols(), 2u);  // cols 0==1, 2==3
  EXPECT_EQ(r.row_groups[0], (std::vector<std::size_t>{0, 1, 4}));
  EXPECT_EQ(r.row_groups[1], (std::vector<std::size_t>{3}));
  EXPECT_EQ(r.col_groups[0], (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(r.col_groups[1], (std::vector<std::size_t>{2, 3}));
}

TEST(Dedup, ZeroMatrixReducesToEmpty) {
  const BinaryMatrix z(3, 3);
  const auto r = reduce_duplicates(z);
  EXPECT_EQ(r.reduced.rows(), 0u);
  EXPECT_EQ(r.reduced.cols(), 0u);
}

TEST(Dedup, IdempotentOnIrreducible) {
  const auto m = BinaryMatrix::parse("110;011;111");
  const auto r = reduce_duplicates(m);
  EXPECT_EQ(r.reduced, m);
}

TEST(Dedup, PreservesRankAndBinaryRank) {
  Rng rng(41);
  for (int t = 0; t < 15; ++t) {
    auto m = BinaryMatrix::random(4, 4, 0.5, rng);
    // Duplicate some rows/cols by hand: append row 0 and col 0 copies.
    BinaryMatrix big(6, 5);
    for (std::size_t i = 0; i < 4; ++i)
      for (std::size_t j = 0; j < 4; ++j)
        if (m.test(i, j)) big.set(i, j);
    for (std::size_t j = 0; j < 4; ++j) {
      if (m.test(0, j)) big.set(4, j);
      if (m.test(1, j)) big.set(5, j);
    }
    for (std::size_t i = 0; i < 4; ++i)
      if (m.test(i, 0)) big.set(i, 4);
    if (m.test(0, 0)) big.set(4, 4);
    if (m.test(1, 0)) big.set(5, 4);
    if (big.is_zero()) continue;
    const auto r = reduce_duplicates(big);
    EXPECT_EQ(real_rank(r.reduced), real_rank(big));
    const auto brute_red = brute_force_ebmf(r.reduced);
    const auto brute_big = brute_force_ebmf(big);
    ASSERT_TRUE(brute_red && brute_big);
    EXPECT_EQ(brute_red->binary_rank, brute_big->binary_rank);
  }
}

TEST(Dedup, ExpandedPartitionIsValid) {
  const auto m = BinaryMatrix::parse(
      "1100"
      ";1100"
      ";0011"
      ";0011");
  const auto r = reduce_duplicates(m);
  const auto brute = brute_force_ebmf(r.reduced);
  ASSERT_TRUE(brute.has_value());
  const auto expanded = expand_partition(brute->partition, r);
  const auto v = validate_partition(m, expanded);
  EXPECT_TRUE(v.ok) << v.reason;
  EXPECT_EQ(expanded.size(), brute->binary_rank);
}

TEST(Components, BlockDiagonalSplits) {
  const auto m = BinaryMatrix::parse(
      "1100"
      ";1000"
      ";0011"
      ";0001");
  const auto comps = split_components(m);
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_EQ(comps[0].matrix.rows() + comps[1].matrix.rows(), 4u);
  std::size_t total_ones = 0;
  for (const auto& c : comps) total_ones += c.matrix.ones_count();
  EXPECT_EQ(total_ones, m.ones_count());
}

TEST(Components, ConnectedMatrixIsOneComponent) {
  const auto m = BinaryMatrix::parse("110;011;111");
  const auto comps = split_components(m);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].matrix, m);
}

TEST(Components, ZeroMatrixHasNone) {
  const BinaryMatrix z(4, 4);
  EXPECT_TRUE(split_components(z).empty());
}

TEST(Components, InterleavedComponentsSeparate) {
  // Odd/even column groups interleaved across rows.
  const auto m = BinaryMatrix::parse(
      "1010"
      ";0101"
      ";1010");
  const auto comps = split_components(m);
  ASSERT_EQ(comps.size(), 2u);
}

TEST(Components, LiftedPartitionsConcatenateValidly) {
  Rng rng(43);
  for (int t = 0; t < 15; ++t) {
    const auto m = BinaryMatrix::random(8, 8, 0.12, rng);  // sparse: splits
    const auto comps = split_components(m);
    Partition combined;
    for (const auto& comp : comps) {
      const auto brute = brute_force_ebmf(comp.matrix);
      ASSERT_TRUE(brute.has_value());
      auto lifted = lift_partition(brute->partition, comp, 8, 8);
      combined.insert(combined.end(), lifted.begin(), lifted.end());
    }
    const auto v = validate_partition(m, combined);
    EXPECT_TRUE(v.ok) << v.reason;
  }
}

TEST(Components, RankIsAdditive) {
  Rng rng(44);
  for (int t = 0; t < 10; ++t) {
    const auto m = BinaryMatrix::random(10, 10, 0.1, rng);
    const auto comps = split_components(m);
    std::size_t sum = 0;
    for (const auto& c : comps) sum += real_rank(c.matrix);
    EXPECT_EQ(sum, real_rank(m));
  }
}

TEST(SapPreprocess, SameAnswerWithAndWithout) {
  Rng rng(45);
  for (int t = 0; t < 10; ++t) {
    const auto m = BinaryMatrix::random(6, 6, 0.25, rng);
    if (m.is_zero()) continue;
    SapOptions with;
    with.preprocess = true;
    SapOptions without;
    without.preprocess = false;
    const auto a = sap_solve(m, with);
    const auto b = sap_solve(m, without);
    ASSERT_TRUE(a.proven_optimal());
    ASSERT_TRUE(b.proven_optimal());
    EXPECT_EQ(a.depth(), b.depth()) << m.to_string();
    EXPECT_EQ(a.rank_lower, b.rank_lower);
    EXPECT_TRUE(validate_partition(m, a.partition).ok);
  }
}

TEST(SapPreprocess, SparseLargeMatrixExactlySolved) {
  // The paper's "too large for SMT" regime: 60x60 at 2% shatters into tiny
  // components, each exactly solvable - preprocessing turns the whole
  // instance provably optimal.
  Rng rng(46);
  const auto m = BinaryMatrix::random(60, 60, 0.02, rng);
  SapOptions opt;
  opt.budget.deadline = Deadline::after(20.0);
  const auto r = sap_solve(m, opt);
  EXPECT_TRUE(r.proven_optimal());
  EXPECT_TRUE(validate_partition(m, r.partition).ok);
}

TEST(SapPreprocess, DuplicateHeavyMatrixShrinks) {
  // 12 copies of 3 distinct rows: the reduced problem is 3 rows.
  Rng rng(47);
  const auto base = BinaryMatrix::random(3, 8, 0.5, rng);
  std::vector<BitVec> rows;
  for (int copy = 0; copy < 4; ++copy)
    for (std::size_t i = 0; i < 3; ++i) rows.push_back(base.row(i));
  const auto m = BinaryMatrix::from_rows(rows, 8);
  if (m.is_zero()) GTEST_SKIP();
  const auto r = sap_solve(m);
  EXPECT_TRUE(r.proven_optimal());
  EXPECT_LE(r.depth(), 3u);
  EXPECT_TRUE(validate_partition(m, r.partition).ok);
}

}  // namespace
}  // namespace ebmf
