// Tests for the don't-care (vacancy) extension: masked validation and the
// completion solver under both semantics.

#include "completion/completion_solver.h"

#include <gtest/gtest.h>

#include "smt/sap.h"
#include "support/rng.h"

namespace ebmf::completion {
namespace {

TEST(Masked, ParseClassifiesCells) {
  const auto m = MaskedMatrix::parse("10*;x01");
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.at(0, 0), Cell::One);
  EXPECT_EQ(m.at(0, 1), Cell::Zero);
  EXPECT_EQ(m.at(0, 2), Cell::DontCare);
  EXPECT_EQ(m.at(1, 0), Cell::DontCare);
  EXPECT_EQ(m.at(1, 2), Cell::One);
  EXPECT_EQ(m.dont_care_count(), 2u);
  // Pattern view reads don't-cares as 0.
  EXPECT_FALSE(m.pattern().test(0, 2));
}

TEST(Masked, ValidateRespectsSemantics) {
  // Pattern: diag ones, anti-diag don't-cares. The full 2x2 rectangle
  // covers each DC once - fine under both semantics.
  const auto m = MaskedMatrix::parse("1*;*1");
  const Partition full{
      Rectangle{BitVec::from_string("11"), BitVec::from_string("11")}};
  EXPECT_TRUE(validate_masked(m, full, false));
  EXPECT_TRUE(validate_masked(m, full, true));
  // Two rectangles that overlap on the DC at (1,0): Free ok, AtMostOnce no.
  const Partition overlapping{
      Rectangle{BitVec::from_string("11"), BitVec::from_string("10")},
      Rectangle{BitVec::from_string("01"), BitVec::from_string("11")}};
  EXPECT_TRUE(validate_masked(m, overlapping, false));
  EXPECT_FALSE(validate_masked(m, overlapping, true));
  std::string why;
  EXPECT_FALSE(validate_masked(m, overlapping, true, &why));
  EXPECT_NE(why.find("don't-care"), std::string::npos);
}

TEST(Masked, ValidateRejectsZeroCoverAndDoubleOne) {
  const auto m = MaskedMatrix::parse("10;01");
  const Partition bad{
      Rectangle{BitVec::from_string("11"), BitVec::from_string("11")}};
  std::string why;
  EXPECT_FALSE(validate_masked(m, bad, false, &why));
  EXPECT_NE(why.find("zero cell"), std::string::npos);
}

TEST(Completion, DontCareBridgesRectangles) {
  // Without DCs the diagonal needs 2 rectangles; with the anti-diagonal as
  // vacancies a single full rectangle suffices.
  const auto m = MaskedMatrix::parse("1*;*1");
  const auto r = solve_masked(m);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_EQ(r.partition.size(), 1u);
  EXPECT_TRUE(validate_masked(m, r.partition, false));
  // The DC-as-0 heuristic needed 2.
  EXPECT_EQ(r.heuristic_size, 2u);
}

TEST(Completion, NoDontCaresMatchesSap) {
  Rng rng(31);
  for (int t = 0; t < 6; ++t) {
    const auto pattern = BinaryMatrix::random(5, 5, 0.5, rng);
    if (pattern.is_zero()) continue;
    MaskedMatrix m(5, 5);
    for (std::size_t i = 0; i < 5; ++i)
      for (std::size_t j = 0; j < 5; ++j)
        if (pattern.test(i, j)) m.set(i, j, Cell::One);
    const auto masked = solve_masked(m);
    const auto plain = sap_solve(pattern);
    ASSERT_TRUE(plain.proven_optimal());
    ASSERT_TRUE(masked.proven_optimal);
    EXPECT_EQ(masked.partition.size(), plain.depth());
  }
}

TEST(Completion, ZeroPatternEmptyResult) {
  const auto m = MaskedMatrix::parse("**;**");
  const auto r = solve_masked(m);
  EXPECT_TRUE(r.partition.empty());
  EXPECT_TRUE(r.proven_optimal);
}

TEST(Completion, SemanticsOrdering) {
  // Free <= AtMostOnce <= DC-as-0, on random masked instances.
  Rng rng(77);
  for (int t = 0; t < 8; ++t) {
    MaskedMatrix m(4, 4);
    bool has_one = false;
    for (std::size_t i = 0; i < 4; ++i)
      for (std::size_t j = 0; j < 4; ++j) {
        const auto roll = rng.below(10);
        if (roll < 4) {
          m.set(i, j, Cell::One);
          has_one = true;
        } else if (roll < 6) {
          m.set(i, j, Cell::DontCare);
        }
      }
    if (!has_one) continue;
    CompletionOptions free_opt;
    CompletionOptions strict_opt;
    strict_opt.semantics = DontCareSemantics::AtMostOnce;
    const auto rf = solve_masked(m, free_opt);
    const auto rs = solve_masked(m, strict_opt);
    ASSERT_TRUE(rf.proven_optimal);
    ASSERT_TRUE(rs.proven_optimal);
    EXPECT_LE(rf.partition.size(), rs.partition.size());
    const auto plain = sap_solve(m.pattern());
    ASSERT_TRUE(plain.proven_optimal());
    EXPECT_LE(rs.partition.size(), plain.depth());
    EXPECT_TRUE(validate_masked(m, rf.partition, false));
    EXPECT_TRUE(validate_masked(m, rs.partition, true));
  }
}

TEST(Completion, SatDisabledStillValid) {
  const auto m = MaskedMatrix::parse("1*1;0x0;101");
  CompletionOptions opt;
  opt.use_sat = false;
  const auto r = solve_masked(m, opt);
  EXPECT_TRUE(validate_masked(m, r.partition, true));
}

}  // namespace
}  // namespace ebmf::completion
