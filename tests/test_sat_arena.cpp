// Tests for the clause-arena storage layer: compaction invariants (watches
// and reason references stay valid across the GC that reduce_db runs),
// unsat cores surviving compaction, incremental use after collection, and
// the prompt budget-cancellation checkpoints added alongside the arena.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "sat/arena.h"
#include "sat/brute.h"
#include "sat/dimacs.h"
#include "sat/solver.h"
#include "support/rng.h"
#include "support/stopwatch.h"

namespace ebmf::sat {
namespace {

// ---- ClauseArena unit behaviour ----------------------------------------

TEST(ClauseArena, AllocRoundTripsHeaderAndLiterals) {
  ClauseArena arena;
  const Lit lits[3] = {pos(0), neg(1), pos(2)};
  const CRef c = arena.alloc(lits, 3, /*learnt=*/true, /*lbd=*/5, 0.25f);
  EXPECT_EQ(arena.size(c), 3u);
  EXPECT_TRUE(arena.learnt(c));
  EXPECT_FALSE(arena.deleted(c));
  EXPECT_EQ(arena.lbd(c), 5u);
  EXPECT_FLOAT_EQ(arena.activity(c), 0.25f);
  EXPECT_EQ(arena.lit(c, 0), pos(0));
  EXPECT_EQ(arena.lit(c, 1), neg(1));
  EXPECT_EQ(arena.lit(c, 2), pos(2));
}

TEST(ClauseArena, CompactDropsDeletedAndForwardsLive) {
  ClauseArena arena;
  const Lit a[2] = {pos(0), pos(1)};
  const Lit b[3] = {neg(0), pos(2), neg(3)};
  const Lit c[2] = {pos(4), neg(5)};
  const CRef ra = arena.alloc(a, 2, false, 0, 0.0f);
  const CRef rb = arena.alloc(b, 3, true, 2, 1.0f);
  const CRef rc = arena.alloc(c, 2, true, 3, 2.0f);
  const std::size_t before = arena.words();
  arena.mark_deleted(rb);
  EXPECT_EQ(arena.wasted_words(), ClauseArena::kHeaderWords + 3);

  arena.compact();
  const CRef na = arena.forward(ra);
  const CRef nc = arena.forward(rc);
  arena.drop_forwarding();
  EXPECT_LT(arena.words(), before);
  EXPECT_EQ(arena.wasted_words(), 0u);
  EXPECT_EQ(arena.lit(na, 0), pos(0));
  EXPECT_EQ(arena.lit(na, 1), pos(1));
  EXPECT_EQ(arena.size(nc), 2u);
  EXPECT_EQ(arena.lit(nc, 1), neg(5));
  EXPECT_FLOAT_EQ(arena.activity(nc), 2.0f);
  // The walk sees exactly the two surviving clauses.
  std::size_t live = 0;
  for (CRef w = arena.walk_begin(); w < arena.walk_end();
       w = arena.walk_next(w))
    ++live;
  EXPECT_EQ(live, 2u);
}

// ---- GC invariants through the solver ----------------------------------

Cnf random_cnf(std::size_t vars, std::size_t clauses, std::size_t width,
               Rng& rng) {
  Cnf cnf;
  cnf.num_vars = vars;
  for (std::size_t c = 0; c < clauses; ++c) {
    Clause cl;
    for (std::size_t k = 0; k < width; ++k)
      cl.push_back(Lit(static_cast<Var>(rng.below(vars)), rng.chance(0.5)));
    cnf.clauses.push_back(std::move(cl));
  }
  return cnf;
}

/// A pigeonhole instance reliably drives the solver through several
/// reduce_db rounds (and therefore arena compactions) before answering.
void add_pigeonhole(Solver& s, int holes) {
  std::vector<std::vector<Lit>> x(static_cast<std::size_t>(holes) + 1);
  for (auto& row : x)
    for (int h = 0; h < holes; ++h) row.push_back(pos(s.new_var()));
  for (auto& row : x) s.add_clause(Clause(row));
  for (int h = 0; h < holes; ++h)
    for (std::size_t p1 = 0; p1 < x.size(); ++p1)
      for (std::size_t p2 = p1 + 1; p2 < x.size(); ++p2)
        s.add_clause(x[p1][static_cast<std::size_t>(h)].neg(),
                     x[p2][static_cast<std::size_t>(h)].neg());
}

TEST(SatArenaGc, CompactionRunsAndPreservesUnsatAnswer) {
  Solver s;
  add_pigeonhole(s, 7);
  EXPECT_EQ(s.solve(), SolveResult::Unsat);
  // The search must have both deleted learnt clauses and compacted.
  EXPECT_GT(s.stats().deleted_clauses, 0u);
  EXPECT_GT(s.stats().arena_gcs, 0u);
  EXPECT_GT(s.stats().arena_bytes, 0u);
}

TEST(SatArenaGc, AnswersStayCorrectAcrossManyCollections) {
  // Random near-threshold 3-SAT instances: enough conflicts to trigger
  // reduce_db, cross-checked against the independent DPLL reference.
  Rng rng(20260730);
  for (int inst = 0; inst < 15; ++inst) {
    const std::size_t vars = 14 + rng.below(6);
    const Cnf cnf = random_cnf(vars, vars * 5, 3, rng);
    Solver s;
    for (std::size_t v = 0; v < cnf.num_vars; ++v) (void)s.new_var();
    for (const auto& c : cnf.clauses) s.add_clause(c);
    const auto got = s.solve();
    const auto reference = brute_force_sat(cnf);
    ASSERT_EQ(got == SolveResult::Sat, reference.has_value());
    if (got == SolveResult::Sat) {
      std::vector<bool> model(cnf.num_vars);
      for (std::size_t v = 0; v < cnf.num_vars; ++v)
        model[v] = s.model_true(pos(static_cast<Var>(v)));
      EXPECT_TRUE(model_satisfies(cnf, model));
    }
  }
}

TEST(SatArenaGc, IncrementalAddSolveCyclesAgreeWithReference) {
  // The SAP narrowing workload: add clauses, solve, add more, solve again —
  // across solves whose reduce_db compacted the arena. Each stage is
  // cross-checked against the DPLL reference on the accumulated CNF.
  Rng rng(424242);
  for (int inst = 0; inst < 8; ++inst) {
    const std::size_t vars = 16;
    Cnf accumulated;
    accumulated.num_vars = vars;
    Solver s;
    for (std::size_t v = 0; v < vars; ++v) (void)s.new_var();
    bool contradicted = false;
    for (int stage = 0; stage < 4; ++stage) {
      const Cnf extra = random_cnf(vars, vars * 2, 3, rng);
      for (const auto& c : extra.clauses) {
        accumulated.clauses.push_back(c);
        if (!s.add_clause(c)) contradicted = true;
      }
      const auto got = contradicted ? SolveResult::Unsat : s.solve();
      const auto reference = brute_force_sat(accumulated);
      ASSERT_EQ(got == SolveResult::Sat, reference.has_value())
          << "instance " << inst << " stage " << stage;
      if (got != SolveResult::Sat) break;
      std::vector<bool> model(vars);
      for (std::size_t v = 0; v < vars; ++v)
        model[v] = s.model_true(pos(static_cast<Var>(v)));
      EXPECT_TRUE(model_satisfies(accumulated, model));
    }
  }
}

TEST(SatArenaGc, UnsatCorePreservedAcrossCompaction) {
  // A solver whose clause database goes through reduce_db before the
  // assumption query: the final-conflict core must still be a correct
  // subset of the assumptions. Pigeonhole rows carry a guard literal, so
  // the formula alone is SAT and the guard assumption turns it UNSAT.
  Solver t;
  const Var guard = t.new_var();
  constexpr int kHoles = 8;  // large enough to force reduce_db + GC
  std::vector<std::vector<Lit>> x(kHoles + 1);
  for (auto& row : x)
    for (int h = 0; h < kHoles; ++h) row.push_back(pos(t.new_var()));
  for (auto& row : x) {
    Clause cl(row.begin(), row.end());
    cl.push_back(neg(guard));  // guard=false satisfies the row trivially
    t.add_clause(std::move(cl));
  }
  for (int h = 0; h < kHoles; ++h)
    for (std::size_t p1 = 0; p1 < x.size(); ++p1)
      for (std::size_t p2 = p1 + 1; p2 < x.size(); ++p2)
        t.add_clause(x[p1][static_cast<std::size_t>(h)].neg(),
                     x[p2][static_cast<std::size_t>(h)].neg());

  // Without the guard the formula is satisfiable (all holes empty).
  EXPECT_EQ(t.solve(), SolveResult::Sat);
  // Under the guard assumption it is the pigeonhole contradiction; the
  // search will churn through reduce_db rounds before refuting.
  const auto result = t.solve({pos(guard)});
  EXPECT_EQ(result, SolveResult::Unsat);
  ASSERT_FALSE(t.unsat_core().empty());
  EXPECT_EQ(t.unsat_core()[0], pos(guard));
  EXPECT_GT(t.stats().arena_gcs, 0u);
  // The solver (no top-level contradiction) must still answer Sat without
  // the assumption afterwards.
  EXPECT_EQ(t.solve(), SolveResult::Sat);
}

// ---- budget latency (propagation-count checkpoints) --------------------

TEST(SatBudget, CancellationLandsPromptlyMidSolve) {
  // A large, slow pigeonhole solve cancelled from another thread: the
  // propagation-count checkpoint must stop it far faster than the old
  // 256-conflict cadence would on propagate-heavy instances.
  Solver s;
  add_pigeonhole(s, 9);
  Budget budget;
  budget.cancellable();
  std::thread canceller([&budget]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    budget.request_cancel();
  });
  Stopwatch sw;
  const auto result = s.solve({}, budget);
  const double seconds = sw.seconds();
  canceller.join();
  EXPECT_EQ(result, SolveResult::Unknown);
  // Generous ceiling: the full solve takes multiple seconds; a prompt
  // cancellation returns well under one.
  EXPECT_LT(seconds, 1.0);
}

TEST(SatBudget, SecondaryCancelFlagStopsTheSolve) {
  Solver s;
  add_pigeonhole(s, 9);
  Budget budget;
  budget.also_cancel = std::make_shared<std::atomic<bool>>(true);
  EXPECT_TRUE(budget.exhausted());
  EXPECT_EQ(s.solve({}, budget), SolveResult::Unknown);
}

}  // namespace
}  // namespace ebmf::sat
