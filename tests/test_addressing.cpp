// Tests for the AOD schedule model.

#include "addressing/schedule.h"

#include <gtest/gtest.h>

#include "smt/sap.h"
#include "support/rng.h"

namespace ebmf::addressing {
namespace {

TEST(Schedule, FromValidPartition) {
  const auto m = BinaryMatrix::parse("110;110;001");
  const Partition p{
      Rectangle{BitVec::from_string("110"), BitVec::from_string("110")},
      Rectangle{BitVec::from_string("001"), BitVec::from_string("001")}};
  const Schedule s(m, p);
  EXPECT_EQ(s.depth(), 2u);
  EXPECT_EQ(s.control_channels(), 6u);
  ASSERT_EQ(s.steps().size(), 2u);
  EXPECT_EQ(s.steps()[0].row_tones, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(s.steps()[0].col_tones, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(s.steps()[1].row_tones, (std::vector<std::size_t>{2}));
}

TEST(Schedule, RejectsInvalidPartition) {
  const auto m = BinaryMatrix::parse("10;01");
  const Partition bad{
      Rectangle{BitVec::from_string("11"), BitVec::from_string("11")}};
  EXPECT_THROW((Schedule{m, bad}), ContractViolation);
}

TEST(Schedule, TimingModelLinearInDepth) {
  const auto m = BinaryMatrix::parse("10;01");
  const Partition p{
      Rectangle{BitVec::from_string("10"), BitVec::from_string("10")},
      Rectangle{BitVec::from_string("01"), BitVec::from_string("01")}};
  TimingModel timing;
  timing.reconfigure_us = 8.0;
  timing.pulse_us = 2.0;
  const Schedule s(m, p, timing);
  EXPECT_DOUBLE_EQ(s.duration_us(), 20.0);
}

TEST(Schedule, ZeroMatrixEmptySchedule) {
  const BinaryMatrix z(3, 4);
  const Schedule s(z, {});
  EXPECT_EQ(s.depth(), 0u);
  EXPECT_DOUBLE_EQ(s.duration_us(), 0.0);
  EXPECT_EQ(s.control_channels(), 7u);
}

TEST(Schedule, RenderMentionsEveryStep) {
  const auto m = BinaryMatrix::parse("10;01");
  const Partition p{
      Rectangle{BitVec::from_string("10"), BitVec::from_string("10")},
      Rectangle{BitVec::from_string("01"), BitVec::from_string("01")}};
  const Schedule s(m, p);
  const auto text = s.render();
  EXPECT_NE(text.find("step 0"), std::string::npos);
  EXPECT_NE(text.find("step 1"), std::string::npos);
  EXPECT_NE(text.find("depth 2"), std::string::npos);
}

TEST(Schedule, EndToEndWithSap) {
  Rng rng(5150);
  const auto m = BinaryMatrix::random(8, 8, 0.4, rng);
  const auto r = sap_solve(m);
  const Schedule s(m, r.partition);
  EXPECT_EQ(s.depth(), r.depth());
  // Every 1 of the pattern is pulsed exactly once across the schedule.
  std::vector<std::vector<int>> hits(m.rows(), std::vector<int>(m.cols(), 0));
  for (const auto& step : s.steps())
    for (auto i : step.row_tones)
      for (auto j : step.col_tones) ++hits[i][j];
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      EXPECT_EQ(hits[i][j], m.test(i, j) ? 1 : 0);
}

}  // namespace
}  // namespace ebmf::addressing
