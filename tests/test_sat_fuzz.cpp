// Heavier randomized stress tests for the CDCL solver: UNSAT-biased
// regions, incremental narrowing patterns (the SAP workload), random
// assumption sets with core checks, and model enumeration cross-counts
// against the DPLL reference. Kept in a separate binary so the quick unit
// suite stays fast.

#include <gtest/gtest.h>

#include <set>

#include "sat/brute.h"
#include "sat/dimacs.h"
#include "sat/solver.h"
#include "support/rng.h"

namespace ebmf::sat {
namespace {

Cnf random_cnf(std::size_t vars, std::size_t clauses, std::size_t width,
               Rng& rng) {
  Cnf cnf;
  cnf.num_vars = vars;
  for (std::size_t c = 0; c < clauses; ++c) {
    Clause cl;
    for (std::size_t k = 0; k < width; ++k)
      cl.push_back(Lit(static_cast<Var>(rng.below(vars)), rng.chance(0.5)));
    cnf.clauses.push_back(std::move(cl));
  }
  return cnf;
}

Solver make_solver(const Cnf& cnf) {
  Solver s;
  for (std::size_t v = 0; v < cnf.num_vars; ++v) (void)s.new_var();
  for (const auto& c : cnf.clauses) s.add_clause(c);
  return s;
}

class SatFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SatFuzz, OverconstrainedRegionAgreesWithReference) {
  // Clause/variable ratio ~6: mostly UNSAT; exercises conflict analysis.
  Rng rng(GetParam());
  for (int inst = 0; inst < 25; ++inst) {
    const std::size_t vars = 6 + rng.below(8);
    const Cnf cnf = random_cnf(vars, vars * 6, 3, rng);
    Solver s = make_solver(cnf);
    const auto got = s.solve();
    const auto reference = brute_force_sat(cnf);
    EXPECT_EQ(got == SolveResult::Sat, reference.has_value());
  }
}

TEST_P(SatFuzz, MixedWidthClausesAgree) {
  Rng rng(GetParam() + 7);
  for (int inst = 0; inst < 20; ++inst) {
    const std::size_t vars = 8 + rng.below(6);
    Cnf cnf;
    cnf.num_vars = vars;
    const std::size_t n_clauses = vars * 4;
    for (std::size_t c = 0; c < n_clauses; ++c) {
      const std::size_t width = 1 + rng.below(4);  // units through 4-clauses
      Clause cl;
      for (std::size_t k = 0; k < width; ++k)
        cl.push_back(Lit(static_cast<Var>(rng.below(vars)), rng.chance(0.5)));
      cnf.clauses.push_back(std::move(cl));
    }
    Solver s = make_solver(cnf);
    const auto got = s.solve();
    const auto reference = brute_force_sat(cnf);
    EXPECT_EQ(got == SolveResult::Sat, reference.has_value());
    if (got == SolveResult::Sat) {
      std::vector<bool> model(vars);
      for (std::size_t v = 0; v < vars; ++v)
        model[v] = s.model_true(pos(static_cast<Var>(v)));
      EXPECT_TRUE(model_satisfies(cnf, model));
    }
  }
}

TEST_P(SatFuzz, IncrementalTighteningMatchesFromScratch) {
  // The SAP narrowing pattern: solve, add constraints, solve again — the
  // incremental answers must match fresh solvers on the extended formula.
  Rng rng(GetParam() + 13);
  for (int inst = 0; inst < 10; ++inst) {
    const std::size_t vars = 10 + rng.below(5);
    Cnf cnf = random_cnf(vars, vars * 3, 3, rng);
    Solver incremental = make_solver(cnf);
    for (int round = 0; round < 4; ++round) {
      const auto inc = incremental.solve();
      Solver fresh = make_solver(cnf);
      EXPECT_EQ(fresh.solve(), inc) << "round " << round;
      if (inc == SolveResult::Unsat) break;
      // Tighten: block three random literals (as unit clauses).
      Clause extra;
      for (int k = 0; k < 3; ++k)
        extra.push_back(
            Lit(static_cast<Var>(rng.below(vars)), rng.chance(0.5)));
      cnf.clauses.push_back(extra);
      incremental.add_clause(extra);
    }
  }
}

TEST_P(SatFuzz, AssumptionsMatchHardcodedUnits) {
  // solve(assumptions) must agree with a fresh solver where the assumptions
  // are unit clauses; when Unsat, the core must be a subset of assumptions.
  Rng rng(GetParam() + 29);
  for (int inst = 0; inst < 15; ++inst) {
    const std::size_t vars = 8 + rng.below(6);
    const Cnf cnf = random_cnf(vars, vars * 4, 3, rng);
    Solver s = make_solver(cnf);
    if (s.solve() != SolveResult::Sat) continue;  // need a live formula
    std::vector<Lit> assumptions;
    for (std::size_t v = 0; v < 3 && v < vars; ++v)
      assumptions.push_back(
          Lit(static_cast<Var>(rng.below(vars)), rng.chance(0.5)));
    const auto under = s.solve(assumptions);

    Cnf hard = cnf;
    for (Lit a : assumptions) hard.clauses.push_back({a});
    const auto reference = brute_force_sat(hard);
    EXPECT_EQ(under == SolveResult::Sat, reference.has_value());
    if (under == SolveResult::Unsat) {
      const auto& core = s.unsat_core();
      EXPECT_FALSE(core.empty());
      for (Lit l : core) {
        const bool is_assumption =
            std::find(assumptions.begin(), assumptions.end(), l) !=
            assumptions.end();
        EXPECT_TRUE(is_assumption);
      }
    }
    // The solver must remain usable without assumptions afterwards.
    EXPECT_EQ(s.solve(), SolveResult::Sat);
  }
}

TEST_P(SatFuzz, ModelCountMatchesReferenceEnumeration) {
  // Enumerate all models with blocking clauses in BOTH engines and compare
  // counts — exercises repeated incremental solving and watch integrity.
  Rng rng(GetParam() + 41);
  for (int inst = 0; inst < 6; ++inst) {
    const std::size_t vars = 6 + rng.below(3);
    const Cnf cnf = random_cnf(vars, vars * 2, 3, rng);

    // Reference count by exhaustive assignment check.
    std::size_t expected = 0;
    for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << vars); ++mask) {
      std::vector<bool> model(vars);
      for (std::size_t v = 0; v < vars; ++v) model[v] = (mask >> v) & 1;
      if (model_satisfies(cnf, model)) ++expected;
    }

    Solver s = make_solver(cnf);
    std::size_t got = 0;
    while (s.solve() == SolveResult::Sat) {
      ++got;
      ASSERT_LE(got, expected);  // would loop forever on a duplicate model
      Clause block;
      for (std::size_t v = 0; v < vars; ++v)
        block.push_back(Lit(static_cast<Var>(v),
                            s.model_true(pos(static_cast<Var>(v)))));
      if (!s.add_clause(block)) break;
    }
    EXPECT_EQ(got, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatFuzz,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace ebmf::sat
