// Tests for the anytime local-search subsystem (src/local): the incumbent
// contract (every emitted incumbent validates and improves), fixed-seed
// determinism, prompt return on mid-move cancellation, the probe-ladder
// lower bounds, and the engine-level gap contract (gap == 0 iff Optimal).

#include "local/local_search.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "benchgen/generators.h"
#include "core/bounds.h"
#include "core/partition.h"
#include "engine/engine.h"
#include "linalg/rank.h"
#include "local/probe_bounds.h"
#include "support/rng.h"
#include "support/stopwatch.h"

namespace ebmf::local {
namespace {

BinaryMatrix qldpc_instance(std::size_t n, double occ, std::uint64_t seed) {
  Rng rng(seed);
  return benchgen::qldpc_block_matrix(n, n, occ, rng);
}

TEST(LocalSearch, EveryIncumbentValidatesAndImproves) {
  const auto m = qldpc_instance(120, 0.3, 5);
  LocalSearchOptions options;
  options.seed = 3;
  options.max_moves = 400;
  std::size_t last_depth = m.rows() + 1;
  std::size_t emitted = 0;
  const auto result = local_search_ebmf(
      m, options, [&](const Partition& incumbent, double seconds) {
        ++emitted;
        EXPECT_TRUE(static_cast<bool>(validate_partition(m, incumbent)));
        EXPECT_LT(incumbent.size(), last_depth);
        EXPECT_GE(seconds, 0.0);
        last_depth = incumbent.size();
      });
  EXPECT_GE(emitted, 1u);  // the seed cover itself is the first incumbent
  EXPECT_TRUE(static_cast<bool>(validate_partition(m, result.partition)));
  EXPECT_EQ(result.partition.size(), last_depth);
  EXPECT_EQ(result.stats.incumbents.size(), emitted);
  EXPECT_LE(result.partition.size(), result.stats.seed_depth);
}

TEST(LocalSearch, FixedSeedGivesDeterministicTrajectory) {
  const auto m = qldpc_instance(100, 0.3, 9);
  LocalSearchOptions options;
  options.seed = 17;
  options.max_moves = 300;  // move-bounded, so wall-clock cannot interfere
  const auto a = local_search_ebmf(m, options);
  const auto b = local_search_ebmf(m, options);
  EXPECT_EQ(a.partition.size(), b.partition.size());
  EXPECT_EQ(a.stats.moves, b.stats.moves);
  EXPECT_EQ(a.stats.accepted, b.stats.accepted);
  EXPECT_EQ(a.stats.restarts, b.stats.restarts);
  ASSERT_EQ(a.stats.incumbents.size(), b.stats.incumbents.size());
  for (std::size_t i = 0; i < a.stats.incumbents.size(); ++i) {
    EXPECT_EQ(a.stats.incumbents[i].depth, b.stats.incumbents[i].depth);
    EXPECT_EQ(a.stats.incumbents[i].move, b.stats.incumbents[i].move);
  }
  // A different seed is allowed to walk elsewhere — only check it runs.
  LocalSearchOptions other = options;
  other.seed = 18;
  const auto c = local_search_ebmf(m, other);
  EXPECT_TRUE(static_cast<bool>(validate_partition(m, c.partition)));
}

TEST(LocalSearch, MidMoveCancelReturnsBestIncumbentPromptly) {
  const auto m = qldpc_instance(300, 0.3, 2);
  LocalSearchOptions options;
  options.seed = 1;
  options.budget.cancellable();
  Budget handle = options.budget;  // shares the cancellation flag

  std::thread canceller([&handle] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    handle.request_cancel();
  });
  Stopwatch clock;
  const auto result = local_search_ebmf(m, options);
  const double seconds = clock.seconds();
  canceller.join();

  // Prompt: well under a second past the cancel, not a drained time budget.
  EXPECT_LT(seconds, 5.0);
  EXPECT_FALSE(result.partition.empty());
  EXPECT_TRUE(static_cast<bool>(validate_partition(m, result.partition)));
}

TEST(LocalSearch, StopAtEndsTheSearchEarly) {
  // A known-optimal instance: stop_at = k ends at certified optimality.
  Rng rng(4);
  const auto gen = benchgen::known_optimal_matrix(30, 30, 5, rng);
  LocalSearchOptions options;
  options.seed = 2;
  options.stop_at = gen.optimal;
  options.max_moves = 5000;
  const auto result = local_search_ebmf(gen.matrix, options);
  EXPECT_TRUE(
      static_cast<bool>(validate_partition(gen.matrix, result.partition)));
  if (result.partition.size() <= gen.optimal) {
    EXPECT_TRUE(result.reached_stop);
    EXPECT_EQ(result.partition.size(), gen.optimal);
  }
}

TEST(ProbeBounds, LadderIsValidAndPicksTheBest) {
  const auto m = qldpc_instance(60, 0.3, 8);
  const auto probes = probe_lower_bounds(m, Budget{}, 1);
  // Each probe is a valid lower bound on r_B, so none exceeds an actual
  // partition's size; the champion is the max of those that ran.
  EXPECT_GE(probes.best, probes.rank_gf2);
  EXPECT_GE(probes.best, probes.counting);
  EXPECT_GE(probes.best, probes.rank_modp);
  EXPECT_GE(probes.rank_modp, rank_gf2(m.row_vectors()) > 0 ? 1u : 0u);
  EXPECT_NE(probes.source, "");
  // Trivially: the lower bound cannot exceed the trivial upper bound.
  EXPECT_LE(probes.best, m.rows());
}

TEST(ProbeBounds, ZeroMatrixIsZero) {
  const BinaryMatrix zero(8, 8);
  const auto probes = probe_lower_bounds(zero, Budget{}, 1);
  EXPECT_EQ(probes.best, 0u);
  EXPECT_EQ(probes.source, "zero");
}

// ---- Engine-level gap contract -------------------------------------------

TEST(EngineGap, GapZeroIffProvedOptimal) {
  const engine::Engine engine;
  // Optimal case: small instance, exact tier closes the bracket.
  {
    auto request = engine::SolveRequest::dense(
        BinaryMatrix::parse("110;011;111"), "sap");
    const auto report = engine.solve(request);
    EXPECT_TRUE(report.proven_optimal());
    EXPECT_EQ(report.gap, 0u);
    EXPECT_EQ(report.lower_bound, report.upper_bound);
    EXPECT_EQ(report.incumbent_depth, report.upper_bound);
  }
  // Bounded case: structured large instance under a tight budget — the
  // local tier returns an incumbent with an open, correctly-sized gap.
  {
    const auto m = qldpc_instance(300, 0.3, 11);
    auto request = engine::SolveRequest::dense(m, "local");
    request.budget = Budget::after(1.5);
    request.trials = 2;
    const auto report = engine.solve(request);
    EXPECT_FALSE(report.partition.empty());
    EXPECT_EQ(report.incumbent_depth, report.partition.size());
    EXPECT_EQ(report.gap, report.upper_bound - report.lower_bound);
    if (report.gap == 0) {
      EXPECT_TRUE(report.proven_optimal());
    } else {
      EXPECT_FALSE(report.proven_optimal());
    }
  }
}

TEST(EngineGap, LocalStrategyCertifiesEasyOptimum) {
  // Full-rank random instance: the probe ladder proves rows = r_B and the
  // greedy seed attains it, so `local` must certify gap == 0.
  Rng rng(6);
  const auto m = BinaryMatrix::random(24, 48, 0.5, rng);
  if (rank_gf2(m.row_vectors()) != m.rows()) GTEST_SKIP();
  const engine::Engine engine;
  auto request = engine::SolveRequest::dense(m, "local");
  const auto report = engine.solve(request);
  EXPECT_TRUE(report.proven_optimal());
  EXPECT_EQ(report.gap, 0u);
  EXPECT_EQ(report.depth(), m.rows());
}

}  // namespace
}  // namespace ebmf::local
