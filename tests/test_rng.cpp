// Tests for the deterministic PRNG utilities.

#include "support/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

namespace ebmf {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(5);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo = hit_lo || v == -3;
    hit_hi = hit_hi || v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(v, w);  // astronomically unlikely to be identity
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(29);
  auto p = rng.permutation(40);
  std::vector<std::size_t> sorted = p;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < 40; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, SampleDistinctSortedWithinRange) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    auto s = rng.sample(30, 7);
    ASSERT_EQ(s.size(), 7u);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    EXPECT_EQ(std::set<std::size_t>(s.begin(), s.end()).size(), 7u);
    for (auto x : s) EXPECT_LT(x, 30u);
  }
}

TEST(Rng, SampleFullRange) {
  Rng rng(37);
  auto s = rng.sample(5, 5);
  const std::vector<std::size_t> expected{0, 1, 2, 3, 4};
  EXPECT_EQ(s, expected);
}

TEST(Rng, SampleRejectsOversizedRequest) {
  Rng rng(41);
  EXPECT_THROW((void)rng.sample(3, 4), ContractViolation);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(99);
  Rng child = a.split();
  // Parent and child should not produce the same next values.
  int equal = 0;
  for (int i = 0; i < 32; ++i)
    if (a() == child()) ++equal;
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace ebmf
