// Tests for Rectangle, Partition and exact validation.

#include "core/partition.h"

#include <gtest/gtest.h>

namespace ebmf {
namespace {

Rectangle rect(const std::string& rows, const std::string& cols) {
  return Rectangle{BitVec::from_string(rows), BitVec::from_string(cols)};
}

TEST(Rectangle, Basics) {
  const auto r = rect("101", "0110");
  EXPECT_TRUE(r.contains(0, 1));
  EXPECT_TRUE(r.contains(2, 2));
  EXPECT_FALSE(r.contains(1, 1));
  EXPECT_FALSE(r.contains(0, 0));
  EXPECT_EQ(r.cell_count(), 4u);
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE(rect("000", "0110").empty());
  EXPECT_TRUE(rect("101", "0000").empty());
}

TEST(Rectangle, Transposed) {
  const auto r = rect("10", "011");
  const auto t = r.transposed();
  EXPECT_EQ(t.rows.to_string(), "011");
  EXPECT_EQ(t.cols.to_string(), "10");
}

TEST(Validate, AcceptsExactPartition) {
  const auto m = BinaryMatrix::parse("110;110;001");
  const Partition p{rect("110", "110"), rect("001", "001")};
  const auto v = validate_partition(m, p);
  EXPECT_TRUE(v.ok) << v.reason;
}

TEST(Validate, AcceptsEmptyPartitionOfZeroMatrix) {
  const BinaryMatrix z(3, 3);
  EXPECT_TRUE(validate_partition(z, {}).ok);
}

TEST(Validate, RejectsEmptyPartitionOfNonzero) {
  const auto m = BinaryMatrix::parse("100;000;000");
  const auto v = validate_partition(m, {});
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.reason.find("not fully covered"), std::string::npos);
}

TEST(Validate, RejectsCoveringZero) {
  const auto m = BinaryMatrix::parse("11;10");
  const Partition p{rect("11", "11")};  // covers the 0 at (1,1)
  const auto v = validate_partition(m, p);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.reason.find("covers a 0"), std::string::npos);
}

TEST(Validate, RejectsOverlap) {
  const auto m = BinaryMatrix::parse("11;11");
  const Partition p{rect("11", "11"), rect("10", "10")};
  const auto v = validate_partition(m, p);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.reason.find("overlaps"), std::string::npos);
}

TEST(Validate, RejectsIncompleteCover) {
  const auto m = BinaryMatrix::parse("11;11");
  const Partition p{rect("10", "11")};
  EXPECT_FALSE(validate_partition(m, p).ok);
}

TEST(Validate, RejectsEmptyRectangle) {
  const auto m = BinaryMatrix::parse("11;11");
  const Partition p{rect("11", "11"), rect("00", "11")};
  const auto v = validate_partition(m, p);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.reason.find("empty"), std::string::npos);
}

TEST(Validate, RejectsWrongShape) {
  const auto m = BinaryMatrix::parse("11;11");
  const Partition p{rect("111", "11")};
  const auto v = validate_partition(m, p);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.reason.find("shape"), std::string::npos);
}

TEST(Validate, PaperFigure1bPartition) {
  // Fig. 1b of the paper: 6x6 pattern partitioned into 5 rectangles.
  const auto m = BinaryMatrix::parse(
      "101100"
      ";010011"
      ";101010"
      ";010101"
      ";111000"
      ";000111");
  // Partition mirroring the figure's markers: rows {0,2} x cols {0,2},
  // rows {1,3} x cols {1,5}... constructed to be valid (one of several).
  const Partition p{
      rect("101000", "101000"),  // circles: rows 0,2 cols 0,2
      rect("010100", "010000"),  // rows 1,3 col 1
      rect("100010", "010000") /*unused placeholder*/};
  // The placeholder partition is intentionally wrong: it must be rejected.
  EXPECT_FALSE(validate_partition(m, p).ok);
}

TEST(PartitionUnion, RebuildsCoveredCells) {
  const auto m = BinaryMatrix::parse("110;110;001");
  const Partition p{rect("110", "110"), rect("001", "001")};
  EXPECT_EQ(partition_union(p, 3, 3), m);
}

TEST(PartitionTransposed, ValidOnTransposedMatrix) {
  const auto m = BinaryMatrix::parse("110;110;001");
  const Partition p{rect("110", "110"), rect("001", "001")};
  EXPECT_TRUE(validate_partition(m.transposed(), transposed(p)).ok);
}

TEST(RenderPartition, MarksCellsByRectangle) {
  const auto m = BinaryMatrix::parse("110;110;001");
  const Partition p{rect("110", "110"), rect("001", "001")};
  EXPECT_EQ(render_partition(m, p), "00.\n00.\n..1");
}

}  // namespace
}  // namespace ebmf
