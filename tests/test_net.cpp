// Tests for ebmf::net: the frame codec (header validation, incremental
// decoding at every split offset), the binary payload codecs, and the
// reactor-backed wire through a real service — upgrade negotiation,
// JSON-vs-binary reply equivalence, pipelined ordering across the
// upgrade, protocol errors, torn writes, idle reaping, and drain.

#include "net/frame.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "io/binary_io.h"
#include "io/json.h"
#include "io/request_io.h"
#include "net/frame_client.h"
#include "service/net.h"
#include "service/service.h"
#include "support/fault.h"

namespace ebmf::net {
namespace {

namespace snet = ebmf::service::net;

// ---- frame codec -----------------------------------------------------------

TEST(Frame, EncodeParsesBackVerbatim) {
  const std::string bytes = encode_frame(kFrameJson, "{\"op\":\"stats\"}");
  ASSERT_EQ(bytes.size(), kFrameHeaderBytes + 14);
  FrameHeader header;
  std::string error;
  ASSERT_TRUE(parse_frame_header(bytes.data(), 1 << 20, &header, &error))
      << error;
  EXPECT_EQ(header.type, kFrameJson);
  EXPECT_EQ(header.payload_len, 14u);
  EXPECT_EQ(bytes.substr(kFrameHeaderBytes), "{\"op\":\"stats\"}");
}

TEST(Frame, HeaderRejectsEveryMalformedShape) {
  FrameHeader header;
  std::string error;
  // Zero-length payload.
  std::string zero = encode_frame(kFrameJson, "x");
  zero[0] = zero[1] = zero[2] = zero[3] = 0;
  EXPECT_FALSE(parse_frame_header(zero.data(), 1 << 20, &header, &error));
  // Oversized payload.
  const std::string big = encode_frame(kFrameJson, std::string(64, 'x'));
  EXPECT_FALSE(parse_frame_header(big.data(), 63, &header, &error));
  EXPECT_NE(error.find("64"), std::string::npos) << error;
  // Unknown frame types (0 and one past the last).
  for (const std::uint8_t type : {std::uint8_t{0}, std::uint8_t{5}}) {
    std::string bytes = encode_frame(kFrameJson, "x");
    bytes[4] = static_cast<char>(type);
    EXPECT_FALSE(parse_frame_header(bytes.data(), 1 << 20, &header, &error))
        << unsigned(type);
  }
  // Wrong version.
  std::string versioned = encode_frame(kFrameJson, "x");
  versioned[5] = 2;
  EXPECT_FALSE(
      parse_frame_header(versioned.data(), 1 << 20, &header, &error));
  // Nonzero reserved bytes.
  std::string reserved = encode_frame(kFrameJson, "x");
  reserved[6] = 1;
  EXPECT_FALSE(
      parse_frame_header(reserved.data(), 1 << 20, &header, &error));
}

TEST(Frame, BufferDecodesStreamSplitAtEveryByteOffset) {
  // Three frames of varied types and sizes, fed in two fragments split at
  // every possible byte boundary — the decoder must produce the identical
  // frame sequence regardless of how the stream fragments.
  std::string stream;
  append_frame(stream, kFrameSolveRequest, std::string(3, 'a'));
  append_frame(stream, kFrameJson, "{}");
  append_frame(stream, kFrameSolveReport, std::string(57, 'b'));
  for (std::size_t split = 0; split <= stream.size(); ++split) {
    FrameBuffer buffer(1 << 20);
    buffer.append(stream.data(), split);
    std::vector<Frame> frames;
    Frame frame;
    while (buffer.pop(&frame) == FrameBuffer::Pop::Ok)
      frames.push_back(frame);
    buffer.append(stream.data() + split, stream.size() - split);
    while (buffer.pop(&frame) == FrameBuffer::Pop::Ok)
      frames.push_back(frame);
    ASSERT_EQ(frames.size(), 3u) << "split at " << split;
    EXPECT_EQ(frames[0].type, kFrameSolveRequest);
    EXPECT_EQ(frames[0].payload, std::string(3, 'a'));
    EXPECT_EQ(frames[1].type, kFrameJson);
    EXPECT_EQ(frames[1].payload, "{}");
    EXPECT_EQ(frames[2].type, kFrameSolveReport);
    EXPECT_EQ(frames[2].payload, std::string(57, 'b'));
    EXPECT_EQ(buffer.pending(), 0u) << "split at " << split;
  }
}

TEST(Frame, BufferFedOneByteAtATime) {
  std::string stream;
  append_frame(stream, kFrameError, "oops");
  append_frame(stream, kFrameJson, "{\"id\":1}");
  FrameBuffer buffer(1 << 20);
  std::vector<Frame> frames;
  for (const char byte : stream) {
    buffer.append(&byte, 1);
    Frame frame;
    while (buffer.pop(&frame) == FrameBuffer::Pop::Ok)
      frames.push_back(frame);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].payload, "oops");
  EXPECT_EQ(frames[1].payload, "{\"id\":1}");
}

TEST(Frame, BufferBadHeaderIsTerminal) {
  FrameBuffer buffer(1 << 20);
  std::string bytes = encode_frame(kFrameJson, "x");
  bytes[5] = 9;  // bad version
  // A valid frame queued behind the malformed one must never surface.
  append_frame(bytes, kFrameJson, "{}");
  buffer.append(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(buffer.pop(&frame), FrameBuffer::Pop::Bad);
  EXPECT_FALSE(buffer.error().empty());
  EXPECT_EQ(buffer.pop(&frame), FrameBuffer::Pop::Bad);
}

// ---- binary payload codecs -------------------------------------------------

TEST(BinaryCodec, RequestRoundTripsThroughTheWire) {
  io::WireRequest wire = io::parse_wire_request(
      R"({"id":7,"pattern":"110;011;111","label":"eq2","strategy":"sap",)"
      R"("include_partition":true,"split":true,"seed":9,"trials":17})");
  wire.request.pre_canonical = true;
  wire.request.canon_hi = 0x0123456789abcdefull;
  wire.request.canon_lo = 0xfedcba9876543210ull;
  const io::WireRequest back =
      io::parse_binary_request(io::binary_request_payload(wire));
  EXPECT_EQ(back.id, 7);
  EXPECT_EQ(back.request.label, "eq2");
  EXPECT_EQ(back.request.strategy, "sap");
  EXPECT_TRUE(back.include_partition);
  EXPECT_TRUE(back.split);
  EXPECT_EQ(back.request.seed, 9u);
  EXPECT_EQ(back.request.trials, 17u);
  EXPECT_TRUE(back.request.pre_canonical);
  EXPECT_EQ(back.request.canon_hi, wire.request.canon_hi);
  EXPECT_EQ(back.request.canon_lo, wire.request.canon_lo);
  ASSERT_EQ(back.request.matrix.rows(), 3u);
  ASSERT_EQ(back.request.matrix.cols(), 3u);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_EQ(back.request.matrix.test(r, c),
                wire.request.matrix.test(r, c));
}

TEST(BinaryCodec, MaskedRequestsHaveNoBinaryEncoding) {
  const io::WireRequest wire =
      io::parse_wire_request(R"({"pattern":"1*;01"})");
  ASSERT_TRUE(wire.request.masked.has_value());
  EXPECT_THROW((void)io::binary_request_payload(wire), std::exception);
}

engine::SolveReport sample_report() {
  engine::SolveReport report;
  report.label = "sample";
  report.strategy = "sap";
  report.status = engine::Status::Optimal;
  report.lower_bound = 2;
  report.upper_bound = 2;
  report.incumbent_depth = 2;
  report.gap = 0;
  report.total_seconds = 0.25;
  report.add_timing("canon", 0.01);
  report.add_timing("sap", 0.2);
  report.add_telemetry("cache_hit", "false");
  report.add_telemetry("canon.key", "00ff");
  Rectangle first{BitVec::from_string("110"), BitVec::from_string("0110")};
  Rectangle second{BitVec::from_string("001"), BitVec::from_string("1001")};
  report.partition = {first, second};
  return report;
}

TEST(BinaryCodec, ReportRoundTripPreservesEveryField) {
  const engine::SolveReport report = sample_report();
  const io::BinaryReply back = io::parse_binary_report(
      io::binary_report_payload(report, /*include_partition=*/true, 42, 3, 4,
                                "[{\"tick\":1}]", "[{\"name\":\"s\"}]"));
  EXPECT_EQ(back.id, 42);
  EXPECT_TRUE(back.render_partition);
  EXPECT_EQ(back.rows, 3u);
  EXPECT_EQ(back.cols, 4u);
  EXPECT_EQ(back.events_json, "[{\"tick\":1}]");
  EXPECT_EQ(back.spans_json, "[{\"name\":\"s\"}]");
  const engine::SolveReport& decoded = back.report;
  EXPECT_EQ(decoded.label, report.label);
  EXPECT_EQ(decoded.strategy, report.strategy);
  EXPECT_EQ(decoded.status, report.status);
  EXPECT_EQ(decoded.lower_bound, report.lower_bound);
  EXPECT_EQ(decoded.upper_bound, report.upper_bound);
  EXPECT_EQ(decoded.incumbent_depth, report.incumbent_depth);
  EXPECT_EQ(decoded.gap, report.gap);
  EXPECT_EQ(decoded.total_seconds, report.total_seconds);
  ASSERT_EQ(decoded.timings.size(), 2u);
  EXPECT_EQ(decoded.timings[1].phase, "sap");
  EXPECT_EQ(decoded.timings[1].seconds, 0.2);
  ASSERT_EQ(decoded.partition.size(), 2u);
  EXPECT_TRUE(decoded.partition[0].contains(0, 1));
  EXPECT_FALSE(decoded.partition[0].contains(2, 1));
  EXPECT_TRUE(decoded.partition[1].contains(2, 0));
}

TEST(BinaryCodec, PartitionRidesEvenWhenNotRequested) {
  // Regression: depth() derives from the partition, so a payload that
  // dropped it when the client didn't ask for the JSON splice would
  // decode every unrequested reply as depth 0.
  const engine::SolveReport report = sample_report();
  const io::BinaryReply back = io::parse_binary_report(
      io::binary_report_payload(report, /*include_partition=*/false, 1, 3, 4));
  EXPECT_FALSE(back.render_partition);
  ASSERT_EQ(back.report.partition.size(), 2u);
  EXPECT_EQ(back.report.depth(), 2u);
  // And the normalized JSON omits the partition but keeps the real depth.
  const std::string rendered = io::wire_response_json(
      back.report, back.render_partition && !back.report.partition.empty(),
      back.id);
  EXPECT_NE(rendered.find("\"depth\":2"), std::string::npos) << rendered;
  EXPECT_EQ(rendered.find("\"partition\""), std::string::npos) << rendered;
}

TEST(BinaryCodec, ErrorRoundTripsWithIdAndLabel) {
  const io::BinaryError back = io::parse_binary_error(
      io::binary_error_payload(13, "unknown strategy 'nope'", "m.txt"));
  EXPECT_EQ(back.id, 13);
  EXPECT_EQ(back.message, "unknown strategy 'nope'");
  EXPECT_EQ(back.label, "m.txt");
}

TEST(BinaryCodec, TruncatedPayloadsAreRejectedNotRead) {
  const engine::SolveReport report = sample_report();
  const std::string full =
      io::binary_report_payload(report, true, 1, 3, 4, "[]", "[]");
  // Every strict prefix must throw, never crash or return garbage.
  for (std::size_t cut = 0; cut < full.size(); ++cut)
    EXPECT_THROW((void)io::parse_binary_report(full.substr(0, cut)),
                 std::exception)
        << "prefix of " << cut << " bytes parsed";
  EXPECT_EQ(io::binary_salvage_id(full), 1);
  EXPECT_EQ(io::binary_salvage_id(full.substr(0, 4)), -1);
}

// ---- the wire through a real service ---------------------------------------

service::ServerOptions test_options() {
  service::ServerOptions options;
  options.port = 0;  // ephemeral
  options.cache_mb = 8;
  options.budget_ceiling_seconds = 5.0;
  return options;
}

/// Structural comparison of two reply lines: every field that is stable
/// across repeated solves of the same pattern (timings and cache telemetry
/// legitimately differ between a cold and a warm solve).
void expect_equivalent_replies(const std::string& line_reply,
                               const std::string& frame_reply) {
  const io::json::Value a = io::json::Value::parse(line_reply);
  const io::json::Value b = io::json::Value::parse(frame_reply);
  for (const char* key : {"depth", "lower_bound", "upper_bound",
                          "incumbent_depth", "gap"}) {
    ASSERT_NE(a.find(key), nullptr) << key;
    ASSERT_NE(b.find(key), nullptr) << key;
    EXPECT_EQ(a.find(key)->as_number(), b.find(key)->as_number()) << key;
  }
  for (const char* key : {"label", "status"}) {
    EXPECT_EQ(a.find(key)->as_string(), b.find(key)->as_string()) << key;
  }
  EXPECT_EQ(a.find("partition") != nullptr, b.find("partition") != nullptr);
}

TEST(Wire, UpgradeNegotiatesAndBinaryRepliesMatchLineReplies) {
  service::Server server(test_options());
  server.start();
  service::Client line("127.0.0.1", server.port());
  FrameClient frames("127.0.0.1", server.port());
  ASSERT_TRUE(frames.upgrade());
  EXPECT_TRUE(frames.binary());

  for (const char* pattern : {"110;011;111", "10;01", "1111;1111"}) {
    for (const bool with_partition : {false, true}) {
      const std::string request = std::string("{\"id\":3,\"pattern\":\"") +
                                  pattern + "\",\"label\":\"eq\"" +
                                  (with_partition
                                       ? ",\"include_partition\":true}"
                                       : "}");
      const std::string line_reply = line.round_trip(request);
      frames.send_request(io::parse_wire_request(request));
      const std::string frame_reply = frames.read_reply();
      ASSERT_EQ(frame_reply.rfind("{\"id\":3,", 0), 0u) << frame_reply;
      expect_equivalent_replies(line_reply, frame_reply);
      if (with_partition)
        EXPECT_NE(frame_reply.find("\"partition\""), std::string::npos);
    }
  }
  server.stop();
}

TEST(Wire, DeclinedUpgradeKeepsTheLineProtocolUsable) {
  // An un-upgraded FrameClient is just a line client; send_request falls
  // back to JSON and read_reply pops lines.
  service::Server server(test_options());
  server.start();
  FrameClient client("127.0.0.1", server.port());
  EXPECT_FALSE(client.binary());
  client.send_request(io::parse_wire_request(R"({"pattern":"10;01"})"));
  const io::json::Value reply = io::json::Value::parse(client.read_reply());
  EXPECT_EQ(reply.find("depth")->as_number(), 2.0);
  server.stop();
}

TEST(Wire, AdminVerbsRideTheBinaryConnectionAsJsonFrames) {
  service::Server server(test_options());
  server.start();
  FrameClient client("127.0.0.1", server.port());
  ASSERT_TRUE(client.upgrade());
  client.send_json(R"({"op":"stats","id":5})");
  const io::json::Value stats = io::json::Value::parse(client.read_reply());
  EXPECT_EQ(stats.find("id")->as_number(), 5.0);
  EXPECT_EQ(stats.find("role")->as_string(), "server");
  // A masked request has no binary encoding: send_request transparently
  // falls back to a type-4 JSON frame.
  client.send_request(io::parse_wire_request(R"({"pattern":"1*;01"})"));
  const io::json::Value masked = io::json::Value::parse(client.read_reply());
  EXPECT_EQ(masked.find("error"), nullptr);
  EXPECT_GE(masked.find("depth")->as_number(), 1.0);
  server.stop();
}

TEST(Wire, UpgradeMidPipelineAnswersEachRequestInItsOwnProtocol) {
  // One write carries: a line request, the upgrade line, and a binary
  // frame request. The server must answer the first as a line, ack the
  // upgrade as a line, and answer the third as a frame — in order.
  service::Server server(test_options());
  server.start();
  const int fd = snet::tcp_connect("127.0.0.1", server.port());
  ASSERT_GE(fd, 0);
  std::string bytes =
      "{\"id\":1,\"pattern\":\"10;01\"}\n"
      "{\"op\":\"upgrade\"}\n";
  append_frame(bytes, kFrameSolveRequest,
               io::binary_request_payload(io::parse_wire_request(
                   R"({"id":2,"pattern":"110;011;111"})")));
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bytes.size()));

  std::string buffer;
  const auto read_more = [&]() {
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    ASSERT_GT(n, 0) << "server closed mid-pipeline";
    buffer.append(chunk, static_cast<std::size_t>(n));
  };
  const auto pop_line = [&]() -> std::string {
    std::size_t newline;
    while ((newline = buffer.find('\n')) == std::string::npos) read_more();
    std::string line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);
    return line;
  };
  const std::string first = pop_line();
  EXPECT_EQ(first.rfind("{\"id\":1,", 0), 0u) << first;
  const std::string ack = pop_line();
  EXPECT_NE(ack.find("\"upgraded\":true"), std::string::npos) << ack;
  // Everything after the ack's newline is frames.
  FrameBuffer decoder(4u << 20);
  decoder.append(buffer.data(), buffer.size());
  Frame frame;
  while (decoder.pop(&frame) != FrameBuffer::Pop::Ok) {
    buffer.clear();
    read_more();
    decoder.append(buffer.data(), buffer.size());
  }
  ASSERT_EQ(frame.type, kFrameSolveReport);
  const io::BinaryReply reply = io::parse_binary_report(frame.payload);
  EXPECT_EQ(reply.id, 2);
  EXPECT_EQ(reply.report.depth(), 3u);
  ::close(fd);
  server.stop();
}

TEST(Wire, PipelinedBinaryRequestsAnswerInOrder) {
  service::Server server(test_options());
  server.start();
  FrameClient client("127.0.0.1", server.port());
  ASSERT_TRUE(client.upgrade());
  const int n = 24;
  for (int i = 0; i < n; ++i) {
    // Alternate sizes so completion order differs from request order
    // without the reactor's per-connection sequencing.
    const std::string pattern = (i % 2 == 0) ? "110;011;111" : "10;01";
    client.send_request(io::parse_wire_request(
        "{\"id\":" + std::to_string(i) + ",\"pattern\":\"" + pattern +
        "\"}"));
  }
  for (int i = 0; i < n; ++i) {
    const io::json::Value reply = io::json::Value::parse(client.read_reply());
    ASSERT_EQ(reply.find("error"), nullptr) << i;
    EXPECT_EQ(reply.find("id")->as_number(), static_cast<double>(i));
    EXPECT_EQ(reply.find("depth")->as_number(), (i % 2 == 0) ? 3.0 : 2.0);
  }
  server.stop();
}

/// Block until one newline-terminated line arrives on a raw socket.
/// Returns false on EOF; leftover bytes past the newline stay in `buffer`.
bool read_line_fd(int fd, std::string& buffer, std::string& line) {
  while (true) {
    const std::size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

TEST(Wire, MalformedFrameGetsAnErrorFrameThenClose) {
  service::Server server(test_options());
  server.start();
  // An unknown frame type is a terminal protocol error: the server answers
  // with a type-3 error frame and closes the connection.
  const int fd = snet::tcp_connect("127.0.0.1", server.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(snet::write_line(fd, "{\"op\":\"upgrade\"}"));
  std::string buffer;
  std::string ack;
  ASSERT_TRUE(read_line_fd(fd, buffer, ack));
  ASSERT_NE(ack.find("\"upgraded\":true"), std::string::npos);
  std::string bytes = encode_frame(kFrameJson, "{}");
  bytes[4] = 9;
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bytes.size()));
  // The error frame arrives, then EOF.
  std::string wire = buffer;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof chunk, 0)) > 0)
    wire.append(chunk, static_cast<std::size_t>(n));
  FrameBuffer decoder(4u << 20);
  decoder.append(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(decoder.pop(&frame), FrameBuffer::Pop::Ok);
  EXPECT_EQ(frame.type, kFrameError);
  const io::BinaryError error = io::parse_binary_error(frame.payload);
  EXPECT_NE(error.message.find("frame"), std::string::npos) << error.message;
  ::close(fd);
  // The server survived: a fresh connection still solves.
  service::Client fresh("127.0.0.1", server.port());
  EXPECT_NE(fresh.round_trip(R"({"pattern":"10;01"})").find("\"depth\":2"),
            std::string::npos);
  server.stop();
}

TEST(Wire, TornWritesNeverWedgeTheServer) {
  service::Server server(test_options());
  server.start();
  // A client whose every write is torn mid-line: the server sees bytes
  // but never a newline, then the socket shuts down. The reactor must
  // drop the connection without disturbing its neighbours.
  fault::Config plan;
  plan.torn_write = 1.0;
  plan.seed = 7;
  fault::configure(plan);
  const std::uint64_t torn_before = fault::stats().torn_writes;
  {
    const int fd = snet::tcp_connect("127.0.0.1", server.port());
    ASSERT_GE(fd, 0);
    (void)snet::write_line(
        fd, R"({"pattern":"110;011;111","label":"torn-victim"})");
    char chunk[256];
    // The peer never answers a torn line; it closes or stays silent.
    struct timeval tv{0, 200000};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    (void)::recv(fd, chunk, sizeof chunk, 0);
    ::close(fd);
  }
  fault::reset();
  EXPECT_GT(fault::stats().torn_writes, torn_before)
      << "the drill never drilled anything";
  // Torn frames too: promise 64 payload bytes, deliver 10, hang up.
  {
    const int fd = snet::tcp_connect("127.0.0.1", server.port());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(snet::write_line(fd, "{\"op\":\"upgrade\"}"));
    std::string buffer;
    std::string ack;
    ASSERT_TRUE(read_line_fd(fd, buffer, ack));
    ASSERT_NE(ack.find("\"upgraded\":true"), std::string::npos);
    const std::string full = encode_frame(kFrameJson, std::string(64, 'x'));
    ASSERT_EQ(::send(fd, full.data(), kFrameHeaderBytes + 10, MSG_NOSIGNAL),
              static_cast<ssize_t>(kFrameHeaderBytes + 10));
    ::shutdown(fd, SHUT_WR);
    char chunk[64];
    while (::recv(fd, chunk, sizeof chunk, 0) > 0) {
    }
    ::close(fd);
  }
  // Both casualties drained; the server still answers.
  service::Client fresh("127.0.0.1", server.port());
  EXPECT_NE(fresh.round_trip(R"({"pattern":"10;01"})").find("\"depth\":2"),
            std::string::npos);
  server.stop();
}

TEST(Wire, IdleConnectionsAreReapedHalfOpenIncluded) {
  service::ServerOptions options = test_options();
  options.idle_timeout_seconds = 0.2;
  service::Server server(options);
  server.start();
  // An idle upgraded connection and an idle line connection both get
  // reaped; a connection kept warm by traffic survives. Both idlers are
  // raw sockets probed with MSG_DONTWAIT so the probe itself never
  // refreshes their activity clocks.
  const int idle_binary = snet::tcp_connect("127.0.0.1", server.port());
  ASSERT_GE(idle_binary, 0);
  ASSERT_TRUE(snet::write_line(idle_binary, "{\"op\":\"upgrade\"}"));
  {
    std::string buffer;
    std::string ack;
    ASSERT_TRUE(read_line_fd(idle_binary, buffer, ack));
    ASSERT_NE(ack.find("\"upgraded\":true"), std::string::npos);
  }
  const int idle_line = snet::tcp_connect("127.0.0.1", server.port());
  ASSERT_GE(idle_line, 0);
  service::Client busy("127.0.0.1", server.port());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool binary_reaped = false;
  bool line_reaped = false;
  while (std::chrono::steady_clock::now() < deadline &&
         !(binary_reaped && line_reaped)) {
    // Traffic keeps the busy connection's clock fresh past several sweeps.
    ASSERT_NE(
        busy.round_trip(R"({"pattern":"10;01"})").find("\"depth\":2"),
        std::string::npos);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    char byte;
    if (!line_reaped)
      line_reaped = ::recv(idle_line, &byte, 1, MSG_DONTWAIT) == 0;
    if (!binary_reaped)
      binary_reaped = ::recv(idle_binary, &byte, 1, MSG_DONTWAIT) == 0;
  }
  EXPECT_TRUE(binary_reaped) << "idle binary connection never reaped";
  EXPECT_TRUE(line_reaped) << "idle line connection never reaped";
  ::close(idle_line);
  ::close(idle_binary);
  server.stop();
}

TEST(Wire, SlowReaderBackpressureDeliversEverythingEventually) {
  // Pipeline a large burst without reading a byte, then drain: every
  // reply arrives, in order, through the reactor's outbound queue.
  service::ServerOptions options = test_options();
  options.max_inflight = 1024;
  options.max_batch = 64;
  service::Server server(options);
  server.start();
  FrameClient client("127.0.0.1", server.port());
  ASSERT_TRUE(client.upgrade());
  const int n = 200;
  for (int i = 0; i < n; ++i)
    client.send_request(io::parse_wire_request(
        "{\"id\":" + std::to_string(i) + ",\"pattern\":\"10;01\"}"));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  for (int i = 0; i < n; ++i) {
    const io::json::Value reply = io::json::Value::parse(client.read_reply());
    ASSERT_EQ(reply.find("error"), nullptr) << i;
    EXPECT_EQ(reply.find("id")->as_number(), static_cast<double>(i));
  }
  server.stop();
}

TEST(Wire, DrainUnderMixedProtocolLoadLosesNothingAccepted) {
  service::ServerOptions options = test_options();
  options.budget_ceiling_seconds = 30.0;
  service::Server server(options);
  server.start();
  std::vector<std::thread> clients;
  std::atomic<int> finished{0};
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&, c]() {
      try {
        FrameClient client("127.0.0.1", server.port());
        if (c % 2 == 0) {
          if (!client.upgrade()) return;
        }
        client.send_request(io::parse_wire_request(
            R"({"pattern":"111000;000111;110011"})"));
        (void)client.read_reply();
        finished.fetch_add(1);
      } catch (const std::exception&) {
        // Server closed first: acceptable during drain.
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.stop();
  for (auto& t : clients) t.join();
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace ebmf::net
