// Tests for the benchmark generators: each family must actually have the
// structural properties the paper's construction claims.

#include "benchgen/generators.h"

#include <gtest/gtest.h>

#include "benchgen/suites.h"
#include "core/bounds.h"
#include "core/row_packing.h"
#include "linalg/rank.h"
#include "smt/sap.h"

namespace ebmf::benchgen {
namespace {

TEST(Generators, RandomMatrixShapeAndOccupancy) {
  Rng rng(1);
  const auto m = random_matrix(50, 80, 0.25, rng);
  EXPECT_EQ(m.rows(), 50u);
  EXPECT_EQ(m.cols(), 80u);
  const double occ = static_cast<double>(m.ones_count()) / (50.0 * 80.0);
  EXPECT_NEAR(occ, 0.25, 0.05);
}

class KnownOptimalFamily : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KnownOptimalFamily, RankEqualsKAndPartitionExists) {
  const std::size_t k = GetParam();
  Rng rng(100 + k);
  for (int i = 0; i < 5; ++i) {
    const auto inst = known_optimal_matrix(10, 10, k, rng);
    EXPECT_EQ(inst.optimal, k);
    // Certificate: rank == k (so r_B >= k) ...
    EXPECT_EQ(real_rank(inst.matrix), k);
    // ... and a k-partition exists (so r_B <= k): row packing finds it
    // (paper Observation 2 says it always does on this family).
    RowPackingOptions opt;
    opt.trials = 20;
    const auto r = row_packing_ebmf(inst.matrix, opt);
    EXPECT_EQ(r.partition.size(), k);
    EXPECT_TRUE(validate_partition(inst.matrix, r.partition).ok);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, KnownOptimalFamily,
                         ::testing::Range(std::size_t{1}, std::size_t{11}));

TEST(Generators, KnownOptimalRejectsBadK) {
  Rng rng(3);
  EXPECT_THROW((void)known_optimal_matrix(5, 5, 0, rng), ContractViolation);
  EXPECT_THROW((void)known_optimal_matrix(5, 5, 6, rng), ContractViolation);
}

class GapFamily : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GapFamily, PairRowsHaveRankKPlusOne) {
  const std::size_t k = GetParam();
  Rng rng(200 + k);
  for (int i = 0; i < 5; ++i) {
    const auto inst = gap_matrix(10, 10, k, rng);
    EXPECT_EQ(inst.pairs, k);
    EXPECT_EQ(inst.pair_rank, k + 1);
    EXPECT_EQ(inst.matrix.rows(), 10u);
    // First 2k rows: pairwise sums of pair p equal the same base row.
    const auto& rows = inst.matrix.row_vectors();
    const BitVec base = rows[0] | rows[1];
    for (std::size_t p = 0; p < k; ++p) {
      EXPECT_TRUE(rows[2 * p].disjoint(rows[2 * p + 1]));
      EXPECT_EQ(rows[2 * p] | rows[2 * p + 1], base);
    }
    // Rank of the pair block alone is k+1.
    std::vector<BitVec> pair_rows(rows.begin(),
                                  rows.begin() + static_cast<long>(2 * k));
    EXPECT_EQ(ebmf::real_rank(pair_rows, 10), k + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Pairs, GapFamily,
                         ::testing::Values(std::size_t{2}, std::size_t{3},
                                           std::size_t{4}, std::size_t{5}));

TEST(GapFamilyProperty, BinaryRankExceedsPairRank) {
  // The family's purpose: r_B > rank for the pair block. Verify on the
  // 2k-row submatrix via SAP (small enough to prove).
  // Note: the gap is probabilistic, not certain — the paper's own Table I
  // "rank" column shows it materializes in 26-58% of cases. Ten instances
  // at these parameters reliably contain several.
  Rng rng(303);
  int gaps = 0;
  for (int i = 0; i < 10; ++i) {
    const auto inst = gap_matrix(6, 8, 3, rng);  // exactly the pair block
    const auto r = sap_solve(inst.matrix);
    ASSERT_TRUE(r.proven_optimal());
    EXPECT_GE(r.depth(), inst.pair_rank);
    if (r.depth() > inst.pair_rank) ++gaps;
  }
  EXPECT_GT(gaps, 0);
}

TEST(Suites, RandomSuiteCountsAndConfigs) {
  const auto suite = random_suite(10, 10, {0.1, 0.5}, 3, 42);
  EXPECT_EQ(suite.size(), 6u);
  EXPECT_EQ(suite[0].family, "rand");
  EXPECT_NE(suite[0].config.find("10x10"), std::string::npos);
  for (const auto& inst : suite) {
    EXPECT_EQ(inst.matrix.rows(), 10u);
    EXPECT_EQ(inst.matrix.cols(), 10u);
    EXPECT_EQ(inst.known_optimal, 0u);
  }
}

TEST(Suites, KnownOptimalSuiteCarriesCertificates) {
  const auto suite = known_optimal_suite(10, 10, 4, 2, 42);
  EXPECT_EQ(suite.size(), 8u);
  for (const auto& inst : suite) {
    EXPECT_EQ(inst.family, "opt");
    EXPECT_GE(inst.known_optimal, 1u);
    EXPECT_EQ(real_rank(inst.matrix), inst.known_optimal);
  }
}

TEST(Suites, GapSuiteCounts) {
  const auto suite = gap_suite(10, 10, {2, 4}, 3, 7);
  EXPECT_EQ(suite.size(), 6u);
  EXPECT_EQ(suite[0].config, "pairs=2");
  EXPECT_EQ(suite[5].config, "pairs=4");
}

TEST(Suites, DeterministicAcrossCalls) {
  const auto a = random_suite(8, 8, {0.3}, 2, 9);
  const auto b = random_suite(8, 8, {0.3}, 2, 9);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].matrix, b[i].matrix);
}

TEST(Suites, PaperOccupancyGrids) {
  EXPECT_EQ(paper_occupancies_small().size(), 9u);
  EXPECT_EQ(paper_occupancies_large().size(), 5u);
  EXPECT_DOUBLE_EQ(paper_occupancies_small().front(), 0.1);
  EXPECT_DOUBLE_EQ(paper_occupancies_large().back(), 0.20);
}

}  // namespace
}  // namespace ebmf::benchgen
