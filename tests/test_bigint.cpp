// Tests for the arbitrary-precision integers backing exact rank.

#include "linalg/bigint.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "support/contracts.h"
#include "support/rng.h"

namespace ebmf {
namespace {

TEST(BigInt, ZeroBasics) {
  BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.sign(), 0);
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_string(), "0");
  EXPECT_EQ((-z).to_string(), "0");
  EXPECT_EQ(z.to_int64(), 0);
}

TEST(BigInt, FromInt64RoundTrip) {
  const std::vector<std::int64_t> values{
      0, 1, -1, 42, -42, std::int64_t{1} << 40, -(std::int64_t{1} << 40),
      INT64_MAX, INT64_MIN + 1};
  for (std::int64_t v : values) {
    BigInt b(v);
    EXPECT_EQ(b.to_int64(), v) << v;
    EXPECT_EQ(b.to_string(), std::to_string(v)) << v;
  }
}

TEST(BigInt, Int64MinHandled) {
  BigInt b(INT64_MIN);
  EXPECT_EQ(b.to_string(), "-9223372036854775808");
}

TEST(BigInt, FromStringRoundTrip) {
  const std::string big = "123456789012345678901234567890";
  EXPECT_EQ(BigInt::from_string(big).to_string(), big);
  EXPECT_EQ(BigInt::from_string("-" + big).to_string(), "-" + big);
  EXPECT_EQ(BigInt::from_string("0").to_string(), "0");
  EXPECT_EQ(BigInt::from_string("-0").to_string(), "0");
}

TEST(BigInt, ComparisonTotalOrder) {
  const BigInt a(-5), b(0), c(5), d(500);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(c, d);
  EXPECT_GT(d, a);
  EXPECT_LE(a, a);
  EXPECT_EQ(BigInt(7), BigInt(7));
  EXPECT_NE(BigInt(7), BigInt(-7));
}

TEST(BigInt, AdditionSmall) {
  EXPECT_EQ((BigInt(2) + BigInt(3)).to_int64(), 5);
  EXPECT_EQ((BigInt(-2) + BigInt(3)).to_int64(), 1);
  EXPECT_EQ((BigInt(2) + BigInt(-3)).to_int64(), -1);
  EXPECT_EQ((BigInt(-2) + BigInt(-3)).to_int64(), -5);
  EXPECT_EQ((BigInt(5) + BigInt(-5)).sign(), 0);
}

TEST(BigInt, CarryPropagation) {
  const BigInt a = BigInt::from_string("4294967295");  // 2^32 - 1
  EXPECT_EQ((a + BigInt(1)).to_string(), "4294967296");
  const BigInt b = BigInt::from_string("18446744073709551615");  // 2^64 - 1
  EXPECT_EQ((b + BigInt(1)).to_string(), "18446744073709551616");
}

TEST(BigInt, MultiplicationBig) {
  const BigInt ten20 = BigInt::from_string("100000000000000000000");
  EXPECT_EQ((ten20 * ten20).to_string(),
            "10000000000000000000000000000000000000000");
  EXPECT_EQ((ten20 * BigInt(0)).to_string(), "0");
  EXPECT_EQ((ten20 * BigInt(-1)).to_string(), "-100000000000000000000");
}

TEST(BigInt, DivExactSingleLimb) {
  const BigInt a = BigInt::from_string("999999999999999999999");
  const BigInt q = a.div_exact(BigInt(3));
  EXPECT_EQ(q.to_string(), "333333333333333333333");
}

TEST(BigInt, DivExactMultiLimb) {
  const BigInt a = BigInt::from_string("123456789012345678901234567890");
  const BigInt b = BigInt::from_string("987654321098765");
  const BigInt prod = a * b;
  EXPECT_EQ(prod.div_exact(b), a);
  EXPECT_EQ(prod.div_exact(a), b);
  EXPECT_EQ((-prod).div_exact(b), -a);
  EXPECT_EQ(prod.div_exact(-b), -a);
}

TEST(BigInt, DivExactRejectsInexact) {
  EXPECT_THROW((void)BigInt(7).div_exact(BigInt(2)), ContractViolation);
  EXPECT_THROW((void)BigInt(7).div_exact(BigInt(0)), ContractViolation);
}

TEST(BigInt, BitLength) {
  EXPECT_EQ(BigInt(1).bit_length(), 1u);
  EXPECT_EQ(BigInt(2).bit_length(), 2u);
  EXPECT_EQ(BigInt(255).bit_length(), 8u);
  EXPECT_EQ(BigInt(256).bit_length(), 9u);
  EXPECT_EQ(BigInt::from_string("18446744073709551616").bit_length(), 65u);
}

// Property: arithmetic agrees with __int128 on random 60-bit operands.
class BigIntProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BigIntProperty, MatchesInt128Reference) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const std::int64_t x =
        rng.range(-(1LL << 30), 1LL << 30) * rng.range(0, 1 << 20);
    const std::int64_t y =
        rng.range(-(1LL << 30), 1LL << 30) * rng.range(0, 1 << 20);
    const BigInt bx(x), by(y);
    EXPECT_EQ((bx + by).to_int64(), x + y);
    EXPECT_EQ((bx - by).to_int64(), x - y);
    const __int128 prod = static_cast<__int128>(x) * y;
    const BigInt bprod = bx * by;
    // Compare via string rendering of the 128-bit product.
    __int128 p = prod;
    std::string expect;
    const bool negative = p < 0;
    if (p == 0) expect = "0";
    if (negative) p = -p;
    while (p != 0) {
      expect.push_back(static_cast<char>('0' + static_cast<int>(p % 10)));
      p /= 10;
    }
    if (expect.empty()) expect = "0";
    if (negative) expect.push_back('-');
    std::reverse(expect.begin(), expect.end());
    EXPECT_EQ(bprod.to_string(), expect);
    if (y != 0) {
      EXPECT_EQ((bprod).div_exact(by), bx * BigInt(1));
    }
    EXPECT_EQ(bx.compare(by), x < y ? -1 : (x == y ? 0 : 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace ebmf
