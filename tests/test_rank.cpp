// Tests for exact rank computation (the Eq. 3 lower bound of the paper).

#include "linalg/rank.h"

#include <gtest/gtest.h>

#include "core/matrix.h"
#include "support/rng.h"

namespace ebmf {
namespace {

std::vector<BitVec> rows_of(const BinaryMatrix& m) { return m.row_vectors(); }

TEST(Rank, EmptyAndZero) {
  EXPECT_EQ(real_rank({}, 0), 0u);
  BinaryMatrix z(4, 5);
  EXPECT_EQ(real_rank(rows_of(z), 5), 0u);
  EXPECT_EQ(rank_gf2(rows_of(z)), 0u);
  EXPECT_EQ(rank_bareiss(rows_of(z), 5), 0u);
}

TEST(Rank, Identity) {
  BinaryMatrix id(6, 6);
  for (std::size_t i = 0; i < 6; ++i) id.set(i, i);
  EXPECT_EQ(real_rank(rows_of(id), 6), 6u);
  EXPECT_EQ(rank_gf2(rows_of(id)), 6u);
  EXPECT_EQ(rank_mod_p(rows_of(id), 6, 1000000007ull), 6u);
}

TEST(Rank, AllOnesIsRankOne) {
  BinaryMatrix ones(5, 7);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 7; ++j) ones.set(i, j);
  EXPECT_EQ(real_rank(rows_of(ones), 7), 1u);
  EXPECT_EQ(rank_bareiss(rows_of(ones), 7), 1u);
}

TEST(Rank, DuplicateRowsDontCount) {
  const auto m = BinaryMatrix::parse("1100;1100;0011;0011;1111");
  // row0=row1, row2=row3, row4=row0+row2 -> rank 2.
  EXPECT_EQ(real_rank(rows_of(m), 4), 2u);
}

TEST(Rank, Gf2DiffersFromRealRank) {
  // The classic parity example (also the paper's Eq. 2 matrix shape):
  // rank over GF(2) collapses because rows sum to zero mod 2.
  const auto m = BinaryMatrix::parse("011;101;110");
  EXPECT_EQ(rank_gf2(rows_of(m)), 2u);
  EXPECT_EQ(real_rank(rows_of(m), 3), 3u);
  EXPECT_EQ(rank_bareiss(rows_of(m), 3), 3u);
}

TEST(Rank, Eq2MatrixFullRank) {
  // The paper's Eq. 2 matrix: r_B = 3 and rank 3 here too.
  const auto m = BinaryMatrix::parse("110;011;111");
  EXPECT_EQ(real_rank(rows_of(m), 3), 3u);
}

TEST(Rank, WideAndTallAgreeWithTranspose) {
  Rng rng(4242);
  for (int trial = 0; trial < 30; ++trial) {
    const auto m = BinaryMatrix::random(6, 11, 0.4, rng);
    const auto mt = m.transposed();
    EXPECT_EQ(real_rank(rows_of(m), m.cols()),
              real_rank(rows_of(mt), mt.cols()));
  }
}

TEST(Rank, BareissMatchesModularOnRandom) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const auto m = BinaryMatrix::random(8, 8, 0.5, rng);
    const auto rb = rank_bareiss(rows_of(m), 8);
    const auto rp = rank_mod_p(rows_of(m), 8, 2147483647ull);
    const auto rr = real_rank(rows_of(m), 8);
    EXPECT_EQ(rb, rr);
    EXPECT_LE(rp, rb);  // GF(p) rank can only drop
    EXPECT_EQ(rp, rb);  // ... but virtually never does for 0/1 matrices
  }
}

TEST(Rank, RankBoundedByDims) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const auto m = BinaryMatrix::random(5, 9, 0.6, rng);
    const auto r = real_rank(rows_of(m), 9);
    EXPECT_LE(r, 5u);
  }
}

TEST(Rank, LargeSparseExactPath) {
  // 60x60 at 5%: usually rank-deficient, exercising the Bareiss fallback.
  Rng rng(123);
  const auto m = BinaryMatrix::random(60, 60, 0.05, rng);
  const auto rr = real_rank(rows_of(m), 60);
  const auto rb = rank_bareiss(rows_of(m), 60);
  EXPECT_EQ(rr, rb);
  EXPECT_LT(rr, 60u);
}

TEST(Rank, KroneckerRankMultiplicative) {
  Rng rng(55);
  for (int trial = 0; trial < 10; ++trial) {
    const auto a = BinaryMatrix::random(4, 5, 0.5, rng);
    const auto b = BinaryMatrix::random(3, 4, 0.5, rng);
    const auto k = BinaryMatrix::kron(a, b);
    EXPECT_EQ(real_rank(rows_of(k), k.cols()),
              real_rank(rows_of(a), a.cols()) *
                  real_rank(rows_of(b), b.cols()));
  }
}

// Paper Observation 1 backdrop: wide random matrices are almost surely
// full-rank at moderate occupancy.
class FullRankTendency
    : public ::testing::TestWithParam<std::pair<std::size_t, double>> {};

TEST_P(FullRankTendency, WideMatricesUsuallyFullRank) {
  const auto [cols, occ] = GetParam();
  Rng rng(1000 + cols);
  int full = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    const auto m = BinaryMatrix::random(10, cols, occ, rng);
    if (real_rank(rows_of(m), cols) == 10) ++full;
  }
  EXPECT_GE(full, trials - 2);  // ≥ 90% full rank
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FullRankTendency,
    ::testing::Values(std::make_pair(std::size_t{20}, 0.3),
                      std::make_pair(std::size_t{20}, 0.5),
                      std::make_pair(std::size_t{30}, 0.2),
                      std::make_pair(std::size_t{30}, 0.5)));

}  // namespace
}  // namespace ebmf
