// Tests for ebmf::router: rendezvous-ring stability under membership
// changes, canonical shard affinity (permuted duplicates hitting one
// backend cache through the router), the router L1, pipelined ordering
// under concurrency, stats, and kill-one-backend failover mid-stream.

#include "router/router.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "benchgen/generators.h"
#include "io/json.h"
#include "router/pool.h"
#include "router/ring.h"
#include "service/net.h"
#include "service/service.h"
#include "support/rng.h"

namespace ebmf::router {
namespace {

service::ServerOptions backend_options() {
  service::ServerOptions options;
  options.port = 0;  // ephemeral
  options.cache_mb = 8;
  options.budget_ceiling_seconds = 5.0;
  return options;
}

/// A 2-backend fixture: two in-process servers plus a router over them.
struct Fleet {
  explicit Fleet(double l1_mb = 0.0, std::size_t backends = 2) {
    for (std::size_t i = 0; i < backends; ++i) {
      servers.push_back(std::make_unique<service::Server>(backend_options()));
      servers.back()->start();
    }
    RouterOptions options;
    options.port = 0;
    options.l1_mb = l1_mb;
    options.backoff_base_ms = 5;  // fast recovery in tests
    options.backoff_max_ms = 50;
    options.health_interval_ms = 10;
    options.reply_timeout_seconds = 10.0;
    for (const auto& server : servers)
      options.backends.push_back("127.0.0.1:" +
                                 std::to_string(server->port()));
    router = std::make_unique<Router>(options);
    router->start();
  }

  ~Fleet() {
    if (router) router->stop();
    for (auto& server : servers) server->stop();
  }

  std::vector<std::unique_ptr<service::Server>> servers;
  std::unique_ptr<Router> router;
};

/// Parsed response convenience (same shape as test_service.cpp's Reply).
struct Reply {
  io::json::Value document;

  explicit Reply(const std::string& line)
      : document(io::json::Value::parse(line)) {}

  [[nodiscard]] bool is_error() const {
    return document.find("error") != nullptr;
  }
  [[nodiscard]] double depth() const {
    return document.find("depth")->as_number();
  }
  [[nodiscard]] std::string label() const {
    const io::json::Value* value = document.find("label");
    return value == nullptr ? "" : value->as_string();
  }
  [[nodiscard]] std::string telemetry(const std::string& key) const {
    const io::json::Value* t = document.find("telemetry");
    if (t == nullptr) return "";
    const io::json::Value* value = t->find(key);
    return value == nullptr ? "" : value->as_string();
  }
};

/// A fresh row/column permutation of `m`.
BinaryMatrix permuted_copy(const BinaryMatrix& m, Rng& rng) {
  const auto row_perm = rng.permutation(m.rows());
  const auto col_perm = rng.permutation(m.cols());
  BinaryMatrix out(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      if (m.test(row_perm[i], col_perm[j])) out.set(i, j);
  return out;
}

std::string pattern_text(const BinaryMatrix& m) {
  std::string text;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    if (i != 0) text += ';';
    text += m.row(i).to_string();
  }
  return text;
}

// ---- ring -----------------------------------------------------------------

TEST(RendezvousRing, OwnersSpreadAcrossBackends) {
  RendezvousRing ring;
  ring.add("a:1");
  ring.add("b:1");
  ring.add("c:1");
  std::vector<std::size_t> counts(3, 0);
  for (std::uint64_t key = 0; key < 3000; ++key) ++counts[ring.owner(key)];
  for (const std::size_t count : counts) {
    EXPECT_GT(count, 600u);   // roughly balanced thirds
    EXPECT_LT(count, 1400u);
  }
}

TEST(RendezvousRing, AddingABackendMovesOnlyItsOwnKeys) {
  RendezvousRing before;
  before.add("a:1");
  before.add("b:1");
  before.add("c:1");
  RendezvousRing after = before;
  const std::size_t added = after.add("d:1");

  std::size_t moved = 0;
  for (std::uint64_t key = 0; key < 4000; ++key) {
    const std::size_t old_owner = before.owner(key);
    const std::size_t new_owner = after.owner(key);
    if (new_owner != old_owner) {
      ++moved;
      // Every moved key moved *to the new backend* — no reshuffling among
      // the survivors.
      EXPECT_EQ(new_owner, added);
    }
  }
  // ~1/4 of the keys belong to the new backend.
  EXPECT_GT(moved, 4000u / 8);
  EXPECT_LT(moved, 4000u / 2);
}

TEST(RendezvousRing, RemovingABackendOnlyRehomesItsKeys) {
  RendezvousRing before;
  before.add("a:1");
  before.add("b:1");
  before.add("c:1");
  RendezvousRing after;
  after.add("a:1");
  after.add("b:1");  // "c:1" removed; indices 0/1 align with `before`

  for (std::uint64_t key = 0; key < 4000; ++key) {
    const std::size_t old_owner = before.owner(key);
    if (old_owner == 2) continue;  // c's keys re-home, anywhere is fine
    EXPECT_EQ(after.owner(key), old_owner) << key;
  }
}

TEST(RendezvousRing, SingleAddMovesAtMostAboutOneNthOfKeys) {
  // The HRW contract: adding one backend to N steals only the keys the
  // newcomer now wins — in expectation 1/(N+1) of the space, and *every*
  // moved key moves to the newcomer. Checked across fleet sizes.
  const std::uint64_t keys = 8000;
  for (const std::size_t n : {2u, 3u, 5u, 8u}) {
    RendezvousRing before;
    for (std::size_t i = 0; i < n; ++i)
      before.add("backend-" + std::to_string(i) + ":1");
    RendezvousRing after = before;
    const std::size_t added = after.add("newcomer:1");

    std::uint64_t moved = 0;
    for (std::uint64_t key = 0; key < keys; ++key) {
      const std::size_t old_owner = before.owner(key);
      const std::size_t new_owner = after.owner(key);
      if (new_owner != old_owner) {
        ++moved;
        EXPECT_EQ(new_owner, added) << "n=" << n << " key=" << key;
      }
    }
    // ~1/(n+1) of the keys move; 2x slack absorbs hash variance, and the
    // bound still certifies "<= 1/N", not "anything goes".
    EXPECT_LE(moved, 2 * keys / (n + 1)) << "n=" << n;
    EXPECT_GE(moved, keys / (2 * (n + 1))) << "n=" << n;
  }
}

TEST(RendezvousRing, SingleRemoveRehomesOnlyTheRemovedBackendsKeys) {
  const std::uint64_t keys = 8000;
  for (const std::size_t n : {2u, 3u, 5u, 8u}) {
    RendezvousRing before;
    for (std::size_t i = 0; i < n; ++i)
      before.add("backend-" + std::to_string(i) + ":1");
    // Remove the *last* backend so surviving indices align across rings.
    RendezvousRing after = before;
    ASSERT_TRUE(after.remove("backend-" + std::to_string(n - 1) + ":1"));

    std::uint64_t rehomed = 0;
    for (std::uint64_t key = 0; key < keys; ++key) {
      const std::size_t old_owner = before.owner(key);
      if (old_owner == n - 1) {
        ++rehomed;
        continue;  // the dead backend's keys go wherever ranks them next
      }
      // Every survivor keeps every key it owned: zero collateral movement.
      EXPECT_EQ(after.owner(key), old_owner) << "n=" << n << " key=" << key;
    }
    // The removed backend owned ~1/n of the space — that is the movement
    // ceiling for a single remove.
    EXPECT_LE(rehomed, 2 * keys / n) << "n=" << n;
    EXPECT_GE(rehomed, keys / (2 * n)) << "n=" << n;
  }
}

TEST(RendezvousRing, OrderedIsAPermutationWithOwnerFirst) {
  RendezvousRing ring;
  ring.add("a:1");
  ring.add("b:1");
  ring.add("c:1");
  for (std::uint64_t key = 0; key < 64; ++key) {
    const auto order = ring.ordered(key);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], ring.owner(key));
    const std::set<std::size_t> unique(order.begin(), order.end());
    EXPECT_EQ(unique.size(), 3u);
  }
}

// ---- pool backoff ---------------------------------------------------------

TEST(BackendPool, ReconnectRespectsExponentialBackoff) {
  // Reserve a loopback port, then close it: connects now fail fast
  // (ECONNREFUSED), so backoff timing is the only clock in the test.
  std::uint16_t port = 0;
  {
    service::net::TcpListener probe;
    probe.listen("127.0.0.1", 0);
    port = probe.port();
  }

  PoolOptions options;
  options.backoff_base_ms = 100;
  options.backoff_max_ms = 2000;
  // The "backend" below is a bare listening socket that never speaks, so
  // the upgrade negotiation (a bounded protocol exchange) would read it as
  // wedged; this test measures backoff clocks, not the wire handshake.
  options.negotiate_binary = false;
  BackendPool pool("127.0.0.1", port, options);
  using Clock = std::chrono::steady_clock;

  // Failure 1: arms a 100 ms window and doubles the next one to 200 ms.
  pool.maintain();
  EXPECT_FALSE(pool.alive());
  // Inside the window, maintain() must not even attempt to connect.
  pool.maintain();
  EXPECT_FALSE(pool.alive());

  // Failure 2 (past the first window): arms the doubled 200 ms window.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  pool.maintain();
  EXPECT_FALSE(pool.alive());
  const auto second_failure = Clock::now();

  // The backend comes up immediately — but the pool owes the window.
  service::net::TcpListener listener;
  listener.listen("127.0.0.1", port);
  while (!pool.alive() &&
         Clock::now() - second_failure < std::chrono::seconds(5)) {
    pool.maintain();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(pool.alive()) << "pool never reconnected";
  const auto waited = Clock::now() - second_failure;
  // The doubled window was honored. Each window is jittered over
  // [0.5, 1.5)x its nominal length (anti-stampede), so the doubled 200 ms
  // window is at least 100 ms; the bound is loosened below that so
  // scheduler noise cannot flake the test, but an eager pool that skips
  // backoff reconnects within ~5 ms and fails it clearly.
  EXPECT_GE(waited, std::chrono::milliseconds(80));
  pool.shutdown();
}

// ---- routing --------------------------------------------------------------

TEST(Router, RoundTripSolvesThroughABackend) {
  Fleet fleet;
  service::Client client("127.0.0.1", fleet.router->port());
  const Reply reply(client.round_trip(
      R"({"pattern": "110;011;111", "label": "eq2", "id": 42})"));
  ASSERT_FALSE(reply.is_error());
  EXPECT_EQ(reply.depth(), 3.0);
  EXPECT_EQ(reply.label(), "eq2");
  EXPECT_EQ(reply.document.find("id")->as_number(), 42.0);
  EXPECT_EQ(reply.document.find("status")->as_string(), "optimal");
  // The reply names the backend that served it.
  const std::string backend = reply.telemetry("routed.backend");
  EXPECT_NE(backend.find("127.0.0.1:"), std::string::npos);
  EXPECT_EQ(fleet.router->stats().requests, 1u);
}

TEST(Router, PermutedDuplicatesHitTheSameBackendCache) {
  Fleet fleet(/*l1_mb=*/0.0);  // L1 off: observe the *backend* cache
  const BinaryMatrix base = BinaryMatrix::parse("1110;0111;1111");
  Rng rng(7);
  service::Client client("127.0.0.1", fleet.router->port());

  const Reply cold(client.round_trip("{\"pattern\": \"" +
                                     pattern_text(base) + "\"}"));
  ASSERT_FALSE(cold.is_error());
  EXPECT_EQ(cold.telemetry("cache_hit"), "false");
  const std::string backend = cold.telemetry("routed.backend");

  for (int repeat = 0; repeat < 4; ++repeat) {
    const Reply warm(client.round_trip(
        "{\"pattern\": \"" + pattern_text(permuted_copy(base, rng)) + "\"}"));
    ASSERT_FALSE(warm.is_error());
    // Same canonical key -> same backend -> its cache answers.
    EXPECT_EQ(warm.telemetry("routed.backend"), backend) << repeat;
    EXPECT_EQ(warm.telemetry("cache_hit"), "true") << repeat;
    EXPECT_EQ(warm.depth(), cold.depth());
  }
  // Exactly one backend saw the family.
  std::size_t backends_used = 0;
  for (const auto& server : fleet.servers)
    if (server->stats().requests > 0) ++backends_used;
  EXPECT_EQ(backends_used, 1u);
}

TEST(Router, L1AnswersRepeatsWithoutTouchingBackends) {
  Fleet fleet(/*l1_mb=*/8.0);
  const BinaryMatrix base = BinaryMatrix::parse("110;011;111");
  Rng rng(3);
  service::Client client("127.0.0.1", fleet.router->port());

  const Reply cold(client.round_trip("{\"pattern\": \"" +
                                     pattern_text(base) + "\"}"));
  ASSERT_FALSE(cold.is_error());
  const std::uint64_t backend_lines_after_cold =
      fleet.servers[0]->stats().requests + fleet.servers[1]->stats().requests;

  const Reply warm(client.round_trip(
      "{\"pattern\": \"" + pattern_text(permuted_copy(base, rng)) +
      "\", \"include_partition\": true}"));
  ASSERT_FALSE(warm.is_error());
  EXPECT_EQ(warm.telemetry("routed.l1"), "hit");
  EXPECT_EQ(warm.telemetry("routed.backend"), "l1");
  EXPECT_EQ(warm.depth(), cold.depth());
  // The lifted certificate rides along and matches the permuted request.
  const io::json::Value* partition = warm.document.find("partition");
  ASSERT_NE(partition, nullptr);
  EXPECT_EQ(partition->size(), static_cast<std::size_t>(warm.depth()));
  // No extra backend traffic for the warm repeat.
  const std::uint64_t backend_lines_after_warm =
      fleet.servers[0]->stats().requests + fleet.servers[1]->stats().requests;
  EXPECT_EQ(backend_lines_after_warm, backend_lines_after_cold);
  EXPECT_EQ(fleet.router->stats().l1_hits, 1u);
}

TEST(Router, PipelinedRepliesComeBackInOrderUnderConcurrency) {
  Fleet fleet(/*l1_mb=*/0.0);
  const int clients = 8;
  const int per_client = 8;  // 64 requests in flight across the fleet
  std::atomic<int> ok{0};
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c]() {
      try {
        service::Client client("127.0.0.1", fleet.router->port());
        for (int i = 0; i < per_client; ++i) {
          // Alternate sizes so completion order would differ from request
          // order without per-connection reassembly.
          const std::string pattern =
              (i % 2 == 0) ? "110;011;111" : "10;01";
          client.send_line("{\"pattern\": \"" + pattern +
                           "\", \"label\": \"c" + std::to_string(c) + "-" +
                           std::to_string(i) + "\"}");
        }
        int in_order = 0;
        for (int i = 0; i < per_client; ++i) {
          const Reply reply(client.read_line());
          if (reply.is_error()) continue;
          if (reply.label() !=
              "c" + std::to_string(c) + "-" + std::to_string(i))
            continue;
          if (reply.depth() != ((i % 2 == 0) ? 3.0 : 2.0)) continue;
          ++in_order;
        }
        if (in_order == per_client) ok.fetch_add(1);
      } catch (const std::exception&) {
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(ok.load(), clients);
}

TEST(Router, KilledBackendFailsOverWithoutLosingRequests) {
  Fleet fleet(/*l1_mb=*/0.0);
  service::Client client("127.0.0.1", fleet.router->port());

  // Discover which backend owns the burst pattern's canonical key, so
  // killing exactly that one forces the failover path deterministically.
  const Reply cold(client.round_trip(
      R"({"pattern": "1110;0111;1111", "label": "cold"})"));
  ASSERT_FALSE(cold.is_error());
  const std::string owner = cold.telemetry("routed.backend");
  std::size_t owner_index = fleet.servers.size();
  for (std::size_t i = 0; i < fleet.servers.size(); ++i)
    if (owner == "127.0.0.1:" + std::to_string(fleet.servers[i]->port()))
      owner_index = i;
  ASSERT_LT(owner_index, fleet.servers.size());

  // Kill mid-stream: pipeline a burst at the dead shard's key.
  const int burst = 24;
  for (int i = 0; i < burst; ++i)
    client.send_line("{\"pattern\": \"1110;0111;1111\", \"label\": \"b" +
                     std::to_string(i) + "\"}");
  fleet.servers[owner_index]->stop();

  int answered = 0;
  for (int i = 0; i < burst; ++i) {
    const Reply reply(client.read_line());
    ASSERT_FALSE(reply.is_error()) << i << ": lost a request";
    EXPECT_EQ(reply.label(), "b" + std::to_string(i));
    EXPECT_EQ(reply.depth(), 3.0);
    ++answered;
  }
  // The no-loss property: the dying backend's drain answered some, the
  // failover resubmits covered the rest — 24/24 either way.
  EXPECT_EQ(answered, burst);

  // Wait until the router has noticed the death (health cadence 10 ms),
  // then the owner's keys *must* fail over, with telemetry, every time.
  for (int tries = 0; tries < 200; ++tries) {
    const RouterStats now = fleet.router->stats();
    std::size_t alive = 0;
    for (const BackendHealth& backend : now.backends)
      if (backend.alive) ++alive;
    if (alive == 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (int i = 0; i < 4; ++i) {
    const Reply reply(client.round_trip(
        "{\"pattern\": \"1110;0111;1111\", \"label\": \"after" +
        std::to_string(i) + "\"}"));
    ASSERT_FALSE(reply.is_error()) << i;
    EXPECT_EQ(reply.depth(), 3.0);
    EXPECT_FALSE(reply.telemetry("routed.failover").empty()) << i;
    EXPECT_NE(reply.telemetry("routed.backend"), owner) << i;
  }
  EXPECT_GE(fleet.router->stats().failovers, 4u);

  // Other shards keep working against the survivor too.
  const Reply other(client.round_trip(R"({"pattern": "10;01"})"));
  ASSERT_FALSE(other.is_error());
  EXPECT_EQ(other.depth(), 2.0);
  const RouterStats stats = fleet.router->stats();
  std::size_t alive = 0;
  for (const BackendHealth& backend : stats.backends)
    if (backend.alive) ++alive;
  EXPECT_EQ(alive, 1u);
}

TEST(Router, StatsVerbReportsBackendsAndCounters) {
  Fleet fleet(/*l1_mb=*/4.0);
  service::Client client("127.0.0.1", fleet.router->port());
  const Reply solve(client.round_trip(R"({"pattern": "10;01"})"));
  ASSERT_FALSE(solve.is_error());
  const Reply stats(client.round_trip(R"({"op":"stats","id":9})"));
  ASSERT_FALSE(stats.is_error());
  EXPECT_EQ(stats.document.find("id")->as_number(), 9.0);
  EXPECT_EQ(stats.document.find("role")->as_string(), "router");
  const io::json::Value* router_block = stats.document.find("router");
  ASSERT_NE(router_block, nullptr);
  EXPECT_EQ(router_block->find("requests")->as_number(), 1.0);
  const io::json::Value* backends = stats.document.find("backends");
  ASSERT_NE(backends, nullptr);
  ASSERT_EQ(backends->size(), 2u);
  for (std::size_t i = 0; i < backends->size(); ++i)
    EXPECT_TRUE(backends->at(i).find("alive")->as_bool());
  const io::json::Value* l1 = stats.document.find("l1");
  ASSERT_NE(l1, nullptr);
  EXPECT_TRUE(l1->is_object());
}

TEST(Router, MaskedRequestsPassThrough) {
  Fleet fleet;
  service::Client client("127.0.0.1", fleet.router->port());
  const Reply reply(client.round_trip(
      R"({"pattern": "1*;*1", "label": "masked"})"));
  ASSERT_FALSE(reply.is_error());
  EXPECT_EQ(reply.label(), "masked");
  EXPECT_EQ(reply.document.find("strategy")->as_string(), "completion");
}

TEST(Router, MalformedLinesAndUnknownStrategiesBecomeErrors) {
  Fleet fleet;
  service::Client client("127.0.0.1", fleet.router->port());
  const Reply bad(client.round_trip("this is not json"));
  EXPECT_TRUE(bad.is_error());
  const Reply unknown(client.round_trip(
      R"({"pattern": "10;01", "strategy": "nope", "label": "u"})"));
  EXPECT_TRUE(unknown.is_error());
  EXPECT_NE(unknown.document.find("error")->as_string().find("nope"),
            std::string::npos);
  EXPECT_EQ(unknown.label(), "u");
  // The connection survives protocol errors.
  const Reply good(client.round_trip(R"({"pattern": "10;01"})"));
  EXPECT_FALSE(good.is_error());
  EXPECT_GE(fleet.router->stats().errors, 2u);
}

TEST(Router, AllZeroPatternIsAnsweredLocally) {
  Fleet fleet;
  service::Client client("127.0.0.1", fleet.router->port());
  const Reply reply(client.round_trip(R"({"pattern": "000;000"})"));
  ASSERT_FALSE(reply.is_error());
  EXPECT_EQ(reply.depth(), 0.0);
  EXPECT_EQ(reply.document.find("status")->as_string(), "optimal");
  EXPECT_EQ(reply.telemetry("routed.backend"), "local");
}

TEST(Router, StartRejectsEmptyAndMalformedBackends) {
  {
    RouterOptions options;
    options.port = 0;
    Router router(options);
    EXPECT_THROW(router.start(), std::runtime_error);
  }
  {
    RouterOptions options;
    options.port = 0;
    options.backends = {"not-an-endpoint"};
    Router router(options);
    EXPECT_THROW(router.start(), std::runtime_error);
  }
}

// ---- observability: fleet metrics, watch relay, events ---------------------

/// `name{instance="inst"} value` extraction from a federated exposition;
/// -1 when the series/instance pair is absent.
long long federated_value(const std::string& text, const std::string& name,
                          const std::string& instance) {
  const std::string needle = name + "{instance=\"" + instance + "\"} ";
  const std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return -1;
  return std::strtoll(text.c_str() + pos + needle.size(), nullptr, 10);
}

TEST(Router, FleetMetricsScrapeSumsBackendCounters) {
  Fleet fleet(/*l1_mb=*/0.0);
  service::Client client("127.0.0.1", fleet.router->port());
  // Distinct patterns spread across the ring so the counters move.
  for (const char* pattern :
       {"10;01", "110;011;111", "1110;0111;1111", "11;11", "101;010;111"}) {
    const Reply reply(client.round_trip(std::string("{\"pattern\": \"") +
                                        pattern + "\"}"));
    ASSERT_FALSE(reply.is_error()) << pattern;
  }

  const std::string raw =
      client.round_trip(R"({"op":"metrics","scope":"fleet","id":1})");
  const Reply reply(raw);
  ASSERT_FALSE(reply.is_error()) << raw;
  EXPECT_EQ(reply.document.find("scope")->as_string(), "fleet");
  // Router itself + both backends.
  EXPECT_EQ(reply.document.find("instances")->as_number(), 3.0);
  const std::string body = reply.document.find("body")->as_string();

  // The acceptance bar: the fleet request-counter line equals the sum of
  // the per-instance lines, in one exposition. (In this in-process fixture
  // every instance shares the process-global registry, so each scrape sees
  // the same counter — the *federation* invariant `fleet = sum(instances)`
  // is what the merge must preserve regardless.)
  long long instance_sum = 0;
  for (const auto& server : fleet.servers) {
    const std::string instance =
        "127.0.0.1:" + std::to_string(server->port());
    const long long value =
        federated_value(body, "ebmf_server_requests_total", instance);
    ASSERT_GE(value, 5) << "no per-instance line for " << instance;
    instance_sum += value;
  }
  // The router scrapes itself too; its self-exposition contributes when it
  // carries the series (same process here). Standalone routers label
  // themselves "router"; peer-fleet members use their advertised endpoint.
  for (const std::string self :
       {std::string("router"),
        "127.0.0.1:" + std::to_string(fleet.router->port())}) {
    const long long value =
        federated_value(body, "ebmf_server_requests_total", self);
    if (value >= 0) instance_sum += value;
  }
  EXPECT_EQ(federated_value(body, "ebmf_server_requests_total", "fleet"),
            instance_sum);
  // The router's own series federate too (it is one of the instances).
  EXPECT_GE(federated_value(body, "ebmf_router_requests_total", "fleet"), 5);
  // Histogram buckets survive the merge with cumulative monotone counts.
  EXPECT_NE(body.find("_bucket{instance=\"fleet\",le=\""), std::string::npos);
}

TEST(Router, MalformedMetricsScopeIsRejected) {
  Fleet fleet;
  service::Client client("127.0.0.1", fleet.router->port());
  const Reply bogus(
      client.round_trip(R"({"op":"metrics","scope":"bogus"})"));
  ASSERT_TRUE(bogus.is_error());
  EXPECT_NE(bogus.document.find("error")->as_string().find(
                "must be self|local|fleet"),
            std::string::npos);
  // Default and self scopes still answer with the router's own registry.
  const Reply self(client.round_trip(R"({"op":"metrics","scope":"self"})"));
  ASSERT_FALSE(self.is_error());
  EXPECT_NE(self.document.find("body"), nullptr);
}

TEST(Router, EventsVerbSnapshotsTheRecorder) {
  Fleet fleet;
  service::Client client("127.0.0.1", fleet.router->port());
  const Reply solve(client.round_trip(R"({"pattern": "110;011;111"})"));
  ASSERT_FALSE(solve.is_error());
  const std::string raw = client.round_trip(R"({"op":"events","id":2})");
  EXPECT_EQ(raw.rfind("{\"id\":2,", 0), 0u);
  const Reply reply(raw);
  ASSERT_FALSE(reply.is_error());
  const io::json::Value* events = reply.document.find("events");
  ASSERT_NE(events, nullptr);
  EXPECT_TRUE(events->is_array());
}

TEST(Router, WatchRelaysBackendProgressFrames) {
  Fleet fleet(/*l1_mb=*/0.0);
  // A structured qldpc-block pattern: the rank certificate goes slack, so
  // the budgeted local solve runs anytime and streams its trajectory.
  Rng gen(7);
  const BinaryMatrix hard =
      benchgen::qldpc_block_matrix(96, 64, 0.3, gen);
  service::Client solver("127.0.0.1", fleet.router->port());
  solver.send_line("{\"id\":0,\"pattern\":\"" + pattern_text(hard) +
                   "\",\"strategy\":\"local\",\"budget\":1.5}");

  service::Client watcher("127.0.0.1", fleet.router->port());
  std::string line;
  bool streaming = false;
  for (int attempt = 0; attempt < 100 && !streaming; ++attempt) {
    watcher.send_line(R"({"op":"watch","id":0})");
    line = watcher.read_line();
    if (line.find("no in-flight request") != std::string::npos) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    streaming = true;
  }
  ASSERT_TRUE(streaming) << line;

  std::size_t frames = 0;
  bool done = false;
  while (!done) {
    const io::json::Value frame = io::json::Value::parse(line);
    ASSERT_EQ(frame.find("error"), nullptr) << line;
    // The relay rewrote the backend's correlation id to the client's.
    EXPECT_EQ(frame.find("id")->as_number(), 0.0);
    if (frame.find("done") != nullptr) {
      done = true;
      break;
    }
    ASSERT_NE(frame.find("progress"), nullptr) << line;
    ++frames;
    line = watcher.read_line();
  }
  EXPECT_TRUE(done);
  EXPECT_GE(frames, 3u);

  const std::string reply_line = solver.read_line();
  const Reply reply(reply_line);
  ASSERT_FALSE(reply.is_error());
  EXPECT_GE(reply.depth(), 1.0);
  // The backend's budget-cut flight-recorder splice survives the router's
  // lift re-render.
  const io::json::Value document = io::json::Value::parse(reply_line);
  if (const io::json::Value* status = document.find("status");
      status != nullptr && status->as_string() != "optimal") {
    const io::json::Value* events = document.find("events");
    ASSERT_NE(events, nullptr) << reply_line.substr(0, 200);
    EXPECT_TRUE(events->is_array());
    EXPECT_GT(events->size(), 0u);
  }
}

}  // namespace
}  // namespace ebmf::router
