// Tests for the greedy rectangle-extraction baseline and the vacancy-aware
// masked row packing.

#include <gtest/gtest.h>

#include "completion/completion_solver.h"
#include "completion/masked_packing.h"
#include "core/bounds.h"
#include "core/brute_force.h"
#include "core/greedy_rect.h"
#include "support/rng.h"

namespace ebmf {
namespace {

TEST(GreedyRect, ValidOnRandomSweep) {
  Rng rng(61);
  for (int t = 0; t < 40; ++t) {
    const auto m = BinaryMatrix::random(7, 9, 0.1 + 0.02 * t, rng);
    RowPackingOptions opt;
    opt.trials = 5;
    opt.seed = t;
    const auto r = greedy_rectangles(m, opt);
    const auto v = validate_partition(m, r.partition);
    ASSERT_TRUE(v.ok) << v.reason;
    if (!m.is_zero()) {
      EXPECT_GE(r.partition.size(), real_rank(m));
    }
  }
}

TEST(GreedyRect, AllOnesIsOneRectangle) {
  const auto m = BinaryMatrix::parse("111;111");
  const auto p = greedy_rectangles_pass(m, {0, 1});
  EXPECT_EQ(p.size(), 1u);
}

TEST(GreedyRect, DuplicateRowsConsolidated) {
  const auto m = BinaryMatrix::parse("101;101;101");
  const auto p = greedy_rectangles_pass(m, {0, 1, 2});
  EXPECT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0].rows.count(), 3u);
}

TEST(GreedyRect, ZeroMatrix) {
  const BinaryMatrix z(3, 3);
  EXPECT_TRUE(greedy_rectangles_pass(z, {0, 1, 2}).empty());
}

TEST(GreedyRect, NeverBeatsOptimumNorExceedsRowCount) {
  Rng rng(62);
  for (int t = 0; t < 15; ++t) {
    const auto m = BinaryMatrix::random(4, 4, 0.5, rng);
    if (m.is_zero()) continue;
    const auto brute = brute_force_ebmf(m);
    ASSERT_TRUE(brute.has_value());
    RowPackingOptions opt;
    opt.trials = 20;
    opt.seed = t;
    const auto r = greedy_rectangles(m, opt);
    EXPECT_GE(r.partition.size(), brute->binary_rank);
    EXPECT_LE(r.partition.size(), distinct_nonzero_rows(m));
  }
}

TEST(GreedyRect, DeterministicPerSeed) {
  Rng rng(63);
  const auto m = BinaryMatrix::random(8, 8, 0.5, rng);
  RowPackingOptions opt;
  opt.trials = 8;
  opt.seed = 99;
  const auto a = greedy_rectangles(m, opt);
  const auto b = greedy_rectangles(m, opt);
  EXPECT_EQ(a.partition.size(), b.partition.size());
}

// ---- masked (vacancy-aware) packing --------------------------------------

TEST(MaskedPacking, BridgesAcrossVacancies) {
  const auto m = completion::MaskedMatrix::parse("1*;*1");
  const auto p = completion::masked_packing_pass(m, {0, 1});
  // Row 0 creates rectangle cols {0}; row 1's allowed = {0,1}, rect {0}
  // covers nothing of row 1's ones {1} -> residue {1} new rect. Still 2
  // here (packing only bridges when a rectangle covers some 1), but the
  // result must be Free-valid.
  EXPECT_TRUE(validate_masked(m, p, false));
}

TEST(MaskedPacking, VacancyLetsRectangleGrow) {
  // Rows: 110, 1*1 — the {0,1} rectangle from row 0 fits row 1 through the
  // vacancy at (1,1)? ones(1) = {0,2}, allowed(1) = {0,1,2}; rect cols
  // {0,1} covers one 1 ({0}) -> grows, residue {2}. Depth 2; DC-as-0
  // packing needs 2 as well, but the grown rectangle spans both rows.
  const auto m = completion::MaskedMatrix::parse("110;1*1");
  const auto p = completion::masked_packing_pass(m, {0, 1});
  EXPECT_TRUE(validate_masked(m, p, false));
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0].rows.count(), 2u);  // the bridge happened
}

TEST(MaskedPacking, NoVacanciesMatchesPlainPacking) {
  Rng rng(64);
  for (int t = 0; t < 10; ++t) {
    const auto pattern = BinaryMatrix::random(6, 6, 0.5, rng);
    completion::MaskedMatrix m(6, 6);
    for (std::size_t i = 0; i < 6; ++i)
      for (std::size_t j = 0; j < 6; ++j)
        if (pattern.test(i, j)) m.set(i, j, completion::Cell::One);
    const auto p = completion::masked_packing_pass(m, {0, 1, 2, 3, 4, 5});
    // Same as plain packing without basis update on the same order.
    const auto plain = row_packing_pass(pattern, {0, 1, 2, 3, 4, 5},
                                        /*basis_update=*/false);
    EXPECT_EQ(p.size(), plain.size());
  }
}

TEST(MaskedPacking, MultiTrialValidAndMonotone) {
  Rng rng(65);
  for (int t = 0; t < 10; ++t) {
    completion::MaskedMatrix m(6, 6);
    for (std::size_t i = 0; i < 6; ++i)
      for (std::size_t j = 0; j < 6; ++j) {
        const auto roll = rng.below(10);
        if (roll < 4)
          m.set(i, j, completion::Cell::One);
        else if (roll < 6)
          m.set(i, j, completion::Cell::DontCare);
      }
    RowPackingOptions one;
    one.trials = 1;
    one.seed = 7 + t;
    RowPackingOptions many = one;
    many.trials = 30;
    const auto r1 = completion::masked_row_packing(m, one);
    const auto rm = completion::masked_row_packing(m, many);
    EXPECT_TRUE(validate_masked(m, r1.partition, false));
    EXPECT_TRUE(validate_masked(m, rm.partition, false));
    EXPECT_LE(rm.partition.size(), r1.partition.size());
  }
}

TEST(MaskedPacking, ImprovesSolverUpperBound) {
  // A pattern where vacancies bridge otherwise-separate rows; the solver's
  // heuristic phase (which now includes masked packing) must start at or
  // below the DC-as-0 bound.
  const auto m = completion::MaskedMatrix::parse(
      "11**"
      ";**11"
      ";11**"
      ";**11");
  completion::CompletionOptions opt;
  const auto r = completion::solve_masked(m, opt);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_LE(r.partition.size(), 2u);
  EXPECT_TRUE(validate_masked(m, r.partition, false));
}

}  // namespace
}  // namespace ebmf
