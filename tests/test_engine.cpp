// Tests for the ebmf::engine facade: registry resolution, the unified
// report contract, the "auto" portfolio, budget/anytime behaviour, and
// batch/component-parallel execution.

#include "engine/engine.h"

#include <gtest/gtest.h>

#include "benchgen/generators.h"
#include "benchgen/suites.h"
#include "core/bounds.h"
#include "support/rng.h"

namespace ebmf::engine {
namespace {

BinaryMatrix eq2() { return BinaryMatrix::parse("110;011;111"); }

BinaryMatrix fig1b() {
  return BinaryMatrix::parse(
      "101100;010011;101010;010101;111000;000111");
}

TEST(Registry, BuiltinsArePresent) {
  const auto registry = SolverRegistry::with_builtins();
  for (const char* name : {"sap", "heuristic", "greedy", "trivial", "brute",
                           "dlx", "completion", "auto"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    ASSERT_NE(registry.find(name), nullptr);
    EXPECT_FALSE(registry.find(name)->description.empty()) << name;
  }
  const auto names = registry.names();
  EXPECT_EQ(names.size(), registry.size());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(Registry, UnknownNameThrowsListingAlternatives) {
  const Engine engine;
  auto request = SolveRequest::dense(eq2(), "frobnicate");
  try {
    (void)engine.solve(request);
    FAIL() << "expected UnknownStrategyError";
  } catch (const UnknownStrategyError& e) {
    EXPECT_EQ(e.name(), "frobnicate");
    EXPECT_NE(std::string(e.what()).find("sap"), std::string::npos);
  }
}

TEST(Registry, CustomStrategyPlugsIn) {
  SolverRegistry registry = SolverRegistry::with_builtins();
  registry.add("rowwise", "one rectangle per nonzero row",
               [](const SolveRequest& request) {
                 SolveReport report;
                 const BinaryMatrix& m = request.pattern();
                 for (std::size_t i = 0; i < m.rows(); ++i) {
                   if (m.row(i).none()) continue;
                   BitVec rows(m.rows());
                   rows.set(i);
                   report.partition.push_back(Rectangle{rows, m.row(i)});
                 }
                 report.status = Status::Heuristic;
                 return report;
               });
  const Engine engine(std::move(registry));
  const auto report = engine.solve(SolveRequest::dense(eq2(), "rowwise"));
  EXPECT_EQ(report.depth(), 3u);
  EXPECT_EQ(report.strategy, "rowwise");
  EXPECT_EQ(report.upper_bound, 3u);
}

TEST(Engine, EveryBuiltinStrategyYieldsValidOptimalOnEq2) {
  // r_B = 3 for the Eq. 2 matrix and every backend can reach it; the engine
  // validates each partition internally (run_checked postcondition).
  const Engine engine;
  for (const char* name :
       {"sap", "heuristic", "greedy", "trivial", "brute", "dlx",
        "completion", "auto"}) {
    const auto report = engine.solve(SolveRequest::dense(eq2(), name));
    EXPECT_EQ(report.depth(), 3u) << name;
    EXPECT_TRUE(validate_partition(eq2(), report.partition).ok) << name;
    EXPECT_GT(report.total_seconds, 0.0) << name;
  }
}

TEST(Engine, ReportCarriesTimingsAndTelemetry) {
  const Engine engine;
  const auto report = engine.solve(SolveRequest::dense(fig1b(), "sap"));
  EXPECT_TRUE(report.proven_optimal());
  EXPECT_EQ(report.depth(), 5u);  // the paper's Fig. 1b optimum
  EXPECT_GE(report.timing("heuristic"), 0.0);
  EXPECT_NE(report.find_telemetry("heuristic.size"), nullptr);
  // Timings merge by phase name.
  SolveReport scratch;
  scratch.add_timing("x", 1.0);
  scratch.add_timing("x", 2.0);
  EXPECT_DOUBLE_EQ(scratch.timing("x"), 3.0);
  EXPECT_DOUBLE_EQ(scratch.timing("absent"), 0.0);
}

TEST(Engine, ZeroMatrixIsOptimalEverywhere) {
  const Engine engine;
  for (const char* name : {"sap", "heuristic", "brute", "auto"}) {
    const auto report =
        engine.solve(SolveRequest::dense(BinaryMatrix(4, 4), name));
    EXPECT_TRUE(report.proven_optimal()) << name;
    EXPECT_EQ(report.depth(), 0u) << name;
  }
}

TEST(Auto, SmallInstanceSelectsBrute) {
  const Engine engine;
  const auto report = engine.solve(SolveRequest::dense(eq2(), "auto"));
  ASSERT_NE(report.find_telemetry("auto.selected"), nullptr);
  EXPECT_EQ(*report.find_telemetry("auto.selected"), "brute");
  EXPECT_EQ(report.strategy, "brute");
  EXPECT_TRUE(report.proven_optimal());
}

TEST(Auto, MidSizeInstanceSelectsSap) {
  Rng rng(21);
  const auto m = BinaryMatrix::random(10, 10, 0.5, rng);  // ~50 ones
  const Engine engine;
  const auto report = engine.solve(SolveRequest::dense(m, "auto"));
  ASSERT_NE(report.find_telemetry("auto.selected"), nullptr);
  EXPECT_EQ(*report.find_telemetry("auto.selected"), "sap");
}

TEST(Auto, LargeInstanceSelectsAnytimeLocalAndStaysValid) {
  Rng rng(22);
  const auto m = BinaryMatrix::random(40, 40, 0.5, rng);  // ~800 ones
  const Engine engine;
  auto request = SolveRequest::dense(m, "auto");
  request.trials = 10;
  const auto report = engine.solve(request);
  // ~800 dense 1-cells sits past the fitted exact/race cutoffs, so the
  // portfolio hands it to the anytime tier, which still returns a valid
  // partition with a certified gap bound.
  ASSERT_NE(report.find_telemetry("auto.selected"), nullptr);
  EXPECT_EQ(*report.find_telemetry("auto.selected"), "local");
  ASSERT_NE(report.find_telemetry("auto.tier"), nullptr);
  EXPECT_EQ(*report.find_telemetry("auto.tier"), "anytime");
  EXPECT_TRUE(validate_partition(m, report.partition).ok);
  EXPECT_EQ(report.gap, report.upper_bound - report.lower_bound);
}

TEST(Auto, DontCaresSelectCompletion) {
  const auto masked = completion::MaskedMatrix::parse("1*;*1");
  const Engine engine;
  const auto report = engine.solve(SolveRequest::with_mask(masked, "auto"));
  ASSERT_NE(report.find_telemetry("auto.selected"), nullptr);
  EXPECT_EQ(*report.find_telemetry("auto.selected"), "completion");
  EXPECT_EQ(report.depth(), 1u);  // the vacancy bridge fuses the diagonal
}

TEST(Budget, ExpiredDeadlineStillYieldsValidAnytimePartition) {
  Rng rng(23);
  const auto inst = benchgen::gap_matrix(10, 10, 4, rng);
  const Engine engine;
  for (const char* name : {"sap", "brute", "auto", "heuristic"}) {
    auto request = SolveRequest::dense(inst.matrix, name);
    request.budget = Budget::after(0.0);
    request.trials = 3;
    const auto report = engine.solve(request);
    EXPECT_TRUE(validate_partition(inst.matrix, report.partition).ok) << name;
    EXPECT_GE(report.depth(), report.lower_bound) << name;
    EXPECT_FALSE(report.partition.empty()) << name;
  }
}

TEST(Budget, CancellationFlagIsSharedAcrossCopies) {
  Budget budget;
  budget.cancellable();
  const Budget copy = budget;
  EXPECT_FALSE(copy.exhausted());
  budget.request_cancel();
  EXPECT_TRUE(copy.cancelled());
  EXPECT_TRUE(copy.exhausted());
}

TEST(Batch, DeterministicOrderAndDepthsAcrossRuns) {
  Rng rng(24);
  std::vector<SolveRequest> requests;
  for (int i = 0; i < 6; ++i) {
    auto request = SolveRequest::dense(
        BinaryMatrix::random(8, 8, 0.4, rng), "auto");
    request.label = "instance-" + std::to_string(i);
    request.trials = 20;
    request.seed = 7;
    requests.push_back(std::move(request));
  }
  const Engine engine;
  const auto first = engine.solve_batch(requests, 4);
  const auto second = engine.solve_batch(requests, 2);
  ASSERT_EQ(first.size(), requests.size());
  ASSERT_EQ(second.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(first[i].label, requests[i].label);
    EXPECT_EQ(second[i].label, requests[i].label);
    EXPECT_EQ(first[i].depth(), second[i].depth()) << i;
    EXPECT_EQ(first[i].status, second[i].status) << i;
    EXPECT_EQ(first[i].strategy, second[i].strategy) << i;
  }
}

TEST(Batch, UnknownStrategyYieldsErrorTelemetryNotThrow) {
  std::vector<SolveRequest> requests;
  requests.push_back(SolveRequest::dense(eq2(), "auto"));
  requests.push_back(SolveRequest::dense(eq2(), "nope"));
  const Engine engine;
  const auto reports = engine.solve_batch(requests, 2);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].depth(), 3u);
  ASSERT_NE(reports[1].find_telemetry("error"), nullptr);
  EXPECT_NE(reports[1].find_telemetry("error")->find("nope"),
            std::string::npos);
}

TEST(Split, ComponentParallelMatchesMonolithicDepth) {
  // Block-diagonal gap instances: components are solved independently and
  // the merged result matches a plain preprocessed SAP solve.
  Rng rng(25);
  BinaryMatrix big(20, 20);
  for (std::size_t b = 0; b < 2; ++b) {
    const auto gap = benchgen::gap_matrix(10, 10, 3, rng);
    for (const auto& [i, j] : gap.matrix.ones())
      big.set(b * 10 + i, b * 10 + j);
  }
  const Engine engine;
  auto request = SolveRequest::dense(big, "sap");
  request.trials = 40;
  const auto split = engine.solve_split(request, 4);
  const auto plain = engine.solve(request);
  EXPECT_TRUE(validate_partition(big, split.partition).ok);
  EXPECT_EQ(split.depth(), plain.depth());
  EXPECT_EQ(split.status, plain.status);
  EXPECT_EQ(split.lower_bound, plain.lower_bound);
  EXPECT_EQ(split.telemetry_count("split.components"), 2u);
}

TEST(Split, UnknownStrategyThrows) {
  const Engine engine;
  EXPECT_THROW((void)engine.solve_split(SolveRequest::dense(eq2(), "nope")),
               UnknownStrategyError);
}

TEST(Report, JsonIsOneLineWithStableFields) {
  const Engine engine;
  auto request = SolveRequest::dense(eq2(), "sap");
  request.label = "eq2 \"quoted\"";
  const auto report = engine.solve(request);
  const auto json = to_json(report);
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_NE(json.find("\"strategy\":\"sap\""), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"optimal\""), std::string::npos);
  EXPECT_NE(json.find("\"depth\":3"), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
}

TEST(Report, StatusNames) {
  EXPECT_STREQ(to_string(Status::Optimal), "optimal");
  EXPECT_STREQ(to_string(Status::Bounded), "bounded");
  EXPECT_STREQ(to_string(Status::Heuristic), "heuristic");
}

}  // namespace
}  // namespace ebmf::engine
