// Tests for fooling sets: validity, the paper's worked examples, and the
// lower-bound relationship phi(M) <= r_B(M).

#include "core/fooling.h"

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "support/rng.h"

namespace ebmf {
namespace {

TEST(Fooling, EmptySetIsFooling) {
  const auto m = BinaryMatrix::parse("10;01");
  EXPECT_TRUE(is_fooling_set(m, {}));
}

TEST(Fooling, RejectsZeroCell) {
  const auto m = BinaryMatrix::parse("10;01");
  EXPECT_FALSE(is_fooling_set(m, {{0, 1}}));
}

TEST(Fooling, DiagonalOfIdentityIsFooling) {
  BinaryMatrix m(4, 4);
  for (std::size_t i = 0; i < 4; ++i) m.set(i, i);
  CellSet diag{{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  EXPECT_TRUE(is_fooling_set(m, diag));
}

TEST(Fooling, RejectsSameRowPair) {
  // Two 1s in the same row always have 1-crossings (themselves).
  const auto m = BinaryMatrix::parse("11;00");
  EXPECT_FALSE(is_fooling_set(m, {{0, 0}, {0, 1}}));
}

TEST(Fooling, RejectsRectangleCorners) {
  const auto m = BinaryMatrix::parse("11;11");
  EXPECT_FALSE(is_fooling_set(m, {{0, 0}, {1, 1}}));
}

TEST(Fooling, GreedyProducesValidSet) {
  Rng rng(42);
  for (int t = 0; t < 20; ++t) {
    const auto m = BinaryMatrix::random(6, 6, 0.4, rng);
    const auto s = greedy_fooling_set(m, 8, t);
    EXPECT_TRUE(is_fooling_set(m, s));
  }
}

TEST(Fooling, ExactOnIdentity) {
  BinaryMatrix m(5, 5);
  for (std::size_t i = 0; i < 5; ++i) m.set(i, i);
  EXPECT_EQ(max_fooling_set(m).size(), 5u);
}

TEST(Fooling, ExactOnAllOnes) {
  const auto m = BinaryMatrix::parse("111;111");
  EXPECT_EQ(max_fooling_set(m).size(), 1u);
}

TEST(Fooling, ExactOnZeroMatrix) {
  const BinaryMatrix z(3, 3);
  EXPECT_TRUE(max_fooling_set(z).empty());
}

TEST(Fooling, PaperEq2MatrixPhiTwo) {
  // Paper: 3 rectangles needed but max fooling set is 2 — the bound is not
  // always tight.
  const auto m = BinaryMatrix::parse("110;011;111");
  EXPECT_EQ(max_fooling_set(m).size(), 2u);
  const auto brute = brute_force_ebmf(m);
  ASSERT_TRUE(brute.has_value());
  EXPECT_EQ(brute->binary_rank, 3u);
}

TEST(Fooling, PaperFig1bPhiFive) {
  // Fig. 1b: the shaded markers form a fooling set of size 5 certifying the
  // 5-rectangle partition optimal.
  const auto m = BinaryMatrix::parse(
      "101100;010011;101010;010101;111000;000111");
  const auto s = max_fooling_set(m);
  EXPECT_EQ(s.size(), 5u);
  EXPECT_TRUE(is_fooling_set(m, s));
}

TEST(Fooling, GreedyNeverExceedsExact) {
  Rng rng(88);
  for (int t = 0; t < 15; ++t) {
    const auto m = BinaryMatrix::random(5, 5, 0.5, rng);
    const auto exact = max_fooling_set(m);
    const auto greedy = greedy_fooling_set(m, 4, t);
    EXPECT_LE(greedy.size(), exact.size());
  }
}

TEST(Fooling, PhiBoundedByMinDimensionAndBinaryRank) {
  Rng rng(99);
  for (int t = 0; t < 15; ++t) {
    const auto m = BinaryMatrix::random(4, 5, 0.45, rng);
    if (m.is_zero()) continue;
    const auto phi = max_fooling_set(m).size();
    EXPECT_LE(phi, 4u);
    const auto brute = brute_force_ebmf(m);
    ASSERT_TRUE(brute.has_value());
    EXPECT_LE(phi, brute->binary_rank);
  }
}

TEST(Fooling, DeadlineReturnsValidSet) {
  Rng rng(7);
  const auto m = BinaryMatrix::random(8, 8, 0.5, rng);
  const auto s = max_fooling_set(m, Deadline::after(0.0));
  EXPECT_TRUE(is_fooling_set(m, s));  // greedy fallback is still valid
}

}  // namespace
}  // namespace ebmf
