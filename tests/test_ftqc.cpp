// Tests for the FTQC tensor structure (paper §V): product partitions,
// Watson's bounds, the surface-code patterns, and the qLDPC conjecture's
// statistical backdrop.

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/bounds.h"
#include "core/fooling.h"
#include "ftqc/patterns.h"
#include "ftqc/tensor.h"
#include "ftqc/two_level.h"
#include "support/rng.h"

namespace ebmf::ftqc {
namespace {

TEST(Kron, BitVecDefinition) {
  const auto a = BitVec::from_string("101");
  const auto b = BitVec::from_string("10");
  EXPECT_EQ(kron(a, b).to_string(), "100010");
}

TEST(Kron, EmptyFactors) {
  const auto a = BitVec::from_string("11");
  const BitVec zero(2);
  EXPECT_TRUE(kron(a, zero).none());
  EXPECT_EQ(kron(a, zero).size(), 4u);
}

TEST(Kron, RectangleCellCountMultiplies) {
  const Rectangle r1{BitVec::from_string("110"), BitVec::from_string("101")};
  const Rectangle r2{BitVec::from_string("01"), BitVec::from_string("11")};
  const auto k = kron(r1, r2);
  EXPECT_EQ(k.cell_count(), r1.cell_count() * r2.cell_count());
}

TEST(TensorPartition, ValidOnProductMatrix) {
  Rng rng(66);
  for (int t = 0; t < 10; ++t) {
    const auto a = BinaryMatrix::random(3, 3, 0.5, rng);
    const auto b = BinaryMatrix::random(2, 4, 0.5, rng);
    if (a.is_zero() || b.is_zero()) continue;
    const auto pa = brute_force_ebmf(a);
    const auto pb = brute_force_ebmf(b);
    ASSERT_TRUE(pa && pb);
    const auto product = tensor_partition(pa->partition, pb->partition);
    const auto big = BinaryMatrix::kron(a, b);
    const auto v = validate_partition(big, product);
    EXPECT_TRUE(v.ok) << v.reason;
    EXPECT_EQ(product.size(), pa->partition.size() * pb->partition.size());
  }
}

TEST(TensorPartition, UpperBoundRespectsBruteForce) {
  // r_B(A (x) B) <= r_B(A) r_B(B); check against brute force on tiny cases.
  Rng rng(67);
  for (int t = 0; t < 6; ++t) {
    const auto a = BinaryMatrix::random(2, 3, 0.6, rng);
    const auto b = BinaryMatrix::random(2, 2, 0.6, rng);
    if (a.is_zero() || b.is_zero()) continue;
    const auto ra = brute_force_ebmf(a);
    const auto rb = brute_force_ebmf(b);
    const auto big = BinaryMatrix::kron(a, b);
    const auto rbig = brute_force_ebmf(big);
    ASSERT_TRUE(ra && rb && rbig);
    EXPECT_LE(rbig->binary_rank, ra->binary_rank * rb->binary_rank);
    // Watson's Eq. 5 from below.
    const auto phi_a = max_fooling_set(a).size();
    const auto phi_b = max_fooling_set(b).size();
    EXPECT_GE(rbig->binary_rank,
              watson_lower_bound(ra->binary_rank, phi_a, rb->binary_rank,
                                 phi_b));
  }
}

TEST(Patterns, TransversalPatchIsOneRectangle) {
  const auto m = transversal_patch(5);
  EXPECT_EQ(m.ones_count(), 25u);
  EXPECT_EQ(real_rank(m), 1u);
  EXPECT_EQ(max_fooling_set(m).size(), 1u);
}

TEST(Patterns, CheckerboardProperties) {
  const auto m = checkerboard_patch(4, 0);
  EXPECT_EQ(m.ones_count(), 8u);
  const auto m1 = checkerboard_patch(4, 1);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_NE(m.test(i, j), m1.test(i, j));
  // Checkerboard has exactly 2 distinct nonzero rows -> r_B <= 2.
  EXPECT_EQ(trivial_upper_bound(m), 2u);
  EXPECT_EQ(real_rank(m), 2u);
}

TEST(Patterns, BoundaryRowPatch) {
  const auto m = boundary_row_patch(4, 2);
  EXPECT_EQ(m.ones_count(), 4u);
  EXPECT_TRUE(m.test(2, 0));
  EXPECT_FALSE(m.test(0, 0));
  EXPECT_EQ(real_rank(m), 1u);
  EXPECT_THROW((void)boundary_row_patch(3, 3), ContractViolation);
}

TEST(TwoLevel, TransversalPhysicalIsOptimalByLogicalAlone) {
  // Paper §V: when M is all-ones, phi(M) = r_B(M) = 1, so the logical
  // partition is provably optimal for the tensor problem.
  Rng rng(68);
  const auto logical = logical_pattern(3, 3, 0.6, rng);
  if (logical.is_zero()) GTEST_SKIP();
  const auto physical = transversal_patch(3);
  const auto r = solve_two_level(logical, physical);
  EXPECT_EQ(r.phi_physical, 1u);
  ASSERT_TRUE(r.logical.proven_optimal());
  EXPECT_EQ(r.upper_bound, r.logical.depth());
  EXPECT_TRUE(r.certified_optimal());
  // The product partition really is a partition of the tensor pattern.
  const auto big = BinaryMatrix::kron(logical, physical);
  EXPECT_TRUE(validate_partition(big, r.product_partition).ok);
}

TEST(TwoLevel, BoundsBracketAndWitnessValid) {
  Rng rng(69);
  const auto logical = logical_pattern(3, 4, 0.5, rng);
  const auto physical = checkerboard_patch(3, 0);
  if (logical.is_zero()) GTEST_SKIP();
  const auto r = solve_two_level(logical, physical);
  EXPECT_LE(r.lower_bound, r.upper_bound);
  const auto big = BinaryMatrix::kron(logical, physical);
  EXPECT_TRUE(validate_partition(big, r.product_partition).ok);
}

TEST(Qldpc, WideBlocksUsuallyFullRank) {
  // Backdrop of the paper's §V conjecture: at fixed occupancy, wide block
  // matrices are full-rank (row addressing optimal) far more often than
  // square ones.
  Rng rng(70);
  const int trials = 30;
  int full_wide = 0;
  int full_square = 0;
  for (int t = 0; t < trials; ++t) {
    const auto wide = qldpc_block_pattern(10, 30, 0.3, rng);
    const auto square = qldpc_block_pattern(10, 10, 0.3, rng);
    if (real_rank(wide) == 10) ++full_wide;
    if (real_rank(square) == 10) ++full_square;
  }
  EXPECT_GE(full_wide, full_square);
  EXPECT_GE(full_wide, trials * 9 / 10);
}

}  // namespace
}  // namespace ebmf::ftqc
