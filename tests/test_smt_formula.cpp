// Tests for the Eq.-4 label formula: both CNF lowerings must decide
// "r_B(M) <= b" exactly, agree with brute force, and extract valid
// partitions.

#include "smt/label_formula.h"

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/bounds.h"
#include "sat/brute.h"
#include "support/rng.h"

namespace ebmf::smt {
namespace {

sat::SolveResult decide(const BinaryMatrix& m, std::size_t b,
                        LabelEncoding enc, bool sym = true) {
  EncoderOptions opt;
  opt.encoding = enc;
  opt.symmetry_breaking = sym;
  LabelFormula f(m, b, opt);
  return f.solve();
}

class EncodingTest : public ::testing::TestWithParam<LabelEncoding> {};

TEST_P(EncodingTest, SingleRectangleMatrix) {
  const auto m = BinaryMatrix::parse("111;111");
  EXPECT_EQ(decide(m, 1, GetParam()), sat::SolveResult::Sat);
}

TEST_P(EncodingTest, DiagonalNeedsN) {
  BinaryMatrix m(4, 4);
  for (std::size_t i = 0; i < 4; ++i) m.set(i, i);
  EXPECT_EQ(decide(m, 4, GetParam()), sat::SolveResult::Sat);
  EXPECT_EQ(decide(m, 3, GetParam()), sat::SolveResult::Unsat);
}

TEST_P(EncodingTest, Eq2MatrixNeedsThree) {
  // Paper Eq. 2: fooling bound 2, but r_B = 3.
  const auto m = BinaryMatrix::parse("110;011;111");
  EXPECT_EQ(decide(m, 3, GetParam()), sat::SolveResult::Sat);
  EXPECT_EQ(decide(m, 2, GetParam()), sat::SolveResult::Unsat);
}

TEST_P(EncodingTest, ComplementIdentityThree) {
  // §II example: the GF(2)-style 2-term factorization is NOT a valid EBMF
  // (the real sum hits 2), so 2 rectangles are impossible; 3 suffice
  // ({0,1}×{2}, {1,2}×{0}, {0,2}×{1}).
  const auto m = BinaryMatrix::parse("011;101;110");
  EXPECT_EQ(real_rank(m), 3u);
  EXPECT_EQ(decide(m, 3, GetParam()), sat::SolveResult::Sat);
  EXPECT_EQ(decide(m, 2, GetParam()), sat::SolveResult::Unsat);
}

TEST_P(EncodingTest, PaperFig1bFiveRectangles) {
  const auto m = BinaryMatrix::parse(
      "101100;010011;101010;010101;111000;000111");
  EXPECT_EQ(decide(m, 5, GetParam()), sat::SolveResult::Sat);
  EXPECT_EQ(decide(m, 4, GetParam()), sat::SolveResult::Unsat);
}

TEST_P(EncodingTest, ExtractedPartitionIsValidAndSmall) {
  const auto m = BinaryMatrix::parse("1100;1110;0011;0011");
  EncoderOptions opt;
  opt.encoding = GetParam();
  LabelFormula f(m, 4, opt);
  ASSERT_EQ(f.solve(), sat::SolveResult::Sat);
  const auto p = f.extract_partition();
  EXPECT_LE(p.size(), 4u);
  const auto v = validate_partition(m, p);
  EXPECT_TRUE(v.ok) << v.reason;
}

TEST_P(EncodingTest, NarrowingWalksDownToOptimum) {
  const auto m = BinaryMatrix::parse("1100;1110;0011;0011");
  const auto brute = brute_force_ebmf(m);
  ASSERT_TRUE(brute.has_value());
  EncoderOptions opt;
  opt.encoding = GetParam();
  LabelFormula f(m, 4, opt);
  std::size_t best = 5;
  while (f.solve() == sat::SolveResult::Sat) {
    const auto p = f.extract_partition();
    EXPECT_TRUE(validate_partition(m, p).ok);
    best = p.size();
    if (best == 1) break;
    f.narrow(best - 1);
  }
  EXPECT_EQ(best, brute->binary_rank);
}

TEST_P(EncodingTest, StatsPopulated) {
  const auto m = BinaryMatrix::parse("1100;1110;0011;0011");
  EncoderOptions opt;
  opt.encoding = GetParam();
  LabelFormula f(m, 3, opt);
  EXPECT_EQ(f.stats().cells, m.ones_count());
  EXPECT_GT(f.stats().variables, 0u);
  EXPECT_GT(f.stats().clauses, 0u);
  EXPECT_GT(f.stats().neq_pairs + f.stats().implication_pairs, 0u);
}

TEST_P(EncodingTest, SymmetryBreakingPreservesAnswers) {
  Rng rng(12121);
  for (int t = 0; t < 10; ++t) {
    const auto m = BinaryMatrix::random(4, 5, 0.5, rng);
    if (m.is_zero()) continue;
    const auto ub = trivial_upper_bound(m);
    for (std::size_t b = 1; b <= ub; ++b) {
      const auto with = decide(m, b, GetParam(), true);
      const auto without = decide(m, b, GetParam(), false);
      EXPECT_EQ(with, without) << "b=" << b << "\n" << m.to_string();
    }
  }
}

TEST_P(EncodingTest, AgreesWithBruteForceAcrossAllBounds) {
  Rng rng(808);
  for (int t = 0; t < 12; ++t) {
    const auto m = BinaryMatrix::random(4, 4, 0.4 + 0.04 * t, rng);
    if (m.is_zero()) continue;
    const auto brute = brute_force_ebmf(m);
    ASSERT_TRUE(brute.has_value());
    const auto ub = trivial_upper_bound(m);
    for (std::size_t b = 1; b <= ub; ++b) {
      const auto expect = b >= brute->binary_rank ? sat::SolveResult::Sat
                                                  : sat::SolveResult::Unsat;
      EXPECT_EQ(decide(m, b, GetParam()), expect)
          << "b=" << b << " rB=" << brute->binary_rank << "\n"
          << m.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Encodings, EncodingTest,
                         ::testing::Values(LabelEncoding::OneHot,
                                           LabelEncoding::Binary));

TEST(LabelFormula, EncodingsAgreeOnRandomDecisions) {
  Rng rng(515);
  for (int t = 0; t < 15; ++t) {
    const auto m = BinaryMatrix::random(5, 5, 0.45, rng);
    if (m.is_zero()) continue;
    const auto ub = trivial_upper_bound(m);
    for (std::size_t b = 1; b <= ub; ++b) {
      EXPECT_EQ(decide(m, b, LabelEncoding::OneHot),
                decide(m, b, LabelEncoding::Binary))
          << "b=" << b << "\n" << m.to_string();
    }
  }
}

TEST(LabelFormula, RejectsZeroBoundAndEmptyMatrix) {
  const auto m = BinaryMatrix::parse("10;01");
  EXPECT_THROW((LabelFormula{m, 0}), ContractViolation);
  const BinaryMatrix z(2, 2);
  EXPECT_THROW((LabelFormula{z, 1}), ContractViolation);
}

TEST(LabelFormula, NarrowValidatesArguments) {
  const auto m = BinaryMatrix::parse("10;01");
  LabelFormula f(m, 2);
  EXPECT_THROW(f.narrow(2), ContractViolation);
  EXPECT_THROW(f.narrow(0), ContractViolation);
}

TEST(LabelFormula, ExportedCnfAgreesWithExternalSolver) {
  // The DIMACS snapshot must be equisatisfiable with the in-process
  // formula — checked by handing it to the independent DPLL engine.
  Rng rng(606);
  for (int t = 0; t < 8; ++t) {
    const auto m = BinaryMatrix::random(3, 4, 0.5, rng);
    if (m.is_zero()) continue;
    const auto ub = trivial_upper_bound(m);
    for (std::size_t b = 1; b <= ub; ++b) {
      LabelFormula f(m, b);
      const auto internal = f.solve();
      const auto external = sat::brute_force_sat(f.export_cnf());
      EXPECT_EQ(internal == sat::SolveResult::Sat, external.has_value())
          << "b=" << b << "\n" << m.to_string();
    }
  }
}

TEST(LabelFormula, ExportReflectsNarrowing) {
  BinaryMatrix m(3, 3);
  for (std::size_t i = 0; i < 3; ++i) m.set(i, i);  // diagonal: r_B = 3
  LabelFormula f(m, 3);
  ASSERT_EQ(f.solve(), sat::SolveResult::Sat);
  EXPECT_TRUE(sat::brute_force_sat(f.export_cnf()).has_value());
  f.narrow(2);  // now UNSAT
  ASSERT_EQ(f.solve(), sat::SolveResult::Unsat);
  EXPECT_FALSE(sat::brute_force_sat(f.export_cnf()).has_value());
}

TEST(LabelFormula, BudgetNeverFabricatesSat) {
  // 8x8 identity at bound 7 is UNSAT (pigeonhole on the diagonal); with a
  // one-conflict budget the solver may give up, but must never answer Sat.
  BinaryMatrix m(8, 8);
  for (std::size_t i = 0; i < 8; ++i) m.set(i, i);
  LabelFormula f(m, 7);
  sat::Budget budget;
  budget.max_conflicts = 1;
  const auto r = f.solve(budget);
  EXPECT_TRUE(r == sat::SolveResult::Unknown || r == sat::SolveResult::Unsat);
}

}  // namespace
}  // namespace ebmf::smt
