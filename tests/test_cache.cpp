// Tests for ebmf::cache and the engine's cache hook: hits on permuted
// duplicates, soundness guards, LRU eviction under a tiny budget, and
// concurrent hammering through the batch pool.

#include "service/cache.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "benchgen/generators.h"
#include "engine/thread_pool.h"
#include "ftqc/patterns.h"
#include "support/rng.h"

namespace ebmf::cache {
namespace {

engine::SolveReport toy_report(const BinaryMatrix& pattern) {
  // One rectangle per nonzero row: always a valid canonical-space answer.
  engine::SolveReport report;
  for (std::size_t i = 0; i < pattern.rows(); ++i) {
    if (pattern.row(i).none()) continue;
    BitVec rows(pattern.rows());
    rows.set(i);
    report.partition.push_back(Rectangle{rows, pattern.row(i)});
  }
  report.upper_bound = report.partition.size();
  report.status = engine::Status::Heuristic;
  return report;
}

TEST(Cache, InsertThenLookupHits) {
  ResultCache cache(ResultCache::Options{});
  const auto c = canon::canonicalize(BinaryMatrix::parse("110;011;111"));
  EXPECT_FALSE(cache.lookup(c.key, "auto", c.pattern).has_value());
  cache.insert(c.key, "auto", c.pattern, toy_report(c.pattern));
  const auto hit = cache.lookup(c.key, "auto", c.pattern);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->report.depth(), 3u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(Cache, StrategyAndPatternGuardAgainstFalseHits) {
  ResultCache cache(ResultCache::Options{});
  const auto c = canon::canonicalize(BinaryMatrix::parse("110;011;111"));
  cache.insert(c.key, "auto", c.pattern, toy_report(c.pattern));
  // Same key, different strategy string: must miss (collision guard).
  EXPECT_FALSE(cache.lookup(c.key, "sap", c.pattern).has_value());
  // Same key, different pattern: must miss.
  const auto other = canon::canonicalize(BinaryMatrix::parse("10;01"));
  EXPECT_FALSE(cache.lookup(c.key, "auto", other.pattern).has_value());
}

TEST(Cache, UpgradeOnlyReplacement) {
  ResultCache cache(ResultCache::Options{});
  const auto c = canon::canonicalize(BinaryMatrix::parse("110;011;111"));
  engine::SolveReport weak = toy_report(c.pattern);
  cache.insert(c.key, "auto", c.pattern, weak);
  engine::SolveReport strong = weak;
  strong.status = engine::Status::Optimal;
  strong.lower_bound = strong.depth();
  cache.insert(c.key, "auto", c.pattern, strong);
  auto hit = cache.lookup(c.key, "auto", c.pattern);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->report.status, engine::Status::Optimal);
  // Re-inserting the weak report must not downgrade the stored optimum.
  cache.insert(c.key, "auto", c.pattern, weak);
  hit = cache.lookup(c.key, "auto", c.pattern);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->report.status, engine::Status::Optimal);
}

TEST(Cache, EvictionUnderTinyBudget) {
  ResultCache::Options options;
  options.capacity_bytes = 4096;  // a couple of entries at most
  options.shards = 1;
  ResultCache cache(options);
  Rng rng(3);
  for (int i = 0; i < 32; ++i) {
    const auto c =
        canon::canonicalize(benchgen::random_matrix(8, 8, 0.4, rng));
    cache.insert(c.key, "auto", c.pattern, toy_report(c.pattern));
  }
  const auto stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LT(stats.entries, 32u);
  EXPECT_LE(stats.bytes, 2 * options.capacity_bytes);
}

TEST(EngineCache, PermutedDuplicateIsAnsweredFromCache) {
  // The acceptance scenario: a row/col-permuted repeat of a solved pattern
  // comes back with cache_hit=true and an identically-valid partition.
  engine::Engine engine;
  engine.set_cache(ResultCache::with_capacity_mb(8));
  const BinaryMatrix first = ftqc::boundary_row_patch(9, 1);
  const BinaryMatrix second = ftqc::boundary_row_patch(9, 6);

  const auto cold = engine.solve(engine::SolveRequest::dense(first, "auto"));
  ASSERT_NE(cold.find_telemetry("cache_hit"), nullptr);
  EXPECT_EQ(*cold.find_telemetry("cache_hit"), "false");
  EXPECT_TRUE(validate_partition(first, cold.partition).ok);

  const auto warm = engine.solve(engine::SolveRequest::dense(second, "auto"));
  ASSERT_NE(warm.find_telemetry("cache_hit"), nullptr);
  EXPECT_EQ(*warm.find_telemetry("cache_hit"), "true");
  EXPECT_TRUE(validate_partition(second, warm.partition).ok);
  EXPECT_EQ(warm.depth(), cold.depth());
  EXPECT_EQ(warm.status, cold.status);
  EXPECT_EQ(warm.lower_bound, cold.lower_bound);
  EXPECT_GE(engine.cache()->stats().hits, 1u);
}

TEST(EngineCache, CachedCertificateStaysOptimal) {
  engine::Engine engine;
  engine.set_cache(ResultCache::with_capacity_mb(8));
  const BinaryMatrix eq2 = BinaryMatrix::parse("110;011;111");
  const auto cold = engine.solve(engine::SolveRequest::dense(eq2, "sap"));
  EXPECT_TRUE(cold.proven_optimal());
  const auto warm = engine.solve(engine::SolveRequest::dense(eq2, "sap"));
  EXPECT_TRUE(warm.proven_optimal());
  EXPECT_EQ(*warm.find_telemetry("cache_hit"), "true");
  EXPECT_EQ(warm.depth(), 3u);
}

TEST(EngineCache, DifferentStrategiesDoNotShareEntries) {
  engine::Engine engine;
  engine.set_cache(ResultCache::with_capacity_mb(8));
  const BinaryMatrix eq2 = BinaryMatrix::parse("110;011;111");
  (void)engine.solve(engine::SolveRequest::dense(eq2, "heuristic"));
  const auto sap = engine.solve(engine::SolveRequest::dense(eq2, "sap"));
  EXPECT_EQ(*sap.find_telemetry("cache_hit"), "false");
  EXPECT_EQ(sap.strategy, "sap");
}

TEST(EngineCache, MaskedRequestsBypassTheCache) {
  engine::Engine engine;
  engine.set_cache(ResultCache::with_capacity_mb(8));
  const auto masked = completion::MaskedMatrix::parse("1*;*1");
  const auto report =
      engine.solve(engine::SolveRequest::with_mask(masked, "completion"));
  EXPECT_EQ(report.find_telemetry("cache_hit"), nullptr);
  EXPECT_EQ(engine.cache()->stats().misses, 0u);
}

TEST(EngineCache, SolveBatchSharesTheCacheAcrossWorkers) {
  engine::Engine engine;
  engine.set_cache(ResultCache::with_capacity_mb(8));
  // 24 requests over only 3 distinct canonical patterns.
  std::vector<engine::SolveRequest> requests;
  for (int i = 0; i < 24; ++i) {
    auto request = engine::SolveRequest::dense(
        ftqc::boundary_row_patch(11, static_cast<std::size_t>(i) % 11),
        "auto");
    request.label = "req-" + std::to_string(i);
    requests.push_back(std::move(request));
  }
  requests.push_back(
      engine::SolveRequest::dense(ftqc::checkerboard_patch(8, 0), "auto"));
  requests.push_back(
      engine::SolveRequest::dense(ftqc::checkerboard_patch(8, 1), "auto"));
  const auto reports = engine.solve_batch(requests, 8);
  ASSERT_EQ(reports.size(), requests.size());
  for (std::size_t i = 0; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i].find_telemetry("error"), nullptr) << i;
    EXPECT_FALSE(reports[i].partition.empty()) << i;
  }
  const auto stats = engine.cache()->stats();
  // Racing workers may both miss the same fresh key, but far fewer than
  // one miss per request must remain once the cache warms.
  EXPECT_GE(stats.hits + stats.misses, requests.size());
  EXPECT_GE(stats.hits, requests.size() / 2);
}

TEST(EngineCache, BoundedEntryUpgradesUnderABiggerBudget) {
  // A Bounded entry is a budget-cut search; a request that can afford
  // meaningfully more time than the stored attempt spent must re-solve
  // (and upgrade the entry) instead of being shadowed by the stale bound.
  engine::SolverRegistry registry = engine::SolverRegistry::with_builtins();
  registry.add("probe", "bounded when rushed, optimal with time",
               [](const engine::SolveRequest& request) {
                 std::this_thread::sleep_for(std::chrono::milliseconds(30));
                 engine::SolveReport report = [&] {
                   engine::SolveReport r;
                   const BinaryMatrix& m = request.pattern();
                   for (std::size_t i = 0; i < m.rows(); ++i) {
                     if (m.row(i).none()) continue;
                     BitVec rows(m.rows());
                     rows.set(i);
                     r.partition.push_back(Rectangle{rows, m.row(i)});
                   }
                   return r;
                 }();
                 const bool generous =
                     request.budget.deadline.remaining_seconds() > 5.0;
                 report.status = generous ? engine::Status::Optimal
                                          : engine::Status::Bounded;
                 report.lower_bound = generous ? report.partition.size() : 1;
                 return report;
               });
  engine::Engine engine(std::move(registry));
  engine.set_cache(ResultCache::with_capacity_mb(4));
  const BinaryMatrix eq2 = BinaryMatrix::parse("110;011;111");
  const auto tight_request = [&]() {
    auto request = engine::SolveRequest::dense(eq2, "probe");
    request.budget = Budget::after(0.05);
    return request;
  };

  const auto first = engine.solve(tight_request());
  EXPECT_EQ(first.status, engine::Status::Bounded);
  EXPECT_EQ(*first.find_telemetry("cache_hit"), "false");

  // Same tight budget: cannot afford a longer attempt, serves the hit.
  const auto hit = engine.solve(tight_request());
  EXPECT_EQ(*hit.find_telemetry("cache_hit"), "true");
  EXPECT_EQ(hit.status, engine::Status::Bounded);

  // A generous budget re-solves and upgrades the entry.
  auto generous = engine::SolveRequest::dense(eq2, "probe");
  generous.budget = Budget::after(30.0);
  const auto upgraded = engine.solve(generous);
  EXPECT_EQ(*upgraded.find_telemetry("cache_hit"), "false");
  ASSERT_NE(upgraded.find_telemetry("cache.upgrade"), nullptr);
  EXPECT_EQ(upgraded.status, engine::Status::Optimal);

  // The optimal certificate is final: even rushed requests now hit it.
  const auto final_hit = engine.solve(tight_request());
  EXPECT_EQ(*final_hit.find_telemetry("cache_hit"), "true");
  EXPECT_EQ(final_hit.status, engine::Status::Optimal);
}

TEST(EngineCache, ConcurrentHammeringStaysConsistent) {
  engine::Engine engine;
  engine.set_cache(ResultCache::with_capacity_mb(1));
  Rng rng(17);
  std::vector<BinaryMatrix> patterns;
  for (int i = 0; i < 6; ++i)
    patterns.push_back(benchgen::random_matrix(7, 7, 0.35, rng));
  std::atomic<int> failures{0};
  engine::parallel_for(64, 8, [&](std::size_t i) {
    const BinaryMatrix& m = patterns[i % patterns.size()];
    auto request = engine::SolveRequest::dense(m, "auto");
    request.trials = 8;
    const auto report = engine.solve(request);
    if (!validate_partition(m, report.partition).ok) failures.fetch_add(1);
    if (report.find_telemetry("cache_hit") == nullptr) failures.fetch_add(1);
  });
  EXPECT_EQ(failures.load(), 0);
  const auto stats = engine.cache()->stats();
  EXPECT_GE(stats.hits, 1u);
  EXPECT_EQ(stats.hits + stats.misses, 64u);
}

// ---- persistence ----------------------------------------------------------

namespace {

/// A scratch snapshot path unique to this test process.
std::string snapshot_path(const char* name) {
  return ::testing::TempDir() + "ebmf_cache_" + name + "_" +
         std::to_string(::getpid()) + ".jsonl";
}

}  // namespace

TEST(CachePersistence, SaveThenLoadRoundTripsEntries) {
  const std::string path = snapshot_path("roundtrip");
  const auto a = canon::canonicalize(BinaryMatrix::parse("110;011;111"));
  const auto b = canon::canonicalize(BinaryMatrix::parse("1010;0101"));
  {
    ResultCache cache(ResultCache::Options{});
    auto optimal = toy_report(a.pattern);
    optimal.status = engine::Status::Optimal;
    optimal.lower_bound = optimal.upper_bound;
    optimal.add_telemetry("sat.conflicts", "12");
    cache.insert(a.key.mixed_with("auto"), "auto", a.pattern, optimal);
    cache.insert(b.key.mixed_with("sap"), "sap", b.pattern,
                 toy_report(b.pattern));
    std::string error;
    ASSERT_TRUE(cache.save_file(path, &error)) << error;
  }
  ResultCache reloaded(ResultCache::Options{});
  std::string warning;
  EXPECT_EQ(reloaded.load_file(path, &warning), 2u);
  EXPECT_TRUE(warning.empty()) << warning;

  const auto hit = reloaded.lookup(a.key.mixed_with("auto"), "auto",
                                   a.pattern);
  ASSERT_TRUE(hit.has_value());
  // The certificate survived the round trip intact.
  EXPECT_EQ(hit->report.status, engine::Status::Optimal);
  EXPECT_EQ(hit->report.depth(), 3u);
  EXPECT_TRUE(validate_partition(a.pattern, hit->report.partition).ok);
  ASSERT_NE(hit->report.find_telemetry("sat.conflicts"), nullptr);
  EXPECT_TRUE(reloaded
                  .lookup(b.key.mixed_with("sap"), "sap", b.pattern)
                  .has_value());
  std::remove(path.c_str());
}

TEST(CachePersistence, ReloadedEntriesServeTheEngineWithCertificates) {
  const std::string path = snapshot_path("engine");
  const BinaryMatrix pattern = BinaryMatrix::parse("1110;0111;1111");
  {
    engine::Engine engine;
    engine.set_cache(ResultCache::with_capacity_mb(8));
    const auto cold =
        engine.solve(engine::SolveRequest::dense(pattern, "auto"));
    EXPECT_EQ(cold.status, engine::Status::Optimal);
    std::string error;
    ASSERT_TRUE(engine.cache()->save_file(path, &error)) << error;
  }
  engine::Engine restarted;
  restarted.set_cache(ResultCache::with_capacity_mb(8));
  std::string warning;
  ASSERT_GE(restarted.cache()->load_file(path, &warning), 1u);
  // A *column-permuted* duplicate after the "restart" is a warm hit with
  // the optimality certificate intact.
  const auto warm = restarted.solve(
      engine::SolveRequest::dense(BinaryMatrix::parse("1101;1011;1111"),
                                  "auto"));
  const std::string* hit = warm.find_telemetry("cache_hit");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "true");
  EXPECT_EQ(warm.status, engine::Status::Optimal);
  std::remove(path.c_str());
}

TEST(CachePersistence, MissingCorruptAndMismatchedFilesAreIgnored) {
  ResultCache cache(ResultCache::Options{});
  std::string warning;
  // Missing file: cold start with a warning, no throw.
  EXPECT_EQ(cache.load_file(snapshot_path("missing"), &warning), 0u);
  EXPECT_FALSE(warning.empty());

  // Not an ebmf snapshot at all.
  const std::string garbage = snapshot_path("garbage");
  {
    std::ofstream out(garbage);
    out << "definitely not json\n";
  }
  warning.clear();
  EXPECT_EQ(cache.load_file(garbage, &warning), 0u);
  EXPECT_NE(warning.find("ignored"), std::string::npos);
  std::remove(garbage.c_str());

  // Future version: whole file ignored.
  const std::string future = snapshot_path("future");
  {
    std::ofstream out(future);
    out << "{\"ebmf_cache\":999}\n";
  }
  warning.clear();
  EXPECT_EQ(cache.load_file(future, &warning), 0u);
  EXPECT_NE(warning.find("version"), std::string::npos);
  std::remove(future.c_str());
}

TEST(CachePersistence, CorruptEntriesAreSkippedNotServed) {
  const std::string path = snapshot_path("tampered");
  const auto c = canon::canonicalize(BinaryMatrix::parse("110;011;111"));
  {
    ResultCache cache(ResultCache::Options{});
    cache.insert(c.key.mixed_with("auto"), "auto", c.pattern,
                 toy_report(c.pattern));
    std::string error;
    ASSERT_TRUE(cache.save_file(path, &error)) << error;
  }
  // Append one truncated line and one entry whose partition does not
  // cover the pattern (an invalid certificate).
  {
    std::ofstream out(path, std::ios::app);
    out << "{\"cache_key\":\"zz\"\n";
    out << "{\"cache_key\":\"00000000000000000000000000000001\","
           "\"strategy\":\"auto\",\"pattern\":\"11;11\","
           "\"report\":{\"status\":\"optimal\",\"lower_bound\":1,"
           "\"upper_bound\":1,\"partition\":[{\"rows\":[0],\"cols\":[0]}]}}"
        << "\n";
  }
  ResultCache reloaded(ResultCache::Options{});
  std::string warning;
  EXPECT_EQ(reloaded.load_file(path, &warning), 1u);  // only the good one
  EXPECT_NE(warning.find("skipped 2"), std::string::npos);
  EXPECT_TRUE(reloaded
                  .lookup(c.key.mixed_with("auto"), "auto", c.pattern)
                  .has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ebmf::cache
