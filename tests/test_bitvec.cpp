// Unit and property tests for ebmf::BitVec, cross-checked against a
// std::vector<bool> reference model.

#include "support/bitvec.h"

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "support/rng.h"

namespace ebmf {
namespace {

TEST(BitVec, DefaultIsEmpty) {
  BitVec v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.none());
  EXPECT_EQ(v.count(), 0u);
  EXPECT_EQ(v.find_first(), 0u);
}

TEST(BitVec, ConstructedZeroed) {
  BitVec v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_TRUE(v.none());
  for (std::size_t i = 0; i < 130; ++i) EXPECT_FALSE(v.test(i));
}

TEST(BitVec, SetTestReset) {
  BitVec v(70);
  v.set(0);
  v.set(63);
  v.set(64);
  v.set(69);
  EXPECT_TRUE(v.test(0));
  EXPECT_TRUE(v.test(63));
  EXPECT_TRUE(v.test(64));
  EXPECT_TRUE(v.test(69));
  EXPECT_FALSE(v.test(1));
  EXPECT_EQ(v.count(), 4u);
  v.reset(63);
  EXPECT_FALSE(v.test(63));
  EXPECT_EQ(v.count(), 3u);
}

TEST(BitVec, FromToStringRoundTrip) {
  const std::string s = "101100111010001";
  BitVec v = BitVec::from_string(s);
  EXPECT_EQ(v.to_string(), s);
  EXPECT_EQ(v.count(), 8u);
}

TEST(BitVec, FromStringRejectsBadChars) {
  EXPECT_THROW(BitVec::from_string("10a"), ContractViolation);
}

TEST(BitVec, FillRespectsTrailingBits) {
  BitVec v(67);
  v.fill();
  EXPECT_EQ(v.count(), 67u);
  BitVec w(67);
  w.fill();
  EXPECT_EQ(v, w);
}

TEST(BitVec, FindFirstNext) {
  BitVec v = BitVec::from_string("010010000001");
  EXPECT_EQ(v.find_first(), 1u);
  EXPECT_EQ(v.find_next(1), 4u);
  EXPECT_EQ(v.find_next(4), 11u);
  EXPECT_EQ(v.find_next(11), v.size());
}

TEST(BitVec, FindAcrossWordBoundary) {
  BitVec v(200);
  v.set(63);
  v.set(64);
  v.set(127);
  v.set(199);
  EXPECT_EQ(v.find_first(), 63u);
  EXPECT_EQ(v.find_next(63), 64u);
  EXPECT_EQ(v.find_next(64), 127u);
  EXPECT_EQ(v.find_next(127), 199u);
  EXPECT_EQ(v.find_next(199), 200u);
}

TEST(BitVec, OnesListsAscending) {
  BitVec v = BitVec::from_string("1001001");
  const std::vector<std::size_t> expected{0, 3, 6};
  EXPECT_EQ(v.ones(), expected);
}

TEST(BitVec, SubsetAndDisjoint) {
  const BitVec a = BitVec::from_string("110100");
  const BitVec b = BitVec::from_string("110110");
  const BitVec c = BitVec::from_string("001001");
  EXPECT_TRUE(a.subset_of(b));
  EXPECT_FALSE(b.subset_of(a));
  EXPECT_TRUE(a.disjoint(c));
  EXPECT_FALSE(a.disjoint(b));
  EXPECT_TRUE(a.intersects(b));
  BitVec empty(6);
  EXPECT_TRUE(empty.subset_of(a));
  EXPECT_TRUE(empty.disjoint(a));
}

TEST(BitVec, SizeMismatchThrows) {
  BitVec a(5);
  BitVec b(6);
  EXPECT_THROW((void)a.subset_of(b), ContractViolation);
  EXPECT_THROW((void)a.disjoint(b), ContractViolation);
  EXPECT_THROW(a |= b, ContractViolation);
}

TEST(BitVec, SetOperations) {
  const BitVec a = BitVec::from_string("1100");
  const BitVec b = BitVec::from_string("1010");
  EXPECT_EQ((a | b).to_string(), "1110");
  EXPECT_EQ((a & b).to_string(), "1000");
  EXPECT_EQ((a ^ b).to_string(), "0110");
  EXPECT_EQ((a - b).to_string(), "0100");
}

TEST(BitVec, OrderingIsTotal) {
  const BitVec a = BitVec::from_string("100");
  const BitVec b = BitVec::from_string("010");
  EXPECT_TRUE(a < b || b < a);
  EXPECT_FALSE(a < a);
}

TEST(BitVec, HashDistinguishesAndAgreesOnEqual) {
  const BitVec a = BitVec::from_string("10110");
  const BitVec b = BitVec::from_string("10110");
  const BitVec c = BitVec::from_string("10111");
  EXPECT_EQ(a.hash(), b.hash());
  // Not guaranteed in theory, but catastrophic if violated in practice:
  EXPECT_NE(a.hash(), c.hash());
  std::unordered_set<BitVec, BitVecHash> set{a, b, c};
  EXPECT_EQ(set.size(), 2u);
}

// ---- Property tests vs a vector<bool> reference model ------------------

class BitVecProperty : public ::testing::TestWithParam<std::size_t> {};

using Model = std::vector<bool>;

Model random_model(std::size_t n, Rng& rng) {
  Model m(n);
  for (std::size_t i = 0; i < n; ++i) m[i] = rng.chance(0.5);
  return m;
}

BitVec to_bitvec(const Model& m) {
  BitVec v(m.size());
  for (std::size_t i = 0; i < m.size(); ++i)
    if (m[i]) v.set(i);
  return v;
}

TEST_P(BitVecProperty, OpsMatchReferenceModel) {
  const std::size_t n = GetParam();
  Rng rng(n * 977 + 13);
  for (int iteration = 0; iteration < 20; ++iteration) {
    const Model ma = random_model(n, rng);
    const Model mb = random_model(n, rng);
    const BitVec a = to_bitvec(ma);
    const BitVec b = to_bitvec(mb);

    std::size_t count = 0;
    bool subset = true;
    bool disjoint = true;
    Model m_or(n), m_and(n), m_xor(n), m_diff(n);
    for (std::size_t i = 0; i < n; ++i) {
      count += ma[i] ? 1 : 0;
      if (ma[i] && !mb[i]) subset = false;
      if (ma[i] && mb[i]) disjoint = false;
      m_or[i] = ma[i] || mb[i];
      m_and[i] = ma[i] && mb[i];
      m_xor[i] = ma[i] != mb[i];
      m_diff[i] = ma[i] && !mb[i];
    }
    EXPECT_EQ(a.count(), count);
    EXPECT_EQ(a.subset_of(b), subset);
    EXPECT_EQ(a.disjoint(b), disjoint);
    EXPECT_EQ(a | b, to_bitvec(m_or));
    EXPECT_EQ(a & b, to_bitvec(m_and));
    EXPECT_EQ(a ^ b, to_bitvec(m_xor));
    EXPECT_EQ(a - b, to_bitvec(m_diff));

    // Iteration visits exactly the set bits, ascending.
    std::vector<std::size_t> visited;
    for (std::size_t i = a.find_first(); i < n; i = a.find_next(i))
      visited.push_back(i);
    EXPECT_EQ(visited, a.ones());
    EXPECT_EQ(visited.size(), count);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitVecProperty,
                         ::testing::Values(1, 2, 7, 63, 64, 65, 100, 128, 129,
                                           1000));

}  // namespace
}  // namespace ebmf
