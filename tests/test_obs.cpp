// Tests for ebmf::obs: histogram quantiles against a sorted reference,
// concurrent counter recording through the lock-striped registry, trace
// context wire round-trips (including legacy no-trace requests), span-tree
// assembly across a real serve+route pair, and trace-store ring eviction.

#include "obs/metrics.h"
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "io/json.h"
#include "io/request_io.h"
#include "router/router.h"
#include "service/service.h"

namespace ebmf::obs {
namespace {

// ---- histogram -------------------------------------------------------------

TEST(Histogram, SmallValuesAreExact) {
  Histogram h;
  for (std::uint64_t v = 0; v < Histogram::kSubCount; ++v) h.record(v);
  // Values below kSubCount each get their own bucket: quantiles are exact.
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(1.0), Histogram::kSubCount - 1);
  EXPECT_EQ(h.count(), Histogram::kSubCount);
  EXPECT_EQ(h.max(), Histogram::kSubCount - 1);
}

TEST(Histogram, BucketIndexIsMonotoneAndBoundsContain) {
  std::size_t prev = 0;
  for (std::uint64_t v = 0; v < 1u << 14; ++v) {
    const std::size_t index = Histogram::bucket_index(v);
    ASSERT_GE(index, prev) << "bucket index not monotone at " << v;
    ASSERT_GE(Histogram::bucket_upper(index), v)
        << "upper bound below the value at " << v;
    prev = index;
  }
}

TEST(Histogram, QuantilesMatchSortedReferenceWithinBucketError) {
  std::mt19937_64 rng(2024);
  // Mixed magnitudes: the log-linear grid must hold its relative error
  // across octaves, not just in one range.
  std::vector<std::uint64_t> samples;
  Histogram h;
  for (int i = 0; i < 20000; ++i) {
    const int octave = static_cast<int>(rng() % 20);
    const std::uint64_t value = rng() % (1ull << octave);
    samples.push_back(value);
    h.record(value);
  }
  std::vector<std::uint64_t> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  for (const double q : {0.10, 0.50, 0.90, 0.99, 0.999}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    const std::uint64_t reference = sorted[rank == 0 ? 0 : rank - 1];
    const std::uint64_t estimate = h.quantile(q);
    // The estimate is the inclusive upper bound of the reference's bucket:
    // never below the true quantile, and above it by at most one sub-bucket
    // width (relative error <= 2^-kSubBits).
    EXPECT_GE(estimate, reference) << "q=" << q;
    const double ceiling =
        static_cast<double>(reference) *
            (1.0 + 1.0 / static_cast<double>(Histogram::kSubCount)) +
        1.0;
    EXPECT_LE(static_cast<double>(estimate), ceiling) << "q=" << q;
  }
  EXPECT_EQ(h.quantile(1.0), sorted.back());
  EXPECT_EQ(h.count(), samples.size());
}

TEST(Histogram, ConcurrentRecordLosesNothing) {
  Histogram h;
  constexpr int kThreads = 16;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i)
        h.record(static_cast<std::uint64_t>(t * kPerThread + i));
    });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(h.max(), static_cast<std::uint64_t>(kThreads * kPerThread - 1));
}

// ---- registry --------------------------------------------------------------

TEST(Registry, SixteenThreadsOneCounter) {
  Registry registry;
  constexpr int kThreads = 16;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&registry] {
      // Resolve inside the thread: the test covers concurrent resolve of
      // one name as well as concurrent recording.
      Counter* counter = registry.counter("test.concurrent.hits");
      for (int i = 0; i < kPerThread; ++i) counter->add(1);
    });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.counter("test.concurrent.hits")->value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Registry, StablePointersAndKindMismatch) {
  Registry registry;
  Counter* counter = registry.counter("test.series");
  EXPECT_EQ(registry.counter("test.series"), counter);
  // A name resolves to exactly one kind; asking for another returns null.
  EXPECT_EQ(registry.histogram("test.series"), nullptr);
  EXPECT_EQ(registry.gauge("test.series"), nullptr);
}

TEST(Registry, PrometheusExpositionShape) {
  Registry registry;
  registry.counter("tier.component.hits")->add(3);
  registry.histogram("tier.request.micros")->record(100);
  registry.histogram("tier.request.micros")->record(5000);
  const std::string text = prometheus_text(registry);
  EXPECT_NE(text.find("# TYPE ebmf_tier_component_hits counter"),
            std::string::npos);
  EXPECT_NE(text.find("ebmf_tier_component_hits 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ebmf_tier_request_micros histogram"),
            std::string::npos);
  EXPECT_NE(text.find("ebmf_tier_request_micros_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("ebmf_tier_request_micros_count 2"),
            std::string::npos);
  // Every line is either a comment or name{...} value — parsable as the
  // text exposition format.
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    if (!line.empty() && line[0] != '#') {
      const std::size_t space = line.rfind(' ');
      ASSERT_NE(space, std::string::npos) << line;
      ASSERT_EQ(line.rfind("ebmf_", 0), 0u) << line;
      char* parse_end = nullptr;
      std::strtod(line.c_str() + space + 1, &parse_end);
      ASSERT_EQ(*parse_end, '\0') << line;
    }
    start = end + 1;
  }
}

// ---- trace ids and wire round-trips ----------------------------------------

TEST(Trace, IdHexRoundTrips) {
  const TraceContext ctx = make_trace_context();
  EXPECT_TRUE(ctx.valid());
  const std::string hex = trace_id_hex(ctx.hi, ctx.lo);
  EXPECT_EQ(hex.size(), 32u);
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  EXPECT_TRUE(parse_trace_id(hex, &hi, &lo));
  EXPECT_EQ(hi, ctx.hi);
  EXPECT_EQ(lo, ctx.lo);
  EXPECT_FALSE(parse_trace_id("zz", &hi, &lo));

  const std::uint64_t span = new_span_id();
  std::uint64_t parsed = 0;
  EXPECT_TRUE(parse_span_id(span_id_hex(span), &parsed));
  EXPECT_EQ(parsed, span);
}

TEST(Trace, WireRequestRoundTripsContext) {
  io::WireRequest wire;
  wire.request =
      engine::SolveRequest::dense(BinaryMatrix::parse("10;01"), "auto");
  wire.has_trace = true;
  wire.trace = make_trace_context();
  wire.trace.parent_span = new_span_id();
  const std::string line = io::wire_request_json(wire);
  const io::WireRequest parsed = io::parse_wire_request(line);
  ASSERT_TRUE(parsed.has_trace);
  EXPECT_EQ(parsed.trace.hi, wire.trace.hi);
  EXPECT_EQ(parsed.trace.lo, wire.trace.lo);
  EXPECT_EQ(parsed.trace.parent_span, wire.trace.parent_span);
}

TEST(Trace, LegacyRequestsParseWithoutTrace) {
  const io::WireRequest parsed =
      io::parse_wire_request(R"({"pattern":"10;01"})");
  EXPECT_FALSE(parsed.has_trace);
  // And a malformed trace member is a protocol error, not a silent drop.
  EXPECT_THROW(io::parse_wire_request(
                   R"({"pattern":"10;01","trace":{"id":"nope"}})"),
               std::runtime_error);
}

// ---- trace store -----------------------------------------------------------

TEST(TraceStore, RingEvictsOldestAndBoundsSize) {
  TraceStore store(4);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    Span span;
    span.name = "root";
    span.span_id = i;
    span.start_us = i;
    span.dur_us = 5;
    store.add(0, i, {span});
  }
  EXPECT_EQ(store.size(), 4u);
  EXPECT_TRUE(store.find(0, 1).empty());   // evicted
  EXPECT_TRUE(store.find(0, 6).empty());   // evicted
  EXPECT_EQ(store.find(0, 7).size(), 1u);  // retained
  EXPECT_EQ(store.find(0, 10).size(), 1u);
  // Merging into a live trace does not grow the ring.
  Span extra;
  extra.name = "child";
  extra.span_id = 99;
  store.add(0, 10, {extra});
  EXPECT_EQ(store.size(), 4u);
  EXPECT_EQ(store.find(0, 10).size(), 2u);
  EXPECT_EQ(store.recent(2).size(), 2u);
  EXPECT_EQ(store.recent(2).front().spans, 2u);
}

// ---- cross-process span tree over a real serve + route pair ----------------

std::map<std::string, Span> spans_by_name(const io::json::Value& trace) {
  const io::json::Value* array = trace.find("spans");
  std::map<std::string, Span> out;
  if (array == nullptr || !array->is_array()) return out;
  for (std::size_t i = 0; i < array->size(); ++i) {
    const io::json::Value& item = array->at(i);
    Span span;
    span.name = item.find("name")->as_string();
    if (const io::json::Value* id = item.find("span");
        id != nullptr && id->is_string())
      parse_span_id(id->as_string(), &span.span_id);
    if (const io::json::Value* parent = item.find("parent");
        parent != nullptr && parent->is_string())
      parse_span_id(parent->as_string(), &span.parent_id);
    span.dur_us =
        static_cast<std::uint64_t>(item.find("dur_us")->as_number());
    out[span.name] = span;
  }
  return out;
}

TEST(Trace, SpanTreeAcrossServeAndRoute) {
  service::ServerOptions backend_options;
  backend_options.port = 0;
  backend_options.cache_mb = 8;
  service::Server backend(backend_options);
  backend.start();

  router::RouterOptions router_options;
  router_options.port = 0;
  router_options.l1_mb = 8;
  router_options.backends.push_back("127.0.0.1:" +
                                    std::to_string(backend.port()));
  router::Router router(router_options);
  router.start();

  service::Client client("127.0.0.1", router.port());
  const TraceContext ctx = make_trace_context();
  io::WireRequest wire;
  wire.request =
      engine::SolveRequest::dense(BinaryMatrix::parse("110;011;111"), "auto");
  wire.has_trace = true;
  wire.trace = ctx;
  const std::string reply =
      client.round_trip(io::wire_request_json(wire));
  const io::json::Value document = io::json::Value::parse(reply);
  ASSERT_EQ(document.find("error"), nullptr) << reply;

  const io::json::Value* trace = document.find("trace");
  ASSERT_NE(trace, nullptr) << reply;
  EXPECT_EQ(trace->find("id")->as_string(), trace_id_hex(ctx.hi, ctx.lo));
  const std::map<std::string, Span> spans = spans_by_name(*trace);

  // The acceptance bar: a traced router->backend request explains itself
  // with at least five named spans across both processes.
  ASSERT_GE(spans.size(), 5u);
  for (const char* name :
       {"router.request", "router.canon", "router.dispatch", "server.request",
        "server.queue", "engine.canon", "engine.solve", "engine.lift"})
    EXPECT_TRUE(spans.count(name) != 0) << "missing span " << name;

  // Parent links: the root has no parent; every other span's parent is in
  // the set (the tree is connected across the process boundary).
  const Span& root = spans.at("router.request");
  EXPECT_EQ(root.parent_id, 0u);
  std::map<std::uint64_t, const Span*> by_id;
  for (const auto& [name, span] : spans) by_id[span.span_id] = &span;
  for (const auto& [name, span] : spans) {
    if (span.span_id == root.span_id) continue;
    EXPECT_TRUE(by_id.count(span.parent_id) != 0)
        << name << " parents to an unknown span";
  }
  EXPECT_EQ(spans.at("server.request").parent_id,
            spans.at("router.dispatch").span_id);
  EXPECT_EQ(spans.at("engine.solve").parent_id,
            spans.at("server.request").span_id);

  // Durations nest: the root covers the dispatch, the dispatch covers the
  // backend's own request span (clock bases differ per process; durations
  // are the comparable quantity).
  EXPECT_GE(root.dur_us, spans.at("router.dispatch").dur_us);
  EXPECT_GE(spans.at("router.dispatch").dur_us,
            spans.at("server.request").dur_us);
  EXPECT_GE(spans.at("server.request").dur_us,
            spans.at("engine.solve").dur_us);

  // The completed trace is queryable from the router ring, and the reply's
  // assembled tree nests the backend spans under the dispatch span.
  const std::string tree_reply = client.round_trip(
      "{\"op\":\"trace\",\"id\":\"" + trace_id_hex(ctx.hi, ctx.lo) + "\"}");
  const io::json::Value tree_doc = io::json::Value::parse(tree_reply);
  ASSERT_EQ(tree_doc.find("error"), nullptr) << tree_reply;
  const io::json::Value* tree = tree_doc.find("tree");
  ASSERT_NE(tree, nullptr);
  ASSERT_TRUE(tree->is_array());
  ASSERT_GE(tree->size(), 1u);

  // {"op":"traces"} lists it.
  const std::string list_reply = client.round_trip(R"({"op":"traces"})");
  const io::json::Value list_doc = io::json::Value::parse(list_reply);
  const io::json::Value* traces = list_doc.find("traces");
  ASSERT_NE(traces, nullptr);
  ASSERT_TRUE(traces->is_array());
  bool found = false;
  for (std::size_t i = 0; i < traces->size(); ++i)
    if (traces->at(i).find("id")->as_string() == trace_id_hex(ctx.hi, ctx.lo))
      found = true;
  EXPECT_TRUE(found);

  // A legacy request on the same fleet stays trace-free.
  const std::string legacy =
      client.round_trip(R"({"pattern":"110;011;111"})");
  EXPECT_EQ(io::json::Value::parse(legacy).find("trace"), nullptr);

  // The metrics verb answers with a Prometheus body that saw the request.
  const std::string metrics_reply =
      client.round_trip(R"({"op":"metrics"})");
  const io::json::Value metrics_doc = io::json::Value::parse(metrics_reply);
  const io::json::Value* body = metrics_doc.find("body");
  ASSERT_NE(body, nullptr);
  EXPECT_NE(body->as_string().find("ebmf_router_requests"),
            std::string::npos);

  router.stop();
  backend.stop();
}

}  // namespace
}  // namespace ebmf::obs
