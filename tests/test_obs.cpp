// Tests for ebmf::obs: histogram quantiles against a sorted reference,
// concurrent counter recording through the lock-striped registry, trace
// context wire round-trips (including legacy no-trace requests), span-tree
// assembly across a real serve+route pair, and trace-store ring eviction.

#include "obs/events.h"
#include "obs/federate.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "support/logrotate.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "io/json.h"
#include "io/request_io.h"
#include "router/router.h"
#include "service/service.h"

namespace ebmf::obs {
namespace {

// ---- histogram -------------------------------------------------------------

TEST(Histogram, SmallValuesAreExact) {
  Histogram h;
  for (std::uint64_t v = 0; v < Histogram::kSubCount; ++v) h.record(v);
  // Values below kSubCount each get their own bucket: quantiles are exact.
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(1.0), Histogram::kSubCount - 1);
  EXPECT_EQ(h.count(), Histogram::kSubCount);
  EXPECT_EQ(h.max(), Histogram::kSubCount - 1);
}

TEST(Histogram, BucketIndexIsMonotoneAndBoundsContain) {
  std::size_t prev = 0;
  for (std::uint64_t v = 0; v < 1u << 14; ++v) {
    const std::size_t index = Histogram::bucket_index(v);
    ASSERT_GE(index, prev) << "bucket index not monotone at " << v;
    ASSERT_GE(Histogram::bucket_upper(index), v)
        << "upper bound below the value at " << v;
    prev = index;
  }
}

TEST(Histogram, QuantilesMatchSortedReferenceWithinBucketError) {
  std::mt19937_64 rng(2024);
  // Mixed magnitudes: the log-linear grid must hold its relative error
  // across octaves, not just in one range.
  std::vector<std::uint64_t> samples;
  Histogram h;
  for (int i = 0; i < 20000; ++i) {
    const int octave = static_cast<int>(rng() % 20);
    const std::uint64_t value = rng() % (1ull << octave);
    samples.push_back(value);
    h.record(value);
  }
  std::vector<std::uint64_t> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  for (const double q : {0.10, 0.50, 0.90, 0.99, 0.999}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    const std::uint64_t reference = sorted[rank == 0 ? 0 : rank - 1];
    const std::uint64_t estimate = h.quantile(q);
    // The estimate is the inclusive upper bound of the reference's bucket:
    // never below the true quantile, and above it by at most one sub-bucket
    // width (relative error <= 2^-kSubBits).
    EXPECT_GE(estimate, reference) << "q=" << q;
    const double ceiling =
        static_cast<double>(reference) *
            (1.0 + 1.0 / static_cast<double>(Histogram::kSubCount)) +
        1.0;
    EXPECT_LE(static_cast<double>(estimate), ceiling) << "q=" << q;
  }
  EXPECT_EQ(h.quantile(1.0), sorted.back());
  EXPECT_EQ(h.count(), samples.size());
}

TEST(Histogram, ConcurrentRecordLosesNothing) {
  Histogram h;
  constexpr int kThreads = 16;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i)
        h.record(static_cast<std::uint64_t>(t * kPerThread + i));
    });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(h.max(), static_cast<std::uint64_t>(kThreads * kPerThread - 1));
}

// ---- registry --------------------------------------------------------------

TEST(Registry, SixteenThreadsOneCounter) {
  Registry registry;
  constexpr int kThreads = 16;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&registry] {
      // Resolve inside the thread: the test covers concurrent resolve of
      // one name as well as concurrent recording.
      Counter* counter = registry.counter("test.concurrent.hits");
      for (int i = 0; i < kPerThread; ++i) counter->add(1);
    });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.counter("test.concurrent.hits")->value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Registry, StablePointersAndKindMismatch) {
  Registry registry;
  Counter* counter = registry.counter("test.series");
  EXPECT_EQ(registry.counter("test.series"), counter);
  // A name resolves to exactly one kind; asking for another returns null.
  EXPECT_EQ(registry.histogram("test.series"), nullptr);
  EXPECT_EQ(registry.gauge("test.series"), nullptr);
}

TEST(Registry, PrometheusExpositionShape) {
  Registry registry;
  registry.counter("tier.component.hits")->add(3);
  registry.histogram("tier.request.micros")->record(100);
  registry.histogram("tier.request.micros")->record(5000);
  const std::string text = prometheus_text(registry);
  EXPECT_NE(text.find("# TYPE ebmf_tier_component_hits_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("ebmf_tier_component_hits_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ebmf_tier_request_micros histogram"),
            std::string::npos);
  EXPECT_NE(text.find("ebmf_tier_request_micros_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("ebmf_tier_request_micros_count 2"),
            std::string::npos);
  // Every line is either a comment or name{...} value — parsable as the
  // text exposition format.
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    if (!line.empty() && line[0] != '#') {
      const std::size_t space = line.rfind(' ');
      ASSERT_NE(space, std::string::npos) << line;
      ASSERT_EQ(line.rfind("ebmf_", 0), 0u) << line;
      char* parse_end = nullptr;
      std::strtod(line.c_str() + space + 1, &parse_end);
      ASSERT_EQ(*parse_end, '\0') << line;
    }
    start = end + 1;
  }
}

// ---- trace ids and wire round-trips ----------------------------------------

TEST(Trace, IdHexRoundTrips) {
  const TraceContext ctx = make_trace_context();
  EXPECT_TRUE(ctx.valid());
  const std::string hex = trace_id_hex(ctx.hi, ctx.lo);
  EXPECT_EQ(hex.size(), 32u);
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  EXPECT_TRUE(parse_trace_id(hex, &hi, &lo));
  EXPECT_EQ(hi, ctx.hi);
  EXPECT_EQ(lo, ctx.lo);
  EXPECT_FALSE(parse_trace_id("zz", &hi, &lo));

  const std::uint64_t span = new_span_id();
  std::uint64_t parsed = 0;
  EXPECT_TRUE(parse_span_id(span_id_hex(span), &parsed));
  EXPECT_EQ(parsed, span);
}

TEST(Trace, WireRequestRoundTripsContext) {
  io::WireRequest wire;
  wire.request =
      engine::SolveRequest::dense(BinaryMatrix::parse("10;01"), "auto");
  wire.has_trace = true;
  wire.trace = make_trace_context();
  wire.trace.parent_span = new_span_id();
  const std::string line = io::wire_request_json(wire);
  const io::WireRequest parsed = io::parse_wire_request(line);
  ASSERT_TRUE(parsed.has_trace);
  EXPECT_EQ(parsed.trace.hi, wire.trace.hi);
  EXPECT_EQ(parsed.trace.lo, wire.trace.lo);
  EXPECT_EQ(parsed.trace.parent_span, wire.trace.parent_span);
}

TEST(Trace, LegacyRequestsParseWithoutTrace) {
  const io::WireRequest parsed =
      io::parse_wire_request(R"({"pattern":"10;01"})");
  EXPECT_FALSE(parsed.has_trace);
  // And a malformed trace member is a protocol error, not a silent drop.
  EXPECT_THROW(io::parse_wire_request(
                   R"({"pattern":"10;01","trace":{"id":"nope"}})"),
               std::runtime_error);
}

// ---- trace store -----------------------------------------------------------

TEST(TraceStore, RingEvictsOldestAndBoundsSize) {
  TraceStore store(4);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    Span span;
    span.name = "root";
    span.span_id = i;
    span.start_us = i;
    span.dur_us = 5;
    store.add(0, i, {span});
  }
  EXPECT_EQ(store.size(), 4u);
  EXPECT_TRUE(store.find(0, 1).empty());   // evicted
  EXPECT_TRUE(store.find(0, 6).empty());   // evicted
  EXPECT_EQ(store.find(0, 7).size(), 1u);  // retained
  EXPECT_EQ(store.find(0, 10).size(), 1u);
  // Merging into a live trace does not grow the ring.
  Span extra;
  extra.name = "child";
  extra.span_id = 99;
  store.add(0, 10, {extra});
  EXPECT_EQ(store.size(), 4u);
  EXPECT_EQ(store.find(0, 10).size(), 2u);
  EXPECT_EQ(store.recent(2).size(), 2u);
  EXPECT_EQ(store.recent(2).front().spans, 2u);
}

// ---- cross-process span tree over a real serve + route pair ----------------

std::map<std::string, Span> spans_by_name(const io::json::Value& trace) {
  const io::json::Value* array = trace.find("spans");
  std::map<std::string, Span> out;
  if (array == nullptr || !array->is_array()) return out;
  for (std::size_t i = 0; i < array->size(); ++i) {
    const io::json::Value& item = array->at(i);
    Span span;
    span.name = item.find("name")->as_string();
    if (const io::json::Value* id = item.find("span");
        id != nullptr && id->is_string())
      parse_span_id(id->as_string(), &span.span_id);
    if (const io::json::Value* parent = item.find("parent");
        parent != nullptr && parent->is_string())
      parse_span_id(parent->as_string(), &span.parent_id);
    span.dur_us =
        static_cast<std::uint64_t>(item.find("dur_us")->as_number());
    out[span.name] = span;
  }
  return out;
}

TEST(Trace, SpanTreeAcrossServeAndRoute) {
  service::ServerOptions backend_options;
  backend_options.port = 0;
  backend_options.cache_mb = 8;
  service::Server backend(backend_options);
  backend.start();

  router::RouterOptions router_options;
  router_options.port = 0;
  router_options.l1_mb = 8;
  router_options.backends.push_back("127.0.0.1:" +
                                    std::to_string(backend.port()));
  router::Router router(router_options);
  router.start();

  service::Client client("127.0.0.1", router.port());
  const TraceContext ctx = make_trace_context();
  io::WireRequest wire;
  wire.request =
      engine::SolveRequest::dense(BinaryMatrix::parse("110;011;111"), "auto");
  wire.has_trace = true;
  wire.trace = ctx;
  const std::string reply =
      client.round_trip(io::wire_request_json(wire));
  const io::json::Value document = io::json::Value::parse(reply);
  ASSERT_EQ(document.find("error"), nullptr) << reply;

  const io::json::Value* trace = document.find("trace");
  ASSERT_NE(trace, nullptr) << reply;
  EXPECT_EQ(trace->find("id")->as_string(), trace_id_hex(ctx.hi, ctx.lo));
  const std::map<std::string, Span> spans = spans_by_name(*trace);

  // The acceptance bar: a traced router->backend request explains itself
  // with at least five named spans across both processes. The pool
  // negotiated the binary wire, so the forward carried the canonical form
  // and key: the backend's own canon and lift passes vanish from the tree
  // (that is the fast path working, witnessed below), and the engine's
  // cache lookup shows up in their place.
  ASSERT_GE(spans.size(), 5u);
  for (const char* name :
       {"router.request", "router.canon", "router.dispatch", "server.request",
        "server.queue", "engine.cache_lookup", "engine.solve"})
    EXPECT_TRUE(spans.count(name) != 0) << "missing span " << name;
  EXPECT_EQ(spans.count("engine.canon"), 0u)
      << "binary fast path must skip the backend canon pass";
  EXPECT_EQ(spans.count("engine.lift"), 0u)
      << "binary fast path must skip the backend lift pass";

  // Parent links: the root has no parent; every other span's parent is in
  // the set (the tree is connected across the process boundary).
  const Span& root = spans.at("router.request");
  EXPECT_EQ(root.parent_id, 0u);
  std::map<std::uint64_t, const Span*> by_id;
  for (const auto& [name, span] : spans) by_id[span.span_id] = &span;
  for (const auto& [name, span] : spans) {
    if (span.span_id == root.span_id) continue;
    EXPECT_TRUE(by_id.count(span.parent_id) != 0)
        << name << " parents to an unknown span";
  }
  EXPECT_EQ(spans.at("server.request").parent_id,
            spans.at("router.dispatch").span_id);
  EXPECT_EQ(spans.at("engine.solve").parent_id,
            spans.at("server.request").span_id);

  // Durations nest: the root covers the dispatch, the dispatch covers the
  // backend's own request span (clock bases differ per process; durations
  // are the comparable quantity).
  EXPECT_GE(root.dur_us, spans.at("router.dispatch").dur_us);
  EXPECT_GE(spans.at("router.dispatch").dur_us,
            spans.at("server.request").dur_us);
  EXPECT_GE(spans.at("server.request").dur_us,
            spans.at("engine.solve").dur_us);

  // The completed trace is queryable from the router ring, and the reply's
  // assembled tree nests the backend spans under the dispatch span.
  const std::string tree_reply = client.round_trip(
      "{\"op\":\"trace\",\"id\":\"" + trace_id_hex(ctx.hi, ctx.lo) + "\"}");
  const io::json::Value tree_doc = io::json::Value::parse(tree_reply);
  ASSERT_EQ(tree_doc.find("error"), nullptr) << tree_reply;
  const io::json::Value* tree = tree_doc.find("tree");
  ASSERT_NE(tree, nullptr);
  ASSERT_TRUE(tree->is_array());
  ASSERT_GE(tree->size(), 1u);

  // {"op":"traces"} lists it.
  const std::string list_reply = client.round_trip(R"({"op":"traces"})");
  const io::json::Value list_doc = io::json::Value::parse(list_reply);
  const io::json::Value* traces = list_doc.find("traces");
  ASSERT_NE(traces, nullptr);
  ASSERT_TRUE(traces->is_array());
  bool found = false;
  for (std::size_t i = 0; i < traces->size(); ++i)
    if (traces->at(i).find("id")->as_string() == trace_id_hex(ctx.hi, ctx.lo))
      found = true;
  EXPECT_TRUE(found);

  // A legacy request on the same fleet stays trace-free.
  const std::string legacy =
      client.round_trip(R"({"pattern":"110;011;111"})");
  EXPECT_EQ(io::json::Value::parse(legacy).find("trace"), nullptr);

  // The metrics verb answers with a Prometheus body that saw the request.
  const std::string metrics_reply =
      client.round_trip(R"({"op":"metrics"})");
  const io::json::Value metrics_doc = io::json::Value::parse(metrics_reply);
  const io::json::Value* body = metrics_doc.find("body");
  ASSERT_NE(body, nullptr);
  EXPECT_NE(body->as_string().find("ebmf_router_requests"),
            std::string::npos);

  router.stop();
  backend.stop();
}

// The same fleet with --no-binary: the forward travels as a JSON line and
// the backend runs its full pipeline, so the legacy span tree (canon and
// lift included) still assembles across the processes.
TEST(Trace, SpanTreeLegacyJsonBackendWire) {
  service::ServerOptions backend_options;
  backend_options.port = 0;
  backend_options.cache_mb = 8;
  service::Server backend(backend_options);
  backend.start();

  router::RouterOptions router_options;
  router_options.port = 0;
  router_options.l1_mb = 8;
  router_options.binary_backend = false;
  router_options.backends.push_back("127.0.0.1:" +
                                    std::to_string(backend.port()));
  router::Router router(router_options);
  router.start();

  service::Client client("127.0.0.1", router.port());
  const TraceContext ctx = make_trace_context();
  io::WireRequest wire;
  wire.request =
      engine::SolveRequest::dense(BinaryMatrix::parse("110;011;111"), "auto");
  wire.has_trace = true;
  wire.trace = ctx;
  const std::string reply = client.round_trip(io::wire_request_json(wire));
  const io::json::Value document = io::json::Value::parse(reply);
  ASSERT_EQ(document.find("error"), nullptr) << reply;

  const io::json::Value* trace = document.find("trace");
  ASSERT_NE(trace, nullptr) << reply;
  const std::map<std::string, Span> spans = spans_by_name(*trace);
  for (const char* name :
       {"router.request", "router.canon", "router.dispatch", "server.request",
        "server.queue", "engine.canon", "engine.solve", "engine.lift"})
    EXPECT_TRUE(spans.count(name) != 0) << "missing span " << name;
  EXPECT_EQ(spans.at("server.request").parent_id,
            spans.at("router.dispatch").span_id);
  EXPECT_EQ(spans.at("engine.solve").parent_id,
            spans.at("server.request").span_id);

  router.stop();
  backend.stop();
}

// ---- flight recorder -------------------------------------------------------

TEST(Events, RingWraparoundKeepsNewest) {
  auto ring = std::make_unique<EventRing>();
  const std::uint64_t total = 2 * EventRing::kRingCapacity;
  for (std::uint64_t i = 0; i < total; ++i)
    ring->emit(EventCode::SatRestart, /*a=*/i, /*b=*/i * 2);
  EXPECT_EQ(ring->written(), total);
  std::vector<EventRecord> records;
  ring->snapshot(&records);
  ASSERT_EQ(records.size(), EventRing::kRingCapacity);
  // The survivors are exactly the newest kRingCapacity emissions, oldest
  // first — wrap evicts from the front, never the back.
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].a, EventRing::kRingCapacity + i);
    EXPECT_EQ(records[i].b, 2 * (EventRing::kRingCapacity + i));
    EXPECT_EQ(records[i].code,
              static_cast<std::uint32_t>(EventCode::SatRestart));
  }
}

TEST(Events, SnapshotMergesThreadRingsAndRendersJson) {
  emit_event(EventCode::LocalIncumbent, 7, 1);
  emit_event(EventCode::CacheEvict, 4096, 12);
  const std::vector<EventRecord> records = snapshot_events(256);
  ASSERT_GE(records.size(), 2u);
  // Tick-ordered oldest first.
  for (std::size_t i = 1; i < records.size(); ++i)
    EXPECT_GE(records[i].tick, records[i - 1].tick);
  const std::string json = events_json(records);
  EXPECT_NE(json.find("\"event\":\"local.incumbent\""), std::string::npos);
  EXPECT_NE(json.find("\"event\":\"cache.evict\""), std::string::npos);
  // The cap keeps the newest records: the single survivor is at least as
  // new as everything in the full snapshot.
  const std::vector<EventRecord> capped = snapshot_events(1);
  ASSERT_EQ(capped.size(), 1u);
  EXPECT_GE(capped[0].tick, records.back().tick);
}

// ---- progress sink ---------------------------------------------------------

TEST(Progress, PublishStampsSeqRetainsAndFansOut) {
  ProgressSink sink;
  std::vector<std::uint64_t> seen;
  const std::uint64_t token = sink.subscribe([&seen](const ProgressFrame& f) {
    seen.push_back(f.seq);
    return true;
  });
  for (int i = 0; i < 5; ++i) {
    ProgressFrame frame;
    frame.incumbent_depth = static_cast<std::uint64_t>(10 - i);
    frame.lower_bound = 5;
    frame.gap = frame.incumbent_depth - frame.lower_bound;
    frame.phase = "search";
    sink.publish(frame);
  }
  EXPECT_EQ(sink.published(), 5u);
  const std::vector<ProgressFrame> frames = sink.frames();
  ASSERT_EQ(frames.size(), 5u);
  for (std::size_t i = 1; i < frames.size(); ++i)
    EXPECT_GT(frames[i].seq, frames[i - 1].seq);
  EXPECT_EQ(sink.last().incumbent_depth, 6u);
  ASSERT_EQ(seen.size(), 5u);
  sink.unsubscribe(token);
  sink.publish(ProgressFrame{});
  EXPECT_EQ(seen.size(), 5u);  // unsubscribed listeners see nothing

  // A listener that returns false unsubscribes itself after one frame.
  int calls = 0;
  sink.subscribe([&calls](const ProgressFrame&) {
    ++calls;
    return false;
  });
  sink.publish(ProgressFrame{});
  sink.publish(ProgressFrame{});
  EXPECT_EQ(calls, 1);

  EXPECT_FALSE(sink.finished());
  EXPECT_FALSE(sink.wait_finished(0.0));
  sink.finish();
  EXPECT_TRUE(sink.finished());
  EXPECT_TRUE(sink.wait_finished(0.0));

  // The frame JSON carries every field the watch stream promises.
  ProgressFrame frame;
  frame.seq = 3;
  frame.seconds = 1.25;
  frame.incumbent_depth = 9;
  frame.lower_bound = 7;
  frame.gap = 2;
  frame.conflicts = 41;
  frame.wave = 2;
  frame.phase = "wave";
  const std::string json = progress_frame_json(frame);
  for (const char* piece :
       {"\"progress\":true", "\"seq\":3", "\"incumbent_depth\":9",
        "\"lower_bound\":7", "\"gap\":2", "\"conflicts\":41", "\"wave\":2",
        "\"phase\":\"wave\""})
    EXPECT_NE(json.find(piece), std::string::npos) << json;
}

TEST(Progress, RetainsOnlyNewestFramesForLateSubscribers) {
  ProgressSink sink;
  const std::uint64_t total = ProgressSink::kKeep + 40;
  for (std::uint64_t i = 0; i < total; ++i) sink.publish(ProgressFrame{});
  EXPECT_EQ(sink.published(), total);
  const std::vector<ProgressFrame> frames = sink.frames();
  ASSERT_EQ(frames.size(), ProgressSink::kKeep);
  // Seq is stamped 0..total-1; the retained window is the newest kKeep.
  EXPECT_EQ(frames.front().seq, total - ProgressSink::kKeep);
  EXPECT_EQ(frames.back().seq, total - 1);
}

// ---- histogram federation --------------------------------------------------

TEST(Histogram, MergeFromMatchesSortedReferenceAcrossOctaves) {
  // The two sides populate disjoint octave ranges — the merged quantiles
  // must hold the single-instance error bound anyway.
  std::mt19937_64 rng(777);
  Histogram low;
  Histogram high;
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 8000; ++i) {
    const std::uint64_t v = rng() % (1ull << 8);
    low.record(v);
    samples.push_back(v);
  }
  for (int i = 0; i < 8000; ++i) {
    const std::uint64_t v = (1ull << 16) + rng() % (1ull << 20);
    high.record(v);
    samples.push_back(v);
  }
  low.merge_from(high);
  EXPECT_EQ(low.count(), samples.size());
  std::vector<std::uint64_t> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(low.max(), sorted.back());
  for (const double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.99}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    const std::uint64_t reference = sorted[rank == 0 ? 0 : rank - 1];
    const std::uint64_t estimate = low.quantile(q);
    EXPECT_GE(estimate, reference) << "q=" << q;
    const double ceiling =
        static_cast<double>(reference) *
            (1.0 + 1.0 / static_cast<double>(Histogram::kSubCount)) +
        1.0;
    EXPECT_LE(static_cast<double>(estimate), ceiling) << "q=" << q;
  }
}

// Extract `name{instance="inst",...} value` from a federated exposition.
long long federated_value(const std::string& text, const std::string& name,
                          const std::string& instance) {
  const std::string needle = name + "{instance=\"" + instance + "\"} ";
  const std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return -1;
  return std::strtoll(text.c_str() + pos + needle.size(), nullptr, 10);
}

TEST(Federate, CountersSumAndGaugesFollowTheirConvention) {
  Registry a;
  Registry b;
  a.counter("fleet.requests")->add(3);
  b.counter("fleet.requests")->add(5);
  a.gauge("fleet.inflight")->set(2);
  b.gauge("fleet.inflight")->set(4);
  a.gauge("fleet.queue.max")->set(7);
  b.gauge("fleet.queue.max")->set(11);
  const std::string text = federate_prometheus(
      {{"h1:9000", prometheus_text(a)}, {"h2:9000", prometheus_text(b)}});

  EXPECT_EQ(federated_value(text, "ebmf_fleet_requests_total", "fleet"), 8);
  EXPECT_EQ(federated_value(text, "ebmf_fleet_requests_total", "h1:9000"), 3);
  EXPECT_EQ(federated_value(text, "ebmf_fleet_requests_total", "h2:9000"), 5);
  // Plain gauges sum; gauges named *max* take the fleet max.
  EXPECT_EQ(federated_value(text, "ebmf_fleet_inflight", "fleet"), 6);
  EXPECT_EQ(federated_value(text, "ebmf_fleet_queue_max", "fleet"), 11);
  // One # TYPE line per series, with the fleet line first after it.
  EXPECT_NE(text.find("# TYPE ebmf_fleet_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ebmf_fleet_inflight gauge"), std::string::npos);
}

TEST(Federate, HistogramBucketsStayMonotoneAcrossOctaveRanges) {
  // Instance 1 records small values, instance 2 large — their native
  // exposition buckets interleave, and the merged cumulative sequence must
  // still be monotone in le order.
  Registry a;
  Registry b;
  std::mt19937_64 rng(99);
  std::uint64_t total = 0;
  for (int i = 0; i < 500; ++i, ++total)
    a.histogram("fleet.lat.micros")->record(rng() % 64);
  for (int i = 0; i < 700; ++i, ++total)
    b.histogram("fleet.lat.micros")->record((1u << 12) + rng() % (1u << 14));
  const std::string text = federate_prometheus(
      {{"h1:9000", prometheus_text(a)}, {"h2:9000", prometheus_text(b)}});

  // Walk the fleet bucket lines in emission order.
  const std::string prefix = "ebmf_fleet_lat_micros_bucket{instance=\"fleet\"";
  std::uint64_t prev_le = 0;
  std::uint64_t prev_cum = 0;
  std::size_t fleet_buckets = 0;
  std::size_t pos = 0;
  bool saw_inf = false;
  while ((pos = text.find(prefix, pos)) != std::string::npos) {
    const std::size_t le_pos = text.find("le=\"", pos) + 4;
    const std::size_t close = text.find('}', le_pos);
    const std::string le = text.substr(le_pos, text.find('"', le_pos) - le_pos);
    const std::uint64_t cum =
        std::strtoull(text.c_str() + close + 1, nullptr, 10);
    if (le == "+Inf") {
      EXPECT_EQ(cum, total);
      EXPECT_GE(cum, prev_cum);
      saw_inf = true;
    } else {
      const std::uint64_t upper = std::strtoull(le.c_str(), nullptr, 10);
      if (fleet_buckets != 0) {
        EXPECT_GT(upper, prev_le) << "le bounds out of order";
        EXPECT_GE(cum, prev_cum) << "cumulative count decreased";
      }
      prev_le = upper;
      prev_cum = cum;
      ++fleet_buckets;
    }
    pos = close;
  }
  EXPECT_GE(fleet_buckets, 2u);
  EXPECT_TRUE(saw_inf);
  // The fleet count line agrees with the +Inf bucket.
  EXPECT_EQ(federated_value(text, "ebmf_fleet_lat_micros_count", "fleet"),
            static_cast<long long>(total));
  // Empty input merges to an empty exposition.
  EXPECT_TRUE(federate_prometheus({}).empty());
}

TEST(Rotate, RotatesWholeLinesOnceThresholdIsReached) {
  const std::string path = "/tmp/ebmf_rotate_test.log";
  const std::string shadow = path + ".1";
  std::remove(path.c_str());
  std::remove(shadow.c_str());

  RotatingFile sink;
  std::string error;
  // 32-byte threshold: every 40-byte line fills a generation, so each
  // subsequent append rotates first.
  ASSERT_TRUE(sink.open(path, &error, 32)) << error;
  EXPECT_TRUE(sink.is_open());
  const std::string line_a(39, 'a');
  const std::string line_b(39, 'b');
  sink.write_line(line_a);
  sink.write_line(line_b);  // current generation is at 40 >= 32 -> rotate
  sink.flush();

  const auto slurp = [](const std::string& p) {
    std::string out;
    if (FILE* f = std::fopen(p.c_str(), "rb")) {
      char buf[256];
      std::size_t n = 0;
      while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
      std::fclose(f);
    }
    return out;
  };
  EXPECT_EQ(slurp(shadow), line_a + "\n");
  EXPECT_EQ(slurp(path), line_b + "\n");

  // A second rotation replaces the previous shadow generation.
  const std::string line_c(39, 'c');
  sink.write_line(line_c);
  sink.flush();
  EXPECT_EQ(slurp(shadow), line_b + "\n");
  EXPECT_EQ(slurp(path), line_c + "\n");
  sink.close();
  EXPECT_FALSE(sink.is_open());
  std::remove(path.c_str());
  std::remove(shadow.c_str());
}

}  // namespace
}  // namespace ebmf::obs
