// Tests for BinaryMatrix.

#include "core/matrix.h"

#include <gtest/gtest.h>

#include "support/rng.h"

namespace ebmf {
namespace {

TEST(Matrix, DefaultEmpty) {
  BinaryMatrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.is_zero());
  EXPECT_EQ(m.ones_count(), 0u);
}

TEST(Matrix, ParseAndToString) {
  const auto m = BinaryMatrix::parse("101;010;110");
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_TRUE(m.test(0, 0));
  EXPECT_FALSE(m.test(0, 1));
  EXPECT_TRUE(m.test(2, 1));
  EXPECT_EQ(m.to_string(), "101\n010\n110");
}

TEST(Matrix, ParseAcceptsNewlinesAndSpaces) {
  const auto m = BinaryMatrix::parse("10 1\n0 10\n");
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
}

TEST(Matrix, ParseRejectsGarbage) {
  EXPECT_THROW((void)BinaryMatrix::parse("10;2x"), ContractViolation);
}

TEST(Matrix, FromStringsRejectsRaggedRows) {
  EXPECT_THROW((void)BinaryMatrix::from_strings({"101", "10"}),
               ContractViolation);
}

TEST(Matrix, SetAndCount) {
  BinaryMatrix m(4, 6);
  m.set(0, 0);
  m.set(3, 5);
  m.set(1, 2);
  m.set(1, 2, false);
  EXPECT_EQ(m.ones_count(), 2u);
  EXPECT_FALSE(m.is_zero());
}

TEST(Matrix, OnesRowMajor) {
  const auto m = BinaryMatrix::parse("010;101");
  using P = std::pair<std::size_t, std::size_t>;
  const std::vector<P> expected{{0, 1}, {1, 0}, {1, 2}};
  EXPECT_EQ(m.ones(), expected);
}

TEST(Matrix, ColExtraction) {
  const auto m = BinaryMatrix::parse("10;11;01");
  EXPECT_EQ(m.col(0).to_string(), "110");
  EXPECT_EQ(m.col(1).to_string(), "011");
}

TEST(Matrix, TransposeInvolution) {
  Rng rng(5);
  for (int t = 0; t < 10; ++t) {
    const auto m = BinaryMatrix::random(7, 4, 0.4, rng);
    const auto mtt = m.transposed().transposed();
    EXPECT_EQ(m, mtt);
  }
}

TEST(Matrix, TransposeShapeAndEntries) {
  const auto m = BinaryMatrix::parse("110;001");
  const auto t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(m.test(i, j), t.test(j, i));
}

TEST(Matrix, PermutedRows) {
  const auto m = BinaryMatrix::parse("100;010;001");
  const auto p = m.permuted_rows({2, 0, 1});
  EXPECT_EQ(p.to_string(), "001\n100\n010");
  EXPECT_THROW((void)m.permuted_rows({0, 1}), ContractViolation);
}

TEST(Matrix, KronSmall) {
  const auto a = BinaryMatrix::parse("10;01");
  const auto b = BinaryMatrix::parse("11;10");
  const auto k = BinaryMatrix::kron(a, b);
  EXPECT_EQ(k.rows(), 4u);
  EXPECT_EQ(k.cols(), 4u);
  EXPECT_EQ(k.to_string(), "1100\n1000\n0011\n0010");
}

TEST(Matrix, KronWithAllOnesReplicates) {
  const auto a = BinaryMatrix::parse("10;01");
  const auto ones = BinaryMatrix::parse("11;11");
  const auto k = BinaryMatrix::kron(a, ones);
  EXPECT_EQ(k.ones_count(), a.ones_count() * 4);
}

TEST(Matrix, KronEntriesMatchDefinition) {
  Rng rng(77);
  const auto a = BinaryMatrix::random(3, 4, 0.5, rng);
  const auto b = BinaryMatrix::random(2, 5, 0.5, rng);
  const auto k = BinaryMatrix::kron(a, b);
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      for (std::size_t x = 0; x < b.rows(); ++x)
        for (std::size_t y = 0; y < b.cols(); ++y)
          EXPECT_EQ(k.test(i * b.rows() + x, j * b.cols() + y),
                    a.test(i, j) && b.test(x, y));
}

TEST(Matrix, RandomOccupancyCalibrated) {
  Rng rng(31);
  const auto m = BinaryMatrix::random(100, 100, 0.3, rng);
  const double occ = static_cast<double>(m.ones_count()) / (100.0 * 100.0);
  EXPECT_NEAR(occ, 0.3, 0.03);
}

TEST(Matrix, RandomDeterministicPerSeed) {
  Rng rng1(8);
  Rng rng2(8);
  EXPECT_EQ(BinaryMatrix::random(6, 6, 0.5, rng1),
            BinaryMatrix::random(6, 6, 0.5, rng2));
}

TEST(Matrix, EqualityDetectsDifferences) {
  auto a = BinaryMatrix::parse("10;01");
  auto b = a;
  EXPECT_EQ(a, b);
  b.set(0, 1);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace ebmf
