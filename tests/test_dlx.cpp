// Tests for the dancing-links exact cover solver and the DLX-upgraded row
// packing heuristic.

#include "dlx/dlx.h"

#include <gtest/gtest.h>

#include <set>

#include "benchgen/generators.h"
#include "core/bounds.h"
#include "dlx/packing_dlx.h"
#include "support/rng.h"

namespace ebmf::dlx {
namespace {

TEST(Dlx, KnuthPaperExample) {
  // The instance from Knuth's "Dancing Links" paper (7 items, 6 options);
  // unique solution = options {0, 3, 4}.
  ExactCover ec(7);
  ec.add_option({2, 4, 5});     // 0
  ec.add_option({0, 3, 6});     // 1
  ec.add_option({1, 2, 5});     // 2
  ec.add_option({0, 3});        // 3
  ec.add_option({1, 6});        // 4
  ec.add_option({3, 4, 6});     // 5
  const auto sol = ec.solve();
  ASSERT_TRUE(sol.has_value());
  const std::set<std::size_t> got(sol->begin(), sol->end());
  const std::set<std::size_t> expected{0, 3, 4};
  EXPECT_EQ(got, expected);
}

TEST(Dlx, NoSolution) {
  ExactCover ec(3);
  ec.add_option({0, 1});
  ec.add_option({1, 2});
  EXPECT_FALSE(ec.solve().has_value());
}

TEST(Dlx, SingleOptionCoversAll) {
  ExactCover ec(4);
  ec.add_option({0, 1, 2, 3});
  const auto sol = ec.solve();
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->size(), 1u);
}

TEST(Dlx, ZeroItemsTriviallyCovered) {
  ExactCover ec(0);
  const auto sol = ec.solve();
  ASSERT_TRUE(sol.has_value());
  EXPECT_TRUE(sol->empty());
}

TEST(Dlx, RejectsEmptyOption) {
  ExactCover ec(3);
  EXPECT_THROW((void)ec.add_option({}), ContractViolation);
}

TEST(Dlx, EnumerateCountsAllCovers) {
  // Items {0,1}; options: {0},{1},{0,1}. Covers: {{0},{1}} and {{0,1}} = 2.
  ExactCover ec(2);
  ec.add_option({0});
  ec.add_option({1});
  ec.add_option({0, 1});
  std::size_t count = ec.enumerate([](const auto&) {}, 0);
  EXPECT_EQ(count, 2u);
}

TEST(Dlx, EnumerateRespectsLimit) {
  ExactCover ec(2);
  ec.add_option({0});
  ec.add_option({1});
  ec.add_option({0, 1});
  std::size_t seen = 0;
  const auto count = ec.enumerate([&](const auto&) { ++seen; }, 1);
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(seen, 1u);
}

TEST(Dlx, PartitionOfSixIntoPairs) {
  // All 2-subsets of {0..5} as options: perfect matchings of K6 = 15.
  ExactCover ec(6);
  for (std::size_t a = 0; a < 6; ++a)
    for (std::size_t b = a + 1; b < 6; ++b) ec.add_option({a, b});
  const auto count = ec.enumerate([](const auto&) {}, 0);
  EXPECT_EQ(count, 15u);
}

TEST(Dlx, SolutionsAreDisjointAndComplete) {
  Rng rng(5);
  for (int t = 0; t < 20; ++t) {
    const std::size_t items = 8;
    ExactCover ec(items);
    std::vector<std::vector<std::size_t>> options;
    for (int o = 0; o < 14; ++o) {
      std::vector<std::size_t> opt;
      for (std::size_t i = 0; i < items; ++i)
        if (rng.chance(0.3)) opt.push_back(i);
      if (opt.empty()) opt.push_back(rng.below(items));
      options.push_back(opt);
      ec.add_option(opt);
    }
    const auto sol = ec.solve();
    if (!sol) continue;
    std::vector<int> covered(items, 0);
    for (auto o : *sol)
      for (auto i : options[o]) ++covered[i];
    for (std::size_t i = 0; i < items; ++i) EXPECT_EQ(covered[i], 1);
  }
}

TEST(DlxPacking, ValidOnRandomSweep) {
  Rng rng(11);
  for (int t = 0; t < 30; ++t) {
    const auto m = BinaryMatrix::random(8, 8, 0.2 + 0.02 * t, rng);
    RowPackingOptions opt;
    opt.trials = 5;
    opt.seed = t;
    const auto r = row_packing_dlx(m, opt);
    const auto v = validate_partition(m, r.partition);
    ASSERT_TRUE(v.ok) << v.reason;
    if (!m.is_zero()) {
      EXPECT_LE(r.partition.size(), trivial_upper_bound(m));
    }
  }
}

TEST(DlxPacking, FindsExactDecompositionGreedyMisses) {
  // Greedy (basis order) picks v0 ⊂ r4 first and strands a residue; exact
  // cover finds r4 = v2 + v3. Construction: rows A={0,1}, B={2,3}, C={0,2},
  // D={1,3}, E={0,1,2,3}: processing A,B,C,D then E. Greedy subtracts A
  // then B (E fully covered!) — need a harder case: make A ⊂ E, B ⊄ E.
  // Rows: A={0,1}, C={0,2}, D={1,3}, E={0,1,2,3}. Greedy: A⊆E -> residue
  // {2,3}; C,D not ⊆ {2,3} -> residue {2,3} stays, new basis. DLX: E = C+D
  // exactly. So DLX uses 3 rectangles + row E packed, greedy needs 4.
  const auto m = BinaryMatrix::parse(
      "1100"
      ";1010"
      ";0101"
      ";1111");
  const std::vector<std::size_t> order{0, 1, 2, 3};
  const auto greedy = row_packing_pass(m, order);
  const auto exact = row_packing_dlx_pass(m, order);
  EXPECT_TRUE(validate_partition(m, greedy).ok);
  EXPECT_TRUE(validate_partition(m, exact).ok);
  EXPECT_EQ(exact.size(), 3u);
  EXPECT_EQ(greedy.size(), 4u);
}

TEST(DlxPacking, NeverWorseThanGreedyOnGapFamily) {
  Rng rng(23);
  for (int t = 0; t < 10; ++t) {
    const auto inst = benchgen::gap_matrix(8, 8, 3, rng);
    RowPackingOptions opt;
    opt.trials = 8;
    opt.seed = 100 + t;
    const auto greedy = row_packing_ebmf(inst.matrix, opt);
    const auto exact = row_packing_dlx(inst.matrix, opt);
    EXPECT_TRUE(validate_partition(inst.matrix, exact.partition).ok);
    // Not a theorem per-shuffle, but with equal seeds/trials DLX should not
    // lose by more than 1 on these sizes.
    EXPECT_LE(exact.partition.size(), greedy.partition.size() + 1);
  }
}

}  // namespace
}  // namespace ebmf::dlx
