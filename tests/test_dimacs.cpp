// DIMACS round-trip and error handling tests.

#include "sat/dimacs.h"

#include <gtest/gtest.h>

#include <sstream>

#include "sat/brute.h"
#include "sat/solver.h"

namespace ebmf::sat {
namespace {

TEST(Dimacs, ParseSimple) {
  const auto cnf = parse_dimacs("c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n");
  EXPECT_EQ(cnf.num_vars, 3u);
  ASSERT_EQ(cnf.clauses.size(), 2u);
  EXPECT_EQ(cnf.clauses[0].size(), 2u);
  EXPECT_EQ(cnf.clauses[0][0], pos(0));
  EXPECT_EQ(cnf.clauses[0][1], neg(1));
  EXPECT_EQ(cnf.clauses[1][0], pos(1));
  EXPECT_EQ(cnf.clauses[1][1], pos(2));
}

TEST(Dimacs, ClauseSpanningLines) {
  const auto cnf = parse_dimacs("p cnf 2 1\n1\n2 0\n");
  ASSERT_EQ(cnf.clauses.size(), 1u);
  EXPECT_EQ(cnf.clauses[0].size(), 2u);
}

TEST(Dimacs, RejectsMissingHeader) {
  EXPECT_THROW((void)parse_dimacs("1 2 0\n"), std::runtime_error);
}

TEST(Dimacs, RejectsWrongFormatTag) {
  EXPECT_THROW((void)parse_dimacs("p sat 3 1\n1 0\n"), std::runtime_error);
}

TEST(Dimacs, RejectsOutOfRangeVariable) {
  EXPECT_THROW((void)parse_dimacs("p cnf 2 1\n3 0\n"), std::runtime_error);
}

TEST(Dimacs, RejectsUnterminatedClause) {
  EXPECT_THROW((void)parse_dimacs("p cnf 2 1\n1 2\n"), std::runtime_error);
}

TEST(Dimacs, RejectsClauseCountMismatch) {
  EXPECT_THROW((void)parse_dimacs("p cnf 2 2\n1 0\n"), std::runtime_error);
}

TEST(Dimacs, WriteParseRoundTrip) {
  Cnf cnf;
  cnf.num_vars = 4;
  cnf.clauses = {{pos(0), neg(3)}, {neg(1), pos(2), pos(3)}, {neg(0)}};
  std::ostringstream out;
  write_dimacs(out, cnf);
  const auto parsed = parse_dimacs(out.str());
  EXPECT_EQ(parsed.num_vars, cnf.num_vars);
  ASSERT_EQ(parsed.clauses.size(), cnf.clauses.size());
  for (std::size_t i = 0; i < cnf.clauses.size(); ++i)
    EXPECT_EQ(parsed.clauses[i], cnf.clauses[i]);
}

TEST(Dimacs, ParsedFormulaSolvesConsistently) {
  const auto cnf =
      parse_dimacs("p cnf 4 5\n1 2 0\n-1 3 0\n-2 -3 0\n-3 4 0\n-4 -1 0\n");
  Solver s;
  for (std::size_t v = 0; v < cnf.num_vars; ++v) (void)s.new_var();
  for (const auto& c : cnf.clauses) s.add_clause(c);
  const auto reference = brute_force_sat(cnf);
  EXPECT_EQ(s.solve() == SolveResult::Sat, reference.has_value());
}

}  // namespace
}  // namespace ebmf::sat
