// Tests for SAP (Algorithm 1): optimality against brute force, certificate
// statuses, anytime behaviour, and the paper's benchmark families.

#include "smt/sap.h"

#include <gtest/gtest.h>

#include "benchgen/generators.h"
#include "core/brute_force.h"
#include "support/rng.h"

namespace ebmf {
namespace {

TEST(Sap, ZeroMatrix) {
  const BinaryMatrix z(5, 5);
  const auto r = sap_solve(z);
  EXPECT_TRUE(r.partition.empty());
  EXPECT_EQ(r.status, SapStatus::Optimal);
  EXPECT_EQ(r.rank_lower, 0u);
}

TEST(Sap, FullRectangle) {
  const auto m = BinaryMatrix::parse("111;111;111");
  const auto r = sap_solve(m);
  EXPECT_EQ(r.depth(), 1u);
  EXPECT_TRUE(r.proven_optimal());
  // rank == 1 == |P|: no SMT call should have been needed.
  EXPECT_TRUE(r.smt_calls.empty());
}

TEST(Sap, SingleCell) {
  const auto m = BinaryMatrix::parse("000;010;000");
  const auto r = sap_solve(m);
  EXPECT_EQ(r.depth(), 1u);
  EXPECT_TRUE(r.proven_optimal());
}

TEST(Sap, PaperFig1bOptimalFive) {
  const auto m = BinaryMatrix::parse(
      "101100;010011;101010;010101;111000;000111");
  const auto r = sap_solve(m);
  EXPECT_EQ(r.depth(), 5u);
  EXPECT_TRUE(r.proven_optimal());
  EXPECT_TRUE(validate_partition(m, r.partition).ok);
}

TEST(Sap, Eq2MatrixOptimalThree) {
  const auto m = BinaryMatrix::parse("110;011;111");
  const auto r = sap_solve(m);
  EXPECT_EQ(r.depth(), 3u);
  EXPECT_TRUE(r.proven_optimal());
}

class SapBrute : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SapBrute, MatchesBruteForceOnTinyMatrices) {
  Rng rng(GetParam());
  for (int t = 0; t < 10; ++t) {
    const auto m = BinaryMatrix::random(4, 5, 0.3 + 0.05 * t, rng);
    if (m.is_zero()) continue;
    const auto brute = brute_force_ebmf(m);
    ASSERT_TRUE(brute.has_value());
    SapOptions opt;
    opt.packing.trials = 5;  // force the SMT phase to do real work
    const auto r = sap_solve(m, opt);
    EXPECT_TRUE(r.proven_optimal()) << m.to_string();
    EXPECT_EQ(r.depth(), brute->binary_rank) << m.to_string();
    EXPECT_TRUE(validate_partition(m, r.partition).ok);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SapBrute,
                         ::testing::Values(21, 42, 63, 84, 105, 126));

TEST(Sap, KnownOptimalFamilyShortCircuits) {
  // Family 2 matrices have rank == r_B: packing + rank certificate suffice.
  Rng rng(1999);
  for (std::size_t k = 1; k <= 8; ++k) {
    const auto inst = benchgen::known_optimal_matrix(10, 10, k, rng);
    const auto r = sap_solve(inst.matrix);
    EXPECT_TRUE(r.proven_optimal());
    EXPECT_EQ(r.depth(), inst.optimal);
    EXPECT_TRUE(r.smt_calls.empty());  // rank match, no SMT needed
  }
}

TEST(Sap, GapFamilyNeedsUnsatCertificate) {
  // Family 3 is built so r_B > rank: SAP must run SMT and finish with an
  // UNSAT certificate (or walk down to the optimum).
  Rng rng(3003);
  bool saw_unsat_certificate = false;
  for (int t = 0; t < 8; ++t) {
    const auto inst = benchgen::gap_matrix(8, 8, 3, rng);
    const auto r = sap_solve(inst.matrix);
    EXPECT_TRUE(r.proven_optimal());
    EXPECT_TRUE(validate_partition(inst.matrix, r.partition).ok);
    EXPECT_GE(r.depth(), r.rank_lower);
    if (!r.smt_calls.empty() &&
        r.smt_calls.back().result == sat::SolveResult::Unsat)
      saw_unsat_certificate = true;
  }
  EXPECT_TRUE(saw_unsat_certificate);
}

TEST(Sap, HeuristicOnlyModeSkipsSmt) {
  Rng rng(11);
  const auto m = BinaryMatrix::random(8, 8, 0.5, rng);
  SapOptions opt;
  opt.use_smt = false;
  const auto r = sap_solve(m, opt);
  EXPECT_TRUE(r.smt_calls.empty());
  EXPECT_TRUE(validate_partition(m, r.partition).ok);
  EXPECT_TRUE(r.status == SapStatus::HeuristicOnly ||
              r.status == SapStatus::Optimal);
}

TEST(Sap, CellLimitGuardsSmt) {
  Rng rng(12);
  const auto m = BinaryMatrix::random(10, 10, 0.5, rng);
  SapOptions opt;
  opt.smt_cell_limit = 5;  // way below the ~50 ones
  const auto r = sap_solve(m, opt);
  EXPECT_TRUE(r.smt_calls.empty());
}

TEST(Sap, AnytimeUnderTightDeadline) {
  // With an already-expired deadline the result is still a valid partition.
  Rng rng(13);
  const auto m = BinaryMatrix::random(10, 10, 0.5, rng);
  SapOptions opt;
  opt.budget.deadline = Deadline::after(0.0);
  const auto r = sap_solve(m, opt);
  EXPECT_TRUE(validate_partition(m, r.partition).ok);
  EXPECT_GE(r.depth(), r.rank_lower);
}

TEST(Sap, ConflictBudgetKeepsBestSoFar) {
  Rng rng(14);
  const auto inst = benchgen::gap_matrix(10, 10, 4, rng);
  SapOptions opt;
  opt.budget.max_conflicts = 1;
  const auto r = sap_solve(inst.matrix, opt);
  EXPECT_TRUE(validate_partition(inst.matrix, r.partition).ok);
  // Status may be BoundedOnly (budget) or Optimal (lucky small calls), but
  // the partition is never invalid and never better than the lower bound.
  EXPECT_GE(r.depth(), r.rank_lower);
}

TEST(Sap, BothEncodingsReachTheSameOptimum) {
  Rng rng(15);
  for (int t = 0; t < 6; ++t) {
    const auto inst = benchgen::gap_matrix(8, 8, 2, rng);
    SapOptions onehot;
    onehot.encoder.encoding = smt::LabelEncoding::OneHot;
    SapOptions binary;
    binary.encoder.encoding = smt::LabelEncoding::Binary;
    const auto a = sap_solve(inst.matrix, onehot);
    const auto b = sap_solve(inst.matrix, binary);
    ASSERT_TRUE(a.proven_optimal());
    ASSERT_TRUE(b.proven_optimal());
    EXPECT_EQ(a.depth(), b.depth());
  }
}

TEST(Sap, StatsAreCoherent) {
  Rng rng(16);
  const auto inst = benchgen::gap_matrix(8, 8, 3, rng);
  const auto r = sap_solve(inst.matrix);
  EXPECT_GE(r.heuristic_size, r.depth());
  EXPECT_GE(r.total_seconds, 0.0);
  double sum = 0;
  for (const auto& call : r.smt_calls) {
    EXPECT_GE(call.seconds, 0.0);
    sum += call.seconds;
  }
  EXPECT_NEAR(r.smt_seconds, sum, 1e-9);
  // Bounds must be decreasing across calls.
  for (std::size_t i = 1; i < r.smt_calls.size(); ++i)
    EXPECT_LT(r.smt_calls[i].bound, r.smt_calls[i - 1].bound);
}

TEST(Sap, WideRandomMatricesUsuallyRankCertified) {
  // Paper Observation 1: wide random matrices are full rank, so SAP
  // certifies via the rank match without SMT most of the time.
  Rng rng(17);
  int no_smt = 0;
  for (int t = 0; t < 10; ++t) {
    const auto m = BinaryMatrix::random(6, 18, 0.5, rng);
    const auto r = sap_solve(m);
    EXPECT_TRUE(validate_partition(m, r.partition).ok);
    if (r.smt_calls.empty() && r.proven_optimal()) ++no_smt;
  }
  EXPECT_GE(no_smt, 8);
}

}  // namespace
}  // namespace ebmf
