// Tests for the CDCL SAT solver, including randomized cross-checks against
// the independent DPLL reference and classic structured instances.

#include "sat/solver.h"

#include <gtest/gtest.h>

#include "sat/brute.h"
#include "sat/dimacs.h"
#include "support/rng.h"

namespace ebmf::sat {
namespace {

TEST(SatSolver, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(SatSolver, SingleUnit) {
  Solver s;
  const Var v = s.new_var();
  s.add_clause(pos(v));
  EXPECT_EQ(s.solve(), SolveResult::Sat);
  EXPECT_TRUE(s.model_true(pos(v)));
  EXPECT_FALSE(s.model_true(neg(v)));
}

TEST(SatSolver, ContradictoryUnitsUnsat) {
  Solver s;
  const Var v = s.new_var();
  EXPECT_TRUE(s.add_clause(pos(v)));
  EXPECT_FALSE(s.add_clause(neg(v)));
  EXPECT_TRUE(s.in_conflict());
  EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(SatSolver, EmptyClauseUnsat) {
  Solver s;
  (void)s.new_var();
  EXPECT_FALSE(s.add_clause(Clause{}));
  EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(SatSolver, TautologyIgnored) {
  Solver s;
  const Var v = s.new_var();
  EXPECT_TRUE(s.add_clause(Clause{pos(v), neg(v)}));
  EXPECT_EQ(s.num_clauses(), 0u);
  EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(SatSolver, DuplicateLiteralsMerged) {
  Solver s;
  const Var v = s.new_var();
  const Var w = s.new_var();
  s.add_clause(Clause{pos(v), pos(v), neg(w)});
  EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(SatSolver, SimpleImplicationChain) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 10; ++i) v.push_back(s.new_var());
  for (int i = 0; i + 1 < 10; ++i) s.add_clause(neg(v[i]), pos(v[i + 1]));
  s.add_clause(pos(v[0]));
  EXPECT_EQ(s.solve(), SolveResult::Sat);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(s.model_true(pos(v[i])));
}

TEST(SatSolver, XorChainSatisfiable) {
  // x0 xor x1 xor ... via 3-clause encodings of equivalences.
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 8; ++i) v.push_back(s.new_var());
  for (int i = 0; i + 2 < 8; i += 2) {
    // v[i+2] == v[i] xor v[i+1]
    s.add_clause(Clause{neg(v[i]), neg(v[i + 1]), neg(v[i + 2])});
    s.add_clause(Clause{pos(v[i]), pos(v[i + 1]), neg(v[i + 2])});
    s.add_clause(Clause{neg(v[i]), pos(v[i + 1]), pos(v[i + 2])});
    s.add_clause(Clause{pos(v[i]), neg(v[i + 1]), pos(v[i + 2])});
  }
  EXPECT_EQ(s.solve(), SolveResult::Sat);
}

/// Pigeonhole principle: n+1 pigeons into n holes — classic UNSAT family
/// that requires real conflict analysis (resolution), not luck.
void add_php(Solver& s, int pigeons, int holes,
             std::vector<std::vector<Lit>>& x) {
  x.assign(pigeons, {});
  for (int p = 0; p < pigeons; ++p)
    for (int h = 0; h < holes; ++h) x[p].push_back(pos(s.new_var()));
  for (int p = 0; p < pigeons; ++p) s.add_clause(Clause(x[p]));
  for (int h = 0; h < holes; ++h)
    for (int p1 = 0; p1 < pigeons; ++p1)
      for (int p2 = p1 + 1; p2 < pigeons; ++p2)
        s.add_clause(x[p1][h].neg(), x[p2][h].neg());
}

TEST(SatSolver, PigeonholeUnsat) {
  for (int n = 2; n <= 6; ++n) {
    Solver s;
    std::vector<std::vector<Lit>> x;
    add_php(s, n + 1, n, x);
    EXPECT_EQ(s.solve(), SolveResult::Unsat) << "php " << n;
    EXPECT_GT(s.stats().conflicts, 0u);
  }
}

TEST(SatSolver, PigeonholeEqualSat) {
  Solver s;
  std::vector<std::vector<Lit>> x;
  add_php(s, 5, 5, x);
  EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(SatSolver, AssumptionsFlipOutcome) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_clause(neg(a), pos(b));
  EXPECT_EQ(s.solve({pos(a), neg(b)}), SolveResult::Unsat);
  EXPECT_FALSE(s.in_conflict());  // only under assumptions
  EXPECT_EQ(s.solve({pos(a), pos(b)}), SolveResult::Sat);
  EXPECT_EQ(s.solve({pos(a)}), SolveResult::Sat);
  EXPECT_TRUE(s.model_true(pos(b)));
}

TEST(SatSolver, UnsatCoreContainsCulprits) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var c = s.new_var();
  s.add_clause(neg(a), neg(b));  // a,b incompatible
  (void)c;
  EXPECT_EQ(s.solve({pos(a), pos(b), pos(c)}), SolveResult::Unsat);
  const auto& core = s.unsat_core();
  EXPECT_FALSE(core.empty());
  for (Lit l : core) EXPECT_TRUE(l == pos(a) || l == pos(b));
}

TEST(SatSolver, IncrementalAddBetweenSolves) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_clause(pos(a), pos(b));
  EXPECT_EQ(s.solve(), SolveResult::Sat);
  s.add_clause(neg(a));
  EXPECT_EQ(s.solve(), SolveResult::Sat);
  EXPECT_TRUE(s.model_true(pos(b)));
  s.add_clause(neg(b));
  EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(SatSolver, ConflictBudgetYieldsUnknown) {
  Solver s;
  std::vector<std::vector<Lit>> x;
  add_php(s, 9, 8, x);  // hard enough to exceed a one-conflict budget
  Budget budget;
  budget.max_conflicts = 1;
  EXPECT_EQ(s.solve({}, budget), SolveResult::Unknown);
  // And solvable without the budget.
  EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(SatSolver, DeadlineYieldsUnknownOrAnswer) {
  Solver s;
  std::vector<std::vector<Lit>> x;
  add_php(s, 11, 10, x);
  Budget budget;
  budget.deadline = Deadline::after(0.0);  // already expired
  const auto r = s.solve({}, budget);
  EXPECT_TRUE(r == SolveResult::Unknown || r == SolveResult::Unsat);
}

// ---- Randomized cross-check against the DPLL reference -----------------

Cnf random_cnf(std::size_t vars, std::size_t clauses, std::size_t width,
               Rng& rng) {
  Cnf cnf;
  cnf.num_vars = vars;
  for (std::size_t c = 0; c < clauses; ++c) {
    Clause cl;
    for (std::size_t k = 0; k < width; ++k) {
      const auto v = static_cast<Var>(rng.below(vars));
      cl.push_back(Lit(v, rng.chance(0.5)));
    }
    cnf.clauses.push_back(std::move(cl));
  }
  return cnf;
}

class SatRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SatRandom, AgreesWithDpllReference) {
  Rng rng(GetParam());
  for (int inst = 0; inst < 40; ++inst) {
    // Around the 3-SAT phase transition (ratio ~4.3) plus easy regions.
    const std::size_t vars = 8 + rng.below(8);
    const std::size_t clauses = vars * (3 + rng.below(3));
    const Cnf cnf = random_cnf(vars, clauses, 3, rng);

    Solver s;
    for (std::size_t v = 0; v < cnf.num_vars; ++v) (void)s.new_var();
    for (const auto& c : cnf.clauses) s.add_clause(c);
    const auto cdcl = s.solve();

    const auto reference = brute_force_sat(cnf);
    if (reference.has_value()) {
      EXPECT_EQ(cdcl, SolveResult::Sat) << "seed " << GetParam();
      // Our model must satisfy the formula too.
      std::vector<bool> model(cnf.num_vars);
      for (std::size_t v = 0; v < cnf.num_vars; ++v)
        model[v] = s.model_true(pos(static_cast<Var>(v)));
      EXPECT_TRUE(model_satisfies(cnf, model));
    } else {
      EXPECT_EQ(cdcl, SolveResult::Unsat) << "seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatRandom,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99,
                                           111));

TEST(SatSolver, StatsAccumulate) {
  Solver s;
  std::vector<std::vector<Lit>> x;
  add_php(s, 7, 6, x);
  EXPECT_EQ(s.solve(), SolveResult::Unsat);
  const auto& st = s.stats();
  EXPECT_GT(st.conflicts, 0u);
  EXPECT_GT(st.propagations, 0u);
  EXPECT_GT(st.learned_clauses, 0u);
}

TEST(SatSolver, LargeRandomSatInstanceSolves) {
  // Under-constrained: almost surely SAT; checks watch-list performance
  // paths (reduce_db, restarts) on a bigger instance.
  Rng rng(2024);
  const Cnf cnf = random_cnf(600, 1500, 3, rng);
  Solver s;
  for (std::size_t v = 0; v < cnf.num_vars; ++v) (void)s.new_var();
  for (const auto& c : cnf.clauses) s.add_clause(c);
  const auto r = s.solve();
  ASSERT_EQ(r, SolveResult::Sat);
  std::vector<bool> model(cnf.num_vars);
  for (std::size_t v = 0; v < cnf.num_vars; ++v)
    model[v] = s.model_true(pos(static_cast<Var>(v)));
  EXPECT_TRUE(model_satisfies(cnf, model));
}

}  // namespace
}  // namespace ebmf::sat
