// Cross-module integration tests: the full pipelines a user of the library
// would run, plus consistency checks between independent solvers.

#include <gtest/gtest.h>

#include "addressing/schedule.h"
#include "benchgen/suites.h"
#include "core/brute_force.h"
#include "core/fooling.h"
#include "core/trivial.h"
#include "dlx/packing_dlx.h"
#include "ftqc/patterns.h"
#include "ftqc/two_level.h"
#include "smt/sap.h"
#include "support/rng.h"

namespace ebmf {
namespace {

// The Fig. 1 pattern of the paper: pattern -> SAP -> certificate -> schedule.
TEST(Integration, PaperFigure1Pipeline) {
  const auto m = BinaryMatrix::parse(
      "101100;010011;101010;010101;111000;000111");
  const auto result = sap_solve(m);
  ASSERT_TRUE(result.proven_optimal());
  EXPECT_EQ(result.depth(), 5u);

  // Fooling-set certificate, as in the figure's filled markers.
  const auto fooling = max_fooling_set(m);
  EXPECT_EQ(fooling.size(), 5u);
  EXPECT_TRUE(is_fooling_set(m, fooling));

  // Execute on the AOD model.
  const addressing::Schedule schedule(m, result.partition);
  EXPECT_EQ(schedule.depth(), 5u);
  EXPECT_EQ(schedule.control_channels(), 12u);  // 6 rows + 6 cols vs 36 sites
}

// All four solvers agree on the optimum for tiny instances.
class SolverAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverAgreement, FourWayConsistency) {
  Rng rng(GetParam());
  for (int t = 0; t < 6; ++t) {
    const auto m = BinaryMatrix::random(4, 4, 0.35 + 0.06 * t, rng);
    if (m.is_zero()) continue;
    const auto brute = brute_force_ebmf(m);
    ASSERT_TRUE(brute.has_value());

    SapOptions onehot;
    onehot.encoder.encoding = smt::LabelEncoding::OneHot;
    onehot.packing.trials = 3;
    const auto sap_oh = sap_solve(m, onehot);
    SapOptions binary;
    binary.encoder.encoding = smt::LabelEncoding::Binary;
    binary.packing.trials = 3;
    const auto sap_bin = sap_solve(m, binary);

    ASSERT_TRUE(sap_oh.proven_optimal());
    ASSERT_TRUE(sap_bin.proven_optimal());
    EXPECT_EQ(sap_oh.depth(), brute->binary_rank);
    EXPECT_EQ(sap_bin.depth(), brute->binary_rank);

    // Heuristics are upper bounds.
    RowPackingOptions packing;
    packing.trials = 20;
    EXPECT_GE(row_packing_ebmf(m, packing).partition.size(),
              brute->binary_rank);
    EXPECT_GE(dlx::row_packing_dlx(m, packing).partition.size(),
              brute->binary_rank);
    EXPECT_GE(trivial_ebmf(m).size(), brute->binary_rank);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverAgreement,
                         ::testing::Values(7, 14, 28, 56));

// A miniature Table-I style run: on the gap family, row packing with many
// trials dominates the trivial heuristic (paper Observation 3).
TEST(Integration, GapFamilyHeuristicOrdering) {
  const auto suite = benchgen::gap_suite(10, 10, {3}, 12, 2024);
  std::size_t trivial_total = 0;
  std::size_t pack1_total = 0;
  std::size_t pack100_total = 0;
  for (const auto& inst : suite) {
    trivial_total += trivial_ebmf(inst.matrix).size();
    RowPackingOptions one;
    one.trials = 1;
    one.use_transpose = false;
    pack1_total += row_packing_ebmf(inst.matrix, one).partition.size();
    RowPackingOptions hundred;
    hundred.trials = 100;
    pack100_total += row_packing_ebmf(inst.matrix, hundred).partition.size();
  }
  EXPECT_LE(pack100_total, pack1_total);
  EXPECT_LT(pack100_total, trivial_total);
}

// The 100x100 scale of the paper: heuristics + rank certificate, no SMT.
TEST(Integration, LargeScaleHeuristicCertification) {
  Rng rng(4096);
  const auto m = BinaryMatrix::random(100, 100, 0.05, rng);
  SapOptions opt;
  opt.packing.trials = 200;
  opt.smt_cell_limit = 200;  // ones ~ 500 >> limit: SMT must be skipped
  const auto r = sap_solve(m, opt);
  EXPECT_TRUE(validate_partition(m, r.partition).ok);
  EXPECT_TRUE(r.smt_calls.empty());
  // Paper Table I: at 5%+ occupancy the 100x100 set is full rank and the
  // heuristic reaches it; allow a small margin here to keep the test robust
  // across seeds while still asserting near-optimality.
  EXPECT_LE(r.depth(), r.rank_lower + 2);
}

// Two-level FTQC pipeline on a surface-code-like workload.
TEST(Integration, FtqcTwoLevelPipeline) {
  Rng rng(11);
  const auto logical = ftqc::logical_pattern(4, 4, 0.5, rng);
  if (logical.is_zero()) GTEST_SKIP();
  const auto physical = ftqc::transversal_patch(4);
  const auto two = ftqc::solve_two_level(logical, physical);
  const auto big = BinaryMatrix::kron(logical, physical);
  ASSERT_TRUE(validate_partition(big, two.product_partition).ok);

  // Direct solve of the 16x16 product must not beat the certified product
  // solution (physical factor is all-ones -> product is optimal).
  SapOptions opt;
  opt.packing.trials = 50;
  const auto direct = sap_solve(big, opt);
  EXPECT_GE(direct.depth(), two.product_partition.size());

  // And the schedule executes on the full physical array.
  const addressing::Schedule schedule(big, two.product_partition);
  EXPECT_EQ(schedule.depth(), two.upper_bound);
}

// Anytime contract under pressure: random deadlines never yield invalid or
// bound-violating answers.
TEST(Integration, AnytimeContractUnderRandomDeadlines) {
  Rng rng(13);
  for (int t = 0; t < 6; ++t) {
    const auto inst = benchgen::gap_matrix(10, 10, 4, rng);
    SapOptions opt;
    opt.budget.deadline = Deadline::after(0.001 * t);
    opt.budget.max_conflicts = 50;
    const auto r = sap_solve(inst.matrix, opt);
    EXPECT_TRUE(validate_partition(inst.matrix, r.partition).ok);
    EXPECT_GE(r.depth(), r.rank_lower);
  }
}

// Determinism: the full SAP pipeline is reproducible for a fixed seed.
TEST(Integration, SapDeterministicGivenSeeds) {
  Rng rng(15);
  const auto inst = benchgen::gap_matrix(8, 8, 2, rng);
  SapOptions opt;
  opt.packing.seed = 99;
  const auto a = sap_solve(inst.matrix, opt);
  const auto b = sap_solve(inst.matrix, opt);
  EXPECT_EQ(a.depth(), b.depth());
  EXPECT_EQ(a.status, b.status);
}

}  // namespace
}  // namespace ebmf
