// Tests for the router-HA stack: leader-lease arbitration, fault
// injection in the net path, replicated-state adoption (member table +
// promoted hot keys), follower redirect/forward semantics, client
// address-list failover with request-id dedupe, and leaseholder takeover
// with warm hot keys.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/lease.h"
#include "cluster/membership.h"
#include "cluster/replica.h"
#include "io/request_io.h"
#include "router/router.h"
#include "service/net.h"
#include "service/service.h"
#include "support/fault.h"

namespace ebmf {
namespace {

using namespace std::chrono_literals;

// ---- leader lease ---------------------------------------------------------

using cluster::LeaderLease;
using cluster::LeaseClock;
using cluster::LeaseStatus;

LeaderLease make_lease(const std::string& self,
                       LeaseClock::duration ttl = 1s) {
  LeaderLease::Options options;
  options.self = self;
  options.ttl = ttl;
  return LeaderLease(options);
}

TEST(LeaderLease, FirstAcquireBidsTermOne) {
  LeaderLease lease = make_lease("a:1");
  const auto t0 = LeaseClock::now();
  const LeaseStatus status = lease.try_acquire(t0);
  EXPECT_TRUE(status.held);
  EXPECT_TRUE(status.valid);
  EXPECT_EQ(status.term, 1u);
  EXPECT_EQ(status.holder, "a:1");
  // Within the TTL the same holder renews at the same term.
  const LeaseStatus renewed = lease.try_acquire(t0 + 100ms);
  EXPECT_TRUE(renewed.held);
  EXPECT_EQ(renewed.term, 1u);
}

TEST(LeaderLease, ValidLeaseIsNeverStolenByAnEqualTermClaim) {
  LeaderLease lease = make_lease("b:1");
  const auto t0 = LeaseClock::now();
  lease.observe_claim("a:1", 1, t0);  // grant a:1 the lease
  // An equal-term claim from another bidder loses while the lease is
  // valid — even when that bidder's endpoint is smaller.
  const auto grant = lease.observe_claim("a:0", 1, t0 + 100ms);
  EXPECT_FALSE(grant.granted);
  EXPECT_EQ(grant.status.holder, "a:1");
  // And our own try_acquire is a no-op against a valid foreign lease.
  const LeaseStatus status = lease.try_acquire(t0 + 100ms);
  EXPECT_FALSE(status.held);
  EXPECT_EQ(status.holder, "a:1");
}

TEST(LeaderLease, ExpiredLeaseIsRebidAtTheNextTerm) {
  LeaderLease lease = make_lease("b:1", 100ms);
  const auto t0 = LeaseClock::now();
  lease.observe_claim("a:1", 3, t0);
  // Past the deadline the holder has been silent a full TTL: bid term 4.
  const LeaseStatus status = lease.try_acquire(t0 + 200ms);
  EXPECT_TRUE(status.held);
  EXPECT_EQ(status.term, 4u);
  EXPECT_EQ(status.holder, "b:1");
}

TEST(LeaderLease, FresherTermDeposesTheHolder) {
  LeaderLease lease = make_lease("a:1");
  const auto t0 = LeaseClock::now();
  ASSERT_TRUE(lease.try_acquire(t0).held);
  const auto grant = lease.observe_claim("b:1", 2, t0 + 10ms);
  EXPECT_TRUE(grant.granted);
  EXPECT_EQ(grant.status.holder, "b:1");
  EXPECT_FALSE(grant.status.held);  // we were deposed
  // The deposed leader does not re-bid while b's lease is valid.
  EXPECT_FALSE(lease.try_acquire(t0 + 20ms).held);
}

TEST(LeaderLease, EqualTermTieOnExpiredLeaseBreaksToSmallerEndpoint) {
  LeaderLease lease = make_lease("c:1", 100ms);
  const auto t0 = LeaseClock::now();
  lease.observe_claim("b:1", 2, t0);
  const auto t1 = t0 + 200ms;  // b's lease expired
  // A larger endpoint at the same term loses the tie...
  EXPECT_FALSE(lease.observe_claim("b:2", 2, t1).granted);
  // ...a smaller one wins it.
  const auto grant = lease.observe_claim("a:1", 2, t1);
  EXPECT_TRUE(grant.granted);
  EXPECT_EQ(grant.status.holder, "a:1");
}

TEST(LeaderLease, ObserveReportAdoptsFresherTermsOnly) {
  LeaderLease lease = make_lease("a:1");
  const auto t0 = LeaseClock::now();
  ASSERT_TRUE(lease.try_acquire(t0).held);  // term 1
  lease.observe_report("b:1", 1, t0 + 10ms);  // same term: ignored
  EXPECT_EQ(lease.status(t0 + 10ms).holder, "a:1");
  lease.observe_report("b:1", 5, t0 + 10ms);  // fresher: adopted
  const LeaseStatus status = lease.status(t0 + 10ms);
  EXPECT_EQ(status.holder, "b:1");
  EXPECT_EQ(status.term, 5u);
  EXPECT_FALSE(status.held);
}

TEST(LeaderLease, SymmetricBidRaceResolvesToTheSmallerEndpoint) {
  // Both routers bid term 1 at once; each refuses the other's claim
  // (observe_claim never breaks a valid lease). The larger endpoint must
  // stand down when the refusal reply names a smaller same-term holder.
  LeaderLease larger = make_lease("b:1");
  const auto t0 = LeaseClock::now();
  ASSERT_TRUE(larger.try_acquire(t0).held);   // b:1 grants itself term 1
  larger.observe_report("a:1", 1, t0 + 10ms);  // a:1's refusal reply
  const LeaseStatus stood_down = larger.status(t0 + 10ms);
  EXPECT_FALSE(stood_down.held);
  EXPECT_EQ(stood_down.holder, "a:1");

  // The smaller endpoint ignores the mirror-image report and keeps it.
  LeaderLease smaller = make_lease("a:1");
  ASSERT_TRUE(smaller.try_acquire(t0).held);
  smaller.observe_report("b:1", 1, t0 + 10ms);
  EXPECT_TRUE(smaller.status(t0 + 10ms).held);
}

TEST(LeaderLease, RebootedLeaderReentersAsFollower) {
  // A rebooted ex-leader starts from term 0; the standing lease it learns
  // about via a hello report keeps it from bidding against the holder.
  LeaderLease lease = make_lease("a:1", 100ms);
  const auto t0 = LeaseClock::now();
  lease.observe_report("b:1", 7, t0);
  EXPECT_FALSE(lease.try_acquire(t0 + 10ms).held);
  // Once b:1 goes silent for a TTL, the bid names term 8.
  const LeaseStatus status = lease.try_acquire(t0 + 300ms);
  EXPECT_TRUE(status.held);
  EXPECT_EQ(status.term, 8u);
}

// ---- fault injection ------------------------------------------------------

/// Every fault test disarms the process-wide plan on exit, pass or fail —
/// leaked faults would poison unrelated tests in this binary.
struct FaultGuard {
  ~FaultGuard() { fault::reset(); }
};

TEST(FaultInjection, SpecParsesKnownKeysAndRejectsGarbage) {
  FaultGuard guard;
  ASSERT_TRUE(fault::configure_from_spec(
      "drop_connect=0.25,drop_write=0.5,torn_write=0.125,delay_p=1,"
      "delay_ms=7,seed=42"));
  const fault::Config config = fault::current();
  EXPECT_DOUBLE_EQ(config.drop_connect, 0.25);
  EXPECT_DOUBLE_EQ(config.drop_write, 0.5);
  EXPECT_DOUBLE_EQ(config.torn_write, 0.125);
  EXPECT_DOUBLE_EQ(config.delay_p, 1.0);
  EXPECT_EQ(config.delay_ms, 7u);
  EXPECT_EQ(config.seed, 42u);
  EXPECT_TRUE(config.any());

  EXPECT_FALSE(fault::configure_from_spec("drop_connect=banana"));
  EXPECT_FALSE(fault::configure_from_spec("nonsense"));
  EXPECT_FALSE(fault::configure_from_spec("unknown_knob=1"));
  // An empty spec is the documented "off" spelling.
  EXPECT_TRUE(fault::configure_from_spec(""));
  EXPECT_FALSE(fault::current().any());
}

TEST(FaultInjection, DropConnectMakesTcpConnectFail) {
  FaultGuard guard;
  service::net::TcpListener listener;
  listener.listen("127.0.0.1", 0);

  fault::Config config;
  config.drop_connect = 1.0;
  fault::configure(config);
  const std::uint64_t before = fault::stats().connect_drops;
  EXPECT_THROW(service::net::tcp_connect("127.0.0.1", listener.port()),
               std::runtime_error);
  EXPECT_GT(fault::stats().connect_drops, before);

  // Disarmed, the same dial succeeds — the listener was healthy all along.
  fault::reset();
  const int fd = service::net::tcp_connect("127.0.0.1", listener.port());
  EXPECT_GE(fd, 0);
  ::close(fd);
}

TEST(FaultInjection, DropWriteAndTornWriteBreakTheLine) {
  FaultGuard guard;
  int pair[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);

  fault::Config config;
  config.drop_write = 1.0;
  fault::configure(config);
  const std::uint64_t drops = fault::stats().write_drops;
  EXPECT_FALSE(service::net::write_line(pair[0], "{\"op\":\"stats\"}"));
  EXPECT_GT(fault::stats().write_drops, drops);
  ::close(pair[0]);
  ::close(pair[1]);

  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  config.drop_write = 0.0;
  config.torn_write = 1.0;
  fault::configure(config);
  const std::uint64_t tears = fault::stats().torn_writes;
  EXPECT_FALSE(service::net::write_line(pair[0], "{\"op\":\"stats\"}"));
  EXPECT_GT(fault::stats().torn_writes, tears);
  // The peer got a strict prefix: some bytes, never a full line.
  fault::reset();
  char received[64];
  const ssize_t n = ::recv(pair[1], received, sizeof received, MSG_DONTWAIT);
  EXPECT_GE(n, 0);
  EXPECT_LT(static_cast<std::size_t>(n),
            std::string("{\"op\":\"stats\"}\n").size());
  ::close(pair[0]);
  ::close(pair[1]);
}

TEST(FaultInjection, InjectedDelayActuallyStalls) {
  FaultGuard guard;
  fault::Config config;
  config.delay_p = 1.0;
  config.delay_ms = 20;
  fault::configure(config);
  const std::uint64_t before = fault::stats().delays;
  const auto start = std::chrono::steady_clock::now();
  fault::maybe_delay();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, 15ms);
  EXPECT_GT(fault::stats().delays, before);
}

// ---- replicated-state adoption --------------------------------------------

TEST(MembershipAdopt, RejectsStaleAcceptsNewerEpochWholesale) {
  cluster::Membership membership;
  membership.join("a:1");
  membership.join("b:1");
  const std::uint64_t epoch = membership.epoch();

  std::vector<cluster::Member> snapshot;
  cluster::Member member;
  member.endpoint = "c:1";
  snapshot.push_back(member);

  // Older epoch: refused outright.
  EXPECT_FALSE(membership.adopt(snapshot, epoch - 1));
  EXPECT_EQ(membership.size(), 2u);

  // Newer epoch: the table is replaced wholesale.
  EXPECT_TRUE(membership.adopt(snapshot, epoch + 3));
  EXPECT_EQ(membership.size(), 1u);
  EXPECT_EQ(membership.epoch(), epoch + 3);
  EXPECT_EQ(membership.members()[0].endpoint, "c:1");

  // Equal epoch: no change, liveness refresh only.
  EXPECT_FALSE(membership.adopt(snapshot, epoch + 3));
  EXPECT_EQ(membership.size(), 1u);
}

TEST(HotKeyAdopt, SeedsWarmKeysAtThresholdWithoutRepromotion) {
  cluster::HotKeyTracker::Options options;
  options.promote_threshold = 4;
  cluster::HotKeyTracker tracker(options);

  EXPECT_EQ(tracker.adopt_promoted({10, 11}), 2u);
  EXPECT_TRUE(tracker.is_promoted(10));
  EXPECT_TRUE(tracker.is_promoted(11));
  EXPECT_EQ(tracker.promoted_count(), 2u);
  // Idempotent: re-adopting the same snapshot promotes nothing new.
  EXPECT_EQ(tracker.adopt_promoted({10, 11}), 0u);

  // The adopted key is already warm: its next hit is NOT a fresh
  // promotion event (no re-promotion burst at takeover).
  const cluster::HotKeyUpdate update = tracker.record(10);
  EXPECT_TRUE(update.promoted);
  EXPECT_FALSE(update.promoted_now);
  EXPECT_GE(update.hits, options.promote_threshold);
}

// ---- redirect parsing -----------------------------------------------------

TEST(WireRedirect, RecognizesOnlyRedirectLines) {
  std::string endpoint;
  std::uint64_t epoch = 0;
  std::uint64_t term = 0;
  EXPECT_TRUE(io::parse_wire_redirect(
      R"({"id":7,"redirect":"10.0.0.2:7500","epoch":12,"term":3})",
      &endpoint, &epoch, &term));
  EXPECT_EQ(endpoint, "10.0.0.2:7500");
  EXPECT_EQ(epoch, 12u);
  EXPECT_EQ(term, 3u);

  // Near-misses: a counter named "redirects", an error line, a report,
  // malformed JSON. None may parse as a redirect (and none may throw).
  EXPECT_FALSE(io::parse_wire_redirect(R"({"redirects":3})", &endpoint,
                                       &epoch, &term));
  EXPECT_FALSE(io::parse_wire_redirect(R"({"error":"no leaseholder"})",
                                       &endpoint, &epoch, &term));
  EXPECT_FALSE(io::parse_wire_redirect(R"({"redirect":17})", &endpoint,
                                       &epoch, &term));
  EXPECT_FALSE(io::parse_wire_redirect("{\"redirect\":\"x\"", &endpoint,
                                       &epoch, &term));
}

// ---- fleet end to end -----------------------------------------------------

service::ServerOptions backend_options() {
  service::ServerOptions options;
  options.port = 0;
  options.cache_mb = 8;
  options.budget_ceiling_seconds = 5.0;
  return options;
}

/// Reserve a loopback port by binding an ephemeral listener and closing
/// it. The tiny reuse race is acceptable in tests; routers need to know
/// each other's addresses before either has started.
std::uint16_t reserve_port() {
  service::net::TcpListener probe;
  probe.listen("127.0.0.1", 0);
  return probe.port();
}

router::RouterOptions fleet_router_options(std::uint16_t port,
                                           std::uint16_t peer_port) {
  router::RouterOptions options;
  options.port = port;
  options.dynamic = true;
  options.l1_mb = 0.0;
  options.backoff_base_ms = 5;
  options.backoff_max_ms = 50;
  options.health_interval_ms = 10;
  options.reply_timeout_seconds = 10.0;
  options.heartbeat_ms = 50.0;
  options.grace_ms = 60000.0;  // eviction effectively off
  options.promote_after = 0;
  options.peers = {"127.0.0.1:" + std::to_string(peer_port)};
  options.lease_ttl_ms = 250.0;
  options.sync_interval_ms = 50.0;
  return options;
}

/// Poll `predicate` at 10 ms until true or ~5 s elapse.
bool eventually(const std::function<bool()>& predicate) {
  for (int tries = 0; tries < 500; ++tries) {
    if (predicate()) return true;
    std::this_thread::sleep_for(10ms);
  }
  return false;
}

/// A two-router fleet over shared ephemeral ports.
struct RouterPair {
  explicit RouterPair(
      const std::function<void(router::RouterOptions&)>& tweak = {}) {
    const std::uint16_t port_a = reserve_port();
    const std::uint16_t port_b = reserve_port();
    router::RouterOptions options_a = fleet_router_options(port_a, port_b);
    router::RouterOptions options_b = fleet_router_options(port_b, port_a);
    if (tweak) {
      tweak(options_a);
      tweak(options_b);
    }
    a = std::make_unique<router::Router>(options_a);
    b = std::make_unique<router::Router>(options_b);
    a->start();
    b->start();
  }

  ~RouterPair() {
    if (a) a->stop();
    if (b) b->stop();
  }

  /// Wait for a *stable* election: exactly one holder, and both routers
  /// agree on who and which term. Requiring agreement matters — right
  /// after startup one router can transiently believe it leads before
  /// adopting the other's same-term claim, and a test that picks that
  /// router as "the leader" races the stand-down.
  router::Router* elect() {
    router::Router* leader = nullptr;
    if (!eventually([&]() {
          const router::RouterStats sa = a->stats();
          const router::RouterStats sb = b->stats();
          if (sa.leaseholder == sb.leaseholder) return false;
          if (sa.lease_holder != sb.lease_holder || sa.term != sb.term ||
              sa.lease_holder.empty())
            return false;  // the loser has not yet adopted the winner
          leader = sa.leaseholder ? a.get() : b.get();
          return true;
        }))
      return nullptr;
    return leader;
  }

  router::Router* follower_of(router::Router* leader) {
    return leader == a.get() ? b.get() : a.get();
  }

  std::unique_ptr<router::Router> a;
  std::unique_ptr<router::Router> b;
};

std::string router_address(const router::Router& router) {
  return "127.0.0.1:" + std::to_string(router.port());
}

TEST(Fleet, ExactlyOneRouterWinsTheLeaseAndSyncsState) {
  RouterPair fleet;
  router::Router* leader = fleet.elect();
  ASSERT_NE(leader, nullptr) << "no leaseholder elected";
  router::Router* follower = fleet.follower_of(leader);

  // Both agree on the holder's identity and term.
  ASSERT_TRUE(eventually([&]() {
    const router::RouterStats ls = leader->stats();
    const router::RouterStats fs = follower->stats();
    return ls.lease_holder == fs.lease_holder && ls.term == fs.term &&
           !ls.lease_holder.empty();
  }));

  // A join through the leaseholder replicates to the follower's view.
  service::Server backend(backend_options());
  backend.start();
  const std::string backend_endpoint =
      "127.0.0.1:" + std::to_string(backend.port());
  service::Client client("127.0.0.1", leader->port());
  const std::string reply = client.round_trip(
      "{\"op\":\"join\",\"endpoint\":\"" + backend_endpoint + "\"}");
  EXPECT_NE(reply.find("\"joined\":true"), std::string::npos) << reply;

  ASSERT_TRUE(eventually([&]() {
    const router::RouterStats fs = follower->stats();
    return fs.members == 1 && fs.syncs_applied > 0 &&
           fs.epoch == leader->stats().epoch;
  }));
  backend.stop();
}

TEST(Fleet, FollowerForwardsWritesToTheLeaseholder) {
  RouterPair fleet;
  router::Router* leader = fleet.elect();
  ASSERT_NE(leader, nullptr);
  router::Router* follower = fleet.follower_of(leader);

  service::Server backend(backend_options());
  backend.start();
  const std::string backend_endpoint =
      "127.0.0.1:" + std::to_string(backend.port());

  // The write lands on the follower but is answered by the leaseholder.
  service::Client client("127.0.0.1", follower->port());
  const std::string reply = client.round_trip(
      "{\"id\":3,\"op\":\"join\",\"endpoint\":\"" + backend_endpoint +
      "\"}");
  EXPECT_EQ(reply.rfind("{\"id\":3,", 0), 0u) << reply;
  EXPECT_NE(reply.find("\"joined\":true"), std::string::npos) << reply;
  EXPECT_GE(follower->stats().forwards, 1u);
  EXPECT_GE(leader->stats().joins, 1u);
  backend.stop();
}

TEST(Fleet, UnreachableLeaseholderYieldsEpochStampedRedirect) {
  // Long TTL: the dead leaseholder's lease stays valid for the whole
  // test, so the follower must answer with a redirect, not a takeover.
  RouterPair fleet([](router::RouterOptions& options) {
    options.lease_ttl_ms = 60000.0;
    options.sync_interval_ms = 50.0;
  });
  router::Router* leader = fleet.elect();
  ASSERT_NE(leader, nullptr);
  router::Router* follower = fleet.follower_of(leader);
  const std::string leader_address = router_address(*leader);
  leader->stop();

  // Raw wire exchange (service::Client would chase the redirect): the
  // follower names the leaseholder it still believes in, epoch-stamped.
  const int fd = service::net::tcp_connect("127.0.0.1", follower->port());
  ASSERT_TRUE(service::net::write_line(
      fd, "{\"id\":9,\"op\":\"join\",\"endpoint\":\"127.0.0.1:1\"}"));
  service::net::LineBuffer buffer;
  std::string reply;
  char chunk[4096];
  while (!buffer.pop(reply)) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    ASSERT_GT(n, 0);
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  std::string endpoint;
  std::uint64_t epoch = 0;
  std::uint64_t term = 0;
  ASSERT_TRUE(io::parse_wire_redirect(reply, &endpoint, &epoch, &term))
      << reply;
  EXPECT_EQ(endpoint, leader_address);
  EXPECT_EQ(epoch, follower->stats().epoch);
  EXPECT_GE(term, 1u);
  EXPECT_GE(follower->stats().redirects, 1u);
}

TEST(Fleet, StaleRedirectConvergesOnTheNewLeaseholder) {
  RouterPair fleet;
  router::Router* leader = fleet.elect();
  ASSERT_NE(leader, nullptr);
  router::Router* follower = fleet.follower_of(leader);
  const std::uint64_t old_term = leader->stats().term;

  service::Server backend(backend_options());
  backend.start();
  const std::string backend_endpoint =
      "127.0.0.1:" + std::to_string(backend.port());

  // Kill the leaseholder, then keep asking the follower to accept a
  // write. Early replies are stale redirects (pointing at the corpse) or
  // election errors; the client chases/retries until the follower wins
  // the next term and applies the write itself.
  leader->stop();
  service::Client client("127.0.0.1", follower->port());
  const std::string join_line =
      "{\"op\":\"join\",\"endpoint\":\"" + backend_endpoint + "\"}";
  ASSERT_TRUE(eventually([&]() {
    const std::string reply = client.round_trip(join_line);
    return reply.find("\"joined\":true") != std::string::npos;
  }));
  const router::RouterStats stats = follower->stats();
  EXPECT_TRUE(stats.leaseholder);
  EXPECT_GT(stats.term, old_term);
  EXPECT_EQ(stats.members, 1u);
  backend.stop();
}

TEST(Fleet, TakeoverKeepsViewAndHotKeysWarmWithoutRepromotion) {
  service::Server backend(backend_options());
  backend.start();
  const std::string backend_endpoint =
      "127.0.0.1:" + std::to_string(backend.port());
  RouterPair fleet([&](router::RouterOptions& options) {
    options.backends = {backend_endpoint};
    options.promote_after = 3;
    options.replicas = 2;
  });
  router::Router* leader = fleet.elect();
  ASSERT_NE(leader, nullptr);
  router::Router* follower = fleet.follower_of(leader);

  // Heat one key past the promotion threshold on the leaseholder.
  {
    service::Client client("127.0.0.1", leader->port());
    for (int i = 0; i < 4; ++i) {
      const std::string reply = client.round_trip(
          R"({"pattern":"110;011;111","label":"hot"})");
      ASSERT_EQ(reply.find("\"error\""), std::string::npos) << reply;
    }
  }
  ASSERT_EQ(leader->stats().promoted, 1u);
  // The promoted set replicates to the follower without a promotion
  // event there (adopted, not re-counted).
  ASSERT_TRUE(eventually([&]() { return follower->stats().promoted == 1; }));
  EXPECT_EQ(follower->stats().promotions, 0u);

  // Kill the leaseholder: the follower takes the next term with the
  // replicated view — same members, hot key still promoted, still no
  // local promotion event — and keeps serving solves.
  leader->stop();
  ASSERT_TRUE(eventually([&]() { return follower->stats().leaseholder; }));
  const router::RouterStats stats = follower->stats();
  EXPECT_EQ(stats.members, 1u);
  EXPECT_EQ(stats.promoted, 1u);
  EXPECT_EQ(stats.promotions, 0u);
  EXPECT_GE(stats.lease_acquires, 1u);

  service::Client client("127.0.0.1", follower->port());
  const std::string reply = client.round_trip(
      R"({"pattern":"110;011;111","label":"after-takeover"})");
  EXPECT_EQ(reply.find("\"error\""), std::string::npos) << reply;
  backend.stop();
}

// ---- client failover ------------------------------------------------------

TEST(ClientHA, ConnectsPastDeadAddressesInTheList) {
  service::Server server(backend_options());
  server.start();
  const std::uint16_t dead = reserve_port();
  service::Client client({"127.0.0.1:" + std::to_string(dead),
                          "127.0.0.1:" + std::to_string(server.port())});
  EXPECT_EQ(client.endpoint(),
            "127.0.0.1:" + std::to_string(server.port()));
  const std::string reply =
      client.round_trip(R"({"pattern":"10;01","label":"ha"})");
  EXPECT_EQ(reply.find("\"error\""), std::string::npos) << reply;
}

TEST(ClientHA, FailsOverToTheNextAddressWhenThePeerDies) {
  auto first = std::make_unique<service::Server>(backend_options());
  service::Server second(backend_options());
  first->start();
  second.start();
  const std::string first_address =
      "127.0.0.1:" + std::to_string(first->port());
  const std::string second_address =
      "127.0.0.1:" + std::to_string(second.port());

  service::Client client({first_address, second_address});
  ASSERT_EQ(client.endpoint(), first_address);
  ASSERT_EQ(client.round_trip(R"({"pattern":"10;01"})").find("\"error\""),
            std::string::npos);

  first->stop();
  first.reset();
  const std::string reply = client.round_trip(R"({"pattern":"10;01"})");
  EXPECT_EQ(reply.find("\"error\""), std::string::npos) << reply;
  EXPECT_EQ(client.endpoint(), second_address);
}

TEST(ClientHA, RetriedRequestIdIsAnsweredExactlyOnce) {
  service::Server server(backend_options());
  server.start();
  service::Client client("127.0.0.1", server.port());

  const std::string line = R"({"id":41,"pattern":"110;011;111"})";
  const std::string first = client.round_trip(line);
  ASSERT_EQ(first.rfind("{\"id\":41,", 0), 0u) << first;
  const std::uint64_t answered = server.stats().requests;

  // The retry is served from the client's answered-id cache: same reply,
  // and the server never sees the request again.
  const std::string second = client.round_trip(line);
  EXPECT_EQ(second, first);
  EXPECT_EQ(server.stats().requests, answered);

  // A different id is a different request and does reach the server.
  const std::string third =
      client.round_trip(R"({"id":42,"pattern":"110;011;111"})");
  EXPECT_EQ(third.rfind("{\"id\":42,", 0), 0u) << third;
  EXPECT_EQ(server.stats().requests, answered + 1);

  // So does a *reused* id on a different payload — not a retry, so the
  // cache must not answer it.
  const std::string reused =
      client.round_trip(R"({"id":41,"pattern":"10;01"})");
  EXPECT_NE(reused, first);
  EXPECT_EQ(server.stats().requests, answered + 2);
}

TEST(ClientHA, RequestIdRetriedAcrossRoutersIsAnsweredOnce) {
  // The drill scenario in miniature: a request answered via router A is
  // retried (same id) against a client whose list spans both routers
  // after A dies — the dedupe cache answers it without re-execution.
  service::Server backend(backend_options());
  backend.start();
  const std::string backend_endpoint =
      "127.0.0.1:" + std::to_string(backend.port());
  RouterPair fleet([&](router::RouterOptions& options) {
    options.backends = {backend_endpoint};
  });
  router::Router* leader = fleet.elect();
  ASSERT_NE(leader, nullptr);
  router::Router* follower = fleet.follower_of(leader);

  service::Client client(
      {router_address(*leader), router_address(*follower)});
  const std::string line = R"({"id":77,"pattern":"110;011;111"})";
  const std::string first = client.round_trip(line);
  ASSERT_EQ(first.rfind("{\"id\":77,", 0), 0u) << first;

  leader->stop();
  const std::string second = client.round_trip(line);
  EXPECT_EQ(second, first);
  // A fresh id after the failover still gets served (by whoever is left).
  const std::string fresh =
      client.round_trip(R"({"id":78,"pattern":"110;011;111"})");
  EXPECT_EQ(fresh.rfind("{\"id\":78,", 0), 0u) << fresh;
  EXPECT_EQ(fresh.find("\"error\""), std::string::npos) << fresh;
  backend.stop();
}

}  // namespace
}  // namespace ebmf
