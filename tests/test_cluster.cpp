// Tests for ebmf::cluster: the versioned membership registry
// (join/heartbeat/evict epochs), epoch-stamped view swaps, the hot-key
// tracker, and the live control plane end to end — a backend joining
// mid-burst without losing an in-flight request, a promoted hot key
// surviving the death of its primary replica, epoch swaps leaving
// permuted-duplicate affinity intact, heartbeat eviction, and the
// server-side announce client.

#include "cluster/membership.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "benchgen/generators.h"
#include "cluster/replica.h"
#include "cluster/view.h"
#include "engine/engine.h"
#include "io/json.h"
#include "io/request_io.h"
#include "router/router.h"
#include "service/canon.h"
#include "service/service.h"
#include "support/rng.h"

namespace ebmf::cluster {
namespace {

using namespace std::chrono_literals;

// ---- membership -----------------------------------------------------------

TEST(Membership, JoinBumpsTheEpochOnceAndRejoinRefreshes) {
  Membership members(1s);
  const auto t0 = Clock::now();
  const MembershipUpdate first = members.join("a:1", t0);
  EXPECT_TRUE(first.changed);
  EXPECT_TRUE(first.known);
  EXPECT_EQ(first.epoch, 1u);
  // A re-join of a live member is a heartbeat, not a membership change.
  const MembershipUpdate again = members.join("a:1", t0 + 100ms);
  EXPECT_FALSE(again.changed);
  EXPECT_EQ(again.epoch, 1u);
  EXPECT_EQ(members.size(), 1u);
}

TEST(Membership, HeartbeatRefreshesKnownMembersAndRejectsUnknown) {
  Membership members(1s);
  const auto t0 = Clock::now();
  members.join("a:1", t0);
  EXPECT_TRUE(members.heartbeat("a:1", t0 + 500ms).known);
  EXPECT_FALSE(members.heartbeat("ghost:1", t0).known);
  // The refreshed member survives a sweep its original join would not.
  EXPECT_TRUE(members.sweep(t0 + 1400ms).empty());
  const std::vector<std::string> evicted = members.sweep(t0 + 2600ms);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], "a:1");
  EXPECT_EQ(members.size(), 0u);
  // Post-eviction heartbeats demand a re-join.
  EXPECT_FALSE(members.heartbeat("a:1", t0 + 3s).known);
}

TEST(Membership, StaticMembersAreNeverSwept) {
  Membership members(10ms);
  members.add_static("seed:1");
  const auto t0 = Clock::now();
  members.join("dyn:1", t0);
  const std::vector<std::string> evicted = members.sweep(t0 + 10s);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], "dyn:1");
  EXPECT_EQ(members.size(), 1u);
  EXPECT_EQ(members.members()[0].endpoint, "seed:1");
  EXPECT_TRUE(members.members()[0].is_static);
}

TEST(Membership, LeaveRemovesAndBumpsEpoch) {
  Membership members(1s);
  members.add_static("a:1");
  members.join("b:1");
  const std::uint64_t before = members.epoch();
  EXPECT_TRUE(members.leave("b:1").changed);
  EXPECT_EQ(members.epoch(), before + 1);
  EXPECT_FALSE(members.leave("b:1").changed);  // idempotent
  EXPECT_EQ(members.epoch(), before + 1);
  EXPECT_TRUE(members.leave("a:1").changed);  // static members may drain too
  EXPECT_EQ(members.size(), 0u);
}

// ---- view -----------------------------------------------------------------

TEST(ClusterView, OrderedIsAPermutationAndTopTruncates) {
  const auto view = ClusterView::make(7, {"a:1", "b:1", "c:1"});
  EXPECT_EQ(view->epoch(), 7u);
  EXPECT_EQ(view->size(), 3u);
  for (std::uint64_t key = 0; key < 32; ++key) {
    const std::vector<std::string> order = view->ordered(key);
    ASSERT_EQ(order.size(), 3u);
    const std::vector<std::string> top = view->top(key, 2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0], order[0]);
    EXPECT_EQ(top[1], order[1]);
  }
  EXPECT_TRUE(ClusterView::make(0, {})->empty());
}

TEST(ViewHolder, PublishSwapsWhileOldSnapshotsStayValid) {
  ViewHolder holder;
  const auto old_view = holder.current();
  EXPECT_TRUE(old_view->empty());
  holder.publish(ClusterView::make(3, {"a:1"}));
  EXPECT_EQ(holder.current()->epoch(), 3u);
  EXPECT_EQ(holder.current()->size(), 1u);
  // The snapshot taken before the swap is untouched.
  EXPECT_TRUE(old_view->empty());
}

// ---- hot keys -------------------------------------------------------------

TEST(HotKeyTracker, PromotesExactlyOnceAtTheThreshold) {
  HotKeyTracker tracker({/*promote_threshold=*/3, /*max_tracked=*/1024});
  EXPECT_FALSE(tracker.record(42).promoted);
  EXPECT_FALSE(tracker.record(42).promoted);
  const HotKeyUpdate third = tracker.record(42);
  EXPECT_TRUE(third.promoted);
  EXPECT_TRUE(third.promoted_now);
  EXPECT_EQ(third.hits, 3u);
  const HotKeyUpdate fourth = tracker.record(42);
  EXPECT_TRUE(fourth.promoted);
  EXPECT_FALSE(fourth.promoted_now);  // promotion fires once
  EXPECT_TRUE(tracker.is_promoted(42));
  EXPECT_FALSE(tracker.is_promoted(43));
  EXPECT_EQ(tracker.promoted_count(), 1u);
}

TEST(HotKeyTracker, ZeroThresholdDisablesTracking) {
  HotKeyTracker tracker({/*promote_threshold=*/0, /*max_tracked=*/1024});
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(tracker.record(1).promoted);
  EXPECT_EQ(tracker.tracked_count(), 0u);
}

TEST(HotKeyTracker, DecayBoundsTrackedKeysButKeepsPromotions) {
  HotKeyTracker tracker({/*promote_threshold=*/4, /*max_tracked=*/64});
  for (int i = 0; i < 4; ++i) tracker.record(7);  // promoted
  // A flood of one-off keys must not grow the map unboundedly.
  for (std::uint64_t key = 100; key < 1100; ++key) tracker.record(key);
  EXPECT_LE(tracker.tracked_count(), 65u);
  EXPECT_TRUE(tracker.is_promoted(7));
}

// ---- control plane end to end ---------------------------------------------

service::ServerOptions backend_options() {
  service::ServerOptions options;
  options.port = 0;  // ephemeral
  options.cache_mb = 8;
  options.budget_ceiling_seconds = 5.0;
  return options;
}

router::RouterOptions dynamic_options() {
  router::RouterOptions options;
  options.port = 0;
  options.dynamic = true;
  options.l1_mb = 0.0;  // observe the *backend* caches by default
  options.backoff_base_ms = 5;
  options.backoff_max_ms = 50;
  options.health_interval_ms = 10;
  options.reply_timeout_seconds = 10.0;
  options.heartbeat_ms = 50.0;
  options.grace_ms = 10000.0;  // eviction off unless a test wants it
  options.promote_after = 0;   // promotion off unless a test wants it
  return options;
}

/// Parsed response convenience (same shape as test_router.cpp's Reply).
struct Reply {
  io::json::Value document;

  explicit Reply(const std::string& line)
      : document(io::json::Value::parse(line)) {}

  [[nodiscard]] bool is_error() const {
    return document.find("error") != nullptr;
  }
  [[nodiscard]] double depth() const {
    return document.find("depth")->as_number();
  }
  [[nodiscard]] std::string label() const {
    const io::json::Value* value = document.find("label");
    return value == nullptr ? "" : value->as_string();
  }
  [[nodiscard]] std::string telemetry(const std::string& key) const {
    const io::json::Value* t = document.find("telemetry");
    if (t == nullptr) return "";
    const io::json::Value* value = t->find(key);
    return value == nullptr ? "" : value->as_string();
  }
};

std::string endpoint_of(const service::Server& server) {
  return "127.0.0.1:" + std::to_string(server.port());
}

std::string pattern_text(const BinaryMatrix& m) {
  std::string text;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    if (i != 0) text += ';';
    text += m.row(i).to_string();
  }
  return text;
}

/// A fresh row/column permutation of `m`.
BinaryMatrix permuted_copy(const BinaryMatrix& m, Rng& rng) {
  const auto row_perm = rng.permutation(m.rows());
  const auto col_perm = rng.permutation(m.cols());
  BinaryMatrix out(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      if (m.test(row_perm[i], col_perm[j])) out.set(i, j);
  return out;
}

/// Poll `predicate` at 10 ms until true or ~3 s elapse.
bool eventually(const std::function<bool()>& predicate) {
  for (int tries = 0; tries < 300; ++tries) {
    if (predicate()) return true;
    std::this_thread::sleep_for(10ms);
  }
  return false;
}

TEST(Cluster, JoinMidBurstStartsReceivingTrafficWithoutDroppingRequests) {
  // One static backend; a second joins in the middle of a pipelined burst.
  auto server_a = std::make_unique<service::Server>(backend_options());
  server_a->start();
  auto server_b = std::make_unique<service::Server>(backend_options());
  server_b->start();

  router::RouterOptions options = dynamic_options();
  options.backends = {endpoint_of(*server_a)};
  router::Router router(options);
  router.start();

  service::Client client("127.0.0.1", router.port());
  const int burst = 24;
  for (int i = 0; i < burst / 2; ++i)
    client.send_line("{\"pattern\": \"" +
                     std::string(i % 2 == 0 ? "110;011;111" : "10;01") +
                     "\", \"label\": \"b" + std::to_string(i) + "\"}");

  // Join B while the first half is in flight.
  service::Client control("127.0.0.1", router.port());
  const Reply joined(control.round_trip("{\"op\":\"join\",\"endpoint\":\"" +
                                        endpoint_of(*server_b) + "\"}"));
  ASSERT_FALSE(joined.is_error());
  EXPECT_TRUE(joined.document.find("joined")->as_bool());
  EXPECT_GE(joined.document.find("epoch")->as_number(), 2.0);

  for (int i = burst / 2; i < burst; ++i)
    client.send_line("{\"pattern\": \"" +
                     std::string(i % 2 == 0 ? "110;011;111" : "10;01") +
                     "\", \"label\": \"b" + std::to_string(i) + "\"}");

  // Zero lost requests across the epoch swap: every line answers, in order.
  for (int i = 0; i < burst; ++i) {
    const Reply reply(client.read_line());
    ASSERT_FALSE(reply.is_error()) << i << ": lost a request";
    EXPECT_EQ(reply.label(), "b" + std::to_string(i));
    EXPECT_EQ(reply.depth(), i % 2 == 0 ? 3.0 : 2.0);
  }

  // The joined backend owns ~half the key space: distinct patterns must
  // start landing on it.
  Rng rng(11);
  bool b_served = false;
  for (int attempt = 0; attempt < 40 && !b_served; ++attempt) {
    BinaryMatrix m = benchgen::random_matrix(5, 5, 0.5, rng);
    if (m.is_zero()) continue;
    const Reply reply(
        client.round_trip("{\"pattern\": \"" + pattern_text(m) + "\"}"));
    ASSERT_FALSE(reply.is_error());
    if (reply.telemetry("routed.backend") == endpoint_of(*server_b))
      b_served = true;
  }
  EXPECT_TRUE(b_served);
  EXPECT_GT(server_b->stats().requests, 0u);
  EXPECT_EQ(router.stats().joins, 1u);
  EXPECT_EQ(router.stats().members, 2u);

  router.stop();
  server_a->stop();
  server_b->stop();
}

TEST(Cluster, PromotedHotKeySurvivesReplicaKill) {
  auto server_a = std::make_unique<service::Server>(backend_options());
  server_a->start();
  auto server_b = std::make_unique<service::Server>(backend_options());
  server_b->start();

  router::RouterOptions options = dynamic_options();
  options.backends = {endpoint_of(*server_a), endpoint_of(*server_b)};
  options.replicas = 2;
  options.promote_after = 3;
  router::Router router(options);
  router.start();

  service::Client client("127.0.0.1", router.port());
  const std::string pattern = R"({"pattern": "1110;0111;1111"})";

  const Reply cold(client.round_trip(pattern));
  ASSERT_FALSE(cold.is_error());
  const std::string owner = cold.telemetry("routed.backend");
  service::Server* primary =
      owner == endpoint_of(*server_a) ? server_a.get() : server_b.get();
  service::Server* survivor =
      owner == endpoint_of(*server_a) ? server_b.get() : server_a.get();

  const Reply second(client.round_trip(pattern));
  ASSERT_FALSE(second.is_error());
  EXPECT_TRUE(second.telemetry("cluster.promote").empty());
  const Reply third(client.round_trip(pattern));
  ASSERT_FALSE(third.is_error());
  // The third hit crosses --promote-after=3: the reply is stamped and the
  // result fans out to the replica set.
  EXPECT_EQ(third.telemetry("cluster.promote"), "3");
  EXPECT_EQ(router.stats().promotions, 1u);
  ASSERT_TRUE(eventually([&]() { return survivor->stats().puts >= 1; }))
      << "replica put never reached the surviving backend";
  EXPECT_GE(router.stats().replica_puts, 1u);

  // Kill the primary; the router must notice.
  primary->stop();
  ASSERT_TRUE(eventually([&]() {
    for (const router::BackendHealth& backend : router.stats().backends)
      if (backend.endpoint == owner && !backend.alive) return true;
    return false;
  }));

  // The hot key is still served *warm*, from the surviving replica.
  const Reply after(client.round_trip(pattern));
  ASSERT_FALSE(after.is_error());
  EXPECT_EQ(after.depth(), cold.depth());
  EXPECT_EQ(after.telemetry("routed.backend"), endpoint_of(*survivor));
  EXPECT_EQ(after.telemetry("cache_hit"), "true");
  EXPECT_FALSE(after.telemetry("cluster.replica_hit").empty());
  EXPECT_GE(router.stats().replica_hits, 1u);

  router.stop();
  survivor->stop();
}

TEST(Cluster, EpochSwapKeepsPermutedDuplicateAffinityForNonPromotedKeys) {
  auto server_a = std::make_unique<service::Server>(backend_options());
  server_a->start();
  auto server_b = std::make_unique<service::Server>(backend_options());
  server_b->start();

  router::RouterOptions options = dynamic_options();
  options.backends = {endpoint_of(*server_a), endpoint_of(*server_b)};
  router::Router router(options);
  router.start();

  service::Client client("127.0.0.1", router.port());
  Rng rng(5);
  const std::vector<BinaryMatrix> bases = {
      BinaryMatrix::parse("1110;0111;1111"),
      BinaryMatrix::parse("110;011;111"),
      BinaryMatrix::parse("10;01"),
  };
  std::vector<std::string> owners;
  for (const BinaryMatrix& base : bases) {
    const Reply cold(client.round_trip("{\"pattern\": \"" +
                                       pattern_text(base) + "\"}"));
    ASSERT_FALSE(cold.is_error());
    owners.push_back(cold.telemetry("routed.backend"));
  }

  // Epoch churn: a third member joins and leaves again (it need not even
  // be reachable — membership is the router's view, liveness is the
  // pool's).
  service::Client control("127.0.0.1", router.port());
  const std::uint64_t epoch_before = router.stats().epoch;
  const Reply joined(control.round_trip(
      R"({"op":"join","endpoint":"127.0.0.1:1"})"));
  ASSERT_FALSE(joined.is_error());
  const Reply left(control.round_trip(
      R"({"op":"leave","endpoint":"127.0.0.1:1"})"));
  ASSERT_FALSE(left.is_error());
  EXPECT_TRUE(left.document.find("left")->as_bool());
  EXPECT_EQ(router.stats().epoch, epoch_before + 2);
  EXPECT_EQ(router.stats().members, 2u);

  // Static members are the command line's, not the wire's: a leave for a
  // configured backend is refused and moves nothing.
  const Reply refused(control.round_trip("{\"op\":\"leave\",\"endpoint\":\"" +
                                         endpoint_of(*server_a) + "\"}"));
  EXPECT_TRUE(refused.is_error());
  EXPECT_EQ(router.stats().members, 2u);
  EXPECT_EQ(router.stats().epoch, epoch_before + 2);

  // Permuted duplicates still land on their original backend, warm.
  for (std::size_t k = 0; k < bases.size(); ++k) {
    const Reply warm(client.round_trip(
        "{\"pattern\": \"" + pattern_text(permuted_copy(bases[k], rng)) +
        "\"}"));
    ASSERT_FALSE(warm.is_error()) << k;
    EXPECT_EQ(warm.telemetry("routed.backend"), owners[k]) << k;
    EXPECT_EQ(warm.telemetry("cache_hit"), "true") << k;
  }

  router.stop();
  server_a->stop();
  server_b->stop();
}

TEST(Cluster, MissedHeartbeatsEvictAnnouncedMembers) {
  auto server_a = std::make_unique<service::Server>(backend_options());
  server_a->start();

  router::RouterOptions options = dynamic_options();
  options.backends = {endpoint_of(*server_a)};
  options.heartbeat_ms = 20.0;
  options.grace_ms = 100.0;
  router::Router router(options);
  router.start();

  service::Client control("127.0.0.1", router.port());
  // A member that joins and then falls silent (nothing listens there; the
  // pool simply stays in backoff).
  const Reply joined(control.round_trip(
      R"({"op":"join","endpoint":"127.0.0.1:1"})"));
  ASSERT_FALSE(joined.is_error());
  EXPECT_EQ(router.stats().members, 2u);
  const Reply beat(control.round_trip(
      R"({"op":"heartbeat","endpoint":"127.0.0.1:1"})"));
  ASSERT_FALSE(beat.is_error());
  EXPECT_TRUE(beat.document.find("ok")->as_bool());

  // Silence past the grace window: the health thread evicts it.
  ASSERT_TRUE(eventually([&]() { return router.stats().members == 1; }));
  EXPECT_GE(router.stats().evictions, 1u);
  // Post-eviction heartbeats are told to re-join.
  const Reply stale(control.round_trip(
      R"({"op":"heartbeat","endpoint":"127.0.0.1:1"})"));
  ASSERT_FALSE(stale.is_error());
  EXPECT_FALSE(stale.document.find("ok")->as_bool());
  EXPECT_TRUE(stale.document.find("rejoin")->as_bool());
  // The static seed is untouched and still serves.
  const Reply solve(control.round_trip(R"({"pattern": "10;01"})"));
  ASSERT_FALSE(solve.is_error());
  EXPECT_EQ(solve.depth(), 2.0);

  router.stop();
  server_a->stop();
}

TEST(Cluster, ServerAnnounceJoinsHeartbeatsAndLeavesOnStop) {
  // A dynamic router that starts *empty*; the backend finds it by itself.
  router::RouterOptions options = dynamic_options();
  router::Router router(options);
  router.start();

  service::ServerOptions backend = backend_options();
  backend.announce = "127.0.0.1:" + std::to_string(router.port());
  backend.heartbeat_ms = 20.0;
  auto server = std::make_unique<service::Server>(backend);
  server->start();

  ASSERT_TRUE(eventually([&]() { return router.stats().members == 1; }))
      << "announce never joined";
  EXPECT_EQ(router.stats().joins, 1u);
  EXPECT_GE(server->stats().joins_sent, 1u);

  service::Client client("127.0.0.1", router.port());
  const Reply solve(client.round_trip(R"({"pattern": "110;011;111"})"));
  ASSERT_FALSE(solve.is_error());
  EXPECT_EQ(solve.depth(), 3.0);
  EXPECT_EQ(solve.telemetry("routed.backend"), endpoint_of(*server));

  // A graceful stop says goodbye; the router's member set empties without
  // waiting out the grace window (grace is 10 s here).
  server->stop();
  ASSERT_TRUE(eventually([&]() { return router.stats().members == 0; }))
      << "leave never arrived";
  EXPECT_EQ(router.stats().leaves, 1u);
  const Reply no_backend(client.round_trip(R"({"pattern": "10;01"})"));
  EXPECT_TRUE(no_backend.is_error());

  router.stop();
}

TEST(Cluster, MembershipVerbsNeedADynamicRouter) {
  auto server = std::make_unique<service::Server>(backend_options());
  server->start();

  router::RouterOptions options = dynamic_options();
  options.dynamic = false;
  options.backends = {endpoint_of(*server)};
  router::Router router(options);
  router.start();

  service::Client client("127.0.0.1", router.port());
  const Reply join(client.round_trip(
      R"({"op":"join","endpoint":"127.0.0.1:9"})"));
  EXPECT_TRUE(join.is_error());
  // A backend server refuses membership verbs outright (misconfigured
  // announce targets must not be swallowed).
  service::Client direct("127.0.0.1", server->port());
  const Reply misdirected(direct.round_trip(
      R"({"op":"join","endpoint":"127.0.0.1:9"})"));
  EXPECT_TRUE(misdirected.is_error());
  // And the router refuses puts (they flow router -> backend).
  const Reply put(client.round_trip(
      R"({"op":"put","pattern":"10;01","strategy":"auto","report":{}})"));
  EXPECT_TRUE(put.is_error());

  router.stop();
  server->stop();
}

TEST(Cluster, PutVerbWarmsABackendCacheWithAValidatedCertificate) {
  auto server = std::make_unique<service::Server>(backend_options());
  server->start();

  // Solve the canonical pattern locally to build a certified report.
  const BinaryMatrix base = BinaryMatrix::parse("1110;0111;1111");
  const canon::Canonical canonical = canon::canonicalize(base);
  engine::Engine engine;
  const engine::SolveReport solved =
      engine.solve(engine::SolveRequest::dense(canonical.pattern, "auto"));
  ASSERT_FALSE(solved.partition.empty());

  io::WireRequest put;
  put.op = io::WireOp::Put;
  put.id = 4;
  put.request.matrix = canonical.pattern;
  put.request.strategy = "auto";
  put.put_report = solved;

  service::Client client("127.0.0.1", server->port());
  const Reply accepted(client.round_trip(io::wire_request_json(put)));
  ASSERT_FALSE(accepted.is_error());
  EXPECT_TRUE(accepted.document.find("ok")->as_bool());
  EXPECT_EQ(server->stats().puts, 1u);

  // The put warmed the cache: the first solve of that pattern hits.
  const Reply warm(client.round_trip("{\"pattern\": \"" +
                                     pattern_text(canonical.pattern) +
                                     "\"}"));
  ASSERT_FALSE(warm.is_error());
  EXPECT_EQ(warm.telemetry("cache_hit"), "true");
  EXPECT_EQ(warm.depth(), static_cast<double>(solved.partition.size()));

  // A certificate that does not witness the pattern is rejected, never
  // cached.
  io::WireRequest bogus = put;
  bogus.request.matrix = canonical.pattern;
  bogus.put_report.partition.clear();
  const Reply rejected(client.round_trip(io::wire_request_json(bogus)));
  EXPECT_TRUE(rejected.is_error());
  EXPECT_EQ(server->stats().puts, 1u);

  server->stop();
}

}  // namespace
}  // namespace ebmf::cluster
