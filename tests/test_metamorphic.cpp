// Metamorphic tests: transformations of the input with known effect on the
// binary rank. These catch subtle solver bugs that fixed-instance tests
// miss, because the oracle is the *relation* between two solved instances.

#include <gtest/gtest.h>

#include "benchgen/generators.h"
#include "core/bounds.h"
#include "smt/sap.h"
#include "support/rng.h"

namespace ebmf {
namespace {

std::size_t solved_rank(const BinaryMatrix& m) {
  SapOptions opt;
  opt.packing.trials = 30;
  const auto r = sap_solve(m, opt);
  EXPECT_TRUE(r.proven_optimal()) << m.to_string();
  return r.depth();
}

class Metamorphic : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Metamorphic, InvariantUnderRowAndColumnPermutation) {
  Rng rng(GetParam());
  for (int t = 0; t < 4; ++t) {
    const auto m = BinaryMatrix::random(5, 5, 0.5, rng);
    if (m.is_zero()) continue;
    const auto base = solved_rank(m);
    const auto row_perm = m.permuted_rows(rng.permutation(5));
    EXPECT_EQ(solved_rank(row_perm), base);
    const auto col_perm =
        row_perm.transposed().permuted_rows(rng.permutation(5)).transposed();
    EXPECT_EQ(solved_rank(col_perm), base);
  }
}

TEST_P(Metamorphic, InvariantUnderTranspose) {
  Rng rng(GetParam() + 1000);
  for (int t = 0; t < 4; ++t) {
    const auto m = BinaryMatrix::random(4, 6, 0.45, rng);
    if (m.is_zero()) continue;
    EXPECT_EQ(solved_rank(m), solved_rank(m.transposed()));
  }
}

TEST_P(Metamorphic, InvariantUnderRowDuplication) {
  Rng rng(GetParam() + 2000);
  for (int t = 0; t < 4; ++t) {
    const auto m = BinaryMatrix::random(4, 5, 0.5, rng);
    if (m.is_zero()) continue;
    auto rows = m.row_vectors();
    rows.push_back(m.row(rng.below(4)));  // duplicate a random row
    rows.push_back(BitVec(5));            // and a zero row
    const auto bigger = BinaryMatrix::from_rows(rows, 5);
    EXPECT_EQ(solved_rank(bigger), solved_rank(m));
  }
}

TEST_P(Metamorphic, MonotoneUnderRowDeletion) {
  Rng rng(GetParam() + 3000);
  for (int t = 0; t < 4; ++t) {
    const auto m = BinaryMatrix::random(5, 5, 0.5, rng);
    if (m.is_zero()) continue;
    auto rows = m.row_vectors();
    rows.erase(rows.begin() + static_cast<std::ptrdiff_t>(rng.below(5)));
    const auto smaller = BinaryMatrix::from_rows(rows, 5);
    if (smaller.is_zero()) continue;
    EXPECT_LE(solved_rank(smaller), solved_rank(m));
  }
}

TEST_P(Metamorphic, AdditiveUnderBlockDiagonalComposition) {
  Rng rng(GetParam() + 4000);
  for (int t = 0; t < 3; ++t) {
    const auto a = BinaryMatrix::random(3, 3, 0.6, rng);
    const auto b = BinaryMatrix::random(3, 4, 0.6, rng);
    if (a.is_zero() || b.is_zero()) continue;
    // Block-diagonal stack of a and b.
    BinaryMatrix block(a.rows() + b.rows(), a.cols() + b.cols());
    for (const auto& [i, j] : a.ones()) block.set(i, j);
    for (const auto& [i, j] : b.ones())
      block.set(a.rows() + i, a.cols() + j);
    EXPECT_EQ(solved_rank(block), solved_rank(a) + solved_rank(b));
  }
}

TEST_P(Metamorphic, SubmultiplicativeUnderKronecker) {
  Rng rng(GetParam() + 5000);
  for (int t = 0; t < 2; ++t) {
    const auto a = BinaryMatrix::random(2, 3, 0.6, rng);
    const auto b = BinaryMatrix::random(3, 2, 0.6, rng);
    if (a.is_zero() || b.is_zero()) continue;
    const auto product = BinaryMatrix::kron(a, b);
    EXPECT_LE(solved_rank(product), solved_rank(a) * solved_rank(b));
    EXPECT_GE(solved_rank(product), real_rank(product));
  }
}

TEST_P(Metamorphic, PaddingWithZeroBorderIsInvariant) {
  Rng rng(GetParam() + 6000);
  const auto m = BinaryMatrix::random(4, 4, 0.5, rng);
  if (m.is_zero()) GTEST_SKIP();
  BinaryMatrix padded(6, 6);
  for (const auto& [i, j] : m.ones()) padded.set(i + 1, j + 1);
  EXPECT_EQ(solved_rank(padded), solved_rank(m));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Metamorphic,
                         ::testing::Values(10, 20, 30, 40));

}  // namespace
}  // namespace ebmf
