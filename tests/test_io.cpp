// Tests for matrix and partition serialization.

#include <gtest/gtest.h>

#include <sstream>

#include "io/matrix_io.h"
#include "io/partition_io.h"
#include "support/rng.h"

namespace ebmf::io {
namespace {

TEST(MatrixIo, DenseRoundTrip) {
  const auto m = BinaryMatrix::parse("10110;01001;11100");
  std::ostringstream out;
  write_dense(out, m);
  std::istringstream in(out.str());
  EXPECT_EQ(read_matrix(in), m);
}

TEST(MatrixIo, SparseRoundTrip) {
  Rng rng(3);
  const auto m = BinaryMatrix::random(7, 9, 0.3, rng);
  std::ostringstream out;
  write_sparse(out, m);
  std::istringstream in(out.str());
  EXPECT_EQ(read_matrix(in), m);
}

TEST(MatrixIo, PbmRoundTrip) {
  Rng rng(4);
  const auto m = BinaryMatrix::random(5, 11, 0.5, rng);
  std::ostringstream out;
  write_pbm(out, m);
  std::istringstream in(out.str());
  EXPECT_EQ(read_matrix(in), m);
}

TEST(MatrixIo, PbmPackedPixelsAccepted) {
  std::istringstream in("P1\n3 2\n101\n010\n");
  const auto m = read_matrix(in);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_TRUE(m.test(0, 0));
  EXPECT_TRUE(m.test(1, 1));
  EXPECT_FALSE(m.test(1, 2));
}

TEST(MatrixIo, CommentsAndBlankLinesSkipped) {
  std::istringstream in("# header\n\n101\n# middle\n010\n");
  const auto m = read_matrix(in);
  EXPECT_EQ(m.rows(), 2u);
}

TEST(MatrixIo, DenseWithSpacesAccepted) {
  std::istringstream in("1 0 1\n0 1 0\n");
  const auto m = read_matrix(in);
  EXPECT_EQ(m.cols(), 3u);
}

TEST(MatrixIo, ErrorsAreDiagnosed) {
  {
    std::istringstream in("");
    EXPECT_THROW((void)read_matrix(in), std::runtime_error);
  }
  {
    std::istringstream in("101\n01\n");  // ragged
    EXPECT_THROW((void)read_matrix(in), std::runtime_error);
  }
  {
    std::istringstream in("1a1\n");
    EXPECT_THROW((void)read_matrix(in), std::runtime_error);
  }
  {
    std::istringstream in("sparse 2 2\n5 0\n");  // out of range
    EXPECT_THROW((void)read_matrix(in), std::runtime_error);
  }
  {
    std::istringstream in("P1\n2 2\n1 0 1\n");  // too few pixels
    EXPECT_THROW((void)read_matrix(in), std::runtime_error);
  }
  {
    std::istringstream in("P1\n2 2\n1 0 1 1 0\n");  // too many pixels
    EXPECT_THROW((void)read_matrix(in), std::runtime_error);
  }
}

TEST(MatrixIo, MaskedReadsKeepDontCares) {
  std::istringstream in("1*0\n0x1\n");
  const auto m = read_masked(in);
  EXPECT_EQ(m.at(0, 1), completion::Cell::DontCare);
  EXPECT_EQ(m.at(1, 1), completion::Cell::DontCare);
  EXPECT_EQ(m.at(0, 0), completion::Cell::One);
  // Plain reader treats them as zeros.
  std::istringstream in2("1*0\n0x1\n");
  const auto plain = read_matrix(in2);
  EXPECT_FALSE(plain.test(0, 1));
}

TEST(MatrixIo, SaveLoadByExtension) {
  Rng rng(5);
  const auto m = BinaryMatrix::random(6, 6, 0.4, rng);
  for (const char* name : {"/tmp/ebmf_io_test.txt", "/tmp/ebmf_io_test.pbm",
                           "/tmp/ebmf_io_test.sparse"}) {
    save_matrix(name, m);
    EXPECT_EQ(load_matrix(name), m) << name;
  }
}

TEST(PartitionIo, RoundTrip) {
  const Partition p{
      Rectangle{BitVec::from_string("101"), BitVec::from_string("0110")},
      Rectangle{BitVec::from_string("010"), BitVec::from_string("1001")}};
  std::ostringstream out;
  write_partition(out, p, 3, 4);
  std::istringstream in(out.str());
  const auto loaded = read_partition(in);
  EXPECT_EQ(loaded.rows, 3u);
  EXPECT_EQ(loaded.cols, 4u);
  ASSERT_EQ(loaded.partition.size(), 2u);
  EXPECT_EQ(loaded.partition[0], p[0]);
  EXPECT_EQ(loaded.partition[1], p[1]);
}

TEST(PartitionIo, EmptyPartitionRoundTrip) {
  std::ostringstream out;
  write_partition(out, {}, 2, 2);
  std::istringstream in(out.str());
  const auto loaded = read_partition(in);
  EXPECT_TRUE(loaded.partition.empty());
}

TEST(PartitionIo, Errors) {
  {
    std::istringstream in("rect 0 x 1\n");  // no header
    EXPECT_THROW((void)read_partition(in), std::runtime_error);
  }
  {
    std::istringstream in("partition 2 2 2\nrect 0 x 1\n");  // count mismatch
    EXPECT_THROW((void)read_partition(in), std::runtime_error);
  }
  {
    std::istringstream in("partition 2 2 1\nrect 5 x 0\n");  // out of range
    EXPECT_THROW((void)read_partition(in), std::runtime_error);
  }
  {
    std::istringstream in("partition 2 2 1\nrect 0 y 0\n");  // bad separator
    EXPECT_THROW((void)read_partition(in), std::runtime_error);
  }
}

}  // namespace
}  // namespace ebmf::io
