// Edge-shape and contract tests across the public API surface: degenerate
// matrices (1x1, single row/column, all-ones, identity), and the
// precondition checks that keep misuse diagnosable.

#include <gtest/gtest.h>

#include "addressing/schedule.h"
#include "core/bounds.h"
#include "core/brute_force.h"
#include "core/fooling.h"
#include "core/greedy_rect.h"
#include "core/preprocess.h"
#include "core/row_packing.h"
#include "core/trivial.h"
#include "smt/sap.h"

namespace ebmf {
namespace {

// ---- degenerate shapes through the whole pipeline -----------------------

struct Shape {
  const char* name;
  const char* text;
  std::size_t expected_depth;
};

class DegenerateShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(DegenerateShapes, WholePipelineAgrees) {
  const auto& param = GetParam();
  const auto m = BinaryMatrix::parse(param.text);
  // SAP
  const auto r = sap_solve(m);
  EXPECT_TRUE(r.proven_optimal()) << param.name;
  EXPECT_EQ(r.depth(), param.expected_depth) << param.name;
  // brute force agrees
  const auto brute = brute_force_ebmf(m);
  ASSERT_TRUE(brute.has_value());
  EXPECT_EQ(brute->binary_rank, param.expected_depth) << param.name;
  // heuristics bracket
  RowPackingOptions opt;
  opt.trials = 10;
  EXPECT_GE(row_packing_ebmf(m, opt).partition.size(), param.expected_depth);
  EXPECT_GE(greedy_rectangles(m, opt).partition.size(), param.expected_depth);
  // schedule constructible
  const addressing::Schedule schedule(m, r.partition);
  EXPECT_EQ(schedule.depth(), param.expected_depth);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DegenerateShapes,
    ::testing::Values(Shape{"one_by_one", "1", 1},
                      Shape{"one_by_one_zero", "0", 0},
                      Shape{"single_row", "101101", 1},
                      Shape{"single_col", "1;0;1;1", 1},
                      Shape{"all_ones_rect", "1111;1111;1111", 1},
                      Shape{"identity4", "1000;0100;0010;0001", 4},
                      Shape{"anti_diag", "001;010;100", 3},
                      Shape{"upper_triangular", "111;011;001", 3},
                      Shape{"two_blocks", "1100;1100;0011;0011", 2},
                      Shape{"cross", "010;111;010", 2},
                      Shape{"L_shape", "100;100;111", 2},
                      // ring = all-ones minus center: full rows block +
                      // the pierced row's two sides
                      Shape{"ring", "111;101;111", 2}));

// ---- contract checks ------------------------------------------------------

TEST(Contracts, BitVecBoundsInDebugOnly) {
  // set/test index checks are EBMF_ASSERT (debug); size-mismatch checks are
  // EBMF_EXPECTS (always on).
  BitVec a(4);
  BitVec b(5);
  EXPECT_THROW(a |= b, ContractViolation);
}

TEST(Contracts, MatrixParseRejectsJunk) {
  EXPECT_THROW((void)BinaryMatrix::parse("12"), ContractViolation);
}

TEST(Contracts, SolverModelAccessRequiresSat) {
  sat::Solver s;
  const auto v = s.new_var();
  EXPECT_THROW((void)s.model_true(sat::pos(v)), ContractViolation);
}

TEST(Contracts, ScheduleRejectsShapeMismatch) {
  const auto m = BinaryMatrix::parse("11;11");
  const Partition wrong{
      Rectangle{BitVec::from_string("111"), BitVec::from_string("11")}};
  EXPECT_THROW((addressing::Schedule{m, wrong}), ContractViolation);
}

TEST(Contracts, RowPackingRejectsBadOrder) {
  const auto m = BinaryMatrix::parse("11;11");
  EXPECT_THROW((void)row_packing_pass(m, {0, 0}), ContractViolation);
  EXPECT_THROW((void)greedy_rectangles_pass(m, {0}), ContractViolation);
}

// ---- cross-shape consistency ---------------------------------------------

TEST(EdgeCases, SingleRowAlwaysDepthOneOrZero) {
  Rng rng(71);
  for (int t = 0; t < 20; ++t) {
    const auto m = BinaryMatrix::random(1, 12, 0.4, rng);
    const auto r = sap_solve(m);
    EXPECT_TRUE(r.proven_optimal());
    EXPECT_EQ(r.depth(), m.is_zero() ? 0u : 1u);
  }
}

TEST(EdgeCases, PermutationMatrixNeedsN) {
  Rng rng(72);
  for (std::size_t n : {2u, 4u, 7u}) {
    const auto perm = rng.permutation(n);
    BinaryMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m.set(i, perm[i]);
    const auto r = sap_solve(m);
    EXPECT_TRUE(r.proven_optimal());
    EXPECT_EQ(r.depth(), n);
    // Permutation matrices are their own fooling sets.
    EXPECT_EQ(max_fooling_set(m).size(), n);
  }
}

TEST(EdgeCases, FullMatrixMinusOneCell) {
  // All-ones minus a single 0: depth 2 — the unpierced rows as one block,
  // the pierced row's remaining columns as the other.
  for (std::size_t n : {2u, 3u, 5u}) {
    BinaryMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) m.set(i, j);
    m.set(n / 2, n / 2, false);
    const auto r = sap_solve(m);
    EXPECT_TRUE(r.proven_optimal());
    EXPECT_EQ(r.depth(), 2u) << n;
  }
}

TEST(EdgeCases, TallThinAndShortWideAgree) {
  Rng rng(73);
  const auto tall = BinaryMatrix::random(20, 3, 0.5, rng);
  const auto r_tall = sap_solve(tall);
  const auto r_wide = sap_solve(tall.transposed());
  EXPECT_TRUE(r_tall.proven_optimal());
  EXPECT_TRUE(r_wide.proven_optimal());
  EXPECT_EQ(r_tall.depth(), r_wide.depth());
}

TEST(EdgeCases, CheckerboardNeedsTwo) {
  for (std::size_t n : {2u, 4u, 6u}) {
    BinaryMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        if ((i + j) % 2 == 0) m.set(i, j);
    const auto r = sap_solve(m);
    EXPECT_TRUE(r.proven_optimal());
    EXPECT_EQ(r.depth(), 2u) << n;
  }
}

}  // namespace
}  // namespace ebmf
