// Tests for the r_B bounds and the trivial heuristic: the bracketing
// rank_R(M) <= r_B(M) <= trivial_upper_bound(M) that SAP relies on.

#include <gtest/gtest.h>

#include "core/bounds.h"
#include "core/brute_force.h"
#include "core/trivial.h"
#include "support/rng.h"

namespace ebmf {
namespace {

TEST(Bounds, ZeroMatrix) {
  const BinaryMatrix z(4, 4);
  EXPECT_EQ(real_rank(z), 0u);
  EXPECT_EQ(trivial_upper_bound(z), 0u);
  EXPECT_EQ(distinct_nonzero_rows(z), 0u);
}

TEST(Bounds, DistinctRowsCountsPatterns) {
  const auto m = BinaryMatrix::parse("110;110;001;000;001");
  EXPECT_EQ(distinct_nonzero_rows(m), 2u);
}

TEST(Bounds, TrivialUpperBoundTakesSmallerSide) {
  // 2 distinct rows but 3 distinct columns -> bound is 2.
  const auto m = BinaryMatrix::parse("110;110;001");
  EXPECT_EQ(trivial_upper_bound(m), 2u);
  // Transposed: same bound.
  EXPECT_EQ(trivial_upper_bound(m.transposed()), 2u);
}

TEST(Trivial, RowPartitionConsolidatesDuplicates) {
  const auto m = BinaryMatrix::parse("101;101;010;101");
  const auto p = trivial_row_partition(m);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_TRUE(validate_partition(m, p).ok);
}

TEST(Trivial, UsesColumnsWhenFewer) {
  // 4 distinct rows, but only 2 distinct nonzero columns.
  const auto m = BinaryMatrix::parse("10;01;11;00");
  const auto mt = BinaryMatrix::parse("1010;0110");  // sanity: transpose
  EXPECT_EQ(m.transposed(), mt);
  const auto p = trivial_ebmf(mt);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_TRUE(validate_partition(mt, p).ok);
}

TEST(Trivial, SizeMatchesTrivialUpperBound) {
  Rng rng(17);
  for (int t = 0; t < 50; ++t) {
    const auto m = BinaryMatrix::random(6, 8, 0.3 + 0.05 * (t % 10), rng);
    const auto p = trivial_ebmf(m);
    EXPECT_TRUE(validate_partition(m, p).ok);
    EXPECT_EQ(p.size(), trivial_upper_bound(m));
  }
}

TEST(Bounds, SandwichOnTinyMatrices) {
  // rank <= r_B (brute force) <= trivial, across a random sweep.
  Rng rng(4321);
  for (int t = 0; t < 40; ++t) {
    const auto m = BinaryMatrix::random(4, 4, 0.45, rng);
    if (m.is_zero()) continue;
    const auto brute = brute_force_ebmf(m);
    ASSERT_TRUE(brute.has_value());
    EXPECT_LE(real_rank(m), brute->binary_rank);
    EXPECT_LE(brute->binary_rank, trivial_upper_bound(m));
  }
}

TEST(Bounds, Eq2MatrixBinaryRankExceedsFoolingBound) {
  // Paper's Eq. 2: rank 3, r_B 3 — bounds tight here.
  const auto m = BinaryMatrix::parse("110;011;111");
  const auto brute = brute_force_ebmf(m);
  ASSERT_TRUE(brute.has_value());
  EXPECT_EQ(brute->binary_rank, 3u);
  EXPECT_EQ(real_rank(m), 3u);
}

TEST(Bounds, GapBetweenRankAndBinaryRank) {
  // rank_R = 3 but r_B = 4: the EBMF counterexample from paper §II —
  //   0 1 1
  //   1 0 1
  //   1 1 0
  // (the GF(2)-style decomposition is not a valid EBMF because the real sum
  // would hit 2).
  const auto m = BinaryMatrix::parse("011;101;110");
  EXPECT_EQ(real_rank(m), 3u);
  const auto brute = brute_force_ebmf(m);
  ASSERT_TRUE(brute.has_value());
  // Each 1 is its own fooling cell pairwise? Compute: the optimum is known
  // to need more than rank... verify the brute-force answer brackets.
  EXPECT_GE(brute->binary_rank, 3u);
  EXPECT_LE(brute->binary_rank, trivial_upper_bound(m));
  EXPECT_TRUE(validate_partition(m, brute->partition).ok);
}

TEST(BruteForce, ZeroMatrixHasEmptyPartition) {
  const BinaryMatrix z(3, 3);
  const auto r = brute_force_ebmf(z);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->binary_rank, 0u);
  EXPECT_TRUE(r->partition.empty());
}

TEST(BruteForce, SingleCell) {
  const auto m = BinaryMatrix::parse("00;01");
  const auto r = brute_force_ebmf(m);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->binary_rank, 1u);
}

TEST(BruteForce, FullRectangleIsOne) {
  const auto m = BinaryMatrix::parse("111;111");
  const auto r = brute_force_ebmf(m);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->binary_rank, 1u);
}

TEST(BruteForce, RespectsMaxRankCap) {
  const auto m = BinaryMatrix::parse("10;01");  // needs 2
  EXPECT_FALSE(brute_force_ebmf(m, 1).has_value());
  const auto r = brute_force_ebmf(m, 2);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->binary_rank, 2u);
}

TEST(BruteForce, PaperFig1bNeedsFive) {
  const auto m = BinaryMatrix::parse(
      "101100;010011;101010;010101;111000;000111");
  const auto r = brute_force_ebmf(m);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->binary_rank, 5u);
  EXPECT_TRUE(validate_partition(m, r->partition).ok);
}

}  // namespace
}  // namespace ebmf
