// Tests for row packing (Algorithm 2), including the paper's Fig. 3 worked
// example and property sweeps on all three benchmark families.

#include "core/row_packing.h"

#include <gtest/gtest.h>

#include "benchgen/generators.h"
#include "core/bounds.h"
#include "core/brute_force.h"
#include "core/trivial.h"
#include "support/rng.h"

namespace ebmf {
namespace {

// The 5x5 matrix of Fig. 3 (rows r0..r4).
BinaryMatrix fig3_matrix() {
  return BinaryMatrix::parse("11000;00110;01100;10011;11111");
}

TEST(RowPacking, PaperFig3TrialA) {
  // Processing rows in natural order reproduces the 5-rectangle outcome of
  // Fig. 3a.
  const auto m = fig3_matrix();
  const auto p = row_packing_pass(m, {0, 1, 2, 3, 4});
  EXPECT_TRUE(validate_partition(m, p).ok);
  EXPECT_EQ(p.size(), 5u);
}

TEST(RowPacking, PaperFig3TrialB) {
  // The shuffled order of Fig. 3b (r4, r2, r3, r0, r1) finds 4 rectangles,
  // exercising the basis update (v0 = 11111 shrinks to 10011).
  const auto m = fig3_matrix();
  const auto p = row_packing_pass(m, {4, 2, 3, 0, 1});
  EXPECT_TRUE(validate_partition(m, p).ok);
  EXPECT_EQ(p.size(), 4u);
}

TEST(RowPacking, Fig3WithoutBasisUpdateIsWorse) {
  // Disabling lines 9-16 on the Fig. 3b order loses the improvement.
  const auto m = fig3_matrix();
  const auto p = row_packing_pass(m, {4, 2, 3, 0, 1}, /*basis_update=*/false);
  EXPECT_TRUE(validate_partition(m, p).ok);
  EXPECT_GT(p.size(), 4u);
}

TEST(RowPacking, MultiTrialFindsFourOnFig3) {
  const auto m = fig3_matrix();
  RowPackingOptions opt;
  opt.trials = 50;
  opt.seed = 3;
  const auto r = row_packing_ebmf(m, opt);
  EXPECT_TRUE(validate_partition(m, r.partition).ok);
  EXPECT_EQ(r.partition.size(), 4u);
}

TEST(RowPacking, ZeroMatrixGivesEmptyPartition) {
  const BinaryMatrix z(5, 5);
  const auto r = row_packing_ebmf(z, {});
  EXPECT_TRUE(r.partition.empty());
}

TEST(RowPacking, SingleRowSingleRectanglePerDistinctRow) {
  const auto m = BinaryMatrix::parse("1011");
  const auto p = row_packing_pass(m, {0});
  EXPECT_EQ(p.size(), 1u);
  EXPECT_TRUE(validate_partition(m, p).ok);
}

TEST(RowPacking, DuplicateRowsConsolidated) {
  const auto m = BinaryMatrix::parse("101;101;101");
  const auto p = row_packing_pass(m, {0, 1, 2});
  EXPECT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0].rows.count(), 3u);
}

TEST(RowPacking, NeverWorseThanTrivial) {
  // The paper: "the algorithm introduces at most one rectangle for each
  // non-repeating row, ensuring the result is no worse than the trivial
  // heuristic" (per orientation; with transpose, than the full bound).
  Rng rng(777);
  for (int t = 0; t < 60; ++t) {
    const auto m =
        BinaryMatrix::random(6 + t % 5, 8, 0.15 + 0.08 * (t % 9), rng);
    RowPackingOptions opt;
    opt.trials = 1;
    opt.seed = 1000 + t;
    const auto r = row_packing_ebmf(m, opt);
    EXPECT_TRUE(validate_partition(m, r.partition).ok);
    EXPECT_LE(r.partition.size(), trivial_upper_bound(m));
  }
}

TEST(RowPacking, RowOrderMustBePermutation) {
  const auto m = fig3_matrix();
  EXPECT_THROW((void)row_packing_pass(m, {0, 1}), ContractViolation);
}

TEST(RowPacking, DeterministicGivenSeed) {
  Rng rng(42);
  const auto m = BinaryMatrix::random(8, 8, 0.5, rng);
  RowPackingOptions opt;
  opt.trials = 10;
  opt.seed = 5;
  const auto a = row_packing_ebmf(m, opt);
  const auto b = row_packing_ebmf(m, opt);
  EXPECT_EQ(a.partition.size(), b.partition.size());
  for (std::size_t i = 0; i < a.partition.size(); ++i)
    EXPECT_EQ(a.partition[i], b.partition[i]);
}

TEST(RowPacking, StopAtShortCircuits) {
  Rng rng(42);
  const auto m = BinaryMatrix::random(10, 10, 0.5, rng);
  RowPackingOptions opt;
  opt.trials = 1000;
  opt.stop_at = trivial_upper_bound(m);  // satisfied instantly
  const auto r = row_packing_ebmf(m, opt);
  EXPECT_LE(r.trials_run, 2u);
}

TEST(RowPacking, SortedOrderRunsOnce) {
  Rng rng(1);
  const auto m = BinaryMatrix::random(8, 8, 0.4, rng);
  RowPackingOptions opt;
  opt.trials = 100;
  opt.order = RowOrder::SortedByOnes;
  const auto r = row_packing_ebmf(m, opt);
  EXPECT_LE(r.trials_run, 2u);  // one pass per orientation
  EXPECT_TRUE(validate_partition(m, r.partition).ok);
}

TEST(RowPacking, TransposeCanWin) {
  // A matrix with many distinct rows but few distinct columns: the
  // transpose orientation must be picked up.
  const auto m = BinaryMatrix::parse("10;01;11;10;01");
  RowPackingOptions opt;
  opt.trials = 5;
  const auto r = row_packing_ebmf(m, opt);
  EXPECT_LE(r.partition.size(), 2u);
  EXPECT_TRUE(validate_partition(m, r.partition).ok);
}

// Property sweep: on every family, every trial count, packing stays valid
// and within the bracket [rank, trivial].
struct SweepParam {
  std::size_t rows, cols;
  double occupancy;
  std::uint64_t seed;
};

class RowPackingSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RowPackingSweep, ValidAndBracketed) {
  const auto param = GetParam();
  Rng rng(param.seed);
  for (int i = 0; i < 10; ++i) {
    const auto m =
        BinaryMatrix::random(param.rows, param.cols, param.occupancy, rng);
    RowPackingOptions opt;
    opt.trials = 10;
    opt.seed = param.seed + static_cast<std::uint64_t>(i);
    const auto r = row_packing_ebmf(m, opt);
    const auto v = validate_partition(m, r.partition);
    ASSERT_TRUE(v.ok) << v.reason;
    if (!m.is_zero()) {
      EXPECT_GE(r.partition.size(), real_rank(m));
      EXPECT_LE(r.partition.size(), trivial_upper_bound(m));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RowPackingSweep,
    ::testing::Values(SweepParam{5, 5, 0.2, 1}, SweepParam{5, 5, 0.5, 2},
                      SweepParam{5, 5, 0.8, 3}, SweepParam{10, 10, 0.1, 4},
                      SweepParam{10, 10, 0.5, 5}, SweepParam{10, 10, 0.9, 6},
                      SweepParam{10, 20, 0.3, 7}, SweepParam{10, 30, 0.5, 8},
                      SweepParam{20, 10, 0.4, 9}, SweepParam{30, 30, 0.2, 10},
                      SweepParam{1, 10, 0.5, 11}, SweepParam{10, 1, 0.5, 12}));

TEST(RowPacking, OptimalOnKnownOptimalFamily) {
  // Paper Observation 2: row packing always finds the optimum on family 2.
  Rng rng(31337);
  for (std::size_t k = 1; k <= 6; ++k) {
    for (int i = 0; i < 5; ++i) {
      const auto inst = benchgen::known_optimal_matrix(8, 8, k, rng);
      RowPackingOptions opt;
      opt.trials = 10;
      const auto r = row_packing_ebmf(inst.matrix, opt);
      EXPECT_TRUE(validate_partition(inst.matrix, r.partition).ok);
      EXPECT_EQ(r.partition.size(), inst.optimal);
    }
  }
}

TEST(RowPacking, MoreTrialsNeverHurt) {
  Rng rng(2718);
  for (int t = 0; t < 10; ++t) {
    const auto gap = benchgen::gap_matrix(8, 8, 3, rng);
    RowPackingOptions one;
    one.trials = 1;
    one.seed = 100 + t;
    RowPackingOptions many = one;
    many.trials = 64;
    const auto r1 = row_packing_ebmf(gap.matrix, one);
    const auto rm = row_packing_ebmf(gap.matrix, many);
    EXPECT_LE(rm.partition.size(), r1.partition.size());
  }
}

TEST(RowPacking, MatchesBruteForceOnTinyMatrices) {
  // With enough trials, row packing reaches the optimum on most tiny
  // instances; we assert validity plus a quality margin of +1.
  Rng rng(909);
  int optimal_hits = 0;
  int cases = 0;
  for (int t = 0; t < 25; ++t) {
    const auto m = BinaryMatrix::random(4, 4, 0.5, rng);
    if (m.is_zero()) continue;
    const auto brute = brute_force_ebmf(m);
    ASSERT_TRUE(brute.has_value());
    RowPackingOptions opt;
    opt.trials = 50;
    opt.seed = t;
    const auto r = row_packing_ebmf(m, opt);
    ++cases;
    EXPECT_LE(r.partition.size(), brute->binary_rank + 1);
    if (r.partition.size() == brute->binary_rank) ++optimal_hits;
  }
  // Strong majority of tiny cases should be solved optimally.
  EXPECT_GE(optimal_hits * 10, cases * 8);
}

}  // namespace
}  // namespace ebmf
