// Tests for the ebmf command-line tool (via the testable cli library).

#include "cli/cli.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace ebmf::cli {
namespace {

/// Run a command capturing stdout/stderr and exit code.
struct RunResult {
  int code;
  std::string out;
  std::string err;
};

RunResult run_cli(const std::string& command,
                  const std::vector<std::string>& args) {
  std::ostringstream out, err;
  const int code = run_command(command, args, out, err);
  return {code, out.str(), err.str()};
}

/// Write a small matrix file usable across tests.
std::string write_temp_matrix(const std::string& content,
                              const std::string& name) {
  const std::string path = "/tmp/ebmf_cli_" + name + ".txt";
  std::ofstream file(path);
  file << content;
  return path;
}

TEST(Cli, UsageOnUnknownCommand) {
  const auto r = run_cli("frobnicate", {});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, SolveProducesOptimalPartition) {
  const auto path = write_temp_matrix("110\n011\n111\n", "eq2");
  const auto r = run_cli("solve", {path});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("depth 3 (proven optimal)"), std::string::npos);
  EXPECT_NE(r.out.find("partition 3 3 3"), std::string::npos);
}

TEST(Cli, SolveHeuristicOnlyFlag) {
  const auto path = write_temp_matrix("10\n01\n", "diag");
  const auto r = run_cli("solve", {path, "--heuristic-only"});
  EXPECT_EQ(r.code, 0);
  // diag is rank-certified even without SMT
  EXPECT_NE(r.out.find("depth 2"), std::string::npos);
}

TEST(Cli, SolveRenderFlagShowsLabels) {
  const auto path = write_temp_matrix("11\n11\n", "ones");
  const auto r = run_cli("solve", {path, "--render"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("00\n00"), std::string::npos);
}

TEST(Cli, SolveStrategyFlagSelectsBackend) {
  const auto path = write_temp_matrix("110\n011\n111\n", "eq2s");
  for (const char* strategy :
       {"sap", "heuristic", "brute", "dlx", "auto", "greedy", "trivial"}) {
    const auto r =
        run_cli("solve", {path, std::string("--strategy=") + strategy});
    EXPECT_EQ(r.code, 0) << strategy;
    EXPECT_NE(r.out.find("strategy "), std::string::npos) << strategy;
    EXPECT_NE(r.out.find("partition 3 3"), std::string::npos) << strategy;
  }
}

TEST(Cli, SolveUnknownStrategyIsUsageError) {
  const auto path = write_temp_matrix("10\n01\n", "badstrat");
  const auto r = run_cli("solve", {path, "--strategy=frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown strategy 'frobnicate'"), std::string::npos);
  EXPECT_NE(r.err.find("sap"), std::string::npos);  // alternatives listed
}

TEST(Cli, SolveMalformedBudgetIsUsageError) {
  const auto path = write_temp_matrix("10\n01\n", "badbudget");
  for (const char* flag : {"--budget=soon", "--trials=lots", "--seed=x",
                           "--conflicts=many", "--budget=1.5zzz"}) {
    const auto r = run_cli("solve", {path, flag});
    EXPECT_EQ(r.code, 2) << flag;
    EXPECT_NE(r.err.find("invalid value"), std::string::npos) << flag;
  }
}

TEST(Cli, ScheduleMalformedFlagsAreUsageErrors) {
  const auto path = write_temp_matrix("10\n01\n", "badsched");
  EXPECT_EQ(run_cli("schedule", {path, "--budget=abc"}).code, 2);
  EXPECT_EQ(run_cli("schedule", {path, "--reconfig-us=xy"}).code, 2);
  EXPECT_EQ(run_cli("schedule", {path, "--strategy=nope"}).code, 2);
}

TEST(Cli, SolveBatchKeepsInputOrder) {
  const auto a = write_temp_matrix("110\n011\n111\n", "batch_a");
  const auto b = write_temp_matrix("10\n01\n", "batch_b");
  const auto r = run_cli("solve", {a, b, "--strategy=sap"});
  EXPECT_EQ(r.code, 0);
  const auto pos_a = r.out.find("batch_a");
  const auto pos_b = r.out.find("batch_b");
  ASSERT_NE(pos_a, std::string::npos);
  ASSERT_NE(pos_b, std::string::npos);
  EXPECT_LT(pos_a, pos_b);  // request order, not completion order
  EXPECT_NE(r.out.find("depth 3"), std::string::npos);
  EXPECT_NE(r.out.find("depth 2"), std::string::npos);
}

TEST(Cli, SolveBatchSkipsUnreadableFilesAndFails) {
  const auto good = write_temp_matrix("110\n011\n111\n", "batch_good");
  const auto r = run_cli("solve", {good, "/nonexistent/batch.txt"});
  EXPECT_EQ(r.code, 1);  // partial failure is a runtime error...
  EXPECT_NE(r.out.find("depth 3"), std::string::npos);  // ...but good
  EXPECT_NE(r.err.find("cannot open"), std::string::npos);  // files solve
}

TEST(Cli, SolveJsonEmitsOnlyJson) {
  const auto path = write_temp_matrix("110\n011\n111\n", "json");
  const auto r = run_cli("solve", {path, "--json", "--strategy=sap"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("\"status\":\"optimal\""), std::string::npos);
  EXPECT_NE(r.out.find("\"depth\":3"), std::string::npos);
  // Machine mode: no human report line mixed in (scripts pipe to jq).
  EXPECT_EQ(r.out.find("proven optimal"), std::string::npos);
  EXPECT_EQ(r.out.find("partition 3 3"), std::string::npos);
}

TEST(Cli, SolveBatchRejectsSingleFileFlags) {
  const auto a = write_temp_matrix("10\n01\n", "multi_a");
  const auto b = write_temp_matrix("11\n11\n", "multi_b");
  for (const char* flag : {"--save=/tmp/x.part", "--render", "--split"}) {
    const auto r = run_cli("solve", {a, b, flag});
    EXPECT_EQ(r.code, 2) << flag;
    EXPECT_NE(r.err.find("single matrix file"), std::string::npos) << flag;
  }
}

TEST(Cli, SolveOutOfRangeNumericsAreUsageErrors) {
  const auto path = write_temp_matrix("10\n01\n", "range");
  for (const char* flag : {"--seed=-1", "--trials=inf", "--nodes=-2"}) {
    const auto r = run_cli("solve", {path, flag});
    EXPECT_EQ(r.code, 2) << flag;
    EXPECT_NE(r.err.find("invalid value"), std::string::npos) << flag;
  }
}

TEST(Cli, SolveSplitMatchesPlainDepth) {
  const auto path = write_temp_matrix("1100\n1100\n0011\n0011\n", "split");
  const auto split = run_cli("solve", {path, "--split", "--strategy=sap"});
  EXPECT_EQ(split.code, 0);
  EXPECT_NE(split.out.find("depth 2 (proven optimal)"), std::string::npos);
}

TEST(Cli, StrategiesListsRegistry) {
  const auto r = run_cli("strategies", {});
  EXPECT_EQ(r.code, 0);
  for (const char* name :
       {"sap", "heuristic", "brute", "dlx", "completion", "auto"})
    EXPECT_NE(r.out.find(name), std::string::npos) << name;
}

TEST(Cli, BoundsIncludesPackingUpperBound) {
  const auto path = write_temp_matrix("110\n011\n111\n", "eq2pk");
  const auto r = run_cli("bounds", {path});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("packing upper bound  3"), std::string::npos);
}

TEST(Cli, SolveMissingFileFails) {
  const auto r = run_cli("solve", {"/nonexistent/file.txt"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("error:"), std::string::npos);
}

TEST(Cli, SolveUsageError) {
  const auto r = run_cli("solve", {});
  EXPECT_EQ(r.code, 2);
}

TEST(Cli, BoundsBracketsConsistently) {
  const auto path = write_temp_matrix("110\n011\n111\n", "eq2b");
  const auto r = run_cli("bounds", {path});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("rank lower bound     3"), std::string::npos);
  EXPECT_NE(r.out.find("trivial upper bound  3"), std::string::npos);
}

TEST(Cli, FoolingExactOnFig1b) {
  const auto path = write_temp_matrix(
      "101100\n010011\n101010\n010101\n111000\n000111\n", "fig1b");
  const auto r = run_cli("fooling", {path, "--exact"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("fooling set size 5"), std::string::npos);
}

TEST(Cli, ComponentsReport) {
  const auto path = write_temp_matrix("1100\n1100\n0011\n0011\n", "blocks");
  const auto r = run_cli("components", {path});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("components 2"), std::string::npos);
  EXPECT_NE(r.out.find("reduced 2x2"), std::string::npos);
}

TEST(Cli, GenerateFamiliesAndFormats) {
  for (const char* family : {"rand", "opt", "gap"}) {
    const auto r = run_cli("generate", {family, "--rows=8", "--cols=8",
                                        "--k=2", "--seed=3"});
    EXPECT_EQ(r.code, 0) << family;
    EXPECT_FALSE(r.out.empty());
  }
  const auto sparse =
      run_cli("generate", {"rand", "--format=sparse", "--seed=4"});
  EXPECT_NE(sparse.out.find("sparse 10 10"), std::string::npos);
  const auto pbm = run_cli("generate", {"rand", "--format=pbm", "--seed=4"});
  EXPECT_NE(pbm.out.find("P1"), std::string::npos);
}

TEST(Cli, GenerateDeterministicPerSeed) {
  const auto a = run_cli("generate", {"rand", "--seed=9"});
  const auto b = run_cli("generate", {"rand", "--seed=9"});
  EXPECT_EQ(a.out, b.out);
}

TEST(Cli, GenerateRejectsUnknownFamily) {
  const auto r = run_cli("generate", {"weird"});
  EXPECT_EQ(r.code, 2);
}

TEST(Cli, ScheduleRespectsTimingFlags) {
  const auto path = write_temp_matrix("10\n01\n", "sched");
  const auto r =
      run_cli("schedule", {path, "--reconfig-us=5", "--pulse-us=1"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("depth 2"), std::string::npos);
  EXPECT_NE(r.out.find("12 us"), std::string::npos);
}

TEST(Cli, ConvertRoundTrip) {
  const auto path = write_temp_matrix("101\n110\n", "conv");
  const auto to_pbm = run_cli("convert", {path, "/tmp/ebmf_cli_conv.pbm"});
  EXPECT_EQ(to_pbm.code, 0);
  const auto back =
      run_cli("convert", {"/tmp/ebmf_cli_conv.pbm", "/tmp/ebmf_cli_back.txt"});
  EXPECT_EQ(back.code, 0);
  std::ifstream file("/tmp/ebmf_cli_back.txt");
  std::stringstream content;
  content << file.rdbuf();
  EXPECT_NE(content.str().find("101"), std::string::npos);
  EXPECT_NE(content.str().find("110"), std::string::npos);
}

TEST(Cli, SolveSaveWritesPartitionFile) {
  const auto path = write_temp_matrix("11\n11\n", "save");
  const auto r =
      run_cli("solve", {path, "--save=/tmp/ebmf_cli_saved.partition"});
  EXPECT_EQ(r.code, 0);
  std::ifstream file("/tmp/ebmf_cli_saved.partition");
  std::string first;
  std::getline(file, first);
  EXPECT_EQ(first, "partition 2 2 1");
}

TEST(Cli, SolveDontCares) {
  const auto path = write_temp_matrix("1*\n*1\n", "dc");
  const auto r = run_cli("solve", {path, "--dont-cares"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("depth 1"), std::string::npos);
}

TEST(Cli, EncodeEmitsValidDimacs) {
  const auto path = write_temp_matrix("110\n011\n111\n", "enc");
  const auto r = run_cli("encode", {path, "--bound=3"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("p cnf "), std::string::npos);
  EXPECT_NE(r.out.find("c EBMF decision problem: r_B(M) <= 3"),
            std::string::npos);
  // Binary encoding variant also works and differs in size.
  const auto rb = run_cli("encode", {path, "--bound=3", "--encoding=binary"});
  EXPECT_EQ(rb.code, 0);
  EXPECT_NE(rb.out, r.out);
}

TEST(Cli, EncodeRejectsZeroMatrix) {
  const auto path = write_temp_matrix("00\n00\n", "encz");
  const auto r = run_cli("encode", {path});
  EXPECT_EQ(r.code, 1);
}

TEST(Cli, UsageListsAllCommands) {
  const auto text = usage();
  for (const char* cmd : {"solve", "strategies", "bounds", "fooling",
                          "components", "schedule", "generate", "convert",
                          "encode"})
    EXPECT_NE(text.find(cmd), std::string::npos) << cmd;
}

}  // namespace
}  // namespace ebmf::cli
