// Tests for the io JSON parser and the line-JSON wire request format.

#include "io/request_io.h"

#include <gtest/gtest.h>

#include "io/json.h"

namespace ebmf::io {
namespace {

TEST(Json, ParsesNestedDocument) {
  const auto v = json::Value::parse(
      R"({"a": [1, 2.5, -3e2], "b": {"c": "x\ny"}, "t": true, "n": null})");
  ASSERT_TRUE(v.is_object());
  const json::Value* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->size(), 3u);
  EXPECT_DOUBLE_EQ(a->at(0).as_number(), 1.0);
  EXPECT_DOUBLE_EQ(a->at(1).as_number(), 2.5);
  EXPECT_DOUBLE_EQ(a->at(2).as_number(), -300.0);
  const json::Value* b = v.find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->find("c")->as_string(), "x\ny");
  EXPECT_TRUE(v.find("t")->as_bool());
  EXPECT_TRUE(v.find("n")->is_null());
  EXPECT_EQ(v.find("absent"), nullptr);
}

TEST(Json, UnicodeEscapesDecodeToUtf8) {
  const auto v = json::Value::parse("\"a\\u00e9\\u20ac\"");
  EXPECT_EQ(v.as_string(), "a\xc3\xa9\xe2\x82\xac");
}

TEST(Json, MalformedDocumentsThrowWithOffset) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2",
        "{\"a\":1,}", "nan", "[1e999]"}) {
    EXPECT_THROW((void)json::Value::parse(bad), std::runtime_error) << bad;
  }
}

TEST(Json, EscapeRoundTripsThroughParse) {
  const std::string nasty = "a\"b\\c\nd\te";
  const auto v = json::Value::parse("\"" + json::escape(nasty) + "\"");
  EXPECT_EQ(v.as_string(), nasty);
}

TEST(WireRequest, MinimalRequestGetsDefaults) {
  const auto wire = parse_wire_request(R"({"pattern": "110;011;111"})");
  EXPECT_EQ(wire.request.strategy, "auto");
  EXPECT_EQ(wire.request.matrix.rows(), 3u);
  EXPECT_EQ(wire.request.trials, 100u);
  EXPECT_FALSE(wire.split);
  EXPECT_FALSE(wire.include_partition);
  EXPECT_EQ(wire.budget_seconds, 0.0);
  EXPECT_FALSE(wire.request.budget.deadline.limited());
}

TEST(WireRequest, AllFieldsParse) {
  const auto wire = parse_wire_request(
      R"({"pattern": ["110", "011", "111"], "strategy": "sap",
          "label": "patch", "budget": 1.5, "conflicts": 5000, "nodes": 10,
          "trials": 7, "seed": 9, "stop_at": 2, "encoding": "binary",
          "symmetry_breaking": false, "preprocess": false,
          "split": true, "threads": 2, "include_partition": true})");
  EXPECT_EQ(wire.request.strategy, "sap");
  EXPECT_EQ(wire.request.label, "patch");
  EXPECT_DOUBLE_EQ(wire.budget_seconds, 1.5);
  EXPECT_TRUE(wire.request.budget.deadline.limited());
  EXPECT_EQ(wire.request.budget.max_conflicts, 5000);
  EXPECT_EQ(wire.request.budget.max_nodes, 10u);
  EXPECT_EQ(wire.request.trials, 7u);
  EXPECT_EQ(wire.request.seed, 9u);
  EXPECT_EQ(wire.request.stop_at, 2u);
  EXPECT_EQ(wire.request.encoding, smt::LabelEncoding::Binary);
  EXPECT_FALSE(wire.request.symmetry_breaking);
  EXPECT_FALSE(wire.request.preprocess);
  EXPECT_TRUE(wire.split);
  EXPECT_EQ(wire.threads, 2u);
  EXPECT_TRUE(wire.include_partition);
}

TEST(WireRequest, DontCareCellsMakeTheRequestMasked) {
  const auto wire = parse_wire_request(R"({"pattern": "1*;*1"})");
  ASSERT_TRUE(wire.request.masked.has_value());
  EXPECT_EQ(wire.request.strategy, "completion");
  EXPECT_EQ(wire.request.masked->dont_care_count(), 2u);
}

TEST(WireRequest, MalformedRequestsThrow) {
  for (const char* bad : {
           "not json at all",
           "[1,2,3]",                           // not an object
           R"({"strategy": "sap"})",            // missing pattern
           R"({"pattern": ""})",                // empty pattern
           R"({"pattern": "10;0"})",            // ragged rows
           R"({"pattern": "10;01", "budget": "soon"})",   // non-numeric
           R"({"pattern": "10;01", "budget": -1})",       // out of range
           R"({"pattern": "10;01", "trials": 0})",        // out of range
           R"({"pattern": "10;01", "encoding": "gray"})",
           R"({"pattern": "10;01", "semantics": "maybe"})",
           R"({"pattern": [1, 2]})",            // rows must be strings
       }) {
    EXPECT_THROW((void)parse_wire_request(bad), std::runtime_error) << bad;
  }
}

TEST(WireRequest, JsonRoundTrips) {
  const std::string line =
      R"({"pattern": "1*;*1", "strategy": "completion", "label": "l",
          "budget": 2, "trials": 3, "split": true, "include_partition": true,
          "semantics": "at-most-once"})";
  const auto wire = parse_wire_request(line);
  const auto rendered = wire_request_json(wire);
  const auto reparsed = parse_wire_request(rendered);
  EXPECT_EQ(reparsed.request.strategy, "completion");
  EXPECT_EQ(reparsed.request.label, "l");
  EXPECT_DOUBLE_EQ(reparsed.budget_seconds, 2.0);
  EXPECT_EQ(reparsed.request.trials, 3u);
  EXPECT_TRUE(reparsed.split);
  EXPECT_TRUE(reparsed.include_partition);
  EXPECT_EQ(reparsed.request.semantics,
            completion::DontCareSemantics::AtMostOnce);
  ASSERT_TRUE(reparsed.request.masked.has_value());
  EXPECT_EQ(reparsed.request.masked->dont_care_count(), 2u);
}

TEST(WireResponse, PartitionAttachesAsIndexLists) {
  engine::SolveReport report;
  report.label = "x";
  report.strategy = "auto";
  BitVec rows(2);
  rows.set(0);
  BitVec cols(2);
  cols.set(1);
  report.partition.push_back(Rectangle{rows, cols});
  report.upper_bound = 1;
  const std::string plain = wire_response_json(report, false);
  EXPECT_EQ(plain.find("partition"), std::string::npos);
  const std::string with = wire_response_json(report, true);
  EXPECT_NE(with.find("\"partition\":[{\"rows\":[0],\"cols\":[1]}]"),
            std::string::npos);
  // Both stay single-line JSON objects.
  EXPECT_EQ(with.find('\n'), std::string::npos);
  EXPECT_EQ(with.back(), '}');
  // And the splice point keeps the document well-formed.
  EXPECT_NO_THROW((void)json::Value::parse(with));
  EXPECT_NO_THROW((void)json::Value::parse(plain));
}

TEST(WireRequest, IdRoundTripsAndLeadsTheResponse) {
  const auto wire =
      parse_wire_request(R"({"pattern": "10;01", "id": 7})");
  EXPECT_EQ(wire.id, 7);
  // Absent id parses as -1 and renders nothing.
  EXPECT_EQ(parse_wire_request(R"({"pattern": "10;01"})").id, -1);
  const std::string rendered = wire_request_json(wire);
  EXPECT_EQ(rendered.rfind("{\"id\":7,", 0), 0u);
  EXPECT_EQ(parse_wire_request(rendered).id, 7);

  engine::SolveReport report;
  report.label = "x";
  const std::string response = wire_response_json(report, false, 7);
  EXPECT_EQ(response.rfind("{\"id\":7,", 0), 0u);
  EXPECT_NO_THROW((void)json::Value::parse(response));
}

TEST(WireRequest, StatsOpSkipsThePattern) {
  const auto wire = parse_wire_request(R"({"op": "stats", "id": 3})");
  EXPECT_EQ(wire.op, WireOp::Stats);
  EXPECT_EQ(wire.id, 3);
  const std::string rendered = wire_request_json(wire);
  EXPECT_EQ(rendered, "{\"id\":3,\"op\":\"stats\"}");
  EXPECT_EQ(parse_wire_request(rendered).op, WireOp::Stats);
  // Unknown verbs and solve-without-pattern still fail.
  EXPECT_THROW((void)parse_wire_request(R"({"op": "nope"})"),
               std::runtime_error);
  EXPECT_THROW((void)parse_wire_request(R"({"op": "solve"})"),
               std::runtime_error);
}

TEST(WireRequest, ClusterMembershipVerbsRoundTrip) {
  const struct {
    const char* name;
    WireOp op;
  } verbs[] = {{"join", WireOp::Join},
               {"leave", WireOp::Leave},
               {"heartbeat", WireOp::Heartbeat}};
  for (const auto& verb : verbs) {
    const std::string line = std::string("{\"id\":7,\"op\":\"") + verb.name +
                             "\",\"endpoint\":\"127.0.0.1:7441\"}";
    const WireRequest wire = parse_wire_request(line);
    EXPECT_EQ(wire.op, verb.op) << verb.name;
    EXPECT_EQ(wire.id, 7) << verb.name;
    EXPECT_EQ(wire.endpoint, "127.0.0.1:7441") << verb.name;
    // Render is canonical (id, op, endpoint): the round trip is exact.
    EXPECT_EQ(wire_request_json(wire), line) << verb.name;
  }
  // The endpoint is mandatory.
  EXPECT_THROW((void)parse_wire_request(R"({"op":"join"})"),
               std::runtime_error);
  EXPECT_THROW((void)parse_wire_request(R"({"op":"join","endpoint":""})"),
               std::runtime_error);
  EXPECT_THROW((void)parse_wire_request(R"({"op":"heartbeat"})"),
               std::runtime_error);
}

TEST(WireRequest, PutVerbRoundTripsPatternStrategyAndReport) {
  WireRequest put;
  put.op = WireOp::Put;
  put.id = 12;
  put.request.matrix = BinaryMatrix::parse("10;01");
  put.request.strategy = "sap";
  put.put_report.strategy = "sap";
  put.put_report.status = engine::Status::Optimal;
  put.put_report.lower_bound = 2;
  BitVec row0(2), row1(2), col0(2), col1(2);
  row0.set(0);
  col0.set(0);
  row1.set(1);
  col1.set(1);
  put.put_report.partition.push_back(Rectangle{row0, col0});
  put.put_report.partition.push_back(Rectangle{row1, col1});
  put.put_report.upper_bound = 2;

  const std::string line = wire_request_json(put);
  const WireRequest parsed = parse_wire_request(line);
  EXPECT_EQ(parsed.op, WireOp::Put);
  EXPECT_EQ(parsed.id, 12);
  EXPECT_TRUE(parsed.request.matrix == put.request.matrix);
  EXPECT_EQ(parsed.request.strategy, "sap");
  EXPECT_EQ(parsed.put_report.status, engine::Status::Optimal);
  EXPECT_EQ(parsed.put_report.upper_bound, 2u);
  ASSERT_EQ(parsed.put_report.partition.size(), 2u);
  EXPECT_EQ(parsed.put_report.partition[0], put.put_report.partition[0]);

  // A put without a report, with a masked pattern, or with a report whose
  // depth disagrees with its partition is rejected at parse time.
  EXPECT_THROW(
      (void)parse_wire_request(R"({"op":"put","pattern":"10;01"})"),
      std::runtime_error);
  EXPECT_THROW((void)parse_wire_request(
                   R"({"op":"put","pattern":"1*;01","strategy":"sap",)"
                   R"("report":{"status":"optimal","lower_bound":1,)"
                   R"("upper_bound":1}})"),
               std::runtime_error);
  EXPECT_THROW((void)parse_wire_request(
                   R"({"op":"put","pattern":"10;01","strategy":"sap",)"
                   R"("report":{"status":"optimal","lower_bound":1,)"
                   R"("upper_bound":2,"partition":[{"rows":[0],)"
                   R"("cols":[0]}]}})"),
               std::runtime_error);
}

TEST(WireResponse, ParsesBackIntoAReport) {
  engine::SolveReport report;
  report.label = "rt";
  report.strategy = "sap";
  report.status = engine::Status::Optimal;
  report.lower_bound = 1;
  report.total_seconds = 0.25;
  report.add_timing("smt", 0.125);
  report.add_telemetry("cache_hit", "false");
  BitVec rows(2);
  rows.set(0);
  BitVec cols(3);
  cols.set(1);
  cols.set(2);
  report.partition.push_back(Rectangle{rows, cols});
  report.upper_bound = 1;
  report.incumbent_depth = 1;
  report.gap = 0;

  const std::string line = wire_response_json(report, true);
  const engine::SolveReport parsed = parse_wire_response(line, 2, 3);
  EXPECT_EQ(parsed.label, "rt");
  EXPECT_EQ(parsed.strategy, "sap");
  EXPECT_EQ(parsed.status, engine::Status::Optimal);
  EXPECT_EQ(parsed.lower_bound, 1u);
  EXPECT_EQ(parsed.upper_bound, 1u);
  EXPECT_EQ(parsed.incumbent_depth, 1u);
  EXPECT_EQ(parsed.gap, 0u);
  EXPECT_DOUBLE_EQ(parsed.total_seconds, 0.25);
  EXPECT_DOUBLE_EQ(parsed.timing("smt"), 0.125);
  ASSERT_NE(parsed.find_telemetry("cache_hit"), nullptr);
  ASSERT_EQ(parsed.partition.size(), 1u);
  EXPECT_EQ(parsed.partition[0], report.partition[0]);

  // Without dims the partition is skipped but the scalars survive.
  const engine::SolveReport scalars = parse_wire_response(line);
  EXPECT_TRUE(scalars.partition.empty());
  EXPECT_EQ(scalars.upper_bound, 1u);
}

TEST(WireResponse, AnytimeFieldsRoundTripAndDefault) {
  // An open-bracket anytime report keeps its incumbent and gap on the wire.
  engine::SolveReport report;
  report.strategy = "local";
  report.status = engine::Status::Bounded;
  report.lower_bound = 75;
  report.upper_bound = 120;
  report.incumbent_depth = 120;
  report.gap = 45;
  const engine::SolveReport parsed =
      parse_wire_response(wire_response_json(report, false));
  EXPECT_EQ(parsed.incumbent_depth, 120u);
  EXPECT_EQ(parsed.gap, 45u);

  // A pre-anytime peer's response (no such fields) defaults the incumbent
  // to the upper bound and the gap to the bracket width.
  const engine::SolveReport legacy = parse_wire_response(
      R"({"label":"old","strategy":"sap","status":"bounded",)"
      R"("depth":9,"lower_bound":7,"upper_bound":9,"total_seconds":0.1})");
  EXPECT_EQ(legacy.incumbent_depth, 9u);
  EXPECT_EQ(legacy.gap, 2u);
}

TEST(WireResponse, ParseRejectsGarbageAndErrors) {
  EXPECT_THROW((void)parse_wire_response("nope"), std::runtime_error);
  EXPECT_THROW((void)parse_wire_response(R"({"error": "boom"})"),
               std::runtime_error);
  // Depth/partition mismatch is rejected, not silently accepted.
  EXPECT_THROW(
      (void)parse_wire_response(
          R"({"status":"optimal","lower_bound":1,"upper_bound":2,)"
          R"("partition":[{"rows":[0],"cols":[0]}]})",
          2, 2),
      std::runtime_error);
  // Out-of-range partition indices are rejected.
  EXPECT_THROW(
      (void)parse_wire_response(
          R"({"status":"optimal","lower_bound":1,"upper_bound":1,)"
          R"("partition":[{"rows":[5],"cols":[0]}]})",
          2, 2),
      std::runtime_error);
}

}  // namespace
}  // namespace ebmf::io
