// Tests for ebmf::canon: lift round-trips (property-style over benchgen
// matrices), permutation-invariant keys for the workloads the cache serves,
// and determinism of the canonical form.

#include "service/canon.h"

#include <gtest/gtest.h>

#include "benchgen/generators.h"
#include "engine/engine.h"
#include "ftqc/patterns.h"
#include "support/rng.h"

namespace ebmf::canon {
namespace {

/// Apply row/column permutations: out[i][j] = m[row_perm[i]][col_perm[j]].
BinaryMatrix permuted(const BinaryMatrix& m,
                      const std::vector<std::size_t>& row_perm,
                      const std::vector<std::size_t>& col_perm) {
  BinaryMatrix out(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      if (m.test(row_perm[i], col_perm[j])) out.set(i, j);
  return out;
}

TEST(Canon, CanonicalPatternPreservesBinaryRankWitness) {
  // Solving the canonical pattern and lifting must give a valid partition
  // of the original with the same depth — the cache's core contract.
  Rng rng(42);
  const engine::Engine engine;
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t m = 4 + rng.below(8);
    const std::size_t n = 4 + rng.below(8);
    const double occupancy = 0.1 + 0.1 * static_cast<double>(trial % 6);
    const BinaryMatrix a = benchgen::random_matrix(m, n, occupancy, rng);
    const Canonical canonical = canonicalize(a);
    auto request = engine::SolveRequest::dense(canonical.pattern, "heuristic");
    request.trials = 20;
    const auto report = engine.solve(request);
    const Partition lifted = lift(report.partition, canonical);
    const auto validation = validate_partition(a, lifted);
    EXPECT_TRUE(validation.ok) << validation.reason;
    EXPECT_EQ(lifted.size(), report.partition.size());
  }
}

TEST(Canon, LiftRoundTripsForKnownOptimalFamily) {
  Rng rng(7);
  for (int trial = 0; trial < 6; ++trial) {
    const auto inst = benchgen::known_optimal_matrix(10, 10, 4, rng);
    const Canonical canonical = canonicalize(inst.matrix);
    const engine::Engine engine;
    const auto report = engine.solve(
        engine::SolveRequest::dense(canonical.pattern, "heuristic"));
    const Partition lifted = lift(report.partition, canonical);
    EXPECT_TRUE(validate_partition(inst.matrix, lifted).ok);
  }
}

TEST(Canon, KeyInvariantUnderRowColPermutation) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const BinaryMatrix a = benchgen::random_matrix(8, 9, 0.35, rng);
    const auto row_perm = rng.permutation(a.rows());
    const auto col_perm = rng.permutation(a.cols());
    const BinaryMatrix b = permuted(a, row_perm, col_perm);
    const Canonical ca = canonicalize(a);
    const Canonical cb = canonicalize(b);
    EXPECT_EQ(ca.key, cb.key) << "trial " << trial;
    EXPECT_EQ(ca.pattern, cb.pattern) << "trial " << trial;
  }
}

TEST(Canon, FtqcPatchVariantsShareOneCanonicalForm) {
  // The service's headline repeats: the same per-patch pattern shifted
  // around. Boundary rows at different offsets and the two checkerboard
  // parities must all collapse onto one cache entry.
  const Canonical row2 = canonicalize(ftqc::boundary_row_patch(7, 2));
  const Canonical row5 = canonicalize(ftqc::boundary_row_patch(7, 5));
  EXPECT_EQ(row2.key, row5.key);
  EXPECT_EQ(row2.pattern, row5.pattern);

  const Canonical even = canonicalize(ftqc::checkerboard_patch(6, 0));
  const Canonical odd = canonicalize(ftqc::checkerboard_patch(6, 1));
  EXPECT_EQ(even.key, odd.key);
  EXPECT_EQ(even.pattern, odd.pattern);
}

TEST(Canon, ComponentOrderIsCanonical) {
  // The same two blocks laid out in either diagonal order canonicalize
  // identically (components are re-sorted by content).
  const BinaryMatrix x = BinaryMatrix::parse("110;011;111");
  const BinaryMatrix y = BinaryMatrix::parse("11;10");
  BinaryMatrix xy(5, 5);
  BinaryMatrix yx(5, 5);
  for (const auto& [i, j] : x.ones()) {
    xy.set(i, j);
    yx.set(i + 2, j + 2);
  }
  for (const auto& [i, j] : y.ones()) {
    xy.set(i + 3, j + 3);
    yx.set(i, j);
  }
  const Canonical a = canonicalize(xy);
  const Canonical b = canonicalize(yx);
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.pattern, b.pattern);
  EXPECT_EQ(a.components.size(), 2u);
}

TEST(Canon, DuplicatesCollapse) {
  // Duplicate rows/cols and zero lines vanish from the canonical form.
  const BinaryMatrix a = BinaryMatrix::parse("1010;1010;0000;0101");
  const Canonical c = canonicalize(a);
  EXPECT_EQ(c.pattern.rows(), 2u);
  EXPECT_EQ(c.pattern.cols(), 2u);
  // An all-ones row pattern of any width dedups to a single 1x1 block.
  const Canonical one = canonicalize(ftqc::transversal_patch(5));
  EXPECT_EQ(one.pattern.rows(), 1u);
  EXPECT_EQ(one.pattern.cols(), 1u);
}

TEST(Canon, DistinctPatternsGetDistinctKeys) {
  const Canonical a = canonicalize(BinaryMatrix::parse("110;011;111"));
  const Canonical b = canonicalize(
      BinaryMatrix::parse("101100;010011;101010;010101;111000;000111"));
  EXPECT_NE(a.key, b.key);
  // Mixing the strategy name produces a distinct key for the same pattern.
  EXPECT_NE(a.key, a.key.mixed_with("sap"));
  EXPECT_NE(a.key.mixed_with("sap"), a.key.mixed_with("heuristic"));
}

TEST(Canon, ZeroAndEmptyMatricesAreStable) {
  const Canonical zero = canonicalize(BinaryMatrix(4, 6));
  EXPECT_EQ(zero.pattern.rows(), 0u);
  EXPECT_EQ(zero.pattern.cols(), 0u);
  EXPECT_TRUE(lift({}, zero).empty());
  const Canonical empty = canonicalize(BinaryMatrix());
  EXPECT_EQ(zero.key, empty.key);  // both canonicalize to the 0x0 pattern
}

TEST(Canon, KeyHexIsStable32Digits) {
  const Canonical c = canonicalize(BinaryMatrix::parse("10;01"));
  EXPECT_EQ(c.key.hex().size(), 32u);
  EXPECT_EQ(c.key.hex(), canonicalize(BinaryMatrix::parse("10;01")).key.hex());
}

}  // namespace
}  // namespace ebmf::canon
