// Canonicalization: dedup + component split + iterated row/col sort, the
// 128-bit content key, and the lift back to the original index space.

#include "service/canon.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <utility>

#include "support/contracts.h"

namespace ebmf::canon {

namespace {

// FNV-1a, 64-bit per lane; the two lanes use independent offset bases so
// the 128-bit key is not just a repeated 64-bit hash.
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
constexpr std::uint64_t kFnvOffsetHi = 14695981039346656037ULL;
constexpr std::uint64_t kFnvOffsetLo = 0x6c62272e07bb0142ULL;

void fnv_byte(std::uint64_t& h, unsigned char byte) {
  h ^= byte;
  h *= kFnvPrime;
}

void fnv_u64(std::uint64_t& h, std::uint64_t value) {
  for (int b = 0; b < 8; ++b) fnv_byte(h, (value >> (8 * b)) & 0xff);
}

CacheKey hash_matrix(const BinaryMatrix& m) {
  CacheKey key{kFnvOffsetHi, kFnvOffsetLo};
  fnv_u64(key.hi, m.rows());
  fnv_u64(key.hi, m.cols());
  fnv_u64(key.lo, m.cols());
  fnv_u64(key.lo, m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (const std::uint64_t w : m.row(i).words()) {
      fnv_u64(key.hi, w);
      fnv_u64(key.lo, ~w);
    }
  }
  return key;
}

/// Strict total order used for both row and column sorting: heavier lines
/// first, ties broken by content. Lines of a deduplicated component are
/// pairwise distinct, so ties never survive to the content comparison.
bool line_before(const BitVec& a, const BitVec& b) {
  const std::size_t ca = a.count();
  const std::size_t cb = b.count();
  if (ca != cb) return ca > cb;
  return b < a;
}

/// Permutation-invariant row/column colors by Weisfeiler–Leman-style
/// refinement on the bipartite row/column graph: a line's color is
/// repeatedly re-hashed from the sorted multiset of the colors of the lines
/// it intersects. Colors depend only on the isomorphism type of a line's
/// neighbourhood, never on input order, so sorting by color first makes the
/// canonical order invariant whenever refinement tells the lines apart —
/// which it does for random patterns with high probability. Symmetric
/// orbits keep equal colors and fall through to the content tie-break.
struct WlColors {
  std::vector<std::uint64_t> row;
  std::vector<std::uint64_t> col;
};

std::uint64_t hash_multiset(std::uint64_t own,
                            std::vector<std::uint64_t>& neighbours) {
  std::sort(neighbours.begin(), neighbours.end());
  std::uint64_t h = kFnvOffsetHi;
  fnv_u64(h, own);
  for (const std::uint64_t value : neighbours) fnv_u64(h, value);
  return h;
}

WlColors wl_colors(const BinaryMatrix& m) {
  WlColors colors;
  colors.row.resize(m.rows());
  colors.col.resize(m.cols());
  const BinaryMatrix t = m.transposed();
  for (std::size_t i = 0; i < m.rows(); ++i)
    colors.row[i] = 0x517cc1b727220a95ULL * m.row(i).count();
  for (std::size_t j = 0; j < m.cols(); ++j)
    colors.col[j] = 0x2545f4914f6cdd1dULL * t.row(j).count();

  // A few rounds individualize everything refinement can; components are
  // small after dedup, so a fixed cap is plenty.
  const std::size_t rounds = m.rows() + m.cols() > 64 ? 8 : 6;
  std::vector<std::uint64_t> scratch;
  for (std::size_t round = 0; round < rounds; ++round) {
    WlColors next = colors;
    for (std::size_t i = 0; i < m.rows(); ++i) {
      scratch.clear();
      for (std::size_t j = m.row(i).find_first(); j < m.cols();
           j = m.row(i).find_next(j))
        scratch.push_back(colors.col[j]);
      next.row[i] = hash_multiset(colors.row[i], scratch);
    }
    for (std::size_t j = 0; j < m.cols(); ++j) {
      scratch.clear();
      for (std::size_t i = t.row(j).find_first(); i < m.rows();
           i = t.row(j).find_next(i))
        scratch.push_back(colors.row[i]);
      next.col[j] = hash_multiset(colors.col[j], scratch);
    }
    colors = std::move(next);
  }
  return colors;
}

/// Sorted order of the rows of `m`: color first (invariant), content next.
std::vector<std::size_t> row_sort_order(
    const BinaryMatrix& m, const std::vector<std::uint64_t>& colors) {
  std::vector<std::size_t> order(m.rows());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (colors[a] != colors[b]) return colors[a] > colors[b];
    return line_before(m.row(a), m.row(b));
  });
  return order;
}

bool is_identity(const std::vector<std::size_t>& order) {
  for (std::size_t i = 0; i < order.size(); ++i)
    if (order[i] != i) return false;
  return true;
}

/// old_to_new composed: after applying `step` on top of `accumulated`,
/// canonical index i shows original index accumulated[step[i]].
std::vector<std::size_t> compose(const std::vector<std::size_t>& accumulated,
                                 const std::vector<std::size_t>& step) {
  std::vector<std::size_t> out(step.size());
  for (std::size_t i = 0; i < step.size(); ++i) out[i] = accumulated[step[i]];
  return out;
}

/// One component's canonical form: the sorted matrix plus the permutations
/// mapping canonical indices back to component-local ones.
struct SortedComponent {
  BinaryMatrix matrix;
  std::vector<std::size_t> row_order;
  std::vector<std::size_t> col_order;
  std::size_t passes = 0;
};

/// Alternate row and column sorts until a full pass changes nothing. The
/// alternation converges in practice within a few passes; the cap keeps the
/// function total on any adversarial input (the result is then merely a
/// deterministic — still sound — non-fixpoint form).
SortedComponent sort_component(const BinaryMatrix& m) {
  constexpr std::size_t kMaxPasses = 32;
  SortedComponent out;
  out.matrix = m;
  out.row_order.resize(m.rows());
  out.col_order.resize(m.cols());
  std::iota(out.row_order.begin(), out.row_order.end(), 0);
  std::iota(out.col_order.begin(), out.col_order.end(), 0);

  // Colors travel with their lines through every permutation below.
  WlColors colors = wl_colors(m);

  const auto permute_values = [](std::vector<std::uint64_t>& values,
                                 const std::vector<std::size_t>& order) {
    std::vector<std::uint64_t> next(values.size());
    for (std::size_t i = 0; i < order.size(); ++i) next[i] = values[order[i]];
    values = std::move(next);
  };

  for (; out.passes < kMaxPasses; ++out.passes) {
    const std::vector<std::size_t> rows =
        row_sort_order(out.matrix, colors.row);
    if (!is_identity(rows)) {
      out.matrix = out.matrix.permuted_rows(rows);
      out.row_order = compose(out.row_order, rows);
      permute_values(colors.row, rows);
    }
    const BinaryMatrix transposed = out.matrix.transposed();
    const std::vector<std::size_t> cols =
        row_sort_order(transposed, colors.col);
    if (is_identity(rows) && is_identity(cols)) break;
    if (!is_identity(cols)) {
      out.matrix = transposed.permuted_rows(cols).transposed();
      out.col_order = compose(out.col_order, cols);
      permute_values(colors.col, cols);
    }
  }
  return out;
}

/// Canonical order of the sorted components: larger first, content last.
bool component_before(const SortedComponent& a, const SortedComponent& b) {
  const std::size_t ones_a = a.matrix.ones_count();
  const std::size_t ones_b = b.matrix.ones_count();
  if (ones_a != ones_b) return ones_a > ones_b;
  if (a.matrix.rows() != b.matrix.rows())
    return a.matrix.rows() > b.matrix.rows();
  if (a.matrix.cols() != b.matrix.cols())
    return a.matrix.cols() > b.matrix.cols();
  for (std::size_t i = 0; i < a.matrix.rows(); ++i) {
    if (a.matrix.row(i) == b.matrix.row(i)) continue;
    return line_before(a.matrix.row(i), b.matrix.row(i));
  }
  return false;
}

}  // namespace

CacheKey CacheKey::mixed_with(const std::string& bytes) const {
  CacheKey out = *this;
  for (const char c : bytes) {
    fnv_byte(out.hi, static_cast<unsigned char>(c));
    fnv_byte(out.lo, static_cast<unsigned char>(c) ^ 0x5a);
  }
  return out;
}

std::string CacheKey::hex() const {
  char buffer[36];
  std::snprintf(buffer, sizeof buffer, "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buffer;
}

Canonical canonicalize(const BinaryMatrix& m) {
  Canonical c;
  c.original_rows = m.rows();
  c.original_cols = m.cols();
  c.reduction = reduce_duplicates(m);
  std::vector<Component> components = split_components(c.reduction.reduced);

  std::vector<SortedComponent> sorted;
  sorted.reserve(components.size());
  for (const Component& component : components) {
    sorted.push_back(sort_component(component.matrix));
    c.sort_passes = std::max(c.sort_passes, sorted.back().passes);
  }

  // Order the components canonically, carrying their lift records along.
  std::vector<std::size_t> order(components.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return component_before(sorted[a], sorted[b]);
  });

  std::size_t total_rows = 0;
  std::size_t total_cols = 0;
  for (const SortedComponent& s : sorted) {
    total_rows += s.matrix.rows();
    total_cols += s.matrix.cols();
  }

  BinaryMatrix pattern(total_rows, total_cols);
  std::size_t row_at = 0;
  std::size_t col_at = 0;
  for (const std::size_t idx : order) {
    SortedComponent& s = sorted[idx];
    for (std::size_t i = 0; i < s.matrix.rows(); ++i)
      for (std::size_t j = 0; j < s.matrix.cols(); ++j)
        if (s.matrix.test(i, j)) pattern.set(row_at + i, col_at + j);
    c.row_offset.push_back(row_at);
    c.col_offset.push_back(col_at);
    row_at += s.matrix.rows();
    col_at += s.matrix.cols();
    c.components.push_back(std::move(components[idx]));
    c.row_order.push_back(std::move(s.row_order));
    c.col_order.push_back(std::move(s.col_order));
  }
  c.pattern = std::move(pattern);
  c.key = hash_matrix(c.pattern);
  return c;
}

Partition lift(const Partition& p, const Canonical& c) {
  // Canonical-space partition -> reduced-matrix space. A rectangle of a
  // valid partition never spans two diagonal blocks (a spanning rectangle
  // would cover an off-block zero), so each maps inside one component.
  Partition reduced_partition;
  reduced_partition.reserve(p.size());
  const std::size_t reduced_rows = c.reduction.reduced.rows();
  const std::size_t reduced_cols = c.reduction.reduced.cols();
  for (const Rectangle& r : p) {
    EBMF_EXPECTS(!r.empty());
    const std::size_t first_row = r.rows.find_first();
    // The block whose row range contains first_row.
    std::size_t comp = c.row_offset.size();
    while (comp > 0 && c.row_offset[comp - 1] > first_row) --comp;
    EBMF_EXPECTS(comp > 0);
    --comp;
    const Component& component = c.components[comp];
    Rectangle lifted{BitVec(reduced_rows), BitVec(reduced_cols)};
    for (std::size_t i = r.rows.find_first(); i < r.rows.size();
         i = r.rows.find_next(i)) {
      EBMF_EXPECTS(i >= c.row_offset[comp] &&
                   i - c.row_offset[comp] < c.row_order[comp].size());
      const std::size_t local = c.row_order[comp][i - c.row_offset[comp]];
      lifted.rows.set(component.row_map[local]);
    }
    for (std::size_t j = r.cols.find_first(); j < r.cols.size();
         j = r.cols.find_next(j)) {
      EBMF_EXPECTS(j >= c.col_offset[comp] &&
                   j - c.col_offset[comp] < c.col_order[comp].size());
      const std::size_t local = c.col_order[comp][j - c.col_offset[comp]];
      lifted.cols.set(component.col_map[local]);
    }
    reduced_partition.push_back(std::move(lifted));
  }
  return expand_partition(reduced_partition, c.reduction);
}

}  // namespace ebmf::canon
