#pragma once
/// \file canon.h
/// \brief Pattern canonicalization for the result cache (`ebmf::canon`).
///
/// The service's headline workload — repeated addressing of per-patch FTQC
/// patterns — solves the *same* pattern over and over, usually shifted by a
/// row/column permutation (the boundary row of patch 3 vs patch 7, the two
/// checkerboard parities, …). r_B is invariant under row/column permutation,
/// duplicate collapse, and connected-component decomposition, so all those
/// variants share one canonical representative:
///
///  1. **Dedup** — collapse duplicate rows/columns and drop zero ones
///     (reduce_duplicates), recording the groups.
///  2. **Split** — decompose into connected components of the bipartite
///     row/column graph (split_components).
///  3. **Sort** — inside each component, first compute permutation-
///     invariant row/column colors by Weisfeiler–Leman-style refinement on
///     the bipartite row/column graph (a line's color hashes the multiset
///     of its neighbours' colors, iterated), then alternately sort rows and
///     columns by (color desc, content desc) until a fixpoint (capped).
///     When refinement individualizes the lines — almost surely for random
///     patterns — the order is fully permutation-invariant; symmetric
///     orbits fall back to the content tie-break.
///  4. **Order** — sort the components themselves by shape and content and
///     reassemble block-diagonally into one canonical pattern.
///
/// The iterated sort is a *sound but incomplete* canonical form: two
/// patterns with equal canonical matrices are always row/column-permutation
/// equivalent up to duplicates (every step is invertible), but graph
/// isomorphism being hard, some equivalent pairs may land on different
/// fixpoints and merely miss the cache. Lookups therefore compare the full
/// canonical pattern, never just the 128-bit key, so a hash or fixpoint
/// collision can never serve a wrong result.
///
/// Every step's permutation record is kept in Canonical, and lift() maps a
/// partition of the canonical pattern back to a valid partition of the
/// original — the certificate a cache hit replays.

#include <cstdint>
#include <string>
#include <vector>

#include "core/matrix.h"
#include "core/partition.h"
#include "core/preprocess.h"

namespace ebmf::canon {

/// A 128-bit content hash of a canonical pattern (FNV-1a over shape and row
/// words, two independent bases). Collisions are guarded by full pattern
/// comparison at the cache, so the key only needs to spread well.
struct CacheKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  /// Fold extra bytes (e.g. the strategy name) into this key.
  [[nodiscard]] CacheKey mixed_with(const std::string& bytes) const;

  /// 32 hex digits, hi then lo (stable across runs; telemetry-friendly).
  [[nodiscard]] std::string hex() const;

  friend bool operator==(const CacheKey& a, const CacheKey& b) noexcept {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const CacheKey& a, const CacheKey& b) noexcept {
    return !(a == b);
  }
};

/// Hash functor so CacheKey can key unordered containers.
struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const noexcept {
    return static_cast<std::size_t>(k.hi ^ (k.lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// A pattern's canonical form plus the invertible record needed to lift a
/// partition of the canonical pattern back onto the original matrix.
struct Canonical {
  BinaryMatrix pattern;  ///< Deduped, sorted, block-diagonal canonical form.
  CacheKey key;          ///< Content hash of `pattern`.

  // ---- lift record (canonical space -> original space) -----------------
  DuplicateReduction reduction;       ///< Original -> reduced mapping.
  std::vector<Component> components;  ///< Of `reduction.reduced`, canonical order.
  /// row_order[c][r] = component-local row shown at canonical block row r.
  std::vector<std::vector<std::size_t>> row_order;
  /// col_order[c][j] = component-local column shown at canonical block col j.
  std::vector<std::vector<std::size_t>> col_order;
  std::vector<std::size_t> row_offset;  ///< Block row start in `pattern`.
  std::vector<std::size_t> col_offset;  ///< Block col start in `pattern`.
  std::size_t sort_passes = 0;  ///< Row+col sort passes until fixpoint.

  /// Shape of the matrix canonicalize() was called on.
  std::size_t original_rows = 0;
  std::size_t original_cols = 0;
};

/// Canonicalize a pattern. Deterministic; r_B(pattern) == r_B(input).
Canonical canonicalize(const BinaryMatrix& m);

/// Lift a valid partition of `c.pattern` to a valid partition of the matrix
/// `c` was built from. Preserves the partition size (and hence any
/// optimality certificate: r_B is invariant under every canonical step).
Partition lift(const Partition& p, const Canonical& c);

}  // namespace ebmf::canon
