#pragma once
/// \file service.h
/// \brief `ebmf::service` — the long-lived line-JSON solver server.
///
/// The paper's FTQC workload is a stream of near-duplicate addressing
/// patterns; the one-shot CLI re-pays process start, pattern load, and the
/// full solve for each. The service keeps one engine (and its canonical
/// result cache, see cache.h) alive behind a TCP socket:
///
///  * **Protocol.** Newline-delimited JSON, one request per line in, one
///    response per line out (schema: io/request_io.h). Responses on a
///    connection are written in request order, so clients may pipeline
///    freely. A malformed line yields `{"error": "..."}` and the
///    connection stays open. A connection may upgrade to the binary frame
///    protocol (net/frame.h, io/binary_io.h) with `{"op":"upgrade"}`; the
///    line protocol stays the default for old clients and `nc`.
///  * **Concurrency.** Connections live on the epoll reactor
///    (net/reactor.h): a few event-loop threads own all sockets, and
///    complete messages are micro-batched to a worker pool — at most one
///    batch in flight per connection, so pipelined replies stay in request
///    order — then through Engine::solve_batch, which fans them across the
///    engine's thread pool. A global in-flight limit (admission control)
///    sheds load with an `overloaded` error instead of queueing
///    unboundedly, and every request runs under a deadline — its own
///    `budget` capped by the server ceiling — so a slot is always
///    reclaimed.
///  * **Cancellation.** Each connection owns a shared Budget cancellation
///    flag threaded into every solver it runs. The reactor reports hard
///    socket deaths (RST/EPOLLERR — not an orderly half-close: one-shot
///    clients legitimately FIN and then read) the moment they happen,
///    which flips the flag mid-solve (the anytime contract turns that into
///    a fast, still-valid return), and stop()/SIGTERM flips all of them
///    for a graceful drain: accepted requests are answered, then
///    connections close.
///
/// Server is usable in-process (tests bind port 0 and connect with
/// Client); serve_forever() is the `ebmf serve` entry point wiring
/// SIGTERM/SIGINT to the drain.

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "service/cache.h"

namespace ebmf::service {

/// Knobs of one server instance (CLI flags map 1:1).
struct ServerOptions {
  std::uint16_t port = 7421;       ///< 0 = pick an ephemeral port.
  std::string host = "127.0.0.1";  ///< Bind address.
  std::size_t threads = 0;  ///< solve_batch/split workers (0 = hardware).
  double cache_mb = 64.0;   ///< Canonical result cache budget (0 = off).
  std::size_t max_inflight = 256;  ///< Global admission limit.
  /// Per-request deadline ceiling in seconds. A request's own `budget` is
  /// capped by this; requests without one get exactly this. 0 = no ceiling
  /// (trusted clients only).
  double budget_ceiling_seconds = 10.0;
  std::size_t max_batch = 32;  ///< Pipelined lines solved per batch.
  std::size_t max_line_bytes = 4u << 20;  ///< Oversized line/frame guard.
  std::size_t io_threads = 2;  ///< Reactor event-loop threads.
  std::size_t io_workers = 0;  ///< Reactor handler threads (0 = auto).
  /// Reap connections with no traffic, no queued output, and no solve in
  /// flight for this long (half-open peers). 0 = never.
  double idle_timeout_seconds = 0.0;
  /// Cache persistence across restarts: when non-empty, serve_forever
  /// reloads the result cache from this snapshot on start (corrupt or
  /// version-mismatched files are ignored with a warning) and rewrites it
  /// after the SIGTERM drain.
  std::string cache_file;
  /// Cluster announcement (`--announce=HOST:PORT[,HOST:PORT...]`): when
  /// non-empty, the server dials each listed router after binding, sends
  /// `{"op":"join"}` with its own endpoint, heartbeats every
  /// `heartbeat_ms`, re-joins after an eviction or a router restart (with
  /// backoff), and sends a best-effort `{"op":"leave"}` on stop(). A
  /// router fleet is listed in full: heartbeats keep every router's local
  /// liveness view fresh, so a follower taking the lease already knows
  /// this backend is alive. Empty = PR 4 behavior, no control plane.
  std::string announce;
  /// The endpoint announced to the router ("" = host:bound-port — override
  /// when the router must dial a different address than the bind one).
  std::string advertise;
  double heartbeat_ms = 500.0;  ///< Announce heartbeat cadence.
  /// Slow-request log (`--slow-ms`): any solve whose wall-clock exceeds
  /// this many milliseconds is appended — with trace id, canonical key
  /// prefix, strategy, and per-phase timings — as one JSON line to
  /// `slow_log` (or stderr when empty). 0 = off.
  double slow_ms = 0.0;
  std::string slow_log;  ///< `--slow-log=PATH`; empty = stderr.
  /// Completed traces additionally append to this JSON-lines file
  /// (`--trace-file=PATH`); empty = ring only.
  std::string trace_file;
};

/// Point-in-time server counters (drain report, tests).
struct ServerStats {
  std::uint64_t connections = 0;  ///< Accepted since start.
  std::uint64_t requests = 0;     ///< Lines answered with a report.
  std::uint64_t errors = 0;       ///< Lines answered with an error.
  std::uint64_t rejected = 0;     ///< Requests shed by admission control.
  std::uint64_t puts = 0;         ///< Replica cache writes accepted.
  std::uint64_t joins_sent = 0;   ///< Successful join announcements.
  std::uint64_t join_rejects = 0; ///< Join attempts the router refused.
};

/// A long-lived solver server. Thread-safe; start() once, stop() once
/// (destructor stops too).
class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and launch the accept/watchdog threads. Throws
  /// std::runtime_error (with errno text) when the address is unusable.
  void start();

  /// Graceful drain: stop accepting, cancel in-flight budgets, answer
  /// what was accepted, join every thread. Idempotent.
  void stop();

  /// True between start() and stop().
  [[nodiscard]] bool running() const noexcept;

  /// The port actually bound (resolves port 0 after start()).
  [[nodiscard]] std::uint16_t port() const noexcept;

  [[nodiscard]] ServerStats stats() const;

  /// The engine serving requests (its cache() holds the hit counters).
  [[nodiscard]] engine::Engine& engine() noexcept;

  [[nodiscard]] const ServerOptions& options() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// A minimal blocking client for the wire protocol: one connection at a
/// time, line round-trips. Used by `ebmf client`, the tests, and the
/// smoke/drill jobs.
///
/// Resilience (HA, PR 8): the client holds an *address list* — any mix of
/// routers and backends — and fails over across it:
///
///  * **Connect/reset failover.** A refused dial or mid-flight reset
///    rotates to the next address; full rotations back off exponentially
///    (capped, jittered) so a briefly-dark fleet is ridden out rather than
///    hammered. round_trip() re-sends its line over the fresh connection.
///  * **Redirect chasing.** A follower's epoch-stamped
///    `{"redirect":"host:port",...}` reply makes the client reconnect to
///    the named leaseholder and re-send — bounded hops, so a redirect loop
///    during an election degrades into ordinary failover. A stale-epoch
///    redirect is harmless: the target answers or resets, and either way
///    the client converges on the live leaseholder.
///  * **Request-id dedupe.** Replies are deduped by `"id"` plus the
///    request line itself (an id reused for a *different* request is not a
///    retry and still reaches the server): a retried
///    request whose first send actually landed is answered exactly once —
///    the duplicate reply (same id, already-answered) is dropped, and a
///    re-sent already-answered id returns the cached reply instead of
///    dialing again. Solve requests are idempotent, which is what makes
///    the re-send safe in the first place; the dedupe makes it *counted*
///    safe for callers tallying replies.
class Client {
 public:
  /// Connect to the first reachable address of the list (throws
  /// std::runtime_error when every address refuses).
  explicit Client(const std::vector<std::string>& endpoints);

  /// Single-address convenience (tests, pre-HA callers).
  Client(const std::string& host, std::uint16_t port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one request line (newline appended if missing). Fails over to
  /// the next address when the send hits a reset/refused peer.
  void send_line(const std::string& line);

  /// Block for the next response line. Throws on server EOF.
  std::string read_line();

  /// send_line + read_line with failover, redirect chasing, and
  /// request-id dedupe (see class comment).
  std::string round_trip(const std::string& line);

  /// The address currently connected ("host:port") — who answered last.
  [[nodiscard]] const std::string& endpoint() const noexcept;

  /// Half-close the sending side / tear down the connection.
  void close();

 private:
  /// Tear down and re-establish a connection, rotating through the
  /// address list with capped jittered backoff between full rotations.
  /// False when every address refuses for `rounds` rotations.
  bool reconnect(std::size_t rounds = 3);

  /// Dial one specific address (a redirect target). False on refusal.
  bool connect_to(const std::string& endpoint);

  /// One answered request: the id alone is not the cache key — a retry
  /// must carry the *same line* to be served from cache, so an id reused
  /// for a different request still reaches the server.
  struct Answered {
    std::int64_t id;
    std::size_t line_hash;
    std::string reply;
  };

  /// Record an answered id (bounded) and say whether it was new.
  bool record_answered(std::int64_t id, std::size_t line_hash,
                       const std::string& reply);

  std::vector<std::string> endpoints_;
  std::size_t cursor_ = 0;     ///< Index of the connected address.
  std::string connected_;      ///< Text of the connected address.
  double backoff_ms_ = 50.0;   ///< Next inter-rotation pause.
  std::uint64_t jitter_state_; ///< Cheap xorshift state for jitter.
  int fd_ = -1;
  std::string buffer_;
  /// Answered-id cache (insertion-ordered, bounded).
  std::vector<Answered> answered_;
};

/// Run a server until SIGTERM/SIGINT, then drain and report on `log`.
/// Returns a process exit code (0 on a clean drain). The `ebmf serve`
/// entry point.
int serve_forever(const ServerOptions& options, std::ostream& log);

}  // namespace ebmf::service
