#pragma once
/// \file service.h
/// \brief `ebmf::service` — the long-lived line-JSON solver server.
///
/// The paper's FTQC workload is a stream of near-duplicate addressing
/// patterns; the one-shot CLI re-pays process start, pattern load, and the
/// full solve for each. The service keeps one engine (and its canonical
/// result cache, see cache.h) alive behind a TCP socket:
///
///  * **Protocol.** Newline-delimited JSON, one request per line in, one
///    response per line out (schema: io/request_io.h). Responses on a
///    connection are written in request order, so clients may pipeline
///    freely. A malformed line yields `{"error": "..."}` and the
///    connection stays open.
///  * **Concurrency.** One reader thread per connection; consecutive
///    pipelined lines are micro-batched through Engine::solve_batch, which
///    fans them across the engine's thread pool. A global in-flight limit
///    (admission control) sheds load with an `overloaded` error instead of
///    queueing unboundedly, and every request runs under a deadline — its
///    own `budget` capped by the server ceiling — so a slot is always
///    reclaimed.
///  * **Cancellation.** Each connection owns a shared Budget cancellation
///    flag threaded into every solver it runs. A watchdog notices dead
///    sockets (hard errors, not an orderly half-close — one-shot clients
///    legitimately FIN and then read) mid-solve and flips the flag (the
///    anytime contract turns that into a fast, still-valid return), and
///    stop()/SIGTERM flips all of them for a graceful drain: accepted
///    requests are answered, then connections close.
///
/// Server is usable in-process (tests bind port 0 and connect with
/// Client); serve_forever() is the `ebmf serve` entry point wiring
/// SIGTERM/SIGINT to the drain.

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "engine/engine.h"
#include "service/cache.h"

namespace ebmf::service {

/// Knobs of one server instance (CLI flags map 1:1).
struct ServerOptions {
  std::uint16_t port = 7421;       ///< 0 = pick an ephemeral port.
  std::string host = "127.0.0.1";  ///< Bind address.
  std::size_t threads = 0;  ///< solve_batch/split workers (0 = hardware).
  double cache_mb = 64.0;   ///< Canonical result cache budget (0 = off).
  std::size_t max_inflight = 256;  ///< Global admission limit.
  /// Per-request deadline ceiling in seconds. A request's own `budget` is
  /// capped by this; requests without one get exactly this. 0 = no ceiling
  /// (trusted clients only).
  double budget_ceiling_seconds = 10.0;
  std::size_t max_batch = 32;  ///< Pipelined lines solved per batch.
  std::size_t max_line_bytes = 4u << 20;  ///< Oversized-line guard.
  /// Cache persistence across restarts: when non-empty, serve_forever
  /// reloads the result cache from this snapshot on start (corrupt or
  /// version-mismatched files are ignored with a warning) and rewrites it
  /// after the SIGTERM drain.
  std::string cache_file;
  /// Cluster announcement (`--announce=HOST:PORT`): when non-empty, the
  /// server dials this router after binding, sends `{"op":"join"}` with its
  /// own endpoint, heartbeats every `heartbeat_ms`, re-joins after an
  /// eviction or a router restart (with backoff), and sends a best-effort
  /// `{"op":"leave"}` on stop(). Empty = PR 4 behavior, no control plane.
  std::string announce;
  /// The endpoint announced to the router ("" = host:bound-port — override
  /// when the router must dial a different address than the bind one).
  std::string advertise;
  double heartbeat_ms = 500.0;  ///< Announce heartbeat cadence.
  /// Slow-request log (`--slow-ms`): any solve whose wall-clock exceeds
  /// this many milliseconds is appended — with trace id, canonical key
  /// prefix, strategy, and per-phase timings — as one JSON line to
  /// `slow_log` (or stderr when empty). 0 = off.
  double slow_ms = 0.0;
  std::string slow_log;  ///< `--slow-log=PATH`; empty = stderr.
  /// Completed traces additionally append to this JSON-lines file
  /// (`--trace-file=PATH`); empty = ring only.
  std::string trace_file;
};

/// Point-in-time server counters (drain report, tests).
struct ServerStats {
  std::uint64_t connections = 0;  ///< Accepted since start.
  std::uint64_t requests = 0;     ///< Lines answered with a report.
  std::uint64_t errors = 0;       ///< Lines answered with an error.
  std::uint64_t rejected = 0;     ///< Requests shed by admission control.
  std::uint64_t puts = 0;         ///< Replica cache writes accepted.
  std::uint64_t joins_sent = 0;   ///< Successful join announcements.
  std::uint64_t join_rejects = 0; ///< Join attempts the router refused.
};

/// A long-lived solver server. Thread-safe; start() once, stop() once
/// (destructor stops too).
class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and launch the accept/watchdog threads. Throws
  /// std::runtime_error (with errno text) when the address is unusable.
  void start();

  /// Graceful drain: stop accepting, cancel in-flight budgets, answer
  /// what was accepted, join every thread. Idempotent.
  void stop();

  /// True between start() and stop().
  [[nodiscard]] bool running() const noexcept;

  /// The port actually bound (resolves port 0 after start()).
  [[nodiscard]] std::uint16_t port() const noexcept;

  [[nodiscard]] ServerStats stats() const;

  /// The engine serving requests (its cache() holds the hit counters).
  [[nodiscard]] engine::Engine& engine() noexcept;

  [[nodiscard]] const ServerOptions& options() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// A minimal blocking client for the wire protocol: one connection, line
/// round-trips. Used by `ebmf client`, the tests, and the smoke job.
///
/// Resilience: a send that fails with a connection reset (ECONNRESET /
/// EPIPE — the peer was restarted) retries once after a fresh connect, and
/// round_trip() re-sends its line once when the reply side reports EOF or a
/// reset, so a router failover or a quick backend restart is invisible to a
/// blocking caller. Solve requests are idempotent, which makes the one
/// re-send safe; only one reconnect is attempted before the error
/// propagates.
class Client {
 public:
  /// Connect (throws std::runtime_error on refusal/timeout).
  Client(const std::string& host, std::uint16_t port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one request line (newline appended if missing). Retries once
  /// over a fresh connection when the send hits ECONNRESET/EPIPE.
  void send_line(const std::string& line);

  /// Block for the next response line. Throws on server EOF.
  std::string read_line();

  /// send_line + read_line, with one reconnect + re-send when the
  /// connection died between the two.
  std::string round_trip(const std::string& line);

  /// Half-close the sending side / tear down the connection.
  void close();

 private:
  /// Tear down and re-establish the connection. False when the peer
  /// refuses (the original error should propagate then).
  bool reconnect();

  std::string host_;
  std::uint16_t port_ = 0;
  int fd_ = -1;
  std::string buffer_;
};

/// Run a server until SIGTERM/SIGINT, then drain and report on `log`.
/// Returns a process exit code (0 on a clean drain). The `ebmf serve`
/// entry point.
int serve_forever(const ServerOptions& options, std::ostream& log);

}  // namespace ebmf::service
