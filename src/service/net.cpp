// Shared socket + line-framing plumbing for the server, client, and router.

#include "service/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "io/json.h"
#include "support/fault.h"

namespace ebmf::service::net {

void sys_fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void set_tcp_nodelay(int fd) {
  // The protocol is small pipelined request/reply lines and frames; Nagle
  // would stall every micro-batched reply behind the previous ACK. Failure
  // is ignored: fd may be a pipe/socketpair in tests.
  const int yes = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &yes, sizeof yes);
}

std::string error_json(const std::string& message, const std::string& label,
                       std::int64_t id) {
  std::string out = "{";
  if (id >= 0) out += "\"id\":" + std::to_string(id) + ",";
  out += "\"error\":\"" + io::json::escape(message) + "\"";
  if (!label.empty()) out += ",\"label\":\"" + io::json::escape(label) + "\"";
  out += "}";
  return out;
}

bool write_line(int fd, std::string line) {
  line += '\n';
  // Fault-injection seam: a drill can stall the write, drop it outright, or
  // tear it mid-line (send a prefix, then shoot the connection) so peers see
  // the same half-open/partial-frame failures a flaky network produces.
  fault::maybe_delay();
  if (fault::should_drop_write()) {
    ::shutdown(fd, SHUT_RDWR);
    return false;
  }
  const std::size_t limit = fault::maybe_tear(line.size());
  std::size_t sent = 0;
  while (sent < limit) {
    const ssize_t n =
        ::send(fd, line.data() + sent, limit - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  if (limit < line.size()) {  // torn: the peer never sees the newline
    ::shutdown(fd, SHUT_RDWR);
    return false;
  }
  return true;
}

int tcp_connect(const std::string& host, std::uint16_t port) {
  if (fault::should_drop_connect()) {
    errno = ECONNREFUSED;
    sys_fail("connect " + host + ":" + std::to_string(port) +
             " (injected fault)");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("bad host '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    sys_fail("connect " + host + ":" + std::to_string(port));
  }
  set_tcp_nodelay(fd);
  return fd;
}

bool parse_endpoint(const std::string& text, std::string& host,
                    std::uint16_t& port) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == text.size())
    return false;
  const std::string port_text = text.substr(colon + 1);
  char* end = nullptr;
  const unsigned long value = std::strtoul(port_text.c_str(), &end, 10);
  if (end == port_text.c_str() || *end != '\0' || value == 0 || value > 65535)
    return false;
  host = text.substr(0, colon);
  port = static_cast<std::uint16_t>(value);
  return true;
}

bool strip_id_prefix(std::string& line, std::uint64_t& id) {
  static constexpr char kPrefix[] = "{\"id\":";
  constexpr std::size_t kPrefixLen = sizeof kPrefix - 1;
  if (line.rfind(kPrefix, 0) != 0) return false;
  std::size_t pos = kPrefixLen;
  if (pos >= line.size() || line[pos] < '0' || line[pos] > '9') return false;
  std::uint64_t value = 0;
  while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
    value = value * 10 + static_cast<std::uint64_t>(line[pos] - '0');
    ++pos;
  }
  if (pos >= line.size()) return false;
  std::string rest;
  rest.reserve(line.size());
  rest += '{';
  if (line[pos] == ',') {
    rest.append(line, pos + 1, std::string::npos);
  } else if (line[pos] == '}') {
    rest.append(line, pos, std::string::npos);  // only member -> "{}"
  } else {
    return false;
  }
  line = std::move(rest);
  id = value;
  return true;
}

std::string with_id_prefix(const std::string& line, std::int64_t id) {
  if (id < 0 || line.empty() || line.front() != '{') return line;
  const std::string prefix = "{\"id\":" + std::to_string(id);
  if (line.size() >= 2 && line[1] == '}')  // "{}"
    return prefix + "}";
  return prefix + "," + line.substr(1);
}

bool LineBuffer::pop(std::string& line) {
  const std::size_t nl = buffer_.find('\n');
  if (nl == std::string::npos) return false;
  line = buffer_.substr(0, nl);
  buffer_.erase(0, nl + 1);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return true;
}

bool LineBuffer::flush(std::string& line) {
  if (buffer_.empty()) return false;
  line.swap(buffer_);
  buffer_.clear();
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return true;
}

void TcpListener::listen(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) sys_fail("socket");
  const int yes = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &yes, sizeof yes);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    throw std::runtime_error("bad bind address '" + host + "'");
  }
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int saved = errno;
    close();
    errno = saved;
    sys_fail("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd_, SOMAXCONN) != 0) {
    const int saved = errno;
    close();
    errno = saved;
    sys_fail("listen");
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
}

int TcpListener::accept_ready(int timeout_ms) {
  if (fd_ < 0) return -1;
  pollfd waiter{fd_, POLLIN, 0};
  const int ready = ::poll(&waiter, 1, timeout_ms);
  if (ready <= 0) return -1;
  const int conn = ::accept(fd_, nullptr, nullptr);
  if (conn >= 0) set_tcp_nodelay(conn);
  return conn;
}

void TcpListener::shutdown_now() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace ebmf::service::net
