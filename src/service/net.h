#pragma once
/// \file net.h
/// \brief Socket and line-framing plumbing shared by the solver Server
/// (service.h), the blocking Client, and the sharding Router
/// (router/router.h).
///
/// The wire protocol is newline-delimited JSON over TCP; every process in
/// the topology — `ebmf serve`, `ebmf route`, `ebmf client` — needs the
/// same four pieces: a listener with a pollable accept loop, a blocking
/// connect, a full-line writer that survives partial sends, and a byte
/// buffer that frames complete lines out of recv chunks. They lived inline
/// in service.cpp while the server was the only user; the router made them
/// a shared seam.
///
/// Also here: the protocol's error-reply renderer and the `"id"` prefix
/// helpers the router uses to match pipelined backend replies to their
/// requests (responses carry the id as their first member, so the match
/// needs no full JSON parse on the hot path).

#include <cstdint>
#include <string>

namespace ebmf::service::net {

/// Throw std::runtime_error("<what>: <strerror(errno)>").
[[noreturn]] void sys_fail(const std::string& what);

/// Disable Nagle on a connected TCP socket (best-effort; every socket the
/// tree creates — accepts, tcp_connect, pool dials — goes through this).
void set_tcp_nodelay(int fd);

/// `{"error": "...", "label": "..."}` with an optional `"id"` first member
/// — the protocol's failure reply (id < 0 omits the field).
std::string error_json(const std::string& message, const std::string& label,
                       std::int64_t id = -1);

/// Send `line` + '\n' fully; false when the peer is gone (errno is left
/// describing the failure).
bool write_line(int fd, std::string line);

/// Blocking IPv4 connect; returns the fd or throws std::runtime_error.
int tcp_connect(const std::string& host, std::uint16_t port);

/// Split "host:port" (port 1..65535). False on malformed input.
bool parse_endpoint(const std::string& text, std::string& host,
                    std::uint16_t& port);

/// If `line` is an object whose first member is `"id": <uint>`, extract the
/// id and rewrite `line` without it (`{"id":7,"x":1}` -> `{"x":1}`). False
/// (line untouched) when there is no id prefix.
bool strip_id_prefix(std::string& line, std::uint64_t& id);

/// Splice `"id": id` in as the first member of a rendered JSON object
/// (id < 0 returns the line unchanged).
std::string with_id_prefix(const std::string& line, std::int64_t id);

/// Frames complete '\n'-terminated lines (CR trimmed) out of appended
/// chunks. flush() hands back a trailing unterminated line — `printf | nc`
/// clients do not always send the final newline.
class LineBuffer {
 public:
  void append(const char* data, std::size_t n) { buffer_.append(data, n); }

  /// Pop the next complete line; false when none is buffered.
  bool pop(std::string& line);

  /// Pop the unterminated tail (EOF handling); false when empty.
  bool flush(std::string& line);

  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// A bound, listening IPv4 socket with a poll-based accept step — the
/// accept-loop shape both Server and Router run (poll with a timeout so the
/// loop can reap finished workers and notice stop()).
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener() { close(); }

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Bind + listen. Throws std::runtime_error (errno text) when the
  /// address is unusable. Port 0 binds an ephemeral port; port() reports
  /// the resolved one.
  void listen(const std::string& host, std::uint16_t port);

  /// Poll for a pending connection up to `timeout_ms`, then accept it.
  /// Returns the connection fd, or -1 when nothing arrived (timeout,
  /// EINTR, or the listener was shut down).
  int accept_ready(int timeout_ms);

  /// Wake any accept_ready() poll and refuse further connections (stop()
  /// path; close() releases the fd).
  void shutdown_now();

  void close();

  [[nodiscard]] bool listening() const noexcept { return fd_ >= 0; }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace ebmf::service::net
