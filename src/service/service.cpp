// The solver server on the epoll reactor (net/reactor.h): event loops own
// the sockets, micro-batches flow through the worker pool into the engine,
// and connections speak line-JSON or (after `{"op":"upgrade"}`) the binary
// frame protocol. Admission control, cancellation wiring (hard socket
// deaths, SIGTERM drain), watch streams, and the announce control plane
// live here; socket plumbing is shared with the router via service/net.h.

#include "service/service.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/partition.h"
#include "io/binary_io.h"
#include "io/json.h"
#include "io/request_io.h"
#include "net/frame.h"
#include "net/reactor.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "service/canon.h"
#include "service/net.h"
#include "support/logrotate.h"

namespace ebmf::service {

namespace {

using net::error_json;
using net::write_line;
namespace rnet = ebmf::net;

/// Owner-side per-connection state hung on the reactor connection.
struct ConnState {
  /// Cancellation flag threaded into every Budget this connection solves
  /// under; flipped by on_close on a hard death and by stop() on drain.
  std::shared_ptr<std::atomic<bool>> cancel =
      std::make_shared<std::atomic<bool>>(false);
};

std::shared_ptr<ConnState> conn_state(const rnet::ConnPtr& conn) {
  return std::static_pointer_cast<ConnState>(conn->user());
}

/// Wrap one JSON reply line in the framing the triggering message used:
/// '\n'-terminated on a line connection, a type-4 JSON frame after the
/// upgrade.
std::string framed_json(rnet::WireMode mode, const std::string& line) {
  if (mode == rnet::WireMode::Line) return line + "\n";
  return rnet::encode_frame(rnet::kFrameJson, line);
}

}  // namespace

struct Server::Impl {
  explicit Impl(ServerOptions opt) : options(std::move(opt)) {
    if (options.max_batch == 0) options.max_batch = 1;
    if (options.cache_mb > 0)
      engine.set_cache(cache::ResultCache::with_capacity_mb(options.cache_mb));
    if (!options.trace_file.empty()) {
      std::string error;
      if (!traces.set_file(options.trace_file, &error))
        std::fprintf(stderr, "trace-file: %s\n", error.c_str());
    }
    if (!options.slow_log.empty()) {
      std::string error;
      if (!slow_file.open(options.slow_log, &error))
        std::fprintf(stderr, "slow-log: %s, logging to stderr\n",
                     error.c_str());
    }
  }

  ServerOptions options;
  engine::Engine engine;

  /// Completed traces of requests this server handled (op:trace/op:traces).
  obs::TraceStore traces{128};
  /// Slow-request sink (--slow-log), size-rotated (`path` → `path.1`, two
  /// generations kept); stderr when closed and --slow-ms is on.
  RotatingFile slow_file;
  std::mutex slow_mutex;

  /// One in-flight solve visible to `{"op":"watch"}` and the stats panel.
  struct InflightEntry {
    obs::ProgressSinkPtr sink;
    std::string strategy;
    std::string label;
    std::uint64_t start_us = 0;
  };
  /// Wire id → in-flight entry. Only id-carrying solve requests register
  /// (an id is how a watcher names the solve); entries unregister — and
  /// their sink finishes, releasing every watcher — when the solve's
  /// reply is built.
  mutable std::mutex inflight_mutex;
  std::map<std::int64_t, InflightEntry> inflight_watch;

  // Registry series, resolved once (obs/metrics.h).
  obs::Histogram* obs_request =
      obs::default_registry().histogram("server.request.micros");
  obs::Counter* obs_requests =
      obs::default_registry().counter("server.requests");
  obs::Counter* obs_errors = obs::default_registry().counter("server.errors");
  obs::Counter* obs_rejected =
      obs::default_registry().counter("server.rejected");
  obs::Gauge* obs_inflight =
      obs::default_registry().gauge("server.inflight");

  /// The I/O tier. Created in start(); shutdown (not destroyed) in stop(),
  /// so port() and stats stay answerable after a drain.
  std::unique_ptr<rnet::ReactorServer> reactor;
  std::atomic<bool> running{false};
  std::atomic<bool> stopping{false};

  /// One watch stream = one tracked thread writing through conn->try_send
  /// (never blocking an event loop or a reactor worker for the lifetime of
  /// someone else's solve). Finished threads are reaped on the next watch;
  /// stop() joins the rest.
  struct WatchThread {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::mutex watch_mutex;
  std::vector<WatchThread> watch_threads;

  /// The announce clients' live sockets, one slot per router in the
  /// (comma-separated) --announce list; -1 when that session is down.
  /// stop() shuts them down (under the mutex, so a concurrent close/reuse
  /// can never hand it a recycled descriptor) to wake blocking heartbeat
  /// reads. Announcing to *every* router of a fleet keeps each router's
  /// local liveness view fresh, so a follower that takes the lease
  /// already knows this backend is alive.
  std::vector<std::thread> announce_threads;
  std::mutex announce_mutex;
  std::vector<int> announce_fds;

  std::atomic<std::size_t> inflight{0};
  std::atomic<std::uint64_t> stat_connections{0};
  std::atomic<std::uint64_t> stat_requests{0};
  std::atomic<std::uint64_t> stat_errors{0};
  std::atomic<std::uint64_t> stat_rejected{0};
  std::atomic<std::uint64_t> stat_puts{0};
  std::atomic<std::uint64_t> stat_joins_sent{0};
  std::atomic<std::uint64_t> stat_join_rejects{0};

  /// Reserve one admission slot; false when the server is at capacity.
  bool try_admit() {
    const std::size_t limit = options.max_inflight;
    const std::size_t current =
        inflight.fetch_add(1, std::memory_order_relaxed);
    if (limit != 0 && current >= limit) {
      inflight.fetch_sub(1, std::memory_order_relaxed);
      return false;
    }
    obs_inflight->add(1);
    return true;
  }

  void release_admitted(std::size_t count) {
    if (count > 0) {
      inflight.fetch_sub(count, std::memory_order_relaxed);
      obs_inflight->add(-static_cast<std::int64_t>(count));
    }
  }

  std::string stats_json(std::int64_t id) const;
  std::string handle_put(const io::WireRequest& wire);
  void handle_watch(const rnet::ConnPtr& conn, std::int64_t id,
                    rnet::WireMode mode);
  void watch_stream(const rnet::ConnPtr& conn,
                    const obs::ProgressSinkPtr& sink, std::int64_t id,
                    rnet::WireMode mode);
  void reap_watch_threads(bool join_all);
  void log_slow(const engine::SolveReport& report, double elapsed_ms,
                const std::string& trace_id);
  std::string advertised_endpoint() const;
  int dial_announce(const std::string& host, std::uint16_t port);
  bool announce_round(const std::string& host, std::uint16_t port,
                      const std::string& self, std::size_t slot);
  void announce_loop(std::string router, std::size_t slot);
  void process_batch(const rnet::ConnPtr& conn,
                     std::vector<rnet::Message> messages);
};

/// The `{"op":"stats"}` reply: server counters + cache counters, one line.
std::string Server::Impl::stats_json(std::int64_t id) const {
  std::ostringstream out;
  out << "{";
  if (id >= 0) out << "\"id\":" << id << ",";
  out << "\"stats\":true,\"role\":\"server\",\"server\":{"
      << "\"connections\":" << stat_connections.load(std::memory_order_relaxed)
      << ",\"requests\":" << stat_requests.load(std::memory_order_relaxed)
      << ",\"errors\":" << stat_errors.load(std::memory_order_relaxed)
      << ",\"rejected\":" << stat_rejected.load(std::memory_order_relaxed)
      << ",\"puts\":" << stat_puts.load(std::memory_order_relaxed)
      << ",\"joins_sent\":" << stat_joins_sent.load(std::memory_order_relaxed)
      << ",\"join_rejects\":"
      << stat_join_rejects.load(std::memory_order_relaxed)
      << ",\"inflight\":" << inflight.load(std::memory_order_relaxed)
      << ",\"max_inflight\":" << options.max_inflight << "}";
  if (engine.cache()) {
    const cache::CacheStats stats = engine.cache()->stats();
    out << ",\"cache\":{\"hits\":" << stats.hits
        << ",\"misses\":" << stats.misses
        << ",\"evictions\":" << stats.evictions
        << ",\"insertions\":" << stats.insertions
        << ",\"entries\":" << stats.entries << ",\"bytes\":" << stats.bytes
        << ",\"capacity_bytes\":" << engine.cache()->capacity_bytes() << "}";
  } else {
    out << ",\"cache\":null";
  }
  // The in-flight requests panel (ebmf top): one entry per watchable solve
  // with its live incumbent/bound bracket from the progress sink.
  out << ",\"inflight_requests\":[";
  {
    const std::lock_guard<std::mutex> lock(inflight_mutex);
    bool first = true;
    const std::uint64_t now_us = obs::steady_micros();
    for (const auto& [wid, entry] : inflight_watch) {
      if (!first) out << ",";
      first = false;
      const obs::ProgressFrame last = entry.sink->last();
      out << "{\"id\":" << wid << ",\"strategy\":\""
          << io::json::escape(entry.strategy) << "\"";
      if (!entry.label.empty())
        out << ",\"label\":\"" << io::json::escape(entry.label) << "\"";
      out << ",\"elapsed_ms\":"
          << (now_us > entry.start_us ? (now_us - entry.start_us) / 1000 : 0)
          << ",\"incumbent_depth\":" << last.incumbent_depth
          << ",\"lower_bound\":" << last.lower_bound
          << ",\"gap\":" << last.gap << "}";
    }
  }
  out << "]";
  out << ",\"metrics\":" << obs::metrics_json(obs::default_registry());
  out << "}";
  return out.str();
}

namespace {

std::string watch_frame_line(std::int64_t id, const obs::ProgressFrame& f) {
  std::string line = obs::progress_frame_json(f);
  if (id >= 0 && !line.empty() && line.front() == '{')
    line = "{\"id\":" + std::to_string(id) + "," + line.substr(1);
  return line;
}

}  // namespace

/// `{"op":"watch","id":N}`: stream the named in-flight solve's progress
/// frames to this connection as JSONL (framed per the connection's wire
/// mode), then a final `{"done":true}` line when the solve retires. The
/// stream runs on its own tracked thread so it never occupies a reactor
/// worker for the lifetime of someone else's solve; the publishing solver
/// is never blocked either — frames flow through conn->try_send, which
/// drops on backpressure and reports a closed connection.
void Server::Impl::handle_watch(const rnet::ConnPtr& conn, std::int64_t id,
                                rnet::WireMode mode) {
  obs::ProgressSinkPtr sink;
  {
    const std::lock_guard<std::mutex> lock(inflight_mutex);
    const auto it = inflight_watch.find(id);
    if (it != inflight_watch.end()) sink = it->second.sink;
  }
  if (!sink) {
    conn->send(framed_json(
        mode, error_json("watch: no in-flight request with id " +
                             std::to_string(id),
                         "", id)));
    return;
  }
  reap_watch_threads(false);
  auto done = std::make_shared<std::atomic<bool>>(false);
  WatchThread watcher;
  watcher.done = done;
  watcher.thread = std::thread([this, conn, sink, id, mode, done]() {
    watch_stream(conn, sink, id, mode);
    done->store(true, std::memory_order_release);
  });
  const std::lock_guard<std::mutex> lock(watch_mutex);
  watch_threads.push_back(std::move(watcher));
}

void Server::Impl::watch_stream(const rnet::ConnPtr& conn,
                                const obs::ProgressSinkPtr& sink,
                                std::int64_t id, rnet::WireMode mode) {
  // Replay the retained history first, so a late subscriber still sees the
  // whole trajectory; the live subscription then filters to newer frames.
  bool dead = false;
  std::uint64_t last_seq = 0;
  for (const obs::ProgressFrame& frame : sink->frames()) {
    last_seq = frame.seq;
    if (!conn->try_send(framed_json(mode, watch_frame_line(id, frame)))) {
      dead = true;
      break;
    }
  }
  std::uint64_t token = 0;
  if (!dead) {
    token = sink->subscribe(
        [conn, mode, last_seq, id](const obs::ProgressFrame& frame) {
          if (frame.seq <= last_seq) return true;  // replayed already
          // try_send drops frames a slow subscriber can't absorb (watch is
          // diagnostics, not data plane) and is false only on a closed
          // connection — which unsubscribes this listener.
          return conn->try_send(framed_json(mode, watch_frame_line(id, frame)));
        });
  }
  while (!dead && !stopping.load(std::memory_order_relaxed) &&
         !conn->closed()) {
    if (sink->wait_finished(0.05)) break;
  }
  if (token != 0) sink->unsubscribe(token);
  if (!dead && !conn->closed()) {
    std::string done_line = "{";
    if (id >= 0) done_line += "\"id\":" + std::to_string(id) + ",";
    done_line += "\"watch\":true,\"done\":true,\"frames\":" +
                 std::to_string(sink->published()) + "}";
    conn->send(framed_json(mode, done_line));
  }
}

/// Join watch threads that have finished (every spawn), or all of them
/// (stop() — they exit promptly once `stopping` is set and the drained
/// solves finish their sinks).
void Server::Impl::reap_watch_threads(bool join_all) {
  std::vector<std::thread> joinable;
  {
    const std::lock_guard<std::mutex> lock(watch_mutex);
    for (std::size_t i = 0; i < watch_threads.size();) {
      if (join_all ||
          watch_threads[i].done->load(std::memory_order_acquire)) {
        joinable.push_back(std::move(watch_threads[i].thread));
        watch_threads.erase(watch_threads.begin() +
                            static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
  for (std::thread& thread : joinable)
    if (thread.joinable()) thread.join();
}

/// One slow-request JSON line: wall-clock, trace id (when traced), the
/// canonical key prefix, strategy, and per-phase timings — enough to pull
/// the full span tree via `{"op":"trace"}` or find the pattern in the
/// cache. Appended to --slow-log or stderr.
void Server::Impl::log_slow(const engine::SolveReport& report,
                            double elapsed_ms, const std::string& trace_id) {
  std::ostringstream line;
  line << "{\"slow\":true,\"tier\":\"server\",\"ms\":"
       << io::json::number(elapsed_ms) << ",\"strategy\":\""
       << io::json::escape(report.strategy) << "\"";
  if (!report.label.empty())
    line << ",\"label\":\"" << io::json::escape(report.label) << "\"";
  if (!trace_id.empty())
    line << ",\"trace\":\"" << io::json::escape(trace_id) << "\"";
  if (const std::string* key = report.find_telemetry("canon.key"))
    line << ",\"canon_key\":\"" << io::json::escape(key->substr(0, 16))
         << "\"";
  line << ",\"timings\":{";
  for (std::size_t i = 0; i < report.timings.size(); ++i) {
    if (i != 0) line << ",";
    line << "\"" << io::json::escape(report.timings[i].phase)
         << "\":" << io::json::number(report.timings[i].seconds);
  }
  line << "}";
  // The flight recorder's tail: what the solvers were doing in the run-up
  // to this slow reply (restarts, waves, incumbents, GCs).
  line << ",\"events\":" << obs::events_json(obs::snapshot_events(32));
  line << "}";
  const std::string text = line.str();
  if (slow_file.is_open()) {
    slow_file.write_line(text);
    return;
  }
  const std::lock_guard<std::mutex> lock(slow_mutex);
  std::fprintf(stderr, "%s\n", text.c_str());
  std::fflush(stderr);
}

/// `{"op":"put"}`: a replica cache write from the router. The payload is
/// an input, not trusted state — the pattern must already be canonical
/// (so the stored key matches what this server's own lookups compute) and
/// the certificate must validate before anything reaches the cache; a bad
/// put becomes an error reply, never a wrong cached answer.
std::string Server::Impl::handle_put(const io::WireRequest& wire) {
  if (!engine.cache())
    return error_json("put: this server runs without a cache", "", wire.id);
  const canon::Canonical canonical = canon::canonicalize(wire.request.matrix);
  if (!(canonical.pattern == wire.request.matrix))
    return error_json("put: pattern is not canonical", "", wire.id);
  if (wire.put_report.partition.empty() ||
      !validate_partition(canonical.pattern, wire.put_report.partition))
    return error_json("put: invalid certificate", "", wire.id);
  const canon::CacheKey key = canonical.key.mixed_with(wire.request.strategy);
  engine.cache()->insert(key, wire.request.strategy, canonical.pattern,
                         wire.put_report);
  stat_puts.fetch_add(1, std::memory_order_relaxed);
  std::ostringstream out;
  out << "{";
  if (wire.id >= 0) out << "\"id\":" << wire.id << ",";
  out << "\"ok\":true,\"put\":true}";
  return out.str();
}

/// The endpoint this server announces: --advertise when given, else the
/// bind host plus the actually-bound port (resolves --port=0).
std::string Server::Impl::advertised_endpoint() const {
  if (!options.advertise.empty()) return options.advertise;
  const std::uint16_t bound = reactor ? reactor->port() : options.port;
  return options.host + ":" + std::to_string(bound);
}

namespace {

/// Block for one reply line on `fd` into `buffer`. False on EOF/error.
bool read_reply_line(int fd, net::LineBuffer& buffer, std::string& line) {
  char chunk[4096];
  while (true) {
    if (buffer.pop(line)) return true;
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n > 0) {
      buffer.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
}

}  // namespace

/// Announce-path connect: a non-blocking dial polled in slices (so stop()
/// lands within ~50 ms even against an unroutable router, instead of the
/// kernel SYN timeout), then a bounded recv window (so a router that
/// accepts but never answers cannot wedge the announce thread — stop()
/// joins it). Returns -1 on any failure; the caller retries.
int Server::Impl::dial_announce(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return -1;
    }
    bool connected = false;
    for (int slice = 0;
         slice < 40 && !stopping.load(std::memory_order_relaxed); ++slice) {
      pollfd waiter{fd, POLLOUT, 0};
      const int ready = ::poll(&waiter, 1, 50);
      if (ready < 0 && errno == EINTR) continue;
      if (ready != 0) {
        int error = 0;
        socklen_t length = sizeof error;
        connected = ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error,
                                 &length) == 0 &&
                    error == 0;
        break;
      }
    }
    if (!connected) {
      ::close(fd);
      return -1;
    }
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  timeval window{};
  window.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &window, sizeof window);
  return fd;
}

/// One announce session: dial the router, join, then heartbeat until the
/// session breaks (router gone, eviction notice, or stop()). Returns true
/// when the session ended because of stop() — the loop must not retry.
bool Server::Impl::announce_round(const std::string& host, std::uint16_t port,
                                  const std::string& self, std::size_t slot) {
  const int fd = dial_announce(host, port);
  if (fd < 0) return stopping.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(announce_mutex);
    announce_fds[slot] = fd;
  }
  net::LineBuffer buffer;
  std::string reply;
  const std::string endpoint_json = "\"endpoint\":\"" +
                                    io::json::escape(self) + "\"}";
  bool stopped = false;
  bool joined = false;
  if (write_line(fd, "{\"op\":\"join\"," + endpoint_json) &&
      read_reply_line(fd, buffer, reply))
    joined = reply.find("\"joined\":true") != std::string::npos;
  // A router that answered but refused (not --dynamic, bad endpoint) must
  // not be indistinguishable from an unreachable one: the reject counter
  // shows up in this server's own stats verb.
  if (!reply.empty() && !joined)
    stat_join_rejects.fetch_add(1, std::memory_order_relaxed);
  if (joined) {
    stat_joins_sent.fetch_add(1, std::memory_order_relaxed);
    // Heartbeat until the router stops answering or asks for a re-join.
    while (!(stopped = stopping.load(std::memory_order_relaxed))) {
      // Nap one heartbeat interval in slices so stop() lands promptly.
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration<double, std::milli>(options.heartbeat_ms);
      while (std::chrono::steady_clock::now() < deadline &&
             !stopping.load(std::memory_order_relaxed)) {
        timespec nap{0, 20 * 1000 * 1000};
        ::nanosleep(&nap, nullptr);
      }
      if ((stopped = stopping.load(std::memory_order_relaxed))) break;
      if (!write_line(fd, "{\"op\":\"heartbeat\"," + endpoint_json)) break;
      if (!read_reply_line(fd, buffer, reply)) break;
      if (reply.find("\"rejoin\":true") != std::string::npos) break;
    }
  }
  // A graceful stop says goodbye on the session it held; eviction after a
  // crash is the fallback, not the normal path. The session fd is only
  // read-shutdown by stop() (to wake a blocking reply read), so the leave
  // write still goes through — re-check `stopping` because the wake-up
  // itself surfaces as a failed read, not as `stopped`.
  if (stopped || stopping.load(std::memory_order_relaxed))
    write_line(fd, "{\"op\":\"leave\"," + endpoint_json);
  {
    // Deregister before closing: once the slot is -1 under the lock,
    // stop() can no longer shut this (possibly recycled) descriptor down.
    std::lock_guard<std::mutex> lock(announce_mutex);
    announce_fds[slot] = -1;
  }
  ::close(fd);
  return stopped || stopping.load(std::memory_order_relaxed);
}

/// One announce client: join + heartbeat sessions against one router,
/// retried with a pause while that router is unreachable. A fleet runs
/// one of these per --announce entry.
void Server::Impl::announce_loop(std::string router, std::size_t slot) {
  std::string host;
  std::uint16_t port = 0;
  if (!net::parse_endpoint(router, host, port)) return;
  const std::string self = advertised_endpoint();
  while (!announce_round(host, port, self, slot)) {
    // Router unreachable or session broken: pause one heartbeat before
    // re-dialing (also in slices, for prompt stop()).
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration<double, std::milli>(
            std::max(50.0, options.heartbeat_ms));
    while (std::chrono::steady_clock::now() < deadline &&
           !stopping.load(std::memory_order_relaxed)) {
      timespec nap{0, 20 * 1000 * 1000};
      ::nanosleep(&nap, nullptr);
    }
    if (stopping.load(std::memory_order_relaxed)) break;
  }
}

namespace {

/// One message's lifecycle through a batch.
struct PendingLine {
  bool skip = false;      ///< Blank line / handled elsewhere: no reply here.
  std::string error;      ///< Non-empty: reply with an error.
  std::string label;      ///< For error replies.
  std::int64_t id = -1;   ///< Correlation id echoed into the reply.
  std::string immediate;  ///< Pre-rendered JSON reply (admin verbs).
  bool admitted = false;
  bool split = false;
  bool include_partition = false;
  /// The request carried a finite budget (deadline/conflicts/nodes): a
  /// non-Optimal reply is a budget cut and gets the flight-recorder tail.
  bool budgeted = false;
  /// Reply framing: the mode + frame type of the triggering message. A
  /// type-1 binary solve answers with a type-2 report (or type-3 error);
  /// everything else answers JSON, framed per `mode`.
  rnet::WireMode mode = rnet::WireMode::Line;
  std::uint8_t frame_type = 0;
  std::size_t rows = 0;  ///< Pattern shape for the binary report encoding.
  std::size_t cols = 0;
  /// Progress sink registered under `watch_id` for `{"op":"watch"}`;
  /// finished + unregistered when the reply is built.
  obs::ProgressSinkPtr sink;
  std::int64_t watch_id = -1;
  std::size_t batch_index = 0;  ///< Into the solve_batch vector.
  std::optional<io::WireRequest> wire;            ///< Split path keeps it.
  std::optional<engine::SolveReport> report;      ///< Split path result.
  /// Tracing (set when the request carried a "trace" member): the span
  /// recorder shared with the engine, this request's "server.request" root
  /// span id, and the sender's span the root parents under.
  obs::TracePtr trace;
  std::uint64_t root_span = 0;
  std::uint64_t remote_parent = 0;
};

}  // namespace

/// Parse, admit, solve, and answer one micro-batch, preserving message
/// order. Runs on a reactor worker; replies cork into the connection's
/// write queue (one writev per batch on the happy path).
void Server::Impl::process_batch(const rnet::ConnPtr& conn,
                                 std::vector<rnet::Message> messages) {
  Impl& impl = *this;
  const std::shared_ptr<ConnState> state = conn_state(conn);
  const std::uint64_t batch_start_us = obs::steady_micros();
  std::vector<PendingLine> pending(messages.size());
  std::vector<engine::SolveRequest> batch;
  std::size_t admitted = 0;

  for (std::size_t i = 0; i < messages.size(); ++i) {
    PendingLine& p = pending[i];
    const rnet::Message& m = messages[i];
    p.mode = m.mode;
    p.frame_type = m.frame_type;
    if (m.upgrade) {
      // The negotiation ack: the extractor already flipped the input
      // framing, so this is the connection's last line-framed reply.
      const std::int64_t id = io::salvage_request_id(m.payload);
      p.id = id;
      p.immediate =
          id >= 0 ? "{\"id\":" + std::to_string(id) + ",\"upgraded\":true}"
                  : "{\"upgraded\":true}";
      continue;
    }
    io::WireRequest wire;
    if (m.mode == rnet::WireMode::Binary &&
        m.frame_type == rnet::kFrameSolveRequest) {
      try {
        wire = io::parse_binary_request(m.payload);
      } catch (const std::exception& e) {
        p.error = e.what();
        p.id = io::binary_salvage_id(m.payload);
        continue;
      }
    } else if (m.mode == rnet::WireMode::Binary &&
               m.frame_type != rnet::kFrameJson) {
      p.error = "unexpected frame type " + std::to_string(m.frame_type) +
                " (clients send solve or json frames)";
      continue;
    } else {
      // A request line, or the identical JSON text in a type-4 frame.
      if (m.payload.find_first_not_of(" \t") == std::string::npos) {
        p.skip = true;
        continue;
      }
      try {
        wire = io::parse_wire_request(m.payload);
      } catch (const std::exception& e) {
        p.error = e.what();
        // A client (or the router) correlating by id needs it echoed even
        // on a rejected request.
        p.id = io::salvage_request_id(m.payload);
        continue;
      }
    }
    p.id = wire.id;
    if (wire.op == io::WireOp::Stats) {
      // Admin verb: answered from counters, never admitted or solved.
      p.immediate = impl.stats_json(wire.id);
      continue;
    }
    if (wire.op == io::WireOp::Metrics) {
      // Prometheus text exposition, wrapped in one JSON line (the protocol
      // is line-framed); `ebmf client --metrics` unwraps the body. Fleet
      // scope is a router capability — a backend only has itself.
      if (!wire.scope.empty() && wire.scope != "self" &&
          wire.scope != "local") {
        p.error = wire.scope == "fleet"
                      ? "metrics scope 'fleet' needs a router (ebmf route)"
                      : "field 'scope' must be self|local" +
                            std::string(" (got '") + wire.scope + "')";
        continue;
      }
      std::ostringstream reply;
      reply << "{";
      if (wire.id >= 0) reply << "\"id\":" << wire.id << ",";
      reply << "\"metrics\":true,\"content_type\":\"text/plain; "
               "version=0.0.4\",\"body\":\""
            << io::json::escape(
                   obs::prometheus_text(obs::default_registry()))
            << "\"}";
      p.immediate = reply.str();
      continue;
    }
    if (wire.op == io::WireOp::Events) {
      // Flight-recorder snapshot on demand: the merged, tick-ordered tail
      // of every thread's event ring.
      std::ostringstream reply;
      reply << "{";
      if (wire.id >= 0) reply << "\"id\":" << wire.id << ",";
      reply << "\"events\":" << obs::events_json(obs::snapshot_events())
            << "}";
      p.immediate = reply.str();
      continue;
    }
    if (wire.op == io::WireOp::Watch) {
      // Streams on this connection from a dedicated thread until the
      // watched solve retires; the batch moves on immediately.
      impl.handle_watch(conn, wire.id, p.mode);
      p.skip = true;
      continue;
    }
    if (wire.op == io::WireOp::Trace) {
      std::uint64_t hi = 0;
      std::uint64_t lo = 0;
      obs::parse_trace_id(wire.trace_id, &hi, &lo);
      const std::vector<obs::Span> spans = impl.traces.find(hi, lo);
      p.immediate = spans.empty()
                        ? error_json("unknown trace id", "", wire.id)
                        : obs::trace_tree_json(wire.trace_id, spans);
      continue;
    }
    if (wire.op == io::WireOp::Traces) {
      std::ostringstream reply;
      reply << "{";
      if (wire.id >= 0) reply << "\"id\":" << wire.id << ",";
      reply << "\"traces\":[";
      const auto recent = impl.traces.recent(32);
      for (std::size_t t = 0; t < recent.size(); ++t) {
        if (t != 0) reply << ",";
        reply << "{\"id\":\"" << recent[t].id << "\",\"root\":\""
              << io::json::escape(recent[t].root)
              << "\",\"dur_us\":" << recent[t].dur_us
              << ",\"spans\":" << recent[t].spans << "}";
      }
      reply << "]}";
      p.immediate = reply.str();
      continue;
    }
    if (wire.op == io::WireOp::Put) {
      // Replica cache write: validated + inserted inline, but under the
      // same admission gate as solves — canonicalization + certificate
      // validation on untrusted payloads is real work, and a put flood
      // must shed exactly like a solve flood.
      if (!impl.try_admit()) {
        impl.stat_rejected.fetch_add(1, std::memory_order_relaxed);
        impl.obs_rejected->add(1);
        p.error = "overloaded: " + std::to_string(impl.options.max_inflight) +
                  " requests already in flight";
        continue;
      }
      p.admitted = true;
      ++admitted;
      p.immediate = impl.handle_put(wire);
      if (p.immediate.rfind("{\"error\"", 0) == 0 ||
          p.immediate.find(",\"error\"", 0) != std::string::npos)
        impl.stat_errors.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (wire.op == io::WireOp::Join || wire.op == io::WireOp::Leave ||
        wire.op == io::WireOp::Heartbeat) {
      // Membership verbs belong to the router's control plane; a backend
      // answering them would silently swallow a misconfigured announce.
      p.error = "cluster membership verbs go to a router (ebmf route "
                "--dynamic), not a backend server";
      continue;
    }
    p.label = wire.request.label;
    p.include_partition = wire.include_partition;
    p.rows = wire.request.matrix.rows();
    p.cols = wire.request.matrix.cols();
    if (!impl.try_admit()) {
      impl.stat_rejected.fetch_add(1, std::memory_order_relaxed);
      impl.obs_rejected->add(1);
      p.error = "overloaded: " + std::to_string(impl.options.max_inflight) +
                " requests already in flight";
      continue;
    }
    p.admitted = true;
    ++admitted;

    // Per-request deadline: the client's budget capped by the server
    // ceiling; no budget means exactly the ceiling. Every budget shares
    // the connection's cancellation flag.
    const double ceiling = impl.options.budget_ceiling_seconds;
    double seconds = wire.budget_seconds;
    if (ceiling > 0) seconds = seconds > 0 ? std::min(seconds, ceiling) : ceiling;
    if (seconds > 0) wire.request.budget.deadline = Deadline::after(seconds);
    p.budgeted = seconds > 0 || wire.request.budget.max_conflicts >= 0 ||
                 wire.request.budget.max_nodes > 0;
    if (state) wire.request.budget.cancel = state->cancel;

    if (wire.id >= 0) {
      // Id-carrying solves are watchable: arm a progress sink on the
      // budget and register it so `{"op":"watch","id":N}` (and the stats
      // in-flight panel) can find this solve while it runs.
      p.sink = std::make_shared<obs::ProgressSink>();
      p.watch_id = wire.id;
      wire.request.budget.progress = p.sink;
      const std::lock_guard<std::mutex> lock(impl.inflight_mutex);
      impl.inflight_watch[wire.id] =
          Impl::InflightEntry{p.sink, wire.request.strategy,
                              wire.request.label, obs::steady_micros()};
    }

    if (wire.has_trace) {
      // This request's "server.request" root span parents under the
      // sender's span (router dispatch / client root); the recorder's
      // context carries the root id so engine spans parent under it.
      p.remote_parent = wire.trace.parent_span;
      p.root_span = obs::new_span_id();
      obs::TraceContext ctx = wire.trace;
      ctx.parent_span = p.root_span;
      p.trace = std::make_shared<obs::TraceRecorder>(ctx);
      wire.request.trace = p.trace;
    }

    if (wire.split && !wire.request.masked) {
      p.split = true;
      p.wire = std::move(wire);
    } else {
      p.batch_index = batch.size();
      batch.push_back(std::move(wire.request));
    }
  }

  // Queue wait: parse + admission until the engine actually starts. Batches
  // record it here (once per line), not in the engine, so split sub-requests
  // sharing one recorder don't each re-report it.
  if (admitted > 0) {
    const std::uint64_t queue_end_us = obs::steady_micros();
    for (PendingLine& p : pending)
      if (p.trace)
        p.trace->record("server.queue", obs::new_span_id(), p.root_span,
                        p.trace->created_us(), queue_end_us);
  }
  std::vector<engine::SolveReport> reports;
  if (!batch.empty())
    reports = impl.engine.solve_batch(batch, impl.options.threads);
  for (PendingLine& p : pending) {
    if (!p.split) continue;
    try {
      p.report = impl.engine.solve_split(p.wire->request, p.wire->threads);
    } catch (const std::exception& e) {
      p.error = e.what();
    }
  }
  impl.release_admitted(admitted);

  // Retire the watchable solves: finishing the sink releases every watcher
  // (their connections get the final done line); unregister only our own
  // entry — a same-id request on another connection may have replaced it.
  for (PendingLine& p : pending) {
    if (!p.sink) continue;
    p.sink->finish();
    const std::lock_guard<std::mutex> lock(impl.inflight_mutex);
    const auto it = impl.inflight_watch.find(p.watch_id);
    if (it != impl.inflight_watch.end() && it->second.sink == p.sink)
      impl.inflight_watch.erase(it);
  }

  for (PendingLine& p : pending) {
    if (p.skip) continue;
    const bool binary_solve = p.mode == rnet::WireMode::Binary &&
                              p.frame_type == rnet::kFrameSolveRequest;
    std::string reply;          // JSON reply line (non-binary-solve paths)
    std::string payload;        // binary frame payload (binary solve path)
    std::uint8_t out_type = rnet::kFrameSolveReport;
    std::string events_json;    // the splices a binary report carries as
    std::string spans_json;     // raw strings instead of reply-text edits
    const engine::SolveReport* done = nullptr;
    if (!p.immediate.empty()) {
      reply = p.immediate;
    } else if (!p.error.empty()) {
      impl.stat_errors.fetch_add(1, std::memory_order_relaxed);
      impl.obs_errors->add(1);
      if (binary_solve) {
        out_type = rnet::kFrameError;
        payload = io::binary_error_payload(p.id, p.error, p.label);
      } else {
        reply = error_json(p.error, p.label, p.id);
      }
    } else {
      const engine::SolveReport& report =
          p.split ? *p.report : reports[p.batch_index];
      // solve_batch converts per-request failures (unknown strategy) into
      // "error" telemetry; surface those as protocol errors too.
      if (const std::string* error = report.find_telemetry("error")) {
        impl.stat_errors.fetch_add(1, std::memory_order_relaxed);
        impl.obs_errors->add(1);
        if (binary_solve) {
          out_type = rnet::kFrameError;
          payload = io::binary_error_payload(p.id, *error, report.label);
        } else {
          reply = error_json(*error, report.label, p.id);
        }
      } else {
        impl.stat_requests.fetch_add(1, std::memory_order_relaxed);
        impl.obs_requests->add(1);
        done = &report;
        if (p.budgeted && report.status != engine::Status::Optimal) {
          // A budget-cut reply carries the flight recorder's tail — the
          // "why did my budget run out" answer rides the reply itself.
          events_json = obs::events_json(obs::snapshot_events(32));
        }
        if (!binary_solve) {
          reply = io::wire_response_json(report, p.include_partition, p.id);
          if (!events_json.empty() && !reply.empty() && reply.back() == '}') {
            reply.pop_back();
            reply += ",\"events\":" + events_json + "}";
          }
        }
      }
    }

    const std::uint64_t done_us = obs::steady_micros();
    const std::uint64_t elapsed_us = done_us - batch_start_us;
    std::string trace_hex;
    if (p.trace) {
      // Close the root span, attach this process's spans to the solve reply
      // (the router folds them into its own trace), and publish the trace
      // locally *before* the reply is written so an immediate
      // {"op":"trace"} follow-up on another connection finds it.
      const obs::TraceContext& ctx = p.trace->context();
      trace_hex = obs::trace_id_hex(ctx.hi, ctx.lo);
      p.trace->record("server.request", p.root_span, p.remote_parent,
                      p.trace->created_us(), done_us);
      std::vector<obs::Span> spans = p.trace->spans();
      if (done) {
        spans_json = obs::spans_json(spans);
        if (!binary_solve && !reply.empty() && reply.back() == '}') {
          reply.pop_back();
          reply += ",\"trace\":{\"id\":\"" + trace_hex +
                   "\",\"spans\":" + spans_json + "}}";
        }
      }
      impl.traces.add(ctx.hi, ctx.lo, std::move(spans));
    }
    if (done && binary_solve)
      payload = io::binary_report_payload(*done, p.include_partition, p.id,
                                          p.rows, p.cols, events_json,
                                          spans_json);
    if (done || !p.error.empty()) {
      impl.obs_request->record(elapsed_us);
      if (done)
        obs::default_registry()
            .histogram("server.solve." + done->strategy + ".micros")
            ->record(elapsed_us);
    }
    if (done && impl.options.slow_ms > 0) {
      const double elapsed_ms = static_cast<double>(elapsed_us) / 1000.0;
      if (elapsed_ms >= impl.options.slow_ms)
        impl.log_slow(*done, elapsed_ms, trace_hex);
    }

    // Enqueue through the reactor: the loop corks this whole batch's
    // replies into one writev. A false return means the connection died;
    // remaining replies are dropped with it (its budget was cancelled by
    // on_close already).
    conn->send(binary_solve ? rnet::encode_frame(out_type, payload)
                            : framed_json(p.mode, reply));
    if (p.trace) {
      // The reply-write span can't ride in the reply it measures; it lands
      // in the local store only, visible to later {"op":"trace"} queries.
      obs::Span write_span;
      write_span.name = "server.reply_write";
      write_span.span_id = obs::new_span_id();
      write_span.parent_id = p.root_span;
      write_span.start_us = done_us;
      write_span.dur_us = obs::steady_micros() - done_us;
      const obs::TraceContext& ctx = p.trace->context();
      impl.traces.add(ctx.hi, ctx.lo, {write_span});
    }
  }
}

Server::Server(ServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Server::~Server() { stop(); }

void Server::start() {
  Impl& impl = *impl_;
  rnet::ReactorOptions reactor_options;
  reactor_options.host = impl.options.host;
  reactor_options.port = impl.options.port;
  reactor_options.event_loops = impl.options.io_threads;
  reactor_options.workers = impl.options.io_workers;
  reactor_options.max_batch = impl.options.max_batch;
  reactor_options.max_message_bytes = impl.options.max_line_bytes;
  reactor_options.idle_timeout_seconds = impl.options.idle_timeout_seconds;

  rnet::ReactorCallbacks callbacks;
  callbacks.on_open = [&impl](const rnet::ConnPtr& conn) {
    conn->set_user(std::make_shared<ConnState>());
    impl.stat_connections.fetch_add(1, std::memory_order_relaxed);
  };
  callbacks.on_batch = [&impl](const rnet::ConnPtr& conn,
                               std::vector<rnet::Message> messages) {
    impl.process_batch(conn, std::move(messages));
  };
  callbacks.protocol_error_reply = [](rnet::WireMode mode,
                                      const std::string& message) {
    if (mode == rnet::WireMode::Line)
      return error_json(message, "") + "\n";
    return rnet::encode_frame(rnet::kFrameError,
                              io::binary_error_payload(-1, message, ""));
  };
  callbacks.on_close = [&impl](const rnet::ConnPtr& conn, bool aborted) {
    // A hard death (RST, write overflow) cancels the connection's budgets —
    // the anytime contract turns that into a fast valid return, freeing
    // the admission slot. An orderly FIN keeps them: one-shot clients
    // half-close and then read their answers.
    if (!aborted) return;
    if (const std::shared_ptr<ConnState> state = conn_state(conn))
      state->cancel->store(true, std::memory_order_relaxed);
  };

  impl.reactor = std::make_unique<rnet::ReactorServer>(
      std::move(reactor_options), std::move(callbacks));
  impl.reactor->start();
  impl.stopping = false;
  impl.running = true;
  // The announce clients start after the listener so the advertised
  // endpoint carries the actually-bound port (resolves --port=0).
  // --announce takes a comma-separated router list; one session per
  // router keeps the whole fleet's liveness views fresh.
  if (!impl.options.announce.empty()) {
    std::vector<std::string> routers;
    std::size_t start = 0;
    while (start <= impl.options.announce.size()) {
      std::size_t comma = impl.options.announce.find(',', start);
      if (comma == std::string::npos) comma = impl.options.announce.size();
      std::string entry = impl.options.announce.substr(start, comma - start);
      if (!entry.empty()) routers.push_back(std::move(entry));
      start = comma + 1;
    }
    impl.announce_fds.assign(routers.size(), -1);
    for (std::size_t slot = 0; slot < routers.size(); ++slot)
      impl.announce_threads.emplace_back(
          [&impl, router = routers[slot], slot]() {
            impl.announce_loop(router, slot);
          });
  }
}

void Server::stop() {
  Impl& impl = *impl_;
  if (impl.stopping.exchange(true)) return;
  if (!impl.running.load()) return;

  // 0. Say goodbye to the routers first: each announce thread sends its
  // best-effort leave on the way out (a blocking heartbeat read is woken
  // by shutting its socket down), so the fleet stops routing here before
  // the drain closes any connection.
  {
    std::lock_guard<std::mutex> lock(impl.announce_mutex);
    for (const int fd : impl.announce_fds)
      if (fd >= 0) ::shutdown(fd, SHUT_RD);
  }
  for (std::thread& t : impl.announce_threads)
    if (t.joinable()) t.join();
  impl.announce_threads.clear();

  // 1. Drain the reactor: stop accepting and reading (messages already
  // buffered keep flowing to the handlers), then cancel every in-flight
  // budget — the anytime contract turns that into fast valid replies —
  // and let shutdown() answer what was accepted, flush, and join.
  if (impl.reactor) {
    impl.reactor->begin_drain();
    for (const rnet::ConnPtr& conn : impl.reactor->connections())
      if (const std::shared_ptr<ConnState> state = conn_state(conn))
        state->cancel->store(true, std::memory_order_relaxed);
    impl.reactor->shutdown();
  }

  // 2. Watch streams exit on `stopping` + their sinks finishing.
  impl.reap_watch_threads(true);

  // Flush-on-drain: the tail of the slow log and trace file must survive
  // the SIGTERM that triggered this stop.
  impl.slow_file.flush();
  impl.traces.flush();
  impl.running = false;
}

bool Server::running() const noexcept { return impl_->running.load(); }

std::uint16_t Server::port() const noexcept {
  return impl_->reactor ? impl_->reactor->port() : 0;
}

ServerStats Server::stats() const {
  ServerStats out;
  out.connections = impl_->stat_connections.load(std::memory_order_relaxed);
  out.requests = impl_->stat_requests.load(std::memory_order_relaxed);
  out.errors = impl_->stat_errors.load(std::memory_order_relaxed);
  out.rejected = impl_->stat_rejected.load(std::memory_order_relaxed);
  out.puts = impl_->stat_puts.load(std::memory_order_relaxed);
  out.joins_sent = impl_->stat_joins_sent.load(std::memory_order_relaxed);
  out.join_rejects =
      impl_->stat_join_rejects.load(std::memory_order_relaxed);
  return out;
}

engine::Engine& Server::engine() noexcept { return impl_->engine; }

const ServerOptions& Server::options() const noexcept {
  return impl_->options;
}

// ---- Client ---------------------------------------------------------------

namespace {

/// Answered-id cache bound: big enough for any realistic pipeline window,
/// small enough that a long-lived client never grows without bound.
constexpr std::size_t kAnsweredCap = 1024;

/// Redirect-chase bound: past this many hops in one round_trip the fleet
/// is mid-election; fall back to ordinary rotation instead of looping.
constexpr std::size_t kRedirectHops = 4;

}  // namespace

Client::Client(const std::vector<std::string>& endpoints)
    : endpoints_(endpoints),
      jitter_state_(0x9e3779b97f4a7c15ull ^
                    reinterpret_cast<std::uintptr_t>(this)) {
  if (endpoints_.empty())
    throw std::runtime_error("client needs at least one address");
  for (cursor_ = 0; cursor_ < endpoints_.size(); ++cursor_)
    if (connect_to(endpoints_[cursor_])) return;
  // No address answered the first pass — ride out a transient (fleet
  // restarting, injected connect fault) with the same jittered-backoff
  // rotation a mid-flight reconnect uses before giving up.
  cursor_ = 0;
  if (reconnect()) return;
  std::string list;
  for (const std::string& endpoint : endpoints_)
    list += (list.empty() ? "" : ", ") + endpoint;
  throw std::runtime_error("all addresses refused (" + list + ")");
}

Client::Client(const std::string& host, std::uint16_t port)
    : Client(std::vector<std::string>{host + ":" + std::to_string(port)}) {}

Client::~Client() { close(); }

bool Client::connect_to(const std::string& endpoint) {
  std::string host;
  std::uint16_t port = 0;
  if (!net::parse_endpoint(endpoint, host, port)) return false;
  close();
  buffer_.clear();
  try {
    fd_ = net::tcp_connect(host, port);
  } catch (const std::exception&) {
    return false;
  }
  connected_ = host + ":" + std::to_string(port);
  return true;
}

bool Client::reconnect(std::size_t rounds) {
  for (std::size_t round = 0; round < rounds; ++round) {
    if (round > 0) {
      // Full rotation failed: pause with capped exponential backoff,
      // jittered over [0.5, 1.5)x so a client herd restarting against the
      // same fleet doesn't re-dial in lockstep.
      jitter_state_ ^= jitter_state_ << 13;
      jitter_state_ ^= jitter_state_ >> 7;
      jitter_state_ ^= jitter_state_ << 17;
      const double fraction =
          static_cast<double>(jitter_state_ >> 11) * 0x1.0p-53;
      const double pause_ms = backoff_ms_ * (0.5 + fraction);
      backoff_ms_ = std::min(backoff_ms_ * 2.0, 1000.0);
      timespec nap{static_cast<time_t>(pause_ms / 1000.0),
                   static_cast<long>(std::fmod(pause_ms, 1000.0) * 1e6)};
      ::nanosleep(&nap, nullptr);
    }
    for (std::size_t step = 0; step < endpoints_.size(); ++step) {
      cursor_ = (cursor_ + 1) % endpoints_.size();
      if (connect_to(endpoints_[cursor_])) {
        backoff_ms_ = 50.0;
        return true;
      }
    }
  }
  return false;
}

bool Client::record_answered(std::int64_t id, std::size_t line_hash,
                             const std::string& reply) {
  if (id < 0) return true;  // un-id'd requests cannot be deduped
  for (const auto& entry : answered_)
    if (entry.id == id && entry.line_hash == line_hash) return false;
  if (answered_.size() >= kAnsweredCap)
    answered_.erase(answered_.begin());
  answered_.push_back(Answered{id, line_hash, reply});
  return true;
}

void Client::send_line(const std::string& line) {
  if (fd_ < 0) throw std::runtime_error("client is closed");
  if (write_line(fd_, line)) return;
  // A reset peer (restarting backend, failed-over router) rotates to the
  // next address of the list; any other failure propagates immediately.
  if ((errno == ECONNRESET || errno == EPIPE) && reconnect() &&
      write_line(fd_, line))
    return;
  net::sys_fail("send");
}

std::string Client::read_line() {
  if (fd_ < 0) throw std::runtime_error("client is closed");
  char chunk[16384];
  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (!buffer_.empty()) {
      std::string line;
      line.swap(buffer_);
      return line;
    }
    throw std::runtime_error("server closed the connection");
  }
}

std::string Client::round_trip(const std::string& line) {
  // Exactly-once for the caller: an id this client already saw answered is
  // served from the cache — the earlier send landed, and re-submitting
  // would make a counting server (or the caller's own tally) see it twice.
  const std::int64_t id = io::salvage_request_id(line);
  const std::size_t line_hash = std::hash<std::string>{}(line);
  if (id >= 0)
    for (const auto& entry : answered_)
      if (entry.id == id && entry.line_hash == line_hash) return entry.reply;

  std::string reply;
  bool have_reply = false;
  try {
    send_line(line);
    reply = read_line();
    have_reply = true;
  } catch (const std::runtime_error&) {
    // The connection died between send and reply (peer restarted, fleet
    // failing over). Solve and stats requests are idempotent, so re-send
    // over the next live address; a second failure propagates.
    if (!reconnect()) throw;
    send_line(line);
    reply = read_line();
    have_reply = true;
  }

  // Chase follower redirects: reconnect to the named leaseholder and
  // re-send there. A stale redirect (old epoch, dead holder) just fails
  // the dial and falls back to rotation.
  for (std::size_t hop = 0; have_reply && hop < kRedirectHops; ++hop) {
    std::string target;
    std::uint64_t epoch = 0;
    std::uint64_t term = 0;
    if (!io::parse_wire_redirect(reply, &target, &epoch, &term)) break;
    if (!connect_to(target) && !reconnect()) break;
    send_line(line);
    reply = read_line();
  }

  // Only *answers* are cached for dedupe. An error or an unresolved
  // redirect means the request was not executed — a retry must reach the
  // fleet again, not be served the failure forever.
  std::string target;
  std::uint64_t epoch = 0;
  std::uint64_t term = 0;
  const bool unresolved =
      io::parse_wire_redirect(reply, &target, &epoch, &term) ||
      reply.rfind("{\"error\"", 0) == 0 ||
      (reply.rfind("{\"id\":", 0) == 0 &&
       reply.find(",\"error\":") != std::string::npos &&
       reply.find(",\"error\":") < 24);
  if (!unresolved) record_answered(id, line_hash, reply);
  return reply;
}

const std::string& Client::endpoint() const noexcept { return connected_; }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// ---- serve_forever --------------------------------------------------------

namespace {

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int sig) { g_signal = sig; }

}  // namespace

int serve_forever(const ServerOptions& options, std::ostream& log) {
  Server server(options);

  // Cache persistence: reload the previous run's snapshot before serving.
  if (!options.cache_file.empty() && server.engine().cache()) {
    std::string warning;
    const std::size_t loaded =
        server.engine().cache()->load_file(options.cache_file, &warning);
    if (!warning.empty()) log << "cache-file: " << warning << std::endl;
    if (loaded > 0)
      log << "cache-file: reloaded " << loaded << " entries from "
          << options.cache_file << std::endl;
  }

  try {
    server.start();
  } catch (const std::exception& e) {
    log << "error: " << e.what() << "\n";
    return 1;
  }

  g_signal = 0;
  struct sigaction action{};
  action.sa_handler = on_signal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);  // all writers already use MSG_NOSIGNAL

  log << "ebmf service listening on " << options.host << ":" << server.port()
      << " (threads=" << options.threads << ", cache-mb=" << options.cache_mb
      << ", max-inflight=" << options.max_inflight << ")" << std::endl;

  while (g_signal == 0) {
    timespec nap{0, 100 * 1000 * 1000};
    ::nanosleep(&nap, nullptr);
  }

  log << "signal " << static_cast<int>(g_signal) << " received, draining"
      << std::endl;
  server.stop();
  const ServerStats stats = server.stats();
  log << "served " << stats.requests << " requests, " << stats.errors
      << " errors, " << stats.rejected << " rejected, across "
      << stats.connections << " connections";
  if (server.engine().cache()) {
    const cache::CacheStats cache_stats = server.engine().cache()->stats();
    log << "; cache " << cache_stats.hits << " hits / " << cache_stats.misses
        << " misses / " << cache_stats.evictions << " evictions";
  }
  log << std::endl;

  // Snapshot the drained cache so the next start answers warm.
  if (!options.cache_file.empty() && server.engine().cache()) {
    std::string error;
    if (server.engine().cache()->save_file(options.cache_file, &error)) {
      log << "cache-file: saved "
          << server.engine().cache()->stats().entries << " entries to "
          << options.cache_file << std::endl;
    } else {
      log << "cache-file: " << error << std::endl;
    }
  }
  return 0;
}

}  // namespace ebmf::service
