#pragma once
/// \file cache.h
/// \brief Thread-safe sharded LRU result cache (`ebmf::cache`).
///
/// Maps a canonical-pattern key (see canon.h) to the SolveReport produced by
/// solving that canonical pattern — partition certificate included. The
/// engine consults it inside run_checked, so one cache accelerates solve,
/// solve_batch, and solve_split alike, across every thread of the service.
///
/// Design:
///  * **Sharding.** The key space is split across independently locked
///    shards (default 16), so concurrent lookups from the request pool
///    rarely contend on one mutex.
///  * **Soundness.** An entry stores the full canonical pattern and the
///    strategy name; lookup() compares both, so a 128-bit hash collision or
///    an incomplete canonical fixpoint can only miss, never serve a wrong
///    partition. The engine additionally validates every lifted partition.
///  * **LRU by bytes.** Capacity is a byte budget (--cache-mb); each shard
///    evicts least-recently-used entries past its share. Entry cost is the
///    measured footprint of the pattern + partition + report strings.
///  * **Upgrade-only replacement.** Re-inserting an existing key keeps the
///    better report (stronger status, then smaller depth), so a later
///    budget-starved solve never downgrades a cached optimal certificate.
///
/// Counters (hits/misses/evictions/insertions) are atomics surfaced into
/// SolveReport telemetry by the engine's cache hook.

#include <cstdint>
#include <memory>
#include <optional>

#include "engine/engine.h"
#include "service/canon.h"

namespace ebmf::cache {

/// Aggregate cache counters (monotonic except entries/bytes).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t insertions = 0;
  std::size_t entries = 0;  ///< Current resident entries.
  std::size_t bytes = 0;    ///< Current estimated resident bytes.
};

/// A cached solve of one canonical pattern. The report's partition is in
/// canonical space; canon::lift maps it back through the requester's own
/// permutation record.
struct CachedResult {
  engine::SolveReport report;
};

/// The sharded LRU. All methods are safe to call concurrently.
class ResultCache {
 public:
  struct Options {
    std::size_t capacity_bytes = 64ull << 20;  ///< Total budget (~--cache-mb).
    std::size_t shards = 16;                   ///< Independent lock domains.
  };

  explicit ResultCache(Options options);
  ~ResultCache();

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Convenience: a shared cache with a megabyte budget (0 MB still caches
  /// a single small entry per shard; pass a null pointer to disable caching
  /// entirely at the engine).
  static std::shared_ptr<ResultCache> with_capacity_mb(double mb);

  /// The report cached under `key`, provided the stored canonical pattern
  /// and strategy match exactly (collision guard). Refreshes LRU recency.
  [[nodiscard]] std::optional<CachedResult> lookup(
      const canon::CacheKey& key, const std::string& strategy,
      const BinaryMatrix& canonical_pattern);

  /// Store `report` (partition in canonical space) under `key`. Keeps the
  /// better of old/new on re-insert; evicts LRU entries past the budget.
  void insert(const canon::CacheKey& key, const std::string& strategy,
              const BinaryMatrix& canonical_pattern,
              const engine::SolveReport& report);

  /// Point-in-time counters (sums across shards). Locks every shard to
  /// report resident entries/bytes — fine for drain summaries and tests,
  /// not for per-request telemetry; use counters() on hot paths.
  [[nodiscard]] CacheStats stats() const;

  /// Lock-free subset of stats(): just the atomic hit/miss/eviction/
  /// insertion counters (entries and bytes stay 0).
  [[nodiscard]] CacheStats counters() const noexcept;

  /// Drop every entry (counters are retained).
  void clear();

  [[nodiscard]] std::size_t capacity_bytes() const noexcept;

  // ---- persistence across restarts -------------------------------------
  //
  // Snapshot format: line 1 is the versioned header
  // `{"ebmf_cache":1}`; every further line is one entry,
  // `{"cache_key":"<32 hex>","strategy":"...","pattern":"rows;...",
  //   "report":{<wire response JSON, partition attached>}}`.
  // The pattern is the *canonical* pattern, so a reloaded entry serves the
  // same permuted repeats as the live one did, certificates intact.

  /// Write every resident entry (LRU order preserved: the snapshot replays
  /// oldest-first so reloaded recency matches). False + `error` on I/O
  /// failure.
  bool save_file(const std::string& path, std::string* error = nullptr) const;

  /// Reload a snapshot written by save_file. Returns the number of entries
  /// inserted. A missing file, a bad header, or a version mismatch ignores
  /// the whole file with a warning in `warning`; a corrupt entry line (bad
  /// JSON, invalid partition, depth mismatch) is skipped and noted there
  /// too — a damaged snapshot can cost hits, never correctness.
  std::size_t load_file(const std::string& path, std::string* warning);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ebmf::cache
