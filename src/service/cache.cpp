// The sharded LRU: per-shard mutex + intrusive recency list + hash index,
// byte-budgeted eviction, and upgrade-only replacement.

#include "service/cache.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <list>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "io/json.h"
#include "io/request_io.h"
#include "obs/events.h"
#include "obs/metrics.h"

namespace ebmf::cache {

namespace {

/// Estimated resident footprint of one entry (pattern + partition words +
/// telemetry strings + container overhead). An estimate is fine: eviction
/// only needs proportionality, not byte-exact accounting.
std::size_t entry_bytes(const BinaryMatrix& pattern,
                        const engine::SolveReport& report) {
  const std::size_t row_words = (pattern.cols() + 63) / 64;
  const std::size_t col_words = (pattern.rows() + 63) / 64;
  std::size_t bytes = 256;  // fixed node/index overhead
  bytes += pattern.rows() * row_words * 8;
  bytes += report.partition.size() * (row_words + col_words) * 8 +
           report.partition.size() * sizeof(Rectangle);
  for (const auto& [key, value] : report.telemetry)
    bytes += key.size() + value.size() + 64;
  for (const auto& timing : report.timings) bytes += timing.phase.size() + 32;
  return bytes;
}

/// True when `fresh` is a strictly better answer than `stored` for the same
/// canonical pattern: stronger certificate first, then smaller depth.
bool improves(const engine::SolveReport& fresh,
              const engine::SolveReport& stored) {
  auto strength = [](engine::Status s) {
    switch (s) {
      case engine::Status::Optimal:
        return 2;
      case engine::Status::Bounded:
        return 1;
      case engine::Status::Heuristic:
        return 0;
    }
    return 0;
  };
  if (strength(fresh.status) != strength(stored.status))
    return strength(fresh.status) > strength(stored.status);
  if (fresh.depth() != stored.depth()) return fresh.depth() < stored.depth();
  return fresh.lower_bound > stored.lower_bound;  // tighter bracket
}

struct Entry {
  canon::CacheKey key;
  std::string strategy;
  BinaryMatrix pattern;
  engine::SolveReport report;
  std::size_t bytes = 0;
};

struct Shard {
  std::mutex mutex;
  std::list<Entry> lru;  ///< Front = most recently used.
  std::unordered_map<canon::CacheKey, std::list<Entry>::iterator,
                     canon::CacheKeyHash>
      index;
  std::size_t bytes = 0;
};

}  // namespace

struct ResultCache::Impl {
  Options options;
  std::vector<Shard> shards;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> evictions{0};
  std::atomic<std::uint64_t> insertions{0};

  // Process-wide registry mirrors (obs/metrics.h), resolved once so the
  // hot paths pay one relaxed atomic add, no name lookup. Counters sum
  // across every ResultCache in the process (backend cache + router L1).
  obs::Counter* obs_hits = obs::default_registry().counter("cache.hits");
  obs::Counter* obs_misses = obs::default_registry().counter("cache.misses");
  obs::Counter* obs_evictions =
      obs::default_registry().counter("cache.evictions");
  obs::Counter* obs_insertions =
      obs::default_registry().counter("cache.insertions");
  obs::Histogram* obs_lookup =
      obs::default_registry().histogram("cache.lookup.micros");

  explicit Impl(Options opt) : options(opt), shards(opt.shards) {}

  Shard& shard_for(const canon::CacheKey& key) {
    return shards[static_cast<std::size_t>(key.lo) % shards.size()];
  }

  std::size_t shard_budget() const {
    return options.capacity_bytes / shards.size();
  }

  /// Drop LRU entries until the shard fits its budget (caller holds lock).
  void evict_over_budget(Shard& shard) {
    const std::size_t budget = shard_budget();
    std::size_t freed = 0;
    while (shard.bytes > budget && shard.lru.size() > 1) {
      const Entry& victim = shard.lru.back();
      shard.bytes -= victim.bytes;
      freed += victim.bytes;
      shard.index.erase(victim.key);
      shard.lru.pop_back();
      evictions.fetch_add(1, std::memory_order_relaxed);
      obs_evictions->add();
    }
    if (freed != 0)
      obs::emit_event(obs::EventCode::CacheEvict, freed, shard.lru.size());
  }
};

ResultCache::ResultCache(Options options)
    : impl_(std::make_unique<Impl>(Options{
          options.capacity_bytes,
          options.shards == 0 ? std::size_t{1} : options.shards})) {}

ResultCache::~ResultCache() = default;

std::shared_ptr<ResultCache> ResultCache::with_capacity_mb(double mb) {
  Options options;
  if (mb < 0) mb = 0;
  options.capacity_bytes = static_cast<std::size_t>(mb * 1024.0 * 1024.0);
  return std::make_shared<ResultCache>(options);
}

std::optional<CachedResult> ResultCache::lookup(
    const canon::CacheKey& key, const std::string& strategy,
    const BinaryMatrix& canonical_pattern) {
  Shard& shard = impl_->shard_for(key);
  const std::uint64_t start_us = obs::steady_micros();
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end() && it->second->strategy == strategy &&
        it->second->pattern == canonical_pattern) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      impl_->hits.fetch_add(1, std::memory_order_relaxed);
      CachedResult result{it->second->report};
      impl_->obs_hits->add();
      impl_->obs_lookup->record(obs::steady_micros() - start_us);
      return result;
    }
  }
  impl_->misses.fetch_add(1, std::memory_order_relaxed);
  impl_->obs_misses->add();
  impl_->obs_lookup->record(obs::steady_micros() - start_us);
  return std::nullopt;
}

void ResultCache::insert(const canon::CacheKey& key,
                         const std::string& strategy,
                         const BinaryMatrix& canonical_pattern,
                         const engine::SolveReport& report) {
  Shard& shard = impl_->shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    Entry& entry = *it->second;
    const bool same_problem =
        entry.strategy == strategy && entry.pattern == canonical_pattern;
    if (same_problem && !improves(report, entry.report)) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;  // keep the stronger stored certificate
    }
    shard.bytes -= entry.bytes;
    entry.strategy = strategy;
    entry.pattern = canonical_pattern;
    entry.report = report;
    entry.bytes = entry_bytes(entry.pattern, entry.report);
    shard.bytes += entry.bytes;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    impl_->insertions.fetch_add(1, std::memory_order_relaxed);
    impl_->obs_insertions->add();
    impl_->evict_over_budget(shard);
    return;
  }
  Entry entry{key, strategy, canonical_pattern, report, 0};
  entry.bytes = entry_bytes(entry.pattern, entry.report);
  shard.lru.push_front(std::move(entry));
  shard.index[key] = shard.lru.begin();
  shard.bytes += shard.lru.front().bytes;
  impl_->insertions.fetch_add(1, std::memory_order_relaxed);
  impl_->obs_insertions->add();
  impl_->evict_over_budget(shard);
}

CacheStats ResultCache::counters() const noexcept {
  CacheStats out;
  out.hits = impl_->hits.load(std::memory_order_relaxed);
  out.misses = impl_->misses.load(std::memory_order_relaxed);
  out.evictions = impl_->evictions.load(std::memory_order_relaxed);
  out.insertions = impl_->insertions.load(std::memory_order_relaxed);
  return out;
}

CacheStats ResultCache::stats() const {
  CacheStats out = counters();
  for (auto& shard : impl_->shards) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    out.entries += shard.lru.size();
    out.bytes += shard.bytes;
  }
  return out;
}

void ResultCache::clear() {
  for (auto& shard : impl_->shards) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

std::size_t ResultCache::capacity_bytes() const noexcept {
  return impl_->options.capacity_bytes;
}

// ---- persistence -----------------------------------------------------------

namespace {

constexpr int kSnapshotVersion = 1;

/// Parse the 32-hex-digit key rendering (hi then lo) back into a CacheKey.
bool key_from_hex(const std::string& hex, canon::CacheKey& key) {
  if (hex.size() != 32) return false;
  for (const char c : hex)
    if (!std::isxdigit(static_cast<unsigned char>(c))) return false;
  key.hi = std::strtoull(hex.substr(0, 16).c_str(), nullptr, 16);
  key.lo = std::strtoull(hex.substr(16, 16).c_str(), nullptr, 16);
  return true;
}

/// Rows joined with ';' — the dense pattern text BinaryMatrix::parse reads.
std::string pattern_text(const BinaryMatrix& m) {
  std::string text;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    if (i != 0) text += ';';
    text += m.row(i).to_string();
  }
  return text;
}

}  // namespace

bool ResultCache::save_file(const std::string& path,
                            std::string* error) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot write '" + path + "'";
    return false;
  }
  out << "{\"ebmf_cache\":" << kSnapshotVersion << "}\n";
  for (auto& shard : impl_->shards) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    // Back-to-front: LRU first, so reload (insert order = recency) ends
    // with the hottest entries freshest.
    for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it) {
      out << "{\"cache_key\":\"" << it->key.hex() << "\",\"strategy\":\""
          << io::json::escape(it->strategy) << "\",\"pattern\":\""
          << io::json::escape(pattern_text(it->pattern)) << "\",\"report\":"
          << io::wire_response_json(it->report, /*include_partition=*/true)
          << "}\n";
    }
  }
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "short write to '" + path + "'";
    return false;
  }
  return true;
}

std::size_t ResultCache::load_file(const std::string& path,
                                   std::string* warning) {
  const auto warn = [&](const std::string& message) {
    if (warning != nullptr && warning->empty()) *warning = message;
  };
  std::ifstream in(path);
  if (!in) {
    warn("no snapshot at '" + path + "' (starting cold)");
    return 0;
  }
  std::string line;
  if (!std::getline(in, line)) {
    warn("empty snapshot '" + path + "' ignored");
    return 0;
  }
  try {
    const io::json::Value header = io::json::Value::parse(line);
    const io::json::Value* version = header.find("ebmf_cache");
    if (version == nullptr || !version->is_number() ||
        static_cast<int>(version->as_number()) != kSnapshotVersion) {
      warn("snapshot '" + path + "' has an unsupported version; ignored");
      return 0;
    }
  } catch (const std::exception&) {
    warn("snapshot '" + path + "' is not an ebmf cache file; ignored");
    return 0;
  }

  std::size_t loaded = 0;
  std::size_t skipped = 0;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      const io::json::Value entry = io::json::Value::parse(line);
      const io::json::Value* key_field = entry.find("cache_key");
      const io::json::Value* strategy_field = entry.find("strategy");
      const io::json::Value* pattern_field = entry.find("pattern");
      const io::json::Value* report_field = entry.find("report");
      if (key_field == nullptr || !key_field->is_string() ||
          strategy_field == nullptr || !strategy_field->is_string() ||
          pattern_field == nullptr || !pattern_field->is_string() ||
          report_field == nullptr)
        throw std::runtime_error("missing entry fields");
      canon::CacheKey key;
      if (!key_from_hex(key_field->as_string(), key))
        throw std::runtime_error("bad cache_key");
      const BinaryMatrix pattern =
          BinaryMatrix::parse(pattern_field->as_string());
      engine::SolveReport report = io::parse_wire_response(
          *report_field, pattern.rows(), pattern.cols());
      // Soundness gate: a snapshot is untrusted input. The partition must
      // still be a valid witness of the stored pattern.
      if (!validate_partition(pattern, report.partition))
        throw std::runtime_error("invalid partition certificate");
      if (report.partition.empty() && pattern.ones_count() > 0)
        throw std::runtime_error("missing partition certificate");
      insert(key, strategy_field->as_string(), pattern, report);
      ++loaded;
    } catch (const std::exception&) {
      ++skipped;
    }
  }
  if (skipped > 0)
    warn("snapshot '" + path + "': skipped " + std::to_string(skipped) +
         " corrupt entries");
  return loaded;
}

}  // namespace ebmf::cache
