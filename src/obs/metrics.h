#pragma once
/// \file metrics.h
/// \brief Process-wide metrics core (`ebmf::obs`): counters, gauges, and
/// log-linear-bucket latency histograms behind a lock-striped registry.
///
/// Design goals, in order:
///
///  * **Hot-path cheapness.** Recording is one or two relaxed atomic RMWs —
///    no locks, no allocation, no floating point. Instrumentation sites
///    resolve their series once (`Registry::counter(name)` returns a stable
///    pointer that lives as long as the registry) and then record through
///    the pointer. This is what lets the SAT solver's propagation
///    accounting, the result-cache hit path, and the router's pool dispatch
///    afford to be measured in flight.
///  * **Quantiles without sorting.** `Histogram` buckets values on a
///    log-linear grid (HdrHistogram-style: power-of-two octaves split into
///    2^kSubBits linear sub-buckets), so p50/p90/p99/max are derived by a
///    counting walk over ~2k fixed buckets with bounded relative error
///    (≤ 2^-kSubBits ≈ 3.2%), never by sorting samples.
///  * **Lock-striped naming.** Series live in a name→series map split over
///    independently locked stripes; creating or re-resolving a series takes
///    one stripe mutex, so concurrent lookups from many connections rarely
///    contend. Series are never deleted, which is what makes the returned
///    pointers safe to cache.
///
/// Naming scheme: dotted `tier.component.series`, e.g.
/// `server.request.micros` or `router.pool.dispatch_total`. Dots become
/// underscores (with an `ebmf_` prefix) in the Prometheus exposition.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ebmf::obs {

/// Monotonic counter. Record with relaxed atomics; read with acquire-free
/// loads (monotonicity is all exposition needs).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed value (inflight requests, resident bytes, ...).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log-linear-bucket histogram over non-negative integer samples
/// (microseconds by convention; series names end in `.micros`).
///
/// Bucket layout: values below 2^kSubBits get one bucket each (exact);
/// larger values share an octave [2^e, 2^{e+1}) split into 2^kSubBits
/// linear sub-buckets. A recorded value maps to its bucket with two bit
/// operations; quantiles report the bucket's inclusive upper bound, so the
/// estimate never undershoots the true quantile by more than one bucket
/// width (relative error ≤ 2^-kSubBits).
class Histogram {
 public:
  /// Sub-bucket resolution: 2^5 = 32 linear steps per octave → ≤3.2%
  /// relative quantile error, 1888 buckets ≈ 15 KiB per histogram.
  static constexpr unsigned kSubBits = 5;
  static constexpr unsigned kSubCount = 1u << kSubBits;
  /// Octaves above the linear range: exponents kSubBits..62 inclusive, each
  /// with kSubCount sub-buckets, plus the kSubCount exact low buckets.
  static constexpr std::size_t kBucketCount =
      kSubCount + (63 - kSubBits) * kSubCount;

  void record(std::uint64_t value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Largest recorded sample, exact (not bucket-rounded).
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }

  /// The value at quantile `q` in [0,1]: inclusive upper bound of the
  /// bucket containing the ceil(q*count)-th smallest sample (0 when empty).
  /// The result is clamped to max() so p100 is exact.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;

  /// Fold another histogram into this one: buckets, count, and sum add;
  /// max takes the larger. Both histograms share the fixed log-linear
  /// layout, so bucket-wise addition is exact regardless of which octaves
  /// each populated — the cumulative `le` exposition of the merged result
  /// stays monotone (the federation merge and its property test rely on
  /// this). Concurrent record()s on either side are tolerated (relaxed
  /// reads), with the usual point-in-time fuzziness.
  void merge_from(const Histogram& other) noexcept;

  /// Bucket index for `value` (exposed for tests and exposition).
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t value) noexcept;
  /// Inclusive upper bound of bucket `index`.
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t index) noexcept;

  /// Non-empty buckets as (inclusive upper bound, count) pairs in
  /// increasing value order — the Prometheus exposition walks this.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>>
  nonzero_buckets() const;

 private:
  std::atomic<std::uint64_t> buckets_[kBucketCount] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// One registered series, for snapshot consumers.
struct SeriesSnapshot {
  enum class Kind { Counter, Gauge, Histogram };
  std::string name;
  Kind kind = Kind::Counter;
  std::int64_t value = 0;  ///< Counter/gauge value.
  // Histogram summary (valid when kind == Histogram):
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
};

/// Lock-striped name → series registry. Series are created on first use
/// and never removed; the returned pointers are stable for the registry's
/// lifetime, so call sites resolve once and record through the pointer.
class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Resolve-or-create. A name resolves to exactly one kind; asking for a
  /// different kind under an existing name returns the existing series'
  /// slot as null — callers must not mix kinds per name.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// Point-in-time copy of every series, sorted by name. Histograms carry
  /// derived p50/p90/p99/max plus their non-empty buckets.
  [[nodiscard]] std::vector<SeriesSnapshot> snapshot() const;

 private:
  struct Impl;
  Impl* impl_;
};

/// The process-wide registry every built-in instrumentation site records
/// into. Tests construct private `Registry` instances instead.
Registry& default_registry();

/// JSON object (no surrounding braces are omitted — the full `{...}`) that
/// `{"op":"stats"}` splices in as its `metrics` block: counters/gauges as
/// numbers, histograms as `{count,sum,max,p50,p90,p99}` (micros).
[[nodiscard]] std::string metrics_json(const Registry& registry);

/// Prometheus text exposition (version 0.0.4): dotted names become
/// `ebmf_`-prefixed underscore names; histograms emit cumulative
/// `_bucket{le=...}` lines plus `_sum`/`_count`.
[[nodiscard]] std::string prometheus_text(const Registry& registry);

}  // namespace ebmf::obs
