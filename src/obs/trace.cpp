/// \file trace.cpp
/// \brief Span recording, the bounded trace ring, and wire JSON.

#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <random>
#include <unordered_map>

#include "io/json.h"
#include "support/logrotate.h"

namespace ebmf::obs {

std::uint64_t steady_micros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Per-process random salt so span/trace ids from a router and its
/// backends never collide within one trace.
std::uint64_t process_salt() {
  static const std::uint64_t salt = [] {
    std::random_device rd;
    return splitmix64((static_cast<std::uint64_t>(rd()) << 32) ^ rd() ^
                      steady_micros());
  }();
  return salt;
}

}  // namespace

TraceContext make_trace_context() {
  static std::atomic<std::uint64_t> sequence{0};
  const std::uint64_t n = sequence.fetch_add(1, std::memory_order_relaxed);
  TraceContext ctx;
  ctx.hi = splitmix64(process_salt() ^ n);
  ctx.lo = splitmix64(process_salt() + 2 * n + 1);
  if ((ctx.hi | ctx.lo) == 0) ctx.lo = 1;  // all-zero means "no trace"
  return ctx;
}

std::uint64_t new_span_id() {
  static std::atomic<std::uint64_t> sequence{0};
  const std::uint64_t id = splitmix64(
      process_salt() ^ (sequence.fetch_add(1, std::memory_order_relaxed) << 1));
  return id == 0 ? 1 : id;
}

std::string trace_id_hex(std::uint64_t hi, std::uint64_t lo) {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

std::string span_id_hex(std::uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

namespace {

bool parse_hex_u64(const char* s, std::size_t n, std::uint64_t* out) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const char c = s[i];
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<std::uint64_t>(c - 'A') + 10;
    } else {
      return false;
    }
    v = (v << 4) | digit;
  }
  *out = v;
  return true;
}

}  // namespace

bool parse_trace_id(const std::string& hex, std::uint64_t* hi,
                    std::uint64_t* lo) {
  if (hex.size() != 32) return false;
  return parse_hex_u64(hex.data(), 16, hi) &&
         parse_hex_u64(hex.data() + 16, 16, lo);
}

bool parse_span_id(const std::string& hex, std::uint64_t* id) {
  if (hex.empty() || hex.size() > 16) return false;
  return parse_hex_u64(hex.data(), hex.size(), id);
}

// ---------------------------------------------------------------------------
// TraceRecorder

struct TraceRecorder::Impl {
  mutable std::mutex mutex;
  std::vector<Span> spans;
};

TraceRecorder::TraceRecorder(const TraceContext& ctx)
    : impl_(std::make_shared<Impl>()), ctx_(ctx), created_(steady_micros()) {}

std::uint64_t TraceRecorder::record(const std::string& name,
                                    std::uint64_t span_id,
                                    std::uint64_t parent_id,
                                    std::uint64_t start_us,
                                    std::uint64_t end_us) {
  Span span;
  span.name = name;
  span.span_id = span_id;
  span.parent_id = parent_id;
  span.start_us = start_us;
  span.dur_us = end_us > start_us ? end_us - start_us : 0;
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->spans.push_back(std::move(span));
  return span_id;
}

void TraceRecorder::adopt(std::vector<Span> spans) {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  for (auto& s : spans) impl_->spans.push_back(std::move(s));
}

std::vector<Span> TraceRecorder::spans() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->spans;
}

// ---------------------------------------------------------------------------
// TraceStore

struct TraceStore::Impl {
  mutable std::mutex mutex;
  std::size_t capacity;
  struct Entry {
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;
    std::vector<Span> spans;
  };
  std::vector<Entry> entries;  // oldest first
  RotatingFile file;  ///< Size-rotated --trace-file sink (keeps path.1).
};

TraceStore::TraceStore(std::size_t capacity) : impl_(new Impl) {
  impl_->capacity = capacity == 0 ? 1 : capacity;
}

TraceStore::~TraceStore() { delete impl_; }

bool TraceStore::set_file(const std::string& path, std::string* error) {
  return impl_->file.open(path, error);
}

void TraceStore::flush() { impl_->file.flush(); }

void TraceStore::add(std::uint64_t hi, std::uint64_t lo,
                     std::vector<Span> spans) {
  if ((hi | lo) == 0 || spans.empty()) return;
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  if (impl_->file.is_open()) {
    impl_->file.write_line("{\"trace\":\"" + trace_id_hex(hi, lo) +
                           "\",\"spans\":" + spans_json(spans) + "}");
  }
  for (auto& entry : impl_->entries) {
    if (entry.hi == hi && entry.lo == lo) {
      for (auto& s : spans) entry.spans.push_back(std::move(s));
      return;
    }
  }
  Impl::Entry entry;
  entry.hi = hi;
  entry.lo = lo;
  entry.spans = std::move(spans);
  impl_->entries.push_back(std::move(entry));
  if (impl_->entries.size() > impl_->capacity) {
    impl_->entries.erase(impl_->entries.begin());
  }
}

std::vector<Span> TraceStore::find(std::uint64_t hi, std::uint64_t lo) const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const auto& entry : impl_->entries) {
    if (entry.hi == hi && entry.lo == lo) return entry.spans;
  }
  return {};
}

std::vector<TraceStore::Summary> TraceStore::recent(std::size_t n) const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<Summary> out;
  for (auto it = impl_->entries.rbegin();
       it != impl_->entries.rend() && out.size() < n; ++it) {
    Summary s;
    s.id = trace_id_hex(it->hi, it->lo);
    s.spans = it->spans.size();
    // The root is a span whose parent does not appear in the set; prefer
    // the longest such span (the request-level root).
    for (const auto& span : it->spans) {
      bool parent_present = false;
      for (const auto& other : it->spans) {
        if (other.span_id == span.parent_id) {
          parent_present = true;
          break;
        }
      }
      if (!parent_present && span.dur_us >= s.dur_us) {
        s.dur_us = span.dur_us;
        s.root = span.name;
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::size_t TraceStore::size() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->entries.size();
}

// ---------------------------------------------------------------------------
// Wire JSON

std::string trace_context_json(const TraceContext& ctx) {
  std::string out = "{\"id\":\"" + trace_id_hex(ctx.hi, ctx.lo) + "\"";
  if (ctx.parent_span != 0) {
    out += ",\"span\":\"" + span_id_hex(ctx.parent_span) + "\"";
  }
  out += "}";
  return out;
}

bool parse_trace_context(const io::json::Value& value, TraceContext* out) {
  if (!value.is_object()) return false;
  const io::json::Value* id = value.find("id");
  if (id == nullptr || !id->is_string()) return false;
  TraceContext ctx;
  if (!parse_trace_id(id->as_string(), &ctx.hi, &ctx.lo) || !ctx.valid()) {
    return false;
  }
  if (const io::json::Value* span = value.find("span");
      span != nullptr && span->is_string()) {
    if (!parse_span_id(span->as_string(), &ctx.parent_span)) return false;
  }
  *out = ctx;
  return true;
}

std::string spans_json(const std::vector<Span>& spans) {
  std::string out = "[";
  char buf[64];
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    if (i != 0) out += ",";
    out += "{\"name\":\"" + io::json::escape(s.name) + "\",\"span\":\"" +
           span_id_hex(s.span_id) + "\"";
    if (s.parent_id != 0) {
      out += ",\"parent\":\"" + span_id_hex(s.parent_id) + "\"";
    }
    std::snprintf(buf, sizeof buf, ",\"start_us\":%llu,\"dur_us\":%llu}",
                  static_cast<unsigned long long>(s.start_us),
                  static_cast<unsigned long long>(s.dur_us));
    out += buf;
  }
  out += "]";
  return out;
}

std::vector<Span> spans_from_json(const io::json::Value& array) {
  std::vector<Span> out;
  if (!array.is_array()) return out;
  for (std::size_t i = 0; i < array.size(); ++i) {
    const io::json::Value& item = array.at(i);
    if (!item.is_object()) continue;
    Span span;
    if (const auto* name = item.find("name");
        name != nullptr && name->is_string()) {
      span.name = name->as_string();
    }
    if (const auto* id = item.find("span");
        id == nullptr || !id->is_string() ||
        !parse_span_id(id->as_string(), &span.span_id)) {
      continue;  // a span without an id cannot be parented
    }
    if (const auto* parent = item.find("parent");
        parent != nullptr && parent->is_string()) {
      if (!parse_span_id(parent->as_string(), &span.parent_id)) {
        span.parent_id = 0;
      }
    }
    if (const auto* start = item.find("start_us");
        start != nullptr && start->is_number()) {
      span.start_us = static_cast<std::uint64_t>(start->as_number());
    }
    if (const auto* dur = item.find("dur_us");
        dur != nullptr && dur->is_number()) {
      span.dur_us = static_cast<std::uint64_t>(dur->as_number());
    }
    out.push_back(std::move(span));
  }
  return out;
}

namespace {

void render_span_node(const std::vector<Span>& spans,
                      const std::unordered_map<std::uint64_t,
                                               std::vector<std::size_t>>&
                          children,
                      std::size_t index, std::string* out) {
  const Span& s = spans[index];
  char buf[64];
  *out += "{\"name\":\"" + io::json::escape(s.name) + "\",\"span\":\"" +
          span_id_hex(s.span_id) + "\"";
  std::snprintf(buf, sizeof buf, ",\"start_us\":%llu,\"dur_us\":%llu",
                static_cast<unsigned long long>(s.start_us),
                static_cast<unsigned long long>(s.dur_us));
  *out += buf;
  if (const auto it = children.find(s.span_id);
      it != children.end() && !it->second.empty()) {
    *out += ",\"children\":[";
    for (std::size_t i = 0; i < it->second.size(); ++i) {
      if (i != 0) *out += ",";
      render_span_node(spans, children, it->second[i], out);
    }
    *out += "]";
  }
  *out += "}";
}

}  // namespace

std::string trace_tree_json(const std::string& id_hex,
                            const std::vector<Span>& spans) {
  // Index spans by id; children grouped under their parent, ordered by
  // start time (within-process ordering; cross-process starts are on
  // different clocks, but a parent and its remote children still render in
  // arrival order, which is what a reader wants).
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> children;
  std::vector<std::size_t> order(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return spans[a].start_us < spans[b].start_us;
  });
  std::unordered_map<std::uint64_t, bool> known;
  for (const auto& s : spans) known[s.span_id] = true;
  std::vector<std::size_t> roots;
  for (const std::size_t i : order) {
    const Span& s = spans[i];
    if (s.parent_id != 0 && known.count(s.parent_id) != 0 &&
        s.parent_id != s.span_id) {
      children[s.parent_id].push_back(i);
    } else {
      roots.push_back(i);
    }
  }
  std::string out = "{\"trace\":true,\"id\":\"" + io::json::escape(id_hex) +
                    "\",\"spans\":" + spans_json(spans) + ",\"tree\":[";
  for (std::size_t i = 0; i < roots.size(); ++i) {
    if (i != 0) out += ",";
    render_span_node(spans, children, roots[i], &out);
  }
  out += "]}";
  return out;
}

}  // namespace ebmf::obs
