/// \file progress.cpp
/// \brief ProgressSink storage, fan-out, and frame JSON.

#include "obs/progress.h"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>

#include "io/json.h"

namespace ebmf::obs {

std::string progress_frame_json(const ProgressFrame& frame) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"progress\":true,\"seq\":%llu,\"seconds\":%.3f,"
                "\"incumbent_depth\":%llu,\"lower_bound\":%llu,\"gap\":%llu,"
                "\"conflicts\":%llu,\"wave\":%llu",
                static_cast<unsigned long long>(frame.seq), frame.seconds,
                static_cast<unsigned long long>(frame.incumbent_depth),
                static_cast<unsigned long long>(frame.lower_bound),
                static_cast<unsigned long long>(frame.gap),
                static_cast<unsigned long long>(frame.conflicts),
                static_cast<unsigned long long>(frame.wave));
  std::string out = buf;
  if (!frame.phase.empty()) {
    out += ",\"phase\":\"" + io::json::escape(frame.phase) + "\"";
  }
  out += "}";
  return out;
}

struct ProgressSink::Impl {
  mutable std::mutex mutex;
  mutable std::condition_variable cv;
  std::vector<ProgressFrame> frames;  ///< Newest kKeep, oldest first.
  std::vector<std::pair<std::uint64_t, Listener>> listeners;
  std::uint64_t next_seq = 0;
  std::uint64_t next_token = 1;
  bool done = false;
};

std::shared_ptr<ProgressSink::Impl> ProgressSink::make_impl() {
  return std::make_shared<Impl>();
}

void ProgressSink::publish(ProgressFrame frame) {
  std::vector<std::pair<std::uint64_t, Listener>> fanout;
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    frame.seq = impl_->next_seq++;
    impl_->frames.push_back(frame);
    if (impl_->frames.size() > kKeep) {
      impl_->frames.erase(impl_->frames.begin());
    }
    fanout = impl_->listeners;  // copy: a listener may unsubscribe itself
  }
  std::vector<std::uint64_t> dead;
  for (const auto& [token, listener] : fanout) {
    if (!listener(frame)) dead.push_back(token);
  }
  for (const std::uint64_t token : dead) unsubscribe(token);
  impl_->cv.notify_all();
}

void ProgressSink::finish() {
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->done = true;
  }
  impl_->cv.notify_all();
}

bool ProgressSink::finished() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->done;
}

std::vector<ProgressFrame> ProgressSink::frames() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->frames;
}

ProgressFrame ProgressSink::last() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->frames.empty() ? ProgressFrame{} : impl_->frames.back();
}

std::uint64_t ProgressSink::published() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->next_seq;
}

std::uint64_t ProgressSink::subscribe(Listener listener) {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  const std::uint64_t token = impl_->next_token++;
  impl_->listeners.emplace_back(token, std::move(listener));
  return token;
}

void ProgressSink::unsubscribe(std::uint64_t token) {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  for (auto it = impl_->listeners.begin(); it != impl_->listeners.end();
       ++it) {
    if (it->first == token) {
      impl_->listeners.erase(it);
      return;
    }
  }
}

bool ProgressSink::wait_finished(double seconds) const {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->cv.wait_for(
      lock, std::chrono::duration<double>(seconds < 0 ? 0 : seconds),
      [this] { return impl_->done; });
  return impl_->done;
}

}  // namespace ebmf::obs
