/// \file federate.cpp
/// \brief Prometheus exposition parsing and the fleet merge.

#include "obs/federate.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "obs/metrics.h"

namespace ebmf::obs {

namespace {

enum class Kind { Counter, Gauge, Histogram, Unknown };

/// One instance's parsed series (histograms keep their cumulative pairs —
/// re-emitted verbatim under the instance label, de-cumulated for the
/// fleet merge).
struct Parsed {
  Kind kind = Kind::Unknown;
  long long value = 0;  ///< Counter/gauge sample.
  bool has_value = false;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> cum;  ///< (le, cum).
  unsigned long long sum = 0;
  unsigned long long count = 0;
};

/// Prometheus label-value escaping (backslash, quote, newline).
std::string label_escape(const std::string& raw) {
  std::string out;
  for (const char c : raw) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Parse one exposition body into name → series. The grammar is the one
/// prometheus_text() emits (no labels); unrecognised lines are skipped.
std::map<std::string, Parsed> parse_exposition(const std::string& body) {
  std::map<std::string, Parsed> out;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    const std::string line = body.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# TYPE <name> <kind>"
      if (line.rfind("# TYPE ", 0) != 0) continue;
      const std::size_t name_start = 7;
      const std::size_t name_end = line.find(' ', name_start);
      if (name_end == std::string::npos) continue;
      const std::string name = line.substr(name_start, name_end - name_start);
      const std::string kind = line.substr(name_end + 1);
      Parsed& series = out[name];
      if (kind == "counter") {
        series.kind = Kind::Counter;
      } else if (kind == "gauge") {
        series.kind = Kind::Gauge;
      } else if (kind == "histogram") {
        series.kind = Kind::Histogram;
      }
      continue;
    }
    // Sample line: <name>[{le="..."}] <value>
    const std::size_t brace = line.find('{');
    const std::size_t space = line.find(' ');
    if (space == std::string::npos) continue;
    if (brace != std::string::npos && brace < space) {
      // Histogram bucket: <base>_bucket{le="<upper>"} <cumulative>
      std::string name = line.substr(0, brace);
      if (name.size() < 8 || name.compare(name.size() - 7, 7, "_bucket") != 0)
        continue;
      name.resize(name.size() - 7);
      const std::size_t close = line.find('}', brace);
      if (close == std::string::npos || close + 1 >= line.size()) continue;
      const std::string labels = line.substr(brace + 1, close - brace - 1);
      const char* value_text = line.c_str() + close + 1;
      Parsed& series = out[name];
      series.kind = Kind::Histogram;
      if (labels.rfind("le=\"", 0) != 0) continue;
      const std::string le = labels.substr(4, labels.size() > 5
                                                  ? labels.size() - 5
                                                  : 0);
      if (le == "+Inf") continue;  // the _count line carries the total
      char* end = nullptr;
      const unsigned long long upper = std::strtoull(le.c_str(), &end, 10);
      if (end == le.c_str()) continue;
      const unsigned long long cum = std::strtoull(value_text, nullptr, 10);
      series.cum.emplace_back(upper, cum);
      continue;
    }
    std::string name = line.substr(0, space);
    const char* value_text = line.c_str() + space + 1;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, "_sum") == 0) {
      const std::string base = name.substr(0, name.size() - 4);
      if (const auto it = out.find(base);
          it != out.end() && it->second.kind == Kind::Histogram) {
        it->second.sum = std::strtoull(value_text, nullptr, 10);
        continue;
      }
    }
    if (name.size() > 6 && name.compare(name.size() - 6, 6, "_count") == 0) {
      const std::string base = name.substr(0, name.size() - 6);
      if (const auto it = out.find(base);
          it != out.end() && it->second.kind == Kind::Histogram) {
        it->second.count = std::strtoull(value_text, nullptr, 10);
        continue;
      }
    }
    Parsed& series = out[name];
    if (series.kind == Kind::Unknown) series.kind = Kind::Gauge;
    series.value = std::strtoll(value_text, nullptr, 10);
    series.has_value = true;
  }
  return out;
}

/// True when a gauge merges by max instead of sum (instantaneous
/// ceilings — summing them across instances is meaningless).
bool gauge_takes_max(const std::string& name) {
  return name.find("max") != std::string::npos;
}

/// The fleet-merged view of one series name.
struct Merged {
  Kind kind = Kind::Unknown;
  long long value = 0;
  bool first = true;
  /// Histogram: per-bucket-index counts on the local log-linear grid.
  std::map<std::size_t, std::uint64_t> buckets;
  unsigned long long sum = 0;
  unsigned long long count = 0;
};

}  // namespace

std::string federate_prometheus(
    const std::vector<InstanceExposition>& instances) {
  // Parse every instance, then merge. Instance order is preserved in the
  // per-instance output lines; names are emitted sorted.
  std::vector<std::map<std::string, Parsed>> parsed;
  parsed.reserve(instances.size());
  for (const auto& instance : instances) {
    parsed.push_back(parse_exposition(instance.body));
  }

  std::map<std::string, Merged> merged;
  for (const auto& series_map : parsed) {
    for (const auto& [name, series] : series_map) {
      Merged& m = merged[name];
      if (m.kind == Kind::Unknown) m.kind = series.kind;
      switch (series.kind) {
        case Kind::Counter:
          m.value += series.value;
          break;
        case Kind::Gauge:
          if (gauge_takes_max(name)) {
            m.value = m.first ? series.value : std::max(m.value, series.value);
          } else {
            m.value += series.value;
          }
          break;
        case Kind::Histogram: {
          // De-cumulate, then re-bucket every remote upper bound onto the
          // local grid: emitting merged buckets in grid order is what
          // keeps the cumulative `le` sequence monotone when instances
          // populated different octave ranges.
          std::uint64_t prev = 0;
          std::uint64_t folded = 0;
          for (const auto& [upper, cum] : series.cum) {
            const std::uint64_t n = cum > prev ? cum - prev : 0;
            prev = cum;
            if (n != 0) m.buckets[Histogram::bucket_index(upper)] += n;
            folded += n;
          }
          if (series.count > folded && !series.cum.empty()) {
            // Defensive: samples past the last emitted bucket land in the
            // top of the grid so count and buckets stay consistent.
            m.buckets[Histogram::kBucketCount - 1] += series.count - folded;
          }
          m.sum += series.sum;
          m.count += series.count;
          break;
        }
        case Kind::Unknown:
          break;
      }
      m.first = false;
    }
  }

  std::string out;
  char buf[128];
  for (const auto& [name, m] : merged) {
    switch (m.kind) {
      case Kind::Counter:
      case Kind::Gauge:
        out += "# TYPE " + name +
               (m.kind == Kind::Counter ? " counter\n" : " gauge\n");
        std::snprintf(buf, sizeof buf, "{instance=\"fleet\"} %lld\n",
                      m.value);
        out += name + buf;
        for (std::size_t i = 0; i < instances.size(); ++i) {
          const auto it = parsed[i].find(name);
          if (it == parsed[i].end() || !it->second.has_value) continue;
          out += name + "{instance=\"" + label_escape(instances[i].instance) +
                 "\"} ";
          std::snprintf(buf, sizeof buf, "%lld\n", it->second.value);
          out += buf;
        }
        break;
      case Kind::Histogram: {
        out += "# TYPE " + name + " histogram\n";
        std::uint64_t cumulative = 0;
        for (const auto& [index, n] : m.buckets) {
          cumulative += n;
          std::snprintf(
              buf, sizeof buf, "{instance=\"fleet\",le=\"%llu\"} %llu\n",
              static_cast<unsigned long long>(Histogram::bucket_upper(index)),
              static_cast<unsigned long long>(cumulative));
          out += name + "_bucket" + buf;
        }
        std::snprintf(buf, sizeof buf, "{instance=\"fleet\",le=\"+Inf\"} %llu\n",
                      m.count);
        out += name + "_bucket" + buf;
        std::snprintf(buf, sizeof buf, "{instance=\"fleet\"} %llu\n", m.sum);
        out += name + "_sum" + buf;
        std::snprintf(buf, sizeof buf, "{instance=\"fleet\"} %llu\n", m.count);
        out += name + "_count" + buf;
        for (std::size_t i = 0; i < instances.size(); ++i) {
          const auto it = parsed[i].find(name);
          if (it == parsed[i].end() || it->second.kind != Kind::Histogram)
            continue;
          const std::string label = label_escape(instances[i].instance);
          for (const auto& [upper, cum] : it->second.cum) {
            std::snprintf(buf, sizeof buf,
                          "{instance=\"%s\",le=\"%llu\"} %llu\n",
                          label.c_str(),
                          static_cast<unsigned long long>(upper),
                          static_cast<unsigned long long>(cum));
            out += name + "_bucket" + buf;
          }
          std::snprintf(buf, sizeof buf,
                        "{instance=\"%s\",le=\"+Inf\"} %llu\n", label.c_str(),
                        it->second.count);
          out += name + "_bucket" + buf;
          std::snprintf(buf, sizeof buf, "{instance=\"%s\"} %llu\n",
                        label.c_str(), it->second.sum);
          out += name + "_sum" + buf;
          std::snprintf(buf, sizeof buf, "{instance=\"%s\"} %llu\n",
                        label.c_str(), it->second.count);
          out += name + "_count" + buf;
        }
        break;
      }
      case Kind::Unknown:
        break;
    }
  }
  return out;
}

}  // namespace ebmf::obs
