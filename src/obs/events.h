#pragma once
/// \file events.h
/// \brief Solver flight recorder (`ebmf::obs`): lock-free per-thread bounded
/// event rings capturing what the solver was *doing*, not just how long it
/// took.
///
/// PR 7's spans and histograms answer "how slow"; the flight recorder
/// answers "why": the last few hundred SAT restarts, learnt-DB reductions,
/// arena GCs, bound-race wave launches, local-search incumbents, cache
/// evictions, and pool reconnects that led up to a slow or budget-cut
/// reply. The record stream is snapshotted into slow-request log lines,
/// spliced onto budget-exhausted replies, and queryable on demand via the
/// `{"op":"events"}` wire verb.
///
/// Design constraints, in order:
///
///  * **Near-zero overhead when nobody reads.** `emit()` is a handful of
///    relaxed atomic stores into a thread-local ring — no locks, no
///    allocation, no branching beyond the one enabled check. Hot solver
///    loops (SAT propagation) never emit per-iteration; they emit at
///    natural rare points (restarts, DB reductions, per-solve flushes), so
///    the recorder costs nanoseconds per *solve*, not per propagation.
///  * **Fixed 32-byte records.** `{tick, code+ring, a, b}` — a monotonic
///    microsecond tick, a 16-bit event code, the ring id, and two
///    uninterpreted u64 arguments whose meaning is per-code (documented on
///    the enum). No strings on the hot path.
///  * **Bounded, wrapping, per-thread.** Each thread writes its own ring
///    (single writer — the only atomicity needed is word-sized stores so a
///    concurrent snapshot reads torn *records*, never torn words). Rings
///    wrap, keeping the newest `kRingCapacity` records. A thread that
///    exits parks its ring on a free list for the next thread, so a
///    long-lived server's ring count is bounded by peak thread concurrency.
///
/// `EBMF_EVENTS=0` in the environment disables emission process-wide (the
/// bench overhead guard's baseline mode).

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ebmf::obs {

/// What happened. The `a`/`b` argument meaning is per-code.
enum class EventCode : std::uint16_t {
  None = 0,
  SatRestart = 1,    ///< a = restart ordinal, b = conflicts so far.
  SatConflicts = 2,  ///< Per-solve flush: a = conflicts, b = propagations.
  SatReduceDb = 3,   ///< a = clauses deleted, b = learnts kept.
  SatArenaGc = 4,    ///< a = arena bytes before, b = bytes after.
  SmtWaveLaunch = 5, ///< a = wave ordinal, b = smallest bound probed.
  SmtWaveRetire = 6, ///< a = wave ordinal, b = best depth after the wave.
  LocalIncumbent = 7,///< a = incumbent depth, b = move ordinal.
  LocalPerturb = 8,  ///< a = depth after perturbation, b = stall count.
  CacheEvict = 9,    ///< a = bytes freed, b = entries remaining.
  PoolReconnect = 10,///< a = endpoint hash, b = failures so far.
};

/// Stable wire name of a code ("sat.restart", ...; "?" when unknown).
[[nodiscard]] const char* event_name(EventCode code) noexcept;

/// One flight-recorder record. 32 bytes, fixed.
struct EventRecord {
  std::uint64_t tick = 0;   ///< steady_micros() at emission.
  std::uint32_t code = 0;   ///< EventCode.
  std::uint32_t ring = 0;   ///< Id of the emitting thread's ring.
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};
static_assert(sizeof(EventRecord) == 32, "flight-recorder record is 32B");

/// One thread's bounded wrapping record buffer. Single writer (the owning
/// thread); any thread may snapshot. All fields are written with relaxed
/// word-sized atomics, so a racing snapshot can see a half-updated
/// *record* (mixed old/new words) but never a torn word — acceptable for
/// diagnostics, free for the writer.
class EventRing {
 public:
  /// Records kept per thread. Big enough to cover several seconds of the
  /// rarest interesting events; small enough that snapshots stay cheap.
  static constexpr std::size_t kRingCapacity = 256;

  void emit(EventCode code, std::uint64_t a, std::uint64_t b) noexcept;

  /// Copy out up to `kRingCapacity` newest records, oldest first.
  void snapshot(std::vector<EventRecord>* out) const;

  /// Total records ever written (wraparound tests).
  [[nodiscard]] std::uint64_t written() const noexcept {
    return head_.load(std::memory_order_relaxed);
  }

  std::uint32_t id = 0;  ///< Assigned at registration.

 private:
  struct Slot {
    std::atomic<std::uint64_t> tick{0};
    std::atomic<std::uint32_t> code{0};
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
  };
  Slot slots_[kRingCapacity];
  std::atomic<std::uint64_t> head_{0};  ///< Next write position (monotonic).
};

/// True unless EBMF_EVENTS=0/off disabled the recorder at process start.
[[nodiscard]] bool events_enabled() noexcept;

/// The calling thread's ring (registered on first use, recycled on exit).
[[nodiscard]] EventRing& thread_event_ring();

/// Record one event into the calling thread's ring. The hot-path entry:
/// a no-op when the recorder is disabled.
inline void emit_event(EventCode code, std::uint64_t a = 0,
                       std::uint64_t b = 0) noexcept {
  if (!events_enabled()) return;
  thread_event_ring().emit(code, a, b);
}

/// Merge every ring's newest records into one tick-ordered list (oldest
/// first), capped to the newest `max` records. The `{"op":"events"}` verb,
/// slow-log lines, and budget-exhausted replies all read through this.
[[nodiscard]] std::vector<EventRecord> snapshot_events(std::size_t max = 256);

/// `[{"tick":N,"event":"sat.restart","ring":R,"a":A,"b":B},...]`.
[[nodiscard]] std::string events_json(const std::vector<EventRecord>& records);

}  // namespace ebmf::obs
