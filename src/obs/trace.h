#pragma once
/// \file trace.h
/// \brief Distributed tracing (`ebmf::obs`): 128-bit trace contexts carried
/// on the wire, per-request span recorders, and a bounded trace store.
///
/// A trace follows one request end-to-end: client → router → backend →
/// engine. The context travels as an optional `"trace"` member of the
/// request JSON (`{"id":"<32 hex>","span":"<16 hex>"}` — the id names the
/// trace, the span names the sender's enclosing span so receiver spans
/// parent correctly across the process boundary). Responses carry the
/// spans the responder recorded (`"trace":{"id":...,"spans":[...]}`), so
/// the router folds backend spans into its own recorder and the completed
/// trace — queryable via `{"op":"trace","id":...}` — explains the request
/// across processes.
///
/// Ids are rendered as fixed-width lowercase hex strings on the wire
/// because the JSON layer stores numbers as doubles (53-bit exact range);
/// 64-bit span ids would silently round.
///
/// Span timestamps are microseconds on the recording process's steady
/// clock. Clocks are not synchronized across processes — consumers compare
/// durations and within-process ordering, never cross-process start times.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ebmf::io::json {
class Value;
}

namespace ebmf::obs {

/// The propagated part of a trace: which trace this request belongs to and
/// which remote span is the parent of whatever the receiver records.
struct TraceContext {
  std::uint64_t hi = 0;           ///< Trace id, high 64 bits.
  std::uint64_t lo = 0;           ///< Trace id, low 64 bits.
  std::uint64_t parent_span = 0;  ///< Sender's enclosing span id (0 = root).

  [[nodiscard]] bool valid() const noexcept { return (hi | lo) != 0; }
};

/// A completed, named interval attributed to one trace.
struct Span {
  std::string name;               ///< e.g. "router.dispatch", "server.solve".
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;    ///< 0 = a root within its process.
  std::uint64_t start_us = 0;     ///< Steady-clock micros (process-local).
  std::uint64_t dur_us = 0;
};

/// Microseconds on the monotonic clock (the span timestamp base).
[[nodiscard]] std::uint64_t steady_micros();

/// A fresh trace context: random nonzero 128-bit id, no parent span.
[[nodiscard]] TraceContext make_trace_context();

/// A fresh span id, unique within this process and salted per process so
/// router and backend ids never collide inside one trace.
[[nodiscard]] std::uint64_t new_span_id();

/// 32-hex-digit trace id / 16-hex-digit span id rendering and parsing.
[[nodiscard]] std::string trace_id_hex(std::uint64_t hi, std::uint64_t lo);
[[nodiscard]] std::string span_id_hex(std::uint64_t id);
bool parse_trace_id(const std::string& hex, std::uint64_t* hi,
                    std::uint64_t* lo);
bool parse_span_id(const std::string& hex, std::uint64_t* id);

/// Collects the spans of one in-flight traced request. Shared by pointer
/// between the connection handler and the engine; thread-safe (solve
/// batches fan out across the request pool).
class TraceRecorder {
 public:
  explicit TraceRecorder(const TraceContext& ctx);

  [[nodiscard]] const TraceContext& context() const noexcept { return ctx_; }
  /// Steady micros at construction — the queue-wait span's start.
  [[nodiscard]] std::uint64_t created_us() const noexcept { return created_; }

  /// Record a completed interval; returns `span_id` for parenting children.
  std::uint64_t record(const std::string& name, std::uint64_t span_id,
                       std::uint64_t parent_id, std::uint64_t start_us,
                       std::uint64_t end_us);

  /// Fold spans a downstream process returned (router ← backend).
  void adopt(std::vector<Span> spans);

  /// Copy out everything recorded so far (spans stay for a later take()).
  [[nodiscard]] std::vector<Span> spans() const;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
  TraceContext ctx_;
  std::uint64_t created_;
};

using TracePtr = std::shared_ptr<TraceRecorder>;

/// Bounded ring of completed traces (FIFO eviction by trace), with an
/// optional JSON-lines file sink. One per server/router process.
class TraceStore {
 public:
  explicit TraceStore(std::size_t capacity = 128);
  ~TraceStore();
  TraceStore(const TraceStore&) = delete;
  TraceStore& operator=(const TraceStore&) = delete;

  /// Append completed traces to `path` as JSON lines
  /// (`{"trace":"<id>","spans":[...]}`). False + `error` if it can't open.
  /// The sink is size-rotated (`path` → `path.1`, two generations kept —
  /// support/logrotate.h), so a long-lived server's trace file is bounded.
  bool set_file(const std::string& path, std::string* error);

  /// Flush the file sink (drain hook); no-op without one.
  void flush();

  /// Add spans under a trace id: merges into the existing entry or starts a
  /// new one, evicting the oldest trace past capacity.
  void add(std::uint64_t hi, std::uint64_t lo, std::vector<Span> spans);

  /// All spans of one trace (empty when unknown/evicted).
  [[nodiscard]] std::vector<Span> find(std::uint64_t hi,
                                       std::uint64_t lo) const;

  struct Summary {
    std::string id;        ///< 32-hex trace id.
    std::string root;      ///< Name of the first root span.
    std::uint64_t dur_us = 0;  ///< Root span duration.
    std::size_t spans = 0;
  };
  /// Most recent `n` traces, newest first.
  [[nodiscard]] std::vector<Summary> recent(std::size_t n) const;

  [[nodiscard]] std::size_t size() const;

 private:
  struct Impl;
  Impl* impl_;
};

// ---- wire rendering / parsing ---------------------------------------------

/// `{"id":"<32 hex>","span":"<16 hex>"}` — the request-side context member.
[[nodiscard]] std::string trace_context_json(const TraceContext& ctx);

/// Parse a request's `"trace"` member; false when absent/malformed.
bool parse_trace_context(const io::json::Value& value, TraceContext* out);

/// `[{"name":...,"span":"hex","parent":"hex","start_us":N,"dur_us":N},...]`.
[[nodiscard]] std::string spans_json(const std::vector<Span>& spans);

/// Parse a spans array rendered by spans_json (tolerates missing parents).
[[nodiscard]] std::vector<Span> spans_from_json(const io::json::Value& array);

/// The `{"op":"trace","id":...}` reply body: flat spans plus the assembled
/// tree (`children` nested, ordered by start time; roots are spans whose
/// parent is absent from the set).
[[nodiscard]] std::string trace_tree_json(const std::string& id_hex,
                                          const std::vector<Span>& spans);

}  // namespace ebmf::obs
