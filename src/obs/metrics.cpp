/// \file metrics.cpp
/// \brief Registry storage, histogram bucket math, and the two expositions.

#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <variant>

#include "io/json.h"

namespace ebmf::obs {

// ---------------------------------------------------------------------------
// Histogram

std::size_t Histogram::bucket_index(std::uint64_t value) noexcept {
  if (value < kSubCount) return static_cast<std::size_t>(value);
  const unsigned exp = static_cast<unsigned>(std::bit_width(value)) - 1;
  const std::size_t sub =
      static_cast<std::size_t>(value >> (exp - kSubBits)) - kSubCount;
  const std::size_t index =
      kSubCount + static_cast<std::size_t>(exp - kSubBits) * kSubCount + sub;
  // Exponent 63 lands one octave past the table; clamp into the top bucket.
  return index < kBucketCount ? index : kBucketCount - 1;
}

std::uint64_t Histogram::bucket_upper(std::size_t index) noexcept {
  if (index < kSubCount) return static_cast<std::uint64_t>(index);
  const std::size_t oct = (index - kSubCount) / kSubCount;
  const std::size_t sub = (index - kSubCount) % kSubCount;
  const unsigned shift = static_cast<unsigned>(oct);
  return ((static_cast<std::uint64_t>(sub) + kSubCount + 1) << shift) - 1;
}

void Histogram::record(std::uint64_t value) noexcept {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void Histogram::merge_from(const Histogram& other) noexcept {
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    const std::uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  const std::uint64_t other_max = other.max();
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (other_max > seen &&
         !max_.compare_exchange_weak(seen, other_max,
                                     std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::quantile(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // ceil(q * total), clamped to [1, total]: the rank of the sample we want.
  auto rank = static_cast<std::uint64_t>(q * static_cast<double>(total));
  if (static_cast<double>(rank) < q * static_cast<double>(total)) ++rank;
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank) return std::min(bucket_upper(i), max());
  }
  return max();
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> Histogram::nonzero_buckets()
    const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    const std::uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) out.emplace_back(bucket_upper(i), n);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Registry

namespace {

/// One stripe: a mutex plus its slice of the name space. Series are held by
/// unique_ptr so the raw pointers handed to call sites survive rehashing.
struct Stripe {
  std::mutex mutex;
  std::unordered_map<std::string,
                     std::variant<std::unique_ptr<Counter>,
                                  std::unique_ptr<Gauge>,
                                  std::unique_ptr<Histogram>>>
      series;
};

constexpr std::size_t kStripes = 16;

}  // namespace

struct Registry::Impl {
  Stripe stripes[kStripes];

  Stripe& stripe_for(const std::string& name) {
    return stripes[std::hash<std::string>{}(name) % kStripes];
  }
};

Registry::Registry() : impl_(new Impl) {}
Registry::~Registry() { delete impl_; }

Counter* Registry::counter(const std::string& name) {
  Stripe& s = impl_->stripe_for(name);
  const std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.series.find(name);
  if (it == s.series.end()) {
    it = s.series.emplace(name, std::make_unique<Counter>()).first;
  }
  auto* slot = std::get_if<std::unique_ptr<Counter>>(&it->second);
  return slot == nullptr ? nullptr : slot->get();
}

Gauge* Registry::gauge(const std::string& name) {
  Stripe& s = impl_->stripe_for(name);
  const std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.series.find(name);
  if (it == s.series.end()) {
    it = s.series.emplace(name, std::make_unique<Gauge>()).first;
  }
  auto* slot = std::get_if<std::unique_ptr<Gauge>>(&it->second);
  return slot == nullptr ? nullptr : slot->get();
}

Histogram* Registry::histogram(const std::string& name) {
  Stripe& s = impl_->stripe_for(name);
  const std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.series.find(name);
  if (it == s.series.end()) {
    it = s.series.emplace(name, std::make_unique<Histogram>()).first;
  }
  auto* slot = std::get_if<std::unique_ptr<Histogram>>(&it->second);
  return slot == nullptr ? nullptr : slot->get();
}

std::vector<SeriesSnapshot> Registry::snapshot() const {
  std::vector<SeriesSnapshot> out;
  for (Stripe& stripe : impl_->stripes) {
    const std::lock_guard<std::mutex> lock(stripe.mutex);
    for (const auto& [name, series] : stripe.series) {
      SeriesSnapshot snap;
      snap.name = name;
      if (const auto* c = std::get_if<std::unique_ptr<Counter>>(&series)) {
        snap.kind = SeriesSnapshot::Kind::Counter;
        snap.value = static_cast<std::int64_t>((*c)->value());
      } else if (const auto* g = std::get_if<std::unique_ptr<Gauge>>(&series)) {
        snap.kind = SeriesSnapshot::Kind::Gauge;
        snap.value = (*g)->value();
      } else if (const auto* h =
                     std::get_if<std::unique_ptr<Histogram>>(&series)) {
        snap.kind = SeriesSnapshot::Kind::Histogram;
        snap.count = (*h)->count();
        snap.sum = (*h)->sum();
        snap.max = (*h)->max();
        snap.p50 = (*h)->quantile(0.50);
        snap.p90 = (*h)->quantile(0.90);
        snap.p99 = (*h)->quantile(0.99);
        snap.buckets = (*h)->nonzero_buckets();
      }
      out.push_back(std::move(snap));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SeriesSnapshot& a, const SeriesSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

Registry& default_registry() {
  static Registry registry;
  return registry;
}

// ---------------------------------------------------------------------------
// Exposition

std::string metrics_json(const Registry& registry) {
  const auto series = registry.snapshot();
  std::string out = "{";
  bool first = true;
  char buf[64];
  for (const auto& s : series) {
    if (!first) out += ",";
    first = false;
    out += '"';
    out += io::json::escape(s.name);
    out += "\":";
    switch (s.kind) {
      case SeriesSnapshot::Kind::Counter:
      case SeriesSnapshot::Kind::Gauge:
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(s.value));
        out += buf;
        break;
      case SeriesSnapshot::Kind::Histogram:
        std::snprintf(buf, sizeof buf,
                      "{\"count\":%llu,\"sum\":%llu,\"max\":%llu,",
                      static_cast<unsigned long long>(s.count),
                      static_cast<unsigned long long>(s.sum),
                      static_cast<unsigned long long>(s.max));
        out += buf;
        std::snprintf(buf, sizeof buf, "\"p50\":%llu,\"p90\":%llu,\"p99\":%llu}",
                      static_cast<unsigned long long>(s.p50),
                      static_cast<unsigned long long>(s.p90),
                      static_cast<unsigned long long>(s.p99));
        out += buf;
        break;
    }
  }
  out += "}";
  return out;
}

namespace {

/// `server.request.micros` → `ebmf_server_request_micros`.
std::string prometheus_name(const std::string& dotted) {
  std::string out = "ebmf_";
  for (const char c : dotted) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string prometheus_text(const Registry& registry) {
  const auto series = registry.snapshot();
  std::string out;
  char buf[96];
  for (const auto& s : series) {
    const std::string name = prometheus_name(s.name);
    switch (s.kind) {
      case SeriesSnapshot::Kind::Counter:
        // Counters carry the conventional `_total` suffix, so dashboards
        // (and the fleet federation sum) see e.g.
        // `ebmf_server_requests_total`.
        out += "# TYPE " + name + "_total counter\n";
        std::snprintf(buf, sizeof buf, " %lld\n",
                      static_cast<long long>(s.value));
        out += name + "_total" + buf;
        break;
      case SeriesSnapshot::Kind::Gauge:
        out += "# TYPE " + name + " gauge\n";
        std::snprintf(buf, sizeof buf, " %lld\n",
                      static_cast<long long>(s.value));
        out += name + buf;
        break;
      case SeriesSnapshot::Kind::Histogram: {
        out += "# TYPE " + name + " histogram\n";
        std::uint64_t cumulative = 0;
        for (const auto& [upper, count] : s.buckets) {
          cumulative += count;
          std::snprintf(buf, sizeof buf, "{le=\"%llu\"} %llu\n",
                        static_cast<unsigned long long>(upper),
                        static_cast<unsigned long long>(cumulative));
          out += name + "_bucket" + buf;
        }
        std::snprintf(buf, sizeof buf, "{le=\"+Inf\"} %llu\n",
                      static_cast<unsigned long long>(s.count));
        out += name + "_bucket" + buf;
        std::snprintf(buf, sizeof buf, " %llu\n",
                      static_cast<unsigned long long>(s.sum));
        out += name + "_sum" + buf;
        std::snprintf(buf, sizeof buf, " %llu\n",
                      static_cast<unsigned long long>(s.count));
        out += name + "_count" + buf;
        break;
      }
    }
  }
  return out;
}

}  // namespace ebmf::obs
