#pragma once
/// \file progress.h
/// \brief Live solve progress (`ebmf::obs`): the `ProgressSink` a strategy
/// publishes `{incumbent_depth, lower_bound, gap, conflicts, wave}` frames
/// into mid-solve, and watchers subscribe to.
///
/// The sink travels inside `Budget` (support/budget.h), so every backend
/// that already honours the shared budget can publish without new plumbing:
/// the anytime `local` strategy publishes on every improving incumbent, the
/// SAP bound race on every wave. The server registers the sink of each
/// in-flight request under its wire id; `{"op":"watch","id":N}` subscribes
/// a connection and pushes one JSONL frame per publish until the solve
/// finishes.
///
/// Publishing never blocks the solver: listeners are invoked inline under
/// the sink mutex, but the server-side listener writes to the watcher's
/// socket with MSG_DONTWAIT and drops frames a slow watcher can't absorb —
/// a stalled or disconnected subscriber costs the solver one failed
/// syscall, after which the listener unregisters itself.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace ebmf::obs {

/// One point of an in-flight solve's trajectory.
struct ProgressFrame {
  std::uint64_t seq = 0;          ///< Publish ordinal (assigned by the sink).
  double seconds = 0.0;           ///< Wall-clock offset from solve start.
  std::uint64_t incumbent_depth = 0;  ///< Best valid depth so far (0 = none).
  std::uint64_t lower_bound = 0;      ///< Best certified lower bound.
  std::uint64_t gap = 0;          ///< incumbent_depth - lower_bound (0 floor).
  std::uint64_t conflicts = 0;    ///< SAT conflicts so far (0 when n/a).
  std::uint64_t wave = 0;         ///< Bound-race wave ordinal (0 when n/a).
  std::string phase;              ///< "seed", "search", "wave", ...
};

/// Render one frame as a JSON object (the watch stream's line body).
[[nodiscard]] std::string progress_frame_json(const ProgressFrame& frame);

/// Thread-safe frame buffer + fan-out. One per in-flight solve; shared by
/// shared_ptr between the publishing strategy (via Budget) and watchers.
class ProgressSink {
 public:
  /// Frames retained for late subscribers (the newest kKeep).
  static constexpr std::size_t kKeep = 256;

  /// Called on each publish. Return false to unsubscribe (e.g. the
  /// watcher's socket died). Must not block.
  using Listener = std::function<bool(const ProgressFrame&)>;

  /// Stamp `seq`, retain the frame, and fan it out to live listeners.
  void publish(ProgressFrame frame);

  /// Mark the solve finished and wake every waiter. Idempotent.
  void finish();

  [[nodiscard]] bool finished() const;

  /// Frames retained so far, oldest first.
  [[nodiscard]] std::vector<ProgressFrame> frames() const;

  /// The newest frame (default-constructed when none published yet).
  [[nodiscard]] ProgressFrame last() const;

  /// Total frames ever published.
  [[nodiscard]] std::uint64_t published() const;

  /// Register a listener; returns a token for unsubscribe().
  std::uint64_t subscribe(Listener listener);
  void unsubscribe(std::uint64_t token);

  /// Block up to `seconds` for finish(); true when finished. Watch
  /// handlers poll this in a loop so they can also notice a dead
  /// subscriber socket between waits.
  bool wait_finished(double seconds) const;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_ = make_impl();
  static std::shared_ptr<Impl> make_impl();
};

using ProgressSinkPtr = std::shared_ptr<ProgressSink>;

}  // namespace ebmf::obs
