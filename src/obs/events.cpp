/// \file events.cpp
/// \brief Ring registration/recycling and the merged snapshot.

#include "obs/events.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "obs/trace.h"

namespace ebmf::obs {

const char* event_name(EventCode code) noexcept {
  switch (code) {
    case EventCode::None:
      return "none";
    case EventCode::SatRestart:
      return "sat.restart";
    case EventCode::SatConflicts:
      return "sat.conflicts";
    case EventCode::SatReduceDb:
      return "sat.reduce_db";
    case EventCode::SatArenaGc:
      return "sat.arena_gc";
    case EventCode::SmtWaveLaunch:
      return "smt.wave_launch";
    case EventCode::SmtWaveRetire:
      return "smt.wave_retire";
    case EventCode::LocalIncumbent:
      return "local.incumbent";
    case EventCode::LocalPerturb:
      return "local.perturb";
    case EventCode::CacheEvict:
      return "cache.evict";
    case EventCode::PoolReconnect:
      return "pool.reconnect";
  }
  return "?";
}

void EventRing::emit(EventCode code, std::uint64_t a,
                     std::uint64_t b) noexcept {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  Slot& slot = slots_[head % kRingCapacity];
  // Publish the code last-ish so a racing reader of a fresh slot most often
  // sees a consistent record; a torn record is acceptable (diagnostics).
  slot.tick.store(steady_micros(), std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.code.store(static_cast<std::uint32_t>(code), std::memory_order_relaxed);
  head_.store(head + 1, std::memory_order_release);
}

void EventRing::snapshot(std::vector<EventRecord>* out) const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t n = head < kRingCapacity ? head : kRingCapacity;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t pos = head - n + i;  // oldest retained first
    const Slot& slot = slots_[pos % kRingCapacity];
    EventRecord rec;
    rec.tick = slot.tick.load(std::memory_order_relaxed);
    rec.code = slot.code.load(std::memory_order_relaxed);
    rec.ring = id;
    rec.a = slot.a.load(std::memory_order_relaxed);
    rec.b = slot.b.load(std::memory_order_relaxed);
    if (rec.code != 0) out->push_back(rec);
  }
}

namespace {

/// All rings ever handed out (alive or parked). Guarded by ring_mutex; the
/// rings themselves are heap-allocated and never freed, so snapshots can
/// walk the list without holding thread-exit races.
struct RingDirectory {
  std::mutex mutex;
  std::vector<EventRing*> rings;  ///< Every registered ring.
  std::vector<EventRing*> parked; ///< Rings whose owner thread exited.
};

RingDirectory& directory() {
  static RingDirectory* dir = new RingDirectory;  // never destroyed
  return *dir;
}

EventRing* acquire_ring() {
  RingDirectory& dir = directory();
  const std::lock_guard<std::mutex> lock(dir.mutex);
  if (!dir.parked.empty()) {
    EventRing* ring = dir.parked.back();
    dir.parked.pop_back();
    return ring;
  }
  auto* ring = new EventRing;
  ring->id = static_cast<std::uint32_t>(dir.rings.size());
  dir.rings.push_back(ring);
  return ring;
}

void park_ring(EventRing* ring) {
  RingDirectory& dir = directory();
  const std::lock_guard<std::mutex> lock(dir.mutex);
  dir.parked.push_back(ring);
}

/// Thread-local ring owner: acquires on first use, parks the ring (records
/// intact — they stay snapshot-visible) when the thread exits.
struct RingOwner {
  EventRing* ring = acquire_ring();
  ~RingOwner() { park_ring(ring); }
};

}  // namespace

bool events_enabled() noexcept {
  static const bool enabled = [] {
    const char* env = std::getenv("EBMF_EVENTS");
    if (env == nullptr) return true;
    return std::strcmp(env, "0") != 0 && std::strcmp(env, "off") != 0;
  }();
  return enabled;
}

EventRing& thread_event_ring() {
  thread_local RingOwner owner;
  return *owner.ring;
}

std::vector<EventRecord> snapshot_events(std::size_t max) {
  std::vector<EventRecord> out;
  {
    RingDirectory& dir = directory();
    const std::lock_guard<std::mutex> lock(dir.mutex);
    for (const EventRing* ring : dir.rings) ring->snapshot(&out);
  }
  std::sort(out.begin(), out.end(),
            [](const EventRecord& x, const EventRecord& y) {
              return x.tick < y.tick;
            });
  if (max != 0 && out.size() > max) {
    out.erase(out.begin(), out.end() - static_cast<std::ptrdiff_t>(max));
  }
  return out;
}

std::string events_json(const std::vector<EventRecord>& records) {
  std::string out = "[";
  char buf[128];
  for (std::size_t i = 0; i < records.size(); ++i) {
    const EventRecord& r = records[i];
    if (i != 0) out += ",";
    out += "{\"tick\":";
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(r.tick));
    out += buf;
    out += ",\"event\":\"";
    out += event_name(static_cast<EventCode>(r.code));
    out += "\"";
    std::snprintf(buf, sizeof buf, ",\"ring\":%u,\"a\":%llu,\"b\":%llu}",
                  static_cast<unsigned>(r.ring),
                  static_cast<unsigned long long>(r.a),
                  static_cast<unsigned long long>(r.b));
    out += buf;
  }
  out += "]";
  return out;
}

}  // namespace ebmf::obs
