#pragma once
/// \file federate.h
/// \brief Fleet metrics federation (`ebmf::obs`): merge the Prometheus
/// expositions of N instances into one scrape target.
///
/// The router answers `{"op":"metrics","scope":"fleet"}` by scraping its
/// own registry plus every backend and peer router, then merging with the
/// per-kind conventions:
///
///  * **counters** sum across instances;
///  * **gauges** sum, except names containing `max`, which take the max
///    (an instantaneous fleet ceiling, not a meaningful sum);
///  * **histograms** add bucket-wise: every remote `le` bound is
///    re-bucketed onto the local log-linear grid (Histogram::bucket_index),
///    so the merged cumulative buckets are emitted in grid order and stay
///    monotone even when the instances populated different octave ranges —
///    fleet quantiles keep the same ≤3.2% relative error as a single
///    instance's.
///
/// Every series appears labeled `instance="host:port"` per scraped
/// instance plus once as the merged aggregate labeled `instance="fleet"`,
/// all in one exposition — `sum by (...)` over the non-fleet labels equals
/// the fleet line by construction.

#include <string>
#include <vector>

namespace ebmf::obs {

/// One instance's scrape: its wire endpoint (the `instance` label) and the
/// Prometheus text body its `{"op":"metrics"}` verb returned.
struct InstanceExposition {
  std::string instance;  ///< "host:port".
  std::string body;      ///< prometheus_text() output.
};

/// Merge per-instance expositions into one federated exposition (see file
/// comment for the per-kind conventions). Unparseable lines are skipped;
/// an empty input yields an empty exposition.
[[nodiscard]] std::string federate_prometheus(
    const std::vector<InstanceExposition>& instances);

}  // namespace ebmf::obs
