#include "cli/cli.h"

#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "addressing/schedule.h"
#include "benchgen/generators.h"
#include "completion/completion_solver.h"
#include "core/bounds.h"
#include "core/fooling.h"
#include "core/preprocess.h"
#include "core/trivial.h"
#include "io/matrix_io.h"
#include "sat/dimacs.h"
#include "smt/label_formula.h"
#include "io/partition_io.h"
#include "smt/sap.h"

namespace ebmf::cli {

namespace {

/// Minimal flag parser: positional args plus --key=value / --flag.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  [[nodiscard]] bool has(const std::string& name) const {
    return flags.count(name) != 0;
  }
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const {
    const auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
  }
  [[nodiscard]] double num(const std::string& name, double fallback) const {
    const auto it = flags.find(name);
    return it == flags.end() ? fallback : std::stod(it->second);
  }
};

Args parse_args(const std::vector<std::string>& raw) {
  Args args;
  for (const auto& a : raw) {
    if (a.rfind("--", 0) == 0) {
      const auto eq = a.find('=');
      if (eq == std::string::npos)
        args.flags[a.substr(2)] = "";
      else
        args.flags[a.substr(2, eq - 2)] = a.substr(eq + 1);
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

SapOptions sap_options_from(const Args& args) {
  SapOptions opt;
  opt.packing.trials =
      static_cast<std::size_t>(args.num("trials", 100));
  opt.packing.seed = static_cast<std::uint64_t>(args.num("seed", 1));
  if (args.has("budget"))
    opt.deadline = Deadline::after(args.num("budget", 10.0));
  if (args.has("heuristic-only")) opt.use_smt = false;
  if (args.has("no-preprocess")) opt.preprocess = false;
  if (args.get("encoding", "onehot") == "binary")
    opt.encoder.encoding = smt::LabelEncoding::Binary;
  return opt;
}

int cmd_solve(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 1) {
    err << "usage: ebmf solve <matrix-file> [--trials=N] [--budget=S] "
           "[--encoding=onehot|binary] [--heuristic-only] [--no-preprocess] "
           "[--render] [--save=FILE]\n";
    return 2;
  }
  const auto m = io::load_matrix(args.positional[0]);
  if (args.has("dont-cares")) {
    // Masked path: reparse with '*' kept.
    const auto masked = io::load_masked(args.positional[0]);
    completion::CompletionOptions copt;
    if (args.get("semantics", "free") == "at-most-once")
      copt.semantics = completion::DontCareSemantics::AtMostOnce;
    const auto r = completion::solve_masked(masked, copt);
    out << "depth " << r.partition.size()
        << (r.proven_optimal ? " (proven optimal)" : " (best found)")
        << ", heuristic " << r.heuristic_size << "\n";
    io::write_partition(out, r.partition, masked.rows(), masked.cols());
    return 0;
  }
  const auto result = sap_solve(m, sap_options_from(args));
  out << "depth " << result.depth();
  switch (result.status) {
    case SapStatus::Optimal:
      out << " (proven optimal)";
      break;
    case SapStatus::BoundedOnly:
      out << " (in [" << result.rank_lower << ", " << result.depth() << "])";
      break;
    case SapStatus::HeuristicOnly:
      out << " (heuristic; lower bound " << result.rank_lower << ")";
      break;
  }
  out << ", rank " << result.rank_lower << ", heuristic "
      << result.heuristic_size << ", smt calls " << result.smt_calls.size()
      << ", " << result.total_seconds << " s\n";
  if (args.has("render")) out << render_partition(m, result.partition) << "\n";
  io::write_partition(out, result.partition, m.rows(), m.cols());
  if (args.has("save"))
    io::save_partition(args.get("save", ""), result.partition, m.rows(),
                       m.cols());
  return 0;
}

int cmd_bounds(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 1) {
    err << "usage: ebmf bounds <matrix-file>\n";
    return 2;
  }
  const auto m = io::load_matrix(args.positional[0]);
  const auto rank = real_rank(m);
  const auto fooling = greedy_fooling_set(m).size();
  const auto trivial = trivial_upper_bound(m);
  out << "shape " << m.rows() << "x" << m.cols() << ", ones "
      << m.ones_count() << "\n";
  out << "rank lower bound     " << rank << "\n";
  out << "fooling lower bound  " << fooling << " (greedy)\n";
  out << "trivial upper bound  " << trivial << "\n";
  out << "r_B in [" << std::max(rank, fooling) << ", " << trivial << "]\n";
  return 0;
}

int cmd_fooling(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 1) {
    err << "usage: ebmf fooling <matrix-file> [--exact] [--budget=S]\n";
    return 2;
  }
  const auto m = io::load_matrix(args.positional[0]);
  const auto set =
      args.has("exact")
          ? max_fooling_set(m, args.has("budget")
                                   ? Deadline::after(args.num("budget", 10))
                                   : Deadline{})
          : greedy_fooling_set(m);
  out << "fooling set size " << set.size() << (args.has("exact") ? "" : " (greedy)")
      << "\n";
  for (const auto& [i, j] : set) out << i << " " << j << "\n";
  return 0;
}

int cmd_components(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 1) {
    err << "usage: ebmf components <matrix-file>\n";
    return 2;
  }
  const auto m = io::load_matrix(args.positional[0]);
  const auto reduction = reduce_duplicates(m);
  out << "original " << m.rows() << "x" << m.cols() << ", reduced "
      << reduction.reduced.rows() << "x" << reduction.reduced.cols() << "\n";
  const auto components = split_components(reduction.reduced);
  out << "components " << components.size() << "\n";
  for (std::size_t c = 0; c < components.size(); ++c)
    out << "  component " << c << ": " << components[c].matrix.rows() << "x"
        << components[c].matrix.cols() << ", "
        << components[c].matrix.ones_count() << " ones\n";
  return 0;
}

int cmd_schedule(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 1) {
    err << "usage: ebmf schedule <matrix-file> [--reconfig-us=T] "
           "[--pulse-us=T] [solve flags]\n";
    return 2;
  }
  const auto m = io::load_matrix(args.positional[0]);
  const auto result = sap_solve(m, sap_options_from(args));
  addressing::TimingModel timing;
  timing.reconfigure_us = args.num("reconfig-us", 10.0);
  timing.pulse_us = args.num("pulse-us", 0.5);
  const addressing::Schedule schedule(m, result.partition, timing);
  out << schedule.render();
  return 0;
}

int cmd_generate(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 1 ||
      (args.positional[0] != "rand" && args.positional[0] != "opt" &&
       args.positional[0] != "gap")) {
    err << "usage: ebmf generate rand|opt|gap [--rows=M] [--cols=N] "
           "[--occupancy=P] [--k=K] [--seed=S] [--format=dense|sparse|pbm]\n";
    return 2;
  }
  const auto rows = static_cast<std::size_t>(args.num("rows", 10));
  const auto cols = static_cast<std::size_t>(args.num("cols", 10));
  Rng rng(static_cast<std::uint64_t>(args.num("seed", 1)));
  BinaryMatrix m;
  if (args.positional[0] == "rand") {
    m = benchgen::random_matrix(rows, cols, args.num("occupancy", 0.5), rng);
  } else if (args.positional[0] == "opt") {
    m = benchgen::known_optimal_matrix(
            rows, cols, static_cast<std::size_t>(args.num("k", 3)), rng)
            .matrix;
  } else {
    m = benchgen::gap_matrix(rows, cols,
                             static_cast<std::size_t>(args.num("k", 3)), rng)
            .matrix;
  }
  const auto format = args.get("format", "dense");
  if (format == "sparse")
    io::write_sparse(out, m);
  else if (format == "pbm")
    io::write_pbm(out, m);
  else
    io::write_dense(out, m);
  return 0;
}

int cmd_encode(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 1) {
    err << "usage: ebmf encode <matrix-file> [--bound=B] "
           "[--encoding=onehot|binary] [--no-symmetry]  (DIMACS to stdout)\n";
    return 2;
  }
  const auto m = io::load_matrix(args.positional[0]);
  if (m.is_zero()) {
    err << "error: zero matrix has nothing to encode\n";
    return 1;
  }
  const auto bound = static_cast<std::size_t>(
      args.num("bound", static_cast<double>(trivial_upper_bound(m))));
  smt::EncoderOptions enc;
  if (args.get("encoding", "onehot") == "binary")
    enc.encoding = smt::LabelEncoding::Binary;
  enc.symmetry_breaking = !args.has("no-symmetry");
  const smt::LabelFormula formula(m, bound, enc);
  out << "c EBMF decision problem: r_B(M) <= " << bound << "\n";
  out << "c matrix " << m.rows() << "x" << m.cols() << ", "
      << m.ones_count() << " ones\n";
  sat::write_dimacs(out, formula.export_cnf());
  return 0;
}

int cmd_convert(const Args& args, std::ostream& /*out*/, std::ostream& err) {
  if (args.positional.size() != 2) {
    err << "usage: ebmf convert <in-file> <out-file>  (format by extension: "
           ".pbm, .sparse, else dense)\n";
    return 2;
  }
  io::save_matrix(args.positional[1], io::load_matrix(args.positional[0]));
  return 0;
}

}  // namespace

std::string usage() {
  return "ebmf — depth-optimal rectangular addressing (EBMF)\n"
         "\n"
         "usage: ebmf <command> [args]\n"
         "\n"
         "commands:\n"
         "  solve <file>        depth-optimal partition of a pattern (SAP)\n"
         "  bounds <file>       rank / fooling / trivial bracket of r_B\n"
         "  fooling <file>      fooling set (--exact for maximum)\n"
         "  components <file>   preprocessing report\n"
         "  schedule <file>     AOD pulse schedule of the solution\n"
         "  generate <family>   rand | opt | gap benchmark instance\n"
         "  convert <in> <out>  rewrite between dense/sparse/PBM formats\n"
         "  encode <file>       emit the SMT decision problem as DIMACS CNF\n"
         "\n"
         "run a command without arguments for its flags\n";
}

int run_command(const std::string& command,
                const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  try {
    const Args parsed = parse_args(args);
    if (command == "solve") return cmd_solve(parsed, out, err);
    if (command == "bounds") return cmd_bounds(parsed, out, err);
    if (command == "fooling") return cmd_fooling(parsed, out, err);
    if (command == "components") return cmd_components(parsed, out, err);
    if (command == "schedule") return cmd_schedule(parsed, out, err);
    if (command == "generate") return cmd_generate(parsed, out, err);
    if (command == "convert") return cmd_convert(parsed, out, err);
    if (command == "encode") return cmd_encode(parsed, out, err);
    err << "unknown command '" << command << "'\n" << usage();
    return 2;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

int run(int argc, char** argv, std::ostream& out, std::ostream& err) {
  if (argc < 2) {
    err << usage();
    return 2;
  }
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) args.emplace_back(argv[i]);
  return run_command(argv[1], args, out, err);
}

}  // namespace ebmf::cli
