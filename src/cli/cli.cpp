#include "cli/cli.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include <fstream>

#include "addressing/schedule.h"
#include "benchgen/generators.h"
#include "core/bounds.h"
#include "core/fooling.h"
#include "core/preprocess.h"
#include "core/trivial.h"
#include "engine/engine.h"
#include "io/matrix_io.h"
#include "io/json.h"
#include "io/partition_io.h"
#include "io/request_io.h"
#include "net/frame_client.h"
#include "obs/trace.h"
#include "router/router.h"
#include "sat/dimacs.h"
#include "service/net.h"
#include "service/service.h"
#include "smt/label_formula.h"

namespace ebmf::cli {

namespace {

/// Minimal flag parser: positional args plus --key=value / --flag.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  [[nodiscard]] bool has(const std::string& name) const {
    return flags.count(name) != 0;
  }
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const {
    const auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
  }
};

Args parse_args(const std::vector<std::string>& raw) {
  Args args;
  for (const auto& a : raw) {
    if (a.rfind("--", 0) == 0) {
      const auto eq = a.find('=');
      if (eq == std::string::npos)
        args.flags[a.substr(2)] = "";
      else
        args.flags[a.substr(2, eq - 2)] = a.substr(eq + 1);
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

/// Checked numeric flag reads. A malformed or out-of-range value (e.g.
/// --budget=soon, --seed=-1, --trials=inf) marks the reader bad; commands
/// turn that into exit code 2 + usage, never a throw or an undefined
/// float-to-integer cast (the cli.h contract).
class FlagReader {
 public:
  explicit FlagReader(const Args& args) : args_(&args) {}

  double num(const std::string& name, double fallback) {
    const auto it = args_->flags.find(name);
    if (it == args_->flags.end()) return fallback;
    const char* text = it->second.c_str();
    char* end = nullptr;
    const double value = std::strtod(text, &end);
    if (end == text || *end != '\0' || !std::isfinite(value)) {
      fail(name, it->second);
      return fallback;
    }
    return value;
  }

  /// A non-negative integer flag (size_t). Doubles keep 53 exact bits —
  /// far beyond any meaningful trial/row count — so the cast is safe once
  /// the range check passes.
  std::size_t count(const std::string& name, std::size_t fallback) {
    const double value = num(name, static_cast<double>(fallback));
    if (value < 0 || value > 9e15) {
      fail(name, args_->get(name, ""));
      return fallback;
    }
    return static_cast<std::size_t>(value);
  }

  /// An unsigned 64-bit flag (seeds, node caps).
  std::uint64_t u64(const std::string& name, std::uint64_t fallback) {
    return count(name, static_cast<std::size_t>(fallback));
  }

  /// A signed 64-bit flag (conflict caps; negative means unlimited).
  std::int64_t i64(const std::string& name, std::int64_t fallback) {
    const double value = num(name, static_cast<double>(fallback));
    if (value < -9e15 || value > 9e15) {
      fail(name, args_->get(name, ""));
      return fallback;
    }
    return static_cast<std::int64_t>(value);
  }

  /// True when all reads parsed; otherwise prints the diagnostic to `err`.
  bool valid(std::ostream& err) const {
    if (error_.empty()) return true;
    err << "error: " << error_ << "\n";
    return false;
  }

 private:
  void fail(const std::string& name, const std::string& value) {
    if (error_.empty())
      error_ = "invalid value for --" + name + ": '" + value + "'";
  }

  const Args* args_;
  std::string error_;
};

/// The request-building flags shared by `solve` and `schedule`.
constexpr const char* kRequestFlagsUsage =
    "[--strategy=NAME] [--trials=N] [--seed=N] [--budget=S] [--conflicts=N] "
    "[--nodes=N] [--probes=N] [--stop-at=D] [--encoding=onehot|binary] "
    "[--no-preprocess] [--heuristic-only]";

/// Build the facade request skeleton (everything but the pattern) from
/// flags. Returns false — after printing to `err` — on malformed numeric
/// values, bad enum values, or an unknown strategy name (exit code 2 at the
/// call site).
bool request_from(const Args& args, const engine::Engine& engine,
                  engine::SolveRequest& request, std::ostream& err) {
  FlagReader flags(args);
  request.trials = flags.count("trials", 100);
  request.seed = flags.u64("seed", 1);
  if (args.has("budget"))
    request.budget.deadline = Deadline::after(flags.num("budget", 10.0));
  if (args.has("conflicts"))
    request.budget.max_conflicts = flags.i64("conflicts", -1);
  if (args.has("nodes")) request.budget.max_nodes = flags.u64("nodes", 0);
  // SMT bound-race width: 1 = sequential, 0 = auto (hardware threads).
  if (args.has("probes")) request.probes = flags.count("probes", 1);
  // Anytime early-stop: accept the first incumbent at depth <= D.
  if (args.has("stop-at")) request.stop_at = flags.count("stop-at", 0);
  if (!flags.valid(err)) return false;

  if (args.has("no-preprocess")) request.preprocess = false;
  const auto encoding = args.get("encoding", "onehot");
  if (encoding == "binary") {
    request.encoding = smt::LabelEncoding::Binary;
  } else if (encoding != "onehot") {
    err << "error: unknown encoding '" << encoding
        << "' (expected onehot|binary)\n";
    return false;
  }
  const auto semantics = args.get("semantics", "free");
  if (semantics == "at-most-once") {
    request.semantics = completion::DontCareSemantics::AtMostOnce;
  } else if (semantics != "free") {
    err << "error: unknown semantics '" << semantics
        << "' (expected free|at-most-once)\n";
    return false;
  }

  // Strategy: --strategy wins; the legacy switches are aliases.
  if (args.has("strategy")) {
    request.strategy = args.get("strategy", "auto");
  } else if (args.has("heuristic-only")) {
    request.strategy = "heuristic";
  } else if (args.has("dont-cares")) {
    request.strategy = "completion";
  }
  if (!engine.registry().contains(request.strategy)) {
    err << "error: unknown strategy '" << request.strategy
        << "' (available:";
    for (const auto& name : engine.registry().names()) err << " " << name;
    err << ")\n";
    return false;
  }
  return true;
}

void print_report_line(std::ostream& out, const engine::SolveReport& r) {
  out << "depth " << r.depth();
  switch (r.status) {
    case engine::Status::Optimal:
      out << " (proven optimal)";
      break;
    case engine::Status::Bounded:
      out << " (in [" << r.lower_bound << ", " << r.upper_bound << "])";
      break;
    case engine::Status::Heuristic:
      out << " (heuristic; lower bound " << r.lower_bound << ")";
      break;
  }
  out << ", strategy " << r.strategy << ", " << r.total_seconds << " s\n";
}

/// `ebmf solve --requests=FILE`: each line is one wire-protocol request
/// (io/request_io.h) — the same format the service consumes — solved as one
/// batch, one report JSON line out per request line.
int solve_request_file(const Args& args, std::ostream& out,
                       std::ostream& err) {
  const std::string path = args.get("requests", "");
  std::ifstream file(path);
  if (!file) {
    err << "error: cannot read requests file '" << path << "'\n";
    return 1;
  }
  FlagReader flags(args);
  const auto threads = flags.count("threads", 0);
  if (!flags.valid(err)) return 2;

  const engine::Engine engine;
  std::vector<io::WireRequest> wires;
  std::string line;
  std::size_t line_number = 0;
  bool failed = false;
  while (std::getline(file, line)) {
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      io::WireRequest wire = io::parse_wire_request(line);
      // Every non-solve op is a service/cluster verb: solving a replayed
      // {"op":"join"} line as an empty pattern would emit a bogus report.
      if (wire.op == io::WireOp::Stats)
        throw std::runtime_error(
            "'stats' is a service verb; send it with ebmf client --stats");
      if (wire.op != io::WireOp::Solve)
        throw std::runtime_error(
            "cluster verbs (join/leave/heartbeat/put) go to a running "
            "router/server; --requests files hold solve requests only");
      if (wire.request.label.empty())
        wire.request.label = path + ":" + std::to_string(line_number);
      wires.push_back(std::move(wire));
    } catch (const std::exception& e) {
      err << path << ":" << line_number << ": error: " << e.what() << "\n";
      failed = true;
    }
  }

  // Same routing as the service: non-split requests share one batch,
  // split ones go through solve_split; output stays in line order. The
  // per-request deadline is re-armed here — at submission, like the
  // server's admission step — not at file-parse time, so reading a large
  // file does not eat into the first request's budget. (Within the batch
  // a deadline is still a wall-clock SLA from submission: queueing behind
  // the pool counts against it.)
  std::vector<std::size_t> batch_index(wires.size(), wires.size());
  std::vector<engine::SolveRequest> batch;
  for (std::size_t i = 0; i < wires.size(); ++i) {
    if (wires[i].budget_seconds > 0)
      wires[i].request.budget.deadline =
          Deadline::after(wires[i].budget_seconds);
    if (wires[i].split && !wires[i].request.masked) continue;
    batch_index[i] = batch.size();
    batch.push_back(wires[i].request);
  }
  const auto batch_reports = engine.solve_batch(batch, threads);
  for (std::size_t i = 0; i < wires.size(); ++i) {
    engine::SolveReport report;
    if (batch_index[i] < batch_reports.size()) {
      report = batch_reports[batch_index[i]];
    } else {
      try {
        report = engine.solve_split(wires[i].request, wires[i].threads);
      } catch (const std::exception& e) {
        err << wires[i].request.label << ": error: " << e.what() << "\n";
        failed = true;
        continue;
      }
    }
    if (const std::string* error = report.find_telemetry("error")) {
      err << report.label << ": error: " << *error << "\n";
      failed = true;
      continue;
    }
    out << io::wire_response_json(report, wires[i].include_partition) << "\n";
  }
  return failed ? 1 : 0;
}

int cmd_solve(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.has("requests")) {
    if (!args.positional.empty()) {
      err << "error: --requests=FILE replaces positional matrix files\n";
      return 2;
    }
    return solve_request_file(args, out, err);
  }
  if (args.positional.empty()) {
    err << "usage: ebmf solve <matrix-file> [more files...] "
        << kRequestFlagsUsage
        << " [--dont-cares] [--semantics=free|at-most-once] [--split] "
           "[--threads=N] [--json] [--render] [--save=FILE] "
           "[--requests=FILE]\n";
    return 2;
  }
  const engine::Engine engine;
  engine::SolveRequest base;
  if (!request_from(args, engine, base, err)) return 2;
  FlagReader flags(args);
  const auto threads = flags.count("threads", 0);
  if (!flags.valid(err)) return 2;
  const bool masked_input =
      args.has("dont-cares") || base.strategy == "completion";
  if (args.positional.size() > 1 &&
      (args.has("save") || args.has("render") || args.has("split"))) {
    err << "error: --save/--render/--split apply to a single matrix file\n";
    return 2;
  }

  // Many files: one batch through the facade, deterministic result order.
  // A file that fails to load is reported and skipped — it must not sink
  // the rest of the batch.
  if (args.positional.size() > 1) {
    std::vector<engine::SolveRequest> requests;
    requests.reserve(args.positional.size());
    bool load_failed = false;
    for (const auto& path : args.positional) {
      engine::SolveRequest request = base;
      request.label = path;
      try {
        if (masked_input)
          request.masked = io::load_masked(path);
        else
          request.matrix = io::load_matrix(path);
      } catch (const std::exception& e) {
        err << path << ": error: " << e.what() << "\n";
        load_failed = true;
        continue;
      }
      requests.push_back(std::move(request));
    }
    const auto reports = engine.solve_batch(requests, threads);
    bool solve_failed = false;
    for (const auto& report : reports) {
      if (const std::string* error = report.find_telemetry("error")) {
        err << report.label << ": error: " << *error << "\n";
        solve_failed = true;
        continue;
      }
      if (args.has("json")) {
        out << engine::to_json(report) << "\n";
      } else {
        out << report.label << ": ";
        print_report_line(out, report);
      }
    }
    return load_failed || solve_failed ? 1 : 0;
  }

  const auto& path = args.positional[0];
  engine::SolveRequest request = base;
  request.label = path;
  if (masked_input)
    request.masked = io::load_masked(path);
  else
    request.matrix = io::load_matrix(path);

  const auto report = args.has("split") ? engine.solve_split(request, threads)
                                        : engine.solve(request);
  const BinaryMatrix& pattern = request.pattern();
  if (args.has("json")) {
    // Machine mode: only the JSON line on stdout (same contract as the
    // batch path), so `... --json | jq` always parses.
    out << engine::to_json(report) << "\n";
  } else {
    print_report_line(out, report);
    if (args.has("render"))
      out << render_partition(pattern, report.partition) << "\n";
    io::write_partition(out, report.partition, pattern.rows(),
                        pattern.cols());
  }
  if (args.has("save"))
    io::save_partition(args.get("save", ""), report.partition, pattern.rows(),
                       pattern.cols());
  return 0;
}

int cmd_strategies(const Args& /*args*/, std::ostream& out,
                   std::ostream& /*err*/) {
  const engine::Engine engine;
  for (const auto& name : engine.registry().names()) {
    const auto* entry = engine.registry().find(name);
    out << name << "\t" << entry->description << "\n";
  }
  return 0;
}

int cmd_bounds(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 1) {
    err << "usage: ebmf bounds <matrix-file> [--trials=N]\n";
    return 2;
  }
  FlagReader flags(args);
  const auto trials = flags.count("trials", 32);
  if (!flags.valid(err)) return 2;
  const auto m = io::load_matrix(args.positional[0]);
  const auto rank = real_rank(m);
  const auto fooling = greedy_fooling_set(m).size();
  const auto trivial = trivial_upper_bound(m);
  // The facade's heuristic backend often beats the trivial upper bound.
  const engine::Engine engine;
  auto request = engine::SolveRequest::dense(m, "heuristic");
  request.trials = trials;
  const auto heuristic = engine.solve(request);
  out << "shape " << m.rows() << "x" << m.cols() << ", ones "
      << m.ones_count() << "\n";
  out << "rank lower bound     " << rank << "\n";
  out << "fooling lower bound  " << fooling << " (greedy)\n";
  out << "trivial upper bound  " << trivial << "\n";
  out << "packing upper bound  " << heuristic.depth() << " (engine, "
      << trials << " trials)\n";
  out << "r_B in [" << std::max(rank, fooling) << ", "
      << std::min(trivial, heuristic.depth()) << "]\n";
  return 0;
}

int cmd_fooling(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 1) {
    err << "usage: ebmf fooling <matrix-file> [--exact] [--budget=S]\n";
    return 2;
  }
  FlagReader flags(args);
  Budget budget;
  if (args.has("budget")) budget = Budget::after(flags.num("budget", 10));
  if (!flags.valid(err)) return 2;
  const auto m = io::load_matrix(args.positional[0]);
  const auto set =
      args.has("exact") ? max_fooling_set(m, budget) : greedy_fooling_set(m);
  out << "fooling set size " << set.size()
      << (args.has("exact") ? "" : " (greedy)") << "\n";
  for (const auto& [i, j] : set) out << i << " " << j << "\n";
  return 0;
}

int cmd_components(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 1) {
    err << "usage: ebmf components <matrix-file>\n";
    return 2;
  }
  const auto m = io::load_matrix(args.positional[0]);
  const auto reduction = reduce_duplicates(m);
  out << "original " << m.rows() << "x" << m.cols() << ", reduced "
      << reduction.reduced.rows() << "x" << reduction.reduced.cols() << "\n";
  const auto components = split_components(reduction.reduced);
  out << "components " << components.size() << "\n";
  for (std::size_t c = 0; c < components.size(); ++c)
    out << "  component " << c << ": " << components[c].matrix.rows() << "x"
        << components[c].matrix.cols() << ", "
        << components[c].matrix.ones_count() << " ones\n";
  return 0;
}

int cmd_schedule(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 1) {
    err << "usage: ebmf schedule <matrix-file> [--reconfig-us=T] "
           "[--pulse-us=T] "
        << kRequestFlagsUsage << "\n";
    return 2;
  }
  const engine::Engine engine;
  engine::SolveRequest request;
  if (!request_from(args, engine, request, err)) return 2;
  FlagReader flags(args);
  addressing::TimingModel timing;
  timing.reconfigure_us = flags.num("reconfig-us", 10.0);
  timing.pulse_us = flags.num("pulse-us", 0.5);
  if (!flags.valid(err)) return 2;
  const auto m = io::load_matrix(args.positional[0]);
  request.matrix = m;
  request.label = args.positional[0];
  const auto report = engine.solve(request);
  const addressing::Schedule schedule(m, report.partition, timing);
  out << schedule.render();
  return 0;
}

int cmd_generate(const Args& args, std::ostream& out, std::ostream& err) {
  const bool known_family =
      args.positional.size() == 1 &&
      (args.positional[0] == "rand" || args.positional[0] == "opt" ||
       args.positional[0] == "gap" || args.positional[0] == "qldpc" ||
       args.positional[0] == "atom");
  if (!known_family) {
    err << "usage: ebmf generate rand|opt|gap|qldpc|atom [--rows=M] "
           "[--cols=N] [--occupancy=P] [--k=K] [--seed=S] "
           "[--format=dense|sparse|pbm]\n";
    return 2;
  }
  FlagReader flags(args);
  const auto rows = flags.count("rows", 10);
  const auto cols = flags.count("cols", 10);
  const auto occupancy = flags.num("occupancy", 0.5);
  const auto k = flags.count("k", 3);
  const auto seed = flags.u64("seed", 1);
  if (!flags.valid(err)) return 2;
  Rng rng(seed);
  BinaryMatrix m;
  if (args.positional[0] == "rand") {
    m = benchgen::random_matrix(rows, cols, occupancy, rng);
  } else if (args.positional[0] == "opt") {
    m = benchgen::known_optimal_matrix(rows, cols, k, rng).matrix;
  } else if (args.positional[0] == "qldpc") {
    m = benchgen::qldpc_block_matrix(rows, cols, occupancy, rng);
  } else if (args.positional[0] == "atom") {
    m = benchgen::neutral_atom_matrix(rows, cols, occupancy, rng);
  } else {
    m = benchgen::gap_matrix(rows, cols, k, rng).matrix;
  }
  const auto format = args.get("format", "dense");
  if (format == "sparse")
    io::write_sparse(out, m);
  else if (format == "pbm")
    io::write_pbm(out, m);
  else
    io::write_dense(out, m);
  return 0;
}

int cmd_encode(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 1) {
    err << "usage: ebmf encode <matrix-file> [--bound=B] "
           "[--encoding=onehot|binary] [--no-symmetry]  (DIMACS to stdout)\n";
    return 2;
  }
  const auto m = io::load_matrix(args.positional[0]);
  if (m.is_zero()) {
    err << "error: zero matrix has nothing to encode\n";
    return 1;
  }
  FlagReader flags(args);
  const auto bound = flags.count("bound", trivial_upper_bound(m));
  if (!flags.valid(err)) return 2;
  smt::EncoderOptions enc;
  if (args.get("encoding", "onehot") == "binary")
    enc.encoding = smt::LabelEncoding::Binary;
  enc.symmetry_breaking = !args.has("no-symmetry");
  const smt::LabelFormula formula(m, bound, enc);
  out << "c EBMF decision problem: r_B(M) <= " << bound << "\n";
  out << "c matrix " << m.rows() << "x" << m.cols() << ", "
      << m.ones_count() << " ones\n";
  sat::write_dimacs(out, formula.export_cnf());
  return 0;
}

int cmd_serve(const Args& args, std::ostream& out, std::ostream& err) {
  FlagReader flags(args);
  service::ServerOptions options;
  const auto port = flags.count("port", 7421);
  options.host = args.get("host", "127.0.0.1");
  options.threads = flags.count("threads", 0);
  options.cache_mb = flags.num("cache-mb", 64.0);
  options.max_inflight = flags.count("max-inflight", 256);
  options.budget_ceiling_seconds = flags.num("budget", 10.0);
  options.max_batch = flags.count("max-batch", 32);
  options.io_threads = flags.count("io-threads", options.io_threads);
  options.io_workers = flags.count("io-workers", options.io_workers);
  options.idle_timeout_seconds =
      flags.num("idle-timeout", options.idle_timeout_seconds);
  options.cache_file = args.get("cache-file", "");
  options.announce = args.get("announce", "");
  options.advertise = args.get("advertise", "");
  options.heartbeat_ms = flags.num("heartbeat-ms", 500.0);
  options.slow_ms = flags.num("slow-ms", 0.0);
  options.slow_log = args.get("slow-log", "");
  options.trace_file = args.get("trace-file", "");
  bool endpoints_ok = true;
  std::string endpoint_host;
  std::uint16_t endpoint_port = 0;
  // --announce takes a comma-separated router list (a fleet is announced
  // to in full); every entry must be a dialable host:port.
  std::size_t announce_start = 0;
  while (announce_start < options.announce.size()) {
    std::size_t comma = options.announce.find(',', announce_start);
    if (comma == std::string::npos) comma = options.announce.size();
    const std::string entry =
        options.announce.substr(announce_start, comma - announce_start);
    if (!entry.empty() && !service::net::parse_endpoint(entry, endpoint_host,
                                                        endpoint_port)) {
      err << "error: bad --announce endpoint '" << entry
          << "' (want host:port[,host:port...])\n";
      endpoints_ok = false;
    }
    announce_start = comma + 1;
  }
  if (!options.advertise.empty() &&
      !service::net::parse_endpoint(options.advertise, endpoint_host,
                                    endpoint_port)) {
    err << "error: bad --advertise endpoint '" << options.advertise
        << "' (want host:port)\n";
    endpoints_ok = false;
  }
  if (!options.announce.empty() && options.advertise.empty() &&
      (options.host == "0.0.0.0" || options.host == "::")) {
    // Announcing the wildcard bind address would make the router dial its
    // own loopback; the operator must name a reachable address.
    err << "error: --announce with --host=" << options.host
        << " needs an explicit --advertise=HOST:PORT (the router cannot "
           "dial the wildcard address)\n";
    endpoints_ok = false;
  }
  if (!flags.valid(err) || port > 65535 || options.cache_mb < 0 ||
      options.budget_ceiling_seconds < 0 || options.heartbeat_ms <= 0 ||
      options.slow_ms < 0 || !endpoints_ok) {
    err << "usage: ebmf serve [--port=P] [--host=ADDR] [--threads=N] "
           "[--cache-mb=MB] [--max-inflight=N] [--budget=S] "
           "[--max-batch=N] [--io-threads=N] [--io-workers=N] "
           "[--idle-timeout=S] [--cache-file=PATH] [--announce=H:P,H:P] "
           "[--advertise=HOST:PORT] [--heartbeat-ms=N] [--slow-ms=N] "
           "[--slow-log=PATH] [--trace-file=PATH]\n";
    return 2;
  }
  options.port = static_cast<std::uint16_t>(port);
  // Blocks until SIGTERM/SIGINT, then drains and reports.
  return service::serve_forever(options, out);
}

/// `ebmf route BACKEND... --listen=P`: the canon-key sharding front tier.
/// Backends are positional "host:port" endpoints and/or a comma-separated
/// --backends= list (the flag parser keeps only the last repeated flag, so
/// positionals are the ergonomic spelling).
int cmd_route(const Args& args, std::ostream& out, std::ostream& err) {
  router::RouterOptions options;
  for (const auto& endpoint : args.positional)
    options.backends.push_back(endpoint);
  const std::string joined = args.get("backends", "");
  std::size_t start = 0;
  while (start < joined.size()) {
    std::size_t comma = joined.find(',', start);
    if (comma == std::string::npos) comma = joined.size();
    if (comma > start)
      options.backends.push_back(joined.substr(start, comma - start));
    start = comma + 1;
  }

  FlagReader flags(args);
  const auto port = flags.count("listen", 7500);
  options.host = args.get("host", "127.0.0.1");
  options.l1_mb = flags.num("l1-mb", 64.0);
  options.cache_file = args.get("cache-file", "");
  options.max_inflight = flags.count("max-inflight", 256);
  options.max_batch = flags.count("max-batch", 32);
  options.io_threads = flags.count("io-threads", options.io_threads);
  options.io_workers = flags.count("io-workers", options.io_workers);
  options.idle_timeout_seconds =
      flags.num("idle-timeout", options.idle_timeout_seconds);
  options.pool_connections = flags.count("pool", 1);
  options.reply_timeout_seconds = flags.num("timeout", 30.0);
  options.binary_backend = !args.has("no-binary");
  options.dynamic = args.has("dynamic");
  // --peers: fellow routers of an HA fleet (comma-separated, this router
  // excluded). Non-empty turns on leader-lease arbitration + state sync.
  const std::string peers = args.get("peers", "");
  std::size_t peer_start = 0;
  while (peer_start < peers.size()) {
    std::size_t comma = peers.find(',', peer_start);
    if (comma == std::string::npos) comma = peers.size();
    if (comma > peer_start)
      options.peers.push_back(peers.substr(peer_start, comma - peer_start));
    peer_start = comma + 1;
  }
  options.advertise = args.get("advertise", "");
  options.lease_ttl_ms = flags.num("lease-ttl-ms", 1500.0);
  options.sync_interval_ms = flags.num("sync-interval-ms", 0.0);
  options.replicas = flags.count("replicas", 2);
  options.promote_after = flags.u64("promote-after", 8);
  options.heartbeat_ms = flags.num("heartbeat-ms", 500.0);
  options.grace_ms = flags.num("grace-ms", 0.0);
  options.trace = args.has("trace");
  options.slow_ms = flags.num("slow-ms", 0.0);
  options.slow_log = args.get("slow-log", "");
  options.trace_file = args.get("trace-file", "");
  if (!flags.valid(err) || port > 65535 || options.l1_mb < 0 ||
      options.reply_timeout_seconds < 0 || options.heartbeat_ms <= 0 ||
      options.grace_ms < 0 || options.replicas == 0 || options.slow_ms < 0 ||
      options.lease_ttl_ms <= 0 || options.sync_interval_ms < 0 ||
      (options.backends.empty() && !options.dynamic)) {
    err << "usage: ebmf route <host:port>... [--backends=H:P,H:P] "
           "[--listen=P] [--host=ADDR] [--l1-mb=MB] [--cache-file=PATH] "
           "[--max-inflight=N] [--max-batch=N] [--io-threads=N] "
           "[--io-workers=N] [--idle-timeout=S] [--no-binary] "
           "[--pool=N] [--timeout=S] "
           "[--dynamic] [--replicas=R] [--promote-after=N] "
           "[--heartbeat-ms=N] [--grace-ms=N] [--peers=H:P,H:P] "
           "[--advertise=HOST:PORT] [--lease-ttl-ms=N] "
           "[--sync-interval-ms=N] [--trace] [--slow-ms=N] "
           "[--slow-log=PATH] [--trace-file=PATH]\n";
    return 2;
  }
  for (const auto& endpoint : options.backends) {
    std::string host;
    std::uint16_t backend_port = 0;
    if (!service::net::parse_endpoint(endpoint, host, backend_port)) {
      err << "error: bad backend endpoint '" << endpoint
          << "' (want host:port)\n";
      return 2;
    }
  }
  for (const auto& endpoint : options.peers) {
    std::string host;
    std::uint16_t peer_port = 0;
    if (!service::net::parse_endpoint(endpoint, host, peer_port)) {
      err << "error: bad peer endpoint '" << endpoint
          << "' (want host:port)\n";
      return 2;
    }
  }
  if (!options.advertise.empty()) {
    std::string host;
    std::uint16_t advertise_port = 0;
    if (!service::net::parse_endpoint(options.advertise, host,
                                      advertise_port)) {
      err << "error: bad --advertise endpoint '" << options.advertise
          << "' (want host:port)\n";
      return 2;
    }
  }
  options.port = static_cast<std::uint16_t>(port);
  // Blocks until SIGTERM/SIGINT, then drains and reports.
  return router::route_forever(options, out);
}

/// Indented key/value rendering of a stats reply (or any JSON object) —
/// `ebmf client --stats` output.
void print_json_tree(std::ostream& out, const std::string& prefix,
                     const io::json::Value& value) {
  if (value.is_object()) {
    for (const auto& [key, member] : value.members()) {
      const std::string path = prefix.empty() ? key : prefix + "." + key;
      print_json_tree(out, path, member);
    }
    return;
  }
  if (value.is_array()) {
    for (std::size_t i = 0; i < value.size(); ++i)
      print_json_tree(out, prefix + "[" + std::to_string(i) + "]",
                      value.at(i));
    return;
  }
  out << prefix << " = ";
  if (value.is_string())
    out << value.as_string();
  else if (value.is_number())
    out << io::json::number(value.as_number());
  else if (value.is_bool())
    out << (value.as_bool() ? "true" : "false");
  else
    out << "null";
  out << "\n";
}

/// The address list an `ebmf client` invocation talks to: the
/// comma-separated `--connect=H:P,H:P` list when given (HA fleets — the
/// Client fails over across it), else the single `--host`/`--port` pair.
/// False + usage error on a malformed entry.
bool client_endpoints(const Args& args, std::uint64_t port, std::ostream& err,
                      std::vector<std::string>& endpoints) {
  const std::string connect = args.get("connect", "");
  if (connect.empty()) {
    endpoints.push_back(args.get("host", "127.0.0.1") + ":" +
                        std::to_string(port));
    return true;
  }
  std::size_t start = 0;
  while (start <= connect.size()) {
    std::size_t comma = connect.find(',', start);
    if (comma == std::string::npos) comma = connect.size();
    const std::string entry = connect.substr(start, comma - start);
    std::string host;
    std::uint16_t parsed_port = 0;
    if (!entry.empty()) {
      if (!service::net::parse_endpoint(entry, host, parsed_port)) {
        err << "error: bad --connect endpoint '" << entry
            << "' (want host:port[,host:port...])\n";
        return false;
      }
      endpoints.push_back(entry);
    }
    start = comma + 1;
  }
  if (endpoints.empty()) {
    err << "error: --connect lists no endpoints\n";
    return false;
  }
  return true;
}

/// Stamp the serving endpoint into a reply line (`--connect` mode): the
/// caller of a failing-over client needs to know *who* answered, and the
/// JSON output line is where scripts read that from.
std::string stamp_endpoint(const std::string& reply,
                           const std::string& endpoint) {
  if (reply.empty() || reply.front() != '{') return reply;
  return "{\"endpoint\":\"" + io::json::escape(endpoint) + "\"," +
         reply.substr(1);
}

/// `ebmf client --stats`: ask the server/router for its counters and
/// pretty-print the reply one `path = value` line at a time. With --json
/// the raw stats line is emitted instead, so CI jobs and tools can assert
/// on counters without scraping the pretty format (with --connect the
/// line leads with the serving endpoint).
int client_stats(const Args& args, std::ostream& out, std::ostream& err) {
  FlagReader flags(args);
  const auto port = flags.count("port", 7421);
  if (!flags.valid(err) || port > 65535) return 2;
  std::vector<std::string> endpoints;
  if (!client_endpoints(args, port, err, endpoints)) return 2;
  try {
    service::Client client(endpoints);
    std::string reply = client.round_trip(R"({"op":"stats"})");
    if (args.has("connect")) reply = stamp_endpoint(reply, client.endpoint());
    const io::json::Value document = io::json::Value::parse(reply);
    if (document.find("error") != nullptr) {
      err << "error: " << document.find("error")->as_string() << "\n";
      return 1;
    }
    if (args.has("json"))
      out << reply << "\n";
    else
      print_json_tree(out, "", document);
    return 0;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

/// `ebmf client --metrics [--scope=fleet]`: fetch `{"op":"metrics"}` and
/// print the Prometheus text body unwrapped from its line-JSON envelope —
/// the exact bytes a scraper would ingest. `--scope=fleet` (router only)
/// returns the federated exposition across every backend and peer.
int client_metrics(const Args& args, std::ostream& out, std::ostream& err) {
  FlagReader flags(args);
  const auto port = flags.count("port", 7421);
  if (!flags.valid(err) || port > 65535) return 2;
  std::vector<std::string> endpoints;
  if (!client_endpoints(args, port, err, endpoints)) return 2;
  std::string request = R"({"op":"metrics"})";
  if (const std::string scope = args.get("scope", ""); !scope.empty())
    request = "{\"op\":\"metrics\",\"scope\":\"" + io::json::escape(scope) +
              "\"}";
  try {
    service::Client client(endpoints);
    const std::string reply = client.round_trip(request);
    const io::json::Value document = io::json::Value::parse(reply);
    if (const io::json::Value* error = document.find("error");
        error != nullptr && error->is_string()) {
      err << "error: " << error->as_string() << "\n";
      return 1;
    }
    const io::json::Value* body = document.find("body");
    if (body == nullptr || !body->is_string()) {
      err << "error: malformed metrics reply\n";
      return 1;
    }
    out << body->as_string();
    return 0;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

/// `ebmf client --get-trace=ID`: pull one completed trace's span tree from
/// the server/router ring (raw JSON with --json, `path = value` otherwise).
int client_get_trace(const Args& args, std::ostream& out, std::ostream& err) {
  FlagReader flags(args);
  const auto port = flags.count("port", 7421);
  const std::string id = args.get("get-trace", "");
  if (!flags.valid(err) || port > 65535 || id.empty()) {
    err << "usage: ebmf client --get-trace=TRACE_ID [--host=ADDR] "
           "[--port=P] [--json]\n";
    return 2;
  }
  std::vector<std::string> endpoints;
  if (!client_endpoints(args, port, err, endpoints)) return 2;
  try {
    service::Client client(endpoints);
    std::string reply = client.round_trip(
        "{\"op\":\"trace\",\"id\":\"" + io::json::escape(id) + "\"}");
    if (args.has("connect")) reply = stamp_endpoint(reply, client.endpoint());
    const io::json::Value document = io::json::Value::parse(reply);
    if (const io::json::Value* error = document.find("error");
        error != nullptr && error->is_string()) {
      err << "error: " << error->as_string() << "\n";
      return 1;
    }
    if (args.has("json"))
      out << reply << "\n";
    else
      print_json_tree(out, "", document);
    return 0;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

/// Pull a numeric member out of a JSON object; 0 when absent/mistyped.
double stat_num(const io::json::Value* object, const char* key) {
  if (object == nullptr || !object->is_object()) return 0.0;
  const io::json::Value* member = object->find(key);
  return member != nullptr && member->is_number() ? member->as_number() : 0.0;
}

/// Render one watch-stream line for `ebmf client --watch`. Raw mode passes
/// the JSONL through; otherwise frames become one human line each. Returns
/// false when the stream is over (the done line, or an error).
bool render_watch_line(std::ostream& out, const std::string& line, bool raw) {
  io::json::Value document;
  try {
    document = io::json::Value::parse(line);
  } catch (const std::exception&) {
    return false;
  }
  const bool done = document.find("done") != nullptr;
  const bool error = document.find("error") != nullptr;
  if (raw) {
    out << line << "\n";
    return !done && !error;
  }
  if (error) {
    out << "watch: " << document.find("error")->as_string() << "\n";
    return false;
  }
  if (done) {
    out << "watch: done (" << io::json::number(stat_num(&document, "frames"))
        << " frames)\n";
    return false;
  }
  out << "watch: t=" << io::json::number(stat_num(&document, "seconds"))
      << "s";
  if (const io::json::Value* phase = document.find("phase");
      phase != nullptr && phase->is_string())
    out << " phase=" << phase->as_string();
  const double depth = stat_num(&document, "incumbent_depth");
  if (depth > 0) out << " depth=" << io::json::number(depth);
  out << " lower=" << io::json::number(stat_num(&document, "lower_bound"))
      << " gap=" << io::json::number(stat_num(&document, "gap"));
  if (const double conflicts = stat_num(&document, "conflicts");
      conflicts > 0)
    out << " conflicts=" << io::json::number(conflicts);
  if (const double wave = stat_num(&document, "wave"); wave > 0)
    out << " wave=" << io::json::number(wave);
  out << "\n";
  out.flush();
  return true;
}

/// `ebmf client <file> --watch`: submit the solve on one connection, then
/// subscribe to its live progress frames (`{"op":"watch"}`) on a second,
/// rendering each frame as it lands; the final reply prints last. The
/// subscription races the solve's registration, so an unknown-id error
/// retries briefly — and a solve that finished inside the race window just
/// skips straight to its reply.
int client_watch_solve(const std::vector<std::string>& endpoints,
                       const Args& args, const std::string& line,
                       std::ostream& out, std::ostream& err) {
  try {
    service::Client solver(endpoints);
    solver.send_line(line);
    try {
      service::Client watcher(endpoints);
      bool streaming = false;
      for (int attempt = 0; attempt < 40 && !streaming; ++attempt) {
        watcher.send_line(R"({"op":"watch","id":0})");
        std::string frame = watcher.read_line();
        if (!streaming && frame.find("no in-flight request") !=
                              std::string::npos) {
          std::this_thread::sleep_for(std::chrono::milliseconds(25));
          continue;
        }
        streaming = true;
        while (render_watch_line(out, frame, args.has("json")))
          frame = watcher.read_line();
      }
    } catch (const std::exception&) {
      // Watch is diagnostics, not the answer: a dead watch connection
      // (or a router without the verb) must not sink the solve below.
    }
    std::string reply = solver.read_line();
    const bool failed = reply.find("\"error\"") != std::string::npos &&
                        reply.rfind("{\"id\":0,\"error\"", 0) == 0;
    if (args.has("connect")) reply = stamp_endpoint(reply, solver.endpoint());
    out << reply << "\n";
    return failed ? 1 : 0;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

int cmd_client(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.has("metrics")) {
    if (!args.positional.empty()) {
      err << "error: --metrics takes no matrix files\n";
      return 2;
    }
    return client_metrics(args, out, err);
  }
  if (args.has("get-trace")) {
    if (!args.positional.empty()) {
      err << "error: --get-trace takes no matrix files\n";
      return 2;
    }
    return client_get_trace(args, out, err);
  }
  if (args.has("stats")) {
    if (!args.positional.empty()) {
      err << "error: --stats takes no matrix files\n";
      return 2;
    }
    return client_stats(args, out, err);
  }
  if (args.positional.empty()) {
    err << "usage: ebmf client <matrix-file>... [--host=ADDR] [--port=P] "
           "[--connect=H:P,H:P] "
        << kRequestFlagsUsage
        << " [--dont-cares] [--split] [--include-partition] [--trace] "
           "[--binary] [--watch [--json]] [--stats [--json]] "
           "[--metrics [--scope=fleet]] [--get-trace=ID [--json]]\n";
    return 2;
  }
  if (args.has("watch") && args.positional.size() != 1) {
    err << "error: --watch follows a single matrix file\n";
    return 2;
  }
  const engine::Engine engine;
  engine::SolveRequest base;
  if (!request_from(args, engine, base, err)) return 2;
  FlagReader flags(args);
  const auto port = flags.count("port", 7421);
  const auto threads = flags.count("threads", 0);
  const auto budget_seconds = flags.num("budget", 0.0);
  if (!flags.valid(err) || port > 65535) return 2;
  std::vector<std::string> endpoints;
  if (!client_endpoints(args, port, err, endpoints)) return 2;
  const bool masked_input =
      args.has("dont-cares") || base.strategy == "completion";

  std::vector<io::WireRequest> wires;
  std::vector<std::string> lines;
  for (const auto& path : args.positional) {
    io::WireRequest wire;
    wire.request = base;
    wire.request.label = path;
    // Correlation ids make retries safe to count: a re-sent request whose
    // first copy actually landed is answered exactly once by the client's
    // id dedupe.
    wire.id = static_cast<std::int64_t>(lines.size());
    try {
      if (masked_input)
        wire.request.masked = io::load_masked(path);
      else
        wire.request.matrix = io::load_matrix(path);
    } catch (const std::exception& e) {
      err << path << ": error: " << e.what() << "\n";
      return 1;
    }
    wire.budget_seconds = budget_seconds;
    wire.split = args.has("split");
    wire.threads = threads;
    wire.include_partition = args.has("include-partition");
    if (args.has("trace")) {
      // Client-originated tracing: each request gets its own fresh trace
      // id; the reply's "trace" member carries the assembled spans.
      wire.has_trace = true;
      wire.trace = obs::make_trace_context();
    }
    lines.push_back(io::wire_request_json(wire));
    wires.push_back(std::move(wire));
  }

  if (args.has("watch"))
    return client_watch_solve(endpoints, args, lines[0], out, err);

  if (args.has("binary")) {
    // The binary-wire client: negotiate the frame protocol and ship solves
    // as type-1 frames. One endpoint, one socket — failover and redirect
    // chasing stay with the line client; this path exists to exercise and
    // measure the fast wire.
    std::string host;
    std::uint16_t client_port = 0;
    if (!service::net::parse_endpoint(endpoints[0], host, client_port)) {
      err << "error: bad endpoint '" << endpoints[0] << "'\n";
      return 2;
    }
    try {
      ebmf::net::FrameClient client(host, client_port);
      if (!client.upgrade())
        err << "note: server declined the upgrade; staying on the line "
               "protocol\n";
      constexpr std::size_t kWindow = 8;
      bool failed = false;
      std::size_t sent = 0;
      for (std::size_t received = 0; received < wires.size(); ++received) {
        while (sent < wires.size() && sent - received < kWindow) {
          client.send_request(wires[sent]);
          ++sent;
        }
        const std::string reply = client.read_reply();
        if (reply.rfind("{\"error\"", 0) == 0) failed = true;
        if (reply.rfind("{\"id\":", 0) == 0) {
          const std::size_t comma = reply.find(',');
          if (comma != std::string::npos &&
              reply.compare(comma + 1, 8, "\"error\"") == 0)
            failed = true;
        }
        out << reply << "\n";
      }
      return failed ? 1 : 0;
    } catch (const std::exception& e) {
      err << "error: " << e.what() << "\n";
      return 1;
    }
  }

  try {
    service::Client client(endpoints);
    const bool stamp = args.has("connect");
    // Pipeline with a bounded window: blasting every line before reading
    // any reply can deadlock two blocking peers once both socket buffers
    // fill (server stuck in send, client stuck in send). Eight in flight
    // keeps the server's micro-batching fed while bounding buffered bytes.
    constexpr std::size_t kWindow = 8;
    bool failed = false;
    std::size_t sent = 0;
    for (std::size_t received = 0; received < lines.size(); ++received) {
      std::string reply;
      try {
        while (sent < lines.size() && sent - received < kWindow) {
          client.send_line(lines[sent]);
          ++sent;
        }
        reply = client.read_line();
      } catch (const std::runtime_error&) {
        // The connection died mid-window (backend restart, router
        // failover): replies for the in-flight tail are gone. Re-issue
        // the unanswered requests one at a time — round_trip fails over
        // across the address list, chases redirects, and its id dedupe
        // keeps a request that *did* land from being answered twice.
        sent = received;
        reply = client.round_trip(lines[sent]);
        ++sent;
      }
      // Error replies lead with "error" (after the echoed id, when one
      // was sent) — check before the endpoint stamp shifts the prefix.
      if (reply.rfind("{\"error\"", 0) == 0) failed = true;
      if (reply.rfind("{\"id\":", 0) == 0) {
        const std::size_t comma = reply.find(',');
        if (comma != std::string::npos &&
            reply.compare(comma + 1, 8, "\"error\"") == 0)
          failed = true;
      }
      if (stamp) reply = stamp_endpoint(reply, client.endpoint());
      out << reply << "\n";
    }
    return failed ? 1 : 0;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

/// One frame of `ebmf top`: counters, cache hit ratio, and the latency
/// quantiles of `<role>.request.micros` from the stats reply's metrics
/// block. `prev_requests`/`prev_seconds` carry rps state between frames
/// (-1 requests = first frame, no rate yet).
void render_top_frame(std::ostream& out, const std::string& endpoint,
                      const io::json::Value& document, double prev_requests,
                      double prev_seconds, double now_seconds) {
  const io::json::Value* role_value = document.find("role");
  const std::string role =
      role_value != nullptr && role_value->is_string() ? role_value->as_string()
                                                       : "server";
  const io::json::Value* tier = document.find(role.c_str());
  const double requests = stat_num(tier, "requests");
  out << "ebmf top — " << endpoint << " (" << role << ")\n";
  out << "  requests  " << io::json::number(requests);
  if (prev_requests >= 0 && now_seconds > prev_seconds) {
    const double rps =
        (requests - prev_requests) / (now_seconds - prev_seconds);
    out << "  (" << io::json::number(rps < 0 ? 0.0 : rps) << "/s)";
  }
  out << "   errors " << io::json::number(stat_num(tier, "errors"))
      << "   rejected " << io::json::number(stat_num(tier, "rejected"))
      << "   inflight " << io::json::number(stat_num(tier, "inflight")) << "/"
      << io::json::number(stat_num(tier, "max_inflight")) << "\n";
  // The local result cache: "l1" on a router, "cache" on a server.
  const io::json::Value* cache = document.find(role == "router" ? "l1"
                                                                : "cache");
  if (cache != nullptr && cache->is_object()) {
    const double hits = stat_num(cache, "hits");
    const double misses = stat_num(cache, "misses");
    const double total = hits + misses;
    out << "  cache     hits " << io::json::number(hits) << "  misses "
        << io::json::number(misses);
    if (total > 0)
      out << "  (" << io::json::number(100.0 * hits / total) << "% hit)";
    out << "  entries " << io::json::number(stat_num(cache, "entries"))
        << "\n";
  }
  const io::json::Value* metrics = document.find("metrics");
  const io::json::Value* latency =
      metrics != nullptr && metrics->is_object()
          ? metrics->find((role + ".request.micros").c_str())
          : nullptr;
  if (latency != nullptr && latency->is_object() &&
      stat_num(latency, "count") > 0) {
    out << "  latency   p50 " << io::json::number(stat_num(latency, "p50") /
                                                  1000.0)
        << "ms  p90 " << io::json::number(stat_num(latency, "p90") / 1000.0)
        << "ms  p99 " << io::json::number(stat_num(latency, "p99") / 1000.0)
        << "ms  max " << io::json::number(stat_num(latency, "max") / 1000.0)
        << "ms\n";
  }
  // In-flight requests (id-carrying solves mid-budget): what a
  // `{"op":"watch","id":N}` subscription would stream right now.
  const io::json::Value* live = document.find("inflight_requests");
  if (live != nullptr && live->is_array()) {
    for (std::size_t i = 0; i < live->size(); ++i) {
      const io::json::Value& entry = live->at(i);
      const io::json::Value* strategy = entry.find("strategy");
      out << "  in-flight id=" << io::json::number(stat_num(&entry, "id"))
          << "  "
          << (strategy != nullptr && strategy->is_string()
                  ? strategy->as_string()
                  : "?")
          << "  elapsed "
          << io::json::number(stat_num(&entry, "elapsed_ms") / 1000.0) << "s";
      const double depth = stat_num(&entry, "incumbent_depth");
      if (depth > 0)
        out << "  depth " << io::json::number(depth) << "  gap "
            << io::json::number(stat_num(&entry, "gap"));
      out << "\n";
    }
  }
  if (role == "router") {
    const io::json::Value* cluster = document.find("cluster");
    out << "  cluster   members "
        << io::json::number(stat_num(cluster, "members")) << "  epoch "
        << io::json::number(stat_num(cluster, "epoch")) << "  promotions "
        << io::json::number(stat_num(cluster, "promotions"))
        << "  replica_hits "
        << io::json::number(stat_num(cluster, "replica_hits"))
        << "  failovers " << io::json::number(stat_num(tier, "failovers"))
        << "\n";
    const io::json::Value* backends = document.find("backends");
    if (backends != nullptr && backends->is_array()) {
      for (std::size_t i = 0; i < backends->size(); ++i) {
        const io::json::Value& backend = backends->at(i);
        const io::json::Value* name = backend.find("endpoint");
        const io::json::Value* alive = backend.find("alive");
        out << "  backend   "
            << (name != nullptr && name->is_string() ? name->as_string()
                                                     : "?")
            << (alive != nullptr && alive->is_bool() && alive->as_bool()
                    ? "  up"
                    : "  DOWN")
            << "  requests " << io::json::number(stat_num(&backend,
                                                          "requests"))
            << "  failures " << io::json::number(stat_num(&backend,
                                                          "failures"))
            << "\n";
      }
    }
  }
}

/// One frame of `ebmf top --fleet`: a row per instance out of the
/// federated exposition a router's `{"op":"metrics","scope":"fleet"}`
/// returned, plus the fleet sum line the federation guarantees equals the
/// per-instance total.
void render_fleet_frame(std::ostream& out, const std::string& endpoint,
                        const std::string& body) {
  struct Row {
    double requests = 0;
    double errors = 0;
  };
  std::map<std::string, Row> rows;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    const std::string line = body.substr(pos, eol - pos);
    pos = eol + 1;
    const std::size_t brace = line.find("{instance=\"");
    if (line.empty() || line[0] == '#' || brace == std::string::npos)
      continue;
    const std::string name = line.substr(0, brace);
    const bool requests = name == "ebmf_server_requests_total" ||
                          name == "ebmf_router_requests_total";
    const bool errors = name == "ebmf_server_errors_total" ||
                        name == "ebmf_router_errors_total";
    if (!requests && !errors) continue;
    const std::size_t quote = line.find('"', brace + 11);
    const std::size_t space =
        quote == std::string::npos ? quote : line.find(' ', quote);
    if (space == std::string::npos) continue;
    const std::string instance = line.substr(brace + 11, quote - brace - 11);
    const double value = std::strtod(line.c_str() + space + 1, nullptr);
    Row& row = rows[instance];
    if (requests)
      row.requests += value;
    else
      row.errors += value;
  }
  const bool has_fleet = rows.count("fleet") != 0;
  out << "ebmf top — fleet via " << endpoint << " ("
      << (has_fleet ? rows.size() - 1 : rows.size()) << " instances)\n";
  for (const auto& [instance, row] : rows) {
    if (instance == "fleet") continue;
    out << "  " << instance << "  requests "
        << io::json::number(row.requests) << "  errors "
        << io::json::number(row.errors) << "\n";
  }
  if (has_fleet) {
    const Row& fleet = rows.find("fleet")->second;
    out << "  fleet (sum)  requests " << io::json::number(fleet.requests)
        << "  errors " << io::json::number(fleet.errors) << "\n";
  }
}

/// `ebmf top --connect=H:P [--watch=SECONDS] [--fleet]`: a live text
/// dashboard over the stats verb — rps, inflight (plus the in-flight
/// request panel), cache hit ratio, latency quantiles, and (on a router)
/// cluster/backend health. `--fleet` asks a router for federated metrics
/// instead and shows one row per instance. Without --watch it prints one
/// frame and exits (scriptable); with it, repaints in place until
/// interrupted.
int cmd_top(const Args& args, std::ostream& out, std::ostream& err) {
  FlagReader flags(args);
  const double watch = flags.num("watch", 0.0);
  const bool fleet = args.has("fleet");
  const std::string connect = args.get("connect", "");
  std::string host;
  std::uint16_t port = 0;
  if (!flags.valid(err) || watch < 0 || connect.empty() ||
      !service::net::parse_endpoint(connect, host, port)) {
    err << "usage: ebmf top --connect=HOST:PORT [--watch=SECONDS] "
           "[--fleet]\n";
    return 2;
  }
  double prev_requests = -1.0;
  double prev_seconds = 0.0;
  bool first_frame = true;
  const auto start = std::chrono::steady_clock::now();
  while (true) {
    std::string reply;
    try {
      service::Client client(host, port);
      reply = client.round_trip(fleet ? R"({"op":"metrics","scope":"fleet"})"
                                      : R"({"op":"stats"})");
    } catch (const std::exception& e) {
      err << "error: " << e.what() << "\n";
      return 1;
    }
    const double now_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    io::json::Value document;
    try {
      document = io::json::Value::parse(reply);
    } catch (const std::exception& e) {
      err << "error: bad stats reply: " << e.what() << "\n";
      return 1;
    }
    if (const io::json::Value* error = document.find("error");
        error != nullptr && error->is_string()) {
      err << "error: " << error->as_string() << "\n";
      return 1;
    }
    std::ostringstream frame;
    if (fleet) {
      const io::json::Value* body = document.find("body");
      if (body == nullptr || !body->is_string()) {
        err << "error: malformed fleet metrics reply\n";
        return 1;
      }
      render_fleet_frame(frame, connect, body->as_string());
    } else {
      render_top_frame(frame, connect, document, prev_requests, prev_seconds,
                       now_seconds);
    }
    if (watch > 0) {
      // Repaint in place: clear once to own the screen, then cursor-home
      // plus erase-to-end-of-line per row and erase-below for the rest —
      // no full-screen clear between frames, so the display never
      // flickers blank under a slow terminal.
      if (first_frame) out << "\033[2J";
      out << "\033[H";
      std::istringstream rows(frame.str());
      std::string row;
      while (std::getline(rows, row)) out << row << "\033[K\n";
      out << "\033[J";
    } else {
      out << frame.str();
    }
    first_frame = false;
    out.flush();
    if (watch <= 0) return 0;
    if (!fleet) {
      const io::json::Value* role = document.find("role");
      const io::json::Value* tier =
          role != nullptr && role->is_string()
              ? document.find(role->as_string().c_str())
              : nullptr;
      prev_requests = stat_num(tier, "requests");
      prev_seconds = now_seconds;
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(watch));
  }
}

int cmd_convert(const Args& args, std::ostream& /*out*/, std::ostream& err) {
  if (args.positional.size() != 2) {
    err << "usage: ebmf convert <in-file> <out-file>  (format by extension: "
           ".pbm, .sparse, else dense)\n";
    return 2;
  }
  io::save_matrix(args.positional[1], io::load_matrix(args.positional[0]));
  return 0;
}

}  // namespace

std::string usage() {
  return "ebmf — depth-optimal rectangular addressing (EBMF)\n"
         "\n"
         "usage: ebmf <command> [args]\n"
         "\n"
         "commands:\n"
         "  solve <file>...     partition pattern(s) via the engine facade\n"
         "  serve               long-lived line-JSON solver server (TCP)\n"
         "  route <h:p>...      canon-key sharding front tier over servers\n"
         "  client <file>...    send patterns to a running server/router\n"
         "  top                 live dashboard over a server/router's stats\n"
         "  strategies          list the registered solving strategies\n"
         "  bounds <file>       rank / fooling / trivial / packing bracket\n"
         "  fooling <file>      fooling set (--exact for maximum)\n"
         "  components <file>   preprocessing report\n"
         "  schedule <file>     AOD pulse schedule of the solution\n"
         "  generate <family>   rand | opt | gap | qldpc | atom instance\n"
         "  convert <in> <out>  rewrite between dense/sparse/PBM formats\n"
         "  encode <file>       emit the SMT decision problem as DIMACS CNF\n"
         "\n"
         "solve strategies: auto (fitted portfolio), sap, local (anytime), "
         "heuristic,\n"
         "greedy, trivial, brute, dlx, completion; run a command without "
         "arguments\n"
         "for its flags\n";
}

int run_command(const std::string& command,
                const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  try {
    const Args parsed = parse_args(args);
    if (command == "solve") return cmd_solve(parsed, out, err);
    if (command == "serve") return cmd_serve(parsed, out, err);
    if (command == "route") return cmd_route(parsed, out, err);
    if (command == "client") return cmd_client(parsed, out, err);
    if (command == "top") return cmd_top(parsed, out, err);
    if (command == "strategies") return cmd_strategies(parsed, out, err);
    if (command == "bounds") return cmd_bounds(parsed, out, err);
    if (command == "fooling") return cmd_fooling(parsed, out, err);
    if (command == "components") return cmd_components(parsed, out, err);
    if (command == "schedule") return cmd_schedule(parsed, out, err);
    if (command == "generate") return cmd_generate(parsed, out, err);
    if (command == "convert") return cmd_convert(parsed, out, err);
    if (command == "encode") return cmd_encode(parsed, out, err);
    err << "unknown command '" << command << "'\n" << usage();
    return 2;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

int run(int argc, char** argv, std::ostream& out, std::ostream& err) {
  if (argc < 2) {
    err << usage();
    return 2;
  }
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) args.emplace_back(argv[i]);
  return run_command(argv[1], args, out, err);
}

}  // namespace ebmf::cli
