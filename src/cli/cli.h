#pragma once
/// \file cli.h
/// \brief The `ebmf` command-line tool, as a testable library.
///
/// Each sub-command is a function taking parsed arguments and an output
/// stream; the `ebmf` binary (tools/ebmf.cpp) only dispatches. Solving
/// commands go through the ebmf::engine facade, so `--strategy=NAME`
/// selects any registered backend. Commands:
///
///   solve <file>...   partition pattern(s) via the engine facade
///   strategies        list the registered solving strategies
///   bounds <file>     rank / fooling / trivial / packing bracketing of r_B
///   fooling <file>    maximum (or greedy) fooling set
///   components <file> preprocessing report (dedup + component split)
///   schedule <file>   AOD pulse schedule for the solution
///   generate <fam>    emit a benchmark instance (rand | opt | gap)
///   convert <in> <out>  rewrite a pattern between formats
///
/// All commands return a process exit code (0 = success, 1 = runtime
/// failure, 2 = usage error) and never throw. Unknown strategy names and
/// malformed numeric flag values are usage errors (2), reported on `err`.

#include <iosfwd>
#include <string>
#include <vector>

namespace ebmf::cli {

/// Run one sub-command. `args` excludes the program and command names.
/// Output goes to `out`, diagnostics to `err`.
int run_command(const std::string& command,
                const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err);

/// Top-level entry used by the binary: dispatch argv.
int run(int argc, char** argv, std::ostream& out, std::ostream& err);

/// The usage text.
std::string usage();

}  // namespace ebmf::cli
