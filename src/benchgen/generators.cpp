#include "benchgen/generators.h"

#include <algorithm>
#include <set>

#include "linalg/rank.h"
#include "support/contracts.h"

namespace ebmf::benchgen {

BinaryMatrix random_matrix(std::size_t m, std::size_t n, double occupancy,
                           Rng& rng) {
  return BinaryMatrix::random(m, n, occupancy, rng);
}

KnownOptimal known_optimal_matrix(std::size_t m, std::size_t n, std::size_t k,
                                  Rng& rng) {
  EBMF_EXPECTS(k >= 1 && k <= std::min(m, n));
  // Disjoint rows: give each of the k groups a distinct seed column, then
  // scatter the remaining columns (each joins a random group or none).
  std::vector<BitVec> row_sets(k, BitVec(n));
  const auto seeds = rng.sample(n, k);
  std::vector<bool> taken(n, false);
  for (std::size_t g = 0; g < k; ++g) {
    row_sets[g].set(seeds[g]);
    taken[seeds[g]] = true;
  }
  for (std::size_t j = 0; j < n; ++j) {
    if (taken[j]) continue;
    if (rng.chance(0.25)) continue;  // column stays empty
    row_sets[rng.below(k)].set(j);
  }

  // Independent columns: resample until the k×m stack has real rank k.
  std::vector<BitVec> col_sets;
  for (int attempt = 0; attempt < 1000; ++attempt) {
    col_sets.clear();
    for (std::size_t g = 0; g < k; ++g) {
      BitVec c(m);
      for (std::size_t i = 0; i < m; ++i)
        if (rng.chance(0.5)) c.set(i);
      if (c.none()) c.set(rng.below(m));
      col_sets.push_back(std::move(c));
    }
    if (rank_mod_p(col_sets, m, 2147483647ull) == k) break;
    col_sets.clear();
  }
  EBMF_ENSURES(!col_sets.empty());  // random 0/1 vectors reach rank k quickly

  KnownOptimal out;
  out.optimal = k;
  out.matrix = BinaryMatrix(m, n);
  for (std::size_t g = 0; g < k; ++g)
    for (std::size_t i = 0; i < m; ++i)
      if (col_sets[g].test(i))
        for (std::size_t j = row_sets[g].find_first(); j < n;
             j = row_sets[g].find_next(j))
          out.matrix.set(i, j);
  EBMF_ENSURES(real_rank(out.matrix.row_vectors(), n) == k);
  return out;
}

GapInstance gap_matrix(std::size_t m, std::size_t n, std::size_t k, Rng& rng) {
  EBMF_EXPECTS(k >= 1 && 2 * k <= m);
  EBMF_EXPECTS(n >= k + 1);
  for (int attempt = 0; attempt < 1000; ++attempt) {
    // A base row with enough 1s to support k distinct splits and rank k+1.
    BitVec base(n);
    for (std::size_t j = 0; j < n; ++j)
      if (rng.chance(0.5)) base.set(j);
    if (base.count() < k + 1) continue;

    // k distinct unordered splits base = half + (base − half), halves proper.
    std::vector<BitVec> rows;
    std::set<BitVec> seen_halves;
    bool ok = true;
    for (std::size_t p = 0; p < k && ok; ++p) {
      bool found = false;
      for (int tries = 0; tries < 200; ++tries) {
        BitVec half(n);
        for (std::size_t j = base.find_first(); j < n; j = base.find_next(j))
          if (rng.chance(0.5)) half.set(j);
        if (half.none() || half == base) continue;
        BitVec other = base - half;
        if (seen_halves.count(half) != 0 || seen_halves.count(other) != 0)
          continue;
        seen_halves.insert(half);
        seen_halves.insert(other);
        rows.push_back(std::move(half));
        rows.push_back(std::move(other));
        found = true;
        break;
      }
      ok = found;
    }
    if (!ok) continue;
    if (rank_mod_p(rows, n, 2147483647ull) != k + 1) continue;

    // Fill the remaining rows with 50%-occupancy noise.
    GapInstance out;
    out.pairs = k;
    out.pair_rank = k + 1;
    while (rows.size() < m) {
      BitVec r(n);
      for (std::size_t j = 0; j < n; ++j)
        if (rng.chance(0.5)) r.set(j);
      rows.push_back(std::move(r));
    }
    out.matrix = BinaryMatrix::from_rows(std::move(rows), n);
    return out;
  }
  EBMF_ENSURES(false);  // parameters admit an instance; sampling cannot fail
  return {};
}

BinaryMatrix qldpc_block_matrix(std::size_t blocks, std::size_t width,
                                double occupancy, Rng& rng) {
  // Offset-pattern library: ~blocks/64 base patterns (at least one), each
  // contributing itself plus up to 4 split pairs (half + complement-half
  // of the base support, the family-3 mechanism). Each block then draws
  // its row from the library, so rows repeat across blocks while the
  // pair-halves keep the real rank well below the binary rank.
  const std::size_t groups = std::max<std::size_t>(1, blocks / 64);
  constexpr std::size_t kSplitsPerBase = 4;
  std::vector<BitVec> library;
  for (std::size_t g = 0; g < groups; ++g) {
    BitVec base(width);
    for (std::size_t j = 0; j < width; ++j)
      if (rng.chance(occupancy)) base.set(j);
    if (base.count() < 2) {
      // Too sparse to split — use the base pattern as-is.
      if (base.none()) base.set(rng.below(width));
      library.push_back(std::move(base));
      continue;
    }
    library.push_back(base);
    std::set<BitVec> seen;
    for (std::size_t p = 0; p < kSplitsPerBase; ++p) {
      for (int tries = 0; tries < 64; ++tries) {
        BitVec half(width);
        for (std::size_t j = base.find_first(); j < width;
             j = base.find_next(j))
          if (rng.chance(0.5)) half.set(j);
        if (half.none() || half == base) continue;
        BitVec other = base - half;
        if (seen.count(half) != 0 || seen.count(other) != 0) continue;
        seen.insert(half);
        seen.insert(other);
        library.push_back(std::move(half));
        library.push_back(std::move(other));
        break;
      }
    }
  }
  std::vector<BitVec> rows;
  rows.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b)
    rows.push_back(library[rng.below(library.size())]);
  return BinaryMatrix::from_rows(std::move(rows), width);
}

BinaryMatrix neutral_atom_matrix(std::size_t m, std::size_t n,
                                 double occupancy, Rng& rng) {
  BinaryMatrix out(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    const double row_occ =
        std::min(1.0, occupancy * (0.5 + rng.uniform01()));
    for (std::size_t j = 0; j < n; ++j)
      if (rng.chance(row_occ)) out.set(i, j);
  }
  return out;
}

}  // namespace ebmf::benchgen
