#include "benchgen/suites.h"

#include <cstdio>

namespace ebmf::benchgen {

namespace {

std::string size_occ_config(std::size_t m, std::size_t n, double occ) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%zux%zu occ=%g%%", m, n, occ * 100.0);
  return buf;
}

}  // namespace

std::vector<Instance> random_suite(std::size_t m, std::size_t n,
                                   const std::vector<double>& occupancies,
                                   std::size_t per_config,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Instance> out;
  out.reserve(occupancies.size() * per_config);
  for (double occ : occupancies) {
    for (std::size_t i = 0; i < per_config; ++i) {
      Instance inst;
      inst.family = "rand";
      inst.config = size_occ_config(m, n, occ);
      inst.matrix = random_matrix(m, n, occ, rng);
      out.push_back(std::move(inst));
    }
  }
  return out;
}

std::vector<Instance> known_optimal_suite(std::size_t m, std::size_t n,
                                          std::size_t k_max, std::size_t per_k,
                                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Instance> out;
  out.reserve(k_max * per_k);
  for (std::size_t k = 1; k <= k_max; ++k) {
    for (std::size_t i = 0; i < per_k; ++i) {
      KnownOptimal gen = known_optimal_matrix(m, n, k, rng);
      Instance inst;
      inst.family = "opt";
      inst.config = size_occ_config(m, n, 0) + " k=" + std::to_string(k);
      inst.matrix = std::move(gen.matrix);
      inst.known_optimal = gen.optimal;
      out.push_back(std::move(inst));
    }
  }
  return out;
}

std::vector<Instance> gap_suite(std::size_t m, std::size_t n,
                                const std::vector<std::size_t>& pair_counts,
                                std::size_t per_k, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Instance> out;
  out.reserve(pair_counts.size() * per_k);
  for (std::size_t k : pair_counts) {
    for (std::size_t i = 0; i < per_k; ++i) {
      GapInstance gen = gap_matrix(m, n, k, rng);
      Instance inst;
      inst.family = "gap";
      inst.config = "pairs=" + std::to_string(k);
      inst.matrix = std::move(gen.matrix);
      out.push_back(std::move(inst));
    }
  }
  return out;
}

std::vector<Instance> qldpc_suite(std::size_t blocks, std::size_t width,
                                  const std::vector<double>& occupancies,
                                  std::size_t per_config, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Instance> out;
  out.reserve(occupancies.size() * per_config);
  for (double occ : occupancies) {
    for (std::size_t i = 0; i < per_config; ++i) {
      Instance inst;
      inst.family = "qldpc";
      inst.config = size_occ_config(blocks, width, occ);
      inst.matrix = qldpc_block_matrix(blocks, width, occ, rng);
      out.push_back(std::move(inst));
    }
  }
  return out;
}

std::vector<Instance> neutral_atom_suite(std::size_t m, std::size_t n,
                                         const std::vector<double>& occupancies,
                                         std::size_t per_config,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Instance> out;
  out.reserve(occupancies.size() * per_config);
  for (double occ : occupancies) {
    for (std::size_t i = 0; i < per_config; ++i) {
      Instance inst;
      inst.family = "atom";
      inst.config = size_occ_config(m, n, occ);
      inst.matrix = neutral_atom_matrix(m, n, occ, rng);
      out.push_back(std::move(inst));
    }
  }
  return out;
}

std::vector<double> paper_occupancies_small() {
  return {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
}

std::vector<double> paper_occupancies_large() {
  return {0.01, 0.02, 0.05, 0.10, 0.20};
}

}  // namespace ebmf::benchgen
