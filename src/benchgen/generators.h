#pragma once
/// \file generators.h
/// \brief The paper's three benchmark families (§IV-A).
///
///  1. Random matrices with a chosen occupancy of 1s.
///  2. Known-optimal matrices: M = Σ_{i<k} c_i·r_iᵀ with pairwise-disjoint
///     rows r_i and ℝ-linearly-independent columns c_i, so
///     rank_ℝ(M) = r_B(M) = k and the k-rectangle partition is certified
///     optimal by Eq. 3.
///  3. Gap matrices: a random row r is split k ways into disjoint pairs
///     r = r'_p + r''_p; the 2k pair-rows have real rank k+1 (any single
///     pair reconstructs r; further pairs each add one direction) but
///     recombining other pairs' halves needs negative coefficients, which
///     EBMF forbids — so r_B exceeds the real rank and the rank lower bound
///     goes slack. Remaining rows are filled at 50% occupancy.
///
/// All generators take an explicit Rng and are deterministic given the seed.

#include <cstdint>
#include <optional>

#include "core/matrix.h"
#include "support/rng.h"

namespace ebmf::benchgen {

/// Family-1 instance: m×n Bernoulli(occupancy) matrix.
BinaryMatrix random_matrix(std::size_t m, std::size_t n, double occupancy,
                           Rng& rng);

/// Family-2 instance together with its certificate.
struct KnownOptimal {
  BinaryMatrix matrix;
  std::size_t optimal = 0;  ///< r_B(M) = rank_ℝ(M) = k by construction.
};

/// Generate a family-2 instance of size m×n with binary rank exactly `k`.
/// Preconditions: 1 ≤ k ≤ min(m, n). May resample internally until the
/// column set is independent (a handful of tries at these sizes).
KnownOptimal known_optimal_matrix(std::size_t m, std::size_t n, std::size_t k,
                                  Rng& rng);

/// Family-3 instance with its construction data.
struct GapInstance {
  BinaryMatrix matrix;
  std::size_t pairs = 0;       ///< k, the number of row pairs.
  std::size_t pair_rank = 0;   ///< Real rank of the 2k pair rows (= k+1).
};

/// Generate a family-3 instance: 2k split-pair rows + (m−2k) random rows.
/// Preconditions: 2 ≤ 2k ≤ m, n ≥ k+1 (enough columns to split).
GapInstance gap_matrix(std::size_t m, std::size_t n, std::size_t k, Rng& rng);

/// qLDPC 1D-memory instance (paper §V, Fig. 5b): `blocks` memory blocks in
/// a row, `width` qubit columns per block. Blocks share a limited library
/// of offset-dependent gate patterns (each block row is one library
/// entry), and half the library consists of split pairs — one base pattern
/// addressed across two pulses — which drives rank_ℝ below r_B exactly as
/// in the family-3 gap construction, but at 10^2–10^3 rows. This is the
/// anytime tier's home regime: the rank certificate goes slack and the
/// pattern is far past the SMT cutoffs, so exact SAP cannot certify.
BinaryMatrix qldpc_block_matrix(std::size_t blocks, std::size_t width,
                                double occupancy, Rng& rng);

/// Neutral-atom array instance: an m×n trap grid where row loading is
/// uneven — each row draws its own occupancy uniformly from
/// [0.5·occupancy, 1.5·occupancy] (clamped to 1) before Bernoulli filling,
/// modeling AOD rows that address sparse and dense atom rows alike.
BinaryMatrix neutral_atom_matrix(std::size_t m, std::size_t n,
                                 double occupancy, Rng& rng);

}  // namespace ebmf::benchgen
