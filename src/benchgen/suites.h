#pragma once
/// \file suites.h
/// \brief Assembled benchmark suites matching the paper's evaluation rows
/// (§IV-A): each suite is the exact population behind one row of Table I.
///
/// The counts default to the paper's (10 instances per random
/// configuration, 10 per known-optimal rank, 100 per gap parameter) but can
/// be scaled down for quick runs.

#include <string>
#include <vector>

#include "benchgen/generators.h"
#include "core/matrix.h"

namespace ebmf::benchgen {

/// One benchmark matrix with provenance.
struct Instance {
  std::string family;  ///< "rand", "opt", or "gap".
  std::string config;  ///< Human-readable parameters, e.g. "10x20 occ=30%".
  BinaryMatrix matrix;
  std::size_t known_optimal = 0;  ///< r_B when certified by construction (else 0).
};

/// Random suite: `per_config` matrices for each occupancy in `occupancies`.
std::vector<Instance> random_suite(std::size_t m, std::size_t n,
                                   const std::vector<double>& occupancies,
                                   std::size_t per_config, std::uint64_t seed);

/// Known-optimal suite: `per_k` matrices for each k = 1..k_max (paper:
/// 10×10, k_max = 10).
std::vector<Instance> known_optimal_suite(std::size_t m, std::size_t n,
                                          std::size_t k_max, std::size_t per_k,
                                          std::uint64_t seed);

/// Gap suite: `per_k` matrices for each k in `pair_counts` (paper: 10×10,
/// k ∈ {2,3,4,5}, 100 each).
std::vector<Instance> gap_suite(std::size_t m, std::size_t n,
                                const std::vector<std::size_t>& pair_counts,
                                std::size_t per_k, std::uint64_t seed);

/// qLDPC-block suite (family "qldpc"): `per_config` instances of
/// `blocks`×`width` for each occupancy — the 10^2–10^3-row anytime regime.
std::vector<Instance> qldpc_suite(std::size_t blocks, std::size_t width,
                                  const std::vector<double>& occupancies,
                                  std::size_t per_config, std::uint64_t seed);

/// Neutral-atom suite (family "atom"): `per_config` m×n trap grids with
/// uneven per-row loading for each nominal occupancy.
std::vector<Instance> neutral_atom_suite(std::size_t m, std::size_t n,
                                         const std::vector<double>& occupancies,
                                         std::size_t per_config,
                                         std::uint64_t seed);

/// The paper's occupancy grids.
std::vector<double> paper_occupancies_small();   ///< 10%..90% step 10.
std::vector<double> paper_occupancies_large();   ///< 1,2,5,10,20%.

}  // namespace ebmf::benchgen
