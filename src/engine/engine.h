#pragma once
/// \file engine.h
/// \brief The unified solving facade: one request type, one report type, a
/// registry of named strategies, and batch/component-parallel execution.
///
/// Before the facade the library exposed seven disconnected entry points
/// (sap_solve, completion::solve_masked, brute force, greedy rectangles,
/// row packing, DLX packing, the FTQC two-level path), each with bespoke
/// options and result structs; the CLI, benches, and examples re-implemented
/// dispatch, timing, and validation by hand. `ebmf::engine` is the single
/// stable surface they now share, in the spirit of portfolio SAT solvers.
///
/// ## Request / report schema
///
/// A SolveRequest carries:
///  * the pattern — `matrix` (dense) or `masked` (with don't-cares; takes
///    precedence when set; non-completion strategies solve its DC-as-0
///    pattern, which is always admissible),
///  * a `strategy` name resolved against the SolverRegistry ("auto" picks a
///    backend from instance size/density and falls back along a portfolio),
///  * a shared `Budget` (deadline, per-call conflict cap, node cap,
///    cancellation flag) honoured by every backend,
///  * common knobs (trials/seed/stop_at for the heuristic phase, encoding
///    and symmetry breaking for the SMT lowering, preprocess,
///    smt_cell_limit, don't-care semantics),
///  * an optional `label` echoed into the report (batch bookkeeping).
///
/// A SolveReport unifies every backend's answer:
///  * `status` — Optimal (certified), Bounded (search cut by budget; the
///    [lower_bound, upper_bound] bracket stands), Heuristic (no bound
///    search was attempted),
///  * `lower_bound` / `upper_bound` on r_B, with `partition` a valid
///    witness of the upper bound (the engine validates it),
///  * per-phase `timings` (e.g. "rank", "heuristic", "smt") and
///    `total_seconds`,
///  * backend-specific stats as key/value `telemetry` (e.g. "sat.conflicts",
///    "smt.calls", "auto.selected").
///
/// ## Registering a new strategy
///
/// \code
///   SolverRegistry registry = SolverRegistry::with_builtins();
///   registry.add("mysolver", "one-line description",
///                [](const SolveRequest& request) {
///                  SolveReport report;
///                  report.partition = ...;     // must validate!
///                  report.status = Status::Heuristic;
///                  report.lower_bound = ...;
///                  return report;
///                });
///   Engine engine(std::move(registry));
///   auto report = engine.solve(SolveRequest::dense(m, "mysolver"));
/// \endcode
///
/// Engine::solve fills label/strategy/upper_bound/total_seconds and
/// validates the partition, so strategies only produce the solver-specific
/// parts. Unknown names throw UnknownStrategyError (callers that must not
/// throw — the CLI — check registry().contains() first).

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <memory>

#include "completion/completion_solver.h"
#include "core/matrix.h"
#include "core/partition.h"
#include "core/row_packing.h"
#include "obs/trace.h"
#include "smt/label_formula.h"
#include "support/budget.h"

namespace ebmf::cache {
class ResultCache;  // service/cache.h — attached via Engine::set_cache
}  // namespace ebmf::cache

namespace ebmf::engine {

/// How strong the report's optimality claim is.
enum class Status {
  Optimal,    ///< upper_bound == r_B, certified.
  Bounded,    ///< Bound search cut by budget; lower ≤ r_B ≤ upper stands.
  Heuristic,  ///< No bound search attempted; same bracketing as above.
};

/// Lower-case name of a status ("optimal" / "bounded" / "heuristic").
const char* to_string(Status status) noexcept;

/// One solving task for Engine::solve / solve_batch.
struct SolveRequest {
  BinaryMatrix matrix;  ///< Dense pattern (ignored when `masked` is set).
  /// Masked pattern with don't-cares; takes precedence over `matrix`.
  std::optional<completion::MaskedMatrix> masked;
  std::string strategy = "auto";  ///< Registry name of the backend.
  Budget budget;                  ///< Shared resource budget.

  // -- common knobs ------------------------------------------------------
  std::size_t trials = 100;   ///< Heuristic packing passes per orientation.
  std::uint64_t seed = 1;     ///< Shuffle seed (deterministic streams).
  std::size_t stop_at = 0;    ///< Heuristic early-stop at |P| ≤ stop_at.
  RowOrder order = RowOrder::Shuffle;  ///< Packing row order.
  bool basis_update = true;   ///< Algorithm 2 basis update (lines 9–16).
  bool use_transpose = true;  ///< Also pack Mᵀ, keep the better result.
  bool preprocess = true;     ///< Dedup + component split before search.
  std::size_t smt_cell_limit = 0;  ///< Skip SMT above this many 1-cells.
  /// Width of the SMT bound race ("sap.probes"): 1 = the paper's
  /// sequential decreasing-b loop, k > 1 = race k bound probes on threads
  /// (SAT/UNSAT answers cancel the probes they make redundant), 0 = auto
  /// (hardware threads). Engaged for SMT-hard instances — when the
  /// heuristic leaves at least two unresolved bounds above the rank. The
  /// final depth/status/bounds match probes=1 whenever the budget lets the
  /// search converge.
  std::size_t probes = 1;
  smt::LabelEncoding encoding = smt::LabelEncoding::OneHot;
  bool symmetry_breaking = true;   ///< Label symmetry breaking in the CNF.
  completion::DontCareSemantics semantics =
      completion::DontCareSemantics::Free;

  std::string label;  ///< Free-form identifier echoed into the report.

  /// Binary-wire fast path (router→backend): `matrix` is already in
  /// canonical form and canon_hi/canon_lo carry its 128-bit canonical key,
  /// so a cache-attached engine skips canonicalization and lifting (the
  /// lift is the identity). Soundness does not rest on the caller being
  /// honest: the cache compares the full stored pattern on lookup and the
  /// engine validates every partition, so a wrong key can only cost
  /// hits/pollute a slot, never serve a wrong answer.
  bool pre_canonical = false;
  std::uint64_t canon_hi = 0;  ///< Canonical key, high 64 bits.
  std::uint64_t canon_lo = 0;  ///< Canonical key, low 64 bits.

  /// Optional span recorder of the traced request this solve belongs to
  /// (see obs/trace.h). When set, the engine records queue-wait, canon,
  /// cache-lookup, solve, and lift spans into it; null (the default) costs
  /// nothing. The recorder's context carries the parent span id the
  /// engine's spans attach under.
  obs::TracePtr trace;

  /// Convenience: a dense request.
  static SolveRequest dense(BinaryMatrix m, std::string strategy = "auto");

  /// Convenience: a masked request (defaults to the completion backend).
  static SolveRequest with_mask(completion::MaskedMatrix m,
                                std::string strategy = "completion");

  /// The dense view every backend can solve: the masked pattern with
  /// don't-cares read as 0, or `matrix` when no mask is set.
  [[nodiscard]] const BinaryMatrix& pattern() const;

  /// True when the request carries don't-care cells.
  [[nodiscard]] bool has_dont_cares() const {
    return masked.has_value() && masked->dont_care_count() > 0;
  }
};

/// Wall-clock spent in one named phase of a solve.
struct PhaseTiming {
  std::string phase;
  double seconds = 0.0;
};

/// The unified answer of every strategy.
struct SolveReport {
  std::string label;     ///< Copied from the request.
  std::string strategy;  ///< Strategy that produced the partition.
  Status status = Status::Heuristic;
  std::size_t lower_bound = 0;  ///< Proven lower bound on r_B (0 = none).
  std::size_t upper_bound = 0;  ///< |partition| (filled by the engine).
  /// Depth of the best incumbent the backend produced — for the anytime
  /// `local` strategy the last validated improving cover, for one-shot
  /// backends simply the final depth. The engine defaults it to
  /// upper_bound when a strategy leaves it unset.
  std::size_t incumbent_depth = 0;
  /// Certified optimality gap: upper_bound − lower_bound, clamped at 0.
  /// Invariant (engine-finalized): gap == 0 iff status == Optimal for any
  /// solve that produced a partition.
  std::size_t gap = 0;
  Partition partition;          ///< Valid witness of the upper bound.
  std::vector<PhaseTiming> timings;  ///< Per-phase wall-clock.
  double total_seconds = 0.0;
  /// Backend-specific statistics as ordered key/value pairs.
  std::vector<std::pair<std::string, std::string>> telemetry;

  /// Depth of the addressing schedule = |partition|.
  [[nodiscard]] std::size_t depth() const noexcept { return partition.size(); }

  /// True when the result is certified depth-optimal.
  [[nodiscard]] bool proven_optimal() const noexcept {
    return status == Status::Optimal;
  }

  /// Accumulate `seconds` under `phase` (merging with an existing entry).
  void add_timing(const std::string& phase, double seconds);

  /// Seconds recorded under `phase` (0 when absent).
  [[nodiscard]] double timing(const std::string& phase) const;

  /// Record a telemetry entry. Keys are deduplicated last-write-wins: a
  /// repeated key overwrites the earlier value in place instead of growing
  /// the vector, so per-attempt stats emitted inside batch/retry loops
  /// cannot grow reports unboundedly.
  void add_telemetry(std::string key, std::string value);
  void add_telemetry(std::string key, std::uint64_t value);
  void add_telemetry(std::string key, double value);

  /// The value stored under `key`, or nullptr. Binary search over a lazily
  /// maintained sorted index (rebuilt when `telemetry` was mutated
  /// directly); duplicate keys from direct mutation resolve to the first
  /// occurrence, matching the pre-index linear scan.
  [[nodiscard]] const std::string* find_telemetry(
      const std::string& key) const;

  /// Numeric telemetry lookup (0 when absent or non-numeric).
  [[nodiscard]] std::uint64_t telemetry_count(const std::string& key) const;

 private:
  /// Positions into `telemetry`, sorted by key — the lookup fast path.
  /// Lazy: valid only while telemetry_indexed_ == telemetry.size();
  /// rebuilt on the next lookup otherwise (the public vector is mutated
  /// directly by a few callers, e.g. the router's replication path).
  mutable std::vector<std::uint32_t> telemetry_index_;
  mutable std::size_t telemetry_indexed_ = 0;

  void refresh_telemetry_index() const;
  /// Index slot whose key equals `key`, or npos.
  [[nodiscard]] std::size_t telemetry_position(const std::string& key) const;
};

/// One-line JSON rendering of a report (no partition dump): status, bounds,
/// depth, timings, telemetry. Stable key order; safe to append to log files
/// one instance per line.
std::string to_json(const SolveReport& report);

/// Thrown by Engine::solve for a strategy name missing from the registry.
class UnknownStrategyError : public std::invalid_argument {
 public:
  UnknownStrategyError(const std::string& name,
                       const std::vector<std::string>& known);
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
};

/// Named solving strategies. Copyable value type; Engine owns one.
class SolverRegistry {
 public:
  using StrategyFn = std::function<SolveReport(const SolveRequest&)>;

  /// One registered backend.
  struct Entry {
    std::string name;
    std::string description;
    StrategyFn solve;
  };

  /// Register (or replace) a strategy.
  void add(std::string name, std::string description, StrategyFn solve);

  /// Entry for `name`, or nullptr.
  [[nodiscard]] const Entry* find(const std::string& name) const noexcept;

  [[nodiscard]] bool contains(const std::string& name) const noexcept {
    return find(name) != nullptr;
  }

  /// All registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// A registry pre-loaded with the built-in strategies: "sap",
  /// "heuristic", "greedy", "trivial", "brute", "dlx", "completion", and
  /// the portfolio dispatcher "auto".
  static SolverRegistry with_builtins();

 private:
  std::map<std::string, Entry> entries_;
};

/// The facade: resolves strategy names, runs them, validates and finalizes
/// reports, and executes batches across a thread pool.
class Engine {
 public:
  /// An engine over the built-in registry.
  Engine() : registry_(SolverRegistry::with_builtins()) {}

  /// An engine over a caller-assembled registry.
  explicit Engine(SolverRegistry registry) : registry_(std::move(registry)) {}

  [[nodiscard]] const SolverRegistry& registry() const noexcept {
    return registry_;
  }
  [[nodiscard]] SolverRegistry& registry() noexcept { return registry_; }

  /// Attach a canonical-pattern result cache (see service/cache.h). With a
  /// cache attached, every dense solve — including solve_batch workers and
  /// solve_split components — first canonicalizes the pattern (dedup +
  /// component split + row/col sort) and answers permutation-equivalent
  /// repeats from the cache, lifting the stored partition back through the
  /// request's own permutation record. Reports gain `cache_hit`, `canon.*`,
  /// and `cache.*` telemetry. Masked (don't-care) requests bypass the
  /// cache. Pass nullptr to detach.
  void set_cache(std::shared_ptr<cache::ResultCache> cache) {
    cache_ = std::move(cache);
  }

  /// The attached cache (null when caching is disabled).
  [[nodiscard]] const std::shared_ptr<cache::ResultCache>& cache()
      const noexcept {
    return cache_;
  }

  /// Solve one request. Throws UnknownStrategyError for unregistered
  /// names. Postcondition: the report's partition is a valid partition of
  /// the request's pattern (masked-validated when don't-cares are present)
  /// and upper_bound == depth() for nonzero patterns.
  [[nodiscard]] SolveReport solve(const SolveRequest& request) const;

  /// Solve many requests across `threads` workers (0 = hardware
  /// concurrency). Results are returned in request order regardless of
  /// completion order, and with per-request seeds the whole batch is
  /// deterministic. A request whose strategy is unknown yields a report
  /// with telemetry "error"; the batch itself never throws for that.
  [[nodiscard]] std::vector<SolveReport> solve_batch(
      const std::vector<SolveRequest>& requests, std::size_t threads = 0) const;

  /// Component-parallel solve: apply the exactness-preserving reductions
  /// (duplicate collapse + connected-component split), solve each component
  /// as an independent sub-request across the pool, and merge the lifted
  /// partitions into one report. Falls back to solve() for masked requests,
  /// and to the whole-matrix path when there is at most one component or a
  /// single giant component holds ≥90% of the ones (the split would
  /// serialize on it and only pay overhead); the decision is recorded as
  /// `split.fallback` telemetry.
  [[nodiscard]] SolveReport solve_split(const SolveRequest& request,
                                        std::size_t threads = 0) const;

 private:
  SolveReport run_checked(const SolveRequest& request) const;
  SolveReport run_cached(const SolverRegistry::Entry& entry,
                         const SolveRequest& request) const;
  SolveReport run_precanonical(const SolverRegistry::Entry& entry,
                               const SolveRequest& request) const;

  SolverRegistry registry_;
  std::shared_ptr<cache::ResultCache> cache_;
};

}  // namespace ebmf::engine
