#pragma once
/// \file thread_pool.h
/// \brief Deterministic fork-join parallel loop for the engine's batch and
/// component-parallel execution.
///
/// parallel_for(n, threads, fn) invokes fn(0..n-1) exactly once each,
/// striped dynamically over a transient pool of std::threads. Callers index
/// into pre-sized result vectors, so output order is independent of
/// scheduling — the determinism guarantee Engine::solve_batch documents.
/// Exceptions thrown by fn are captured and the lowest-index one is
/// rethrown on the calling thread after all workers join.

#include <atomic>
#include <cstddef>
#include <exception>
#include <thread>
#include <vector>

namespace ebmf::engine {

/// Number of workers to use for `jobs` tasks given a requested count
/// (0 = hardware concurrency, itself at least 1).
inline std::size_t effective_threads(std::size_t requested, std::size_t jobs) {
  std::size_t n = requested != 0
                      ? requested
                      : static_cast<std::size_t>(
                            std::thread::hardware_concurrency());
  if (n == 0) n = 1;
  return n < jobs ? n : jobs;
}

template <typename Fn>
void parallel_for(std::size_t n, std::size_t threads, Fn&& fn) {
  if (n == 0) return;
  const std::size_t workers = effective_threads(threads, n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors(n);
  const auto worker = [&]() {
    for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t t = 0; t + 1 < workers; ++t) pool.emplace_back(worker);
  worker();
  for (auto& t : pool) t.join();

  for (const auto& e : errors)
    if (e) std::rethrow_exception(e);
}

}  // namespace ebmf::engine
