// Engine: strategy resolution, report finalization/validation, batch
// execution, the component-parallel solve, and the result-cache hook.

#include <algorithm>
#include <utility>

#include "core/preprocess.h"
#include "engine/engine.h"
#include "engine/thread_pool.h"
#include "service/cache.h"
#include "service/canon.h"
#include "support/stopwatch.h"

namespace ebmf::engine {

namespace {

/// Weakest status wins when merging component reports: a single piece
/// without a bound search (Heuristic) leaves the whole answer heuristic; a
/// single budget-cut piece (Bounded) leaves it bounded.
Status merge_status(Status a, Status b) {
  if (a == Status::Heuristic || b == Status::Heuristic)
    return Status::Heuristic;
  if (a == Status::Bounded || b == Status::Bounded) return Status::Bounded;
  return Status::Optimal;
}

int certificate_strength(Status status) {
  switch (status) {
    case Status::Optimal:
      return 2;
    case Status::Bounded:
      return 1;
    case Status::Heuristic:
      return 0;
  }
  return 0;
}

/// True when `a` is a strictly better answer than `b` for the same
/// pattern: stronger certificate, then smaller depth, then tighter bound.
bool strictly_better(const SolveReport& a, const SolveReport& b) {
  if (certificate_strength(a.status) != certificate_strength(b.status))
    return certificate_strength(a.status) > certificate_strength(b.status);
  if (a.depth() != b.depth()) return a.depth() < b.depth();
  return a.lower_bound > b.lower_bound;
}

/// Settle the anytime fields once upper_bound is final. Establishes the
/// report contract: a matching bracket promotes to Optimal, Optimal pins
/// lower == upper, incumbent_depth defaults to the final depth, and
/// gap == upper − lower — so gap == 0 iff the answer is certified optimal
/// for every solve that produced a partition.
void finalize_anytime(SolveReport& report) {
  if (!report.partition.empty() &&
      report.lower_bound == report.upper_bound)
    report.status = Status::Optimal;
  if (report.status == Status::Optimal) report.lower_bound = report.upper_bound;
  if (report.incumbent_depth == 0) report.incumbent_depth = report.upper_bound;
  report.gap = report.upper_bound > report.lower_bound
                   ? report.upper_bound - report.lower_bound
                   : 0;
}

}  // namespace

SolveReport Engine::run_checked(const SolveRequest& request) const {
  const SolverRegistry::Entry* entry = registry_.find(request.strategy);
  if (entry == nullptr)
    throw UnknownStrategyError(request.strategy, registry_.names());

  // Masked requests bypass the cache: don't-care cells are not part of the
  // canonical form and two masks with equal DC-as-0 patterns differ.
  if (cache_ && !request.masked) return run_cached(*entry, request);

  Stopwatch total;
  const std::uint64_t solve_start =
      request.trace ? obs::steady_micros() : 0;
  SolveReport report = entry->solve(request);
  if (request.trace) {
    request.trace->record("engine.solve", obs::new_span_id(),
                          request.trace->context().parent_span, solve_start,
                          obs::steady_micros());
  }
  report.label = request.label;
  if (report.strategy.empty()) report.strategy = request.strategy;
  report.upper_bound = report.depth();
  report.total_seconds = total.seconds();
  finalize_anytime(report);

  // The facade's contract: every report's partition is a valid witness.
  if (request.masked) {
    std::string why;
    const bool at_most_once =
        request.semantics == completion::DontCareSemantics::AtMostOnce;
    EBMF_ENSURES(completion::validate_masked(*request.masked,
                                             report.partition, at_most_once,
                                             &why));
  } else {
    EBMF_ENSURES(
        static_cast<bool>(validate_partition(request.matrix,
                                             report.partition)));
  }
  EBMF_ENSURES(report.partition.empty() ||
               report.depth() >= report.lower_bound);
  return report;
}

SolveReport Engine::run_precanonical(const SolverRegistry::Entry& entry,
                                     const SolveRequest& request) const {
  Stopwatch total;
  const obs::TracePtr& trace = request.trace;
  const std::uint64_t span_parent = trace ? trace->context().parent_span : 0;
  // The caller (the router's binary fast path) already canonicalized: the
  // pattern arrives in canonical form with its 128-bit key, so there is no
  // canon pass here and the lift is the identity. Lookup still compares the
  // full stored pattern and every partition is validated below.
  const canon::CacheKey key =
      canon::CacheKey{request.canon_hi, request.canon_lo}.mixed_with(
          request.strategy);

  SolveReport report;
  std::uint64_t span_start = trace ? obs::steady_micros() : 0;
  std::optional<cache::CachedResult> cached =
      cache_->lookup(key, request.strategy, request.matrix);
  if (trace) {
    trace->record("engine.cache_lookup", obs::new_span_id(), span_parent,
                  span_start, obs::steady_micros());
  }
  const bool retry_for_upgrade =
      cached && cached->report.status == Status::Bounded &&
      !request.budget.exhausted() &&
      request.budget.deadline.remaining_seconds() >
          2.0 * cached->report.total_seconds + 0.01;
  bool served_from_cache = cached.has_value() && !retry_for_upgrade;
  const char* upgrade = nullptr;
  if (!served_from_cache) {
    SolveRequest sub = request;
    sub.masked.reset();
    sub.label.clear();
    span_start = trace ? obs::steady_micros() : 0;
    report = entry.solve(sub);
    if (trace) {
      trace->record("engine.solve", obs::new_span_id(), span_parent,
                    span_start, obs::steady_micros());
    }
    if (report.strategy.empty()) report.strategy = request.strategy;
    report.upper_bound = report.depth();
    report.total_seconds = total.seconds();
    cache_->insert(key, request.strategy, request.matrix, report);
    if (retry_for_upgrade) {
      if (strictly_better(cached->report, report)) {
        served_from_cache = true;
        upgrade = "retry-kept-stored";
      } else {
        upgrade = "retry";
      }
    }
  }
  if (served_from_cache) report = std::move(cached->report);
  report.add_telemetry("cache_hit", served_from_cache ? "true" : "false");
  if (upgrade != nullptr) report.add_telemetry("cache.upgrade", upgrade);

  report.label = request.label;
  if (report.strategy.empty()) report.strategy = request.strategy;
  report.upper_bound = report.depth();
  report.add_telemetry("canon.key", key.hex());
  report.add_telemetry("canon.precanonical", "true");
  const cache::CacheStats stats = cache_->counters();
  report.add_telemetry("cache.hits", stats.hits);
  report.add_telemetry("cache.misses", stats.misses);
  report.add_telemetry("cache.evictions", stats.evictions);
  report.total_seconds = total.seconds();
  finalize_anytime(report);

  EBMF_ENSURES(static_cast<bool>(
      validate_partition(request.matrix, report.partition)));
  EBMF_ENSURES(report.partition.empty() ||
               report.depth() >= report.lower_bound);
  return report;
}

SolveReport Engine::run_cached(const SolverRegistry::Entry& entry,
                               const SolveRequest& request) const {
  if (request.pre_canonical) return run_precanonical(entry, request);
  Stopwatch total;
  Stopwatch phase;
  // Traced requests get a span per stage; `span_parent` is the caller's
  // enclosing span (the server's request root), so the engine's stages
  // render as its children.
  const obs::TracePtr& trace = request.trace;
  const std::uint64_t span_parent =
      trace ? trace->context().parent_span : 0;
  std::uint64_t span_start = trace ? obs::steady_micros() : 0;
  const canon::Canonical canonical = canon::canonicalize(request.matrix);
  const double canon_seconds = phase.seconds();
  if (trace) {
    trace->record("engine.canon", obs::new_span_id(), span_parent,
                  span_start, obs::steady_micros());
  }
  // The key distinguishes strategies: a heuristic answer must not shadow a
  // pending "sap" certificate and vice versa. Tuning knobs (trials, seed,
  // encoding) are deliberately not part of the key — every stored partition
  // is a valid answer for the pattern, and the upgrade-only insert policy
  // keeps the strongest one seen.
  const canon::CacheKey key = canonical.key.mixed_with(request.strategy);

  SolveReport report;
  span_start = trace ? obs::steady_micros() : 0;
  std::optional<cache::CachedResult> cached =
      cache_->lookup(key, request.strategy, canonical.pattern);
  if (trace) {
    trace->record("engine.cache_lookup", obs::new_span_id(), span_parent,
                  span_start, obs::steady_micros());
  }
  // A Bounded entry is a budget-cut exact search; when this request can
  // afford meaningfully more time than the stored attempt spent, re-solve
  // and let the upgrade-only insert keep the better certificate. Optimal
  // entries are final, and Heuristic entries would return the same answer
  // regardless of budget (no bound search is attempted), so both serve.
  const bool retry_for_upgrade =
      cached && cached->report.status == Status::Bounded &&
      !request.budget.exhausted() &&
      request.budget.deadline.remaining_seconds() >
          2.0 * cached->report.total_seconds + 0.01;
  bool served_from_cache = cached.has_value() && !retry_for_upgrade;
  const char* upgrade = nullptr;
  if (!served_from_cache) {
    // Solve the canonical pattern itself: the cache stays in canonical
    // space, and the strategy benefits from the deduplicated instance.
    SolveRequest sub = request;
    sub.matrix = canonical.pattern;
    sub.masked.reset();
    sub.label.clear();
    span_start = trace ? obs::steady_micros() : 0;
    report = entry.solve(sub);
    if (trace) {
      trace->record("engine.solve", obs::new_span_id(), span_parent,
                    span_start, obs::steady_micros());
    }
    if (report.strategy.empty()) report.strategy = request.strategy;
    report.upper_bound = report.depth();
    report.total_seconds = total.seconds();  // what this attempt cost
    cache_->insert(key, request.strategy, canonical.pattern, report);
    if (retry_for_upgrade) {
      // A retry cut short (cancellation, contention) can come back weaker
      // than the certificate it tried to beat — never serve that.
      if (strictly_better(cached->report, report)) {
        served_from_cache = true;
        upgrade = "retry-kept-stored";
      } else {
        upgrade = "retry";
      }
    }
  }
  if (served_from_cache) report = std::move(cached->report);
  phase.restart();
  span_start = trace ? obs::steady_micros() : 0;
  report.partition = canon::lift(report.partition, canonical);
  if (trace) {
    trace->record("engine.lift", obs::new_span_id(), span_parent,
                  span_start, obs::steady_micros());
  }
  report.add_timing("cache.lift", phase.seconds());
  report.add_telemetry("cache_hit", served_from_cache ? "true" : "false");
  if (upgrade != nullptr) report.add_telemetry("cache.upgrade", upgrade);

  report.label = request.label;
  if (report.strategy.empty()) report.strategy = request.strategy;
  report.upper_bound = report.depth();
  report.add_timing("canon", canon_seconds);
  report.add_telemetry("canon.key", key.hex());
  report.add_telemetry(
      "canon.shape", std::to_string(canonical.pattern.rows()) + "x" +
                         std::to_string(canonical.pattern.cols()));
  report.add_telemetry("canon.components",
                       static_cast<std::uint64_t>(canonical.components.size()));
  const cache::CacheStats stats = cache_->counters();
  report.add_telemetry("cache.hits", stats.hits);
  report.add_telemetry("cache.misses", stats.misses);
  report.add_telemetry("cache.evictions", stats.evictions);
  report.total_seconds = total.seconds();
  finalize_anytime(report);

  EBMF_ENSURES(static_cast<bool>(
      validate_partition(request.matrix, report.partition)));
  EBMF_ENSURES(report.partition.empty() ||
               report.depth() >= report.lower_bound);
  return report;
}

SolveReport Engine::solve(const SolveRequest& request) const {
  return run_checked(request);
}

std::vector<SolveReport> Engine::solve_batch(
    const std::vector<SolveRequest>& requests, std::size_t threads) const {
  std::vector<SolveReport> reports(requests.size());
  parallel_for(requests.size(), threads, [&](std::size_t i) {
    try {
      reports[i] = run_checked(requests[i]);
    } catch (const std::exception& e) {
      SolveReport failed;
      failed.label = requests[i].label;
      failed.strategy = requests[i].strategy;
      failed.add_telemetry("error", e.what());
      reports[i] = std::move(failed);
    }
  });
  return reports;
}

SolveReport Engine::solve_split(const SolveRequest& request,
                                std::size_t threads) const {
  // Masked patterns do not split (a don't-care can bridge components of
  // the DC-as-0 pattern), and unknown names should throw before any work.
  if (request.masked) return solve(request);
  if (!registry_.contains(request.strategy))
    throw UnknownStrategyError(request.strategy, registry_.names());

  Stopwatch total;
  Stopwatch phase;
  const DuplicateReduction reduction = reduce_duplicates(request.matrix);
  const std::vector<Component> components =
      split_components(reduction.reduced);
  const double split_seconds = phase.seconds();

  // One giant component serializes the whole pool while the merge still
  // pays the reduce/lift overhead — fall back to the plain path and let the
  // strategy's own preprocessing handle the few stray ones. 90% is the
  // share past which the parallel speedup cannot reach ~1.1x.
  constexpr double kGiantComponentShare = 0.9;
  std::size_t largest_ones = 0;
  for (const Component& component : components)
    largest_ones = std::max(largest_ones, component.matrix.ones_count());
  const std::size_t total_ones = reduction.reduced.ones_count();
  if (components.size() <= 1 ||
      static_cast<double>(largest_ones) >=
          kGiantComponentShare * static_cast<double>(total_ones)) {
    SolveReport whole = run_checked(request);
    whole.add_telemetry("split.fallback", components.size() <= 1
                                              ? "single-component"
                                              : "giant-component");
    whole.add_telemetry("split.components",
                        static_cast<std::uint64_t>(components.size()));
    return whole;
  }

  std::vector<SolveRequest> subs;
  subs.reserve(components.size());
  for (std::size_t c = 0; c < components.size(); ++c) {
    SolveRequest sub = request;
    sub.matrix = components[c].matrix;
    sub.masked.reset();
    sub.preprocess = false;  // already deduplicated and split
    sub.label = request.label + "#" + std::to_string(c);
    subs.push_back(std::move(sub));
  }

  std::vector<SolveReport> reports(subs.size());
  parallel_for(subs.size(), threads,
               [&](std::size_t i) { reports[i] = run_checked(subs[i]); });

  SolveReport merged;
  merged.label = request.label;
  merged.strategy = request.strategy;
  merged.status = Status::Optimal;
  merged.add_timing("split", split_seconds);
  Partition reduced_partition;
  for (std::size_t c = 0; c < reports.size(); ++c) {
    Partition lifted =
        lift_partition(reports[c].partition, components[c],
                       reduction.reduced.rows(), reduction.reduced.cols());
    reduced_partition.insert(reduced_partition.end(),
                             std::make_move_iterator(lifted.begin()),
                             std::make_move_iterator(lifted.end()));
    merged.lower_bound += reports[c].lower_bound;
    merged.status = merge_status(merged.status, reports[c].status);
    for (const auto& t : reports[c].timings)
      merged.add_timing(t.phase, t.seconds);
  }
  merged.partition = expand_partition(reduced_partition, reduction);
  merged.upper_bound = merged.depth();
  merged.add_telemetry("split.components",
                       static_cast<std::uint64_t>(components.size()));
  merged.add_telemetry(
      "split.reduced_shape",
      std::to_string(reduction.reduced.rows()) + "x" +
          std::to_string(reduction.reduced.cols()));
  merged.total_seconds = total.seconds();
  finalize_anytime(merged);

  EBMF_ENSURES(static_cast<bool>(
      validate_partition(request.matrix, merged.partition)));
  EBMF_ENSURES(merged.partition.empty() ||
               merged.depth() >= merged.lower_bound);
  return merged;
}

}  // namespace ebmf::engine
