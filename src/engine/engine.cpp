// Engine: strategy resolution, report finalization/validation, batch
// execution, and the component-parallel solve.

#include <utility>

#include "core/preprocess.h"
#include "engine/engine.h"
#include "engine/thread_pool.h"
#include "support/stopwatch.h"

namespace ebmf::engine {

namespace {

/// Weakest status wins when merging component reports: a single piece
/// without a bound search (Heuristic) leaves the whole answer heuristic; a
/// single budget-cut piece (Bounded) leaves it bounded.
Status merge_status(Status a, Status b) {
  if (a == Status::Heuristic || b == Status::Heuristic)
    return Status::Heuristic;
  if (a == Status::Bounded || b == Status::Bounded) return Status::Bounded;
  return Status::Optimal;
}

}  // namespace

SolveReport Engine::run_checked(const SolveRequest& request) const {
  const SolverRegistry::Entry* entry = registry_.find(request.strategy);
  if (entry == nullptr)
    throw UnknownStrategyError(request.strategy, registry_.names());

  Stopwatch total;
  SolveReport report = entry->solve(request);
  report.label = request.label;
  if (report.strategy.empty()) report.strategy = request.strategy;
  report.upper_bound = report.depth();
  report.total_seconds = total.seconds();

  // The facade's contract: every report's partition is a valid witness.
  if (request.masked) {
    std::string why;
    const bool at_most_once =
        request.semantics == completion::DontCareSemantics::AtMostOnce;
    EBMF_ENSURES(completion::validate_masked(*request.masked,
                                             report.partition, at_most_once,
                                             &why));
  } else {
    EBMF_ENSURES(
        static_cast<bool>(validate_partition(request.matrix,
                                             report.partition)));
  }
  EBMF_ENSURES(report.partition.empty() ||
               report.depth() >= report.lower_bound);
  return report;
}

SolveReport Engine::solve(const SolveRequest& request) const {
  return run_checked(request);
}

std::vector<SolveReport> Engine::solve_batch(
    const std::vector<SolveRequest>& requests, std::size_t threads) const {
  std::vector<SolveReport> reports(requests.size());
  parallel_for(requests.size(), threads, [&](std::size_t i) {
    try {
      reports[i] = run_checked(requests[i]);
    } catch (const std::exception& e) {
      SolveReport failed;
      failed.label = requests[i].label;
      failed.strategy = requests[i].strategy;
      failed.add_telemetry("error", e.what());
      reports[i] = std::move(failed);
    }
  });
  return reports;
}

SolveReport Engine::solve_split(const SolveRequest& request,
                                std::size_t threads) const {
  // Masked patterns do not split (a don't-care can bridge components of
  // the DC-as-0 pattern), and unknown names should throw before any work.
  if (request.masked) return solve(request);
  if (!registry_.contains(request.strategy))
    throw UnknownStrategyError(request.strategy, registry_.names());

  Stopwatch total;
  Stopwatch phase;
  const DuplicateReduction reduction = reduce_duplicates(request.matrix);
  const std::vector<Component> components =
      split_components(reduction.reduced);
  const double split_seconds = phase.seconds();

  std::vector<SolveRequest> subs;
  subs.reserve(components.size());
  for (std::size_t c = 0; c < components.size(); ++c) {
    SolveRequest sub = request;
    sub.matrix = components[c].matrix;
    sub.masked.reset();
    sub.preprocess = false;  // already deduplicated and split
    sub.label = request.label + "#" + std::to_string(c);
    subs.push_back(std::move(sub));
  }

  std::vector<SolveReport> reports(subs.size());
  parallel_for(subs.size(), threads,
               [&](std::size_t i) { reports[i] = run_checked(subs[i]); });

  SolveReport merged;
  merged.label = request.label;
  merged.strategy = request.strategy;
  merged.status = Status::Optimal;
  merged.add_timing("split", split_seconds);
  Partition reduced_partition;
  for (std::size_t c = 0; c < reports.size(); ++c) {
    Partition lifted =
        lift_partition(reports[c].partition, components[c],
                       reduction.reduced.rows(), reduction.reduced.cols());
    reduced_partition.insert(reduced_partition.end(),
                             std::make_move_iterator(lifted.begin()),
                             std::make_move_iterator(lifted.end()));
    merged.lower_bound += reports[c].lower_bound;
    merged.status = merge_status(merged.status, reports[c].status);
    for (const auto& t : reports[c].timings)
      merged.add_timing(t.phase, t.seconds);
  }
  merged.partition = expand_partition(reduced_partition, reduction);
  merged.upper_bound = merged.depth();
  merged.add_telemetry("split.components",
                       static_cast<std::uint64_t>(components.size()));
  merged.add_telemetry(
      "split.reduced_shape",
      std::to_string(reduction.reduced.rows()) + "x" +
          std::to_string(reduction.reduced.cols()));
  merged.total_seconds = total.seconds();

  EBMF_ENSURES(static_cast<bool>(
      validate_partition(request.matrix, merged.partition)));
  EBMF_ENSURES(merged.partition.empty() ||
               merged.depth() >= merged.lower_bound);
  return merged;
}

}  // namespace ebmf::engine
