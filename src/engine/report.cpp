// SolveRequest/SolveReport helpers, JSON rendering, and the error type.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "engine/engine.h"
#include "io/json.h"

namespace ebmf::engine {

const char* to_string(Status status) noexcept {
  switch (status) {
    case Status::Optimal:
      return "optimal";
    case Status::Bounded:
      return "bounded";
    case Status::Heuristic:
      return "heuristic";
  }
  return "unknown";
}

SolveRequest SolveRequest::dense(BinaryMatrix m, std::string strategy) {
  SolveRequest request;
  request.matrix = std::move(m);
  request.strategy = std::move(strategy);
  return request;
}

SolveRequest SolveRequest::with_mask(completion::MaskedMatrix m,
                                     std::string strategy) {
  SolveRequest request;
  request.masked = std::move(m);
  request.strategy = std::move(strategy);
  return request;
}

const BinaryMatrix& SolveRequest::pattern() const {
  return masked ? masked->pattern() : matrix;
}

void SolveReport::add_timing(const std::string& phase, double seconds) {
  for (auto& t : timings) {
    if (t.phase == phase) {
      t.seconds += seconds;
      return;
    }
  }
  timings.push_back(PhaseTiming{phase, seconds});
}

double SolveReport::timing(const std::string& phase) const {
  for (const auto& t : timings)
    if (t.phase == phase) return t.seconds;
  return 0.0;
}

void SolveReport::refresh_telemetry_index() const {
  if (telemetry_indexed_ == telemetry.size()) return;
  telemetry_index_.clear();
  telemetry_index_.reserve(telemetry.size());
  for (std::uint32_t i = 0; i < telemetry.size(); ++i) {
    telemetry_index_.push_back(i);
  }
  // stable_sort keeps equal keys in document order, so after unique the
  // surviving slot per key is the earliest occurrence — the entry the old
  // first-match linear scan would have returned.
  std::stable_sort(telemetry_index_.begin(), telemetry_index_.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return telemetry[a].first < telemetry[b].first;
                   });
  telemetry_index_.erase(
      std::unique(telemetry_index_.begin(), telemetry_index_.end(),
                  [&](std::uint32_t a, std::uint32_t b) {
                    return telemetry[a].first == telemetry[b].first;
                  }),
      telemetry_index_.end());
  telemetry_indexed_ = telemetry.size();
}

std::size_t SolveReport::telemetry_position(const std::string& key) const {
  refresh_telemetry_index();
  const auto it = std::lower_bound(
      telemetry_index_.begin(), telemetry_index_.end(), key,
      [&](std::uint32_t i, const std::string& k) {
        return telemetry[i].first < k;
      });
  if (it == telemetry_index_.end() || telemetry[*it].first != key) {
    return static_cast<std::size_t>(-1);
  }
  return *it;
}

void SolveReport::add_telemetry(std::string key, std::string value) {
  const std::size_t pos = telemetry_position(key);
  if (pos != static_cast<std::size_t>(-1)) {
    telemetry[pos].second = std::move(value);  // last-write-wins dedup
    return;
  }
  telemetry.emplace_back(std::move(key), std::move(value));
  // Keep the index valid incrementally: insert the new position at its
  // sorted slot instead of forcing a full rebuild per append.
  const std::uint32_t appended =
      static_cast<std::uint32_t>(telemetry.size() - 1);
  const auto it = std::lower_bound(
      telemetry_index_.begin(), telemetry_index_.end(),
      telemetry[appended].first,
      [&](std::uint32_t i, const std::string& k) {
        return telemetry[i].first < k;
      });
  telemetry_index_.insert(it, appended);
  telemetry_indexed_ = telemetry.size();
}

void SolveReport::add_telemetry(std::string key, std::uint64_t value) {
  add_telemetry(std::move(key), std::to_string(value));
}

void SolveReport::add_telemetry(std::string key, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.6g", value);
  add_telemetry(std::move(key), std::string(buffer));
}

const std::string* SolveReport::find_telemetry(const std::string& key) const {
  const std::size_t pos = telemetry_position(key);
  return pos == static_cast<std::size_t>(-1) ? nullptr
                                             : &telemetry[pos].second;
}

std::uint64_t SolveReport::telemetry_count(const std::string& key) const {
  const std::string* value = find_telemetry(key);
  if (value == nullptr) return 0;
  return std::strtoull(value->c_str(), nullptr, 10);
}

namespace {

// One escaping/number-formatting routine repo-wide (io/json.h), so the
// wire protocol and the bench emitters can never diverge from to_json.
std::string json_escape(const std::string& s) { return io::json::escape(s); }

std::string json_number(double value) { return io::json::number(value); }

}  // namespace

std::string to_json(const SolveReport& report) {
  std::ostringstream out;
  out << "{\"label\":\"" << json_escape(report.label) << "\""
      << ",\"strategy\":\"" << json_escape(report.strategy) << "\""
      << ",\"status\":\"" << to_string(report.status) << "\""
      << ",\"depth\":" << report.depth()
      << ",\"lower_bound\":" << report.lower_bound
      << ",\"upper_bound\":" << report.upper_bound
      << ",\"incumbent_depth\":" << report.incumbent_depth
      << ",\"gap\":" << report.gap
      << ",\"total_seconds\":" << json_number(report.total_seconds);
  out << ",\"timings\":{";
  for (std::size_t i = 0; i < report.timings.size(); ++i) {
    if (i != 0) out << ",";
    out << "\"" << json_escape(report.timings[i].phase)
        << "\":" << json_number(report.timings[i].seconds);
  }
  out << "},\"telemetry\":{";
  for (std::size_t i = 0; i < report.telemetry.size(); ++i) {
    if (i != 0) out << ",";
    out << "\"" << json_escape(report.telemetry[i].first) << "\":\""
        << json_escape(report.telemetry[i].second) << "\"";
  }
  out << "}}";
  return out.str();
}

namespace {

std::string unknown_strategy_message(const std::string& name,
                                     const std::vector<std::string>& known) {
  std::string message = "unknown strategy '" + name + "' (available:";
  for (const auto& k : known) message += " " + k;
  message += ")";
  return message;
}

}  // namespace

UnknownStrategyError::UnknownStrategyError(
    const std::string& name, const std::vector<std::string>& known)
    : std::invalid_argument(unknown_strategy_message(name, known)),
      name_(name) {}

void SolverRegistry::add(std::string name, std::string description,
                         StrategyFn solve) {
  Entry entry{name, std::move(description), std::move(solve)};
  entries_[std::move(name)] = std::move(entry);
}

const SolverRegistry::Entry* SolverRegistry::find(
    const std::string& name) const noexcept {
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<std::string> SolverRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;  // std::map iteration is already sorted
}

}  // namespace ebmf::engine
