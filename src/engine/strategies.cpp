// The built-in strategies behind SolverRegistry::with_builtins().
//
// Each strategy maps a SolveRequest onto one of the library's backends and
// its backend-specific result onto the unified SolveReport: status, bounds,
// per-phase timings, and key/value telemetry. The "auto" strategy is the
// portfolio dispatcher: it picks a backend from instance size/density and
// falls back along brute → sap when the exhaustive search runs out of
// budget.

#include <algorithm>
#include <cstdio>
#include <utility>

#include "completion/completion_solver.h"
#include "core/bounds.h"
#include "core/brute_force.h"
#include "core/greedy_rect.h"
#include "core/row_packing.h"
#include "core/trivial.h"
#include "dlx/packing_dlx.h"
#include "engine/engine.h"
#include "engine/portfolio_cutoffs.h"
#include "local/local_search.h"
#include "local/probe_bounds.h"
#include "smt/sap.h"
#include "support/stopwatch.h"

namespace ebmf::engine {

namespace {

// The "auto" size/density cutoffs live in portfolio_cutoffs.h — generated
// by tools/fit_portfolio.py from bench_table1 trajectories, not hand-tuned.

/// Per-component formula guard "auto" applies when the caller set none.
constexpr std::size_t kAutoSmtCellGuard = 200;
/// 1-count ceiling for the partial-SAP refinement the `local` strategy
/// appends when budget remains and the gap is open.
constexpr std::size_t kLocalSapRefineOnes = 300;
/// Most incumbents spelled out in the local.trajectory telemetry string.
constexpr std::size_t kLocalTrajectoryCap = 32;

const char* to_string(sat::SolveResult r) noexcept {
  switch (r) {
    case sat::SolveResult::Sat:
      return "sat";
    case sat::SolveResult::Unsat:
      return "unsat";
    case sat::SolveResult::Unknown:
      return "unknown";
  }
  return "unknown";
}

RowPackingOptions packing_from(const SolveRequest& request) {
  RowPackingOptions packing;
  packing.trials = request.trials;
  packing.seed = request.seed;
  packing.stop_at = request.stop_at;
  packing.order = request.order;
  packing.basis_update = request.basis_update;
  packing.use_transpose = request.use_transpose;
  packing.budget = request.budget;
  return packing;
}

/// Shared shape of the pure-heuristic backends: rank lower bound + one
/// multi-trial packing run, Optimal exactly when they meet.
template <typename Run>
SolveReport heuristic_report(const SolveRequest& request, Run run) {
  SolveReport report;
  const BinaryMatrix& m = request.pattern();
  if (m.is_zero()) {
    report.status = Status::Optimal;
    return report;
  }
  Stopwatch phase;
  report.lower_bound = real_rank(m);
  report.add_timing("rank", phase.seconds());

  RowPackingOptions packing = packing_from(request);
  if (packing.stop_at == 0) packing.stop_at = report.lower_bound;
  phase.restart();
  RowPackingResult packed = run(m, packing);
  report.add_timing("heuristic", phase.seconds());
  report.partition = std::move(packed.partition);
  report.status = report.partition.size() == report.lower_bound
                      ? Status::Optimal
                      : Status::Heuristic;
  report.add_telemetry("packing.trials_run",
                       static_cast<std::uint64_t>(packed.trials_run));
  report.add_telemetry("packing.from_transpose",
                       packed.from_transpose ? "1" : "0");
  return report;
}

SolveReport solve_sap(const SolveRequest& request) {
  SapOptions options;
  options.packing = packing_from(request);
  options.encoder.encoding = request.encoding;
  options.encoder.symmetry_breaking = request.symmetry_breaking;
  options.budget = request.budget;
  options.preprocess = request.preprocess;
  options.smt_cell_limit = request.smt_cell_limit;
  options.probes = request.probes;
  SapResult result = sap_solve(request.pattern(), options);

  SolveReport report;
  report.partition = std::move(result.partition);
  // certified_lower carries UNSAT-proof tightenings past the rank bound
  // (the race can certify one even when the budget cuts the search).
  report.lower_bound = std::max(result.rank_lower, result.certified_lower);
  switch (result.status) {
    case SapStatus::Optimal:
      report.status = Status::Optimal;
      break;
    case SapStatus::BoundedOnly:
      report.status = Status::Bounded;
      break;
    case SapStatus::HeuristicOnly:
      report.status = Status::Heuristic;
      break;
  }
  report.add_timing("rank", result.rank_seconds);
  report.add_timing("heuristic", result.heuristic_seconds);
  report.add_timing("smt", result.smt_seconds);
  report.add_telemetry("heuristic.size",
                       static_cast<std::uint64_t>(result.heuristic_size));
  report.add_telemetry("smt.calls",
                       static_cast<std::uint64_t>(result.smt_calls.size()));
  if (!result.smt_calls.empty()) {
    report.add_telemetry("smt.last_result",
                         to_string(result.smt_calls.back().result));
    report.add_telemetry(
        "smt.last_bound",
        static_cast<std::uint64_t>(result.smt_calls.back().bound));
  }
  report.add_telemetry("sat.conflicts", result.smt_stats.conflicts);
  report.add_telemetry("sat.decisions", result.smt_stats.decisions);
  report.add_telemetry("sat.propagations", result.smt_stats.propagations);
  report.add_telemetry("sat.restarts", result.smt_stats.restarts);
  report.add_telemetry("sat.learned_clauses",
                       result.smt_stats.learned_clauses);
  report.add_telemetry("sat.arena_bytes", result.smt_stats.arena_bytes);
  report.add_telemetry("sat.arena_gcs", result.smt_stats.arena_gcs);
  if (result.probes_used > 1) {
    report.add_telemetry("sap.probes",
                         static_cast<std::uint64_t>(result.probes_used));
    report.add_telemetry("sap.probe.waves",
                         static_cast<std::uint64_t>(result.probe_waves));
    report.add_telemetry("sap.probe.calls",
                         static_cast<std::uint64_t>(result.probe_calls));
    report.add_telemetry(
        "sap.probe.cancelled",
        static_cast<std::uint64_t>(result.probes_cancelled));
  }
  return report;
}

SolveReport solve_heuristic(const SolveRequest& request) {
  return heuristic_report(request,
                          [](const BinaryMatrix& m,
                             const RowPackingOptions& options) {
                            return row_packing_ebmf(m, options);
                          });
}

SolveReport solve_greedy(const SolveRequest& request) {
  return heuristic_report(request,
                          [](const BinaryMatrix& m,
                             const RowPackingOptions& options) {
                            return greedy_rectangles(m, options);
                          });
}

SolveReport solve_dlx(const SolveRequest& request) {
  return heuristic_report(request,
                          [](const BinaryMatrix& m,
                             const RowPackingOptions& options) {
                            return dlx::row_packing_dlx(m, options);
                          });
}

SolveReport solve_trivial(const SolveRequest& request) {
  SolveReport report;
  const BinaryMatrix& m = request.pattern();
  if (m.is_zero()) {
    report.status = Status::Optimal;
    return report;
  }
  Stopwatch phase;
  report.lower_bound = real_rank(m);
  report.add_timing("rank", phase.seconds());
  phase.restart();
  report.partition = trivial_ebmf(m);
  report.add_timing("heuristic", phase.seconds());
  report.status = report.partition.size() == report.lower_bound
                      ? Status::Optimal
                      : Status::Heuristic;
  return report;
}

SolveReport solve_brute(const SolveRequest& request) {
  SolveReport report;
  const BinaryMatrix& m = request.pattern();
  if (m.is_zero()) {
    report.status = Status::Optimal;
    report.add_telemetry("brute.completed", "1");
    return report;
  }
  Stopwatch phase;
  auto exact = brute_force_ebmf(m, 0, request.budget);
  report.add_timing("brute", phase.seconds());
  if (exact.has_value()) {
    report.partition = std::move(exact->partition);
    report.lower_bound = exact->binary_rank;
    report.status = Status::Optimal;
    report.add_telemetry("brute.completed", "1");
    return report;
  }
  // Budget ran out mid-proof: fall back to the anytime bracket so the
  // report still carries a valid partition.
  phase.restart();
  report.lower_bound = real_rank(m);
  report.add_timing("rank", phase.seconds());
  RowPackingOptions packing = packing_from(request);
  if (packing.stop_at == 0) packing.stop_at = report.lower_bound;
  phase.restart();
  report.partition = row_packing_ebmf(m, packing).partition;
  report.add_timing("heuristic", phase.seconds());
  report.status = report.partition.size() == report.lower_bound
                      ? Status::Optimal
                      : Status::Bounded;
  report.add_telemetry("brute.completed", "0");
  return report;
}

/// A mask-free wrapper so the completion backend accepts dense requests.
completion::MaskedMatrix mask_free(const BinaryMatrix& m) {
  completion::MaskedMatrix masked(m.rows(), m.cols());
  for (const auto& [i, j] : m.ones())
    masked.set(i, j, completion::Cell::One);
  return masked;
}

SolveReport solve_completion(const SolveRequest& request) {
  const completion::MaskedMatrix masked =
      request.masked ? *request.masked : mask_free(request.matrix);
  completion::CompletionOptions options;
  options.semantics = request.semantics;
  options.packing = packing_from(request);
  options.budget = request.budget;
  const completion::CompletionResult result =
      completion::solve_masked(masked, options);

  SolveReport report;
  report.partition = result.partition;
  report.add_timing("completion", result.seconds);
  report.lower_bound = completion::masked_fooling_lower_bound(masked);
  if (result.proven_optimal) {
    report.status = Status::Optimal;
    // The UNSAT proof certifies the depth even when the fooling bound lags.
    report.lower_bound = report.partition.size();
  } else {
    report.status = Status::Bounded;
  }
  report.add_telemetry("completion.heuristic_size",
                       static_cast<std::uint64_t>(result.heuristic_size));
  report.add_telemetry(
      "completion.dont_cares",
      static_cast<std::uint64_t>(masked.dont_care_count()));
  report.add_telemetry("completion.semantics",
                       request.semantics ==
                               completion::DontCareSemantics::AtMostOnce
                           ? "at-most-once"
                           : "free");
  return report;
}

/// The anytime tier: probe cheap certified lower bounds, run the local
/// search under the shared budget, then (small instances only) let a
/// partial SAP pass try to close the remaining gap.
SolveReport solve_local(const SolveRequest& request) {
  SolveReport report;
  const BinaryMatrix& m = request.pattern();
  if (m.is_zero()) {
    report.status = Status::Optimal;
    return report;
  }

  Stopwatch phase;
  const local::BoundProbes probes =
      local::probe_lower_bounds(m, request.budget, request.seed);
  report.add_timing("bounds", phase.seconds());
  report.lower_bound = probes.best;
  report.add_telemetry("local.bound.source", probes.source);
  report.add_telemetry("local.bound.rank_gf2",
                       static_cast<std::uint64_t>(probes.rank_gf2));
  report.add_telemetry("local.bound.counting",
                       static_cast<std::uint64_t>(probes.counting));
  if (probes.rank_modp != 0)
    report.add_telemetry("local.bound.rank_modp",
                         static_cast<std::uint64_t>(probes.rank_modp));
  if (probes.fooling != 0)
    report.add_telemetry("local.bound.fooling",
                         static_cast<std::uint64_t>(probes.fooling));

  local::LocalSearchOptions options;
  options.seed = request.seed;
  options.budget = request.budget;
  options.stop_at = std::max(request.stop_at, report.lower_bound);
  options.max_moves = request.budget.max_nodes;  // node cap = move cap here
  options.seed_trials =
      std::clamp<std::size_t>(request.trials, std::size_t{1}, std::size_t{8});
  phase.restart();
  // Live progress: one frame when the bounds are known ("seed") and one per
  // improving incumbent ("search"). No-ops when nobody attached a sink.
  const std::uint64_t lower = report.lower_bound;
  {
    obs::ProgressFrame frame;
    frame.lower_bound = lower;
    frame.phase = "seed";
    request.budget.publish_progress(std::move(frame));
  }
  const auto on_incumbent = [&](const Partition& incumbent, double seconds) {
    obs::ProgressFrame frame;
    frame.seconds = seconds;
    frame.incumbent_depth = incumbent.size();
    frame.lower_bound = lower;
    frame.gap = incumbent.size() > lower ? incumbent.size() - lower : 0;
    frame.phase = "search";
    request.budget.publish_progress(std::move(frame));
  };
  local::LocalSearchResult result =
      local::local_search_ebmf(m, options, on_incumbent);
  report.add_timing("search", phase.seconds());
  report.partition = std::move(result.partition);
  report.incumbent_depth = report.partition.size();
  {
    // Closing frame: watchers see the search retire with its final bounds
    // even when the last incumbent landed long before the budget ran out.
    obs::ProgressFrame frame;
    frame.seconds = result.seconds;
    frame.incumbent_depth = report.incumbent_depth;
    frame.lower_bound = lower;
    frame.gap = report.incumbent_depth > lower
                    ? report.incumbent_depth - lower
                    : 0;
    frame.phase = "final";
    request.budget.publish_progress(std::move(frame));
  }

  const local::LocalSearchStats& stats = result.stats;
  report.add_telemetry("local.moves", stats.moves);
  report.add_telemetry("local.accepted", stats.accepted);
  report.add_telemetry("local.rejected", stats.rejected);
  report.add_telemetry("local.merges", stats.merges);
  report.add_telemetry("local.relocations", stats.relocations);
  report.add_telemetry("local.absorptions", stats.absorptions);
  report.add_telemetry("local.splits", stats.splits);
  report.add_telemetry("local.restarts", stats.restarts);
  report.add_telemetry("local.seed_depth",
                       static_cast<std::uint64_t>(stats.seed_depth));
  report.add_telemetry("local.incumbents",
                       static_cast<std::uint64_t>(stats.incumbents.size()));
  // The incumbent trajectory "depth@seconds;…" — every improving cover
  // with its wall-clock timestamp (capped; the count above is exact).
  std::string trajectory;
  for (std::size_t i = 0;
       i < stats.incumbents.size() && i < kLocalTrajectoryCap; ++i) {
    char entry[48];
    std::snprintf(entry, sizeof entry, "%s%zu@%.3f", i == 0 ? "" : ";",
                  stats.incumbents[i].depth, stats.incumbents[i].seconds);
    trajectory += entry;
  }
  report.add_telemetry("local.trajectory", trajectory);
  if (result.reached_stop) report.add_telemetry("local.reached_stop", "1");

  // Partial-SAP refinement: on small instances with budget to spare, an
  // exact pass can close (or narrow) the gap — its UNSAT proofs certify.
  if (!report.partition.empty() &&
      report.partition.size() > report.lower_bound &&
      m.ones_count() <= kLocalSapRefineOnes && !request.budget.exhausted()) {
    SolveRequest refine = request;
    refine.stop_at = 0;
    if (refine.smt_cell_limit == 0) refine.smt_cell_limit = kAutoSmtCellGuard;
    phase.restart();
    SolveReport exact = solve_sap(refine);
    report.add_timing("refine", phase.seconds());
    report.add_telemetry("local.refine", to_string(exact.status));
    report.lower_bound = std::max(report.lower_bound, exact.lower_bound);
    if (!exact.partition.empty() &&
        exact.partition.size() < report.partition.size())
      report.partition = std::move(exact.partition);
  }

  // Probes ran, so this is a (budget-cut) bound search: Bounded unless the
  // bracket closed — the engine's finalize promotes that case to Optimal.
  report.status = report.partition.size() == report.lower_bound
                      ? Status::Optimal
                      : Status::Bounded;
  return report;
}

SolveReport solve_auto(const SolveRequest& request) {
  const BinaryMatrix& pattern = request.pattern();
  const std::size_t ones = pattern.ones_count();
  const std::size_t cells = pattern.rows() * pattern.cols();
  const double density =
      cells == 0 ? 0.0
                 : static_cast<double>(ones) / static_cast<double>(cells);
  // Fitted three-tier routing (portfolio_cutoffs.h): exact SAP while the
  // instance is small enough to certify, a multi-probe bound race in the
  // mid band where SMT still answers but the sequential loop wastes the
  // budget, and the anytime local search beyond.
  const bool sparse = density <= kFitSparseDensity;
  const std::size_t exact_limit =
      sparse ? kFitExactSparseOnes : kFitExactDenseOnes;
  const std::size_t race_limit =
      sparse ? kFitRaceSparseOnes : kFitRaceDenseOnes;
  bool race = false;
  std::string selected;
  if (request.has_dont_cares()) {
    selected = "completion";
  } else if (ones <= kFitBruteOnesLimit) {
    selected = "brute";
  } else if (ones <= exact_limit) {
    selected = "sap";
  } else if (ones <= race_limit) {
    selected = "sap";
    race = true;
  } else {
    selected = "local";
  }

  SolveRequest sub = request;
  sub.strategy = selected;
  if (selected == "sap" && sub.smt_cell_limit == 0)
    sub.smt_cell_limit = kAutoSmtCellGuard;
  if (race && sub.probes == 1) sub.probes = 0;  // auto-width bound race

  std::string portfolio = selected;
  SolveReport report;
  if (selected == "completion") {
    report = solve_completion(sub);
  } else if (selected == "brute") {
    report = solve_brute(sub);
    const std::string* completed = report.find_telemetry("brute.completed");
    if (completed != nullptr && *completed == "0" &&
        !request.budget.exhausted()) {
      // Portfolio fallback: let SAP spend what remains of the budget.
      sub.strategy = "sap";
      if (sub.smt_cell_limit == 0) sub.smt_cell_limit = kAutoSmtCellGuard;
      selected = "sap";
      portfolio += ">sap";
      report = solve_sap(sub);
    }
  } else if (selected == "sap") {
    report = solve_sap(sub);
  } else {
    report = solve_local(sub);
  }
  report.strategy = selected;
  report.add_telemetry("auto.selected", selected);
  report.add_telemetry("auto.portfolio", portfolio);
  report.add_telemetry("auto.density", density);
  report.add_telemetry("auto.tier", selected == "local" ? "anytime"
                                    : race              ? "race"
                                                        : "exact");
  return report;
}

}  // namespace

SolverRegistry SolverRegistry::with_builtins() {
  SolverRegistry registry;
  registry.add("sap", "SMT-and-packing (Algorithm 1): exact with anytime "
                      "heuristic fallback",
               solve_sap);
  registry.add("heuristic", "multi-trial row packing (Algorithm 2) with a "
                            "rank certificate",
               solve_heuristic);
  registry.add("greedy", "greedy whole-rectangle extraction baseline",
               solve_greedy);
  registry.add("trivial", "consolidated single-row/column partition",
               solve_trivial);
  registry.add("brute", "exhaustive exact search (tiny instances, ≲20 ones)",
               solve_brute);
  registry.add("dlx", "row packing with exact-cover (DLX) decomposition",
               solve_dlx);
  registry.add("completion", "don't-care-aware SAT minimization (masked "
                             "patterns)",
               solve_completion);
  registry.add("local", "anytime local search with certified gap bounds "
                        "(large instances)",
               solve_local);
  registry.add("auto", "portfolio: backend picked by fitted size/density "
                       "cutoffs, with fallback",
               solve_auto);
  return registry;
}

}  // namespace ebmf::engine
