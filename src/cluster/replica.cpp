// Bounded per-key hit counting with threshold promotion.

#include "cluster/replica.h"

#include <algorithm>

namespace ebmf::cluster {

HotKeyTracker::HotKeyTracker(Options options) : options_(options) {
  if (options_.max_tracked == 0) options_.max_tracked = 1;
}

void HotKeyTracker::decay_locked() {
  for (auto it = hits_.begin(); it != hits_.end();) {
    it->second /= 2;
    if (it->second == 0)
      it = hits_.erase(it);
    else
      ++it;
  }
  // Promotions are sticky for warm keys, but the set must stay bounded
  // too: once it outgrows the tracking budget, demote promotions whose
  // hit count decayed all the way to zero — they have not been seen for
  // at least one full decay cycle, so losing their replica set is cheap.
  if (promoted_.size() > options_.max_tracked) {
    for (auto it = promoted_.begin(); it != promoted_.end();) {
      if (hits_.count(*it) == 0)
        it = promoted_.erase(it);
      else
        ++it;
    }
  }
}

HotKeyUpdate HotKeyTracker::record(std::uint64_t key) {
  HotKeyUpdate update;
  if (options_.promote_threshold == 0) return update;
  std::lock_guard<std::mutex> lock(mutex_);
  if (hits_.size() >= options_.max_tracked && hits_.count(key) == 0)
    decay_locked();
  const std::uint64_t count = ++hits_[key];
  update.hits = count;
  update.promoted = promoted_.count(key) != 0;
  if (!update.promoted && count >= options_.promote_threshold) {
    promoted_.insert(key);
    update.promoted = true;
    update.promoted_now = true;
  }
  return update;
}

bool HotKeyTracker::is_promoted(std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return promoted_.count(key) != 0;
}

std::size_t HotKeyTracker::promoted_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return promoted_.size();
}

std::size_t HotKeyTracker::tracked_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_.size();
}

std::vector<std::uint64_t> HotKeyTracker::promoted_keys() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<std::uint64_t>(promoted_.begin(), promoted_.end());
}

std::size_t HotKeyTracker::adopt_promoted(
    const std::vector<std::uint64_t>& keys) {
  if (options_.promote_threshold == 0) return 0;
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t fresh = 0;
  for (const std::uint64_t key : keys) {
    if (hits_.size() >= options_.max_tracked && hits_.count(key) == 0)
      decay_locked();
    // Seed the count at the threshold: decay then treats the key exactly
    // like one promoted locally instead of demoting it on the next cycle.
    std::uint64_t& count = hits_[key];
    count = std::max(count, options_.promote_threshold);
    if (promoted_.insert(key).second) ++fresh;
  }
  return fresh;
}

}  // namespace ebmf::cluster
