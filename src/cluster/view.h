#pragma once
/// \file view.h
/// \brief Epoch-stamped cluster views with atomic swap — how the router
/// changes its HRW ring under live traffic without losing a request.
///
/// A ClusterView is an immutable snapshot: the membership epoch it was
/// built from, the endpoint list, and the rendezvous ring over exactly
/// those endpoints. The router's request path takes a shared_ptr to the
/// current view once, at dispatch, and routes the whole request (including
/// every failover resubmit) against that one snapshot; ViewHolder::publish
/// swaps the pointer for new requests without disturbing anything
/// in flight. Join/leave/eviction therefore never invalidates a preference
/// list mid-walk — an in-flight request finishes against the old view
/// (a stale endpoint just resolves to no pool and is skipped, which is the
/// ordinary failover move), while the next request routes on the new
/// epoch. That extends PR 4's "no accepted request lost" guarantee across
/// membership changes, not just outages.
///
/// HRW gives the complementary half of the guarantee: a single join or
/// leave re-homes only the ~1/N of the key space the changed backend owns,
/// so every other canonical pattern keeps its backend — and that backend's
/// warm cache — across the epoch swap.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "router/ring.h"

namespace ebmf::cluster {

/// One immutable routing snapshot. Build with make(), then share freely.
class ClusterView {
 public:
  /// A view over `endpoints` stamped with `epoch`. Order does not matter
  /// (the ring hashes endpoint ids); duplicates collapse.
  static std::shared_ptr<const ClusterView> make(
      std::uint64_t epoch, const std::vector<std::string>& endpoints);

  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] bool empty() const noexcept { return ring_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }

  /// Every endpoint, ring order (stable for one view).
  [[nodiscard]] const std::vector<std::string>& endpoints() const noexcept {
    return endpoints_;
  }

  /// The key's backends in descending HRW score — the failover preference
  /// list (owner first), as endpoint strings.
  [[nodiscard]] std::vector<std::string> ordered(std::uint64_t key) const;

  /// The first `count` endpoints of ordered(key) — a promoted key's
  /// replica set (owner + count-1 secondaries).
  [[nodiscard]] std::vector<std::string> top(std::uint64_t key,
                                             std::size_t count) const;

 private:
  ClusterView() = default;

  std::uint64_t epoch_ = 0;
  router::RendezvousRing ring_;
  std::vector<std::string> endpoints_;
};

/// The router's one mutable cell: the current view, swapped atomically.
/// Readers get a shared_ptr (their snapshot outlives any number of
/// publishes); publish() is called with the membership lock held by the
/// router so epochs reach the cell in order.
class ViewHolder {
 public:
  ViewHolder() : view_(ClusterView::make(0, {})) {}

  [[nodiscard]] std::shared_ptr<const ClusterView> current() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return view_;
  }

  void publish(std::shared_ptr<const ClusterView> view) {
    std::lock_guard<std::mutex> lock(mutex_);
    view_ = std::move(view);
  }

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const ClusterView> view_;
};

}  // namespace ebmf::cluster
