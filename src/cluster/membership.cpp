// The versioned backend registry: join/leave/heartbeat bookkeeping and
// missed-heartbeat eviction.

#include "cluster/membership.h"

#include <algorithm>

namespace ebmf::cluster {

Membership::Membership(Clock::duration grace) : grace_(grace) {}

std::size_t Membership::index_of(const std::string& endpoint) const {
  for (std::size_t i = 0; i < members_.size(); ++i)
    if (members_[i].endpoint == endpoint) return i;
  return members_.size();
}

MembershipUpdate Membership::add_static(const std::string& endpoint) {
  std::lock_guard<std::mutex> lock(mutex_);
  MembershipUpdate update;
  const std::size_t i = index_of(endpoint);
  if (i < members_.size()) {
    members_[i].is_static = true;  // announce + config: config wins
  } else {
    Member member;
    member.endpoint = endpoint;
    member.is_static = true;
    member.joined_epoch = ++epoch_;
    members_.push_back(std::move(member));
    update.changed = true;
  }
  update.known = true;
  update.epoch = epoch_;
  return update;
}

MembershipUpdate Membership::join(const std::string& endpoint,
                                  Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mutex_);
  MembershipUpdate update;
  const std::size_t i = index_of(endpoint);
  if (i < members_.size()) {
    // Re-join of a live member doubles as a heartbeat.
    members_[i].last_seen = now;
  } else {
    Member member;
    member.endpoint = endpoint;
    member.joined_epoch = ++epoch_;
    member.last_seen = now;
    members_.push_back(std::move(member));
    update.changed = true;
  }
  update.known = true;
  update.epoch = epoch_;
  return update;
}

MembershipUpdate Membership::leave(const std::string& endpoint) {
  std::lock_guard<std::mutex> lock(mutex_);
  MembershipUpdate update;
  const std::size_t i = index_of(endpoint);
  if (i < members_.size()) {
    members_.erase(members_.begin() + static_cast<std::ptrdiff_t>(i));
    ++epoch_;
    update.changed = true;
  }
  update.epoch = epoch_;
  return update;
}

MembershipUpdate Membership::heartbeat(const std::string& endpoint,
                                       Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mutex_);
  MembershipUpdate update;
  const std::size_t i = index_of(endpoint);
  if (i < members_.size()) {
    members_[i].last_seen = now;
    update.known = true;
  }
  update.epoch = epoch_;
  return update;
}

std::vector<std::string> Membership::sweep(Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> evicted;
  for (std::size_t i = 0; i < members_.size();) {
    const Member& member = members_[i];
    if (!member.is_static && now - member.last_seen > grace_) {
      evicted.push_back(member.endpoint);
      members_.erase(members_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  if (!evicted.empty()) ++epoch_;
  return evicted;
}

bool Membership::adopt(const std::vector<Member>& snapshot,
                       std::uint64_t epoch, Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (epoch < epoch_) return false;
  bool changed = epoch != epoch_;
  if (!changed) {
    // Same epoch — same set version; just refresh liveness stamps so the
    // follower's sweep never races the leaseholder's.
    for (auto& member : members_)
      if (!member.is_static) member.last_seen = now;
    return false;
  }
  std::vector<Member> adopted = snapshot;
  for (auto& member : adopted)
    if (!member.is_static) member.last_seen = now;
  members_ = std::move(adopted);
  epoch_ = epoch;
  return changed;
}

std::vector<Member> Membership::members() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Member> out = members_;
  std::sort(out.begin(), out.end(), [](const Member& a, const Member& b) {
    return a.endpoint < b.endpoint;
  });
  return out;
}

std::uint64_t Membership::epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

std::size_t Membership::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return members_.size();
}

}  // namespace ebmf::cluster
