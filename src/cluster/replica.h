#pragma once
/// \file replica.h
/// \brief Hot-key tracking and promotion — the replication half of
/// `ebmf::cluster`.
///
/// The FTQC workload's repeat distribution is heavily skewed: a handful of
/// canonical lattice-surgery patterns account for most of the traffic
/// (bench_ftqc). Under pure HRW sharding each of those hot keys lives on
/// exactly one backend, so losing that backend turns the hottest patterns
/// cold at once. HotKeyTracker watches per-key hit counts on the router
/// and *promotes* keys past a threshold: a promoted key is replicated to
/// the top-R backends of its HRW order (the router fans a cache write to
/// every replica and reads from the first healthy one), so any single
/// replica death still serves the key warm — `cluster.promote` marks the
/// promoting request, `cluster.replica_hit` a read served by a
/// non-primary replica.
///
/// The tracker is deliberately approximate: counts live in a bounded map;
/// past the bound every count is halved and zeros are dropped (a coarse
/// decay that keeps genuinely hot keys promoted while shedding one-off
/// keys), so memory stays O(max_tracked) no matter how many distinct
/// patterns flow through. Promotions are sticky while a key stays warm —
/// the cost of a stale promotion is a few idempotent cache writes, while
/// the cost of a lost one is a cold hot key — but the promoted set is
/// bounded too: once it outgrows max_tracked, promotions whose count has
/// decayed to zero (unseen for a full decay cycle) are demoted.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ebmf::cluster {

/// What record() observed about one key.
struct HotKeyUpdate {
  std::uint64_t hits = 0;     ///< Tracked hit count after this request.
  bool promoted = false;      ///< The key is (now) promoted.
  bool promoted_now = false;  ///< This request crossed the threshold.
};

/// Router-side per-key hit counter with threshold promotion. Thread-safe.
class HotKeyTracker {
 public:
  struct Options {
    /// Hits before a key is promoted to replicated. 0 disables promotion
    /// entirely (fixed-fleet routers pay nothing).
    std::uint64_t promote_threshold = 8;
    /// Bound on tracked distinct keys; exceeding it halves all counts and
    /// drops zeros (promoted keys stay promoted).
    std::size_t max_tracked = 65536;
  };

  explicit HotKeyTracker(Options options);

  /// Count one request for `key` (call before any cache lookup, so L1 hits
  /// heat keys too). Returns the key's state after counting.
  HotKeyUpdate record(std::uint64_t key);

  /// True when `key` crossed the threshold at some point.
  [[nodiscard]] bool is_promoted(std::uint64_t key) const;

  [[nodiscard]] std::size_t promoted_count() const;
  [[nodiscard]] std::size_t tracked_count() const;

  /// Snapshot of the promoted set, for peer replication (delta sync).
  [[nodiscard]] std::vector<std::uint64_t> promoted_keys() const;

  /// Adopt promoted keys replicated from the fleet leaseholder: each key
  /// is marked promoted (idempotent) with its count seeded at the
  /// promotion threshold, so a follower taking over the lease serves the
  /// fleet's hot keys warm — no re-counting from zero, no re-promotion
  /// burst. Returns how many keys were newly promoted here.
  std::size_t adopt_promoted(const std::vector<std::uint64_t>& keys);

 private:
  Options options_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::uint64_t> hits_;
  std::unordered_set<std::uint64_t> promoted_;

  void decay_locked();
};

}  // namespace ebmf::cluster
