// Leader-lease arbitration: term bidding, deterministic tie-break, and
// deposition by fresher claims.

#include "cluster/lease.h"

namespace ebmf::cluster {

LeaderLease::LeaderLease(Options options) : options_(std::move(options)) {}

LeaseStatus LeaderLease::status_locked(LeaseClock::time_point now) const {
  LeaseStatus out;
  out.holder = holder_;
  out.term = term_;
  out.deadline = deadline_;
  out.valid = !holder_.empty() && now < deadline_;
  out.held = out.valid && holder_ == options_.self;
  return out;
}

LeaseStatus LeaderLease::try_acquire(LeaseClock::time_point now) {
  std::lock_guard<std::mutex> lock(mutex_);
  const bool expired = holder_.empty() || now >= deadline_;
  if (holder_ == options_.self && !expired) {
    deadline_ = now + options_.ttl;  // renewal, same term
  } else if (expired) {
    // Bid: the old holder has been silent for a full TTL (or never
    // existed), so a fresh term names us. Peers may still outbid us —
    // observe_claim/observe_report arbitrate that.
    ++term_;
    holder_ = options_.self;
    deadline_ = now + options_.ttl;
  }
  // else: someone else's lease is valid; leave it alone.
  return status_locked(now);
}

LeaderLease::Grant LeaderLease::observe_claim(const std::string& holder,
                                              std::uint64_t term,
                                              LeaseClock::time_point now) {
  std::lock_guard<std::mutex> lock(mutex_);
  Grant out;
  const bool expired = holder_.empty() || now >= deadline_;
  if (term == term_ && holder == holder_) {
    out.granted = true;  // renewal of the claim we already granted
  } else if (term > term_) {
    out.granted = true;  // fresher term always wins (monotonic terms)
  } else if (term == term_ && expired) {
    // Term tie between different bidders, and no valid lease stands in the
    // way: smaller endpoint wins deterministically. A still-valid lease is
    // never broken by a tie — the TTL silence rule is what makes the
    // single writer safe.
    out.granted = holder_.empty() || holder < holder_;
  }
  if (out.granted) {
    holder_ = holder;
    term_ = term;
    deadline_ = now + options_.ttl;
  }
  out.status = status_locked(now);
  return out;
}

void LeaderLease::observe_report(const std::string& holder,
                                 std::uint64_t term,
                                 LeaseClock::time_point now) {
  if (holder.empty()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  // A same-term report naming a *smaller* endpoint is the symmetric-bid
  // race: two routers bid the same term at once, each granted itself.
  // observe_claim never breaks the valid lease either bidder holds, so the
  // race resolves here — the larger endpoint adopts the refusal reply and
  // stands down; the smaller ignores it and keeps the term.
  const bool fresher =
      term > term_ || (term == term_ && holder < holder_);
  if (fresher) {
    holder_ = holder;
    term_ = term;
    deadline_ = now + options_.ttl;
  }
}

LeaseStatus LeaderLease::status(LeaseClock::time_point now) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return status_locked(now);
}

}  // namespace ebmf::cluster
