#pragma once
/// \file lease.h
/// \brief Leader lease for the router fleet — the election half of the
/// replicated control plane in `ebmf::cluster`.
///
/// With N routers fronting the same backends, exactly one may *write* the
/// cluster state (apply joins/leaves, sweep dead backends, bump the epoch)
/// or the replicas diverge. The coordination primitive here is a classic
/// leader lease, deliberately minimal because the replicated state is small
/// and the wire is the existing line-JSON verb set:
///
///  * A lease is `(term, holder, deadline)`. The holder renews by
///    broadcasting `{"op":"peer.lease"}` claims before the deadline; every
///    router tracks the freshest claim it has granted.
///  * When a router sees no valid lease (startup, or the holder's renewals
///    stopped for a full TTL) it bids: bump the term, name itself holder,
///    and broadcast the claim. Peers arbitrate deterministically — higher
///    term wins; on a term tie the lexicographically smaller endpoint wins
///    — so two simultaneous bids converge without extra rounds.
///  * Terms are monotonic per router and adopted from any fresher claim, so
///    a rebooted ex-leader (term reset to 0) re-enters as a follower.
///
/// This is a *lease*, not Paxos: correctness leans on the holder staying
/// silent for a TTL before anyone else may write, which is exactly the
/// failover budget the HA drill measures (takeover within one grace
/// window). All arbitration is local and lock-protected; time is injected
/// so tests drive expiry deterministically.
///
/// The replication half rides the same cadence: the holder follows each
/// renewal with `{"op":"peer.sync"}` carrying the member table, epoch, and
/// promoted hot-key set (see membership.h `adopt` / replica.h
/// `adopt_promoted`), so the router that wins the next term starts from the
/// current view — warm, not cold.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

namespace ebmf::cluster {

using LeaseClock = std::chrono::steady_clock;

/// Point-in-time view of the lease as one router believes it.
struct LeaseStatus {
  std::string holder;        ///< Endpoint of the freshest granted claim.
  std::uint64_t term = 0;    ///< Term of that claim.
  bool valid = false;        ///< The claim's deadline has not passed.
  bool held = false;         ///< valid && holder == self.
  LeaseClock::time_point deadline{};  ///< Local expiry of the claim.
};

/// One router's lease arbiter. Thread-safe.
class LeaderLease {
 public:
  struct Options {
    std::string self;  ///< Our advertised endpoint (the bid identity).
    /// Claim lifetime. Renewals must land faster than this; failover waits
    /// at least this long after the holder's last renewal.
    LeaseClock::duration ttl = std::chrono::milliseconds(1500);
  };

  explicit LeaderLease(Options options);

  /// Holder/candidate tick. Renews our own valid lease, or bids for an
  /// expired/unknown one (term + 1, holder = self). Returns the resulting
  /// status: `held` tells the caller to broadcast the claim to peers. When
  /// a *different* holder's lease is still valid this is a no-op.
  LeaseStatus try_acquire(LeaseClock::time_point now = LeaseClock::now());

  /// Arbitrate a peer's `{"op":"peer.lease"}` claim. Granted when the
  /// claim beats the freshest one we know: higher term, same claim being
  /// renewed, or any claim against an expired lease (term ties broken by
  /// smaller endpoint). A granted claim is adopted — including over our
  /// own leadership, which is how a deposed leader finds out.
  struct Grant {
    bool granted = false;
    LeaseStatus status;  ///< Post-arbitration view (what the reply carries).
  };
  Grant observe_claim(const std::string& holder, std::uint64_t term,
                      LeaseClock::time_point now = LeaseClock::now());

  /// Fold in the lease view a peer's *reply* reported (rejection of our
  /// claim, or a peer.hello exchange). Adopts fresher terms — and, on a
  /// term tie, a smaller endpoint: that is how the loser of a symmetric
  /// same-term bid race stands down voluntarily. Never grants.
  void observe_report(const std::string& holder, std::uint64_t term,
                      LeaseClock::time_point now = LeaseClock::now());

  [[nodiscard]] LeaseStatus status(
      LeaseClock::time_point now = LeaseClock::now()) const;

  [[nodiscard]] const std::string& self() const noexcept {
    return options_.self;
  }
  [[nodiscard]] LeaseClock::duration ttl() const noexcept {
    return options_.ttl;
  }

 private:
  Options options_;
  mutable std::mutex mutex_;
  std::string holder_;
  std::uint64_t term_ = 0;
  LeaseClock::time_point deadline_{};

  [[nodiscard]] LeaseStatus status_locked(LeaseClock::time_point now) const;
};

}  // namespace ebmf::cluster
