#pragma once
/// \file membership.h
/// \brief `ebmf::cluster` — the versioned backend registry behind the
/// router's live membership control plane.
///
/// PR 4 froze the backend set at router startup: failover papered over
/// outages, but a backend could never join under load and a drained one
/// stayed in the ring forever. Membership closes that gap with the
/// join/leave/heartbeat half of the control plane:
///
///  * **Announced members.** Backends announce themselves over the
///    existing line-JSON protocol (`{"op":"join","endpoint":"H:P"}`) and
///    then heartbeat periodically. A member whose heartbeats stop for
///    longer than the grace window is evicted by sweep() — the router's
///    health thread calls it on its cadence — so a crashed backend leaves
///    the ring within one grace window even though it never said goodbye.
///  * **Static members.** Endpoints configured on the command line are
///    registered as static: they never heartbeat and are never swept
///    (their liveness is the connection pool's business, exactly as in
///    PR 4), so a fixed fleet behaves identically with or without the
///    control plane.
///  * **Epochs.** Every change to the member *set* (join of a new
///    endpoint, leave, eviction) bumps a monotonic epoch. The epoch is
///    what view.h stamps on each published ring, and what join/heartbeat
///    replies carry back to backends.
///
/// All methods are thread-safe (one internal mutex; membership changes are
/// rare next to request traffic). Time is passed in explicitly so tests can
/// drive eviction deterministically; callers default to `Clock::now()`.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ebmf::cluster {

using Clock = std::chrono::steady_clock;

/// Point-in-time snapshot of one registered backend.
struct Member {
  std::string endpoint;  ///< "host:port" — the ring id.
  bool is_static = false;  ///< Configured at startup; exempt from sweep().
  std::uint64_t joined_epoch = 0;  ///< Epoch produced by this member's join.
  Clock::time_point last_seen{};   ///< Last join/heartbeat (announced only).
};

/// Outcome of one join/leave/heartbeat call.
struct MembershipUpdate {
  bool changed = false;  ///< The member *set* changed (epoch was bumped).
  bool known = false;    ///< The endpoint is (now) a registered member.
  std::uint64_t epoch = 0;  ///< Registry epoch after the call.
};

/// The versioned backend registry. One per router.
class Membership {
 public:
  /// Grace window for announced members: evicted when
  /// `now - last_seen > grace`. Static members ignore it.
  explicit Membership(Clock::duration grace = std::chrono::seconds(2));

  /// Register a startup-configured endpoint (idempotent). Bumps the epoch
  /// when the endpoint is new.
  MembershipUpdate add_static(const std::string& endpoint);

  /// `{"op":"join"}`: register an announced member, or refresh an existing
  /// one (a re-join after eviction is just a join). `changed` is true only
  /// for a genuinely new endpoint.
  MembershipUpdate join(const std::string& endpoint,
                        Clock::time_point now = Clock::now());

  /// `{"op":"leave"}`: remove a member (announced or static). `changed`
  /// when it was present.
  MembershipUpdate leave(const std::string& endpoint);

  /// `{"op":"heartbeat"}`: refresh an announced member's last-seen stamp.
  /// `known == false` means the member was evicted (or never joined) and
  /// must re-join; the epoch still reports the current registry version.
  MembershipUpdate heartbeat(const std::string& endpoint,
                             Clock::time_point now = Clock::now());

  /// Evict announced members whose heartbeats are older than the grace
  /// window. Returns the evicted endpoints (epoch bumped once per sweep
  /// that evicts anything).
  std::vector<std::string> sweep(Clock::time_point now = Clock::now());

  /// Install a replicated snapshot from the fleet leaseholder: replaces
  /// the member table and epoch wholesale. Snapshots older than the local
  /// epoch are rejected (stale sync racing a fresher one). Every adopted
  /// announced member is stamped `now`, so a follower's sweep clock starts
  /// fresh at adoption — the leaseholder is the eviction authority while
  /// its lease is valid. Returns true when the table or epoch changed.
  bool adopt(const std::vector<Member>& snapshot, std::uint64_t epoch,
             Clock::time_point now = Clock::now());

  /// Every registered member, endpoint-sorted (deterministic ring input).
  [[nodiscard]] std::vector<Member> members() const;

  [[nodiscard]] std::uint64_t epoch() const;

  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] Clock::duration grace() const noexcept { return grace_; }

 private:
  mutable std::mutex mutex_;
  std::vector<Member> members_;
  std::uint64_t epoch_ = 0;
  Clock::duration grace_;

  [[nodiscard]] std::size_t index_of(const std::string& endpoint) const;
};

}  // namespace ebmf::cluster
