// Immutable epoch-stamped routing snapshots over the rendezvous ring.

#include "cluster/view.h"

namespace ebmf::cluster {

std::shared_ptr<const ClusterView> ClusterView::make(
    std::uint64_t epoch, const std::vector<std::string>& endpoints) {
  auto view = std::shared_ptr<ClusterView>(new ClusterView());
  view->epoch_ = epoch;
  for (const std::string& endpoint : endpoints) {
    const std::size_t index = view->ring_.add(endpoint);
    if (index == view->endpoints_.size())  // not a duplicate
      view->endpoints_.push_back(endpoint);
  }
  return view;
}

std::vector<std::string> ClusterView::ordered(std::uint64_t key) const {
  std::vector<std::string> out;
  if (ring_.empty()) return out;
  const std::vector<std::size_t> order = ring_.ordered(key);
  out.reserve(order.size());
  for (const std::size_t index : order) out.push_back(ring_.id(index));
  return out;
}

std::vector<std::string> ClusterView::top(std::uint64_t key,
                                          std::size_t count) const {
  std::vector<std::string> out = ordered(key);
  if (out.size() > count) out.resize(count);
  return out;
}

}  // namespace ebmf::cluster
