// Recursive-descent JSON parsing for the wire protocol and request files.

#include "io/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace ebmf::io::json {

namespace {

[[noreturn]] void type_error(const char* wanted) {
  throw std::runtime_error(std::string("json value is not a ") + wanted);
}

}  // namespace

bool Value::as_bool() const {
  if (type_ != Type::Bool) type_error("bool");
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::Number) type_error("number");
  return number_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::String) type_error("string");
  return string_;
}

std::size_t Value::size() const {
  if (type_ != Type::Array) type_error("array");
  return array_.size();
}

const Value& Value::at(std::size_t i) const {
  if (type_ != Type::Array) type_error("array");
  return array_.at(i);
}

const Value* Value::find(const std::string& key) const {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [name, value] : object_)
    if (name == key) return &value;
  return nullptr;
}

const std::vector<std::pair<std::string, Value>>& Value::members() const {
  if (type_ != Type::Object) type_error("object");
  return object_;
}

/// The parser: one pass over the text with a cursor; depth-limited so a
/// hostile request line cannot blow the stack.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value run() {
    Value v = parse_value(0);
    skip_space();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  static constexpr std::size_t kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json at offset " + std::to_string(pos_) + ": " +
                             what);
  }

  void skip_space() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_word(const char* word) {
    std::size_t n = 0;
    while (word[n] != '\0') ++n;
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value(std::size_t depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_space();
    const char c = peek();
    if (c == '{') return parse_object(depth);
    if (c == '[') return parse_array(depth);
    if (c == '"') {
      Value v;
      v.type_ = Value::Type::String;
      v.string_ = parse_string();
      return v;
    }
    if (consume_word("true")) {
      Value v;
      v.type_ = Value::Type::Bool;
      v.bool_ = true;
      return v;
    }
    if (consume_word("false")) {
      Value v;
      v.type_ = Value::Type::Bool;
      v.bool_ = false;
      return v;
    }
    if (consume_word("null")) return Value{};
    return parse_number();
  }

  Value parse_object(std::size_t depth) {
    Value v;
    v.type_ = Value::Type::Object;
    expect('{');
    skip_space();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_space();
      std::string key = parse_string();
      skip_space();
      expect(':');
      v.object_.emplace_back(std::move(key), parse_value(depth + 1));
      skip_space();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array(std::size_t depth) {
    Value v;
    v.type_ = Value::Type::Array;
    expect('[');
    skip_space();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array_.push_back(parse_value(depth + 1));
      skip_space();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out.push_back(e);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad hex digit in \\u escape");
          }
          // BMP code point -> UTF-8 (surrogate pairs are rejected: the
          // protocol carries ASCII patterns and labels).
          if (code >= 0xd800 && code <= 0xdfff)
            fail("surrogate pairs are not supported");
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      pos_ = start;
      fail("malformed number '" + token + "'");
    }
    Value v;
    v.type_ = Value::Type::Number;
    v.number_ = value;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

Value Value::parse(const std::string& text) { return Parser(text).run(); }

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
      out += buffer;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string number(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.6g", value);
  return buffer;
}

}  // namespace ebmf::io::json
