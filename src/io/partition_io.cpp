#include "io/partition_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ebmf::io {

namespace {

void write_indices(std::ostream& out, const BitVec& bits) {
  bool first = true;
  for (std::size_t i = bits.find_first(); i < bits.size();
       i = bits.find_next(i)) {
    if (!first) out << ',';
    out << i;
    first = false;
  }
}

BitVec parse_indices(const std::string& text, std::size_t size,
                     std::size_t line_number) {
  BitVec bits(size);
  std::istringstream in(text);
  std::string token;
  while (std::getline(in, token, ',')) {
    std::size_t pos = 0;
    unsigned long value = 0;
    try {
      value = std::stoul(token, &pos);
    } catch (const std::exception&) {
      throw std::runtime_error("partition line " +
                               std::to_string(line_number) +
                               ": bad index '" + token + "'");
    }
    if (pos != token.size() || value >= size)
      throw std::runtime_error("partition line " +
                               std::to_string(line_number) +
                               ": index out of range '" + token + "'");
    bits.set(value);
  }
  if (bits.none())
    throw std::runtime_error("partition line " + std::to_string(line_number) +
                             ": empty index list");
  return bits;
}

}  // namespace

void write_partition(std::ostream& out, const Partition& p, std::size_t rows,
                     std::size_t cols) {
  out << "partition " << rows << ' ' << cols << ' ' << p.size() << '\n';
  for (const Rectangle& r : p) {
    out << "rect ";
    write_indices(out, r.rows);
    out << " x ";
    write_indices(out, r.cols);
    out << '\n';
  }
}

LoadedPartition read_partition(std::istream& in) {
  LoadedPartition out;
  std::string line;
  std::size_t line_number = 0;
  std::size_t declared = 0;
  bool have_header = false;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (!have_header) {
      if (tag != "partition")
        throw std::runtime_error("partition line " +
                                 std::to_string(line_number) +
                                 ": expected 'partition' header");
      if (!(ls >> out.rows >> out.cols >> declared))
        throw std::runtime_error("partition header: expected rows cols count");
      have_header = true;
      continue;
    }
    if (tag != "rect")
      throw std::runtime_error("partition line " + std::to_string(line_number) +
                               ": expected 'rect'");
    std::string row_part, sep, col_part;
    ls >> row_part >> sep >> col_part;
    if (sep != "x")
      throw std::runtime_error("partition line " + std::to_string(line_number) +
                               ": expected 'rows x cols'");
    out.partition.push_back(
        Rectangle{parse_indices(row_part, out.rows, line_number),
                  parse_indices(col_part, out.cols, line_number)});
  }
  if (!have_header) throw std::runtime_error("partition input: empty");
  if (out.partition.size() != declared)
    throw std::runtime_error("partition: declared " + std::to_string(declared) +
                             " rectangles, found " +
                             std::to_string(out.partition.size()));
  return out;
}

void save_partition(const std::string& path, const Partition& p,
                    std::size_t rows, std::size_t cols) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write: " + path);
  write_partition(out, p, rows, cols);
}

LoadedPartition load_partition(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open: " + path);
  return read_partition(in);
}

}  // namespace ebmf::io
