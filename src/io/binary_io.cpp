// The binary wire codec: frame payload encode/decode for solve requests,
// solve reports, and errors. See binary_io.h for the layouts.

#include "io/binary_io.h"

#include <cstring>
#include <stdexcept>
#include <vector>

#include "support/bitvec.h"

namespace ebmf::io {

namespace {

// Request flag bits (u32).
constexpr std::uint32_t kFlagIncludePartition = 1u << 0;
constexpr std::uint32_t kFlagSplit = 1u << 1;
constexpr std::uint32_t kFlagPreCanonical = 1u << 2;
constexpr std::uint32_t kFlagHasTrace = 1u << 3;
constexpr std::uint32_t kFlagNoSymmetry = 1u << 4;
constexpr std::uint32_t kFlagNoPreprocess = 1u << 5;

// Report flag bits (u32).
constexpr std::uint32_t kFlagHasPartition = 1u << 0;
constexpr std::uint32_t kFlagHasEvents = 1u << 1;
constexpr std::uint32_t kFlagHasSpans = 1u << 2;
constexpr std::uint32_t kFlagRenderPartition = 1u << 3;

// Decoder sanity bounds: a 4 MiB payload cannot legitimately exceed these,
// and checking before allocating keeps a hostile length field from turning
// into a giant allocation.
constexpr std::uint64_t kMaxDim = 1u << 20;
constexpr std::uint64_t kMaxListEntries = 1u << 20;

void put_u8(std::string& out, std::uint8_t value) {
  out.push_back(static_cast<char>(value));
}

void put_u32(std::string& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8)
    out.push_back(static_cast<char>((value >> shift) & 0xff));
}

void put_u64(std::string& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<char>((value >> shift) & 0xff));
}

void put_i64(std::string& out, std::int64_t value) {
  put_u64(out, static_cast<std::uint64_t>(value));
}

void put_f64(std::string& out, double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof value);
  std::memcpy(&bits, &value, sizeof bits);
  put_u64(out, bits);
}

void put_string(std::string& out, const std::string& value) {
  put_u32(out, static_cast<std::uint32_t>(value.size()));
  out.append(value);
}

void put_bitvec_words(std::string& out, const BitVec& bits) {
  for (const std::uint64_t word : bits.words()) put_u64(out, word);
}

/// Bounds-checked little-endian reader over one payload.
class Reader {
 public:
  Reader(const std::string& payload, const char* what)
      : data_(payload.data()), size_(payload.size()), what_(what) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t value = 0;
    for (int shift = 0; shift < 32; shift += 8)
      value |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(data_[pos_++]))
               << shift;
    return value;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 8)
      value |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(data_[pos_++]))
               << shift;
    return value;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() {
    const std::uint64_t bits = u64();
    double value = 0;
    std::memcpy(&value, &bits, sizeof value);
    return value;
  }

  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string value(data_ + pos_, n);
    pos_ += n;
    return value;
  }

  BitVec bitvec(std::size_t nbits) {
    const std::size_t words = (nbits + 63) / 64;
    need(words * 8);
    std::vector<std::uint64_t> storage(words, 0);
    for (std::size_t i = 0; i < words; ++i) storage[i] = u64();
    return BitVec::from_words(nbits, storage);
  }

  void done() const {
    if (pos_ != size_)
      fail("trailing bytes (" + std::to_string(size_ - pos_) + ")");
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error(std::string(what_) + ": " + why);
  }

  std::size_t remaining() const { return size_ - pos_; }

 private:
  void need(std::uint64_t bytes) {
    if (bytes > size_ - pos_) fail("truncated payload");
  }

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  const char* what_;
};

}  // namespace

std::string binary_request_payload(const WireRequest& wire) {
  const engine::SolveRequest& request = wire.request;
  if (request.masked.has_value())
    throw std::runtime_error(
        "binary request: masked patterns ride JSON passthrough frames");
  std::string out;
  const BinaryMatrix& pattern = request.matrix;
  out.reserve(128 + request.strategy.size() + request.label.size() +
              pattern.rows() * ((pattern.cols() + 63) / 64) * 8);
  put_i64(out, wire.id);
  std::uint32_t flags = 0;
  if (wire.include_partition) flags |= kFlagIncludePartition;
  if (wire.split) flags |= kFlagSplit;
  if (request.pre_canonical) flags |= kFlagPreCanonical;
  if (wire.has_trace) flags |= kFlagHasTrace;
  if (!request.symmetry_breaking) flags |= kFlagNoSymmetry;
  if (!request.preprocess) flags |= kFlagNoPreprocess;
  put_u32(out, flags);
  put_string(out, request.strategy);
  put_string(out, request.label);
  put_f64(out, wire.budget_seconds);
  put_i64(out, request.budget.max_conflicts);
  put_u64(out, request.budget.max_nodes);
  put_u32(out, static_cast<std::uint32_t>(request.probes));
  put_u64(out, request.trials);
  put_u64(out, request.seed);
  put_u64(out, request.stop_at);
  put_u32(out, static_cast<std::uint32_t>(wire.threads));
  put_u8(out, request.encoding == smt::LabelEncoding::Binary ? 1 : 0);
  put_u8(out,
         request.semantics == completion::DontCareSemantics::AtMostOnce ? 1
                                                                        : 0);
  if (request.pre_canonical) {
    put_u64(out, request.canon_hi);
    put_u64(out, request.canon_lo);
  }
  if (wire.has_trace) {
    put_u64(out, wire.trace.hi);
    put_u64(out, wire.trace.lo);
    put_u64(out, wire.trace.parent_span);
  }
  put_u32(out, static_cast<std::uint32_t>(pattern.rows()));
  put_u32(out, static_cast<std::uint32_t>(pattern.cols()));
  for (std::size_t i = 0; i < pattern.rows(); ++i)
    put_bitvec_words(out, pattern.row(i));
  return out;
}

WireRequest parse_binary_request(const std::string& payload) {
  Reader in(payload, "binary request");
  WireRequest wire;
  engine::SolveRequest& request = wire.request;
  wire.op = WireOp::Solve;
  wire.id = in.i64();
  if (wire.id < -1 || wire.id > static_cast<std::int64_t>(9e15))
    in.fail("field 'id' out of range");
  const std::uint32_t flags = in.u32();
  wire.include_partition = (flags & kFlagIncludePartition) != 0;
  wire.split = (flags & kFlagSplit) != 0;
  request.pre_canonical = (flags & kFlagPreCanonical) != 0;
  wire.has_trace = (flags & kFlagHasTrace) != 0;
  request.symmetry_breaking = (flags & kFlagNoSymmetry) == 0;
  request.preprocess = (flags & kFlagNoPreprocess) == 0;
  request.strategy = in.str();
  if (request.strategy.empty()) request.strategy = "auto";
  request.label = in.str();
  wire.budget_seconds = in.f64();
  if (!(wire.budget_seconds >= 0.0 && wire.budget_seconds <= 86400.0 * 365))
    in.fail("field 'budget' out of range");
  if (wire.budget_seconds > 0)
    request.budget.deadline = Deadline::after(wire.budget_seconds);
  request.budget.max_conflicts = in.i64();
  if (request.budget.max_conflicts < -1 ||
      request.budget.max_conflicts > static_cast<std::int64_t>(9e15))
    in.fail("field 'conflicts' out of range");
  request.budget.max_nodes = in.u64();
  const std::uint32_t probes = in.u32();
  if (probes > 4096) in.fail("field 'probes' out of range");
  request.probes = probes;
  request.trials = static_cast<std::size_t>(in.u64());
  if (request.trials < 1 || request.trials > 1000000000)
    in.fail("field 'trials' out of range");
  request.seed = in.u64();
  request.stop_at = static_cast<std::size_t>(in.u64());
  const std::uint32_t threads = in.u32();
  if (threads > 4096) in.fail("field 'threads' out of range");
  wire.threads = threads;
  const std::uint8_t encoding = in.u8();
  if (encoding > 1) in.fail("field 'encoding' out of range");
  request.encoding =
      encoding == 1 ? smt::LabelEncoding::Binary : smt::LabelEncoding::OneHot;
  const std::uint8_t semantics = in.u8();
  if (semantics > 1) in.fail("field 'semantics' out of range");
  request.semantics = semantics == 1
                          ? completion::DontCareSemantics::AtMostOnce
                          : completion::DontCareSemantics::Free;
  if (request.pre_canonical) {
    request.canon_hi = in.u64();
    request.canon_lo = in.u64();
  }
  if (wire.has_trace) {
    wire.trace.hi = in.u64();
    wire.trace.lo = in.u64();
    wire.trace.parent_span = in.u64();
    if (!wire.trace.valid()) in.fail("zero trace id");
  }
  const std::uint64_t rows = in.u32();
  const std::uint64_t cols = in.u32();
  if (rows == 0 || cols == 0 || rows > kMaxDim || cols > kMaxDim)
    in.fail("bad pattern shape");
  const std::uint64_t words = rows * ((cols + 63) / 64);
  if (words * 8 > in.remaining()) in.fail("truncated pattern");
  std::vector<BitVec> pattern_rows;
  pattern_rows.reserve(rows);
  for (std::uint64_t i = 0; i < rows; ++i)
    pattern_rows.push_back(in.bitvec(static_cast<std::size_t>(cols)));
  request.matrix = BinaryMatrix::from_rows(std::move(pattern_rows),
                                           static_cast<std::size_t>(cols));
  in.done();
  return wire;
}

std::string binary_report_payload(const engine::SolveReport& report,
                                  bool include_partition, std::int64_t id,
                                  std::size_t rows, std::size_t cols,
                                  const std::string& events_json,
                                  const std::string& spans_json) {
  std::string out;
  out.reserve(160 + report.telemetry.size() * 32 + events_json.size() +
              spans_json.size());
  put_i64(out, id);
  std::uint32_t flags = 0;
  // The partition always rides when the report has one: its bitset
  // encoding is compact (unlike the JSON splice), and report.depth()
  // derives from it — dropping it would decode as depth 0.
  // `include_partition` only controls the render flag, i.e. whether a
  // normalized JSON reply should splice the partition in.
  const bool with_partition =
      !report.partition.empty() && rows > 0 && cols > 0;
  if (with_partition) flags |= kFlagHasPartition;
  if (include_partition) flags |= kFlagRenderPartition;
  if (!events_json.empty()) flags |= kFlagHasEvents;
  if (!spans_json.empty()) flags |= kFlagHasSpans;
  put_u32(out, flags);
  put_string(out, report.label);
  put_string(out, report.strategy);
  put_u8(out, report.status == engine::Status::Optimal   ? 0
              : report.status == engine::Status::Bounded ? 1
                                                         : 2);
  put_u64(out, report.lower_bound);
  put_u64(out, report.upper_bound);
  put_u64(out, report.incumbent_depth);
  put_u64(out, report.gap);
  put_f64(out, report.total_seconds);
  put_u32(out, static_cast<std::uint32_t>(report.timings.size()));
  for (const engine::PhaseTiming& timing : report.timings) {
    put_string(out, timing.phase);
    put_f64(out, timing.seconds);
  }
  put_u32(out, static_cast<std::uint32_t>(report.telemetry.size()));
  for (const auto& [key, value] : report.telemetry) {
    put_string(out, key);
    put_string(out, value);
  }
  put_u32(out, with_partition ? static_cast<std::uint32_t>(rows) : 0);
  put_u32(out, with_partition ? static_cast<std::uint32_t>(cols) : 0);
  if (with_partition) {
    put_u32(out, static_cast<std::uint32_t>(report.partition.size()));
    for (const Rectangle& rect : report.partition) {
      put_bitvec_words(out, rect.rows);
      put_bitvec_words(out, rect.cols);
    }
  }
  if (!events_json.empty()) put_string(out, events_json);
  if (!spans_json.empty()) put_string(out, spans_json);
  return out;
}

BinaryReply parse_binary_report(const std::string& payload) {
  Reader in(payload, "binary report");
  BinaryReply reply;
  engine::SolveReport& report = reply.report;
  reply.id = in.i64();
  const std::uint32_t flags = in.u32();
  reply.render_partition = (flags & kFlagRenderPartition) != 0;
  report.label = in.str();
  report.strategy = in.str();
  const std::uint8_t status = in.u8();
  if (status > 2) in.fail("bad status");
  report.status = status == 0   ? engine::Status::Optimal
                  : status == 1 ? engine::Status::Bounded
                                : engine::Status::Heuristic;
  report.lower_bound = static_cast<std::size_t>(in.u64());
  report.upper_bound = static_cast<std::size_t>(in.u64());
  report.incumbent_depth = static_cast<std::size_t>(in.u64());
  report.gap = static_cast<std::size_t>(in.u64());
  report.total_seconds = in.f64();
  const std::uint32_t n_timings = in.u32();
  if (n_timings > kMaxListEntries) in.fail("bad timing count");
  for (std::uint32_t i = 0; i < n_timings; ++i) {
    std::string phase = in.str();
    const double seconds = in.f64();
    report.add_timing(phase, seconds);
  }
  const std::uint32_t n_telemetry = in.u32();
  if (n_telemetry > kMaxListEntries) in.fail("bad telemetry count");
  for (std::uint32_t i = 0; i < n_telemetry; ++i) {
    std::string key = in.str();
    std::string value = in.str();
    report.add_telemetry(std::move(key), std::move(value));
  }
  const std::uint64_t rows = in.u32();
  const std::uint64_t cols = in.u32();
  if (rows > kMaxDim || cols > kMaxDim) in.fail("bad pattern shape");
  reply.rows = static_cast<std::size_t>(rows);
  reply.cols = static_cast<std::size_t>(cols);
  if ((flags & kFlagHasPartition) != 0) {
    if (rows == 0 || cols == 0) in.fail("partition without a pattern shape");
    const std::uint32_t n_rects = in.u32();
    if (n_rects > kMaxListEntries) in.fail("bad partition size");
    const std::uint64_t rect_bytes =
        (((rows + 63) / 64) + ((cols + 63) / 64)) * 8;
    if (n_rects * rect_bytes > in.remaining()) in.fail("truncated partition");
    report.partition.reserve(n_rects);
    for (std::uint32_t t = 0; t < n_rects; ++t) {
      BitVec rect_rows = in.bitvec(static_cast<std::size_t>(rows));
      BitVec rect_cols = in.bitvec(static_cast<std::size_t>(cols));
      report.partition.push_back(
          Rectangle{std::move(rect_rows), std::move(rect_cols)});
    }
  }
  if ((flags & kFlagHasEvents) != 0) reply.events_json = in.str();
  if ((flags & kFlagHasSpans) != 0) reply.spans_json = in.str();
  in.done();
  return reply;
}

std::int64_t binary_salvage_id(const std::string& payload) noexcept {
  if (payload.size() < 8) return -1;
  std::uint64_t raw = 0;
  for (int i = 7; i >= 0; --i)
    raw = (raw << 8) |
          static_cast<unsigned char>(payload[static_cast<std::size_t>(i)]);
  const std::int64_t id = static_cast<std::int64_t>(raw);
  return id >= 0 ? id : -1;
}

std::string binary_error_payload(std::int64_t id, const std::string& message,
                                 const std::string& label) {
  std::string out;
  out.reserve(24 + message.size() + label.size());
  put_i64(out, id);
  put_string(out, message);
  put_string(out, label);
  return out;
}

BinaryError parse_binary_error(const std::string& payload) {
  Reader in(payload, "binary error");
  BinaryError error;
  error.id = in.i64();
  error.message = in.str();
  error.label = in.str();
  in.done();
  return error;
}

}  // namespace ebmf::io
