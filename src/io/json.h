#pragma once
/// \file json.h
/// \brief A minimal JSON value type and recursive-descent parser.
///
/// The service wire protocol and the CLI's `--requests` batch files are
/// line-JSON; the repo deliberately carries no third-party JSON dependency,
/// so this is the small subset the protocol needs: the six JSON value
/// kinds, object key lookup with insertion order preserved, and parse
/// errors as std::runtime_error with a byte offset. Numbers are stored as
/// double (the protocol's integers stay well inside the 53-bit exact
/// range). Strings support the standard escapes; \uXXXX accepts Basic
/// Multilingual Plane code points and encodes them as UTF-8.
///
/// Writing JSON stays with the bespoke renderers (engine::to_json,
/// io::wire_request_json): output is append-only string building and does
/// not need a tree.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace ebmf::io::json {

/// One JSON value (tree-owning).
class Value {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Value() = default;

  /// Parse a complete JSON document; trailing non-space input is an error.
  /// Throws std::runtime_error("json at offset N: ...") on malformed text.
  static Value parse(const std::string& text);

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::Bool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::Number;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::String;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::Array; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::Object;
  }

  /// Typed accessors; throw std::runtime_error on a kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Array access. Preconditions: is_array(), i < size().
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const Value& at(std::size_t i) const;

  /// Object lookup: the value under `key`, or nullptr when absent (or when
  /// this value is not an object — absent and mistyped read the same for
  /// optional protocol fields).
  [[nodiscard]] const Value* find(const std::string& key) const;

  /// Object members in document order. Precondition: is_object().
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& members()
      const;

 private:
  friend class Parser;

  Type type_ = Type::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

/// Escape a string for embedding in a JSON document (no surrounding
/// quotes): ", \, and control characters. The one escaping routine shared
/// by every JSON renderer in the repo (engine::to_json, the wire protocol,
/// the bench emitters).
std::string escape(const std::string& s);

/// Render a finite double as a compact JSON number token (%.6g).
std::string number(double value);

}  // namespace ebmf::io::json
