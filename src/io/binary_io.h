#pragma once
/// \file binary_io.h
/// \brief The binary wire codec — the frame payloads that replace line-JSON
/// on an upgraded connection (net/frame.h carries the framing itself).
///
/// Three payload encodings, all little-endian:
///
///  * **Solve request** (frame type 1): correlation id, flags, strategy,
///    label, the full budget/knob set, an optional 128-bit canonical key
///    (the router→backend fast path: the router already canonicalized, so
///    the backend can skip canonicalization and lifting entirely), an
///    optional trace context, and the pattern as packed row bitsets — the
///    exact words `BitVec::words()` stores, so encoding a 48×64 pattern is
///    a few memcpys instead of thousands of character writes.
///  * **Solve report** (frame type 2): the complete `engine::SolveReport`
///    (status, bounds, incumbent, gap, timings, telemetry, optional
///    partition as packed bitsets) plus the raw JSON `events`/`trace.spans`
///    splices line replies carry, so a binary reply loses no fidelity.
///  * **Error** (frame type 3): id + message + label, mirroring
///    `net::error_json`.
///
/// Masked patterns and every admin verb ride a type-4 JSON-passthrough
/// frame unchanged; only the solve hot path gets a bespoke encoding.
///
/// Decoders throw std::runtime_error on malformed payloads (truncation,
/// out-of-range fields) and never trust wire lengths before bounds-checking
/// them against the remaining payload.

#include <cstdint>
#include <string>

#include "engine/engine.h"
#include "io/request_io.h"

namespace ebmf::io {

/// Encode a dense solve request as a type-1 frame payload. Throws for
/// masked requests (those ride type-4 JSON frames).
[[nodiscard]] std::string binary_request_payload(const WireRequest& wire);

/// Decode a type-1 payload. The result has op == WireOp::Solve.
[[nodiscard]] WireRequest parse_binary_request(const std::string& payload);

/// Best-effort id recovery from a (possibly malformed) type-1/2/3 payload —
/// the id is always the first 8 bytes, so an error reply can still
/// correlate. -1 when the payload is too short or the value is negative.
[[nodiscard]] std::int64_t binary_salvage_id(
    const std::string& payload) noexcept;

/// A decoded type-2 (report) frame payload.
struct BinaryReply {
  std::int64_t id = -1;
  engine::SolveReport report;
  std::size_t rows = 0;  ///< Pattern shape the partition bitsets are sized to
  std::size_t cols = 0;  ///< (0×0 when the reply carries no partition).
  /// Whether the request asked for the partition — i.e. whether the line
  /// protocol would have rendered it. The partition itself rides whenever
  /// the report has one (report.depth() derives from it).
  bool render_partition = false;
  std::string events_json;  ///< Raw `"events"` array text ("" = absent).
  std::string spans_json;   ///< Raw `"trace" spans` array text ("" = absent).
};

/// Encode a report as a type-2 frame payload. The partition always rides
/// when the report has one and `rows`/`cols` (the pattern shape its bitsets
/// are sized to) are nonzero; `include_partition` sets the render flag —
/// whether the line protocol would have spliced the partition into the
/// reply. `events_json`/`spans_json` carry the raw array texts a line
/// reply would splice in ("" = omit).
[[nodiscard]] std::string binary_report_payload(
    const engine::SolveReport& report, bool include_partition,
    std::int64_t id, std::size_t rows, std::size_t cols,
    const std::string& events_json = "", const std::string& spans_json = "");

/// Decode a type-2 payload.
[[nodiscard]] BinaryReply parse_binary_report(const std::string& payload);

/// A decoded type-3 (error) frame payload.
struct BinaryError {
  std::int64_t id = -1;
  std::string message;
  std::string label;
};

/// Encode / decode a type-3 error payload.
[[nodiscard]] std::string binary_error_payload(std::int64_t id,
                                               const std::string& message,
                                               const std::string& label);
[[nodiscard]] BinaryError parse_binary_error(const std::string& payload);

}  // namespace ebmf::io
