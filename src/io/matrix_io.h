#pragma once
/// \file matrix_io.h
/// \brief Reading and writing addressing patterns.
///
/// Three interchange formats are supported, auto-detected on load:
///
///  * **dense** — one row per line of '0'/'1' (optionally '*'/'x' for
///    don't-cares); comment lines start with '#';
///  * **sparse** — a header `sparse <rows> <cols>` followed by one `i j`
///    pair per line for each 1-cell (0-based);
///  * **PBM (P1)** — the portable-bitmap ASCII format, so patterns can be
///    drawn in any image editor (1 = black = addressed).
///
/// Writers exist for all three; `save_matrix` picks by extension
/// (.pbm → P1, .sparse → sparse, else dense).

#include <iosfwd>
#include <string>

#include "completion/masked.h"
#include "core/matrix.h"

namespace ebmf::io {

/// Parse a pattern from any supported format (auto-detected).
/// Throws std::runtime_error with a line-numbered message on bad input.
BinaryMatrix read_matrix(std::istream& in);

/// Parse from a file path. Throws std::runtime_error if unreadable.
BinaryMatrix load_matrix(const std::string& path);

/// Parse a masked pattern (dense format with '*'/'x' don't-cares only).
completion::MaskedMatrix read_masked(std::istream& in);

/// Load a masked pattern from a file path.
completion::MaskedMatrix load_masked(const std::string& path);

/// Write as dense text.
void write_dense(std::ostream& out, const BinaryMatrix& m);

/// Write as `sparse rows cols` + one `i j` per 1-cell.
void write_sparse(std::ostream& out, const BinaryMatrix& m);

/// Write as PBM P1.
void write_pbm(std::ostream& out, const BinaryMatrix& m);

/// Write to a file, format chosen by extension (see file comment).
void save_matrix(const std::string& path, const BinaryMatrix& m);

}  // namespace ebmf::io
