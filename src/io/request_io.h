#pragma once
/// \file request_io.h
/// \brief The line-JSON solve-request format — one request per line —
/// shared by the `ebmf::service` wire protocol, the `ebmf client`
/// subcommand, and `ebmf solve --requests=FILE` batch files.
///
/// Request schema (all fields except "pattern" optional):
///
/// ```json
/// {"pattern": "110;011;111",        // rows joined by ';' — or an array
///                                   // of row strings; '*'/'x' cells make
///                                   // the request masked (don't-cares)
///  "strategy": "auto",              // registry name
///  "label": "patch-17",             // echoed into the report
///  "budget": 2.5,                   // per-request deadline, seconds
///  "conflicts": 20000,              // SAT conflict cap per decision call
///  "nodes": 0,                      // DLX/brute node cap (0 = unlimited)
///  "probes": 1,                     // SMT bound-race width (1 =
///                                   // sequential, 0 = hardware threads)
///  "trials": 100, "seed": 1, "stop_at": 0,
///  "encoding": "onehot",            // or "binary"
///  "symmetry_breaking": true,
///  "preprocess": true,
///  "semantics": "free",             // or "at-most-once" (masked requests)
///  "split": false,                  // route through Engine::solve_split
///  "threads": 0,                    // split worker count (0 = hardware)
///  "include_partition": false}      // append the partition to the reply
/// ```
///
/// The response is one line of engine::to_json output; with
/// "include_partition" it gains a "partition" array of
/// {"rows": [...], "cols": [...]} index lists.

#include <string>

#include "engine/engine.h"

namespace ebmf::io {

/// One parsed wire request: the facade request plus routing options that
/// live outside SolveRequest.
struct WireRequest {
  engine::SolveRequest request;
  /// The requested deadline in seconds (0 = none). Mirrored into
  /// request.budget.deadline by the parser; kept here as well because a
  /// Deadline is an absolute time point and cannot be re-serialized.
  double budget_seconds = 0.0;
  bool split = false;              ///< Use Engine::solve_split.
  std::size_t threads = 0;         ///< solve_split worker count.
  bool include_partition = false;  ///< Attach the partition to the reply.
};

/// Parse one line of the request format. Throws std::runtime_error with a
/// protocol-level message on malformed JSON, a missing/ill-formed pattern,
/// or out-of-range numeric fields (strategy names are resolved later by the
/// engine, where the registry lives).
WireRequest parse_wire_request(const std::string& line);

/// Render a request back to one protocol line (client side; defaults are
/// omitted). parse_wire_request(wire_request_json(r)) round-trips.
std::string wire_request_json(const WireRequest& wire);

/// Render a report reply, optionally with the partition attached — the
/// exact line the server writes back.
std::string wire_response_json(const engine::SolveReport& report,
                               bool include_partition);

}  // namespace ebmf::io
