#pragma once
/// \file request_io.h
/// \brief The line-JSON solve-request format — one request per line —
/// shared by the `ebmf::service` wire protocol, the `ebmf client`
/// subcommand, and `ebmf solve --requests=FILE` batch files.
///
/// Request schema (all fields except "pattern" optional):
///
/// ```json
/// {"pattern": "110;011;111",        // rows joined by ';' — or an array
///                                   // of row strings; '*'/'x' cells make
///                                   // the request masked (don't-cares)
///  "strategy": "auto",              // registry name
///  "label": "patch-17",             // echoed into the report
///  "budget": 2.5,                   // per-request deadline, seconds
///  "conflicts": 20000,              // SAT conflict cap per decision call
///  "nodes": 0,                      // DLX/brute node cap (0 = unlimited)
///  "probes": 1,                     // SMT bound-race width (1 =
///                                   // sequential, 0 = hardware threads)
///  "trials": 100, "seed": 1, "stop_at": 0,
///  "encoding": "onehot",            // or "binary"
///  "symmetry_breaking": true,
///  "preprocess": true,
///  "semantics": "free",             // or "at-most-once" (masked requests)
///  "split": false,                  // route through Engine::solve_split
///  "threads": 0,                    // split worker count (0 = hardware)
///  "include_partition": false}      // append the partition to the reply
/// ```
///
/// The response is one line of engine::to_json output; with
/// "include_partition" it gains a "partition" array of
/// {"rows": [...], "cols": [...]} index lists.
///
/// Cluster verbs (PR 5): backends announce themselves to a dynamic router
/// with `{"op":"join","endpoint":"host:port"}`, then send periodic
/// `{"op":"heartbeat","endpoint":...}` lines (reply `{"ok":true,"epoch":E}`;
/// `{"ok":false,"rejoin":true}` after an eviction) and a final
/// `{"op":"leave","endpoint":...}` on drain. The router replicates promoted
/// hot keys by fanning `{"op":"put","pattern":"<canonical>","strategy":...,
/// "report":{<wire response with partition>}}` writes to replica backends,
/// which validate the certificate and insert it into their result cache.

#include <cstdint>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "io/json.h"
#include "obs/trace.h"

namespace ebmf::io {

/// What a request line asks for: a solve, the admin `stats` snapshot
/// (`{"op":"stats"}` — cache counters, in-flight, per-backend health), one
/// of the cluster membership verbs backends send to a dynamic router
/// (`{"op":"join"|"leave"|"heartbeat","endpoint":"host:port"}`), a
/// replica cache write the router fans to backends
/// (`{"op":"put","pattern":...,"strategy":...,"report":{...}}`), one of
/// the router-fleet peer verbs (PR 8) — `{"op":"peer.hello"}` endpoint
/// introduction/probe, `{"op":"peer.lease"}` leader-lease claim, and
/// `{"op":"peer.sync"}` the leaseholder's state replication carrying the
/// member table, epoch, and promoted hot-key set — or one of
/// the observability verbs: `{"op":"trace","id":"<32 hex>"}` returns one
/// completed trace's span tree, `{"op":"traces"}` lists recent traces,
/// `{"op":"metrics"}` returns the Prometheus text exposition (a router
/// additionally accepts `"scope":"fleet"` and answers with the federated
/// exposition of every backend and peer — obs/federate.h),
/// `{"op":"watch","id":N}` subscribes the connection to the live progress
/// frames of the in-flight request with that correlation id (one JSONL
/// frame per publish, then a final `{"done":true}` line), and
/// `{"op":"events"}` snapshots the flight recorder (obs/events.h).
enum class WireOp { Solve, Stats, Join, Leave, Heartbeat, Put, Trace, Traces,
                    Metrics, Watch, Events, PeerHello, PeerLease, PeerSync };

/// One member entry in a `peer.sync` snapshot (kept local to the wire
/// layer; the router converts to/from cluster::Member).
struct WirePeerMember {
  std::string endpoint;
  bool is_static = false;
};

/// One parsed wire request: the facade request plus routing options that
/// live outside SolveRequest.
struct WireRequest {
  WireOp op = WireOp::Solve;  ///< `"op"` field; "solve" when absent.
  engine::SolveRequest request;
  /// Join/Leave/Heartbeat: the announcing backend's own "host:port" (the
  /// address the router should dial and the ring id it shards under).
  std::string endpoint;
  /// Put: the report to insert into the receiving backend's cache, its
  /// partition witnessing request.matrix (which carries the canonical
  /// pattern) under request.strategy.
  engine::SolveReport put_report;
  /// Correlation id echoed as the *first* member of the response line
  /// (absent when < 0). The router assigns these to match pipelined
  /// backend replies to their requests; clients may use them too.
  std::int64_t id = -1;
  /// The requested deadline in seconds (0 = none). Mirrored into
  /// request.budget.deadline by the parser; kept here as well because a
  /// Deadline is an absolute time point and cannot be re-serialized.
  double budget_seconds = 0.0;
  bool split = false;              ///< Use Engine::solve_split.
  std::size_t threads = 0;         ///< solve_split worker count.
  bool include_partition = false;  ///< Attach the partition to the reply.
  /// Solve: the propagated trace context when the request carried a
  /// `"trace"` member (`{"id":"<32 hex>","span":"<16 hex>"}`); `has_trace`
  /// distinguishes "absent" from an all-zero context. Legacy requests
  /// without the member parse with has_trace == false and behave exactly
  /// as before.
  obs::TraceContext trace;
  bool has_trace = false;
  /// Trace query (`op == Trace`): the requested 32-hex trace id.
  std::string trace_id;
  /// Metrics: the requested scope — "" (the instance's own registry, the
  /// default) or "fleet" (router only: federate every backend + peer).
  /// Anything else is rejected by the serving side, not the parser, so the
  /// error can say which scopes *this* instance supports.
  std::string scope;
  /// Peer verbs: the sender's lease term (hello/lease) or the term the
  /// sync was replicated under.
  std::uint64_t term = 0;
  /// PeerSync: the leaseholder's membership epoch.
  std::uint64_t peer_epoch = 0;
  /// PeerSync: the full member table (small; replicated wholesale).
  std::vector<WirePeerMember> peer_members;
  /// PeerSync: promoted hot keys as route-key values (16-hex on the wire —
  /// JSON numbers cannot carry 64 bits).
  std::vector<std::uint64_t> promoted_keys;
};

/// Parse one line of the request format. Throws std::runtime_error with a
/// protocol-level message on malformed JSON, a missing/ill-formed pattern,
/// or out-of-range numeric fields (strategy names are resolved later by the
/// engine, where the registry lives).
WireRequest parse_wire_request(const std::string& line);

/// Render a request back to one protocol line (client side; defaults are
/// omitted). parse_wire_request(wire_request_json(r)) round-trips.
std::string wire_request_json(const WireRequest& wire);

/// The request's pattern as the wire text: rows joined by ';', '*' for
/// don't-care cells. The router keys masked (pass-through) requests by
/// exactly this text so repeats share one backend.
std::string render_pattern_text(const engine::SolveRequest& request);

/// Best-effort extraction of the "id" field from a (possibly malformed)
/// request line: -1 when absent, mistyped, out of range, or the line is
/// not JSON. Lets error replies echo the correlation id even for lines
/// parse_wire_request rejects.
std::int64_t salvage_request_id(const std::string& line) noexcept;

/// Render a report reply, optionally with the partition attached — the
/// exact line the server writes back. `id` >= 0 is echoed as the first
/// member (`{"id":N,...}`), the shape net::strip_id_prefix matches.
std::string wire_response_json(const engine::SolveReport& report,
                               bool include_partition, std::int64_t id = -1);

/// Parse a wire response line back into a SolveReport: label, strategy,
/// status, bounds, total_seconds, timings, telemetry — and, when the line
/// carries a "partition" array and `rows`/`cols` give the pattern shape,
/// the partition itself (index lists -> bit sets). The router uses this to
/// re-own backend replies (lift + re-render + L1 insert); the cache
/// snapshot loader and bench_service --connect share it. Throws
/// std::runtime_error on malformed input or an `{"error": ...}` line.
engine::SolveReport parse_wire_response(const std::string& line,
                                        std::size_t rows = 0,
                                        std::size_t cols = 0);

/// Same, from an already-parsed document (cache snapshot entries embed the
/// response object inside a larger line).
engine::SolveReport parse_wire_response(const json::Value& document,
                                        std::size_t rows = 0,
                                        std::size_t cols = 0);

/// Recognize a follower's epoch-stamped redirect reply:
/// `{"redirect":"host:port","epoch":E,"term":T,...}` (an optional leading
/// `"id"` member is fine). Returns true and fills the out-params when the
/// line is one; false (never throws) otherwise — callers check this
/// *before* parse_wire_response, which treats unknown shapes as errors.
bool parse_wire_redirect(const std::string& line, std::string* endpoint,
                         std::uint64_t* epoch, std::uint64_t* term) noexcept;

}  // namespace ebmf::io
