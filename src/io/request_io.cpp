// Parsing and rendering of the line-JSON solve-request protocol.

#include "io/request_io.h"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "io/json.h"

namespace ebmf::io {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("request: " + what);
}

/// A finite number field within [min, max]; `fallback` when absent.
double number_field(const json::Value& object, const char* key,
                    double fallback, double min, double max) {
  const json::Value* field = object.find(key);
  if (field == nullptr) return fallback;
  if (!field->is_number()) fail(std::string("field '") + key + "' must be a number");
  const double value = field->as_number();
  if (!(value >= min && value <= max))
    fail(std::string("field '") + key + "' out of range");
  return value;
}

bool bool_field(const json::Value& object, const char* key, bool fallback) {
  const json::Value* field = object.find(key);
  if (field == nullptr) return fallback;
  if (!field->is_bool()) fail(std::string("field '") + key + "' must be a bool");
  return field->as_bool();
}

std::string string_field(const json::Value& object, const char* key,
                         const std::string& fallback) {
  const json::Value* field = object.find(key);
  if (field == nullptr) return fallback;
  if (!field->is_string())
    fail(std::string("field '") + key + "' must be a string");
  return field->as_string();
}

/// The pattern field as a ';'-joined row text (string or array form).
std::string pattern_text(const json::Value& object) {
  const json::Value* field = object.find("pattern");
  if (field == nullptr) fail("missing required field 'pattern'");
  if (field->is_string()) {
    if (field->as_string().empty()) fail("field 'pattern' is empty");
    return field->as_string();
  }
  if (field->is_array()) {
    if (field->size() == 0) fail("field 'pattern' is empty");
    std::string text;
    for (std::size_t i = 0; i < field->size(); ++i) {
      if (!field->at(i).is_string())
        fail("field 'pattern' rows must be strings");
      if (i != 0) text += ';';
      text += field->at(i).as_string();
    }
    return text;
  }
  fail("field 'pattern' must be a string or an array of row strings");
}

bool has_dont_care_cells(const std::string& text) {
  return text.find('*') != std::string::npos ||
         text.find('x') != std::string::npos;
}

}  // namespace

WireRequest parse_wire_request(const std::string& line) {
  json::Value document;
  try {
    document = json::Value::parse(line);
  } catch (const std::exception& e) {
    fail(e.what());
  }
  if (!document.is_object()) fail("a request must be a JSON object");

  WireRequest wire;
  engine::SolveRequest& request = wire.request;

  const std::string op = string_field(document, "op", "solve");
  if (op == "trace") {
    // Trace query: "id" is the 32-hex trace id, not the numeric
    // correlation id every other verb uses.
    wire.op = WireOp::Trace;
    wire.trace_id = string_field(document, "id", "");
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;
    if (!obs::parse_trace_id(wire.trace_id, &hi, &lo))
      fail("'trace' needs an 'id' of 32 hex digits");
    return wire;
  }

  wire.id = static_cast<std::int64_t>(
      number_field(document, "id", -1.0, -1.0, 9e15));

  if (op == "stats") {
    // Admin verb: no pattern, no solve knobs — counters come back.
    wire.op = WireOp::Stats;
    return wire;
  }
  if (op == "traces") {
    wire.op = WireOp::Traces;
    return wire;
  }
  if (op == "metrics") {
    wire.op = WireOp::Metrics;
    wire.scope = string_field(document, "scope", "");
    return wire;
  }
  if (op == "watch") {
    // Live-progress subscription: "id" names the in-flight request to
    // follow (the correlation id its solve line carried).
    wire.op = WireOp::Watch;
    if (wire.id < 0) fail("'watch' needs the 'id' of an in-flight request");
    return wire;
  }
  if (op == "events") {
    wire.op = WireOp::Events;
    return wire;
  }
  if (op == "peer.hello" || op == "peer.lease" || op == "peer.sync") {
    // Router-fleet peer verbs: sender endpoint + lease term, and for sync
    // the replicated snapshot (member table, epoch, promoted hot keys).
    wire.op = op == "peer.hello"   ? WireOp::PeerHello
              : op == "peer.lease" ? WireOp::PeerLease
                                   : WireOp::PeerSync;
    wire.endpoint = string_field(document, "endpoint", "");
    if (wire.endpoint.empty())
      fail("'" + op + "' needs an 'endpoint' (\"host:port\")");
    wire.term = static_cast<std::uint64_t>(
        number_field(document, "term", 0.0, 0.0, 9e15));
    if (wire.op != WireOp::PeerSync) return wire;
    wire.peer_epoch = static_cast<std::uint64_t>(
        number_field(document, "epoch", 0.0, 0.0, 9e15));
    if (const json::Value* members = document.find("members")) {
      if (!members->is_array()) fail("'members' must be an array");
      for (std::size_t i = 0; i < members->size(); ++i) {
        const json::Value& entry = members->at(i);
        if (!entry.is_object()) fail("'members' entries must be objects");
        WirePeerMember member;
        member.endpoint = string_field(entry, "endpoint", "");
        if (member.endpoint.empty())
          fail("'members' entries need an 'endpoint'");
        member.is_static = bool_field(entry, "static", false);
        wire.peer_members.push_back(std::move(member));
      }
    }
    if (const json::Value* promoted = document.find("promoted")) {
      if (!promoted->is_array()) fail("'promoted' must be an array");
      for (std::size_t i = 0; i < promoted->size(); ++i) {
        if (!promoted->at(i).is_string())
          fail("'promoted' keys must be 16-hex strings");
        const std::string& hex = promoted->at(i).as_string();
        std::uint64_t key = 0;
        if (hex.empty() || hex.size() > 16) fail("bad 'promoted' key");
        for (const char c : hex) {
          if (c >= '0' && c <= '9')
            key = key * 16 + static_cast<std::uint64_t>(c - '0');
          else if (c >= 'a' && c <= 'f')
            key = key * 16 + static_cast<std::uint64_t>(c - 'a' + 10);
          else
            fail("bad 'promoted' key");
        }
        wire.promoted_keys.push_back(key);
      }
    }
    return wire;
  }
  if (op == "join" || op == "leave" || op == "heartbeat") {
    // Cluster membership verbs: just the announcing backend's endpoint.
    wire.op = op == "join" ? WireOp::Join
              : op == "leave" ? WireOp::Leave
                              : WireOp::Heartbeat;
    wire.endpoint = string_field(document, "endpoint", "");
    if (wire.endpoint.empty())
      fail("'" + op + "' needs an 'endpoint' (\"host:port\")");
    return wire;
  }
  if (op == "put") {
    // Replica cache write: canonical pattern + strategy + full report.
    wire.op = WireOp::Put;
    const std::string pattern = pattern_text(document);
    if (has_dont_care_cells(pattern)) fail("'put' patterns must be dense");
    try {
      request.matrix = BinaryMatrix::parse(pattern);
    } catch (const std::exception& e) {
      fail(std::string("bad pattern: ") + e.what());
    }
    request.strategy = string_field(document, "strategy", "auto");
    const json::Value* report = document.find("report");
    if (report == nullptr || !report->is_object())
      fail("'put' needs a 'report' object");
    try {
      wire.put_report = parse_wire_response(*report, request.matrix.rows(),
                                            request.matrix.cols());
    } catch (const std::exception& e) {
      fail(std::string("bad report: ") + e.what());
    }
    return wire;
  }
  if (op != "solve")
    fail("field 'op' must be solve|stats|join|leave|heartbeat|put|trace|"
         "traces|metrics|watch|events|peer.hello|peer.lease|peer.sync");

  // Optional distributed-tracing context; absent on legacy requests.
  if (const json::Value* trace = document.find("trace")) {
    if (!obs::parse_trace_context(*trace, &wire.trace))
      fail("field 'trace' must be {\"id\":\"<32 hex>\"[,\"span\":...]}");
    wire.has_trace = true;
  }

  const std::string pattern = pattern_text(document);
  const bool masked = has_dont_care_cells(pattern);
  try {
    if (masked)
      request.masked = completion::MaskedMatrix::parse(pattern);
    else
      request.matrix = BinaryMatrix::parse(pattern);
  } catch (const std::exception& e) {
    fail(std::string("bad pattern: ") + e.what());
  }

  request.strategy =
      string_field(document, "strategy", masked ? "completion" : "auto");
  request.label = string_field(document, "label", "");

  wire.budget_seconds =
      number_field(document, "budget", 0.0, 0.0, 86400.0 * 365);
  if (wire.budget_seconds > 0)
    request.budget.deadline = Deadline::after(wire.budget_seconds);
  request.budget.max_conflicts = static_cast<std::int64_t>(
      number_field(document, "conflicts", -1.0, -1.0, 9e15));
  request.budget.max_nodes = static_cast<std::uint64_t>(
      number_field(document, "nodes", 0.0, 0.0, 9e15));

  // SMT bound-race width: 1 = sequential, 0 = auto (hardware threads).
  request.probes = static_cast<std::size_t>(
      number_field(document, "probes", 1.0, 0.0, 4096.0));

  request.trials = static_cast<std::size_t>(
      number_field(document, "trials", 100.0, 1.0, 1e9));
  request.seed =
      static_cast<std::uint64_t>(number_field(document, "seed", 1.0, 0.0, 9e15));
  request.stop_at = static_cast<std::size_t>(
      number_field(document, "stop_at", 0.0, 0.0, 9e15));

  const std::string encoding = string_field(document, "encoding", "onehot");
  if (encoding == "binary")
    request.encoding = smt::LabelEncoding::Binary;
  else if (encoding != "onehot")
    fail("field 'encoding' must be onehot|binary");
  request.symmetry_breaking = bool_field(document, "symmetry_breaking", true);
  request.preprocess = bool_field(document, "preprocess", true);

  const std::string semantics = string_field(document, "semantics", "free");
  if (semantics == "at-most-once")
    request.semantics = completion::DontCareSemantics::AtMostOnce;
  else if (semantics != "free")
    fail("field 'semantics' must be free|at-most-once");

  wire.split = bool_field(document, "split", false);
  wire.threads = static_cast<std::size_t>(
      number_field(document, "threads", 0.0, 0.0, 4096.0));
  wire.include_partition = bool_field(document, "include_partition", false);
  return wire;
}

namespace {

/// Pattern rows joined with ';' ('*' marks don't-care cells).
std::string render_pattern(const engine::SolveRequest& request) {
  std::string text;
  if (request.masked) {
    const completion::MaskedMatrix& m = *request.masked;
    for (std::size_t i = 0; i < m.rows(); ++i) {
      if (i != 0) text += ';';
      for (std::size_t j = 0; j < m.cols(); ++j) {
        switch (m.at(i, j)) {
          case completion::Cell::One:
            text += '1';
            break;
          case completion::Cell::DontCare:
            text += '*';
            break;
          default:
            text += '0';
        }
      }
    }
    return text;
  }
  for (std::size_t i = 0; i < request.matrix.rows(); ++i) {
    if (i != 0) text += ';';
    text += request.matrix.row(i).to_string();
  }
  return text;
}

}  // namespace

std::string render_pattern_text(const engine::SolveRequest& request) {
  return render_pattern(request);
}

std::int64_t salvage_request_id(const std::string& line) noexcept {
  try {
    const json::Value document = json::Value::parse(line);
    const json::Value* id = document.find("id");
    if (id != nullptr && id->is_number() && id->as_number() >= 0 &&
        id->as_number() <= 9e15)
      return static_cast<std::int64_t>(id->as_number());
  } catch (...) {
  }
  return -1;
}

std::string wire_request_json(const WireRequest& wire) {
  const engine::SolveRequest& request = wire.request;
  std::ostringstream out;
  if (wire.op == WireOp::Stats || wire.op == WireOp::Traces ||
      wire.op == WireOp::Metrics || wire.op == WireOp::Watch ||
      wire.op == WireOp::Events) {
    const char* op = wire.op == WireOp::Stats    ? "stats"
                     : wire.op == WireOp::Traces ? "traces"
                     : wire.op == WireOp::Watch  ? "watch"
                     : wire.op == WireOp::Events ? "events"
                                                 : "metrics";
    out << "{";
    if (wire.id >= 0) out << "\"id\":" << wire.id << ",";
    out << "\"op\":\"" << op << "\"";
    if (wire.op == WireOp::Metrics && !wire.scope.empty())
      out << ",\"scope\":\"" << json::escape(wire.scope) << "\"";
    out << "}";
    return out.str();
  }
  if (wire.op == WireOp::Trace) {
    out << "{\"op\":\"trace\",\"id\":\"" << json::escape(wire.trace_id)
        << "\"}";
    return out.str();
  }
  if (wire.op == WireOp::PeerHello || wire.op == WireOp::PeerLease ||
      wire.op == WireOp::PeerSync) {
    const char* op = wire.op == WireOp::PeerHello   ? "peer.hello"
                     : wire.op == WireOp::PeerLease ? "peer.lease"
                                                    : "peer.sync";
    out << "{";
    if (wire.id >= 0) out << "\"id\":" << wire.id << ",";
    out << "\"op\":\"" << op << "\",\"endpoint\":\""
        << json::escape(wire.endpoint) << "\",\"term\":" << wire.term;
    if (wire.op == WireOp::PeerSync) {
      out << ",\"epoch\":" << wire.peer_epoch << ",\"members\":[";
      for (std::size_t i = 0; i < wire.peer_members.size(); ++i) {
        if (i != 0) out << ",";
        out << "{\"endpoint\":\"" << json::escape(wire.peer_members[i].endpoint)
            << "\"";
        if (wire.peer_members[i].is_static) out << ",\"static\":true";
        out << "}";
      }
      out << "],\"promoted\":[";
      for (std::size_t i = 0; i < wire.promoted_keys.size(); ++i) {
        char hex[17];
        std::snprintf(hex, sizeof hex, "%016llx",
                      static_cast<unsigned long long>(wire.promoted_keys[i]));
        out << (i == 0 ? "" : ",") << "\"" << hex << "\"";
      }
      out << "]";
    }
    out << "}";
    return out.str();
  }
  if (wire.op == WireOp::Join || wire.op == WireOp::Leave ||
      wire.op == WireOp::Heartbeat) {
    const char* op = wire.op == WireOp::Join      ? "join"
                     : wire.op == WireOp::Leave   ? "leave"
                                                  : "heartbeat";
    out << "{";
    if (wire.id >= 0) out << "\"id\":" << wire.id << ",";
    out << "\"op\":\"" << op << "\",\"endpoint\":\""
        << json::escape(wire.endpoint) << "\"}";
    return out.str();
  }
  if (wire.op == WireOp::Put) {
    out << "{";
    if (wire.id >= 0) out << "\"id\":" << wire.id << ",";
    out << "\"op\":\"put\",\"pattern\":\""
        << json::escape(render_pattern(request)) << "\",\"strategy\":\""
        << json::escape(request.strategy) << "\",\"report\":"
        << wire_response_json(wire.put_report, /*include_partition=*/true)
        << "}";
    return out.str();
  }
  out << "{";
  if (wire.id >= 0) out << "\"id\":" << wire.id << ",";
  out << "\"pattern\":\"" << json::escape(render_pattern(request)) << "\"";
  out << ",\"strategy\":\"" << json::escape(request.strategy) << "\"";
  if (!request.label.empty())
    out << ",\"label\":\"" << json::escape(request.label) << "\"";
  if (wire.budget_seconds > 0)
    out << ",\"budget\":" << json::number(wire.budget_seconds);
  if (request.budget.max_conflicts >= 0)
    out << ",\"conflicts\":" << request.budget.max_conflicts;
  if (request.budget.max_nodes > 0)
    out << ",\"nodes\":" << request.budget.max_nodes;
  if (request.probes != 1) out << ",\"probes\":" << request.probes;
  if (request.trials != 100) out << ",\"trials\":" << request.trials;
  if (request.seed != 1) out << ",\"seed\":" << request.seed;
  if (request.stop_at != 0) out << ",\"stop_at\":" << request.stop_at;
  if (request.encoding == smt::LabelEncoding::Binary)
    out << ",\"encoding\":\"binary\"";
  if (!request.symmetry_breaking) out << ",\"symmetry_breaking\":false";
  if (!request.preprocess) out << ",\"preprocess\":false";
  if (request.semantics == completion::DontCareSemantics::AtMostOnce)
    out << ",\"semantics\":\"at-most-once\"";
  if (wire.split) out << ",\"split\":true";
  if (wire.threads != 0) out << ",\"threads\":" << wire.threads;
  if (wire.include_partition) out << ",\"include_partition\":true";
  if (wire.has_trace)
    out << ",\"trace\":" << obs::trace_context_json(wire.trace);
  out << "}";
  return out.str();
}

std::string wire_response_json(const engine::SolveReport& report,
                               bool include_partition, std::int64_t id) {
  std::string line = engine::to_json(report);
  if (id >= 0)
    line = "{\"id\":" + std::to_string(id) + "," + line.substr(1);
  if (!include_partition) return line;
  // Splice the partition before the closing brace of the report object.
  std::ostringstream tail;
  tail << ",\"partition\":[";
  for (std::size_t t = 0; t < report.partition.size(); ++t) {
    if (t != 0) tail << ",";
    tail << "{\"rows\":[";
    const auto rows = report.partition[t].rows.ones();
    for (std::size_t k = 0; k < rows.size(); ++k)
      tail << (k == 0 ? "" : ",") << rows[k];
    tail << "],\"cols\":[";
    const auto cols = report.partition[t].cols.ones();
    for (std::size_t k = 0; k < cols.size(); ++k)
      tail << (k == 0 ? "" : ",") << cols[k];
    tail << "]}";
  }
  tail << "]}";
  line.pop_back();  // drop the report's closing '}' and re-close via tail
  return line + tail.str();
}

namespace {

[[noreturn]] void fail_response(const std::string& what) {
  throw std::runtime_error("response: " + what);
}

engine::Status status_from(const std::string& name) {
  if (name == "optimal") return engine::Status::Optimal;
  if (name == "bounded") return engine::Status::Bounded;
  if (name == "heuristic") return engine::Status::Heuristic;
  fail_response("unknown status '" + name + "'");
}

/// One "partition" element's "rows"/"cols" index list as a bit set of
/// length `n`.
BitVec bitset_from_indices(const json::Value& rect, const char* key,
                           std::size_t n) {
  const json::Value* list = rect.find(key);
  if (list == nullptr || !list->is_array())
    fail_response(std::string("partition entry missing '") + key + "' array");
  BitVec bits(n);
  for (std::size_t k = 0; k < list->size(); ++k) {
    if (!list->at(k).is_number()) fail_response("partition index not a number");
    const double value = list->at(k).as_number();
    if (!(value >= 0) || value >= static_cast<double>(n))
      fail_response(std::string("partition '") + key + "' index out of range");
    bits.set(static_cast<std::size_t>(value));
  }
  return bits;
}

}  // namespace

engine::SolveReport parse_wire_response(const json::Value& document,
                                        std::size_t rows, std::size_t cols) {
  if (!document.is_object()) fail_response("a response must be a JSON object");
  if (const json::Value* error = document.find("error")) {
    fail_response("error line: " +
                  (error->is_string() ? error->as_string() : std::string()));
  }
  engine::SolveReport report;
  if (const json::Value* label = document.find("label");
      label != nullptr && label->is_string())
    report.label = label->as_string();
  if (const json::Value* strategy = document.find("strategy");
      strategy != nullptr && strategy->is_string())
    report.strategy = strategy->as_string();
  const json::Value* status = document.find("status");
  if (status == nullptr || !status->is_string())
    fail_response("missing 'status'");
  report.status = status_from(status->as_string());
  const json::Value* lower = document.find("lower_bound");
  const json::Value* upper = document.find("upper_bound");
  if (lower == nullptr || !lower->is_number() || upper == nullptr ||
      !upper->is_number())
    fail_response("missing bounds");
  report.lower_bound = static_cast<std::size_t>(lower->as_number());
  report.upper_bound = static_cast<std::size_t>(upper->as_number());
  // Anytime fields: absent in pre-anytime peers' lines, so default rather
  // than fail — incumbent_depth to the final depth, gap to the bracket.
  report.incumbent_depth = report.upper_bound;
  if (const json::Value* incumbent = document.find("incumbent_depth");
      incumbent != nullptr && incumbent->is_number())
    report.incumbent_depth = static_cast<std::size_t>(incumbent->as_number());
  report.gap = report.upper_bound > report.lower_bound
                   ? report.upper_bound - report.lower_bound
                   : 0;
  if (const json::Value* gap = document.find("gap");
      gap != nullptr && gap->is_number())
    report.gap = static_cast<std::size_t>(gap->as_number());
  if (const json::Value* seconds = document.find("total_seconds");
      seconds != nullptr && seconds->is_number())
    report.total_seconds = seconds->as_number();
  if (const json::Value* timings = document.find("timings");
      timings != nullptr && timings->is_object()) {
    for (const auto& [phase, value] : timings->members())
      if (value.is_number()) report.add_timing(phase, value.as_number());
  }
  if (const json::Value* telemetry = document.find("telemetry");
      telemetry != nullptr && telemetry->is_object()) {
    for (const auto& [key, value] : telemetry->members())
      if (value.is_string()) report.add_telemetry(key, value.as_string());
  }
  const json::Value* partition = document.find("partition");
  if (partition != nullptr && rows > 0 && cols > 0) {
    if (!partition->is_array()) fail_response("'partition' must be an array");
    for (std::size_t t = 0; t < partition->size(); ++t) {
      const json::Value& rect = partition->at(t);
      report.partition.push_back(
          Rectangle{bitset_from_indices(rect, "rows", rows),
                    bitset_from_indices(rect, "cols", cols)});
    }
    if (report.upper_bound != report.partition.size())
      fail_response("depth disagrees with the partition");
  }
  return report;
}

engine::SolveReport parse_wire_response(const std::string& line,
                                        std::size_t rows, std::size_t cols) {
  json::Value document;
  try {
    document = json::Value::parse(line);
  } catch (const std::exception& e) {
    fail_response(e.what());
  }
  return parse_wire_response(document, rows, cols);
}

bool parse_wire_redirect(const std::string& line, std::string* endpoint,
                         std::uint64_t* epoch, std::uint64_t* term) noexcept {
  // Cheap reject before parsing: every redirect line carries the literal
  // member name, and the solve hot path must not pay a JSON parse per
  // reply just to discover there is nothing to chase.
  if (line.find("\"redirect\"") == std::string::npos) return false;
  try {
    const json::Value document = json::Value::parse(line);
    if (!document.is_object()) return false;
    const json::Value* target = document.find("redirect");
    if (target == nullptr || !target->is_string() ||
        target->as_string().empty())
      return false;
    if (endpoint != nullptr) *endpoint = target->as_string();
    if (epoch != nullptr) {
      *epoch = 0;
      if (const json::Value* value = document.find("epoch");
          value != nullptr && value->is_number() && value->as_number() >= 0)
        *epoch = static_cast<std::uint64_t>(value->as_number());
    }
    if (term != nullptr) {
      *term = 0;
      if (const json::Value* value = document.find("term");
          value != nullptr && value->is_number() && value->as_number() >= 0)
        *term = static_cast<std::uint64_t>(value->as_number());
    }
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace ebmf::io
