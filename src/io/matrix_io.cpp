#include "io/matrix_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace ebmf::io {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("matrix input line " + std::to_string(line) + ": " +
                           what);
}

/// Read all non-comment, non-empty lines.
std::vector<std::string> significant_lines(std::istream& in) {
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    if (line[start] == '#') continue;
    lines.push_back(line.substr(start));
  }
  return lines;
}

BinaryMatrix parse_sparse(const std::vector<std::string>& lines) {
  std::istringstream header(lines[0]);
  std::string tag;
  std::size_t rows = 0, cols = 0;
  header >> tag >> rows >> cols;
  if (rows == 0 || cols == 0) fail(1, "sparse header needs rows cols > 0");
  BinaryMatrix m(rows, cols);
  for (std::size_t k = 1; k < lines.size(); ++k) {
    std::istringstream ls(lines[k]);
    std::size_t i = 0, j = 0;
    if (!(ls >> i >> j)) fail(k + 1, "expected 'i j'");
    if (i >= rows || j >= cols) fail(k + 1, "cell out of range");
    m.set(i, j);
  }
  return m;
}

BinaryMatrix parse_pbm(const std::vector<std::string>& lines) {
  // P1 <ws> width height <ws> pixels (0/1, whitespace-separated or packed).
  std::string all;
  for (std::size_t k = 1; k < lines.size(); ++k) all += lines[k] + " ";
  std::istringstream ls(all);
  std::size_t width = 0, height = 0;
  if (!(ls >> width >> height) || width == 0 || height == 0)
    fail(2, "PBM header needs width height");
  // Pixels may be packed ("0101") or separated; read char by char.
  BinaryMatrix m(height, width);
  std::size_t count = 0;
  char c = 0;
  while (ls >> c) {
    if (c != '0' && c != '1') fail(2, std::string("bad PBM pixel '") + c + "'");
    if (count >= width * height) fail(2, "too many PBM pixels");
    if (c == '1') m.set(count / width, count % width);
    ++count;
  }
  if (count != width * height) fail(2, "too few PBM pixels");
  return m;
}

BinaryMatrix parse_dense(const std::vector<std::string>& lines) {
  std::vector<std::string> rows;
  for (std::size_t k = 0; k < lines.size(); ++k) {
    std::string row;
    for (char c : lines[k]) {
      if (c == '0' || c == '*' || c == 'x')
        row.push_back('0');  // read_matrix drops don't-care info
      else if (c == '1')
        row.push_back('1');
      else if (c != ' ' && c != '\t')
        fail(k + 1, std::string("bad character '") + c + "'");
    }
    if (row.empty()) fail(k + 1, "empty row");
    if (!rows.empty() && row.size() != rows[0].size())
      fail(k + 1, "ragged row length");
    rows.push_back(std::move(row));
  }
  return BinaryMatrix::from_strings(rows);
}

}  // namespace

BinaryMatrix read_matrix(std::istream& in) {
  const auto lines = significant_lines(in);
  if (lines.empty()) throw std::runtime_error("matrix input: empty");
  if (lines[0].rfind("sparse", 0) == 0) return parse_sparse(lines);
  if (lines[0].rfind("P1", 0) == 0) return parse_pbm(lines);
  return parse_dense(lines);
}

BinaryMatrix load_matrix(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open: " + path);
  return read_matrix(in);
}

completion::MaskedMatrix read_masked(std::istream& in) {
  const auto lines = significant_lines(in);
  if (lines.empty()) throw std::runtime_error("matrix input: empty");
  std::string joined;
  for (const auto& line : lines) {
    joined += line;
    joined.push_back(';');
  }
  return completion::MaskedMatrix::parse(joined);
}

completion::MaskedMatrix load_masked(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open: " + path);
  return read_masked(in);
}

void write_dense(std::ostream& out, const BinaryMatrix& m) {
  out << "# " << m.rows() << "x" << m.cols() << ", " << m.ones_count()
      << " ones\n";
  out << m.to_string() << '\n';
}

void write_sparse(std::ostream& out, const BinaryMatrix& m) {
  out << "sparse " << m.rows() << ' ' << m.cols() << '\n';
  for (const auto& [i, j] : m.ones()) out << i << ' ' << j << '\n';
}

void write_pbm(std::ostream& out, const BinaryMatrix& m) {
  out << "P1\n" << m.cols() << ' ' << m.rows() << '\n';
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      if (j != 0) out << ' ';
      out << (m.test(i, j) ? '1' : '0');
    }
    out << '\n';
  }
}

void save_matrix(const std::string& path, const BinaryMatrix& m) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write: " + path);
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".pbm") == 0)
    write_pbm(out, m);
  else if (path.size() >= 7 &&
           path.compare(path.size() - 7, 7, ".sparse") == 0)
    write_sparse(out, m);
  else
    write_dense(out, m);
}

}  // namespace ebmf::io
