#pragma once
/// \file partition_io.h
/// \brief Serialization of rectangle partitions (addressing schedules).
///
/// The text format is line-oriented and hand-editable:
///
///     partition <rows> <cols> <count>
///     rect 0,2 x 1,3
///     rect 4 x 0,1,2
///
/// Row/column indices are comma-separated, ascending. A reader validates
/// shape and index ranges but not partition validity (use
/// validate_partition for that — a saved file may deliberately describe an
/// invalid candidate).

#include <iosfwd>
#include <string>

#include "core/partition.h"

namespace ebmf::io {

/// Write the partition in the text format above.
void write_partition(std::ostream& out, const Partition& p, std::size_t rows,
                     std::size_t cols);

/// Parse the text format. Throws std::runtime_error on malformed input.
/// Returns the partition together with the declared shape.
struct LoadedPartition {
  Partition partition;
  std::size_t rows = 0;
  std::size_t cols = 0;
};
LoadedPartition read_partition(std::istream& in);

/// File wrappers.
void save_partition(const std::string& path, const Partition& p,
                    std::size_t rows, std::size_t cols);
LoadedPartition load_partition(const std::string& path);

}  // namespace ebmf::io
