#pragma once
/// \file bigint.h
/// \brief Arbitrary-precision signed integers for exact rank computation.
///
/// The paper uses `rank_ℝ(M)` as the lower bound in Algorithm 1 (Eq. 3).
/// Floating point rank needs a tolerance; instead we run fraction-free
/// Bareiss elimination over ℤ, whose intermediate values are minors of M and
/// can exceed 64 bits for matrices beyond ~20×20 (Hadamard bound ≈ n^{n/2}).
/// BigInt provides exactly the operations Bareiss needs: +, -, *, exact
/// division, comparison, and sign. Magnitudes are little-endian 32-bit limbs
/// so schoolbook multiplication can accumulate in 64 bits.

#include <cstdint>
#include <string>
#include <vector>

namespace ebmf {

/// Arbitrary-precision signed integer (sign + magnitude).
///
/// Invariant: the limb vector has no trailing zero limbs, and zero is
/// represented as an empty limb vector with non-negative sign.
class BigInt {
 public:
  /// Zero.
  BigInt() = default;

  /// From a machine integer.
  BigInt(std::int64_t v);  // NOLINT(google-explicit-constructor): numeric type

  /// Parse a base-10 string with optional leading '-'.
  static BigInt from_string(const std::string& s);

  /// True when the value is zero.
  [[nodiscard]] bool is_zero() const noexcept { return limbs_.empty(); }

  /// -1, 0, or +1.
  [[nodiscard]] int sign() const noexcept {
    return limbs_.empty() ? 0 : (negative_ ? -1 : 1);
  }

  /// Number of bits in the magnitude (0 for zero).
  [[nodiscard]] std::size_t bit_length() const noexcept;

  /// Negation.
  [[nodiscard]] BigInt operator-() const;

  BigInt& operator+=(const BigInt& rhs);
  BigInt& operator-=(const BigInt& rhs);
  BigInt& operator*=(const BigInt& rhs);

  friend BigInt operator+(BigInt a, const BigInt& b) { return a += b; }
  friend BigInt operator-(BigInt a, const BigInt& b) { return a -= b; }
  friend BigInt operator*(BigInt a, const BigInt& b) { return a *= b; }

  /// Exact division: *this / d where d divides *this with no remainder.
  /// Precondition: d != 0 and d | *this (checked; throws ContractViolation).
  [[nodiscard]] BigInt div_exact(const BigInt& d) const;

  /// Three-way comparison.
  [[nodiscard]] int compare(const BigInt& rhs) const noexcept;

  friend bool operator==(const BigInt& a, const BigInt& b) noexcept {
    return a.compare(b) == 0;
  }
  friend bool operator!=(const BigInt& a, const BigInt& b) noexcept {
    return a.compare(b) != 0;
  }
  friend bool operator<(const BigInt& a, const BigInt& b) noexcept {
    return a.compare(b) < 0;
  }
  friend bool operator<=(const BigInt& a, const BigInt& b) noexcept {
    return a.compare(b) <= 0;
  }
  friend bool operator>(const BigInt& a, const BigInt& b) noexcept {
    return a.compare(b) > 0;
  }
  friend bool operator>=(const BigInt& a, const BigInt& b) noexcept {
    return a.compare(b) >= 0;
  }

  /// Base-10 rendering.
  [[nodiscard]] std::string to_string() const;

  /// Value as int64 if it fits. Precondition: bit_length() <= 63.
  [[nodiscard]] std::int64_t to_int64() const;

 private:
  static int compare_magnitude(const std::vector<std::uint32_t>& a,
                               const std::vector<std::uint32_t>& b) noexcept;
  static void add_magnitude(std::vector<std::uint32_t>& a,
                            const std::vector<std::uint32_t>& b);
  /// a -= b, requires |a| >= |b|.
  static void sub_magnitude(std::vector<std::uint32_t>& a,
                            const std::vector<std::uint32_t>& b);
  void trim() noexcept;

  bool negative_ = false;
  std::vector<std::uint32_t> limbs_;  // little-endian base 2^32 magnitude
};

}  // namespace ebmf
