#include "linalg/bigint.h"

#include <algorithm>
#include <bit>

#include "support/contracts.h"

namespace ebmf {

namespace {
constexpr std::uint64_t kBase = std::uint64_t{1} << 32;
}

BigInt::BigInt(std::int64_t v) {
  negative_ = v < 0;
  // Avoid UB negating INT64_MIN: go through uint64.
  std::uint64_t mag =
      negative_ ? ~static_cast<std::uint64_t>(v) + 1 : static_cast<std::uint64_t>(v);
  while (mag != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(mag & 0xffffffffu));
    mag >>= 32;
  }
  if (limbs_.empty()) negative_ = false;
}

BigInt BigInt::from_string(const std::string& s) {
  EBMF_EXPECTS(!s.empty());
  std::size_t i = 0;
  bool neg = false;
  if (s[0] == '-') {
    neg = true;
    i = 1;
    EBMF_EXPECTS(s.size() > 1);
  }
  BigInt r;
  const BigInt ten(10);
  for (; i < s.size(); ++i) {
    EBMF_EXPECTS(s[i] >= '0' && s[i] <= '9');
    r *= ten;
    r += BigInt(s[i] - '0');
  }
  if (neg && !r.is_zero()) r.negative_ = true;
  return r;
}

std::size_t BigInt::bit_length() const noexcept {
  if (limbs_.empty()) return 0;
  return (limbs_.size() - 1) * 32 +
         (32 - static_cast<std::size_t>(std::countl_zero(limbs_.back())));
}

BigInt BigInt::operator-() const {
  BigInt r = *this;
  if (!r.is_zero()) r.negative_ = !r.negative_;
  return r;
}

int BigInt::compare_magnitude(const std::vector<std::uint32_t>& a,
                              const std::vector<std::uint32_t>& b) noexcept {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;)
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  return 0;
}

void BigInt::add_magnitude(std::vector<std::uint32_t>& a,
                           const std::vector<std::uint32_t>& b) {
  if (a.size() < b.size()) a.resize(b.size(), 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t sum = carry + a[i] + (i < b.size() ? b[i] : 0u);
    a[i] = static_cast<std::uint32_t>(sum & 0xffffffffu);
    carry = sum >> 32;
  }
  if (carry != 0) a.push_back(static_cast<std::uint32_t>(carry));
}

void BigInt::sub_magnitude(std::vector<std::uint32_t>& a,
                           const std::vector<std::uint32_t>& b) {
  EBMF_ASSERT(compare_magnitude(a, b) >= 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow -
                        (i < b.size() ? static_cast<std::int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    a[i] = static_cast<std::uint32_t>(diff);
  }
  EBMF_ASSERT(borrow == 0);
}

void BigInt::trim() noexcept {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

BigInt& BigInt::operator+=(const BigInt& rhs) {
  if (negative_ == rhs.negative_) {
    add_magnitude(limbs_, rhs.limbs_);
  } else if (compare_magnitude(limbs_, rhs.limbs_) >= 0) {
    sub_magnitude(limbs_, rhs.limbs_);
  } else {
    auto tmp = rhs.limbs_;
    sub_magnitude(tmp, limbs_);
    limbs_ = std::move(tmp);
    negative_ = rhs.negative_;
  }
  trim();
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& rhs) { return *this += -rhs; }

BigInt& BigInt::operator*=(const BigInt& rhs) {
  if (is_zero() || rhs.is_zero()) {
    limbs_.clear();
    negative_ = false;
    return *this;
  }
  std::vector<std::uint32_t> out(limbs_.size() + rhs.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t ai = limbs_[i];
    for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
      std::uint64_t cur = out[i + j] + ai * rhs.limbs_[j] + carry;
      out[i + j] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    std::size_t k = i + rhs.limbs_.size();
    while (carry != 0) {
      std::uint64_t cur = out[k] + carry;
      out[k] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  limbs_ = std::move(out);
  negative_ = negative_ != rhs.negative_;
  trim();
  return *this;
}

BigInt BigInt::div_exact(const BigInt& d) const {
  EBMF_EXPECTS(!d.is_zero());
  if (is_zero()) return BigInt{};
  // Schoolbook long division of magnitudes, most-significant first, using a
  // running remainder. d's magnitude may be multi-limb; we divide by
  // repeated trial on a 64-bit window when d fits one limb, else use the
  // general shift-and-subtract method (base 2). Bareiss pivots are minors,
  // typically a few limbs, so the binary method is fast enough and simple
  // enough to be obviously correct.
  const int cmp = compare_magnitude(limbs_, d.limbs_);
  EBMF_EXPECTS(cmp >= 0);  // exact division of smaller by larger => zero only

  std::vector<std::uint32_t> q;
  std::vector<std::uint32_t> r;
  if (d.limbs_.size() == 1) {
    // Fast path: single-limb divisor.
    const std::uint64_t dv = d.limbs_[0];
    q.assign(limbs_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | limbs_[i];
      q[i] = static_cast<std::uint32_t>(cur / dv);
      rem = cur % dv;
    }
    EBMF_EXPECTS(rem == 0);
  } else {
    // Binary long division over bits of the dividend.
    const std::size_t nbits = bit_length();
    q.assign(limbs_.size(), 0);
    r.clear();
    std::vector<std::uint32_t> rem;  // running remainder magnitude
    for (std::size_t b = nbits; b-- > 0;) {
      // rem = rem * 2 + bit b of *this
      std::uint32_t carry = (limbs_[b / 32] >> (b % 32)) & 1u;
      for (auto& limb : rem) {
        const std::uint32_t hi = limb >> 31;
        limb = (limb << 1) | carry;
        carry = hi;
      }
      if (carry != 0) rem.push_back(carry);
      if (compare_magnitude(rem, d.limbs_) >= 0) {
        sub_magnitude(rem, d.limbs_);
        while (!rem.empty() && rem.back() == 0) rem.pop_back();
        q[b / 32] |= std::uint32_t{1} << (b % 32);
      }
    }
    EBMF_EXPECTS(rem.empty());
  }
  BigInt out;
  out.limbs_ = std::move(q);
  out.negative_ = negative_ != d.negative_;
  out.trim();
  return out;
}

int BigInt::compare(const BigInt& rhs) const noexcept {
  if (negative_ != rhs.negative_) return negative_ ? -1 : 1;
  const int m = compare_magnitude(limbs_, rhs.limbs_);
  return negative_ ? -m : m;
}

std::string BigInt::to_string() const {
  if (is_zero()) return "0";
  std::vector<std::uint32_t> tmp = limbs_;
  std::string digits;
  while (!tmp.empty()) {
    std::uint64_t rem = 0;
    for (std::size_t i = tmp.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | tmp[i];
      tmp[i] = static_cast<std::uint32_t>(cur / 10);
      rem = cur % 10;
    }
    digits.push_back(static_cast<char>('0' + rem));
    while (!tmp.empty() && tmp.back() == 0) tmp.pop_back();
  }
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

std::int64_t BigInt::to_int64() const {
  EBMF_EXPECTS(bit_length() <= 63);
  std::uint64_t mag = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) mag = (mag << 32) | limbs_[i];
  return negative_ ? -static_cast<std::int64_t>(mag)
                   : static_cast<std::int64_t>(mag);
}

}  // namespace ebmf
