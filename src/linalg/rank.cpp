#include "linalg/rank.h"

#include <algorithm>

#include "linalg/bigint.h"
#include "support/contracts.h"

namespace ebmf {

namespace {

/// Verify all rows share the declared width.
void check_rows(const std::vector<BitVec>& rows, std::size_t cols) {
  for (const auto& r : rows) EBMF_EXPECTS(r.size() == cols);
}

}  // namespace

std::size_t rank_mod_p(const std::vector<BitVec>& rows, std::size_t cols,
                       std::uint64_t p) {
  check_rows(rows, cols);
  EBMF_EXPECTS(p >= 2 && p < (std::uint64_t{1} << 31));
  const std::size_t m = rows.size();
  std::vector<std::vector<std::uint64_t>> a(m,
                                            std::vector<std::uint64_t>(cols));
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < cols; ++j) a[i][j] = rows[i].test(j) ? 1 : 0;

  // Modular inverse by Fermat (p prime).
  const auto pow_mod = [p](std::uint64_t b, std::uint64_t e) {
    std::uint64_t r = 1;
    b %= p;
    while (e != 0) {
      if (e & 1) r = r * b % p;
      b = b * b % p;
      e >>= 1;
    }
    return r;
  };

  std::size_t rank = 0;
  for (std::size_t col = 0; col < cols && rank < m; ++col) {
    std::size_t pivot = rank;
    while (pivot < m && a[pivot][col] == 0) ++pivot;
    if (pivot == m) continue;
    std::swap(a[pivot], a[rank]);
    const std::uint64_t inv = pow_mod(a[rank][col], p - 2);
    for (std::size_t j = col; j < cols; ++j) a[rank][j] = a[rank][j] * inv % p;
    for (std::size_t i = 0; i < m; ++i) {
      if (i == rank || a[i][col] == 0) continue;
      const std::uint64_t f = a[i][col];
      for (std::size_t j = col; j < cols; ++j)
        a[i][j] = (a[i][j] + (p - f) * a[rank][j]) % p;
    }
    ++rank;
  }
  return rank;
}

std::size_t rank_bareiss(const std::vector<BitVec>& rows, std::size_t cols) {
  check_rows(rows, cols);
  const std::size_t m = rows.size();
  std::vector<std::vector<BigInt>> a(m, std::vector<BigInt>(cols));
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      a[i][j] = BigInt(rows[i].test(j) ? 1 : 0);

  BigInt prev_pivot(1);
  std::size_t rank = 0;
  for (std::size_t col = 0; col < cols && rank < m; ++col) {
    std::size_t pivot = rank;
    while (pivot < m && a[pivot][col].is_zero()) ++pivot;
    if (pivot == m) continue;
    std::swap(a[pivot], a[rank]);
    // Fraction-free update of the trailing block:
    //   a[i][j] := (a[rank][col] * a[i][j] − a[i][col] * a[rank][j]) / prev
    // where the division is exact (Bareiss' theorem: entries stay minors).
    for (std::size_t i = rank + 1; i < m; ++i) {
      for (std::size_t j = col + 1; j < cols; ++j) {
        BigInt num = a[rank][col] * a[i][j] - a[i][col] * a[rank][j];
        a[i][j] = num.div_exact(prev_pivot);
      }
      a[i][col] = BigInt(0);
    }
    prev_pivot = a[rank][col];
    ++rank;
  }
  return rank;
}

std::size_t real_rank(const std::vector<BitVec>& rows, std::size_t cols) {
  check_rows(rows, cols);
  if (rows.empty() || cols == 0) return 0;
  const std::size_t bound = std::min(rows.size(), cols);
  // Fast path: a 31-bit prime far larger than any entry. rank_mod_p is a
  // lower bound on rank over ℚ, so hitting min(m, n) is a certificate.
  const std::size_t rp = rank_mod_p(rows, cols, 2147483647ull);  // 2^31 − 1
  if (rp == bound) return rp;
  // Certify exactly. (Bareiss is exact over ℤ; no probabilistic gap.)
  const std::size_t rb = rank_bareiss(rows, cols);
  EBMF_ENSURES(rb >= rp);
  return rb;
}

std::size_t rank_gf2(std::vector<BitVec> rows) {
  const std::size_t cols = rows.empty() ? 0 : rows[0].size();
  for (const auto& r : rows) EBMF_EXPECTS(r.size() == cols);
  std::size_t rank = 0;
  for (std::size_t col = 0; col < cols && rank < rows.size(); ++col) {
    std::size_t pivot = rank;
    while (pivot < rows.size() && !rows[pivot].test(col)) ++pivot;
    if (pivot == rows.size()) continue;
    std::swap(rows[pivot], rows[rank]);
    for (std::size_t i = 0; i < rows.size(); ++i)
      if (i != rank && rows[i].test(col)) rows[i] ^= rows[rank];
    ++rank;
  }
  return rank;
}

}  // namespace ebmf
