#pragma once
/// \file rank.h
/// \brief Exact matrix rank over ℚ (= rank over ℝ for integer matrices),
/// plus ranks over prime fields, for 0/1 matrices given as bit-vector rows.
///
/// Eq. 3 of the paper — rank_ℝ(M) ≤ r_B(M) — is the lower bound that lets
/// Algorithm 1 (SAP) terminate and certify optimality. Because a wrong rank
/// would silently produce wrong "optimal" claims, the default entry point
/// `real_rank` is fully exact: a fast modular elimination provides a lower
/// bound and an early exit at full rank; otherwise fraction-free Bareiss
/// elimination over arbitrary-precision integers certifies the answer.

#include <cstdint>
#include <vector>

#include "support/bitvec.h"

namespace ebmf {

/// Rank of the 0/1 matrix over the prime field GF(p).
/// Rows are BitVecs of equal length `cols`. Always ≤ rank over ℚ.
/// Precondition: p is prime and p < 2^31 (unchecked primality).
std::size_t rank_mod_p(const std::vector<BitVec>& rows, std::size_t cols,
                       std::uint64_t p);

/// Exact rank over ℚ via fraction-free Bareiss elimination on BigInt.
/// Exponential-free: intermediate entries are minors of M (Hadamard-bounded).
std::size_t rank_bareiss(const std::vector<BitVec>& rows, std::size_t cols);

/// Exact rank over ℝ (== over ℚ for a 0/1 matrix).
///
/// Strategy: eliminate modulo a fixed 31-bit prime. Since rank_GF(p) ≤
/// rank_ℚ ≤ min(m, n), a full modular rank is already certified; otherwise
/// fall back to exact Bareiss. Deterministic and exact in all cases.
std::size_t real_rank(const std::vector<BitVec>& rows, std::size_t cols);

/// Rank over GF(2) (word-parallel elimination directly on the bit rows).
///
/// Note: this is *neither* the paper's rank_ℝ lower bound *nor* the binary
/// rank r_B; it is exposed because the three are easy to conflate and the
/// test suite demonstrates they differ.
std::size_t rank_gf2(std::vector<BitVec> rows);

}  // namespace ebmf
