#include "smt/sap.h"

#include <algorithm>

#include "core/preprocess.h"
#include "support/stopwatch.h"

namespace ebmf {

namespace {

/// Algorithm 1 on one irreducible matrix (no preprocessing).
SapResult sap_solve_core(const BinaryMatrix& m, const SapOptions& options) {
  Stopwatch total;
  SapResult result;

  if (m.is_zero()) {
    result.status = SapStatus::Optimal;
    result.total_seconds = total.seconds();
    return result;
  }

  // Lower bound: exact real rank (Eq. 3).
  Stopwatch phase;
  result.rank_lower = real_rank(m);
  result.rank_seconds = phase.seconds();

  // Upper bound: row packing (Algorithm 2). Stop early on a rank match —
  // such a partition is already provably optimal.
  RowPackingOptions packing = options.packing;
  if (packing.stop_at == 0) packing.stop_at = result.rank_lower;
  if (options.budget.limited() && !packing.budget.limited())
    packing.budget = options.budget;
  phase.restart();
  RowPackingResult heuristic = row_packing_ebmf(m, packing);
  result.heuristic_seconds = phase.seconds();
  result.partition = std::move(heuristic.partition);
  result.heuristic_size = result.partition.size();
  EBMF_ENSURES(static_cast<bool>(validate_partition(m, result.partition)));

  if (result.partition.size() == result.rank_lower) {
    result.status = SapStatus::Optimal;
    result.total_seconds = total.seconds();
    return result;
  }
  if (!options.use_smt ||
      (options.smt_cell_limit != 0 &&
       m.ones_count() > options.smt_cell_limit)) {
    result.status = SapStatus::HeuristicOnly;
    result.total_seconds = total.seconds();
    return result;
  }
  if (options.budget.exhausted()) {
    result.status = SapStatus::BoundedOnly;
    result.total_seconds = total.seconds();
    return result;
  }

  // SMT phase: query r_B(M) <= b for decreasing b (Algorithm 1, lines 2-10).
  std::size_t b = result.partition.size() - 1;
  EBMF_ASSERT(b >= 1);  // size==rank handled above; rank >= 1 for nonzero M
  smt::LabelFormula formula(m, b, options.encoder);
  result.status = SapStatus::BoundedOnly;
  while (b >= result.rank_lower) {
    phase.restart();
    const sat::SolveResult answer = formula.solve(options.budget);
    const double call_seconds = phase.seconds();
    result.smt_seconds += call_seconds;
    result.smt_calls.push_back(SapSmtCall{b, answer, call_seconds});

    if (answer == sat::SolveResult::Sat) {
      Partition p = formula.extract_partition();
      EBMF_ENSURES(p.size() <= b);
      EBMF_ENSURES(static_cast<bool>(validate_partition(m, p)));
      result.partition = std::move(p);
      // The extracted partition can use fewer than b rectangles; continue
      // below its size, not just below b.
      const std::size_t next = result.partition.size() - 1;
      if (next < result.rank_lower ||
          result.partition.size() == result.rank_lower) {
        result.status = SapStatus::Optimal;
        break;
      }
      formula.narrow(next);
      b = next;
    } else if (answer == sat::SolveResult::Unsat) {
      // No partition with <= b rectangles: the current one (size b+1 or the
      // heuristic's) is optimal.
      result.status = SapStatus::Optimal;
      break;
    } else {
      break;  // budget exhausted: keep best-so-far, bounds stand
    }
    if (options.budget.exhausted()) break;
  }
  result.smt_stats = formula.solver().stats();
  result.total_seconds = total.seconds();
  EBMF_ENSURES(result.partition.size() >= result.rank_lower);
  return result;
}

void accumulate_stats(sat::SolverStats& into, const sat::SolverStats& from) {
  into.decisions += from.decisions;
  into.propagations += from.propagations;
  into.conflicts += from.conflicts;
  into.restarts += from.restarts;
  into.learned_clauses += from.learned_clauses;
  into.learned_literals += from.learned_literals;
  into.minimized_literals += from.minimized_literals;
  into.deleted_clauses += from.deleted_clauses;
}

}  // namespace

SapResult sap_solve(const BinaryMatrix& m, const SapOptions& options) {
  if (!options.preprocess) return sap_solve_core(m, options);

  Stopwatch total;
  // Exactness-preserving reductions: collapse duplicates, then split the
  // bipartite row/column graph into connected components; r_B is additive
  // over components and invariant under the collapse (see preprocess.h).
  const DuplicateReduction reduction = reduce_duplicates(m);
  const auto components = split_components(reduction.reduced);

  SapOptions sub_options = options;
  sub_options.preprocess = false;

  SapResult aggregate;
  aggregate.status = SapStatus::Optimal;
  Partition reduced_partition;
  for (const auto& component : components) {
    SapResult sub = sap_solve_core(component.matrix, sub_options);
    Partition lifted =
        lift_partition(sub.partition, component, reduction.reduced.rows(),
                       reduction.reduced.cols());
    reduced_partition.insert(reduced_partition.end(),
                             std::make_move_iterator(lifted.begin()),
                             std::make_move_iterator(lifted.end()));
    aggregate.rank_lower += sub.rank_lower;
    aggregate.heuristic_size += sub.heuristic_size;
    aggregate.rank_seconds += sub.rank_seconds;
    aggregate.heuristic_seconds += sub.heuristic_seconds;
    aggregate.smt_seconds += sub.smt_seconds;
    aggregate.smt_calls.insert(aggregate.smt_calls.end(),
                               sub.smt_calls.begin(), sub.smt_calls.end());
    accumulate_stats(aggregate.smt_stats, sub.smt_stats);
    if (sub.status != SapStatus::Optimal &&
        aggregate.status == SapStatus::Optimal)
      aggregate.status = sub.status;
  }
  aggregate.partition = expand_partition(reduced_partition, reduction);
  aggregate.total_seconds = total.seconds();
  EBMF_ENSURES(
      static_cast<bool>(validate_partition(m, aggregate.partition)));
  EBMF_ENSURES(aggregate.partition.size() >= aggregate.rank_lower);
  return aggregate;
}

}  // namespace ebmf
